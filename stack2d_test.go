package stack2d_test

import (
	"sync"
	"testing"

	"stack2d"
)

func TestNewDefaults(t *testing.T) {
	s := stack2d.New[int]()
	cfg := s.Config()
	if cfg.Width < 4 {
		t.Fatalf("default width = %d, want >= 4", cfg.Width)
	}
	if cfg.Depth != 64 || cfg.Shift != 64 {
		t.Fatalf("default depth/shift = %d/%d, want 64/64", cfg.Depth, cfg.Shift)
	}
	if s.K() != cfg.K() {
		t.Fatalf("K() = %d, want %d", s.K(), cfg.K())
	}
}

func TestOptionsStructural(t *testing.T) {
	s := stack2d.New[int](
		stack2d.WithWidth(3),
		stack2d.WithDepth(16),
		stack2d.WithShift(8),
		stack2d.WithRandomHops(1),
	)
	cfg := s.Config()
	if cfg.Width != 3 || cfg.Depth != 16 || cfg.Shift != 8 || cfg.RandomHops != 1 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// (2*16+8)*(3-1) = 80
	if s.K() != 80 {
		t.Fatalf("K = %d, want 80", s.K())
	}
}

func TestWithDepthClampsShift(t *testing.T) {
	// Default shift is 64; setting only depth below that must keep the
	// config valid.
	s := stack2d.New[int](stack2d.WithDepth(8))
	cfg := s.Config()
	if cfg.Shift > cfg.Depth {
		t.Fatalf("shift %d exceeds depth %d", cfg.Shift, cfg.Depth)
	}
}

func TestWithShiftOnlyLiftsDepth(t *testing.T) {
	// Regression (same latent bug as the queue resolver): WithShift(s) with
	// s beyond the default depth used to panic in Validate even though the
	// intent is unambiguous — a lone shift override lifts depth to match.
	s := stack2d.New[int](stack2d.WithShift(128))
	cfg := s.Config()
	if cfg.Shift != 128 || cfg.Depth != 128 {
		t.Fatalf("shift-only option gave depth %d shift %d, want 128/128", cfg.Depth, cfg.Shift)
	}
	// A shift below the default depth must not disturb depth.
	if got := stack2d.New[int](stack2d.WithShift(16)).Config(); got.Shift != 16 || got.Depth != 64 {
		t.Fatalf("small shift override gave depth %d shift %d, want 64/16", got.Depth, got.Shift)
	}
	// Contradictory explicit pairs still panic.
	defer func() {
		if recover() == nil {
			t.Fatal("WithDepth(4)+WithShift(9) did not panic")
		}
	}()
	stack2d.New[int](stack2d.WithDepth(4), stack2d.WithShift(9))
}

func TestWithRelaxationBudget(t *testing.T) {
	for _, k := range []int64{0, 10, 100, 10000} {
		s := stack2d.New[int](stack2d.WithRelaxation(k), stack2d.WithExpectedThreads(4))
		if got := s.K(); got > k && k >= 3 {
			t.Errorf("WithRelaxation(%d): realised K = %d exceeds budget", k, got)
		}
	}
}

func TestWithRelaxationZeroIsStrict(t *testing.T) {
	s := stack2d.New[uint64](stack2d.WithRelaxation(0))
	if s.K() != 0 {
		t.Fatalf("K = %d, want 0", s.K())
	}
	h := s.NewHandle()
	for v := uint64(1); v <= 100; v++ {
		h.Push(v)
	}
	for want := uint64(100); want >= 1; want-- {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with width -1 did not panic")
		}
	}()
	stack2d.New[int](stack2d.WithWidth(-1))
}

func TestNewWithConfigError(t *testing.T) {
	if _, err := stack2d.NewWithConfig[int](stack2d.Config{}); err == nil {
		t.Fatal("NewWithConfig accepted zero config")
	}
	s, err := stack2d.NewWithConfig[int](stack2d.Config{Width: 2, Depth: 4, Shift: 4})
	if err != nil || s == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestHandleRoundTrip(t *testing.T) {
	s := stack2d.New[string](stack2d.WithExpectedThreads(1))
	h := s.NewHandle()
	h.Push("a")
	h.Push("b")
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, ok := h.Pop()
		if !ok {
			t.Fatal("premature empty")
		}
		seen[v] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("values lost: %v", seen)
	}
	if !s.Empty() {
		t.Fatal("stack not empty after popping everything")
	}
}

func TestHandleTryPop(t *testing.T) {
	s := stack2d.New[int](stack2d.WithExpectedThreads(1))
	h := s.NewHandle()
	if _, ok := h.TryPop(); ok {
		t.Fatal("TryPop on empty succeeded")
	}
	h.Push(5)
	if v, ok := h.TryPop(); !ok || v != 5 {
		t.Fatalf("TryPop = (%d,%v), want (5,true)", v, ok)
	}
}

func TestPooledConvenienceAPI(t *testing.T) {
	s := stack2d.New[int](stack2d.WithExpectedThreads(2))
	const n = 1000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s.Push(w*n + i)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 4*n {
		t.Fatalf("Len = %d, want %d", got, 4*n)
	}
	seen := make(map[int]bool)
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 4*n {
		t.Fatalf("recovered %d values, want %d", len(seen), 4*n)
	}
}

func TestDrain(t *testing.T) {
	s := stack2d.New[int]()
	for i := 0; i < 32; i++ {
		s.Push(i)
	}
	if got := len(s.Drain()); got != 32 {
		t.Fatalf("Drain returned %d items, want 32", got)
	}
}

func TestStrictStack(t *testing.T) {
	s := stack2d.NewStrict[int]()
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty strict stack succeeded")
	}
	for i := 1; i <= 10; i++ {
		s.Push(i)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	for want := 10; want >= 1; want-- {
		v, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
}

func TestConcurrentMixedHandles(t *testing.T) {
	s := stack2d.New[uint64](stack2d.WithExpectedThreads(4))
	const workers, perW = 8, 2000
	var wg sync.WaitGroup
	popped := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[w] = append(popped[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

func TestBatchAPI(t *testing.T) {
	s := stack2d.New[int](stack2d.WithExpectedThreads(2))
	h := s.NewHandle()
	h.PushBatch([]int{1, 2, 3, 4, 5})
	if s.Len() != 5 {
		t.Fatalf("Len = %d after PushBatch, want 5", s.Len())
	}
	got := h.PopBatch(3)
	if len(got) != 3 {
		t.Fatalf("PopBatch(3) returned %d items", len(got))
	}
	rest := h.PopBatch(10)
	if len(rest) != 2 {
		t.Fatalf("PopBatch(10) returned %d items, want 2", len(rest))
	}
	seen := map[int]bool{}
	for _, v := range append(got, rest...) {
		if seen[v] {
			t.Fatalf("value %d returned twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("recovered %d values, want 5", len(seen))
	}
}

func TestWithRandomHopsZeroApplies(t *testing.T) {
	// Zero is a meaningful value (pure round-robin search) and must not be
	// confused with "unset".
	s := stack2d.New[int](stack2d.WithRandomHops(0))
	if got := s.Config().RandomHops; got != 0 {
		t.Fatalf("RandomHops = %d, want explicit 0", got)
	}
	d := stack2d.New[int]()
	if got := d.Config().RandomHops; got == 0 {
		t.Fatalf("default RandomHops = 0; expected the paper's hybrid default")
	}
}

func TestWithExpectedThreadsScalesWidth(t *testing.T) {
	s4 := stack2d.New[int](stack2d.WithExpectedThreads(4))
	s8 := stack2d.New[int](stack2d.WithExpectedThreads(8))
	if s4.Config().Width != 16 || s8.Config().Width != 32 {
		t.Fatalf("width 4P rule broken: %d / %d", s4.Config().Width, s8.Config().Width)
	}
}

func TestInterfaceCompliance(t *testing.T) {
	// The three stack-shaped types satisfy Interface (compile-time checks
	// exist in the package; this keeps them exercised at run time too).
	var iface stack2d.Interface[int]
	iface = stack2d.NewStrict[int]()
	iface.Push(1)
	if v, ok := iface.Pop(); !ok || v != 1 {
		t.Fatalf("strict via Interface = (%d,%v)", v, ok)
	}
	s := stack2d.New[int]()
	iface = s
	iface.Push(2)
	if v, ok := iface.Pop(); !ok || v != 2 {
		t.Fatalf("pooled via Interface = (%d,%v)", v, ok)
	}
	iface = s.NewHandle()
	iface.Push(3)
	if v, ok := iface.Pop(); !ok || v != 3 {
		t.Fatalf("handle via Interface = (%d,%v)", v, ok)
	}
}
