package stack2d_test

import (
	"sync"
	"testing"

	"stack2d"
)

func TestQueueBasic(t *testing.T) {
	q := stack2d.NewQueue[string](stack2d.WithQueueExpectedThreads(2))
	h := q.NewHandle()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	h.Enqueue("a")
	h.Enqueue("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, ok := h.Dequeue()
		if !ok {
			t.Fatal("premature empty")
		}
		seen[v] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("values lost: %v", seen)
	}
}

func TestQueueConfigAndK(t *testing.T) {
	q, err := stack2d.NewQueueWithConfig[int](stack2d.QueueConfig{
		Width: 3, Depth: 8, Shift: 4, RandomHops: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.K(); got != (2*8+4)*2 {
		t.Fatalf("K = %d, want 40", got)
	}
	if q.Config().Width != 3 {
		t.Fatalf("Config lost: %+v", q.Config())
	}
}

func TestQueueWithConfigRejectsInvalid(t *testing.T) {
	if _, err := stack2d.NewQueueWithConfig[int](stack2d.QueueConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestQueueWidthOneStrictFIFO(t *testing.T) {
	q, err := stack2d.NewQueueWithConfig[uint64](stack2d.QueueConfig{
		Width: 1, Depth: 16, Shift: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	for v := uint64(1); v <= 100; v++ {
		h.Enqueue(v)
	}
	for want := uint64(1); want <= 100; want++ {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	q := stack2d.NewQueue[uint64](stack2d.WithQueueExpectedThreads(4))
	const workers, perW = 8, 1500
	var wg sync.WaitGroup
	got := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < perW; i++ {
				h.Enqueue(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Dequeue(); ok {
						got[w] = append(got[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

func TestStrictQueueFIFO(t *testing.T) {
	q := stack2d.NewStrictQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty strict queue returned ok")
	}
	for i := 1; i <= 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for want := 1; want <= 10; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
}

func TestQueueOptionsParity(t *testing.T) {
	// The queue constructor mirrors the stack's functional-options
	// surface: explicit structural options override the derived defaults
	// field by field.
	q := stack2d.NewQueue[int](
		stack2d.WithQueueWidth(3),
		stack2d.WithQueueDepth(16),
		stack2d.WithQueueShift(4),
		stack2d.WithQueueRandomHops(1),
	)
	cfg := q.Config()
	if cfg.Width != 3 || cfg.Depth != 16 || cfg.Shift != 4 || cfg.RandomHops != 1 {
		t.Fatalf("explicit options not honoured: %+v", cfg)
	}

	// Depth-only clamps shift down with it, as WithDepth does.
	if got := stack2d.NewQueue[int](stack2d.WithQueueDepth(8)).Config(); got.Shift != 8 {
		t.Fatalf("depth-only option left shift %d, want 8", got.Shift)
	}

	// Expected threads drive the default width 4P.
	if got := stack2d.NewQueue[int](stack2d.WithQueueExpectedThreads(3)).Config(); got.Width != 12 {
		t.Fatalf("WithQueueExpectedThreads(3) gave width %d, want 12", got.Width)
	}

	// Invalid combinations panic, as for the stack.
	defer func() {
		if recover() == nil {
			t.Fatal("invalid queue options did not panic")
		}
	}()
	stack2d.NewQueue[int](stack2d.WithQueueDepth(4), stack2d.WithQueueShift(9))
}

func TestQueueShiftOnlyLiftsDepth(t *testing.T) {
	// Regression: WithQueueShift(s) with s beyond the default depth used to
	// panic in Validate even though the intent is unambiguous — a lone
	// shift override lifts depth to match.
	q := stack2d.NewQueue[int](stack2d.WithQueueShift(128))
	cfg := q.Config()
	if cfg.Shift != 128 || cfg.Depth != 128 {
		t.Fatalf("shift-only option gave depth %d shift %d, want 128/128", cfg.Depth, cfg.Shift)
	}
	// A shift below the default depth must not disturb depth.
	if got := stack2d.NewQueue[int](stack2d.WithQueueShift(16)).Config(); got.Shift != 16 || got.Depth != 64 {
		t.Fatalf("small shift override gave depth %d shift %d, want 64/16", got.Depth, got.Shift)
	}
}
