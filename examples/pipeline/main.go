// Pipeline: the 2D-Queue extension in its natural habitat — a multi-stage
// processing pipeline where stage buffers need high enqueue/dequeue
// throughput but not exact FIFO (items carry their own identity; the next
// stage does not care which of the ~k front items it receives).
//
// The program pushes records through a three-stage pipeline (parse →
// enrich → aggregate) twice: once buffered by strict Michael–Scott queues,
// once by relaxed 2D-Queues, and reports end-to-end throughput plus a
// verification that both runs aggregate the identical result.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stack2d"
)

const (
	records  = 200000
	perStage = 4 // workers per stage
)

// buffers abstracts the two queue families behind enqueue/dequeue funcs.
type buffers struct {
	name string
	enq  [2]func(uint64)
	deq  [2]func() (uint64, bool)
}

func makeStrict() buffers {
	a := stack2d.NewStrictQueue[uint64]()
	b := stack2d.NewStrictQueue[uint64]()
	return buffers{
		name: "ms-queue (strict)",
		enq:  [2]func(uint64){a.Enqueue, b.Enqueue},
		deq:  [2]func() (uint64, bool){a.Dequeue, b.Dequeue},
	}
}

func makeRelaxed() buffers {
	a := stack2d.NewQueue[uint64](stack2d.WithQueueExpectedThreads(perStage * 2))
	b := stack2d.NewQueue[uint64](stack2d.WithQueueExpectedThreads(perStage * 2))
	// One handle per stage worker would be ideal; funcs here share via
	// handle-per-call for brevity — the harness benchmarks the hot path.
	ha, hb := a.NewHandle(), b.NewHandle()
	var mu1, mu2 sync.Mutex
	return buffers{
		name: fmt.Sprintf("2D-queue (k=%d)", a.K()),
		enq: [2]func(uint64){
			func(v uint64) { mu1.Lock(); ha.Enqueue(v); mu1.Unlock() },
			func(v uint64) { mu2.Lock(); hb.Enqueue(v); mu2.Unlock() },
		},
		deq: [2]func() (uint64, bool){
			func() (uint64, bool) { mu1.Lock(); defer mu1.Unlock(); return ha.Dequeue() },
			func() (uint64, bool) { mu2.Lock(); defer mu2.Unlock(); return hb.Dequeue() },
		},
	}
}

// runPipeline pushes `records` items through parse→enrich→aggregate and
// returns the aggregate checksum and elapsed time.
func runPipeline(b buffers) (uint64, time.Duration) {
	var produced, enriched atomic.Int64
	var sum atomic.Uint64
	began := time.Now()

	var wg sync.WaitGroup
	// Stage 1: produce/parse.
	for w := 0; w < perStage; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := produced.Add(1)
				if i > records {
					return
				}
				b.enq[0](uint64(i)*2 + 1) // "parsed" record
			}
		}(w)
	}
	// Stage 2: enrich.
	for w := 0; w < perStage; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for enriched.Load() < records {
				v, ok := b.deq[0]()
				if !ok {
					continue
				}
				b.enq[1](v * 3) // "enriched"
				enriched.Add(1)
			}
		}()
	}
	// Stage 3: aggregate.
	var done atomic.Int64
	for w := 0; w < perStage; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done.Load() < records {
				v, ok := b.deq[1]()
				if !ok {
					continue
				}
				sum.Add(v)
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	return sum.Load(), time.Since(began)
}

func main() {
	fmt.Printf("3-stage pipeline, %d records, %d workers/stage\n\n", records, perStage)
	var want uint64
	for i := uint64(1); i <= records; i++ {
		want += (i*2 + 1) * 3
	}
	for _, b := range []buffers{makeStrict(), makeRelaxed()} {
		sum, elapsed := runPipeline(b)
		status := "ok"
		if sum != want {
			status = fmt.Sprintf("MISMATCH (got %d want %d)", sum, want)
		}
		fmt.Printf("%-22s %10v  %8.0f rec/s  aggregate %s\n",
			b.name, elapsed.Round(time.Millisecond),
			float64(records)/elapsed.Seconds(), status)
	}
	fmt.Println("\nboth bufferings aggregate the identical multiset; FIFO order inside a")
	fmt.Println("stage buffer is immaterial, which is the slack the 2D window exploits")
}
