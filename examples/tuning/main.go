// Tuning: the paper's headline property is that the 2D-Stack trades
// accuracy for throughput *continuously and monotonically*. This example
// demonstrates the dial end to end: it sweeps the relaxation budget k and
// measures the error distance from exact LIFO with the paper's own
// methodology — a mutex-guarded side list run alongside the stack, where
// each push inserts at the head and each pop reports how far from the head
// its item was found (0 = perfect LIFO). The measurement is implemented
// inline so the example is a self-contained illustration of how to
// evaluate a relaxed structure.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stack2d"
)

// sideList is the sequential quality oracle from the paper's Section 4.
type sideList struct {
	mu   sync.Mutex
	head *entry
}

type entry struct {
	label uint64
	next  *entry
}

func (l *sideList) insert(label uint64) {
	l.mu.Lock()
	l.head = &entry{label: label, next: l.head}
	l.mu.Unlock()
}

// remove deletes label and returns its distance from the head, spinning
// briefly if the corresponding insert has not landed yet.
func (l *sideList) remove(label uint64) int {
	for {
		l.mu.Lock()
		dist := 0
		var prev *entry
		for e := l.head; e != nil; e = e.next {
			if e.label == label {
				if prev == nil {
					l.head = e.next
				} else {
					prev.next = e.next
				}
				l.mu.Unlock()
				return dist
			}
			prev = e
			dist++
		}
		l.mu.Unlock()
		// The pusher has not registered the label yet; yield and retry.
	}
}

func sweep(k int64, workers int, d time.Duration) (opsPerSec, meanErr float64, maxErr int, bound int64) {
	s := stack2d.New[uint64](
		stack2d.WithRelaxation(k),
		stack2d.WithExpectedThreads(workers),
	)
	var list sideList
	var label atomic.Uint64

	h0 := s.NewHandle()
	for i := 0; i < 8192; i++ {
		v := label.Add(1)
		h0.Push(v)
		list.insert(v)
	}

	var stop atomic.Bool
	var ops, errSum atomic.Uint64
	var errMax atomic.Int64
	var errN atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			n := uint64(0)
			for !stop.Load() {
				// Uniform random op choice, as in the paper's workload.
				if rand.Uint64()&1 == 0 {
					v := label.Add(1)
					h.Push(v)
					list.insert(v)
				} else if v, ok := h.Pop(); ok {
					dist := list.remove(v)
					errSum.Add(uint64(dist))
					errN.Add(1)
					for {
						cur := errMax.Load()
						if int64(dist) <= cur || errMax.CompareAndSwap(cur, int64(dist)) {
							break
						}
					}
				}
				n++
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	mean := 0.0
	if errN.Load() > 0 {
		mean = float64(errSum.Load()) / float64(errN.Load())
	}
	return float64(ops.Load()) / d.Seconds(), mean, int(errMax.Load()), s.K()
}

func main() {
	const workers = 8
	const d = 120 * time.Millisecond
	fmt.Printf("relaxation dial: %d workers, %v per point, oracle attached to every op\n", workers, d)
	fmt.Println("(oracle serialisation caps throughput; run cmd/stackbench for unobserved numbers)")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-14s %-12s %s\n", "k budget", "realised k", "ops/s", "mean error", "max error")
	for _, k := range []int64{0, 16, 64, 256, 1024, 4096, 16384} {
		ops, mean, max, bound := sweep(k, workers, d)
		fmt.Printf("%-10d %-12d %-14.0f %-12.3f %d\n", k, bound, ops, mean, max)
	}
	fmt.Println("\nmean error grows with the budget while never exceeding it by structure —")
	fmt.Println("the continuous accuracy-for-throughput dial the paper demonstrates")
}
