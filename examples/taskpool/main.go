// Taskpool: the workload the paper's introduction motivates — a shared
// LIFO work pool under heavy contention. Many workers expand a synthetic
// task graph depth-first: each task pops, does a little work, and pushes
// its children. LIFO order keeps the working set hot (depth-first), but
// exact LIFO is not required for correctness — which is precisely the
// contract the 2D-Stack relaxes for throughput.
//
// The program runs the same traversal over the strict Treiber stack and
// over 2D-Stacks of increasing relaxation and reports wall time and
// speedup; every variant must process exactly the same number of tasks.
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"stack2d"
)

// task is a node in the synthetic computation DAG: it spawns children
// until its depth budget is exhausted.
type task struct {
	depth    int
	fanout   int
	workSpin int
}

// run performs the traversal with the given stack and worker count and
// returns (tasks processed, wall time).
func run(pool stack2d.Interface[task], newWorker func() stack2d.Interface[task], workers int, root task) (uint64, time.Duration) {
	var processed atomic.Uint64
	var inFlight atomic.Int64 // tasks pushed but not yet fully processed

	inFlight.Store(1)
	pool.Push(root)

	var wg sync.WaitGroup
	began := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := newWorker()
			for inFlight.Load() > 0 {
				t, ok := h.Pop()
				if !ok {
					continue // transiently empty; other workers still expanding
				}
				// "Work": a small spin so contention, not compute,
				// dominates — mirroring the paper's no-think-time setup.
				x := uint64(t.depth)
				for i := 0; i < t.workSpin; i++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
				_ = x
				if t.depth > 0 {
					inFlight.Add(int64(t.fanout))
					child := task{depth: t.depth - 1, fanout: t.fanout, workSpin: t.workSpin}
					for c := 0; c < t.fanout; c++ {
						h.Push(child)
					}
				}
				processed.Add(1)
				inFlight.Add(-1)
			}
		}()
	}
	wg.Wait()
	return processed.Load(), time.Since(began)
}

func main() {
	const workers = 8
	root := task{depth: 12, fanout: 3, workSpin: 16}
	// Total tasks in the complete ternary tree of depth 12.
	want := uint64(0)
	pow := uint64(1)
	for d := 0; d <= root.depth; d++ {
		want += pow
		pow *= uint64(root.fanout)
	}
	fmt.Printf("expanding a fanout-%d depth-%d task tree (%d tasks) with %d workers\n\n",
		root.fanout, root.depth, want, workers)

	type variant struct {
		name string
		k    int64
		make func() (stack2d.Interface[task], func() stack2d.Interface[task])
	}
	variants := []variant{
		{"treiber (strict)", 0, func() (stack2d.Interface[task], func() stack2d.Interface[task]) {
			s := stack2d.NewStrict[task]()
			return s, func() stack2d.Interface[task] { return s }
		}},
	}
	for _, k := range []int64{64, 1024, 16384} {
		k := k
		variants = append(variants, variant{
			name: fmt.Sprintf("2D-stack k<=%d", k),
			k:    k,
			make: func() (stack2d.Interface[task], func() stack2d.Interface[task]) {
				s := stack2d.New[task](stack2d.WithRelaxation(k), stack2d.WithExpectedThreads(workers))
				return s, func() stack2d.Interface[task] {
					return s.NewHandle()
				}
			},
		})
	}

	var baseline time.Duration
	miscounted := false
	for i, v := range variants {
		pool, newWorker := v.make()
		got, elapsed := run(pool, newWorker, workers, root)
		if got != want {
			fmt.Printf("%-20s BUG: processed %d tasks, want %d\n", v.name, got, want)
			miscounted = true
			continue
		}
		if i == 0 {
			baseline = elapsed
		}
		speedup := float64(baseline) / float64(elapsed)
		fmt.Printf("%-20s %10v  (%.0f tasks/s, %.2fx vs strict)\n",
			v.name, elapsed.Round(time.Microsecond),
			float64(got)/elapsed.Seconds(), speedup)
	}
	if miscounted {
		// A variant lost or duplicated tasks — a conservation bug, and the
		// whole point of running every variant to completion. Exit non-zero
		// so CI's example step fails instead of shipping a green log with a
		// BUG line buried in it.
		fmt.Println("\ntask accounting failed; see the BUG lines above")
		os.Exit(1)
	}
	fmt.Println("\nall variants processed the identical task multiset; only the order relaxed")
}
