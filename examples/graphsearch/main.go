// Graphsearch: parallel reachability over a synthetic graph using the
// relaxed stack as the DFS frontier. Reachability is order-insensitive —
// visiting nodes slightly out of depth-first order changes nothing about
// the answer — which makes the frontier the textbook consumer of relaxed
// LIFO semantics: near-LIFO keeps the search depth-first enough to bound
// the frontier size, while the relaxation removes the top-of-stack
// bottleneck.
//
// The program builds a deterministic random digraph, computes the
// reachable set sequentially, then runs the parallel search over a strict
// and a relaxed frontier and verifies all three agree.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stack2d"
)

const (
	nodes     = 200000
	outDegree = 4
	workers   = 8
)

// graph is a fixed-out-degree adjacency table built from a deterministic
// mix, so every run (and both frontier variants) searches the same graph.
type graph struct {
	adj [][outDegree]int32
}

func buildGraph() *graph {
	g := &graph{adj: make([][outDegree]int32, nodes)}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := range g.adj {
		for j := 0; j < outDegree; j++ {
			// Bias edges forward so the reachable set from node 0 is large
			// but not total.
			if next()%8 < 6 {
				g.adj[i][j] = int32(next() % nodes)
			} else {
				g.adj[i][j] = int32(i) // self loop = dead edge
			}
		}
	}
	return g
}

// sequentialReach is the oracle: classic DFS.
func sequentialReach(g *graph, root int32) int {
	visited := make([]bool, nodes)
	stack := []int32{root}
	visited[root] = true
	count := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, m := range g.adj[n] {
			if !visited[m] {
				visited[m] = true
				stack = append(stack, m)
			}
		}
	}
	return count
}

// parallelReach runs the search with the given frontier handles factory.
func parallelReach(g *graph, root int32, newHandle func() stack2d.Interface[int32]) (int, time.Duration) {
	visited := make([]atomic.Bool, nodes)
	var count atomic.Int64
	var inFlight atomic.Int64

	seed := newHandle()
	visited[root].Store(true)
	inFlight.Store(1)
	seed.Push(root)

	began := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := newHandle()
			for inFlight.Load() > 0 {
				n, ok := h.Pop()
				if !ok {
					continue
				}
				count.Add(1)
				for _, m := range g.adj[n] {
					if !visited[m].Load() && visited[m].CompareAndSwap(false, true) {
						inFlight.Add(1)
						h.Push(m)
					}
				}
				inFlight.Add(-1)
			}
		}()
	}
	wg.Wait()
	return int(count.Load()), time.Since(began)
}

func main() {
	g := buildGraph()
	want := sequentialReach(g, 0)
	fmt.Printf("digraph: %d nodes, out-degree %d; sequential DFS reaches %d nodes\n\n", nodes, outDegree, want)

	variants := []struct {
		name string
		mk   func() func() stack2d.Interface[int32]
	}{
		{"treiber (strict)", func() func() stack2d.Interface[int32] {
			s := stack2d.NewStrict[int32]()
			return func() stack2d.Interface[int32] { return s }
		}},
		{"2D-stack (default)", func() func() stack2d.Interface[int32] {
			s := stack2d.New[int32](stack2d.WithExpectedThreads(workers))
			return func() stack2d.Interface[int32] { return s.NewHandle() }
		}},
	}
	for _, v := range variants {
		got, elapsed := parallelReach(g, 0, v.mk())
		status := "ok"
		if got != want {
			status = fmt.Sprintf("MISMATCH (got %d, want %d)", got, want)
		}
		fmt.Printf("%-20s %10v  %9.0f nodes/s  reachable set %s\n",
			v.name, elapsed.Round(time.Millisecond),
			float64(got)/elapsed.Seconds(), status)
	}
	fmt.Println("\nrelaxing the frontier's LIFO order cannot change reachability — only the")
	fmt.Println("visit order — so the relaxed stack is a drop-in frontier under contention")
}
