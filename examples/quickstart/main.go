// Quickstart: the smallest useful tour of the stack2d public API — build a
// relaxed stack, push and pop through per-goroutine handles, inspect the
// relaxation bound, and fall back to the strict stack when exact LIFO
// matters.
package main

import (
	"fmt"
	"sync"

	"stack2d"
)

func main() {
	// A 2D-Stack tuned for 4 concurrent goroutines (width 4P = 16
	// sub-stacks, depth 64). Theorem 1 gives its k-out-of-order bound.
	s := stack2d.New[string](stack2d.WithExpectedThreads(4))
	fmt.Printf("configured: %+v\n", s.Config())
	fmt.Printf("relaxation bound k = %d\n\n", s.K())

	// Handles carry per-goroutine search state: one per goroutine.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < 5; i++ {
				h.Push(fmt.Sprintf("task-%d.%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("pushed 20 items; Len() = %d\n", s.Len())

	// Pop a few: values come back near-LIFO, within k of the top.
	h := s.NewHandle()
	fmt.Print("popped: ")
	for i := 0; i < 5; i++ {
		if v, ok := h.Pop(); ok {
			fmt.Printf("%s ", v)
		}
	}
	fmt.Println()

	// The convenience methods work without a handle (they borrow one from
	// an internal pool) — handy off the hot path.
	s.Push("one-off")
	if v, ok := s.Pop(); ok {
		fmt.Printf("pooled-handle pop: %s\n", v)
	}

	// Need a guaranteed strict LIFO? Ask for zero relaxation (width 1)...
	strict := stack2d.New[int](stack2d.WithRelaxation(0))
	strict.Push(1)
	strict.Push(2)
	a, _ := strict.Pop()
	b, _ := strict.Pop()
	fmt.Printf("\nWithRelaxation(0): popped %d then %d (exact LIFO, k=%d)\n", a, b, strict.K())

	// ... or use the classic Treiber stack directly.
	t := stack2d.NewStrict[int]()
	t.Push(10)
	t.Push(20)
	x, _ := t.Pop()
	fmt.Printf("NewStrict: top was %d\n", x)

	// Everything left can be drained at teardown.
	rest := s.Drain()
	fmt.Printf("\ndrained %d remaining items\n", len(rest))
}
