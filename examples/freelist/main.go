// Freelist: object recycling through a concurrent stack. A LIFO free list
// returns the most-recently-released buffer, which is the one most likely
// to still be cache-resident — but strict LIFO serialises every
// acquire/release on one CAS word. A relaxed stack hands back *a recently
// released* buffer instead of *the most recently released* one, which is
// exactly as good for recycling and removes the bottleneck.
//
// The program drives an acquire/compute/release loop from many goroutines
// over three free-list variants and reports throughput and allocation
// behaviour (misses = acquisitions that had to allocate fresh).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stack2d"
)

const bufSize = 4096

// pool is a free list of byte buffers over any stack implementation.
type pool struct {
	acquire func() ([]byte, bool)
	release func([]byte)
}

// workload drives acquire/use/release cycles for the given duration.
func workload(p pool, workers int, d time.Duration) (cycles, misses uint64) {
	var stop atomic.Bool
	var cyc, mis atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				buf, hit := p.acquire()
				if !hit {
					buf = make([]byte, bufSize)
					mis.Add(1)
				}
				// Touch the buffer (the part recycling keeps warm).
				for i := 0; i < bufSize; i += 512 {
					buf[i]++
				}
				p.release(buf)
				cyc.Add(1)
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return cyc.Load(), mis.Load()
}

func main() {
	const (
		workers  = 8
		duration = 300 * time.Millisecond
		prefill  = 64 // warm buffers seeded into each free list
	)
	fmt.Printf("free-list recycling: %d workers, %v per variant, %d warm buffers\n\n",
		workers, duration, prefill)

	type variant struct {
		name string
		make func() pool
	}
	variants := []variant{
		{"treiber (strict)", func() pool {
			s := stack2d.NewStrict[[]byte]()
			for i := 0; i < prefill; i++ {
				s.Push(make([]byte, bufSize))
			}
			return pool{
				acquire: func() ([]byte, bool) { return s.Pop() },
				release: func(b []byte) { s.Push(b) },
			}
		}},
		{"2D-stack (default)", func() pool {
			s := stack2d.New[[]byte](stack2d.WithExpectedThreads(workers))
			h := s.NewHandle()
			for i := 0; i < prefill; i++ {
				h.Push(make([]byte, bufSize))
			}
			// Per-goroutine handles via a pool-of-handles pattern: the
			// convenience API does this internally; the explicit variant
			// below shows the hot path.
			var handles sync.Pool
			handles.New = func() any { return s.NewHandle() }
			return pool{
				acquire: func() ([]byte, bool) {
					h := handles.Get().(*stack2d.Handle[[]byte])
					defer handles.Put(h)
					return h.Pop()
				},
				release: func(b []byte) {
					h := handles.Get().(*stack2d.Handle[[]byte])
					defer handles.Put(h)
					h.Push(b)
				},
			}
		}},
		{"2D-stack (tight k=32)", func() pool {
			s := stack2d.New[[]byte](stack2d.WithRelaxation(32), stack2d.WithExpectedThreads(workers))
			h := s.NewHandle()
			for i := 0; i < prefill; i++ {
				h.Push(make([]byte, bufSize))
			}
			return pool{
				acquire: func() ([]byte, bool) { return s.Pop() },
				release: func(b []byte) { s.Push(b) },
			}
		}},
	}

	for _, v := range variants {
		p := v.make()
		cycles, misses := workload(p, workers, duration)
		fmt.Printf("%-22s %8.0f cycles/s   fresh allocations: %d (%.3f%%)\n",
			v.name,
			float64(cycles)/duration.Seconds(),
			misses, 100*float64(misses)/float64(cycles))
	}
	fmt.Println("\na relaxed free list recycles just as well — any recent buffer is warm —")
	fmt.Println("while spreading the acquire/release contention across sub-stacks")
}
