// Command stackfuzz performs randomized differential testing: it generates
// random operation scripts and random configurations, runs them against
// every stack implementation sequentially, and checks each result against
// the sequential specification (strict LIFO for exact designs,
// k-out-of-order for relaxed ones — the corrected Theorem-1 constant for
// the 2D-Stack, see DESIGN.md §2). Every k-bounded history additionally
// runs through seqspec.KStackChecker (the concurrent-history distance
// checker) with synthesized sequential intervals, which must agree with
// the replay checker exactly; a disagreement is a checker bug, not a
// structure bug, and is reported as a failure all the same. Failures print
// a reproducible seed.
//
// Usage:
//
//	stackfuzz [-iterations 200] [-opsmax 2000] [-seed 0]
//
// With -seed 0 a fresh seed is derived per iteration from the base run
// seed; pass a specific seed to replay a reported failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/flatcombining"
	"stack2d/internal/ksegment"
	"stack2d/internal/multistack"
	"stack2d/internal/seqspec"
	"stack2d/internal/treiber"
	"stack2d/internal/xrand"
)

// target is one implementation under differential test.
type target struct {
	name string
	// build returns push/pop closures and the k bound to check against.
	build func(rng *xrand.State) (push func(uint64), pop func() (uint64, bool), k int64)
}

func targets() []target {
	return []target{
		{"treiber", func(_ *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			s := treiber.New[uint64]()
			return s.Push, s.Pop, 0
		}},
		{"elimination", func(rng *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			cfg := elimination.Config{Slots: rng.Intn(4) + 1, Spins: rng.Intn(8) + 1, Symmetric: rng.Bool()}
			h := elimination.MustNew[uint64](cfg).NewHandle()
			return h.Push, h.Pop, 0
		}},
		{"flat-combining", func(_ *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			h := flatcombining.New[uint64]().NewHandle()
			return h.Push, h.Pop, 0
		}},
		{"2D-stack", func(rng *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			depth := int64(rng.Intn(8) + 1)
			cfg := core.Config{
				Width:      rng.Intn(8) + 1,
				Depth:      depth,
				Shift:      int64(rng.Intn(int(depth))) + 1,
				RandomHops: rng.Intn(3),
			}
			h := core.MustNew[uint64](cfg).NewHandle()
			return h.Push, h.Pop, cfg.K()
		}},
		{"2D-stack-batched", func(rng *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			depth := int64(rng.Intn(8) + 1)
			cfg := core.Config{
				Width:      rng.Intn(8) + 1,
				Depth:      depth,
				Shift:      depth,
				RandomHops: rng.Intn(3),
			}
			h := core.MustNew[uint64](cfg).NewHandle()
			push := func(v uint64) { h.PushBatch([]uint64{v}) }
			pop := func() (uint64, bool) {
				out := h.PopBatch(1)
				if len(out) == 0 {
					return 0, false
				}
				return out[0], true
			}
			return push, pop, cfg.K()
		}},
		{"k-segment", func(rng *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			cfg := ksegment.Config{SegmentSize: rng.Intn(16) + 1}
			h := ksegment.MustNew[uint64](cfg).NewHandle()
			return h.Push, h.Pop, cfg.K()
		}},
		{"k-robin", func(rng *xrand.State) (func(uint64), func() (uint64, bool), int64) {
			width := rng.Intn(8) + 1
			cfg := multistack.Config{Width: width, Policy: multistack.RoundRobin}
			h := multistack.MustNew[uint64](cfg).NewHandle()
			// Round-robin has NO deterministic bound: sub-stack imbalance
			// drifts like a random walk over the script, so distances grow
			// with history length (this fuzzer discovered exactly that; see
			// relax.KRobinBound). Verify conservation only (k = -1).
			return h.Push, h.Pop, -1
		}},
	}
}

func main() {
	var (
		iterations = flag.Int("iterations", 200, "random scripts to run")
		opsMax     = flag.Int("opsmax", 2000, "maximum operations per script")
		seed       = flag.Uint64("seed", 0, "replay a specific iteration seed (0 = derive per iteration)")
	)
	flag.Parse()

	failures := 0
	for it := 0; it < *iterations; it++ {
		itSeed := *seed
		if itSeed == 0 {
			itSeed = 0x5eed + uint64(it)*0x9e3779b97f4a7c15
		}
		if err := runIteration(itSeed, *opsMax); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL seed=%#x: %v\n", itSeed, err)
		}
		if *seed != 0 {
			break // explicit seed: single replay
		}
	}
	if failures > 0 {
		fmt.Printf("stackfuzz: %d failing iterations\n", failures)
		os.Exit(1)
	}
	fmt.Printf("stackfuzz: %d iterations, all implementations consistent with their specs\n", *iterations)
}

// runIteration drives one random script through every target.
func runIteration(seed uint64, opsMax int) error {
	scriptRNG := xrand.New(seed)
	nOps := scriptRNG.Intn(opsMax) + 1
	script := make([]bool, nOps) // true = push
	for i := range script {
		script[i] = scriptRNG.Float64() < 0.55 // slight push bias avoids all-empty runs
	}
	for _, tg := range targets() {
		cfgRNG := xrand.New(seed ^ 0xc0ffee)
		push, pop, k := tg.build(cfgRNG)
		var ops []seqspec.Op
		next := uint64(1)
		for _, isPush := range script {
			if isPush {
				push(next)
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
				next++
			} else {
				v, ok := pop()
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			}
		}
		for { // drain
			v, ok := pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		switch {
		case k == 0:
			if err := seqspec.CheckLIFO(ops); err != nil {
				return fmt.Errorf("%s: %w", tg.name, err)
			}
		case k < 0:
			// Unbounded design: conservation only.
			if _, err := seqspec.MeasureDistances(ops); err != nil {
				return fmt.Errorf("%s: %w", tg.name, err)
			}
		default:
			maxDist, err := seqspec.CheckKOutOfOrder(ops, int(k))
			if err != nil {
				return fmt.Errorf("%s (k=%d): %w", tg.name, k, err)
			}
			if err := seqspec.CrossCheckKDistance(ops, k, maxDist); err != nil {
				return fmt.Errorf("%s (k=%d): %w", tg.name, k, err)
			}
		}
	}
	return nil
}
