package main

import (
	"testing"

	"stack2d/internal/harness"
	"stack2d/internal/relax"
)

func TestParseAlgorithmCoversFigure2Set(t *testing.T) {
	names := []string{"2d", "k-segment", "k-robin", "random", "random-c2", "elimination", "treiber"}
	seen := map[relax.Algorithm]bool{}
	for _, n := range names {
		a, err := parseAlgorithm(n)
		if err != nil {
			t.Fatalf("parseAlgorithm(%q): %v", n, err)
		}
		seen[a] = true
	}
	for _, a := range relax.Figure2Algorithms() {
		if !seen[a] {
			t.Errorf("algorithm %v not reachable from the CLI", a)
		}
	}
}

func TestCheckConservationPasses(t *testing.T) {
	f := harness.Figure1Factory(relax.TwoDStack, 128, 2)
	if err := checkConservation(f, 2, 5000); err != nil {
		t.Fatalf("conservation on a correct stack failed: %v", err)
	}
}

func TestCheckKBoundPasses(t *testing.T) {
	f := harness.Figure1Factory(relax.TwoDStack, 128, 2)
	if err := checkKBound(f, f.K, 2, 5000); err != nil {
		t.Fatalf("k-bound on a correct stack failed: %v", err)
	}
}

func TestCheckKBoundStrictTreiber(t *testing.T) {
	f := harness.NewTreiberFactory()
	if err := checkKBound(f, 0, 2, 5000); err != nil {
		t.Fatalf("k-bound on treiber failed: %v", err)
	}
}
