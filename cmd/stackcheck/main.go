// Command stackcheck runs the repository's correctness battery against a
// chosen algorithm outside the test harness — useful for soak testing on a
// target machine and for demonstrating the verification methodology:
//
//   - conservation: under a concurrent mixed workload, the multiset of
//     values recovered (pops + final drain) must equal the multiset pushed;
//   - k-bound: a sequential run's trace must respect the configured
//     k-out-of-order bound exactly, and a concurrent run's completion trace
//     must respect it with the documented 2-per-worker slack;
//   - empty sanity: pops must never report empty while more than k items
//     are provably present.
//
// Usage:
//
//	stackcheck -alg 2d|k-segment|k-robin|random|random-c2|elimination|treiber \
//	           [-k 256] [-threads 8] [-ops 200000] [-rounds 3]
//
// Exit status 0 means every round passed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"stack2d/internal/harness"
	"stack2d/internal/relax"
	"stack2d/internal/trace"
	"stack2d/internal/xrand"
)

func main() {
	var (
		alg     = flag.String("alg", "2d", "algorithm under test")
		k       = flag.Int64("k", 256, "relaxation budget for k-bounded algorithms")
		threads = flag.Int("threads", 8, "concurrent workers")
		ops     = flag.Int("ops", 200000, "operations per worker per round")
		rounds  = flag.Int("rounds", 3, "repetitions of the whole battery")
	)
	flag.Parse()

	algorithm, err := parseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stackcheck:", err)
		os.Exit(2)
	}
	var f harness.Factory
	kBound := int64(-1)
	if algorithm.KConfigurable() {
		f = harness.Figure1Factory(algorithm, *k, *threads)
		kBound = f.K
	} else {
		f = harness.Figure2Factory(algorithm, *threads)
		if algorithm == relax.TreiberStack || algorithm == relax.EliminationStack {
			kBound = 0
		}
	}

	fmt.Printf("checking %s (k=%v) with %d workers x %d ops x %d rounds\n",
		f.Name, kBound, *threads, *ops, *rounds)

	for round := 1; round <= *rounds; round++ {
		if err := checkConservation(f, *threads, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "round %d: conservation FAILED: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Printf("round %d: conservation ok\n", round)
		if kBound >= 0 {
			if err := checkKBound(f, kBound, *threads, *ops/4); err != nil {
				fmt.Fprintf(os.Stderr, "round %d: k-bound FAILED: %v\n", round, err)
				os.Exit(1)
			}
			fmt.Printf("round %d: k-bound ok (k=%d, slack 2/worker)\n", round, kBound)
		} else {
			fmt.Printf("round %d: k-bound skipped (%s is unbounded)\n", round, f.Name)
		}
	}
	fmt.Println("PASS")
}

// checkConservation drives a concurrent mixed workload and verifies the
// multiset of recovered values equals the multiset pushed.
func checkConservation(f harness.Factory, workers, opsPerW int) error {
	inst := f.New()
	popped := make([][]uint64, workers)
	pushed := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := inst.NewWorker()
			rng := xrand.New(uint64(w) + 99)
			base := uint64(w+1) << 40
			n := uint64(0)
			for i := 0; i < opsPerW; i++ {
				if rng.Bool() {
					n++
					wk.Push(base | n)
				} else if v, ok := wk.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
			pushed[w] = n
		}(w)
	}
	wg.Wait()

	var totalPushed uint64
	for _, n := range pushed {
		totalPushed += n
	}
	seen := make(map[uint64]int)
	for w := range popped {
		for _, v := range popped[w] {
			seen[v]++
		}
	}
	drainWorker := inst.NewWorker()
	for {
		v, ok := drainWorker.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	if uint64(len(seen)) != totalPushed {
		return fmt.Errorf("recovered %d distinct values, pushed %d", len(seen), totalPushed)
	}
	for v, n := range seen {
		if n != 1 {
			return fmt.Errorf("value %#x recovered %d times", v, n)
		}
	}
	return nil
}

// checkKBound records a stamped concurrent trace and validates it against
// the relaxation bound with completion-order slack.
func checkKBound(f harness.Factory, k int64, workers, opsPerW int) error {
	inst := f.New()
	rec := trace.NewRecorder()
	var label atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := inst.NewWorker()
			tw := rec.NewWorker()
			rng := xrand.New(uint64(w) + 7)
			for i := 0; i < opsPerW; i++ {
				if rng.Bool() {
					v := label.Add(1)
					tw.Push(v) // record at invocation (trace.Worker.Push contract)
					wk.Push(v)
				} else {
					v, ok := wk.Pop()
					tw.Pop(v, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	wk := inst.NewWorker()
	tw := rec.NewWorker()
	for {
		v, ok := wk.Pop()
		tw.Pop(v, ok)
		if !ok {
			break
		}
	}
	maxDist, err := rec.CheckKWithSlack(k)
	if err != nil {
		return err
	}
	fmt.Printf("  max observed distance %d (bound %d + slack %d)\n", maxDist, k, 2*rec.Workers())
	return nil
}

func parseAlgorithm(s string) (relax.Algorithm, error) {
	switch strings.ToLower(s) {
	case "2d", "2d-stack", "2dstack":
		return relax.TwoDStack, nil
	case "k-segment", "ksegment":
		return relax.KSegment, nil
	case "k-robin", "krobin":
		return relax.KRobin, nil
	case "random":
		return relax.RandomStack, nil
	case "random-c2", "c2":
		return relax.RandomC2Stack, nil
	case "elimination":
		return relax.EliminationStack, nil
	case "treiber":
		return relax.TreiberStack, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}
