package main

import (
	"fmt"
	"os"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/engine"
	"stack2d/internal/harness"
	"stack2d/internal/relax"
	"stack2d/internal/seqspec"
	"stack2d/internal/stats"
)

// backendDemo is the -backend auto experiment: where the geometry
// controller retunes one structure's window, the backend selector decides
// which structure should be live at all. A 2D backend built from the
// start geometry fronts an elimination stack and a strict Treiber stack
// behind the epoch-pinned switcher (internal/engine), a Selector samples
// the live counters every -tick, and halfway through the phased run the
// semantics budget is collapsed to zero — the shape of an application
// whose tolerance for reordering disappears mid-run. The collapse must
// deterministically evict the relaxed backend for a strict one, whatever
// the load looks like: a swap with reason "k-budget-zero" in the history,
// the selector time series and the -csv rows. That reason string is what
// CI greps for.
//
// The run records its full interval history and replays it through the
// k-distance checker with exactly the documented budget (DESIGN.md §9):
// the largest bound of any backend that was active, plus the switcher's
// tracked swap displacement, plus the 2D backend's shrink displacement.
// Any miss — no budget swap, a relaxed backend still live, the checker
// failing — returns false (exit status 1).
func backendDemo(start core.Config, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, sink *csvSink, plane *obsPlane) bool {

	twod, err := relax.NewTwoDBackend[uint64](start)
	if err != nil {
		fatal("backend demo: %v", err)
	}
	sw, err := engine.New[uint64](twod)
	if err != nil {
		fatal("backend demo: %v", err)
	}
	elim, err := relax.NewEliminationBackend[uint64](elimination.DefaultConfig(threads))
	if err != nil {
		fatal("backend demo: %v", err)
	}
	if err := sw.Register(elim); err != nil {
		fatal("backend demo: %v", err)
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		fatal("backend demo: %v", err)
	}
	plane.instrumentSwitcher(sw)

	sel, err := adapt.NewSelector(sw, adapt.SelectorPolicy{Tick: tick})
	if err != nil {
		fatal("backend selector: %v", err)
	}

	phases := harness.ContentionPhases(threads, phaseDur)
	var total time.Duration
	for _, ph := range phases {
		total += ph.Duration
	}
	fmt.Printf("\n## native backend run (P=%d, %v/phase, backends %v, budget collapses to 0 at %v)\n",
		threads, phaseDur, sw.Backends(), total/2)

	// The mid-run tolerance collapse: after half the run the application
	// can no longer absorb any reordering.
	collapse := time.AfterFunc(total/2, func() { sel.SetKBudget(0) })
	defer collapse.Stop()

	sel.Start()
	res, runErr := harness.RunPhasedBackend(sw, phases, harness.PhasedWorkload{
		MaxWorkers: threads, Prefill: prefill, Seed: seed, Record: true,
	})
	sel.Stop()
	if runErr != nil {
		fatal("backend run failed: %v", runErr)
	}

	ts := stats.NewTable("tick", "ops", "thr(ops/s)", "cas/op", "push-frac", "action", "reason", "backend", "k")
	for _, rec := range sel.History() {
		ts.AddRow(
			fmt.Sprintf("%d", rec.Tick),
			fmt.Sprintf("%d", rec.Ops),
			fmt.Sprintf("%.0f", rec.Throughput),
			fmt.Sprintf("%.3f", rec.CASPerOp),
			fmt.Sprintf("%.2f", rec.PushFrac),
			rec.Action,
			rec.Reason,
			rec.Backend,
			fmt.Sprintf("%d", rec.K),
		)
		sink.recordSelector("native-backend", rec)
	}
	ts.Render(os.Stdout)

	swaps := sw.Swaps()
	fmt.Println()
	st := stats.NewTable("swap", "from", "to", "reason", "migrated", "disp")
	for _, rec := range swaps {
		st.AddRow(
			fmt.Sprintf("%d", rec.Seq),
			rec.From, rec.To, rec.Reason,
			fmt.Sprintf("%d", rec.Migrated),
			fmt.Sprintf("%d", rec.Displacement),
		)
	}
	st.Render(os.Stdout)

	ok := true
	fmt.Println()

	// Gate 1: the budget collapse evicted the relaxed backend, for the
	// recorded reason, and a strict backend (bound 0) finished the run.
	sawBudgetSwap := false
	for _, rec := range swaps {
		if rec.Reason == adapt.ReasonKBudgetZero {
			sawBudgetSwap = true
		}
	}
	if !sawBudgetSwap {
		fmt.Printf("FAIL: the budget collapse produced no %q swap (swaps: %d)\n",
			adapt.ReasonKBudgetZero, len(swaps))
		ok = false
	}
	finalBackend := sw.ActiveBackend()
	if k, known := sw.BackendKBound(finalBackend); !known || k != 0 {
		fmt.Printf("FAIL: backend %q (bound %d) still live after the budget collapsed to 0\n", finalBackend, k)
		ok = false
	} else {
		fmt.Printf("budget collapse honoured: %q (bound 0) live after %d swap(s)\n", finalBackend, len(swaps))
	}

	// Gate 2: the whole recorded run — spanning every backend that was
	// live and every migration — verifies under the documented budget.
	allowance := sw.SwapDisplacementBound()
	if sr, hasShrink := any(twod).(interface{ ShrinkDisplacementBound() int64 }); hasShrink {
		allowance += sr.ShrinkDisplacementBound()
	}
	checker := seqspec.KStackChecker{K: sw.KBound(), Allowance: allowance}
	rep, err := checker.Check(res.History)
	if err != nil {
		fmt.Printf("FAIL: k-distance check across swaps (k=%d allowance=%d): %v\n",
			checker.K, checker.Allowance, err)
		ok = false
	} else {
		fmt.Printf("k-distance check across swaps: %d ops, %d pops, maxDist=%d maxStrain=%d <= k=%d + allowance=%d: OK\n",
			len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain, checker.K, checker.Allowance)
	}
	return ok
}
