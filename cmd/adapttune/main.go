// Command adapttune demonstrates the adaptive relaxation controller
// (internal/adapt) on a phase-shifting workload (low → high → low
// contention). It runs two experiments:
//
//  1. Simulated convergence (deterministic, machine-independent): the
//     controller steers a 2D-Stack running on internal/sim's model of the
//     paper's 2-socket, 16-core testbed, where CAS contention arises
//     organically from cache-line ping-pong. Starting from a narrow
//     window, the high-contention phase must drive the geometry wide and
//     the simulated throughput past the static baseline — the paper's
//     "continuous relaxation" claim, closed-loop.
//
//  2. Native run (this machine): the same controller against a real
//     core.Stack under internal/harness phases, with the internal/quality
//     oracle attached, verifying that the realised error distance never
//     exceeds the configured k ceiling while the window adapts.
//
// Both print the controller time series — (tick, width, depth, k,
// throughput, cas/op, moves/op, probes/op, action) — and a per-phase
// static-vs-adaptive comparison. Exit status 1 if the k ceiling is ever
// violated (by geometry or realised distance) or the simulated adaptive
// run fails to beat its static baseline under high contention.
//
// Usage:
//
//	adapttune [-threads 8] [-phase 300ms] [-tick 10ms] [-kceil 8192]
//	          [-start-width 2] [-start-depth 8] [-sim] [-native]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/sim"
	"stack2d/internal/stats"
)

func main() {
	var (
		threads    = flag.Int("threads", 8, "native worker pool size P (the high phase uses all of them)")
		phaseDur   = flag.Duration("phase", 300*time.Millisecond, "duration of each native phase")
		tick       = flag.Duration("tick", 10*time.Millisecond, "controller sampling tick (native run)")
		kceil      = flag.Int64("kceil", 8192, "relaxation ceiling the controller must respect")
		startWidth = flag.Int("start-width", 2, "initial (and static-baseline) window width")
		startDepth = flag.Int64("start-depth", 8, "initial (and static-baseline) window depth (shift = depth)")
		prefill    = flag.Int("prefill", 32768, "initial native stack population")
		seed       = flag.Uint64("seed", 1, "workload seed")
		quality    = flag.Bool("quality", true, "attach the error-distance oracle to the native run")
		maxDepth   = flag.Int64("max-depth", 512, "geometry depth cap")
		runSim     = flag.Bool("sim", true, "run the simulated convergence experiment")
		runNative  = flag.Bool("native", true, "run the native phased experiment")
		simThreads = flag.Int("sim-threads", 16, "simulated cores used in the high phase")
		simTicks   = flag.Int("sim-ticks", 12, "controller ticks per simulated phase")
		horizon    = flag.Int64("horizon", 200000, "simulated cycles per controller tick")
	)
	flag.Parse()

	start := core.Config{Width: *startWidth, Depth: *startDepth, Shift: *startDepth, RandomHops: 2}
	if err := start.Validate(); err != nil {
		fatal("invalid starting geometry: %v", err)
	}
	if start.K() > *kceil {
		fatal("starting geometry already violates the ceiling: k=%d > %d (raise -kceil or narrow -start-width/-start-depth)",
			start.K(), *kceil)
	}

	fmt.Printf("# adapttune: runtime self-tuning of the 2D window (k <= %d)\n", *kceil)
	fmt.Printf("# start geometry: width %d, depth %d, shift %d (k=%d)\n",
		start.Width, start.Depth, start.Shift, start.K())

	failed := false
	if *runSim {
		if !simDemo(start, *kceil, *simThreads, *simTicks, *horizon, *maxDepth) {
			failed = true
		}
	}
	if *runNative {
		if !nativeDemo(start, *kceil, *threads, *phaseDur, *tick, *prefill, *seed, *quality, *maxDepth) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// simTarget adapts the discrete-event simulation to adapt.Target: each
// controller tick corresponds to one simulated segment at the current
// geometry, whose instrumented counters accumulate into an OpStats.
type simTarget struct {
	machine sim.Machine
	cfg     core.Config
	acc     core.OpStats
}

func (st *simTarget) Config() core.Config { return st.cfg }

func (st *simTarget) Reconfigure(cfg core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	st.cfg = cfg
	return nil
}

func (st *simTarget) StatsSnapshot() core.OpStats { return st.acc }

// segment simulates horizon cycles at the current geometry with p threads
// and folds the work into the accumulated stats.
func (st *simTarget) segment(p int, horizon int64, seed uint64) (sim.TwoDWork, error) {
	w, err := sim.TwoDSegment(st.machine, st.cfg.Width, st.cfg.Depth, st.cfg.Shift, st.cfg.RandomHops, p, horizon, seed)
	if err != nil {
		return w, err
	}
	st.acc.Pushes += w.Pushes
	st.acc.Pops += w.Pops
	st.acc.EmptyPops += w.EmptyPops
	st.acc.Probes += w.Probes
	st.acc.CASFailures += w.CASFailures
	st.acc.WindowRaises += w.WindowMoves
	return w, nil
}

// simDemo runs the deterministic convergence experiment; returns true on
// success.
func simDemo(start core.Config, kceil int64, simThreads, simTicks int, horizon, maxDepth int64) bool {
	machine := sim.DefaultMachine()
	if simThreads > machine.Cores() {
		fatal("sim-threads %d exceeds the simulated machine's %d cores", simThreads, machine.Cores())
	}
	low := simThreads / 4
	if low < 1 {
		low = 1
	}
	phases := []struct {
		name    string
		threads int
	}{
		{"low-1", low}, {"high", simThreads}, {"low-2", low},
	}

	fmt.Printf("\n## simulated convergence (2×%d-core machine model, %d cycles/tick)\n",
		machine.CoresPerSocket, horizon)

	// Static baseline: same segments, geometry pinned at start.
	staticOps := make([]uint64, len(phases))
	{
		st := &simTarget{machine: machine, cfg: start}
		for pi, ph := range phases {
			for t := 0; t < simTicks; t++ {
				w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
				if err != nil {
					fatal("static sim segment: %v", err)
				}
				staticOps[pi] += w.Ops
			}
		}
	}

	// Adaptive run: the real controller steps once per segment.
	st := &simTarget{machine: machine, cfg: start}
	ctrl, err := adapt.New(st, adapt.Policy{
		Goal:          adapt.MaxThroughput,
		KCeiling:      kceil,
		MinWidth:      start.Width,
		MaxWidth:      4 * simThreads,
		MinDepth:      start.Depth,
		MaxDepth:      maxDepth,
		Cooldown:      1,
		MinOpsPerTick: 32,
	})
	if err != nil {
		fatal("sim controller: %v", err)
	}
	adaptiveOps := make([]uint64, len(phases))
	type row struct {
		phase string
		rec   adapt.TickRecord
		ops   uint64
	}
	var rows []row
	for pi, ph := range phases {
		for t := 0; t < simTicks; t++ {
			w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
			if err != nil {
				fatal("adaptive sim segment: %v", err)
			}
			adaptiveOps[pi] += w.Ops
			rec := ctrl.Step(time.Duration(horizon)) // 1 simulated cycle ≡ 1ns
			rows = append(rows, row{phases[pi].name, rec, w.Ops})
		}
	}

	ts := stats.NewTable("tick", "phase", "width", "depth", "k", "ops/kcycle", "cas/op", "moves/op", "probes/op", "action")
	for _, r := range rows {
		ts.AddRow(
			fmt.Sprintf("%d", r.rec.Tick),
			r.phase,
			fmt.Sprintf("%d", r.rec.Width),
			fmt.Sprintf("%d", r.rec.Depth),
			fmt.Sprintf("%d", r.rec.K),
			fmt.Sprintf("%.1f", float64(r.ops)*1000/float64(horizon)),
			fmt.Sprintf("%.3f", r.rec.CASPerOp),
			fmt.Sprintf("%.4f", r.rec.MovesPerOp),
			fmt.Sprintf("%.2f", r.rec.ProbesPerOp),
			r.rec.Action,
		)
	}
	ts.Render(os.Stdout)

	ok := true
	fmt.Println()
	for pi, ph := range phases {
		fmt.Printf("sim %-6s (%2d threads): static %8.1f ops/kcycle, adaptive %8.1f ops/kcycle (%.2fx)\n",
			ph.name, ph.threads,
			float64(staticOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])/float64(staticOps[pi]))
	}
	final := st.cfg
	fmt.Printf("sim final geometry: width %d, depth %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.K(), start.K())
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: sim tick %d ran with k=%d above the ceiling %d\n", rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	if adaptiveOps[1] <= staticOps[1] {
		fmt.Printf("FAIL: simulated adaptive high phase (%d ops) did not beat static (%d ops)\n",
			adaptiveOps[1], staticOps[1])
		ok = false
	}
	if final.K() <= start.K() {
		fmt.Printf("FAIL: controller never grew the window under simulated contention\n")
		ok = false
	}
	return ok
}

// nativeDemo runs the phased workload on this machine; returns true on
// success (ceiling violations fail it; a missing throughput margin only
// warns, since native contention depends on the hardware).
func nativeDemo(start core.Config, kceil int64, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, quality bool, maxDepth int64) bool {

	phases := harness.ContentionPhases(threads, phaseDur)
	w := harness.PhasedWorkload{MaxWorkers: threads, Prefill: prefill, Seed: seed, Quality: quality}

	fmt.Printf("\n## native run (P=%d, %v/phase, quality=%v)\n", threads, phaseDur, quality)

	staticStack := core.MustNew[uint64](start)
	staticRes, err := harness.RunPhased(staticStack, phases, w)
	if err != nil {
		fatal("static run failed: %v", err)
	}

	adaptStack := core.MustNew[uint64](start)
	ctrl, err := adapt.New(adaptStack, adapt.Policy{
		Goal:     adapt.MaxThroughput,
		KCeiling: kceil,
		Tick:     tick,
		MinWidth: start.Width,
		MaxWidth: 4 * threads,
		MinDepth: start.Depth,
		MaxDepth: maxDepth,
	})
	if err != nil {
		fatal("controller: %v", err)
	}
	ctrl.Start()
	adaptRes, err := harness.RunPhased(adaptStack, phases, w)
	ctrl.Stop()
	if err != nil {
		fatal("adaptive run failed: %v", err)
	}

	ts := stats.NewTable("tick", "width", "depth", "k", "thr(ops/s)", "cas/op", "moves/op", "probes/op", "action")
	for _, rec := range ctrl.History() {
		ts.AddRow(
			fmt.Sprintf("%d", rec.Tick),
			fmt.Sprintf("%d", rec.Width),
			fmt.Sprintf("%d", rec.Depth),
			fmt.Sprintf("%d", rec.K),
			fmt.Sprintf("%.0f", rec.Throughput),
			fmt.Sprintf("%.3f", rec.CASPerOp),
			fmt.Sprintf("%.4f", rec.MovesPerOp),
			fmt.Sprintf("%.2f", rec.ProbesPerOp),
			rec.Action,
		)
	}
	ts.Render(os.Stdout)

	fmt.Println()
	tb := stats.NewTable("phase", "workers", "think", "static ops/s", "adaptive ops/s", "speedup", "mean-err", "max-err(cum)")
	for i, pr := range adaptRes.Phases {
		sp := staticRes.Phases[i]
		tb.AddRow(
			pr.Phase.Name,
			fmt.Sprintf("%d", pr.Phase.Workers),
			fmt.Sprintf("%d", pr.Phase.ThinkSpin),
			stats.HumanOps(sp.Throughput),
			stats.HumanOps(pr.Throughput),
			fmt.Sprintf("%.2fx", pr.Throughput/sp.Throughput),
			fmt.Sprintf("%.1f", pr.MeanDistance),
			fmt.Sprintf("%d", pr.MaxDistanceSoFar),
		)
	}
	tb.Render(os.Stdout)

	ok := true
	fmt.Println()
	final := adaptStack.Config()
	fmt.Printf("native final geometry: width %d, depth %d, shift %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.Shift, final.K(), start.K())
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: native tick %d ran with k=%d above the ceiling %d\n", rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	if quality {
		if int64(adaptRes.Quality.Max) > kceil {
			fmt.Printf("FAIL: realised error distance %d exceeds the ceiling %d\n", adaptRes.Quality.Max, kceil)
			ok = false
		} else {
			fmt.Printf("realised max error distance %d <= ceiling %d: OK\n", adaptRes.Quality.Max, kceil)
		}
	}
	sHigh, aHigh := staticRes.Phases[1].Throughput, adaptRes.Phases[1].Throughput
	if aHigh <= sHigh {
		fmt.Printf("note: native adaptive high phase at %.2fx of static — expected on low-core machines, "+
			"where the window has no contention to relieve (see the simulated section)\n", aHigh/sHigh)
	} else {
		fmt.Printf("native high-contention phase: adaptive %.2fx static\n", aHigh/sHigh)
	}
	if err := adaptStack.CheckInvariants(); err != nil {
		fmt.Printf("FAIL: invariants after adaptive run: %v\n", err)
		ok = false
	}
	return ok
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adapttune: "+format+"\n", args...)
	os.Exit(1)
}
