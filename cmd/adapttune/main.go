// Command adapttune demonstrates the adaptive relaxation controller
// (internal/adapt) on a phase-shifting workload (low → high → low
// contention). It runs two experiments, for the 2D-Stack by default or for
// the 2D-Queue with -queue:
//
//  1. Simulated convergence (deterministic, machine-independent): the
//     controller steers the structure running on internal/sim's model of
//     the paper's 2-socket, 16-core testbed, where CAS contention arises
//     organically from cache-line ping-pong. Starting from a narrow
//     window, the high-contention phase must drive the geometry wide and
//     the simulated throughput past the static baseline — the paper's
//     "continuous relaxation" claim, closed-loop.
//
//  2. Native run (this machine): the same controller against the real
//     structure under internal/harness phases, with the error-distance
//     oracle attached (LIFO for the stack, FIFO for the queue), verifying
//     that the geometry's Theorem 1 bound stays at or under the configured
//     ceiling on every controller tick.
//
// Both print the controller time series — (tick, width, depth, k,
// throughput, cas/op, moves/op, probes/op, action) — and a per-phase
// static-vs-adaptive comparison; -csv additionally appends every tick as a
// machine-readable row for figure-style plots. Exit status 1 if the k
// ceiling is ever violated (by geometry, or by realised distance beyond the
// documented in-flight slack plus the tracked migration displacement) or
// the simulated adaptive run fails to beat its static baseline under high
// contention.
//
// Usage:
//
//	adapttune [-queue] [-threads 8] [-phase 300ms] [-tick 10ms] [-kceil 8192]
//	          [-start-width 2] [-start-depth 8] [-sim] [-native] [-csv out.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/sim"
	"stack2d/internal/stats"
	"stack2d/internal/twodqueue"
)

func main() {
	var (
		threads    = flag.Int("threads", 8, "native worker pool size P (the high phase uses all of them)")
		phaseDur   = flag.Duration("phase", 300*time.Millisecond, "duration of each native phase")
		tick       = flag.Duration("tick", 10*time.Millisecond, "controller sampling tick (native run)")
		kceil      = flag.Int64("kceil", 8192, "relaxation ceiling the controller must respect")
		startWidth = flag.Int("start-width", 2, "initial (and static-baseline) window width")
		startDepth = flag.Int64("start-depth", 8, "initial (and static-baseline) window depth (shift = depth)")
		prefill    = flag.Int("prefill", 32768, "initial native population")
		seed       = flag.Uint64("seed", 1, "workload seed")
		quality    = flag.Bool("quality", true, "attach the error-distance oracle to the native run")
		maxDepth   = flag.Int64("max-depth", 512, "geometry depth cap")
		runSim     = flag.Bool("sim", true, "run the simulated convergence experiment")
		runNative  = flag.Bool("native", true, "run the native phased experiment")
		simThreads = flag.Int("sim-threads", 16, "simulated cores used in the high phase")
		simTicks   = flag.Int("sim-ticks", 12, "controller ticks per simulated phase")
		horizon    = flag.Int64("horizon", 200000, "simulated cycles per controller tick")
		queueMode  = flag.Bool("queue", false, "steer the 2D-Queue instead of the 2D-Stack")
		csvPath    = flag.String("csv", "", "write the controller time series to this CSV file (overwritten per run)")
	)
	flag.Parse()

	start := core.Config{Width: *startWidth, Depth: *startDepth, Shift: *startDepth, RandomHops: 2}
	if err := start.Validate(); err != nil {
		fatal("invalid starting geometry: %v", err)
	}
	if start.K() > *kceil {
		fatal("starting geometry already violates the ceiling: k=%d > %d (raise -kceil or narrow -start-width/-start-depth)",
			start.K(), *kceil)
	}

	structure := "stack"
	if *queueMode {
		structure = "queue"
	}
	fmt.Printf("# adapttune: runtime self-tuning of the 2D %s window (k <= %d)\n", structure, *kceil)
	fmt.Printf("# start geometry: width %d, depth %d, shift %d (k=%d)\n",
		start.Width, start.Depth, start.Shift, start.K())

	var sink *csvSink
	if *csvPath != "" {
		var err error
		sink, err = newCSVSink(*csvPath)
		if err != nil {
			fatal("-csv: %v", err)
		}
	}

	failed := false
	if *runSim {
		if !simDemo(structure, start, *kceil, *simThreads, *simTicks, *horizon, *maxDepth, sink) {
			failed = true
		}
	}
	if *runNative {
		var ok bool
		if *queueMode {
			ok = nativeQueueDemo(start, *kceil, *threads, *phaseDur, *tick, *prefill, *seed, *quality, *maxDepth, sink)
		} else {
			ok = nativeDemo(start, *kceil, *threads, *phaseDur, *tick, *prefill, *seed, *quality, *maxDepth, sink)
		}
		if !ok {
			failed = true
		}
	}
	if sink != nil {
		if err := sink.close(); err != nil {
			fatal("-csv: %v", err)
		}
		fmt.Printf("\ncsv time series written to %s (%d rows)\n", *csvPath, sink.rows)
	}
	if failed {
		os.Exit(1)
	}
}

// csvSink accumulates controller tick rows across all experiments of one
// invocation, in a format gnuplot/pandas consume directly (ROADMAP's
// figure-style-plots item).
type csvSink struct {
	f      *os.File
	w      *csv.Writer
	rows   int
	closed bool
}

func newCSVSink(path string) (*csvSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &csvSink{f: f, w: csv.NewWriter(f)}
	if err := s.w.Write([]string{
		"experiment", "phase", "tick", "width", "depth", "shift", "k",
		"ops", "throughput", "cas_per_op", "moves_per_op", "probes_per_op", "action",
	}); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// record appends one controller tick under the given experiment label
// ("sim-stack", "native-queue", ...); phase is empty for native runs, whose
// ticks are not phase-aligned. Nil-safe, so call sites need no guards.
func (s *csvSink) record(experiment, phase string, rec adapt.TickRecord) {
	if s == nil {
		return
	}
	s.rows++
	s.w.Write([]string{
		experiment, phase,
		fmt.Sprintf("%d", rec.Tick),
		fmt.Sprintf("%d", rec.Width),
		fmt.Sprintf("%d", rec.Depth),
		fmt.Sprintf("%d", rec.Shift),
		fmt.Sprintf("%d", rec.K),
		fmt.Sprintf("%d", rec.Ops),
		fmt.Sprintf("%.2f", rec.Throughput),
		fmt.Sprintf("%.5f", rec.CASPerOp),
		fmt.Sprintf("%.5f", rec.MovesPerOp),
		fmt.Sprintf("%.3f", rec.ProbesPerOp),
		rec.Action,
	})
}

func (s *csvSink) close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// segmentFunc is the simulated-segment signature shared by the stack
// (sim.TwoDSegment) and queue (sim.TwoDQueueSegment) models.
type segmentFunc func(m sim.Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64) (sim.TwoDWork, error)

// simTarget adapts the discrete-event simulation to adapt.Reconfigurable:
// each controller tick corresponds to one simulated segment at the current
// geometry, whose instrumented counters accumulate into an OpStats.
type simTarget struct {
	machine sim.Machine
	cfg     core.Config
	acc     core.OpStats
	seg     segmentFunc // nil selects the stack model
}

func (st *simTarget) Config() core.Config { return st.cfg }

func (st *simTarget) Reconfigure(cfg core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	st.cfg = cfg
	return nil
}

func (st *simTarget) StatsSnapshot() core.OpStats { return st.acc }

// segment simulates horizon cycles at the current geometry with p threads
// and folds the work into the accumulated stats.
func (st *simTarget) segment(p int, horizon int64, seed uint64) (sim.TwoDWork, error) {
	seg := st.seg
	if seg == nil {
		seg = sim.TwoDSegment
	}
	w, err := seg(st.machine, st.cfg.Width, st.cfg.Depth, st.cfg.Shift, st.cfg.RandomHops, p, horizon, seed)
	if err != nil {
		return w, err
	}
	st.acc.Pushes += w.Pushes
	st.acc.Pops += w.Pops
	st.acc.EmptyPops += w.EmptyPops
	st.acc.Probes += w.Probes
	st.acc.CASFailures += w.CASFailures
	st.acc.WindowRaises += w.WindowMoves
	return w, nil
}

// simDemo runs the deterministic convergence experiment for the given
// structure ("stack" or "queue"); returns true on success.
func simDemo(structure string, start core.Config, kceil int64, simThreads, simTicks int, horizon, maxDepth int64, sink *csvSink) bool {
	machine := sim.DefaultMachine()
	if simThreads > machine.Cores() {
		fatal("sim-threads %d exceeds the simulated machine's %d cores", simThreads, machine.Cores())
	}
	var seg segmentFunc = sim.TwoDSegment
	if structure == "queue" {
		seg = sim.TwoDQueueSegment
	}
	low := simThreads / 4
	if low < 1 {
		low = 1
	}
	phases := []struct {
		name    string
		threads int
	}{
		{"low-1", low}, {"high", simThreads}, {"low-2", low},
	}

	fmt.Printf("\n## simulated %s convergence (2×%d-core machine model, %d cycles/tick)\n",
		structure, machine.CoresPerSocket, horizon)

	// Static baseline: same segments, geometry pinned at start.
	staticOps := make([]uint64, len(phases))
	{
		st := &simTarget{machine: machine, cfg: start, seg: seg}
		for pi, ph := range phases {
			for t := 0; t < simTicks; t++ {
				w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
				if err != nil {
					fatal("static sim segment: %v", err)
				}
				staticOps[pi] += w.Ops
			}
		}
	}

	// Adaptive run: the real controller steps once per segment.
	st := &simTarget{machine: machine, cfg: start, seg: seg}
	ctrl, err := adapt.New(st, adapt.Policy{
		Goal:          adapt.MaxThroughput,
		KCeiling:      kceil,
		MinWidth:      start.Width,
		MaxWidth:      4 * simThreads,
		MinDepth:      start.Depth,
		MaxDepth:      maxDepth,
		Cooldown:      1,
		MinOpsPerTick: 32,
	})
	if err != nil {
		fatal("sim controller: %v", err)
	}
	adaptiveOps := make([]uint64, len(phases))
	type row struct {
		phase string
		rec   adapt.TickRecord
		ops   uint64
	}
	var rows []row
	for pi, ph := range phases {
		for t := 0; t < simTicks; t++ {
			w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
			if err != nil {
				fatal("adaptive sim segment: %v", err)
			}
			adaptiveOps[pi] += w.Ops
			rec := ctrl.Step(time.Duration(horizon)) // 1 simulated cycle ≡ 1ns
			rows = append(rows, row{phases[pi].name, rec, w.Ops})
			sink.record("sim-"+structure, phases[pi].name, rec)
		}
	}

	ts := stats.NewTable("tick", "phase", "width", "depth", "k", "ops/kcycle", "cas/op", "moves/op", "probes/op", "action")
	for _, r := range rows {
		ts.AddRow(
			fmt.Sprintf("%d", r.rec.Tick),
			r.phase,
			fmt.Sprintf("%d", r.rec.Width),
			fmt.Sprintf("%d", r.rec.Depth),
			fmt.Sprintf("%d", r.rec.K),
			fmt.Sprintf("%.1f", float64(r.ops)*1000/float64(horizon)),
			fmt.Sprintf("%.3f", r.rec.CASPerOp),
			fmt.Sprintf("%.4f", r.rec.MovesPerOp),
			fmt.Sprintf("%.2f", r.rec.ProbesPerOp),
			r.rec.Action,
		)
	}
	ts.Render(os.Stdout)

	ok := true
	fmt.Println()
	for pi, ph := range phases {
		fmt.Printf("sim %-6s (%2d threads): static %8.1f ops/kcycle, adaptive %8.1f ops/kcycle (%.2fx)\n",
			ph.name, ph.threads,
			float64(staticOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])/float64(staticOps[pi]))
	}
	final := st.cfg
	fmt.Printf("sim final geometry: width %d, depth %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.K(), start.K())
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: sim tick %d ran with k=%d above the ceiling %d\n", rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	if adaptiveOps[1] <= staticOps[1] {
		fmt.Printf("FAIL: simulated adaptive high phase (%d ops) did not beat static (%d ops)\n",
			adaptiveOps[1], staticOps[1])
		ok = false
	}
	if final.K() <= start.K() {
		fmt.Printf("FAIL: controller never grew the window under simulated contention\n")
		ok = false
	}
	return ok
}

// nativeDemo runs the phased stack workload on this machine; returns true
// on success (ceiling violations fail it; a missing throughput margin only
// warns, since native contention depends on the hardware).
func nativeDemo(start core.Config, kceil int64, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, quality bool, maxDepth int64, sink *csvSink) bool {

	phases := harness.ContentionPhases(threads, phaseDur)
	w := harness.PhasedWorkload{MaxWorkers: threads, Prefill: prefill, Seed: seed, Quality: quality}

	fmt.Printf("\n## native stack run (P=%d, %v/phase, quality=%v)\n", threads, phaseDur, quality)

	staticStack := core.MustNew[uint64](start)
	staticRes, err := harness.RunPhased(staticStack, phases, w)
	if err != nil {
		fatal("static run failed: %v", err)
	}

	adaptStack := core.MustNew[uint64](start)
	ctrl, err := adapt.New(adaptStack, adapt.Policy{
		Goal:     adapt.MaxThroughput,
		KCeiling: kceil,
		Tick:     tick,
		MinWidth: start.Width,
		MaxWidth: 4 * threads,
		MinDepth: start.Depth,
		MaxDepth: maxDepth,
	})
	if err != nil {
		fatal("controller: %v", err)
	}
	ctrl.Start()
	adaptRes, err := harness.RunPhased(adaptStack, phases, w)
	ctrl.Stop()
	if err != nil {
		fatal("adaptive run failed: %v", err)
	}

	// The stack's realised distance is checked against the bare ceiling, as
	// before the queue generalisation.
	ok := reportNative("native-stack", ctrl, staticRes, adaptRes, kceil, quality, 0, 0, sink)

	final := adaptStack.Config()
	fmt.Printf("native final geometry: width %d, depth %d, shift %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.Shift, final.K(), start.K())
	if err := adaptStack.CheckInvariants(); err != nil {
		fmt.Printf("FAIL: invariants after adaptive run: %v\n", err)
		ok = false
	}
	return ok
}

// nativeQueueDemo is nativeDemo for the 2D-Queue: the same phased workload
// and controller, driving the queue through the twodqueue.Steer adapter,
// with the FIFO error-distance oracle instead of the LIFO one.
func nativeQueueDemo(start core.Config, kceil int64, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, quality bool, maxDepth int64, sink *csvSink) bool {

	phases := harness.ContentionPhases(threads, phaseDur)
	w := harness.PhasedWorkload{MaxWorkers: threads, Prefill: prefill, Seed: seed, Quality: quality}

	fmt.Printf("\n## native queue run (P=%d, %v/phase, quality=%v)\n", threads, phaseDur, quality)

	staticQueue := twodqueue.MustNew[uint64](twodqueue.FromCore(start))
	staticRes, err := harness.RunPhasedQueue(staticQueue, phases, w)
	if err != nil {
		fatal("static run failed: %v", err)
	}

	adaptQueue := twodqueue.MustNew[uint64](twodqueue.FromCore(start))
	ctrl, err := adapt.New(twodqueue.Steer(adaptQueue), adapt.Policy{
		Goal:     adapt.MaxThroughput,
		KCeiling: kceil,
		Tick:     tick,
		MinWidth: start.Width,
		MaxWidth: 4 * threads,
		MinDepth: start.Depth,
		MaxDepth: maxDepth,
	})
	if err != nil {
		fatal("controller: %v", err)
	}
	ctrl.Start()
	adaptRes, err := harness.RunPhasedQueue(adaptQueue, phases, w)
	ctrl.Stop()
	if err != nil {
		fatal("adaptive run failed: %v", err)
	}

	// Concurrent executions may exceed the sequential bound by one position
	// per in-flight operation, and the invocation-order oracle recording
	// adds the same again (see twodqueue.Config.K and harness.runPhased),
	// so the realised FIFO distance is checked against ceiling + 2·threads.
	// Width-shrink migrations legitimately displace items further (DESIGN.md
	// §5); the queue tracks that displacement exactly, so the check budgets
	// it instead of being waived.
	migAllowance := adaptQueue.ShrinkDisplacementBound()
	ok := reportNative("native-queue", ctrl, staticRes, adaptRes, kceil, quality, 2*int64(threads), migAllowance, sink)

	final := adaptQueue.Config()
	fmt.Printf("native final geometry: width %d, depth %d, shift %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.Shift, final.K(), start.K())

	// Conservation: every enqueue must still be accounted for. The workers
	// flushed their counters at run end, so the snapshot is exact.
	snap := adaptQueue.StatsSnapshot()
	if got, want := adaptQueue.Len(), int(snap.Pushes)-int(snap.Pops); got != want {
		fmt.Printf("FAIL: queue holds %d items but counters say %d (items lost or duplicated)\n", got, want)
		ok = false
	}
	return ok
}

// reportNative prints the shared tick/phase tables for a native run and
// applies the ceiling checks: every tick's geometry bound must be at or
// under kceil, and (when quality is on) the realised error distance must be
// within kceil plus the structure's concurrency slack plus the tracked
// migration allowance (non-zero only when width shrinks actually migrated
// items, and bounded by the populations they displaced).
func reportNative(experiment string, ctrl *adapt.Controller, staticRes, adaptRes harness.PhasedResult,
	kceil int64, quality bool, distanceSlack, migrationAllowance int64, sink *csvSink) bool {

	ts := stats.NewTable("tick", "width", "depth", "k", "thr(ops/s)", "cas/op", "moves/op", "probes/op", "action")
	for _, rec := range ctrl.History() {
		ts.AddRow(
			fmt.Sprintf("%d", rec.Tick),
			fmt.Sprintf("%d", rec.Width),
			fmt.Sprintf("%d", rec.Depth),
			fmt.Sprintf("%d", rec.K),
			fmt.Sprintf("%.0f", rec.Throughput),
			fmt.Sprintf("%.3f", rec.CASPerOp),
			fmt.Sprintf("%.4f", rec.MovesPerOp),
			fmt.Sprintf("%.2f", rec.ProbesPerOp),
			rec.Action,
		)
		sink.record(experiment, "", rec)
	}
	ts.Render(os.Stdout)

	fmt.Println()
	tb := stats.NewTable("phase", "workers", "think", "static ops/s", "adaptive ops/s", "speedup", "mean-err", "max-err(cum)")
	for i, pr := range adaptRes.Phases {
		sp := staticRes.Phases[i]
		tb.AddRow(
			pr.Phase.Name,
			fmt.Sprintf("%d", pr.Phase.Workers),
			fmt.Sprintf("%d", pr.Phase.ThinkSpin),
			stats.HumanOps(sp.Throughput),
			stats.HumanOps(pr.Throughput),
			fmt.Sprintf("%.2fx", pr.Throughput/sp.Throughput),
			fmt.Sprintf("%.1f", pr.MeanDistance),
			fmt.Sprintf("%d", pr.MaxDistanceSoFar),
		)
	}
	tb.Render(os.Stdout)

	ok := true
	fmt.Println()
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: %s tick %d ran with k=%d above the ceiling %d\n", experiment, rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	if quality {
		allowed := kceil + distanceSlack + migrationAllowance
		switch max := int64(adaptRes.Quality.Max); {
		case max > allowed:
			fmt.Printf("FAIL: realised error distance %d exceeds the ceiling %d (+%d concurrency slack, +%d migration)\n",
				max, kceil, distanceSlack, migrationAllowance)
			ok = false
		case max > kceil+distanceSlack:
			fmt.Printf("note: realised error distance %d above ceiling %d (+%d slack) but within the "+
				"tracked width-shrink migration displacement (+%d): OK\n",
				max, kceil, distanceSlack, migrationAllowance)
		default:
			fmt.Printf("realised max error distance %d <= ceiling %d (+%d slack): OK\n",
				max, kceil, distanceSlack)
		}
	}
	sHigh, aHigh := staticRes.Phases[1].Throughput, adaptRes.Phases[1].Throughput
	if aHigh <= sHigh {
		fmt.Printf("note: native adaptive high phase at %.2fx of static — expected on low-core machines, "+
			"where the window has no contention to relieve (see the simulated section)\n", aHigh/sHigh)
	} else {
		fmt.Printf("native high-contention phase: adaptive %.2fx static\n", aHigh/sHigh)
	}
	return ok
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adapttune: "+format+"\n", args...)
	os.Exit(1)
}
