// Command adapttune demonstrates the adaptive relaxation controller
// (internal/adapt) on a phase-shifting workload (low → high → low
// contention). It runs two experiments, for the 2D-Stack by default or for
// the 2D-Queue with -queue, optimising the goal selected with -goal:
//
//   - throughput (default): maximise ops/s under the -kceil relaxation
//     ceiling — the original demonstration.
//
//   - latency: drive the structures' own sampled P99 operation latency to
//     at most -p99-target (native) / -sim-p99-target cycles (simulated),
//     tightening semantics whenever the latency budget allows.
//
//   - energy: minimise window moves + probes per operation (the coherence-
//     traffic proxy) subject to the -floor / -sim-floor throughput floor.
//
// The two experiments per invocation:
//
//   - Simulated convergence (deterministic, machine-independent): the
//     controller steers the structure running on internal/sim's model of
//     the paper's 2-socket, 16-core testbed, where CAS contention arises
//     organically from cache-line ping-pong. Starting from a narrow
//     window, the goal's hard check must be met — e.g. the throughput
//     goal's high-contention phase must drive the geometry wide and the
//     simulated throughput past the static baseline, and the latency goal
//     must end every phase with sampled P99 at or under the target — the
//     paper's "continuous relaxation" claim, closed-loop.
//
//   - Native run (this machine): the same controller against the real
//     structure under internal/harness phases, with the error-distance
//     oracle attached (LIFO for the stack, FIFO for the queue), verifying
//     that the geometry's Theorem 1 bound stays at or under the configured
//     ceiling on every controller tick.
//
// Both print the controller time series — (tick, width, depth, k,
// throughput, cas/op, moves/op, probes/op, action) — and a per-phase
// static-vs-adaptive comparison; -csv additionally appends every tick as a
// machine-readable row for figure-style plots. Exit status 1 if the k
// ceiling is ever violated (by geometry, or by realised distance beyond the
// documented in-flight slack plus the tracked migration displacement) or
// the simulated adaptive run fails to beat its static baseline under high
// contention.
//
// -backend auto adds a third experiment after the two above: the
// hot-swap engine (internal/engine) with the 2D backend, an elimination
// stack and a strict Treiber stack registered, steered by the backend
// selector (internal/adapt.Selector). Halfway through the phased run the
// semantics budget collapses to zero, which must deterministically evict
// the relaxed backend for a strict one ("k-budget-zero" in the swap
// history and the CSV); the recorded history must then verify under the
// swap-aware k-distance budget (DESIGN.md §9). Either miss exits 1 — the
// CI gate.
//
// -placement selects the NUMA width-placement policy (DESIGN.md §7):
// local (default, LocalFirst homing + socket-first probing) or rr (the
// pre-placement round-robin behaviour). Under -placement local with the
// throughput goal the simulated section also runs the round-robin A/B
// counterpart and a fixed-geometry width sweep, and exits 1 unless
// local-first strictly beats round-robin at high contention (the NUMA
// placement gate).
//
// Usage:
//
//	adapttune [-queue] [-goal throughput|latency|energy]
//	          [-backend 2d|auto] [-placement local|rr] [-threads 8]
//	          [-phase 300ms] [-tick 10ms] [-kceil 8192] [-p99-target 2ms]
//	          [-floor 50000] [-start-width 2] [-start-depth 8] [-sim]
//	          [-native] [-csv out.csv]
//	          [-http :9090] [-trace out.jsonl] [-hold 30s]
//
// -http serves the live observability plane (DESIGN.md §8) while the native
// run executes: /metrics in Prometheus text format, /debug/vars (expvar) and
// /debug/pprof. -trace drains the structured event ring (reconfigurations,
// shrink handoffs, placement changes, controller ticks) to a JSONL file on
// exit; -hold keeps the endpoint up after the experiments finish so the
// final state can be scraped.
//
// The CSV column schema is documented (and pinned by test) in README.md
// next to this file.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/sim"
	"stack2d/internal/stats"
	"stack2d/internal/twodqueue"
)

func main() {
	var (
		threads    = flag.Int("threads", 8, "native worker pool size P (the high phase uses all of them)")
		phaseDur   = flag.Duration("phase", 300*time.Millisecond, "duration of each native phase")
		tick       = flag.Duration("tick", 10*time.Millisecond, "controller sampling tick (native run)")
		kceil      = flag.Int64("kceil", 8192, "relaxation ceiling the controller must respect")
		startWidth = flag.Int("start-width", 2, "initial (and static-baseline) window width")
		startDepth = flag.Int64("start-depth", 8, "initial (and static-baseline) window depth (shift = depth)")
		prefill    = flag.Int("prefill", 32768, "initial native population")
		seed       = flag.Uint64("seed", 1, "workload seed")
		quality    = flag.Bool("quality", true, "attach the error-distance oracle to the native run")
		maxDepth   = flag.Int64("max-depth", 512, "geometry depth cap")
		runSim     = flag.Bool("sim", true, "run the simulated convergence experiment")
		runNative  = flag.Bool("native", true, "run the native phased experiment")
		simThreads = flag.Int("sim-threads", 16, "simulated cores used in the high phase")
		simTicks   = flag.Int("sim-ticks", 12, "controller ticks per simulated phase")
		horizon    = flag.Int64("horizon", 200000, "simulated cycles per controller tick")
		queueMode  = flag.Bool("queue", false, "steer the 2D-Queue instead of the 2D-Stack")
		csvPath    = flag.String("csv", "", "write the controller time series to this CSV file (overwritten per run)")
		goalName   = flag.String("goal", "throughput", "controller goal: throughput, latency or energy")
		placeName  = flag.String("placement", "local", "width-placement policy: local (LocalFirst homing + socket-first probing) or rr (round-robin homes, socket-blind probing — the pre-placement behaviour)")
		p99Target  = flag.Duration("p99-target", 2*time.Millisecond, "native sampled-P99 latency target (-goal latency)")
		simP99     = flag.Int64("sim-p99-target", 4096, "simulated P99 latency target in cycles (-goal latency)")
		floor      = flag.Float64("floor", 50000, "native throughput floor in ops/s (-goal energy)")
		simFloor   = flag.Float64("sim-floor", 2e7, "simulated throughput floor in ops/s, 1 cycle = 1ns (-goal energy)")
		backendSel = flag.String("backend", "2d", "2d pins the 2D structure (geometry steering only); auto adds the hot-swap engine experiment, where a backend selector exchanges the live implementation mid-run")
		httpAddr   = flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090) during the native run")
		tracePath  = flag.String("trace", "", "drain the structured event ring to this JSONL file on exit")
		hold       = flag.Duration("hold", 0, "keep the -http endpoint up this long after the experiments finish")
	)
	flag.Parse()

	spec, err := parseGoal(*goalName, *p99Target, time.Duration(*simP99), *floor, *simFloor)
	if err != nil {
		fatal("%v", err)
	}
	placement, err := parsePlacement(*placeName)
	if err != nil {
		fatal("%v", err)
	}
	if *backendSel != "2d" && *backendSel != "auto" {
		fatal("unknown -backend %q (want 2d or auto)", *backendSel)
	}

	start := core.Config{Width: *startWidth, Depth: *startDepth, Shift: *startDepth, RandomHops: 2}
	if err := start.Validate(); err != nil {
		fatal("invalid starting geometry: %v", err)
	}
	if start.K() > *kceil {
		fatal("starting geometry already violates the ceiling: k=%d > %d (raise -kceil or narrow -start-width/-start-depth)",
			start.K(), *kceil)
	}

	structure := "stack"
	if *queueMode {
		structure = "queue"
	}
	fmt.Printf("# adapttune: runtime self-tuning of the 2D %s window (goal %s, k <= %d)\n",
		structure, spec.goal, *kceil)
	fmt.Printf("# start geometry: width %d, depth %d, shift %d (k=%d); placement %s over %d sockets\n",
		start.Width, start.Depth, start.Shift, start.K(), placement.Name(), sim.DefaultMachine().Sockets)

	var sink *csvSink
	if *csvPath != "" {
		var err error
		sink, err = newCSVSink(*csvPath)
		if err != nil {
			fatal("-csv: %v", err)
		}
	}
	plane := newObsPlane(*httpAddr, *tracePath, *hold)

	failed := false
	if *runSim {
		if !simDemo(spec, structure, start, placement, *kceil, *simThreads, *simTicks, *horizon, *maxDepth, sink) {
			failed = true
		}
	}
	if *runNative {
		var ok bool
		if *queueMode {
			ok = nativeQueueDemo(spec, start, placement, *kceil, *threads, *phaseDur, *tick, *prefill, *seed, *quality, *maxDepth, sink, plane)
		} else {
			ok = nativeDemo(spec, start, placement, *kceil, *threads, *phaseDur, *tick, *prefill, *seed, *quality, *maxDepth, sink, plane)
		}
		if !ok {
			failed = true
		}
	}
	if *backendSel == "auto" {
		if !backendDemo(start, *threads, *phaseDur, *tick, *prefill, *seed, sink, plane) {
			failed = true
		}
	}
	if sink != nil {
		if err := sink.close(); err != nil {
			fatal("-csv: %v", err)
		}
		fmt.Printf("\ncsv time series written to %s (%d rows)\n", *csvPath, sink.rows)
	}
	plane.finish()
	if failed {
		os.Exit(1)
	}
}

// goalSpec bundles the selected controller goal with its targets, native
// and simulated (simulated latencies are cycles read as nanoseconds).
type goalSpec struct {
	goal        adapt.Goal
	p99Native   time.Duration
	p99Sim      time.Duration
	floorNative float64
	floorSim    float64
}

// parsePlacement maps the -placement flag to a core.PlacementPolicy:
// "local" is LocalFirst (requester-first homing, socket-first probing),
// "rr" is RoundRobin (interleaved homes, socket-blind probing — how the
// structures behaved before placement existed).
func parsePlacement(name string) (core.PlacementPolicy, error) {
	switch name {
	case "local":
		return core.LocalFirst(), nil
	case "rr":
		return core.RoundRobin(), nil
	default:
		return nil, fmt.Errorf("unknown -placement %q (want local or rr)", name)
	}
}

func parseGoal(name string, p99Native, p99Sim time.Duration, floorNative, floorSim float64) (goalSpec, error) {
	spec := goalSpec{p99Native: p99Native, p99Sim: p99Sim, floorNative: floorNative, floorSim: floorSim}
	switch name {
	case "throughput":
		spec.goal = adapt.MaxThroughput
	case "latency":
		spec.goal = adapt.TargetLatency
	case "energy":
		spec.goal = adapt.MinEnergy
	default:
		return spec, fmt.Errorf("unknown -goal %q (want throughput, latency or energy)", name)
	}
	return spec, nil
}

// policy builds the controller policy for one experiment: the shared
// geometry ladder plus the goal's targets (simulated runs use the cycle-
// denominated ones).
func (g goalSpec) policy(base adapt.Policy, sim bool) adapt.Policy {
	base.Goal = g.goal
	switch g.goal {
	case adapt.TargetLatency:
		if sim {
			base.LatencyTarget = g.p99Sim
		} else {
			base.LatencyTarget = g.p99Native
		}
	case adapt.MinEnergy:
		if sim {
			base.ThroughputFloor = g.floorSim
		} else {
			base.ThroughputFloor = g.floorNative
		}
	}
	return base
}

// csvSink accumulates controller tick rows across all experiments of one
// invocation, in a format gnuplot/pandas consume directly (ROADMAP's
// figure-style-plots item).
type csvSink struct {
	f      *os.File
	w      *csv.Writer
	rows   int
	closed bool
}

// csvHeader is the pinned column schema of the -csv time series; the
// README in this directory documents each column and
// TestCSVSinkWritesTimeSeries / TestCSVSchemaDocumented keep all three in
// sync.
var csvHeader = []string{
	"experiment", "phase", "tick", "width", "depth", "shift", "k",
	"ops", "throughput", "cas_per_op", "moves_per_op", "probes_per_op",
	"p99_us", "energy_per_op", "action", "backend", "reason",
}

func newCSVSink(path string) (*csvSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &csvSink{f: f, w: csv.NewWriter(f)}
	if err := s.w.Write(csvHeader); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// record appends one controller tick under the given experiment label
// ("sim-stack", "native-queue", ...); phase is empty for native runs, whose
// ticks are not phase-aligned, and the trailing backend/reason columns are
// empty — a geometry controller retunes one fixed structure. Nil-safe, so
// call sites need no guards.
func (s *csvSink) record(experiment, phase string, rec adapt.TickRecord) {
	if s == nil {
		return
	}
	s.rows++
	s.w.Write([]string{
		experiment, phase,
		fmt.Sprintf("%d", rec.Tick),
		fmt.Sprintf("%d", rec.Width),
		fmt.Sprintf("%d", rec.Depth),
		fmt.Sprintf("%d", rec.Shift),
		fmt.Sprintf("%d", rec.K),
		fmt.Sprintf("%d", rec.Ops),
		fmt.Sprintf("%.2f", rec.Throughput),
		fmt.Sprintf("%.5f", rec.CASPerOp),
		fmt.Sprintf("%.5f", rec.MovesPerOp),
		fmt.Sprintf("%.3f", rec.ProbesPerOp),
		fmt.Sprintf("%.3f", float64(rec.P99)/1e3),
		fmt.Sprintf("%.3f", rec.EnergyPerOp),
		rec.Action, "", "",
	})
}

// recordSelector appends one backend-selector tick (-backend auto). The
// geometry columns are empty — the selector exchanges whole structures,
// it does not know the live one's window — and the trailing columns carry
// the active backend and, on swap ticks, the trigger reason (the string
// CI greps for). Nil-safe like record.
func (s *csvSink) recordSelector(experiment string, rec adapt.SelectorRecord) {
	if s == nil {
		return
	}
	s.rows++
	s.w.Write([]string{
		experiment, "",
		fmt.Sprintf("%d", rec.Tick),
		"", "", "",
		fmt.Sprintf("%d", rec.K),
		fmt.Sprintf("%d", rec.Ops),
		fmt.Sprintf("%.2f", rec.Throughput),
		fmt.Sprintf("%.5f", rec.CASPerOp),
		"", "", "", "",
		rec.Action,
		rec.Backend,
		rec.Reason,
	})
}

func (s *csvSink) close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// segmentFunc is the simulated-segment signature shared by the stack
// (sim.TwoDSegmentPlaced) and queue (sim.TwoDQueueSegmentPlaced) models;
// homes/localProbe are nil/false for placement-blind runs.
type segmentFunc func(m sim.Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64, homes []int, localProbe bool) (sim.TwoDWork, error)

// simTarget adapts the discrete-event simulation to adapt.Reconfigurable
// (and adapt.SocketAware): each controller tick corresponds to one
// simulated segment at the current geometry, whose instrumented counters
// accumulate into an OpStats. With a placement policy set it carries the
// slot→socket home map across reconfigurations exactly as the native
// structures do (core.PlaceSlots on growth, core.ShrinkSurvivors on
// shrink), so the controller's requester attribution steers the simulated
// homes too.
type simTarget struct {
	machine sim.Machine
	cfg     core.Config
	acc     core.OpStats
	seg     segmentFunc          // nil selects the stack model
	policy  core.PlacementPolicy // nil = placement-blind
	homes   []int
}

// newSimTarget builds a simulation target at the starting geometry with
// its initial homes placed by the policy (no requester attribution yet).
func newSimTarget(machine sim.Machine, cfg core.Config, seg segmentFunc, policy core.PlacementPolicy) *simTarget {
	st := &simTarget{machine: machine, cfg: cfg, seg: seg, policy: policy}
	if policy != nil {
		st.homes = core.PlaceSlots(policy, nil, cfg.Width, -1, machine.Sockets)
	}
	return st
}

func (st *simTarget) Config() core.Config { return st.cfg }

func (st *simTarget) Reconfigure(cfg core.Config) error {
	return st.ReconfigureOnSocket(cfg, -1)
}

func (st *simTarget) ReconfigureOnSocket(cfg core.Config, requester int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if st.policy != nil {
		switch {
		case cfg.Width > st.cfg.Width:
			st.homes = core.PlaceSlots(st.policy, st.homes, cfg.Width, requester, st.machine.Sockets)
		case cfg.Width < st.cfg.Width:
			_, st.homes = core.ShrinkPlan(st.policy, st.homes, cfg.Width, requester)
		}
	}
	st.cfg = cfg
	return nil
}

func (st *simTarget) StatsSnapshot() core.OpStats { return st.acc }

// segment simulates horizon cycles at the current geometry with p threads
// and folds the work into the accumulated stats.
func (st *simTarget) segment(p int, horizon int64, seed uint64) (sim.TwoDWork, error) {
	seg := st.seg
	if seg == nil {
		seg = sim.TwoDSegmentPlaced
	}
	localProbe := st.policy != nil && st.policy.LocalProbeOrder()
	w, err := seg(st.machine, st.cfg.Width, st.cfg.Depth, st.cfg.Shift, st.cfg.RandomHops, p, horizon, seed, st.homes, localProbe)
	if err != nil {
		return w, err
	}
	st.acc.Pushes += w.Pushes
	st.acc.Pops += w.Pops
	st.acc.EmptyPops += w.EmptyPops
	st.acc.Probes += w.Probes
	st.acc.CASFailures += w.CASFailures
	st.acc.WindowRaises += w.WindowMoves
	for i := range w.Latency {
		st.acc.Latency[i] += w.Latency[i]
	}
	for i := range w.SocketCAS {
		st.acc.SocketCAS[i] += w.SocketCAS[i]
	}
	return w, nil
}

// simPhase is one contention phase of the simulated experiment.
type simPhase struct {
	name    string
	threads int
}

// simRow is one controller tick of a simulated adaptive run.
type simRow struct {
	phase string
	rec   adapt.TickRecord
	ops   uint64
}

// runAdaptiveSim drives the real controller against the simulated machine,
// one Step per segment, under the given placement policy; it returns the
// per-phase op totals, the tick rows and the target's final state. The
// same seeds as the static baseline keep the comparison apples-to-apples.
func runAdaptiveSim(spec goalSpec, machine sim.Machine, seg segmentFunc, start core.Config, placement core.PlacementPolicy,
	kceil, maxDepth int64, simThreads, simTicks int, horizon int64, phases []simPhase) ([]uint64, []simRow, *simTarget, *adapt.Controller) {

	st := newSimTarget(machine, start, seg, placement)
	ctrl, err := adapt.New(st, spec.policy(adapt.Policy{
		KCeiling:      kceil,
		MinWidth:      start.Width,
		MaxWidth:      4 * simThreads,
		MinDepth:      start.Depth,
		MaxDepth:      maxDepth,
		Cooldown:      1,
		MinOpsPerTick: 32,
	}, true))
	if err != nil {
		fatal("sim controller: %v", err)
	}
	ops := make([]uint64, len(phases))
	var rows []simRow
	for pi, ph := range phases {
		for t := 0; t < simTicks; t++ {
			w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
			if err != nil {
				fatal("adaptive sim segment: %v", err)
			}
			ops[pi] += w.Ops
			rec := ctrl.Step(time.Duration(horizon)) // 1 simulated cycle ≡ 1ns
			rows = append(rows, simRow{phases[pi].name, rec, w.Ops})
		}
	}
	return ops, rows, st, ctrl
}

// simDemo runs the deterministic convergence experiment for the given
// structure ("stack" or "queue"); returns true on success. The verdict
// depends on the goal: throughput must beat the static baseline under high
// contention, latency must end every phase with P99 at or under the target,
// energy must end with cheaper operations than it started while holding the
// floor; all goals must respect the k ceiling on every tick. Under the
// local-first placement with the throughput goal it additionally runs the
// round-robin A/B counterpart and requires the local-first run's
// high-contention phase to be strictly faster (the NUMA placement gate,
// DESIGN.md §7).
func simDemo(spec goalSpec, structure string, start core.Config, placement core.PlacementPolicy, kceil int64, simThreads, simTicks int, horizon, maxDepth int64, sink *csvSink) bool {
	machine := sim.DefaultMachine()
	if simThreads > machine.Cores() {
		fatal("sim-threads %d exceeds the simulated machine's %d cores", simThreads, machine.Cores())
	}
	var seg segmentFunc = sim.TwoDSegmentPlaced
	if structure == "queue" {
		seg = sim.TwoDQueueSegmentPlaced
	}
	low := simThreads / 4
	if low < 1 {
		low = 1
	}
	phases := []simPhase{
		{"low-1", low}, {"high", simThreads}, {"low-2", low},
	}

	fmt.Printf("\n## simulated %s convergence (2×%d-core machine model, %d cycles/tick, placement %s)\n",
		structure, machine.CoresPerSocket, horizon, placement.Name())

	// Static baseline: same segments, geometry pinned at start.
	staticOps := make([]uint64, len(phases))
	{
		st := newSimTarget(machine, start, seg, placement)
		for pi, ph := range phases {
			for t := 0; t < simTicks; t++ {
				w, err := st.segment(ph.threads, horizon, uint64(pi*simTicks+t)+1)
				if err != nil {
					fatal("static sim segment: %v", err)
				}
				staticOps[pi] += w.Ops
			}
		}
	}

	// Adaptive run: the real controller steps once per segment.
	adaptiveOps, rows, st, ctrl := runAdaptiveSim(spec, machine, seg, start, placement, kceil, maxDepth, simThreads, simTicks, horizon, phases)
	for _, r := range rows {
		sink.record("sim-"+structure, r.phase, r.rec)
	}

	ts := stats.NewTable("tick", "phase", "width", "depth", "k", "ops/kcycle", "cas/op", "moves/op", "probes/op", "p99(cyc)", "action")
	for _, r := range rows {
		ts.AddRow(
			fmt.Sprintf("%d", r.rec.Tick),
			r.phase,
			fmt.Sprintf("%d", r.rec.Width),
			fmt.Sprintf("%d", r.rec.Depth),
			fmt.Sprintf("%d", r.rec.K),
			fmt.Sprintf("%.1f", float64(r.ops)*1000/float64(horizon)),
			fmt.Sprintf("%.3f", r.rec.CASPerOp),
			fmt.Sprintf("%.4f", r.rec.MovesPerOp),
			fmt.Sprintf("%.2f", r.rec.ProbesPerOp),
			fmt.Sprintf("%d", int64(r.rec.P99)),
			r.rec.Action,
		)
	}
	ts.Render(os.Stdout)

	ok := true
	fmt.Println()
	for pi, ph := range phases {
		fmt.Printf("sim %-6s (%2d threads): static %8.1f ops/kcycle, adaptive %8.1f ops/kcycle (%.2fx)\n",
			ph.name, ph.threads,
			float64(staticOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])*1000/float64(int64(simTicks)*horizon),
			float64(adaptiveOps[pi])/float64(staticOps[pi]))
	}
	final := st.cfg
	fmt.Printf("sim final geometry: width %d, depth %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.K(), start.K())
	if st.homes != nil {
		perSocket := make([]int, machine.Sockets)
		for _, hm := range st.homes {
			perSocket[hm]++
		}
		fmt.Printf("sim final placement: %v slots per socket (homes %v)\n", perSocket, st.homes)
	}
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: sim tick %d ran with k=%d above the ceiling %d\n", rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	switch spec.goal {
	case adapt.TargetLatency:
		// Convergence: by the end of every phase — including the high-
		// contention one that blows the tail up on the narrow start
		// geometry — the sampled P99 must be back at or under the target.
		for i, r := range rows {
			if i+1 < len(rows) && rows[i+1].phase == r.phase {
				continue // not the phase's last tick
			}
			if r.rec.P99 > spec.p99Sim {
				fmt.Printf("FAIL: sim %s phase ended with P99 %d cycles above the %d-cycle target\n",
					r.phase, int64(r.rec.P99), int64(spec.p99Sim))
				ok = false
			} else {
				fmt.Printf("sim %-6s phase converged: final-tick P99 %d cycles <= target %d\n",
					r.phase, int64(r.rec.P99), int64(spec.p99Sim))
			}
		}
	case adapt.MinEnergy:
		hist := ctrl.History()
		if len(hist) == 0 {
			fmt.Printf("FAIL: sim energy run recorded no controller ticks\n")
			ok = false
			break
		}
		first, last := hist[0], hist[len(hist)-1]
		fmt.Printf("sim energy/op: %.2f (tick 0) -> %.2f (final), throughput %.1f ops/kcycle vs floor %.1f\n",
			first.EnergyPerOp, last.EnergyPerOp, last.Throughput/1e6, spec.floorSim/1e6)
		if last.EnergyPerOp >= first.EnergyPerOp {
			fmt.Printf("FAIL: sim energy/op did not improve (%.2f -> %.2f)\n", first.EnergyPerOp, last.EnergyPerOp)
			ok = false
		}
		if last.Throughput < spec.floorSim {
			fmt.Printf("FAIL: sim final throughput %.0f below the floor %.0f\n", last.Throughput, spec.floorSim)
			ok = false
		}
	default: // MaxThroughput
		if adaptiveOps[1] <= staticOps[1] {
			fmt.Printf("FAIL: simulated adaptive high phase (%d ops) did not beat static (%d ops)\n",
				adaptiveOps[1], staticOps[1])
			ok = false
		}
		if final.K() <= start.K() {
			fmt.Printf("FAIL: controller never grew the window under simulated contention\n")
			ok = false
		}
	}

	// The placement A/B gate: with the local-first policy and the
	// throughput goal, rerun the identical adaptive experiment (same
	// seeds, same controller ladder) under round-robin placement — the
	// pre-placement behaviour — and require local-first to win the
	// high-contention phase strictly. This is the deterministic
	// demonstration that homing new slots on the requesting socket and
	// probing same-socket slots first keeps the hot window intra-socket
	// (DESIGN.md §7, EXPERIMENTS.md).
	if placement.LocalProbeOrder() && spec.goal == adapt.MaxThroughput {
		rrOps, _, _, _ := runAdaptiveSim(spec, machine, seg, start, core.RoundRobin(), kceil, maxDepth, simThreads, simTicks, horizon, phases)
		fmt.Println()
		for pi, ph := range phases {
			fmt.Printf("sim placement A/B %-6s (%2d threads): round-robin %8.1f ops/kcycle, local-first %8.1f ops/kcycle (%.2fx)\n",
				ph.name, ph.threads,
				float64(rrOps[pi])*1000/float64(int64(simTicks)*horizon),
				float64(adaptiveOps[pi])*1000/float64(int64(simTicks)*horizon),
				float64(adaptiveOps[pi])/float64(rrOps[pi]))
		}
		if adaptiveOps[1] <= rrOps[1] {
			fmt.Printf("FAIL: local-first high phase (%d ops) did not beat round-robin placement (%d ops)\n",
				adaptiveOps[1], rrOps[1])
			ok = false
		}

		// Fixed-geometry width sweep at full contention (P = simThreads):
		// the same A/B with the adaptive transient factored out. The win
		// is largest while the structure is narrower than the thread
		// count — the regime the high phase's widening passes through —
		// and decays once width reaches 4P and contention is gone, which
		// is itself the §7 story: placement pays exactly where coherence
		// traffic lives. Local-first must win at every gated width — from
		// minGatedWidth (4 slots per socket) up to P. Outside that range
		// rows are shown but not gated: narrower, confining a socket's
		// threads to one or two local lines can lose to spreading (the
		// exclusive line reservations serialise them); wider than P,
		// contention is gone and the margins are noise-thin (DESIGN.md §7
		// records both caveats).
		sweep := stats.NewTable("width", "rr ops/kcycle", "local ops/kcycle", "speedup")
		const minGatedWidth = 8 // 4 slots per socket on the 2-socket model
		for _, width := range []int{4, 8, 16, 32} {
			cfg := core.Config{Width: width, Depth: 64, Shift: 64, RandomHops: start.RandomHops}
			rrHomes := core.PlaceSlots(core.RoundRobin(), nil, width, -1, machine.Sockets)
			localHomes := core.PlaceSlots(core.LocalFirst(), nil, width, -1, machine.Sockets)
			rrW, err := seg(machine, cfg.Width, cfg.Depth, cfg.Shift, cfg.RandomHops, simThreads, horizon, 1, rrHomes, false)
			if err != nil {
				fatal("placement sweep (rr): %v", err)
			}
			localW, err := seg(machine, cfg.Width, cfg.Depth, cfg.Shift, cfg.RandomHops, simThreads, horizon, 1, localHomes, true)
			if err != nil {
				fatal("placement sweep (local): %v", err)
			}
			sweep.AddRow(
				fmt.Sprintf("%d", width),
				fmt.Sprintf("%.1f", float64(rrW.Ops)*1000/float64(horizon)),
				fmt.Sprintf("%.1f", float64(localW.Ops)*1000/float64(horizon)),
				fmt.Sprintf("%.2fx", float64(localW.Ops)/float64(rrW.Ops)),
			)
			if width >= minGatedWidth && width <= simThreads && localW.Ops <= rrW.Ops {
				fmt.Printf("FAIL: placement sweep width %d: local-first (%d ops) did not beat round-robin (%d ops)\n",
					width, localW.Ops, rrW.Ops)
				ok = false
			}
		}
		fmt.Printf("\nplacement width sweep (P=%d, depth 64, one %d-cycle segment each):\n", simThreads, horizon)
		sweep.Render(os.Stdout)
	}

	// The shrink path the narrowing goals exercise, quantified on the same
	// machine model: warm handoff (direct least-loaded placement) vs the
	// retired single-handle funnel, for a representative halving at the
	// native prefill population.
	hs := sim.HandoffStack
	if structure == "queue" {
		hs = sim.HandoffQueue
	}
	oldW := 2 * final.Width
	if hm, err := sim.ModelShrinkHandoff(machine, hs, oldW, final.Width, final.Depth, final.Shift, 32768, 16384); err == nil {
		fmt.Printf("modelled shrink handoff (width %d->%d, 32768 live + 16384 stranded): "+
			"funnel %d cycles, %d window moves, disp <= %d; warm %d cycles, %d window move(s), disp <= %d\n",
			oldW, final.Width, hm.FunnelCycles, hm.FunnelWindowMoves, hm.FunnelDisplacement,
			hm.WarmCycles, hm.WarmWindowMoves, hm.WarmDisplacement)
	}
	return ok
}

// nativeDemo runs the phased stack workload on this machine; returns true
// on success (ceiling violations fail it; a missed goal metric only warns,
// since native contention and latency depend on the hardware — the
// deterministic pass/fail lives in the simulated section).
func nativeDemo(spec goalSpec, start core.Config, placement core.PlacementPolicy, kceil int64, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, quality bool, maxDepth int64, sink *csvSink, plane *obsPlane) bool {

	phases := harness.ContentionPhases(threads, phaseDur)
	w := harness.PhasedWorkload{MaxWorkers: threads, Prefill: prefill, Seed: seed, Quality: quality}
	sockets := sim.DefaultMachine().Sockets

	fmt.Printf("\n## native stack run (P=%d, %v/phase, quality=%v, placement %s)\n", threads, phaseDur, quality, placement.Name())

	staticStack := core.MustNew[uint64](start)
	staticStack.SetPlacement(placement, sockets)
	staticRes, err := harness.RunPhased(staticStack, phases, w)
	if err != nil {
		fatal("static run failed: %v", err)
	}

	adaptStack := core.MustNew[uint64](start)
	plane.instrumentStack(adaptStack)
	adaptStack.SetPlacement(placement, sockets)
	ctrl, err := adapt.New(adaptStack, spec.policy(adapt.Policy{
		KCeiling: kceil,
		Tick:     tick,
		MinWidth: start.Width,
		MaxWidth: 4 * threads,
		MinDepth: start.Depth,
		MaxDepth: maxDepth,
	}, false))
	if err != nil {
		fatal("controller: %v", err)
	}
	plane.instrumentController(ctrl, "stack")
	ctrl.Start()
	adaptRes, err := harness.RunPhased(adaptStack, phases, w)
	ctrl.Stop()
	if err != nil {
		fatal("adaptive run failed: %v", err)
	}

	// The stack's realised distance is checked against the bare ceiling —
	// the LIFO oracle needs no in-flight slack (a late head-insert can only
	// shrink a distance; DESIGN.md §5) — plus the warm handoff's tracked
	// splice displacement, which budgets any width-shrink migration the
	// narrowing goals triggered.
	migAllowance := adaptStack.ShrinkDisplacementBound()
	ok := reportNative(spec, "native-stack", ctrl, staticRes, adaptRes, kceil, quality, 0, migAllowance, sink)

	final := adaptStack.Config()
	fmt.Printf("native final geometry: width %d, depth %d, shift %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.Shift, final.K(), start.K())
	if err := adaptStack.CheckInvariants(); err != nil {
		fmt.Printf("FAIL: invariants after adaptive run: %v\n", err)
		ok = false
	}
	return ok
}

// nativeQueueDemo is nativeDemo for the 2D-Queue: the same phased workload
// and controller, driving the queue through the twodqueue.Steer adapter,
// with the FIFO error-distance oracle instead of the LIFO one.
func nativeQueueDemo(spec goalSpec, start core.Config, placement core.PlacementPolicy, kceil int64, threads int, phaseDur, tick time.Duration,
	prefill int, seed uint64, quality bool, maxDepth int64, sink *csvSink, plane *obsPlane) bool {

	phases := harness.ContentionPhases(threads, phaseDur)
	w := harness.PhasedWorkload{MaxWorkers: threads, Prefill: prefill, Seed: seed, Quality: quality}
	sockets := sim.DefaultMachine().Sockets

	fmt.Printf("\n## native queue run (P=%d, %v/phase, quality=%v, placement %s)\n", threads, phaseDur, quality, placement.Name())

	staticQueue := twodqueue.MustNew[uint64](twodqueue.FromCore(start))
	staticQueue.SetPlacement(placement, sockets)
	staticRes, err := harness.RunPhasedQueue(staticQueue, phases, w)
	if err != nil {
		fatal("static run failed: %v", err)
	}

	adaptQueue := twodqueue.MustNew[uint64](twodqueue.FromCore(start))
	plane.instrumentQueue(adaptQueue)
	adaptQueue.SetPlacement(placement, sockets)
	ctrl, err := adapt.New(twodqueue.Steer(adaptQueue), spec.policy(adapt.Policy{
		KCeiling: kceil,
		Tick:     tick,
		MinWidth: start.Width,
		MaxWidth: 4 * threads,
		MinDepth: start.Depth,
		MaxDepth: maxDepth,
	}, false))
	if err != nil {
		fatal("controller: %v", err)
	}
	plane.instrumentController(ctrl, "queue")
	ctrl.Start()
	adaptRes, err := harness.RunPhasedQueue(adaptQueue, phases, w)
	ctrl.Stop()
	if err != nil {
		fatal("adaptive run failed: %v", err)
	}

	// Concurrent executions may exceed the sequential bound by one position
	// per in-flight operation, and the invocation-order oracle recording
	// adds the same again (see twodqueue.Config.K and harness.runPhased),
	// so the realised FIFO distance is checked against ceiling + 2·threads.
	// Width-shrink migrations legitimately displace items further (DESIGN.md
	// §5); the queue tracks that displacement exactly, so the check budgets
	// it instead of being waived.
	migAllowance := adaptQueue.ShrinkDisplacementBound()
	ok := reportNative(spec, "native-queue", ctrl, staticRes, adaptRes, kceil, quality, 2*int64(threads), migAllowance, sink)

	final := adaptQueue.Config()
	fmt.Printf("native final geometry: width %d, depth %d, shift %d (k=%d, started at k=%d)\n",
		final.Width, final.Depth, final.Shift, final.K(), start.K())

	// Conservation: every enqueue must still be accounted for. The workers
	// flushed their counters at run end, so the snapshot is exact.
	snap := adaptQueue.StatsSnapshot()
	if got, want := adaptQueue.Len(), int(snap.Pushes)-int(snap.Pops); got != want {
		fmt.Printf("FAIL: queue holds %d items but counters say %d (items lost or duplicated)\n", got, want)
		ok = false
	}
	return ok
}

// reportNative prints the shared tick/phase tables for a native run and
// applies the ceiling checks: every tick's geometry bound must be at or
// under kceil, and (when quality is on) the realised error distance must be
// within kceil plus the structure's concurrency slack plus the tracked
// migration allowance (non-zero only when width shrinks actually migrated
// items, and bounded by the populations they displaced).
func reportNative(spec goalSpec, experiment string, ctrl *adapt.Controller, staticRes, adaptRes harness.PhasedResult,
	kceil int64, quality bool, distanceSlack, migrationAllowance int64, sink *csvSink) bool {

	ts := stats.NewTable("tick", "width", "depth", "k", "thr(ops/s)", "cas/op", "moves/op", "probes/op", "p99(µs)", "action")
	for _, rec := range ctrl.History() {
		ts.AddRow(
			fmt.Sprintf("%d", rec.Tick),
			fmt.Sprintf("%d", rec.Width),
			fmt.Sprintf("%d", rec.Depth),
			fmt.Sprintf("%d", rec.K),
			fmt.Sprintf("%.0f", rec.Throughput),
			fmt.Sprintf("%.3f", rec.CASPerOp),
			fmt.Sprintf("%.4f", rec.MovesPerOp),
			fmt.Sprintf("%.2f", rec.ProbesPerOp),
			fmt.Sprintf("%.1f", float64(rec.P99)/1e3),
			rec.Action,
		)
		sink.record(experiment, "", rec)
	}
	ts.Render(os.Stdout)

	fmt.Println()
	tb := stats.NewTable("phase", "workers", "think", "static ops/s", "adaptive ops/s", "speedup", "mean-err", "max-err(cum)")
	for i, pr := range adaptRes.Phases {
		sp := staticRes.Phases[i]
		tb.AddRow(
			pr.Phase.Name,
			fmt.Sprintf("%d", pr.Phase.Workers),
			fmt.Sprintf("%d", pr.Phase.ThinkSpin),
			stats.HumanOps(sp.Throughput),
			stats.HumanOps(pr.Throughput),
			fmt.Sprintf("%.2fx", pr.Throughput/sp.Throughput),
			fmt.Sprintf("%.1f", pr.MeanDistance),
			fmt.Sprintf("%d", pr.MaxDistanceSoFar),
		)
	}
	tb.Render(os.Stdout)

	ok := true
	fmt.Println()
	for _, rec := range ctrl.History() {
		if rec.K > kceil {
			fmt.Printf("FAIL: %s tick %d ran with k=%d above the ceiling %d\n", experiment, rec.Tick, rec.K, kceil)
			ok = false
		}
	}
	if quality {
		allowed := kceil + distanceSlack + migrationAllowance
		switch max := int64(adaptRes.Quality.Max); {
		case max > allowed:
			fmt.Printf("FAIL: realised error distance %d exceeds the ceiling %d (+%d concurrency slack, +%d migration)\n",
				max, kceil, distanceSlack, migrationAllowance)
			ok = false
		case max > kceil+distanceSlack:
			fmt.Printf("note: realised error distance %d above ceiling %d (+%d slack) but within the "+
				"tracked width-shrink migration displacement (+%d): OK\n",
				max, kceil, distanceSlack, migrationAllowance)
		default:
			fmt.Printf("realised max error distance %d <= ceiling %d (+%d slack): OK\n",
				max, kceil, distanceSlack)
		}
	}
	switch spec.goal {
	case adapt.TargetLatency:
		// Last tick with a usable latency estimate decides convergence; a
		// miss is a note, not a failure — native tails on an oversubscribed
		// machine are scheduler-dominated (see the simulated section for
		// the deterministic check).
		var last adapt.TickRecord
		found := false
		for _, rec := range ctrl.History() {
			// Mirror the controller's own signal threshold: a tick with
			// fewer samples than MinLatencySamples is not a usable P99.
			if rec.LatencySamples >= ctrl.Policy().MinLatencySamples {
				last, found = rec, true
			}
		}
		switch {
		case !found:
			fmt.Printf("note: native run collected no usable latency ticks (run longer phases)\n")
		case last.P99 <= spec.p99Native:
			fmt.Printf("native latency goal converged: final sampled P99 %v <= target %v\n", last.P99, spec.p99Native)
		default:
			fmt.Printf("note: native final sampled P99 %v above target %v — native tails are "+
				"scheduler-dependent; the simulated section is the deterministic check\n", last.P99, spec.p99Native)
		}
	case adapt.MinEnergy:
		// Ticks after the workers stop see no operations; summarise from
		// the last tick that did.
		hist := ctrl.History()
		if len(hist) == 0 {
			fmt.Printf("note: native run finished before the first controller tick (shorten -tick or lengthen -phase)\n")
			break
		}
		var first, last adapt.TickRecord
		sawWork := false
		for _, rec := range hist {
			if rec.Ops == 0 {
				continue
			}
			if !sawWork {
				first, sawWork = rec, true
			}
			last = rec
		}
		if !sawWork {
			fmt.Printf("note: no controller tick observed any operations\n")
			break
		}
		fmt.Printf("native energy/op: %.2f (tick %d) -> %.2f (final), final throughput %.0f ops/s vs floor %.0f\n",
			first.EnergyPerOp, first.Tick, last.EnergyPerOp, last.Throughput, spec.floorNative)
	default:
		sHigh, aHigh := staticRes.Phases[1].Throughput, adaptRes.Phases[1].Throughput
		if aHigh <= sHigh {
			fmt.Printf("note: native adaptive high phase at %.2fx of static — expected on low-core machines, "+
				"where the window has no contention to relieve (see the simulated section)\n", aHigh/sHigh)
		} else {
			fmt.Printf("native high-contention phase: adaptive %.2fx static\n", aHigh/sHigh)
		}
	}
	return ok
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adapttune: "+format+"\n", args...)
	os.Exit(1)
}
