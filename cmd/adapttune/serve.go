package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/engine"
	"stack2d/internal/obs"
	"stack2d/internal/twodqueue"
)

// obsPlane wires the observability plane (DESIGN.md §8) into the native
// adaptive run: a pull-based metrics registry served at -http (with
// /debug/vars and /debug/pprof alongside /metrics), and a bounded structured
// event ring drained to -trace as JSONL when the run finishes. It is nil
// when neither flag is given, and every method is nil-safe, so the demo
// code calls the hooks unconditionally. The CSV time series (-csv) is
// untouched — the plane is an additional surface, not a replacement.
type obsPlane struct {
	reg       *obs.Registry
	ring      *obs.Ring
	srv       *http.Server
	lis       net.Listener
	tracePath string
	hold      time.Duration
}

// newObsPlane builds the plane and, when addr is non-empty, starts serving
// immediately so /metrics is curl-able while the experiments run. hold
// keeps the server up that much longer after the experiments finish (handy
// for scraping the final geometry; 0 shuts it down at exit).
func newObsPlane(addr, tracePath string, hold time.Duration) *obsPlane {
	if addr == "" && tracePath == "" {
		return nil
	}
	p := &obsPlane{reg: obs.NewRegistry(), ring: obs.NewRing(4096), tracePath: tracePath, hold: hold}
	obs.RegisterRing(p.reg, p.ring)
	if addr != "" {
		p.reg.PublishExpvar("stack2d")
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			fatal("-http: %v", err)
		}
		p.lis = lis
		p.srv = &http.Server{Handler: obs.NewMux(p.reg)}
		go p.srv.Serve(lis)
		fmt.Printf("# observability: serving /metrics, /debug/vars and /debug/pprof on http://%s\n", lis.Addr())
	}
	return p
}

// instrumentStack attaches the structural tracer and bridges the stack's
// counters into the registry. Call before SetPlacement so the construction
// placement event lands in the ring too.
func (p *obsPlane) instrumentStack(s *core.Stack[uint64]) {
	if p == nil {
		return
	}
	s.SetObserver(obs.StructTracer{Structure: "stack", Ring: p.ring})
	obs.RegisterStructure(p.reg, "stack", s, nil)
}

// instrumentQueue is instrumentStack for the 2D-Queue, bridged through the
// Steer adapter (which carries Config/StatsSnapshot and the shrink
// displacement bound).
func (p *obsPlane) instrumentQueue(q *twodqueue.Queue[uint64]) {
	if p == nil {
		return
	}
	q.SetObserver(obs.StructTracer{Structure: "queue", Ring: p.ring})
	obs.RegisterStructure(p.reg, "queue", twodqueue.Steer(q), nil)
}

// instrumentSwitcher wires the hot-swap engine (-backend auto) into the
// plane: every completed backend exchange lands in the event ring as a
// backend-swap event, and the swap count plus the cumulative migration
// displacement are exported as engine-labelled metrics. The switcher's
// per-structure counters stay with the backends themselves; the plane
// only observes the exchanges.
func (p *obsPlane) instrumentSwitcher(sw *engine.Switcher[uint64]) {
	if p == nil {
		return
	}
	tracer := obs.SwapTracer{Structure: "engine", Ring: p.ring}
	sw.SetOnSwap(tracer.ObserveSwap)
	obs.RegisterSwitcher(p.reg, "engine", sw)
}

// instrumentController attaches the tick tracer to the native controller so
// every decision (geometry, rates, action) lands in the event ring.
func (p *obsPlane) instrumentController(ctrl *adapt.Controller, structure string) {
	if p == nil {
		return
	}
	ctrl.SetObserver(obs.TickTracer{Structure: structure, Ring: p.ring})
}

// finish drains the ring to -trace, honours -hold, and shuts the server
// down. Called once after all experiments, before the exit-status decision.
func (p *obsPlane) finish() {
	if p == nil {
		return
	}
	if p.tracePath != "" {
		f, err := os.Create(p.tracePath)
		if err != nil {
			fatal("-trace: %v", err)
		}
		if err := p.ring.WriteJSONL(f); err != nil {
			f.Close()
			fatal("-trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("-trace: %v", err)
		}
		kept := p.ring.Emitted() - p.ring.Dropped()
		fmt.Printf("\ntrace: %d events written to %s (%d emitted, %d overwritten by the bounded ring)\n",
			kept, p.tracePath, p.ring.Emitted(), p.ring.Dropped())
	}
	if p.srv != nil {
		if p.hold > 0 {
			fmt.Printf("holding the metrics endpoint on http://%s for %v (ctrl-C to stop early)\n", p.lis.Addr(), p.hold)
			time.Sleep(p.hold)
		}
		p.srv.Close()
	}
}
