package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/sim"
)

// TestSimTargetConvergesUnderContention is the acceptance check of the
// adaptive subsystem in miniature, fully deterministic: on the simulated
// 16-core machine, a controller starting from a narrow window must widen
// it under contention, beat the static baseline's throughput, and never
// exceed the k ceiling.
func TestSimTargetConvergesUnderContention(t *testing.T) {
	const (
		kceil   = 4096
		p       = 16
		ticks   = 14
		horizon = 100000
	)
	start := core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}

	static := &simTarget{machine: sim.DefaultMachine(), cfg: start}
	var staticOps uint64
	for i := 0; i < ticks; i++ {
		w, err := static.segment(p, horizon, uint64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		staticOps += w.Ops
	}

	st := &simTarget{machine: sim.DefaultMachine(), cfg: start}
	ctrl, err := adapt.New(st, adapt.Policy{
		Goal:          adapt.MaxThroughput,
		KCeiling:      kceil,
		MinWidth:      start.Width,
		MaxWidth:      4 * p,
		MinDepth:      start.Depth,
		MaxDepth:      64,
		Cooldown:      1,
		MinOpsPerTick: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var adaptiveOps uint64
	for i := 0; i < ticks; i++ {
		w, err := st.segment(p, horizon, uint64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveOps += w.Ops
		rec := ctrl.Step(time.Duration(horizon))
		if rec.K > kceil {
			t.Fatalf("tick %d ran with k=%d above ceiling %d", rec.Tick, rec.K, kceil)
		}
	}

	if st.cfg.Width <= start.Width {
		t.Fatalf("controller did not widen under simulated contention (still width %d)", st.cfg.Width)
	}
	if st.cfg.K() > kceil {
		t.Fatalf("final geometry k=%d above ceiling", st.cfg.K())
	}
	if adaptiveOps <= staticOps {
		t.Fatalf("adaptive %d ops did not beat static %d ops", adaptiveOps, staticOps)
	}
	// The margin should be decisive, not marginal: contention collapse on
	// a narrow window is the paper's headline effect.
	if float64(adaptiveOps) < 2*float64(staticOps) {
		t.Fatalf("adaptive %d ops vs static %d ops: margin below 2x", adaptiveOps, staticOps)
	}
}

// TestSimTargetRejectsInvalidGeometry keeps the adapter honest: the
// controller relies on Reconfigure validating its candidates.
func TestSimTargetRejectsInvalidGeometry(t *testing.T) {
	st := &simTarget{machine: sim.DefaultMachine(), cfg: core.Config{Width: 2, Depth: 8, Shift: 8}}
	if err := st.Reconfigure(core.Config{Width: 0, Depth: 8, Shift: 8}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if st.cfg.Width != 2 {
		t.Fatal("failed Reconfigure mutated the geometry")
	}
}

// TestQueueSimTargetConvergesUnderContention is the queue-mode acceptance
// check, fully deterministic: on the simulated 16-core machine a controller
// starting from a narrow window must widen the 2D-Queue under contention,
// beat the static baseline decisively, and never exceed the k ceiling on
// any tick.
func TestQueueSimTargetConvergesUnderContention(t *testing.T) {
	const (
		kceil   = 4096
		p       = 16
		ticks   = 14
		horizon = 100000
	)
	start := core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}

	static := &simTarget{machine: sim.DefaultMachine(), cfg: start, seg: sim.TwoDQueueSegmentPlaced}
	var staticOps uint64
	for i := 0; i < ticks; i++ {
		w, err := static.segment(p, horizon, uint64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		staticOps += w.Ops
	}

	st := &simTarget{machine: sim.DefaultMachine(), cfg: start, seg: sim.TwoDQueueSegmentPlaced}
	ctrl, err := adapt.New(st, adapt.Policy{
		Goal:          adapt.MaxThroughput,
		KCeiling:      kceil,
		MinWidth:      start.Width,
		MaxWidth:      4 * p,
		MinDepth:      start.Depth,
		MaxDepth:      64,
		Cooldown:      1,
		MinOpsPerTick: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	var adaptiveOps uint64
	for i := 0; i < ticks; i++ {
		w, err := st.segment(p, horizon, uint64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveOps += w.Ops
		rec := ctrl.Step(time.Duration(horizon))
		if rec.K > kceil {
			t.Fatalf("tick %d ran with k=%d above ceiling %d", rec.Tick, rec.K, kceil)
		}
	}

	if st.cfg.Width <= start.Width {
		t.Fatalf("controller did not widen the queue under simulated contention (still width %d)", st.cfg.Width)
	}
	if st.cfg.K() > kceil {
		t.Fatalf("final geometry k=%d above ceiling", st.cfg.K())
	}
	if float64(adaptiveOps) < 2*float64(staticOps) {
		t.Fatalf("adaptive %d ops vs static %d ops: margin below 2x", adaptiveOps, staticOps)
	}
}

// TestSimLatencyGoalConverges is the deterministic acceptance check of the
// latency control plane: on the simulated 16-core machine, a TargetLatency
// controller starting from a narrow window under heavy contention must pull
// the sampled P99 down to the target (the narrow start violates it badly)
// without ever exceeding the k ceiling — for both structures.
func TestSimLatencyGoalConverges(t *testing.T) {
	const (
		kceil   = 8192
		p       = 16
		ticks   = 14
		horizon = 100000
		target  = 4096 * time.Nanosecond // cycles read as ns
	)
	start := core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}
	for name, seg := range map[string]segmentFunc{"stack": nil, "queue": sim.TwoDQueueSegmentPlaced} {
		st := &simTarget{machine: sim.DefaultMachine(), cfg: start, seg: seg}
		ctrl, err := adapt.New(st, adapt.Policy{
			Goal:          adapt.TargetLatency,
			LatencyTarget: target,
			KCeiling:      kceil,
			MinWidth:      start.Width,
			MaxWidth:      4 * p,
			MinDepth:      start.Depth,
			MaxDepth:      64,
			Cooldown:      1,
			MinOpsPerTick: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var first, last adapt.TickRecord
		for i := 0; i < ticks; i++ {
			if _, err := st.segment(p, horizon, uint64(i)+1); err != nil {
				t.Fatal(err)
			}
			rec := ctrl.Step(time.Duration(horizon))
			if rec.K > kceil {
				t.Fatalf("%s: tick %d ran with k=%d above ceiling %d", name, rec.Tick, rec.K, kceil)
			}
			if i == 0 {
				first = rec
			}
			last = rec
		}
		if first.P99 <= target {
			t.Fatalf("%s: narrow start already met the target (P99 %v) — the test shows nothing", name, first.P99)
		}
		if last.P99 > target {
			t.Fatalf("%s: controller did not converge: final P99 %v above target %v (geometry %dx%d)",
				name, last.P99, target, last.Width, last.Depth)
		}
		if st.cfg.Width <= start.Width {
			t.Fatalf("%s: controller never widened under the contended tail", name)
		}
	}
}

// TestSimEnergyGoalReducesWorkPerOp: the MinEnergy controller must end a
// contended run with cheaper operations (window moves + probes per op) than
// the narrow start geometry, while holding the throughput floor.
func TestSimEnergyGoalReducesWorkPerOp(t *testing.T) {
	const (
		p       = 16
		ticks   = 14
		horizon = 100000
		floor   = 2e7 // ops/s with 1 cycle = 1ns
	)
	start := core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}
	for name, seg := range map[string]segmentFunc{"stack": nil, "queue": sim.TwoDQueueSegmentPlaced} {
		st := &simTarget{machine: sim.DefaultMachine(), cfg: start, seg: seg}
		ctrl, err := adapt.New(st, adapt.Policy{
			Goal:            adapt.MinEnergy,
			ThroughputFloor: floor,
			MinWidth:        start.Width,
			MaxWidth:        4 * p,
			MinDepth:        start.Depth,
			MaxDepth:        512,
			Cooldown:        1,
			MinOpsPerTick:   16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var first, last adapt.TickRecord
		for i := 0; i < ticks; i++ {
			if _, err := st.segment(p, horizon, uint64(i)+1); err != nil {
				t.Fatal(err)
			}
			rec := ctrl.Step(time.Duration(horizon))
			if i == 0 {
				first = rec
			}
			last = rec
		}
		if last.EnergyPerOp >= first.EnergyPerOp {
			t.Fatalf("%s: energy/op did not improve: %.2f -> %.2f", name, first.EnergyPerOp, last.EnergyPerOp)
		}
		if last.Throughput < floor {
			t.Fatalf("%s: final throughput %.0f under the floor %.0f", name, last.Throughput, floor)
		}
	}
}

// TestCSVSchemaDocumented keeps README.md's column table in lockstep with
// the emitted header: every column must be documented, in order, and no
// documented column may be missing from the code.
func TestCSVSchemaDocumented(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("cmd/adapttune/README.md must exist and document the -csv schema: %v", err)
	}
	// Collect the `column` cells of the schema table: lines of the form
	// "| `name` | ... |" after the schema heading.
	var documented []string
	inSchema, inTable := false, false
	for _, line := range strings.Split(string(readme), "\n") {
		if strings.Contains(line, "`-csv` column schema") {
			inSchema = true
			continue
		}
		if !inSchema {
			continue
		}
		if !strings.HasPrefix(line, "| `") {
			if inTable && !strings.HasPrefix(line, "|") {
				break // the schema table ended; ignore any later tables
			}
			continue
		}
		inTable = true
		cell := strings.TrimPrefix(line, "| `")
		if i := strings.Index(cell, "`"); i > 0 {
			documented = append(documented, cell[:i])
		}
	}
	if len(documented) != len(csvHeader) {
		t.Fatalf("README documents %d columns %v, the sink writes %d %v",
			len(documented), documented, len(csvHeader), csvHeader)
	}
	for i, col := range csvHeader {
		if documented[i] != col {
			t.Fatalf("README column %d is %q, sink writes %q", i, documented[i], col)
		}
	}
}

// TestCSVSinkWritesTimeSeries pins the -csv output format so CI can consume
// it without it silently rotting.
func TestCSVSinkWritesTimeSeries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ts.csv")
	sink, err := newCSVSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.record("sim-queue", "high", adapt.TickRecord{
		Tick: 3, Width: 8, Depth: 16, Shift: 16, K: 336,
		Ops: 1000, Throughput: 123.4, CASPerOp: 0.05, MovesPerOp: 0.01, ProbesPerOp: 2.5,
		P99: 1500 * time.Nanosecond, EnergyPerOp: 2.51,
		Action: "widen-width",
	})
	sink.recordSelector("native-backend", adapt.SelectorRecord{
		Tick: 7, Ops: 4096, Throughput: 98765.4, CASPerOp: 0.02,
		Action: "swap", Reason: "k-budget-zero", Backend: "treiber", K: 0,
	})
	// A nil sink must be a silent no-op (the demos call it unconditionally).
	var nilSink *csvSink
	nilSink.record("x", "", adapt.TickRecord{})
	if err := nilSink.close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.close(); err != nil { // idempotent
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	wantHeader := []string{"experiment", "phase", "tick", "width", "depth", "shift", "k",
		"ops", "throughput", "cas_per_op", "moves_per_op", "probes_per_op",
		"p99_us", "energy_per_op", "action", "backend", "reason"}
	for i, col := range wantHeader {
		if rows[0][i] != col {
			t.Fatalf("header[%d] = %q, want %q", i, rows[0][i], col)
		}
	}
	if len(rows[0]) != len(wantHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(wantHeader))
	}
	if rows[1][0] != "sim-queue" || rows[1][1] != "high" || rows[1][6] != "336" ||
		rows[1][12] != "1.500" || rows[1][13] != "2.510" || rows[1][14] != "widen-width" ||
		rows[1][15] != "" || rows[1][16] != "" {
		t.Fatalf("controller data row mismatch: %v", rows[1])
	}
	if rows[2][0] != "native-backend" || rows[2][2] != "7" || rows[2][3] != "" ||
		rows[2][6] != "0" || rows[2][7] != "4096" || rows[2][14] != "swap" ||
		rows[2][15] != "treiber" || rows[2][16] != "k-budget-zero" {
		t.Fatalf("selector data row mismatch: %v", rows[2])
	}
}

// TestBackendDemoDeterministicSwap runs the -backend auto experiment at
// test scale and requires the full gate to hold: the mid-run budget
// collapse evicts the relaxed backend for reason k-budget-zero, a strict
// backend finishes the run, and the recorded history verifies under the
// swap-aware budget — backendDemo returns false on any miss, so one
// boolean covers all three. This is the same gate CI drives through the
// binary; a nil sink and nil plane keep it output-only.
func TestBackendDemoDeterministicSwap(t *testing.T) {
	start := core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}
	if !backendDemo(start, 4, 40*time.Millisecond, 5*time.Millisecond, 512, 11, nil, nil) {
		t.Fatal("backendDemo reported failure (see output above)")
	}
}
