// Command simfigure regenerates the throughput dimension of the paper's
// Figure 2 on the simulated NUMA machine (internal/sim): the development
// container exposes one hardware thread, so real coherence contention —
// the effect the 2D-Stack is designed to escape — is simulated per the
// substitution rule in DESIGN.md §3.
//
// Usage:
//
//	simfigure [-horizon 500000] [-sockets 2] [-cores 8] [-intra 40] [-inter 100]
//
// Output: simulated throughput (operations per 1000 cycles) for each
// algorithm at each thread count, filling socket 0 first as the paper pins.
package main

import (
	"flag"
	"fmt"
	"os"

	"stack2d/internal/sim"
	"stack2d/internal/stats"
)

func main() {
	var (
		figure  = flag.Int("figure", 2, "figure to simulate: 1 (throughput vs k) or 2 (throughput vs P)")
		threads = flag.Int("threads", 8, "thread count P for figure 1")
		horizon = flag.Int64("horizon", 500000, "simulated cycles per run")
		sockets = flag.Int("sockets", 2, "sockets in the simulated machine")
		cores   = flag.Int("cores", 8, "cores per socket")
		local   = flag.Int64("local", 1, "cache-hit cost (cycles)")
		intra   = flag.Int64("intra", 40, "intra-socket transfer cost")
		inter   = flag.Int64("inter", 100, "inter-socket transfer cost")
		compute = flag.Int64("compute", 30, "fixed per-op instruction cost")
	)
	flag.Parse()

	m := sim.Machine{
		Sockets:         *sockets,
		CoresPerSocket:  *cores,
		LocalCost:       *local,
		IntraSocketCost: *intra,
		InterSocketCost: *inter,
		ComputePerOp:    *compute,
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "simfigure:", err)
		os.Exit(2)
	}

	var err error
	switch *figure {
	case 1:
		err = simFigure1(m, *threads, *horizon)
	case 2:
		err = simFigure2(m, *horizon)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfigure:", err)
		os.Exit(1)
	}
}

func simFigure2(m sim.Machine, horizon int64) error {
	fmt.Printf("# Simulated Figure 2 (throughput): %d sockets x %d cores, costs local/intra/inter = %d/%d/%d, %d cycles/run\n",
		m.Sockets, m.CoresPerSocket, m.LocalCost, m.IntraSocketCost, m.InterSocketCost, horizon)
	fmt.Println("# unit: completed operations per 1000 simulated cycles (total across threads)")
	fmt.Println()

	ps := []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	header := []string{"P"}
	for _, a := range sim.Algos() {
		header = append(header, string(a))
	}
	tb := stats.NewTable(header...)
	for _, p := range ps {
		if p > m.Cores() {
			break
		}
		row := []string{fmt.Sprintf("%d", p)}
		for _, a := range sim.Algos() {
			thr, err := sim.Throughput(m, a, p, horizon)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.1f", thr))
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb.String())
	fmt.Println("expected shape (paper Figure 2): 2D-stack rises with P; treiber flat/declining;")
	fmt.Println("elimination between them; the P>8 slope change is the inter-socket cliff.")
	return nil
}

func simFigure1(m sim.Machine, p int, horizon int64) error {
	fmt.Printf("# Simulated Figure 1 (throughput vs k): P=%d on %d sockets x %d cores, %d cycles/run\n",
		p, m.Sockets, m.CoresPerSocket, horizon)
	fmt.Println("# unit: completed operations per 1000 simulated cycles (total across threads)")
	fmt.Println()

	header := []string{"k"}
	for _, a := range sim.Figure1Algos() {
		header = append(header, string(a))
	}
	tb := stats.NewTable(header...)
	for _, k := range []int64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		row := []string{fmt.Sprintf("%d", k)}
		for _, a := range sim.Figure1Algos() {
			thr, err := sim.Figure1Throughput(m, a, k, p, horizon)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.1f", thr))
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb.String())
	fmt.Println("expected shape (paper Figure 1): 2D-stack throughput rises monotonically")
	fmt.Println("with k and dominates; k-segment decays at large k (segment maintenance).")
	return nil
}
