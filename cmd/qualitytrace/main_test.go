package main

import (
	"testing"

	"stack2d/internal/relax"
)

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want relax.Algorithm
		ok   bool
	}{
		{"2d", relax.TwoDStack, true},
		{"2D-Stack", relax.TwoDStack, true},
		{"k-segment", relax.KSegment, true},
		{"ksegment", relax.KSegment, true},
		{"K-Robin", relax.KRobin, true},
		{"random", relax.RandomStack, true},
		{"c2", relax.RandomC2Stack, true},
		{"random-c2", relax.RandomC2Stack, true},
		{"elimination", relax.EliminationStack, true},
		{"treiber", relax.TreiberStack, true},
		{"nope", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseAlgorithm(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseAlgorithm(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseAlgorithm(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
