// Command qualitytrace runs one algorithm under the quality oracle and
// prints the full error-distance distribution (the paper reports the mean;
// this tool also shows the histogram and tail, which the brief announcement
// could not fit).
//
// Usage:
//
//	qualitytrace -alg 2d|k-segment|k-robin|random|random-c2|elimination|treiber \
//	             [-k 1024] [-threads 8] [-duration 500ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stack2d/internal/harness"
	"stack2d/internal/relax"
	"stack2d/internal/stats"
	"stack2d/internal/twodqueue"
)

func main() {
	var (
		alg      = flag.String("alg", "2d", "algorithm: 2d, k-segment, k-robin, random, random-c2, elimination, treiber; or with -fifo: 2d-queue, ms-queue")
		fifo     = flag.Bool("fifo", false, "measure FIFO error of the queue extension instead")
		k        = flag.Int64("k", 1024, "relaxation budget for k-bounded algorithms")
		threads  = flag.Int("threads", 8, "thread count P")
		duration = flag.Duration("duration", 500*time.Millisecond, "run duration")
		prefill  = flag.Int("prefill", 32768, "initial stack population")
	)
	flag.Parse()

	w := harness.Workload{
		Workers:   *threads,
		Duration:  *duration,
		PushRatio: 0.5,
		Prefill:   *prefill,
		Seed:      1,
	}

	var f harness.Factory
	var res harness.Result
	var err error
	if *fifo {
		switch strings.ToLower(*alg) {
		case "2d", "2d-queue", "2dqueue":
			cfg := twodqueue.DefaultConfig(*threads)
			f = harness.NewTwoDQueueFactory(cfg)
		case "ms-queue", "msqueue", "strict":
			f = harness.NewMSQueueFactory()
		default:
			fmt.Fprintf(os.Stderr, "qualitytrace: unknown queue %q\n", *alg)
			os.Exit(2)
		}
		res, err = harness.RunQueueQuality(f, w)
	} else {
		algorithm, perr := parseAlgorithm(*alg)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "qualitytrace:", perr)
			os.Exit(2)
		}
		if algorithm.KConfigurable() {
			f = harness.Figure1Factory(algorithm, *k, *threads)
		} else {
			f = harness.Figure2Factory(algorithm, *threads)
		}
		res, err = harness.RunQuality(f, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qualitytrace:", err)
		os.Exit(1)
	}

	q := res.Quality
	fmt.Printf("# %s  (P=%d", f.Name, *threads)
	if f.K >= 0 {
		fmt.Printf(", k=%d", f.K)
	}
	fmt.Printf(", %v, prefill %d)\n\n", *duration, *prefill)
	fmt.Printf("operations:     %d (%.0f ops/s, oracle attached)\n", res.Ops, res.Throughput)
	fmt.Printf("measured pops:  %d\n", q.Count)
	fmt.Printf("mean error:     %.3f\n", q.Mean())
	fmt.Printf("max error:      %d\n", q.Max)
	fmt.Printf("empty returns:  %d\n\n", res.EmptyPops)

	fmt.Println("error-distance histogram (bucket = distance range):")
	tb := stats.NewTable("distance", "pops", "share")
	total := float64(q.Count)
	for i, n := range q.Hist {
		if n == 0 {
			continue
		}
		var label string
		switch i {
		case 0:
			label = "0 (exact LIFO)"
		case 1:
			label = "1"
		default:
			label = fmt.Sprintf("%d..%d", 1<<(i-1), 1<<i-1)
		}
		tb.AddRow(label, fmt.Sprintf("%d", n), fmt.Sprintf("%5.1f%%", 100*float64(n)/total))
	}
	fmt.Println(tb.String())
}

func parseAlgorithm(s string) (relax.Algorithm, error) {
	switch strings.ToLower(s) {
	case "2d", "2d-stack", "2dstack":
		return relax.TwoDStack, nil
	case "k-segment", "ksegment":
		return relax.KSegment, nil
	case "k-robin", "krobin":
		return relax.KRobin, nil
	case "random":
		return relax.RandomStack, nil
	case "random-c2", "c2":
		return relax.RandomC2Stack, nil
	case "elimination":
		return relax.EliminationStack, nil
	case "treiber":
		return relax.TreiberStack, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}
