// Command schedhunt runs the coverage-guided schedule search over the
// adversarial frontier workload (internal/director/scenarios): a budgeted
// hunt for interleavings of the real core.Stack that violate the corrected
// k-distance budget at the Theorem-1 counterexample geometry. A clean hunt
// prints the search totals (runs, steps, distinct coverage, corpus size)
// and exits 0 — the CI smoke gate. A violation is auto-shrunk to a minimal
// replayable schedule, narrated step by step, optionally written as a JSON
// artifact (-artifacts, or the DIRECTOR_ARTIFACT_DIR environment variable),
// and exits 1.
//
// Usage:
//
//	schedhunt [-seed 0x2d5ac] [-steps 2500] [-compare] [-artifacts dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"stack2d/internal/director"
	"stack2d/internal/director/scenarios"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 0x2d5ac, "search seed (the whole hunt is a pure function of it)")
		steps     = flag.Int("steps", scenarios.FrontierStepBudget, "total grant budget across all directed runs")
		compare   = flag.Bool("compare", false, "also run the seeded-random control arm and report both coverages")
		artifacts = flag.String("artifacts", "", "directory for minimized-schedule artifacts on violation (default: $DIRECTOR_ARTIFACT_DIR)")
	)
	flag.Parse()

	cfg := scenarios.FrontierConfig()
	fmt.Printf("# schedhunt: frontier workload, width %d depth %d shift %d (k=%d), seed %#x, budget %d steps\n",
		cfg.Width, cfg.Depth, cfg.Shift, cfg.K(), *seed, *steps)

	var last *scenarios.Outcome
	g := director.NewGuidedSearch(*seed)
	res, err := g.Explore(scenarios.FrontierBuilder(cfg, *seed, &last), *steps)
	fmt.Printf("guided: %d runs, %d steps, %d distinct coverage states, corpus %d\n",
		res.Runs, res.Steps, res.Distinct, res.Corpus)
	if err != nil {
		hunted(*artifacts, *seed, res, err)
		os.Exit(1)
	}
	if last != nil {
		fmt.Printf("last run: %d pops checked, max distance %d, max strain %d, mean rank error %.3f\n",
			last.Report.Pops, last.Report.MaxDistance, last.Report.MaxStrain, last.Quality.Mean())
	}

	if *compare {
		rres, rerr := director.RandomSearch(*seed, scenarios.FrontierBuilder(cfg, *seed, &last), *steps)
		fmt.Printf("random: %d runs, %d steps, %d distinct coverage states\n", rres.Runs, rres.Steps, rres.Distinct)
		if rerr != nil {
			hunted(*artifacts, *seed, rres, rerr)
			os.Exit(1)
		}
		if res.Distinct > rres.Distinct {
			fmt.Printf("guided/random coverage ratio: %.2f\n", float64(res.Distinct)/float64(rres.Distinct))
		} else {
			fmt.Println("warning: guided did not dominate the control arm at this seed/budget")
		}
	}
}

// hunted reports a found violation: shrink the failing schedule, narrate
// the minimal reproduction, and write the replayable artifact.
func hunted(dir string, seed uint64, res director.SearchResult, err error) {
	fmt.Fprintf(os.Stderr, "schedhunt: VIOLATION: %v\n", err)
	if len(res.Failing) == 0 {
		fmt.Fprintln(os.Stderr, "schedhunt: no failing schedule recorded (infrastructure error, not a bound violation)")
		return
	}
	var sc scenarios.Scenario
	for _, s := range scenarios.All() {
		if s.Name == scenarios.NameGuidedFrontier {
			sc = s // Directed replays the frontier workload under any strategy
		}
	}
	sres, names, serr := scenarios.ShrinkFailing(sc, seed, res.Failing)
	if serr != nil {
		fmt.Fprintf(os.Stderr, "schedhunt: auto-shrink failed: %v\n", serr)
		return
	}
	fmt.Fprintf(os.Stderr, "schedhunt: minimized %d -> %d choices (%d probes):\n%s",
		len(sres.Original), len(sres.Minimized), sres.Probes, director.FormatSchedule(sres.Minimized, names))
	path, werr := scenarios.WriteMinimized(dir, sc, seed, err, sres, names)
	switch {
	case werr != nil:
		fmt.Fprintf(os.Stderr, "schedhunt: artifact write failed: %v\n", werr)
	case path != "":
		fmt.Fprintf(os.Stderr, "schedhunt: minimized artifact: %s\n", path)
	}
}
