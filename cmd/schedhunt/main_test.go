package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stack2d/internal/director"
	"stack2d/internal/director/scenarios"
)

// hunted resolves its scenario by name from the pack; if the guided-frontier
// entry loses its Directed hook, the violation path silently degrades to "no
// artifact". Pin the lookup and the artifact plumbing it feeds.
func TestHuntScenarioResolvesWithDirectedEntry(t *testing.T) {
	var sc scenarios.Scenario
	for _, s := range scenarios.All() {
		if s.Name == scenarios.NameGuidedFrontier {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatalf("scenario pack has no %q entry", scenarios.NameGuidedFrontier)
	}
	if sc.Directed == nil {
		t.Fatalf("%q has no Directed entry point; schedhunt cannot replay shrink candidates", sc.Name)
	}

	seed := uint64(0x2d5ac)
	out, err := scenarios.FrontierDirected(scenarios.FrontierConfig(), seed, director.NewSeededRandom(seed))
	if err != nil {
		t.Fatalf("baseline frontier run failed: %v", err)
	}
	dir := t.TempDir()
	sres := &director.ShrinkResult{Original: out.Schedule, Minimized: out.Schedule[:1], Probes: 1, Kept: 1}
	path, werr := scenarios.WriteMinimized(dir, sc, seed, errors.New("synthetic"), sres, out.TaskNames)
	if werr != nil {
		t.Fatalf("WriteMinimized: %v", werr)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("artifact written to %s, want directory %s", path, dir)
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("artifact unreadable: %v", rerr)
	}
	if !strings.Contains(string(b), scenarios.NameGuidedFrontier) {
		t.Fatalf("artifact does not name its scenario:\n%s", b)
	}
}
