// Command relaxtune explores the 2D-Stack parameter space: it sweeps width,
// depth and shift, printing for each configuration the Theorem 1 bound, the
// measured throughput and the measured error distance, so an operator can
// pick the operating point for a workload.
//
// Usage:
//
//	relaxtune [-threads 8] [-duration 200ms] [-widths 1,2,4,8] [-depths 1,16,64] [-shifts 0]
//
// -widths are multipliers of P; -shifts of 0 means "shift = depth".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/stats"
)

func main() {
	var (
		threads  = flag.Int("threads", 8, "thread count P")
		duration = flag.Duration("duration", 200*time.Millisecond, "run duration per configuration")
		prefill  = flag.Int("prefill", 32768, "initial stack population")
		widths   = flag.String("widths", "1,2,4,8", "width multipliers of P to sweep")
		depths   = flag.String("depths", "1,16,64,256", "window depths to sweep")
		shifts   = flag.String("shifts", "0", "window shifts to sweep (0 = shift=depth)")
		quality  = flag.Bool("quality", true, "measure error distance per configuration")
	)
	flag.Parse()

	ws, err := parseInts(*widths)
	if err != nil {
		fatal("bad -widths: %v", err)
	}
	ds, err := parseInts(*depths)
	if err != nil {
		fatal("bad -depths: %v", err)
	}
	ss, err := parseInts(*shifts)
	if err != nil {
		fatal("bad -shifts: %v", err)
	}

	w := harness.Workload{
		Workers:   *threads,
		Duration:  *duration,
		PushRatio: 0.5,
		Prefill:   *prefill,
		Seed:      1,
	}

	fmt.Printf("# 2D-Stack parameter sweep (P=%d, %v per point, prefill %d)\n\n", *threads, *duration, *prefill)
	tb := stats.NewTable("width", "depth", "shift", "k", "thr(ops/s)", "probes/op", "cas-fail%", "win-moves", "mean-err", "max-err")
	for _, wm := range ws {
		for _, d := range ds {
			for _, sh := range ss {
				shift := int64(sh)
				if shift == 0 || shift > int64(d) {
					shift = int64(d)
				}
				cfg := core.Config{
					Width:      wm * *threads,
					Depth:      int64(d),
					Shift:      shift,
					RandomHops: 2,
				}
				if err := cfg.Validate(); err != nil {
					fatal("invalid configuration %+v: %v", cfg, err)
				}
				res, err := harness.RunInstrumented(cfg, w)
				if err != nil {
					fatal("run failed: %v", err)
				}
				f := harness.NewTwoDFactory(cfg)
				meanErr, maxErr := 0.0, 0
				if *quality {
					qres, err := harness.RunQuality(f, w)
					if err != nil {
						fatal("quality run failed: %v", err)
					}
					meanErr = qres.Quality.Mean()
					maxErr = qres.Quality.Max
				}
				casFailPct := 0.0
				if res.Stats.Probes > 0 {
					casFailPct = 100 * float64(res.Stats.CASFailures) / float64(res.Stats.Ops())
				}
				tb.AddRow(
					fmt.Sprintf("%d (%dP)", cfg.Width, wm),
					fmt.Sprintf("%d", cfg.Depth),
					fmt.Sprintf("%d", cfg.Shift),
					fmt.Sprintf("%d", cfg.K()),
					fmt.Sprintf("%.0f", res.Throughput),
					fmt.Sprintf("%.2f", res.Stats.ProbesPerOp()),
					fmt.Sprintf("%.2f", casFailPct),
					fmt.Sprintf("%d", res.Stats.WindowRaises+res.Stats.WindowLowers),
					fmt.Sprintf("%.2f", meanErr),
					fmt.Sprintf("%d", maxErr),
				)
				fmt.Fprintf(os.Stderr, "w=%-4d d=%-4d s=%-4d thr=%s\n",
					cfg.Width, cfg.Depth, cfg.Shift, stats.HumanOps(res.Throughput))
			}
		}
	}
	fmt.Println(tb.String())
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", p)
		}
		if n < 0 {
			return nil, fmt.Errorf("%d is negative", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "relaxtune: "+format+"\n", args...)
	os.Exit(1)
}
