package main

import "testing"

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"1,2,4", []int{1, 2, 4}, true},
		{" 8 , 16 ", []int{8, 16}, true},
		{"0", []int{0}, true},
		{"1,,2", []int{1, 2}, true}, // empty segments skipped
		{"", nil, false},
		{",", nil, false},
		{"a,b", nil, false},
		{"-3", nil, false},
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseInts(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
