// Command stackbench regenerates the paper's evaluation: Figure 1
// (throughput and accuracy vs relaxation bound), Figure 2 (throughput and
// accuracy vs concurrency) and the ablation studies from EXPERIMENTS.md.
//
// Usage:
//
//	stackbench -figure 1 [-threads 8] [-paper] [-quality]
//	stackbench -figure 2 [-paper] [-quality]
//	stackbench -ablation hop|depth|shift|width|asym [-threads 8]
//	stackbench -json BENCH_2026-08-08.json [-benchtime 100x] [-ratchet BENCH_old.json]
//
// -paper restores the paper's full methodology (5 s per point, 5 repeats,
// prefill 32,768); the default is a CI-scale run (200 ms, 3 repeats) that
// preserves the ordering between algorithms.
//
// -json runs the fixed perf-trajectory suite instead of a figure and writes
// a schema-versioned checkpoint (see trajectory.go); -ratchet compares the
// fresh run against a checked-in baseline and exits non-zero on regression.
// The repo's BENCH_<date>.json files are these checkpoints; EXPERIMENTS.md
// documents how to read them and what the ratchet tolerates.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/harness"
	"stack2d/internal/stats"
	"stack2d/internal/twodqueue"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to regenerate: 1 or 2")
		queue    = flag.Bool("queue", false, "run the 2D-Queue extension sweep instead of a figure")
		ablation = flag.String("ablation", "", "ablation to run: hop, depth, shift, width or asym")
		threads  = flag.Int("threads", 8, "thread count P for figure 1 and ablations")
		paper    = flag.Bool("paper", false, "use the paper's full methodology (5s x 5 repeats)")
		quality  = flag.Bool("quality", true, "also measure error distance per point")
		duration = flag.Duration("duration", 0, "override run duration per repeat")
		repeats  = flag.Int("repeats", 0, "override repeats per point")
		prefill  = flag.Int("prefill", 32768, "initial stack population")
		seed     = flag.Uint64("seed", 1, "base RNG seed")

		jsonOut   = flag.String("json", "", "run the perf-trajectory suite and write the checkpoint JSON here (- = stdout)")
		benchtime = flag.String("benchtime", "100x", "trajectory budget: Nx ops per worker, or a duration per series")
		ratchet   = flag.String("ratchet", "", "baseline BENCH_*.json to gate the trajectory run against")
	)
	flag.Parse()

	w := harness.Workload{
		Workers:   *threads,
		Duration:  200 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   *prefill,
		Seed:      *seed,
	}
	reps := 3
	if *paper {
		w.Duration = 5 * time.Second
		w.PinThreads = true
		reps = 5
	}
	if *duration > 0 {
		w.Duration = *duration
	}
	if *repeats > 0 {
		reps = *repeats
	}
	sc := harness.SweepConfig{
		Workload: w,
		Repeats:  reps,
		Quality:  *quality,
		Progress: os.Stderr,
	}

	var err error
	switch {
	case *jsonOut != "" || *ratchet != "":
		err = runTrajectory(*benchtime, *jsonOut, *ratchet)
	case *queue:
		err = runQueueSweep(sc)
	case *figure == 1:
		err = runFigure1(sc)
	case *figure == 2:
		err = runFigure2(sc)
	case *ablation != "":
		err = runAblation(*ablation, sc)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stackbench:", err)
		os.Exit(1)
	}
}

func runFigure1(sc harness.SweepConfig) error {
	fmt.Printf("# Figure 1 — throughput & accuracy vs relaxation bound k (P=%d)\n", sc.Workload.Workers)
	fmt.Printf("# workload: %v per repeat, %d repeats, prefill %d, 50/50 push-pop\n\n",
		sc.Workload.Duration, sc.Repeats, sc.Workload.Prefill)
	points, err := harness.Figure1Sweep(nil, sc)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderPoints(points, "k"))
	return nil
}

func runFigure2(sc harness.SweepConfig) error {
	fmt.Println("# Figure 2 — throughput & accuracy vs concurrency (all algorithms)")
	fmt.Printf("# workload: %v per repeat, %d repeats, prefill %d, 50/50 push-pop\n",
		sc.Workload.Duration, sc.Repeats, sc.Workload.Prefill)
	fmt.Println("# note: the paper's intra-socket (P<=8) / inter-socket (P>8) split is a")
	fmt.Println("# hardware property; on this host the sweep shows scheduler timesharing")
	fmt.Println("# beyond the physical core count (see EXPERIMENTS.md).")
	fmt.Println()
	points, err := harness.Figure2Sweep(nil, sc)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderPoints(points, "P"))
	return nil
}

// runQueueSweep regenerates the 2D-Queue extension experiment: throughput
// and FIFO error distance vs concurrency, against the strict Michael-Scott
// baseline (EXPERIMENTS.md §Extensions).
func runQueueSweep(sc harness.SweepConfig) error {
	fmt.Println("# 2D-Queue extension — throughput & FIFO error vs concurrency")
	fmt.Printf("# workload: %v per repeat, %d repeats, prefill %d, 50/50 enq-deq\n\n",
		sc.Workload.Duration, sc.Repeats, sc.Workload.Prefill)
	tb := stats.NewTable("algorithm", "P", "k", "thr(ops/s)", "mean-err", "max-err")
	for _, p := range []int{1, 2, 4, 8, 16} {
		factories := []harness.Factory{
			harness.NewMSQueueFactory(),
			harness.NewTwoDQueueFactory(twodqueue.DefaultConfig(p)),
		}
		for _, f := range factories {
			w := sc.Workload
			w.Workers = p
			xs := make([]float64, 0, sc.Repeats)
			for r := 0; r < sc.Repeats; r++ {
				wr := w
				wr.Seed = w.Seed + uint64(r)*7919
				res, err := harness.Run(f, wr)
				if err != nil {
					return err
				}
				xs = append(xs, res.Throughput)
			}
			meanErr, maxErr := 0.0, 0
			if sc.Quality {
				res, err := harness.RunQueueQuality(f, w)
				if err != nil {
					return err
				}
				meanErr = res.Quality.Mean()
				maxErr = res.Quality.Max
			}
			sum := stats.Summarize(xs)
			k := "-"
			if f.K >= 0 {
				k = fmt.Sprintf("%d", f.K)
			}
			tb.AddRow(f.Name, fmt.Sprintf("%d", p), k,
				fmt.Sprintf("%.0f", sum.Mean),
				fmt.Sprintf("%.2f", meanErr),
				fmt.Sprintf("%d", maxErr))
			fmt.Fprintf(os.Stderr, "queue %-10s P=%-3d thr=%s err=%.2f\n",
				f.Name, p, stats.HumanOps(sum.Mean), meanErr)
		}
	}
	fmt.Println(tb.String())
	return nil
}

// ablationCase is one configuration of an ablation sweep.
type ablationCase struct {
	label string
	f     harness.Factory
	push  float64 // 0 = default 0.5
}

func runAblation(name string, sc harness.SweepConfig) error {
	p := sc.Workload.Workers
	base := core.DefaultConfig(p)
	var cases []ablationCase
	switch name {
	case "hop":
		for _, c := range []struct {
			label string
			hops  int
		}{{"round-robin-only", 0}, {"hybrid-paper(2)", 2}, {"random-heavy", base.Width}} {
			cfg := base
			cfg.RandomHops = c.hops
			cases = append(cases, ablationCase{label: c.label, f: harness.NewTwoDFactory(cfg)})
		}
	case "depth":
		for _, d := range []int64{1, 4, 16, 64, 256} {
			cfg := core.Config{Width: base.Width, Depth: d, Shift: d, RandomHops: 2}
			cases = append(cases, ablationCase{label: fmt.Sprintf("depth=%d", d), f: harness.NewTwoDFactory(cfg)})
		}
	case "shift":
		for _, s := range []int64{1, 16, 32, 64} {
			cfg := core.Config{Width: base.Width, Depth: 64, Shift: s, RandomHops: 2}
			cases = append(cases, ablationCase{label: fmt.Sprintf("shift=%d", s), f: harness.NewTwoDFactory(cfg)})
		}
	case "width":
		for _, m := range []int{1, 2, 4, 8} {
			cfg := core.Config{Width: m * p, Depth: 64, Shift: 64, RandomHops: 2}
			cases = append(cases, ablationCase{label: fmt.Sprintf("width=%dP", m), f: harness.NewTwoDFactory(cfg)})
		}
	case "asym":
		for _, r := range []struct {
			label string
			push  float64
		}{{"push80", 0.8}, {"sym50", 0.5}, {"pop80", 0.2}} {
			cases = append(cases,
				ablationCase{label: "2D-stack/" + r.label, f: harness.NewTwoDFactory(base), push: r.push},
				ablationCase{label: "elimination/" + r.label, f: harness.NewEliminationFactory(elimination.DefaultConfig(p)), push: r.push},
				ablationCase{label: "treiber/" + r.label, f: harness.NewTreiberFactory(), push: r.push},
			)
		}
	default:
		return fmt.Errorf("unknown ablation %q (want hop, depth, shift, width or asym)", name)
	}

	fmt.Printf("# Ablation %q (P=%d, %v per repeat, %d repeats)\n\n", name, p, sc.Workload.Duration, sc.Repeats)
	tb := stats.NewTable("case", "k", "thr(ops/s)", "thr(min)", "thr(max)", "mean-err")
	for _, c := range cases {
		w := sc.Workload
		if c.push != 0 {
			w.PushRatio = c.push
		}
		xs := make([]float64, 0, sc.Repeats)
		for r := 0; r < sc.Repeats; r++ {
			wr := w
			wr.Seed = w.Seed + uint64(r)*7919
			res, err := harness.Run(c.f, wr)
			if err != nil {
				return err
			}
			xs = append(xs, res.Throughput)
		}
		meanErr := 0.0
		if sc.Quality {
			res, err := harness.RunQuality(c.f, w)
			if err != nil {
				return err
			}
			meanErr = res.Quality.Mean()
		}
		sum := stats.Summarize(xs)
		k := "-"
		if c.f.K >= 0 {
			k = fmt.Sprintf("%d", c.f.K)
		}
		tb.AddRow(c.label, k,
			fmt.Sprintf("%.0f", sum.Mean),
			fmt.Sprintf("%.0f", sum.Min),
			fmt.Sprintf("%.0f", sum.Max),
			fmt.Sprintf("%.2f", meanErr))
		fmt.Fprintf(os.Stderr, "ablation %-24s thr=%s\n", c.label, stats.HumanOps(sum.Mean))
	}
	fmt.Println(tb.String())
	return nil
}
