package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/obs"
	"stack2d/internal/relax"
	"stack2d/internal/twodqueue"
)

// The perf-trajectory mode (-json) runs a fixed, fast suite of named series
// and emits a schema-versioned JSON checkpoint; checked into the repo as
// BENCH_<date>.json files, the checkpoints form the project's performance
// history. -ratchet compares a fresh run against a checked-in baseline and
// fails on regression; see ratchetCompare for the gate rules and their
// tolerances (also documented in EXPERIMENTS.md).
const benchSchema = "stack2d-bench/v1"

type benchHost struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	CPUModel  string `json:"cpu_model,omitempty"`
}

// fingerprintEquals reports whether two hosts are comparable for wall-clock
// gates. The Go version is deliberately excluded: a toolchain upgrade on
// the same machine should still ratchet.
func (h benchHost) fingerprintEquals(o benchHost) bool {
	return h.GOOS == o.GOOS && h.GOARCH == o.GOARCH && h.CPUs == o.CPUs && h.CPUModel == o.CPUModel
}

type benchGeometry struct {
	Width      int   `json:"width"`
	Depth      int64 `json:"depth"`
	Shift      int64 `json:"shift"`
	RandomHops int   `json:"random_hops"`
}

type benchSeries struct {
	Name      string        `json:"name"`
	Structure string        `json:"structure"`       // "stack" or "queue"
	Hooks     string        `json:"hooks,omitempty"` // "off"/"on" for the paired overhead series
	Geometry  benchGeometry `json:"geometry"`
	K         int64         `json:"k"` // realised Theorem-1 bound of the geometry
	Workers   int           `json:"workers"`

	Ops       uint64  `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`

	// Single-threaded steady-state allocation counts — machine-independent,
	// so the ratchet hard-gates them across hosts.
	PushAllocsPerOp float64 `json:"push_allocs_per_op"`
	PopAllocsPerOp  float64 `json:"pop_allocs_per_op"`

	// Error-distance figures from a quality run (oracle attached); only the
	// *-quality series carry them. MaxErr is gated against K plus one
	// position of in-flight slack per worker.
	QualityMeanErr float64 `json:"quality_mean_err,omitempty"`
	QualityMaxErr  int     `json:"quality_max_err,omitempty"`
	Quality        bool    `json:"quality,omitempty"`
}

type benchFile struct {
	Schema    string        `json:"schema"`
	Generated time.Time     `json:"generated"`
	Benchtime string        `json:"benchtime"`
	Host      benchHost     `json:"host"`
	Series    []benchSeries `json:"series"`
}

// hostFingerprint collects the machine identity stamped into a checkpoint.
func hostFingerprint() benchHost {
	h := benchHost{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				h.CPUModel = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	return h
}

// measureAllocs reads the single-threaded allocation cost of one push and
// one pop on a fresh instance — the same figures the packages' own
// TestOpAllocsPinned tests pin, re-measured here so every checkpoint
// carries them.
func measureAllocs(f harness.Factory) (push, pop float64) {
	inst := f.New()
	w := inst.NewWorker()
	var i uint64
	push = testing.AllocsPerRun(2000, func() { w.Push(i); i++ })
	pop = testing.AllocsPerRun(1000, func() { _, _ = w.Pop() })
	return push, pop
}

// benchCase is one named series of the trajectory suite.
type benchCase struct {
	name      string
	structure string
	hooks     string
	factory   harness.Factory
	geom      benchGeometry
	k         int64
	workers   int
	quality   bool
	opsScale  int    // multiplies the -benchtime Nx ops budget (0 = 1)
	cleanup   func() // stops background instrumentation after the series
}

// obsStackInstance is a harness instance over a fully instrumented stack.
type obsStackInstance struct{ s *core.Stack[uint64] }

func (i obsStackInstance) NewWorker() harness.Worker { return i.s.NewHandle() }
func (i obsStackInstance) Len() int                  { return i.s.Len() }

// instrumentedStackFactory builds 2D-Stacks with the full observability
// plane attached — structural observer, live controller with tick tracer,
// registered metrics bridge — for the hooks-on half of the paired overhead
// series. The returned stop function tears down every controller the
// factory started.
func instrumentedStackFactory(cfg core.Config) (harness.Factory, func()) {
	var stops []func()
	f := harness.Factory{
		Name: "2D-stack+obs",
		K:    cfg.K(),
		New: func() harness.Instance {
			s := core.MustNew[uint64](cfg)
			ring := obs.NewRing(1024)
			s.SetObserver(obs.StructTracer{Structure: "stack", Ring: ring})
			ctrl, err := adapt.New(s, adapt.Policy{Tick: 10 * time.Millisecond})
			if err == nil {
				ctrl.SetObserver(obs.TickTracer{Structure: "stack", Ring: ring})
				reg := obs.NewRegistry()
				obs.RegisterStructure(reg, "stack", s, nil)
				obs.RegisterRing(reg, ring)
				ctrl.Start()
				stops = append(stops, ctrl.Stop)
			}
			return obsStackInstance{s}
		},
	}
	// The stop function is safe to call between repetitions: it stops the
	// controllers started so far and forgets them, so a best-of-N series
	// never measures one repetition under another's live instrumentation.
	return f, func() {
		for _, stop := range stops {
			stop()
		}
		stops = nil
	}
}

// opBufferSeriesCap is the combined-publication threshold the buffered
// trajectory series arm — one descriptor CAS group per 16 pushes, one
// prefetch refill per 16 pops.
const opBufferSeriesCap = 16

// trajectoryCases is the fixed series list every checkpoint runs.
func trajectoryCases() []benchCase {
	geomOf := func(c core.Config) benchGeometry {
		return benchGeometry{Width: c.Width, Depth: c.Depth, Shift: c.Shift, RandomHops: c.RandomHops}
	}
	var cases []benchCase

	// Figure-2 shaped scaling points: the default geometry at rising P.
	for _, p := range []int{1, 4, 16} {
		cfg := core.DefaultConfig(p)
		cases = append(cases, benchCase{
			name: fmt.Sprintf("stack-default-p%d", p), structure: "stack",
			factory: harness.NewTwoDFactory(cfg), geom: geomOf(cfg), k: cfg.K(), workers: p,
		})
	}

	// The combined-publication series (DESIGN.md §11): the default geometry
	// driven through op-buffered handles, paired with the plain
	// stack-default-p* series above (identical geometry and workload) at the
	// uncontended and contended ends. The P=16 pair is the raw-speed
	// campaign's headline: what batching publication buys once the shared
	// lines are actually contended. A self-gate (selfGates) holds the
	// contended pair's ordering.
	for _, p := range []int{1, 16} {
		cfg := core.DefaultConfig(p)
		cases = append(cases, benchCase{
			name: fmt.Sprintf("stack-buffered-p%d", p), structure: "stack",
			factory: harness.NewTwoDBufferedFactory(cfg, opBufferSeriesCap),
			geom:    geomOf(cfg), k: cfg.K(), workers: p,
		})
	}

	// Figure-1 shaped relaxation point: a tight k budget at P=8.
	tight := relax.TwoDConfigForK(256, 8)
	cases = append(cases, benchCase{
		name: "stack-k256-p8", structure: "stack",
		factory: harness.NewTwoDFactory(tight), geom: geomOf(tight), k: tight.K(), workers: 8,
	})

	// Ablation-shaped width point: width 1P instead of the paper's 4P.
	narrow := core.Config{Width: 8, Depth: 64, Shift: 64, RandomHops: 2}
	cases = append(cases, benchCase{
		name: "stack-width1p-p8", structure: "stack",
		factory: harness.NewTwoDFactory(narrow), geom: geomOf(narrow), k: narrow.K(), workers: 8,
	})

	// Queue extension point.
	qcfg := twodqueue.DefaultConfig(4)
	cases = append(cases, benchCase{
		name: "queue-default-p4", structure: "queue",
		factory: harness.NewTwoDQueueFactory(qcfg), geom: geomOf(qcfg.Core()),
		k: qcfg.K(), workers: 4,
	})

	// The paired observability-overhead series: identical geometry and
	// workload at P=16, hooks off vs fully instrumented. The ratchet gates
	// their same-run ns/op ratio, so both sides run 10x the ops budget:
	// the instrumented side carries a 10ms-tick controller, and a sample
	// shorter than the tick period sees its cost land in-sample or not by
	// scheduling luck — the longer window amortises it on both sides.
	hcfg := core.Config{Width: 16, Depth: 64, Shift: 64, RandomHops: 2}
	cases = append(cases, benchCase{
		name: "stack-hooks-off-p16", structure: "stack", hooks: "off",
		factory: harness.NewTwoDFactory(hcfg), geom: geomOf(hcfg), k: hcfg.K(), workers: 16,
		opsScale: 10,
	})
	instr, stopInstr := instrumentedStackFactory(hcfg)
	cases = append(cases, benchCase{
		name: "stack-hooks-on-p16", structure: "stack", hooks: "on",
		factory: instr, geom: geomOf(hcfg), k: hcfg.K(), workers: 16,
		opsScale: 10, cleanup: stopInstr,
	})

	// Realised-k quality point: error distances measured by the oracle.
	qual := core.DefaultConfig(8)
	cases = append(cases, benchCase{
		name: "stack-quality-p8", structure: "stack", quality: true,
		factory: harness.NewTwoDFactory(qual), geom: geomOf(qual), k: qual.K(), workers: 8,
	})

	// The backend A/B series: the same workload through the relax.Backend
	// adapters — the relaxed 2D default against the strict elimination and
	// Treiber backends — at the uncontended (P=1) and contended (P=16)
	// ends. These are the control-plane baselines: what a selector swap
	// buys or costs at each end of the load spectrum, measured on the very
	// adapters the engine switcher serves traffic through (so the numbers
	// include the handle-counting layer a swapped-in backend actually pays).
	for _, p := range []int{1, 16} {
		for _, a := range []relax.Algorithm{relax.TwoDStack, relax.EliminationStack, relax.TreiberStack} {
			f := harness.NewBackendFactory(a, p)
			bc := benchCase{
				name: fmt.Sprintf("backend-%s-p%d", a, p), structure: "stack",
				factory: f, k: f.K, workers: p,
			}
			if a == relax.TwoDStack {
				bc.geom = geomOf(core.DefaultConfig(p))
			}
			cases = append(cases, bc)
		}
	}
	return cases
}

// runTrajectory executes the suite under the given -benchtime budget
// ("100x" = 100 operations per worker, or a duration per series), writes
// the checkpoint to jsonPath ("-" = stdout, "" = don't write) and, when
// ratchetPath names a baseline checkpoint, gates the fresh run against it.
func runTrajectory(benchtime, jsonPath, ratchetPath string) error {
	opsPerWorker, duration, err := parseBenchtime(benchtime)
	if err != nil {
		return err
	}

	out := benchFile{
		Schema:    benchSchema,
		Generated: time.Now().UTC().Truncate(time.Second),
		Benchtime: benchtime,
		Host:      hostFingerprint(),
	}

	for _, c := range trajectoryCases() {
		w := harness.Workload{
			Workers:   c.workers,
			Duration:  duration,
			PushRatio: 0.5,
			Prefill:   1024,
			Seed:      1,
		}
		runOnce := func() (harness.Result, error) {
			switch {
			case c.quality:
				if duration == 0 {
					w.Duration = 100 * time.Millisecond
				}
				return harness.RunQuality(c.factory, w)
			case opsPerWorker > 0:
				w.Duration = time.Second // validated but unused by RunOps
				return harness.RunOps(c.factory, w, opsPerWorker*max(c.opsScale, 1))
			default:
				return harness.Run(c.factory, w)
			}
		}
		// Every series is best-of-three. At the CI-scale -benchtime a
		// series is a few milliseconds of wall clock, and on a timeshared
		// host a single sample jitters far past the ratchet tolerances;
		// the fastest repetition is the noise-robust wall-clock estimator,
		// and a real regression (a hook on the hot path, a slower op)
		// inflates every repetition, not just the unlucky one. Allocation
		// counts are measured separately and are deterministic.
		res, err := runOnce()
		for r := 0; err == nil && r < 2; r++ {
			if c.cleanup != nil {
				c.cleanup() // don't measure under a prior repetition's instrumentation
			}
			rr, rerr := runOnce()
			if rerr != nil {
				err = rerr
				break
			}
			if rr.Throughput > res.Throughput {
				res = rr
			}
		}
		if err != nil {
			return fmt.Errorf("series %s: %w", c.name, err)
		}
		s := benchSeries{
			Name: c.name, Structure: c.structure, Hooks: c.hooks,
			Geometry: c.geom, K: c.k, Workers: c.workers,
			Ops: res.Ops, OpsPerSec: res.Throughput,
		}
		if res.Ops > 0 && res.Elapsed > 0 {
			s.NsPerOp = float64(res.Elapsed.Nanoseconds()) / float64(res.Ops) * float64(c.workers)
		}
		s.PushAllocsPerOp, s.PopAllocsPerOp = measureAllocs(c.factory)
		if c.cleanup != nil {
			c.cleanup()
		}
		if c.quality {
			s.Quality = true
			s.QualityMeanErr = res.Quality.Mean()
			s.QualityMaxErr = res.Quality.Max
		}
		out.Series = append(out.Series, s)
		fmt.Fprintf(os.Stderr, "trajectory %-22s ops=%-8d ns/op=%-8.1f allocs=%.0f/%.0f\n",
			c.name, s.Ops, s.NsPerOp, s.PushAllocsPerOp, s.PopAllocsPerOp)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
	}

	// Self-gates run on every trajectory invocation, baseline or not.
	if err := selfGates(out); err != nil {
		return err
	}
	if ratchetPath != "" {
		base, err := readBenchFile(ratchetPath)
		if err != nil {
			return err
		}
		if err := ratchetCompare(base, out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ratchet: ok against %s\n", ratchetPath)
	}
	return nil
}

func parseBenchtime(s string) (opsPerWorker int, duration time.Duration, err error) {
	if n, ok := strings.CutSuffix(s, "x"); ok {
		v, err := strconv.Atoi(n)
		if err != nil || v < 1 {
			return 0, 0, fmt.Errorf("stackbench: bad -benchtime %q (want e.g. 100x or 200ms)", s)
		}
		return v, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("stackbench: bad -benchtime %q (want e.g. 100x or 200ms)", s)
	}
	return 0, d, nil
}

func readBenchFile(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, this binary speaks %q", path, f.Schema, benchSchema)
	}
	return f, nil
}

// selfGates are the machine-independent invariants of a single run:
//
//   - the paired hooks series must agree within 25% ns/op (the generous
//     same-run bound; the real claim, ≤1%, is pinned by the dedicated
//     BenchmarkObserverOverhead comparison, which runs long enough to
//     resolve it — this gate just catches a hook leaking onto the hot
//     path, which would cost far more than 25%);
//   - the buffered contended pair must keep its ordering: at P=16 the
//     combined-publication series must clear 1.15x the plain series'
//     throughput (the raw-speed campaign's claim; same run, same host, and
//     the measured margin is ~4x, so the gate tolerates a noisy sample);
//   - a quality series' realised max error distance must respect the
//     Theorem-1 bound plus one position of in-flight slack per worker.
func selfGates(cur benchFile) error {
	byName := map[string]benchSeries{}
	for _, s := range cur.Series {
		byName[s.Name] = s
	}
	off, on := byName["stack-hooks-off-p16"], byName["stack-hooks-on-p16"]
	if off.NsPerOp > 0 && on.NsPerOp > 1.25*off.NsPerOp {
		return fmt.Errorf("hooks-on ns/op %.1f exceeds 1.25x hooks-off %.1f — a hook reached the hot path",
			on.NsPerOp, off.NsPerOp)
	}
	plain, buf := byName["stack-default-p16"], byName["stack-buffered-p16"]
	if plain.OpsPerSec > 0 && buf.OpsPerSec < 1.15*plain.OpsPerSec {
		return fmt.Errorf("stack-buffered-p16 ops/s %.0f is below 1.15x stack-default-p16 %.0f — the combined-publication fast path stopped paying",
			buf.OpsPerSec, plain.OpsPerSec)
	}
	for _, s := range cur.Series {
		if s.Quality && int64(s.QualityMaxErr) > s.K+int64(s.Workers) {
			return fmt.Errorf("series %s: realised max error %d exceeds k=%d + %d in-flight slack",
				s.Name, s.QualityMaxErr, s.K, s.Workers)
		}
	}
	return nil
}

// ratchetCompare gates a fresh run against a checked-in baseline:
//
//   - every baseline series must still exist (renames require a new
//     baseline, deliberately);
//   - allocations per op must not increase — allocation counts are
//     machine-independent, so this is a hard cross-host gate;
//   - ns/op must stay within 3x of the baseline, but only when the host
//     fingerprints match — wall-clock numbers from different machines are
//     not comparable, and at the CI-scale -benchtime the gate is a coarse
//     guard against order-of-magnitude regressions, not a benchmark.
func ratchetCompare(base, cur benchFile) error {
	curByName := map[string]benchSeries{}
	for _, s := range cur.Series {
		curByName[s.Name] = s
	}
	sameHost := base.Host.fingerprintEquals(cur.Host)
	for _, b := range base.Series {
		c, ok := curByName[b.Name]
		if !ok {
			return fmt.Errorf("ratchet: baseline series %q missing from this run", b.Name)
		}
		if c.PushAllocsPerOp > b.PushAllocsPerOp || c.PopAllocsPerOp > b.PopAllocsPerOp {
			return fmt.Errorf("ratchet: %s allocations grew: push %.1f→%.1f, pop %.1f→%.1f",
				b.Name, b.PushAllocsPerOp, c.PushAllocsPerOp, b.PopAllocsPerOp, c.PopAllocsPerOp)
		}
		if sameHost && b.NsPerOp > 0 && c.NsPerOp > 3*b.NsPerOp {
			return fmt.Errorf("ratchet: %s ns/op regressed beyond 3x: %.1f → %.1f",
				b.Name, b.NsPerOp, c.NsPerOp)
		}
	}
	if !sameHost {
		fmt.Fprintln(os.Stderr, "ratchet: host fingerprint differs from baseline; wall-clock gates skipped, allocation gates applied")
	}
	return nil
}
