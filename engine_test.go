package stack2d

import (
	"testing"
	"time"
)

func TestEngineManualSwap(t *testing.T) {
	e := NewEngine[int](WithExpectedThreads(2), WithRelaxation(50))
	if got := e.ActiveBackend(); got != "2D-stack" {
		t.Fatalf("initial backend = %q", got)
	}
	if want := []string{"2D-stack", "elimination", "treiber"}; len(e.Backends()) != len(want) {
		t.Fatalf("backends = %v", e.Backends())
	}
	h := e.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	if err := e.SwapTo("treiber", "manual"); err != nil {
		t.Fatal(err)
	}
	if got := e.ActiveBackend(); got != "treiber" {
		t.Fatalf("after swap: %q", got)
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		v, ok := h.Pop()
		if !ok || seen[v] {
			t.Fatalf("pop %d = (%d,%v)", i, v, ok)
		}
		seen[v] = true
	}
	swaps := e.Swaps()
	if len(swaps) != 1 || swaps[0].Migrated != 100 || swaps[0].Reason != "manual" {
		t.Fatalf("swaps = %+v", swaps)
	}
	if e.K() < 1 {
		t.Fatalf("K = %d, want the 2D backend's bound", e.K())
	}
	if e.Selector() != nil {
		t.Fatal("selector present without WithBackendSelection")
	}
	e.Close() // no selector: must be a safe no-op
}

func TestEngineAutoSelection(t *testing.T) {
	e := NewEngine[int](
		WithExpectedThreads(2),
		WithRelaxation(50),
		WithBackendSelection(SelectorPolicy{Tick: 2 * time.Millisecond}),
	)
	defer e.Close()
	sel := e.Selector()
	if sel == nil {
		t.Fatal("no selector")
	}
	h := e.NewHandle()
	for i := 0; i < 64; i++ {
		h.Push(i)
	}
	// Collapse the budget: the selector must evict the 2D backend for a
	// strict one within a few ticks, whatever the load.
	sel.SetKBudget(0)
	deadline := time.After(2 * time.Second)
	for e.ActiveBackend() == "2D-stack" {
		select {
		case <-deadline:
			t.Fatalf("selector never evicted the 2D backend; history: %+v", sel.History())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if got := e.ActiveBackend(); got != "elimination" && got != "treiber" {
		t.Fatalf("evicted to %q", got)
	}
	found := false
	for _, rec := range e.Swaps() {
		if rec.Reason == ReasonKBudgetZero {
			found = true
		}
	}
	if !found {
		t.Fatalf("no k-budget-zero swap recorded: %+v", e.Swaps())
	}
	// Conservation across the forced swap.
	if got := len(e.Drain()); got != 64 {
		t.Fatalf("recovered %d of 64 items", got)
	}
}
