package ksegment

import (
	"testing"

	"stack2d/internal/seqspec"
)

// FuzzSequentialKBound feeds arbitrary scripts and segment sizes to a
// k-segment stack and checks conservation plus the s−1 sequential bound —
// through the sequential replay checker and, with synthesized sequential
// intervals, the concurrent-history KStackChecker (which must agree with
// zero slack). testdata/fuzz holds the checked-in seed corpus.
func FuzzSequentialKBound(f *testing.F) {
	f.Add(uint8(1), []byte{0xff, 0x00})
	f.Add(uint8(4), []byte{0xaa, 0x55})
	f.Add(uint8(16), []byte{0xf0, 0x0f, 0xcc})
	f.Fuzz(func(t *testing.T, sizeRaw uint8, script []byte) {
		size := int(sizeRaw%16) + 1
		cfg := Config{SegmentSize: size}
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for _, b := range script {
			for bit := 0; bit < 8; bit++ {
				if b&(1<<bit) != 0 {
					h.Push(next)
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
					next++
				} else {
					v, ok := h.Pop()
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
				}
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		maxDist, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if err := seqspec.CrossCheckKDistance(ops, cfg.K(), maxDist); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	})
}
