// Package ksegment implements the k-segment stack — the k-out-of-order
// relaxed stack of Henzinger, Kirsch, Payer, Sezgin and Sokolova
// ("Quantitative relaxation of concurrent data structures", POPL 2013) —
// the "k-segment" baseline of the paper's Figures 1 and 2.
//
// The stack is a linked list of fixed-size memory segments. All traffic
// goes through the topmost segment: a Push claims any empty slot in it
// (adding a fresh segment on top when it is full), a Pop takes any occupied
// slot (unlinking the segment when it is empty and not the last). Because a
// Pop may return any of the up-to-s items of the top segment, the structure
// is k-out-of-order with k = s−1 in sequential executions, where s is the
// segment size.
//
// Ordering property that the bound relies on: pushes only ever land in the
// top segment, so every item in a segment is newer than every item in the
// segments below it.
//
// Concurrency protocol (insert-then-verify): a Pop that finds the top
// segment empty first marks it deleted, rescans for stragglers, and only
// then unlinks it; a Push that inserted into a segment re-checks the deleted
// flag and retracts its item (retrying elsewhere) if the segment was
// condemned meanwhile. A retraction that fails means a concurrent Pop
// already took the item, which is a completed handoff.
package ksegment

import (
	"fmt"
	"sync/atomic"

	"stack2d/internal/core"
	"stack2d/internal/pad"
	"stack2d/internal/xrand"
)

// cell boxes one stored value; cells are unique per push, so slot CAS is
// ABA-free under the garbage collector.
type cell[T any] struct {
	value T
}

// segment is one fixed-size block of slots.
type segment[T any] struct {
	slots   []atomic.Pointer[cell[T]]
	next    *segment[T] // immutable after publication
	deleted atomic.Bool // set before unlinking; gates new insertions
}

func newSegment[T any](size int, next *segment[T]) *segment[T] {
	return &segment[T]{slots: make([]atomic.Pointer[cell[T]], size), next: next}
}

// Config tunes the k-segment stack.
type Config struct {
	// SegmentSize is the number of slots per segment (the paper's k). The
	// sequential relaxation bound is SegmentSize − 1.
	SegmentSize int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SegmentSize < 1 {
		return fmt.Errorf("ksegment: SegmentSize must be >= 1, got %d", c.SegmentSize)
	}
	return nil
}

// K returns the sequential k-out-of-order bound of this configuration.
func (c Config) K() int64 { return int64(c.SegmentSize - 1) }

// Stack is a lock-free k-segment stack. Create with New; obtain one Handle
// per goroutine.
type Stack[T any] struct {
	cfg  Config
	top  atomic.Pointer[segment[T]]
	seed pad.Uint64Line
}

// New returns an empty k-segment stack.
func New[T any](cfg Config) (*Stack[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stack[T]{cfg: cfg}
	s.top.Store(newSegment[T](cfg.SegmentSize, nil))
	return s, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Stack[T] {
	s, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the stack's configuration.
func (s *Stack[T]) Config() Config { return s.cfg }

// Len walks the segment chain and counts occupied slots. Approximate under
// concurrency; exact when quiescent. O(items) — diagnostics only.
func (s *Stack[T]) Len() int {
	n := 0
	for seg := s.top.Load(); seg != nil; seg = seg.next {
		for i := range seg.slots {
			if seg.slots[i].Load() != nil {
				n++
			}
		}
	}
	return n
}

// Segments reports the current chain length; diagnostics only.
func (s *Stack[T]) Segments() int {
	n := 0
	for seg := s.top.Load(); seg != nil; seg = seg.next {
		n++
	}
	return n
}

// Drain removes all items; teardown/testing helper (single-threaded).
func (s *Stack[T]) Drain() []T {
	h := s.NewHandle()
	var out []T
	for {
		v, ok := h.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Handle is the per-goroutine operation context. Not safe for concurrent
// use of the same handle.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	stats *core.OpStats
}

// NewHandle returns an operation handle.
func (s *Stack[T]) NewHandle() *Handle[T] {
	return &Handle[T]{s: s, rng: xrand.New(s.seed.V.Add(0x9e3779b97f4a7c15))}
}

// SetStats points the handle's internal-signal counters at st (nil
// disables, the default): slot inspections count as Probes, failed slot
// and top CASes as CASFailures, whole-loop retries as Restarts. Operation
// outcomes are counted by the backend adapter in internal/relax, not
// here. Owner-goroutine only.
func (h *Handle[T]) SetStats(st *core.OpStats) { h.stats = st }

// Push adds v to the stack.
func (h *Handle[T]) Push(v T) {
	s := h.s
	size := s.cfg.SegmentSize
	c := &cell[T]{value: v}
	for {
		t := s.top.Load()
		if t.deleted.Load() {
			// Condemned top: do not insert (our item could be stranded).
			// Prepend a fresh segment above it; poppers will salvage and
			// unlink the condemned one underneath.
			ns := newSegment[T](size, t)
			ns.slots[h.rng.Intn(size)].Store(c)
			if s.top.CompareAndSwap(t, ns) {
				return
			}
			if h.stats != nil {
				h.stats.CASFailures++
				h.stats.Restarts++
			}
			continue
		}
		// Probe for an empty slot from a random start.
		start := h.rng.Intn(size)
		placed := -1
		for j := 0; j < size; j++ {
			i := start + j
			if i >= size {
				i -= size
			}
			if h.stats != nil {
				h.stats.Probes++
			}
			if t.slots[i].Load() == nil && t.slots[i].CompareAndSwap(nil, c) {
				placed = i
				break
			}
		}
		if placed < 0 {
			// Segment full: grow the chain, carrying the item in the new
			// segment so the push completes with the same CAS.
			ns := newSegment[T](size, t)
			ns.slots[h.rng.Intn(size)].Store(c)
			if s.top.CompareAndSwap(t, ns) {
				return
			}
			if h.stats != nil {
				h.stats.CASFailures++
				h.stats.Restarts++
			}
			continue
		}
		// Insert-then-verify: if the segment was condemned after our CAS,
		// retract and retry; a failed retraction means a Pop already took
		// the item, i.e. the push has happened.
		if !t.deleted.Load() {
			return
		}
		if !t.slots[placed].CompareAndSwap(c, nil) {
			return
		}
	}
}

// Pop removes and returns an item from the top segment; ok is false when
// the stack was observed empty.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	for {
		t := s.top.Load()
		if c, ok := h.scanPop(t); ok {
			return c, true
		}
		if t.next == nil {
			// Last segment and the scan found nothing. Confirm the chain
			// did not grow meanwhile; if it did, retry.
			if s.top.Load() == t {
				var zero T
				return zero, false
			}
			continue
		}
		// Condemn, rescan for stragglers, then unlink.
		t.deleted.Store(true)
		if c, ok := h.scanPop(t); ok {
			s.top.CompareAndSwap(t, t.next)
			return c, true
		}
		s.top.CompareAndSwap(t, t.next)
	}
}

// scanPop probes every slot of seg from a random start, claiming the first
// occupied one.
func (h *Handle[T]) scanPop(seg *segment[T]) (v T, ok bool) {
	size := len(seg.slots)
	start := h.rng.Intn(size)
	for j := 0; j < size; j++ {
		i := start + j
		if i >= size {
			i -= size
		}
		if h.stats != nil {
			h.stats.Probes++
		}
		if c := seg.slots[i].Load(); c != nil {
			if seg.slots[i].CompareAndSwap(c, nil) {
				return c.value, true
			}
			if h.stats != nil {
				h.stats.CASFailures++
			}
		}
	}
	var zero T
	return zero, false
}
