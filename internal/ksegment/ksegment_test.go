package ksegment

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{SegmentSize: 0}).Validate(); err == nil {
		t.Fatal("SegmentSize 0 accepted")
	}
	if err := (Config{SegmentSize: 1}).Validate(); err != nil {
		t.Fatalf("SegmentSize 1 rejected: %v", err)
	}
	if got := (Config{SegmentSize: 8}).K(); got != 7 {
		t.Fatalf("K = %d, want 7", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(zero Config) did not panic")
		}
	}()
	MustNew[int](Config{})
}

func TestSegmentSizeOneIsStrict(t *testing.T) {
	// s=1: one slot per segment means pure LIFO (each segment is a node).
	s := MustNew[uint64](Config{SegmentSize: 1})
	h := s.NewHandle()
	var m seqspec.Model
	for v := uint64(0); v < 200; v++ {
		h.Push(v)
		m.Push(v)
		if v%3 == 1 {
			got, gok := h.Pop()
			want, wok := m.Pop()
			if gok != wok || got != want {
				t.Fatalf("Pop = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Pop()
		got, gok := h.Pop()
		if gok != wok {
			t.Fatal("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	s := MustNew[int](Config{SegmentSize: 4})
	h := s.NewHandle()
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	h.Push(1)
	if v, ok := h.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = (%d,%v), want (1,true)", v, ok)
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop after drain returned ok")
	}
}

func TestSequentialKBound(t *testing.T) {
	for _, size := range []int{1, 2, 4, 16} {
		cfg := Config{SegmentSize: size}
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for i := 0; i < 400; i++ {
			h.Push(next)
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
			next++
		}
		for i := 0; i < 800; i++ {
			if i%2 == 0 {
				h.Push(next)
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
				next++
			} else {
				v, ok := h.Pop()
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		maxDist, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
		if err != nil {
			t.Errorf("size %d: %v", size, err)
			continue
		}
		t.Logf("size %d: k=%d maxObservedDist=%d", size, cfg.K(), maxDist)
	}
}

func TestSegmentGrowthAndShrink(t *testing.T) {
	s := MustNew[int](Config{SegmentSize: 4})
	h := s.NewHandle()
	for i := 0; i < 40; i++ {
		h.Push(i)
	}
	if segs := s.Segments(); segs < 10 {
		t.Fatalf("Segments = %d after 40 pushes of size-4 segments, want >= 10", segs)
	}
	if got := s.Len(); got != 40 {
		t.Fatalf("Len = %d, want 40", got)
	}
	for i := 0; i < 40; i++ {
		if _, ok := h.Pop(); !ok {
			t.Fatalf("premature empty at pop %d", i)
		}
	}
	if segs := s.Segments(); segs != 1 {
		t.Fatalf("Segments = %d after drain, want 1 (last never removed)", segs)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
}

func TestValueConservationSequential(t *testing.T) {
	s := MustNew[uint64](Config{SegmentSize: 8})
	h := s.NewHandle()
	const n = 5000
	for v := uint64(0); v < n; v++ {
		h.Push(v)
	}
	seen := make(map[uint64]bool, n)
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d values, want %d", len(seen), n)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		perW    = 2500
	)
	s := MustNew[uint64](Config{SegmentSize: 8})
	popped := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[w] = append(popped[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// TestConcurrentShrinkStress drives segment churn hard: tiny segments and
// alternating bursts force constant condemn/salvage/unlink cycles.
func TestConcurrentShrinkStress(t *testing.T) {
	const workers = 8
	s := MustNew[uint64](Config{SegmentSize: 2})
	var wg sync.WaitGroup
	popped := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			base := uint64(w) << 32
			for i := 0; i < 1500; i++ {
				h.Push(base | uint64(i))
				h.Push(base | uint64(i) | 1<<31)
				if v, ok := h.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
				if v, ok := h.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	want := workers * 1500 * 2
	if len(seen) != want {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), want)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// Property: sequential conservation holds for arbitrary scripts and sizes.
func TestPropertySequentialConservation(t *testing.T) {
	f := func(sizeRaw uint8, script []bool) bool {
		size := int(sizeRaw%8) + 1
		s := MustNew[uint64](Config{SegmentSize: size})
		h := s.NewHandle()
		pushed := make(map[uint64]bool)
		recovered := make(map[uint64]bool)
		next := uint64(1)
		for _, isPush := range script {
			if isPush {
				h.Push(next)
				pushed[next] = true
				next++
			} else if v, ok := h.Pop(); ok {
				if recovered[v] {
					return false
				}
				recovered[v] = true
			}
		}
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			if recovered[v] {
				return false
			}
			recovered[v] = true
		}
		if len(recovered) != len(pushed) {
			return false
		}
		for v := range recovered {
			if !pushed[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
