package harness

import (
	"strings"
	"testing"
	"time"

	"stack2d/internal/relax"
)

func quickWorkload(p int) Workload {
	return Workload{
		Workers:   p,
		Duration:  20 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   1024,
		Seed:      42,
	}
}

func allFigure2Factories(p int) []Factory {
	out := make([]Factory, 0, len(relax.Figure2Algorithms()))
	for _, alg := range relax.Figure2Algorithms() {
		out = append(out, Figure2Factory(alg, p))
	}
	return out
}

func TestWorkloadValidate(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		ok   bool
	}{
		{"default", DefaultWorkload(4), true},
		{"no workers", Workload{Workers: 0, Duration: time.Millisecond}, false},
		{"no duration", Workload{Workers: 1}, false},
		{"bad ratio", Workload{Workers: 1, Duration: time.Millisecond, PushRatio: 1.5}, false},
		{"negative prefill", Workload{Workers: 1, Duration: time.Millisecond, Prefill: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.w.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestRunProducesOps(t *testing.T) {
	for _, f := range allFigure2Factories(2) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f, quickWorkload(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("run completed zero operations")
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %g", res.Throughput)
			}
			if res.Ops != res.Pushes+res.Pops+res.EmptyPops {
				t.Fatalf("op accounting inconsistent: %+v", res)
			}
		})
	}
}

func TestRunRejectsBadWorkload(t *testing.T) {
	if _, err := Run(NewTreiberFactory(), Workload{}); err == nil {
		t.Fatal("Run accepted zero workload")
	}
	if _, err := RunOps(NewTreiberFactory(), Workload{}, 10); err == nil {
		t.Fatal("RunOps accepted zero workload")
	}
	if _, err := RunOps(NewTreiberFactory(), quickWorkload(1), -1); err == nil {
		t.Fatal("RunOps accepted negative op count")
	}
}

func TestRunOpsDeterministicCounts(t *testing.T) {
	const p, ops = 4, 500
	for _, f := range allFigure2Factories(p) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := RunOps(f, quickWorkload(p), ops)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != p*ops {
				t.Fatalf("Ops = %d, want %d", res.Ops, p*ops)
			}
		})
	}
}

func TestRunOpsPopulationConsistent(t *testing.T) {
	// After a deterministic run, instance population must equal
	// prefill + pushes - successful pops. RunOps doesn't expose the
	// instance, so re-verify via a dedicated run here.
	w := quickWorkload(2)
	f := NewTwoDFactory(relax.TwoDConfigForK(256, 2))
	inst := f.New()
	pre := inst.NewWorker()
	for i := 0; i < w.Prefill; i++ {
		pre.Push(uint64(i) + 1)
	}
	worker := inst.NewWorker()
	pushes, pops := 0, 0
	for n := 0; n < 4000; n++ {
		if n%2 == 0 {
			worker.Push(uint64(1<<40) + uint64(n))
			pushes++
		} else if _, ok := worker.Pop(); ok {
			pops++
		}
	}
	want := w.Prefill + pushes - pops
	if got := inst.Len(); got != want {
		t.Fatalf("population = %d, want %d", got, want)
	}
}

func TestRunQualityMeasuresStrictZero(t *testing.T) {
	// A strict stack driven by one worker must score mean error 0.
	w := quickWorkload(1)
	w.Duration = 10 * time.Millisecond
	res, err := RunQuality(NewTreiberFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Count == 0 {
		t.Fatal("quality run recorded no pops")
	}
	if res.Quality.Mean() != 0 {
		t.Fatalf("treiber mean error = %g, want 0", res.Quality.Mean())
	}
}

func TestRunQualityRelaxedNonZero(t *testing.T) {
	// A very relaxed 2D-Stack under a single worker still spreads items
	// across sub-stacks, so error distances must be observed.
	w := quickWorkload(1)
	f := NewTwoDFactory(relax.TwoDConfigForK(4096, 1))
	res, err := RunQuality(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Count == 0 {
		t.Fatal("quality run recorded no pops")
	}
	if res.Quality.Mean() == 0 {
		t.Fatal("heavily relaxed stack scored perfect LIFO; oracle wiring suspect")
	}
}

func TestFigure1FactoryPanicsOnUnbounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Figure1Factory(random) did not panic")
		}
	}()
	Figure1Factory(relax.RandomStack, 64, 2)
}

func TestFigure1FactoryConfiguresBudget(t *testing.T) {
	for _, alg := range relax.Figure1Algorithms() {
		for _, k := range []int64{8, 64, 1024} {
			f := Figure1Factory(alg, k, 4)
			if f.K > k {
				t.Errorf("%v k=%d: configured bound %d exceeds budget", alg, k, f.K)
			}
			if f.New() == nil {
				t.Errorf("%v: factory built nil instance", alg)
			}
		}
	}
}

func TestFigure2FactoryNames(t *testing.T) {
	for _, alg := range relax.Figure2Algorithms() {
		f := Figure2Factory(alg, 4)
		if f.Name != alg.String() {
			t.Errorf("factory name %q != algorithm %q", f.Name, alg.String())
		}
	}
}

func TestFigure1SweepSmoke(t *testing.T) {
	sc := SweepConfig{
		Workload: quickWorkload(2),
		Repeats:  1,
		Quality:  true,
	}
	sc.Workload.Duration = 5 * time.Millisecond
	points, err := Figure1Sweep([]int64{16, 64}, sc)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(relax.Figure1Algorithms()) * 2
	if len(points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(points), wantPoints)
	}
	for _, pt := range points {
		if pt.Throughput.Mean <= 0 {
			t.Errorf("%v k=%d: zero throughput", pt.Algorithm, pt.X)
		}
	}
	out := RenderPoints(points, "k")
	if !strings.Contains(out, "2D-stack") || !strings.Contains(out, "k-segment") {
		t.Fatalf("rendered table missing series:\n%s", out)
	}
}

func TestFigure2SweepSmoke(t *testing.T) {
	sc := SweepConfig{
		Workload: quickWorkload(1),
		Repeats:  1,
	}
	sc.Workload.Duration = 5 * time.Millisecond
	points, err := Figure2Sweep([]int{1, 2}, sc)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(relax.Figure2Algorithms()) * 2
	if len(points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(points), wantPoints)
	}
	out := RenderPoints(points, "P")
	for _, name := range []string{"treiber", "elimination", "random-c2"} {
		if !strings.Contains(out, name) {
			t.Fatalf("rendered table missing %q:\n%s", name, out)
		}
	}
}

func TestDefaultSweepAxes(t *testing.T) {
	if len(Figure1Ks()) < 5 {
		t.Fatal("Figure1Ks too short for a sweep")
	}
	prev := int64(0)
	for _, k := range Figure1Ks() {
		if k <= prev {
			t.Fatalf("Figure1Ks not increasing: %v", Figure1Ks())
		}
		prev = k
	}
	ps := Figure2Ps()
	if ps[0] != 1 || ps[len(ps)-1] != 16 {
		t.Fatalf("Figure2Ps should span 1..16: %v", ps)
	}
}
