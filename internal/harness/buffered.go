package harness

import (
	"stack2d/internal/core"
	"stack2d/internal/quality"
	"stack2d/internal/relax"
	"stack2d/internal/twodqueue"
)

// Buffered adapters: the same 2D structures driven through per-handle
// operation buffers (core/twodqueue SetOpBuffer — the combined-publication
// fast path of DESIGN.md §11). The buffered series share a caveat the
// plain ones don't have: buffered operations linearize at publish/serve,
// so recorded histories must be budgeted K + seqspec.BufferAllowance — and
// the fairness premise requires that workers never park with non-empty
// buffers. Phased runs driving buffered workers must therefore keep every
// worker active in every phase (Workers == MaxWorkers); the conformance
// hammers do, and the throughput runner always does.

type bufferedStackWorker struct{ h *core.Handle[uint64] }

func (w bufferedStackWorker) Push(v uint64)       { w.h.BufferedPush(v) }
func (w bufferedStackWorker) Pop() (uint64, bool) { return w.h.BufferedPop() }

type twoDBufferedInstance struct {
	s      *core.Stack[uint64]
	bufCap int
}

func (i twoDBufferedInstance) NewWorker() Worker {
	h := i.s.NewHandle()
	h.SetOpBuffer(i.bufCap)
	return bufferedStackWorker{h}
}
func (i twoDBufferedInstance) Len() int { return i.s.Len() }

// NewTwoDBufferedFactory wraps a 2D-Stack configuration whose workers
// batch through op buffers of the given threshold.
func NewTwoDBufferedFactory(cfg core.Config, bufCap int) Factory {
	return Factory{
		Name: relax.TwoDStack.String() + "+opbuf",
		K:    cfg.K(),
		New:  func() Instance { return twoDBufferedInstance{core.MustNew[uint64](cfg), bufCap} },
	}
}

type bufferedQueueWorker struct{ h *twodqueue.Handle[uint64] }

func (w bufferedQueueWorker) Push(v uint64)       { w.h.BufferedEnqueue(v) }
func (w bufferedQueueWorker) Pop() (uint64, bool) { return w.h.BufferedDequeue() }

// RunPhasedBuffered is RunPhased with every worker's handle armed with an
// op buffer of the given threshold. Worker exit publishes pending pushes
// (FlushOps) before the final stats flush; undelivered prefetched values
// stay with the abandoned handle, which the BufferAllowance budget's
// prefetch-residency term covers. Use all-active phases only (see the
// package note on the fairness premise).
func RunPhasedBuffered(s *core.Stack[uint64], bufCap int, phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var oracle phasedOracle
	if w.Quality {
		oracle = &quality.Oracle{}
	}
	return runPhased(func(id int) (Worker, func()) {
		h := s.NewHandle()
		if id >= 0 {
			h.Pin(s.PlacementSocketFor(id))
			h.SetOpBuffer(bufCap) // the prefill worker (id -1) stays unbuffered
		}
		return bufferedStackWorker{h}, func() {
			h.FlushOps()
			h.FlushStats()
		}
	}, oracle, false, phases, w)
}

// RunPhasedQueueBuffered is RunPhasedQueue with buffered workers; see
// RunPhasedBuffered.
func RunPhasedQueueBuffered(q *twodqueue.Queue[uint64], bufCap int, phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var oracle phasedOracle
	if w.Quality {
		oracle = &quality.FIFOOracle{}
	}
	return runPhased(func(id int) (Worker, func()) {
		h := q.NewHandle()
		if id >= 0 {
			h.Pin(q.PlacementSocketFor(id))
			h.SetOpBuffer(bufCap)
		}
		return bufferedQueueWorker{h}, func() {
			h.FlushOps()
			h.FlushStats()
		}
	}, oracle, true, phases, w)
}
