package harness

import (
	"testing"
	"time"

	"stack2d/internal/multistack"
	"stack2d/internal/relax"
)

// TestQualityOrderingAcrossDesigns asserts the structural accuracy ordering
// the paper's figures rest on: at equal sub-stack count, uniform random
// scheduling scores markedly worse error distance than power-of-two-choices,
// and the window-disciplined 2D-Stack beats both. This is a statistical
// property but a heavily separated one (the Figure 2 data shows ~195 vs ~36
// vs ~18), so the factor-of-two margins here are conservative.
func TestQualityOrderingAcrossDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("quality measurement run")
	}
	w := Workload{
		Workers:   4,
		Duration:  80 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   16384,
		Seed:      7,
	}
	measure := func(f Factory) float64 {
		res, err := RunQuality(f, w)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if res.Quality.Count == 0 {
			t.Fatalf("%s: no pops measured", f.Name)
		}
		return res.Quality.Mean()
	}
	const width = 64
	randomErr := measure(NewMultiFactory(multistack.Config{Width: width, Policy: multistack.Random}, 4))
	c2Err := measure(NewMultiFactory(multistack.Config{Width: width, Policy: multistack.RandomC2}, 4))
	twoDErr := measure(Figure2Factory(relax.TwoDStack, 4))

	t.Logf("mean error: random=%.1f random-c2=%.1f 2D-stack=%.1f", randomErr, c2Err, twoDErr)
	if c2Err*2 > randomErr {
		t.Errorf("random (%.1f) should be at least 2x worse than random-c2 (%.1f)", randomErr, c2Err)
	}
	if twoDErr*1.5 > c2Err {
		t.Errorf("random-c2 (%.1f) should be clearly worse than 2D-stack (%.1f)", c2Err, twoDErr)
	}
}

// TestQualityGrowsWithRelaxation: the 2D-Stack's measured error must grow
// monotonically-ish with the configured k (allowing noise, we require the
// endpoints to be well separated).
func TestQualityGrowsWithRelaxation(t *testing.T) {
	if testing.Short() {
		t.Skip("quality measurement run")
	}
	w := Workload{
		Workers:   2,
		Duration:  60 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   16384,
		Seed:      3,
	}
	errAt := func(k int64) float64 {
		res, err := RunQuality(Figure1Factory(relax.TwoDStack, k, 2), w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Quality.Mean()
	}
	small := errAt(8)
	large := errAt(4096)
	t.Logf("mean error: k=8 %.2f, k=4096 %.2f", small, large)
	if large < small*3 {
		t.Errorf("relaxation did not cost accuracy: k=8 err %.2f vs k=4096 err %.2f", small, large)
	}
}

// TestStrictDesignsScoreZeroQuality: every strict design must measure mean
// error exactly zero with one worker.
func TestStrictDesignsScoreZeroQuality(t *testing.T) {
	w := Workload{
		Workers:   1,
		Duration:  30 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   4096,
		Seed:      5,
	}
	for _, f := range []Factory{
		NewTreiberFactory(),
		Figure2Factory(relax.EliminationStack, 1),
		NewFlatCombiningFactory(),
	} {
		res, err := RunQuality(f, w)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if res.Quality.Mean() != 0 {
			t.Errorf("%s: mean error %.3f, want 0", f.Name, res.Quality.Mean())
		}
	}
}
