package harness

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
)

func TestPhasedValidation(t *testing.T) {
	w := PhasedWorkload{MaxWorkers: 4, Prefill: 10, Seed: 1}
	ok := []Phase{{Name: "a", Duration: time.Millisecond, Workers: 2, PushRatio: 0.5}}
	if err := w.Validate(ok); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	bad := [][]Phase{
		nil,
		{{Name: "d0", Duration: 0, Workers: 1}},
		{{Name: "w0", Duration: time.Millisecond, Workers: 0}},
		{{Name: "wBig", Duration: time.Millisecond, Workers: 5}},
		{{Name: "ratio", Duration: time.Millisecond, Workers: 1, PushRatio: 1.5}},
		{{Name: "think", Duration: time.Millisecond, Workers: 1, ThinkSpin: -1}},
	}
	for _, phases := range bad {
		if err := w.Validate(phases); err == nil {
			t.Fatalf("invalid phases %+v accepted", phases)
		}
	}
	if err := (PhasedWorkload{MaxWorkers: 0}).Validate(ok); err == nil {
		t.Fatal("MaxWorkers 0 accepted")
	}
}

func TestContentionPhasesShape(t *testing.T) {
	phases := ContentionPhases(8, 10*time.Millisecond)
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	if phases[0].Workers != 2 || phases[1].Workers != 8 || phases[2].Workers != 2 {
		t.Fatalf("worker shape %d/%d/%d, want 2/8/2", phases[0].Workers, phases[1].Workers, phases[2].Workers)
	}
	if phases[1].ThinkSpin != 0 || phases[0].ThinkSpin == 0 {
		t.Fatal("high phase should have no think time, low phases some")
	}
	if got := ContentionPhases(1, time.Millisecond)[0].Workers; got != 1 {
		t.Fatalf("single-worker low phase = %d workers", got)
	}
}

func TestRunPhasedCountsAndQuality(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 8, Depth: 16, Shift: 16, RandomHops: 2})
	phases := []Phase{
		{Name: "warm", Duration: 30 * time.Millisecond, Workers: 2, PushRatio: 0.6},
		{Name: "burst", Duration: 30 * time.Millisecond, Workers: 4, PushRatio: 0.5},
	}
	w := PhasedWorkload{MaxWorkers: 4, Prefill: 1024, Seed: 7, Quality: true}
	res, err := RunPhased(s, phases, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("got %d phase results", len(res.Phases))
	}
	var sum uint64
	for i, pr := range res.Phases {
		if pr.Ops == 0 {
			t.Fatalf("phase %d recorded zero ops", i)
		}
		if pr.Ops != pr.Pushes+pr.Pops+pr.EmptyPops {
			t.Fatalf("phase %d ops %d != %d+%d+%d", i, pr.Ops, pr.Pushes, pr.Pops, pr.EmptyPops)
		}
		if pr.Throughput <= 0 {
			t.Fatalf("phase %d throughput %g", i, pr.Throughput)
		}
		sum += pr.Ops
	}
	if sum != res.TotalOps {
		t.Fatalf("TotalOps %d != phase sum %d", res.TotalOps, sum)
	}
	if res.Quality.Count == 0 {
		t.Fatal("quality run measured no pops")
	}
	// No hard distance bound here: a worker descheduled between a stack
	// operation and its oracle bookkeeping inflates the measured distance
	// by everything that ran in between, so concurrent oracle numbers are
	// statistics, not proofs. The deterministic bound check lives in
	// internal/relax (sequential executions, where Theorem 1 is exact).
}

// TestRunPhasedWithController is the in-tree miniature of cmd/adapttune:
// an adaptive stack under the canonical low→high→low shape must end with a
// consistent structure and a controller history whose every tick respects
// the ceiling.
func TestRunPhasedWithController(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2})
	ctrl, err := adapt.New(s, adapt.Policy{
		Goal:     adapt.MaxThroughput,
		KCeiling: 8192,
		Tick:     2 * time.Millisecond,
		MinWidth: 2, MaxWidth: 16,
		MinDepth: 8, MaxDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	phases := ContentionPhases(8, 40*time.Millisecond)
	res, err := RunPhased(s, phases, PhasedWorkload{MaxWorkers: 8, Prefill: 4096, Seed: 3, Quality: true})
	ctrl.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations recorded")
	}
	hist := ctrl.History()
	if len(hist) == 0 {
		t.Fatal("controller recorded no ticks during the run")
	}
	for _, rec := range hist {
		if rec.K > 8192 {
			t.Fatalf("tick %d K %d above ceiling", rec.Tick, rec.K)
		}
	}
	if int64(res.Quality.Max) > 8192 {
		t.Fatalf("realised distance %d above ceiling", res.Quality.Max)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
