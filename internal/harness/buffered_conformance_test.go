package harness

import (
	"testing"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// Buffered-mode conformance: phased runs with every worker's handle armed
// with an op buffer, recorded and distance-checked under the documented
// budget K + ShrinkDisplacementBound + seqspec.BufferAllowance (DESIGN.md
// §11). The phases keep all workers active throughout — the fairness
// premise of the BufferAllowance bound forbids parking a worker with a
// non-empty buffer (see the package note in buffered.go).

// bufferedPhases is reconfigPhases with every worker active in every
// phase.
func bufferedPhases(workers int, d time.Duration) []Phase {
	return []Phase{
		{Name: "warm", Duration: d, Workers: workers, PushRatio: 0.55, ThinkSpin: 128},
		{Name: "churn", Duration: d, Workers: workers, PushRatio: 0.5, ThinkSpin: 128},
	}
}

// TestConformanceKDistanceBufferedStack hammers a 2D-Stack through
// buffered handles while the geometry grows and shrinks mid-traffic
// (exercising the epoch flush and the warm shrink handoff under
// buffering), then replays the history through KStackChecker with the
// composed budget.
func TestConformanceKDistanceBufferedStack(t *testing.T) {
	const workers, bufCap = 8, 8
	start := core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	schedule := []core.Config{
		{Width: 8, Depth: 16, Shift: 8, RandomHops: 1}, // grow + deepen
		{Width: 2, Depth: 8, Shift: 8, RandomHops: 1},  // shrink: warm handoff
		{Width: 6, Depth: 8, Shift: 4, RandomHops: 1},  // regrow
	}
	s := core.MustNew[uint64](start)

	maxK := start.K()
	for _, cfg := range schedule {
		if k := cfg.K(); k > maxK {
			maxK = k
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, cfg := range schedule {
			time.Sleep(15 * time.Millisecond)
			if err := s.Reconfigure(cfg); err != nil {
				t.Errorf("Reconfigure(%+v): %v", cfg, err)
				return
			}
		}
	}()

	res, err := RunPhasedBuffered(s, bufCap, bufferedPhases(workers, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: workers, Prefill: 512, Seed: 17, Record: true,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("Record produced no history")
	}

	checker := seqspec.KStackChecker{
		K:               maxK,
		Allowance:       s.ShrinkDisplacementBound(),
		BufferAllowance: seqspec.BufferAllowance(workers, bufCap),
	}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d buffer=%d): %v",
			checker.K, checker.Allowance, checker.BufferAllowance, err)
	}
	t.Logf("buffered stack hammer: %d ops, %d pops, maxDist=%d maxStrain=%d (k=%d allowance=%d buffer=%d)",
		len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain,
		checker.K, checker.Allowance, checker.BufferAllowance)
}

// TestConformanceKDistanceBufferedQueue is the queue counterpart: buffered
// enqueue batching and dequeue prefetching across a growth and a
// warm-handoff shrink, budgeted with the summed K (DESIGN.md §5) plus the
// shrink and buffer allowances.
func TestConformanceKDistanceBufferedQueue(t *testing.T) {
	const workers, bufCap = 8, 8
	start := twodqueue.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	schedule := []twodqueue.Config{
		{Width: 8, Depth: 16, Shift: 8, RandomHops: 1}, // grow + deepen
		{Width: 2, Depth: 8, Shift: 8, RandomHops: 1},  // shrink: warm handoff
	}
	q := twodqueue.MustNew[uint64](start)

	sumK := start.K()
	for _, cfg := range schedule {
		sumK += cfg.K()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, cfg := range schedule {
			time.Sleep(20 * time.Millisecond)
			if err := q.Reconfigure(cfg); err != nil {
				t.Errorf("Reconfigure(%+v): %v", cfg, err)
				return
			}
		}
	}()

	res, err := RunPhasedQueueBuffered(q, bufCap, bufferedPhases(workers, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: workers, Prefill: 512, Seed: 19, Record: true,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}

	checker := seqspec.KFIFOChecker{
		K:               sumK,
		Allowance:       q.ShrinkDisplacementBound(),
		BufferAllowance: seqspec.BufferAllowance(workers, bufCap),
	}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d buffer=%d): %v",
			checker.K, checker.Allowance, checker.BufferAllowance, err)
	}
	t.Logf("buffered queue hammer: %d ops, %d deqs, maxDist=%d maxStrain=%d (k=%d allowance=%d buffer=%d)",
		len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain,
		checker.K, checker.Allowance, checker.BufferAllowance)
}
