package harness

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// These tests are the harness half of the relaxation-conformance subsystem
// (DESIGN.md §2): phased runs record full interval histories
// (PhasedWorkload.Record) across live geometry transitions — growth,
// warm-handoff shrink, controller-driven retuning, placement-enabled
// probing — and the recordings are distance-checked with
// seqspec.KStackChecker / seqspec.KFIFOChecker, not just FIFO/LIFO-sanity-
// checked. The claimed bound is always the documented one: the active
// geometries' K() (max for the stack, summed across a handover for the
// queue, DESIGN.md §4/§5) plus the structure's ShrinkDisplacementBound —
// the explicitly tracked migration allowance — and nothing more.

// reconfigPhases is a short two-phase shape leaving time for a concurrent
// reconfiguration schedule to land mid-traffic.
func reconfigPhases(workers int, d time.Duration) []Phase {
	// ThinkSpin keeps the recorded volume moderate: the checker's replay
	// scans resident items per pop, so a few hundred thousand ops is the
	// practical budget for a -race CI run.
	return []Phase{
		{Name: "warm", Duration: d, Workers: workers, PushRatio: 0.55, ThinkSpin: 128},
		{Name: "churn", Duration: d, Workers: workers, PushRatio: 0.5, ThinkSpin: 128},
	}
}

// TestConformanceKDistanceUnderReconfigStack hammers a 2D-Stack with
// concurrent traffic while the geometry grows, deepens and shrinks twice
// (exercising the warm shrink handoff), then replays the recorded history
// through KStackChecker. The budget is max K() over the schedule plus the
// stack's tracked ShrinkDisplacementBound.
func TestConformanceKDistanceUnderReconfigStack(t *testing.T) {
	schedule := []core.Config{
		{Width: 8, Depth: 8, Shift: 8, RandomHops: 1},  // grow width
		{Width: 8, Depth: 16, Shift: 8, RandomHops: 1}, // deepen, shift < depth
		{Width: 2, Depth: 8, Shift: 8, RandomHops: 1},  // shrink: warm handoff
		{Width: 6, Depth: 8, Shift: 4, RandomHops: 1},  // regrow, shift < depth
		{Width: 3, Depth: 8, Shift: 8, RandomHops: 1},  // shrink again
	}
	start := core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	s := core.MustNew[uint64](start)

	maxK := start.K()
	for _, cfg := range schedule {
		if k := cfg.K(); k > maxK {
			maxK = k
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, cfg := range schedule {
			time.Sleep(12 * time.Millisecond)
			if err := s.Reconfigure(cfg); err != nil {
				t.Errorf("Reconfigure(%+v): %v", cfg, err)
				return
			}
		}
	}()

	res, err := RunPhased(s, reconfigPhases(8, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: 8, Prefill: 512, Seed: 7, Record: true,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("Record produced no history")
	}

	checker := seqspec.KStackChecker{K: maxK, Allowance: s.ShrinkDisplacementBound()}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d): %v", checker.K, checker.Allowance, err)
	}
	t.Logf("stack reconfig hammer: %d ops, %d pops, maxDist=%d maxStrain=%d (k=%d allowance=%d)",
		len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain, checker.K, checker.Allowance)
}

// TestConformanceKDistanceUnderReconfigQueue is the queue counterpart:
// traffic across growth and a warm-handoff shrink, distance-checked with
// KFIFOChecker. Per DESIGN.md §5 the displacements of the geometries
// spanning a handover add (items placed under the old windows drain under
// the new), so the budget sums the schedule's bounds, plus the tracked
// ShrinkDisplacementBound.
func TestConformanceKDistanceUnderReconfigQueue(t *testing.T) {
	start := twodqueue.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	schedule := []twodqueue.Config{
		{Width: 8, Depth: 16, Shift: 8, RandomHops: 1}, // grow + deepen, shift < depth
		{Width: 2, Depth: 8, Shift: 8, RandomHops: 1},  // shrink: warm handoff
	}
	q := twodqueue.MustNew[uint64](start)

	sumK := start.K()
	for _, cfg := range schedule {
		sumK += cfg.K()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, cfg := range schedule {
			time.Sleep(20 * time.Millisecond)
			if err := q.Reconfigure(cfg); err != nil {
				t.Errorf("Reconfigure(%+v): %v", cfg, err)
				return
			}
		}
	}()

	res, err := RunPhasedQueue(q, reconfigPhases(8, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: 8, Prefill: 512, Seed: 11, Record: true,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}

	checker := seqspec.KFIFOChecker{K: sumK, Allowance: q.ShrinkDisplacementBound()}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d): %v", checker.K, checker.Allowance, err)
	}
	t.Logf("queue reconfig hammer: %d ops, %d deqs, maxDist=%d maxStrain=%d (k=%d allowance=%d)",
		len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain, checker.K, checker.Allowance)
}

// TestConformanceKDistanceAdaptivePlacement distance-checks a fully
// adaptive, placement-enabled run: LocalFirst homes over two sockets,
// workers pinned by index, and an adapt.Controller live-retuning the
// geometry during the phased load. The budget is the largest K() the
// controller's tick history reports as active, plus the shrink allowance —
// exactly the accounting cmd/adapttune's realised-distance check uses.
func TestConformanceKDistanceAdaptivePlacement(t *testing.T) {
	start := core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	s := core.MustNew[uint64](start)
	s.SetPlacement(core.LocalFirst(), 2)

	ctrl, err := adapt.New(s, adapt.Policy{
		Goal:          adapt.MaxThroughput,
		KCeiling:      4096,
		MinWidth:      2,
		MaxWidth:      16,
		MinDepth:      4,
		MaxDepth:      32,
		Tick:          10 * time.Millisecond,
		Cooldown:      1,
		MinOpsPerTick: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := ContentionPhases(8, 50*time.Millisecond)
	for i := range phases {
		// See reconfigPhases: bound the recorded volume for the checker.
		if phases[i].ThinkSpin < 128 {
			phases[i].ThinkSpin = 128
		}
	}
	ctrl.Start()
	res, runErr := RunPhased(s, phases, PhasedWorkload{
		MaxWorkers: 8, Prefill: 512, Seed: 13, Quality: false, Record: true,
	})
	ctrl.Stop()
	if runErr != nil {
		t.Fatal(runErr)
	}

	maxK := start.K()
	for _, rec := range ctrl.History() {
		if rec.K > maxK {
			maxK = rec.K
		}
	}
	// The geometry active at the end may postdate the last tick record.
	if k := s.Config().K(); k > maxK {
		maxK = k
	}

	checker := seqspec.KStackChecker{K: maxK, Allowance: s.ShrinkDisplacementBound()}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d): %v", checker.K, checker.Allowance, err)
	}
	t.Logf("adaptive placement run: %d ops, %d pops, maxDist=%d maxStrain=%d (k=%d allowance=%d, %d ticks)",
		len(res.History), rep.Pops, rep.MaxDistance, rep.MaxStrain, checker.K, checker.Allowance, len(ctrl.History()))
}
