package harness

import (
	"testing"
	"time"

	"stack2d/internal/core"
)

func TestRunInstrumentedCountsWork(t *testing.T) {
	cfg := core.DefaultConfig(2)
	w := quickWorkload(2)
	w.Duration = 30 * time.Millisecond
	res, err := RunInstrumented(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations")
	}
	if res.Stats.Probes < res.Stats.Ops() {
		t.Fatalf("Probes (%d) < ops (%d): every op validates at least one sub-stack",
			res.Stats.Probes, res.Stats.Ops())
	}
	if res.Stats.Pushes < uint64(w.Prefill) {
		t.Fatalf("Stats.Pushes = %d below prefill %d", res.Stats.Pushes, w.Prefill)
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRunInstrumentedValidates(t *testing.T) {
	if _, err := RunInstrumented(core.Config{}, quickWorkload(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := RunInstrumented(core.DefaultConfig(1), Workload{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestRunInstrumentedTightSearch(t *testing.T) {
	// At the default operating point with few workers, the empirical step
	// count must stay near 1 probe/op (the paper's tight-bound claim).
	cfg := core.DefaultConfig(4)
	w := quickWorkload(4)
	w.Duration = 40 * time.Millisecond
	res, err := RunInstrumented(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if ppo := res.Stats.ProbesPerOp(); ppo > 4 {
		t.Fatalf("ProbesPerOp = %.2f, want near 1 at the default config", ppo)
	}
}
