// Package harness drives the paper's experimental methodology (Section 4):
// P workers issue Push/Pop uniformly at random with no think time against a
// prefilled stack (32,768 items in the paper) for a fixed duration;
// throughput is operations per second, quality is the mean error distance
// from LIFO measured by the internal/quality oracle; every point is the
// average of several repeats.
//
// The harness abstracts each algorithm behind a Factory that builds fresh
// instances per run and per-goroutine Workers (handles), so the same runner
// reproduces Figure 1 (relaxation sweep), Figure 2 (concurrency sweep) and
// the ablation experiments.
package harness

import (
	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/ksegment"
	"stack2d/internal/multistack"
	"stack2d/internal/relax"
	"stack2d/internal/treiber"
)

// Worker is one goroutine's operation context on a stack under test.
type Worker interface {
	Push(v uint64)
	Pop() (v uint64, ok bool)
}

// Instance is one freshly built stack under test.
type Instance interface {
	// NewWorker returns a per-goroutine handle; safe to call concurrently.
	NewWorker() Worker
	// Len is the approximate population, used for sanity checks.
	Len() int
}

// Factory builds fresh instances of one algorithm configuration.
type Factory struct {
	// Name is the paper's series label, e.g. "2D-stack" or "k-robin".
	Name string
	// K is the configured relaxation bound, or -1 when unbounded/not
	// applicable (random, random-c2, elimination).
	K int64
	// New builds a fresh, empty instance.
	New func() Instance
}

// --- adapters -------------------------------------------------------------

type twoDInstance struct{ s *core.Stack[uint64] }

func (i twoDInstance) NewWorker() Worker { return i.s.NewHandle() }
func (i twoDInstance) Len() int          { return i.s.Len() }

// NewTwoDFactory wraps a 2D-Stack configuration.
func NewTwoDFactory(cfg core.Config) Factory {
	return Factory{
		Name: relax.TwoDStack.String(),
		K:    cfg.K(),
		New:  func() Instance { return twoDInstance{core.MustNew[uint64](cfg)} },
	}
}

type treiberInstance struct{ s *treiber.Stack[uint64] }

func (i treiberInstance) NewWorker() Worker { return i.s }
func (i treiberInstance) Len() int          { return i.s.Len() }

// NewTreiberFactory wraps the strict Treiber baseline (k = 0).
func NewTreiberFactory() Factory {
	return Factory{
		Name: relax.TreiberStack.String(),
		K:    0,
		New:  func() Instance { return treiberInstance{treiber.New[uint64]()} },
	}
}

type elimInstance struct{ s *elimination.Stack[uint64] }

func (i elimInstance) NewWorker() Worker { return i.s.NewHandle() }
func (i elimInstance) Len() int          { return i.s.Len() }

// NewEliminationFactory wraps the elimination back-off stack (strict
// semantics, k = 0; the K field is 0 but the factory is not used in the
// relaxation sweep).
func NewEliminationFactory(cfg elimination.Config) Factory {
	return Factory{
		Name: relax.EliminationStack.String(),
		K:    0,
		New:  func() Instance { return elimInstance{elimination.MustNew[uint64](cfg)} },
	}
}

type ksegInstance struct{ s *ksegment.Stack[uint64] }

func (i ksegInstance) NewWorker() Worker { return i.s.NewHandle() }
func (i ksegInstance) Len() int          { return i.s.Len() }

// NewKSegmentFactory wraps a k-segment configuration.
func NewKSegmentFactory(cfg ksegment.Config) Factory {
	return Factory{
		Name: relax.KSegment.String(),
		K:    cfg.K(),
		New:  func() Instance { return ksegInstance{ksegment.MustNew[uint64](cfg)} },
	}
}

type multiInstance struct{ s *multistack.Stack[uint64] }

func (i multiInstance) NewWorker() Worker { return i.s.NewHandle() }
func (i multiInstance) Len() int          { return i.s.Len() }

// NewMultiFactory wraps a distributed multi-stack configuration. K is the
// k-robin estimate for RoundRobin at p threads and -1 (unbounded) for the
// random policies.
func NewMultiFactory(cfg multistack.Config, p int) Factory {
	k := int64(-1)
	if cfg.Policy == multistack.RoundRobin {
		k = relax.KRobinBound(cfg.Width, p)
	}
	return Factory{
		Name: cfg.Policy.String(),
		K:    k,
		New:  func() Instance { return multiInstance{multistack.MustNew[uint64](cfg)} },
	}
}

// --- figure configurations -------------------------------------------------

// Figure1Factory returns the algorithm configured for a target relaxation
// bound k at p threads, per the mappings in internal/relax. Only k-bounded
// algorithms are legal here.
func Figure1Factory(alg relax.Algorithm, k int64, p int) Factory {
	switch alg {
	case relax.TwoDStack:
		return NewTwoDFactory(relax.TwoDConfigForK(k, p))
	case relax.KSegment:
		return NewKSegmentFactory(relax.KSegmentConfigForK(k))
	case relax.KRobin:
		return NewMultiFactory(relax.KRobinConfigForK(k, p), p)
	case relax.TreiberStack:
		return NewTreiberFactory()
	default:
		panic("harness: " + alg.String() + " is not k-bounded; not part of Figure 1")
	}
}

// Figure2K is the common relaxation budget used to configure the k-bounded
// relaxed algorithms in the concurrency sweep; see EXPERIMENTS.md.
const Figure2K = 1024

// figure2FixedWidth is the sub-stack count of the fixed-structure designs
// (random, random-c2) in Figure 2; the paper notes their quality stays
// constant with P because the sub-stack count is fixed.
const figure2FixedWidth = 64

// Figure2Factory returns the algorithm configured for high throughput at p
// threads, reproducing the paper's Figure 2 setup: 2D-stack at width 4P,
// k-robin shrinking width with P to hold its bound, fixed structures for
// the random policies and k-segment, and the strict baselines.
func Figure2Factory(alg relax.Algorithm, p int) Factory {
	switch alg {
	case relax.TwoDStack:
		return NewTwoDFactory(core.DefaultConfig(p))
	case relax.KRobin:
		return NewMultiFactory(relax.KRobinConfigForK(Figure2K, p), p)
	case relax.KSegment:
		return NewKSegmentFactory(ksegment.Config{SegmentSize: figure2FixedWidth})
	case relax.RandomStack:
		return NewMultiFactory(multistack.Config{Width: figure2FixedWidth, Policy: multistack.Random}, p)
	case relax.RandomC2Stack:
		return NewMultiFactory(multistack.Config{Width: figure2FixedWidth, Policy: multistack.RandomC2}, p)
	case relax.EliminationStack:
		return NewEliminationFactory(elimination.DefaultConfig(p))
	case relax.TreiberStack:
		return NewTreiberFactory()
	default:
		panic("harness: unknown algorithm " + alg.String())
	}
}
