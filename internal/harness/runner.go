package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stack2d/internal/quality"
	"stack2d/internal/stats"
	"stack2d/internal/xrand"
)

// Workload describes one experiment run, mirroring the paper's setup.
type Workload struct {
	// Workers is P, the number of concurrent operation streams.
	Workers int
	// Duration is the timed phase length (the paper runs 5 s).
	Duration time.Duration
	// PushRatio is the probability an operation is a Push; the paper uses
	// 0.5 ("operations selected uniformly at random from Pop and Push").
	PushRatio float64
	// Prefill is the initial population (the paper: 32,768), present to
	// avoid measuring empty-stack returns.
	Prefill int
	// Seed makes runs reproducible; distinct workers derive distinct
	// streams from it.
	Seed uint64
	// PinThreads locks each worker goroutine to an OS thread, the closest
	// portable analogue of the paper's one-thread-per-core pinning.
	PinThreads bool
	// ThinkSpin inserts a computational load of this many ALU spin
	// iterations between operations. The paper sets it to zero ("to
	// simulate high contention, we put no computational load between
	// operations"); the full version explores non-zero loads, which dilute
	// contention.
	ThinkSpin int
	// SplitRoles dedicates half the workers (rounding up) to pushing and
	// the rest to popping — the producer/consumer pattern under which
	// elimination thrives and window maintenance is one-directional.
	// PushRatio is ignored for role-split runs.
	SplitRoles bool
}

// think burns the configured computational load; the result is returned so
// the compiler cannot elide the loop.
func think(n int, acc uint64) uint64 {
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// Validate reports whether the workload is runnable.
func (w Workload) Validate() error {
	switch {
	case w.Workers < 1:
		return fmt.Errorf("harness: Workers must be >= 1, got %d", w.Workers)
	case w.Duration <= 0:
		return fmt.Errorf("harness: Duration must be positive, got %v", w.Duration)
	case w.PushRatio < 0 || w.PushRatio > 1:
		return fmt.Errorf("harness: PushRatio must be in [0,1], got %g", w.PushRatio)
	case w.Prefill < 0:
		return fmt.Errorf("harness: Prefill must be >= 0, got %d", w.Prefill)
	case w.ThinkSpin < 0:
		return fmt.Errorf("harness: ThinkSpin must be >= 0, got %d", w.ThinkSpin)
	}
	return nil
}

// DefaultWorkload returns the paper's configuration at p workers with a
// CI-friendly duration; pass -paper to the CLIs for the full 5 s.
func DefaultWorkload(p int) Workload {
	return Workload{
		Workers:   p,
		Duration:  200 * time.Millisecond,
		PushRatio: 0.5,
		Prefill:   32768,
		Seed:      1,
	}
}

// Result summarises one run.
type Result struct {
	Ops        uint64        // completed operations (pushes + pops)
	Pushes     uint64        // completed pushes
	Pops       uint64        // pops returning a value
	EmptyPops  uint64        // pops reporting empty
	Elapsed    time.Duration // measured wall time of the timed phase
	Throughput float64       // Ops per second
	Quality    quality.Stats // zero unless measured (RunQuality)

	// LatencyP50/P99 are sampled per-operation latencies (1 op in 256 is
	// timed); zero when too few samples were collected.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// oracle abstracts the two error-distance instruments (LIFO side-list for
// stacks, FIFO side-list for the queue extension).
type oracle interface {
	Insert(label uint64)
	Remove(label uint64) int
	Snapshot() quality.Stats
}

// Run executes one throughput run: prefill, then P workers hammer the stack
// for the configured duration.
func Run(f Factory, w Workload) (Result, error) {
	return run(f, w, nil)
}

// RunQuality executes one run with the LIFO error-distance oracle
// attached. Oracle maintenance serialises briefly on a mutex per
// operation, so throughput from a quality run underestimates the
// unobserved system; the paper likewise measures the two in dedicated
// runs.
func RunQuality(f Factory, w Workload) (Result, error) {
	return run(f, w, &quality.Oracle{})
}

// RunQueueQuality is RunQuality with the FIFO oracle, for the 2D-Queue
// extension experiments (Push = enqueue, Pop = dequeue).
func RunQueueQuality(f Factory, w Workload) (Result, error) {
	return run(f, w, &quality.FIFOOracle{})
}

func run(f Factory, w Workload, oracle oracle) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	inst := f.New()

	// Prefill with unique labels; worker labels start above this range.
	pre := inst.NewWorker()
	for i := 0; i < w.Prefill; i++ {
		label := uint64(i) + 1
		pre.Push(label)
		if oracle != nil {
			oracle.Insert(label)
		}
	}

	type counters struct {
		pushes, pops, empty uint64
	}
	perW := make([]counters, w.Workers)

	var latMu sync.Mutex
	var latencies []time.Duration

	var stop atomic.Bool
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if w.PinThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			worker := inst.NewWorker()
			rng := xrand.New(w.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			// Unique labels: worker id in the high bits, counter below;
			// offset past the prefill range.
			label := uint64(id+1)<<40 | uint64(w.Prefill)
			var c counters
			var sink uint64
			var lat []time.Duration
			opCount := 0
			isPusher := id < (w.Workers+1)/2
			<-start
			for !stop.Load() {
				opCount++
				var opBegan time.Time
				timed := opCount&255 == 0
				if timed {
					opBegan = time.Now()
				}
				push := rng.Float64() < w.PushRatio
				if w.SplitRoles {
					push = isPusher
				}
				if push {
					label++
					worker.Push(label)
					if oracle != nil {
						oracle.Insert(label)
					}
					c.pushes++
				} else {
					v, ok := worker.Pop()
					if ok {
						if oracle != nil {
							oracle.Remove(v)
						}
						c.pops++
					} else {
						c.empty++
					}
				}
				if timed {
					lat = append(lat, time.Since(opBegan))
				}
				if w.ThinkSpin > 0 {
					sink = think(w.ThinkSpin, sink)
				}
			}
			_ = sink
			perW[id] = c
			latMu.Lock()
			latencies = append(latencies, lat...)
			latMu.Unlock()
		}(i)
	}

	began := time.Now()
	close(start)
	time.Sleep(w.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(began)

	var res Result
	for _, c := range perW {
		res.Pushes += c.pushes
		res.Pops += c.pops
		res.EmptyPops += c.empty
	}
	res.Ops = res.Pushes + res.Pops + res.EmptyPops
	res.Elapsed = elapsed
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	if oracle != nil {
		res.Quality = oracle.Snapshot()
	}
	if len(latencies) >= 8 {
		xs := make([]float64, len(latencies))
		for i, d := range latencies {
			xs[i] = float64(d)
		}
		res.LatencyP50 = time.Duration(stats.Percentile(xs, 50))
		res.LatencyP99 = time.Duration(stats.Percentile(xs, 99))
	}
	return res, nil
}

// RunOps executes a deterministic fixed-operation-count run (no timer),
// used by tests: each worker performs opsPerWorker operations. It returns
// the aggregated result (Throughput still populated from wall time).
func RunOps(f Factory, w Workload, opsPerWorker int) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if opsPerWorker < 0 {
		return Result{}, fmt.Errorf("harness: opsPerWorker must be >= 0, got %d", opsPerWorker)
	}
	inst := f.New()
	pre := inst.NewWorker()
	for i := 0; i < w.Prefill; i++ {
		pre.Push(uint64(i) + 1)
	}
	type counters struct {
		pushes, pops, empty uint64
	}
	perW := make([]counters, w.Workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := inst.NewWorker()
			rng := xrand.New(w.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			label := uint64(id+1)<<40 | uint64(w.Prefill)
			var c counters
			var sink uint64
			isPusher := id < (w.Workers+1)/2
			<-start
			for n := 0; n < opsPerWorker; n++ {
				push := rng.Float64() < w.PushRatio
				if w.SplitRoles {
					push = isPusher
				}
				if push {
					label++
					worker.Push(label)
					c.pushes++
				} else {
					if _, ok := worker.Pop(); ok {
						c.pops++
					} else {
						c.empty++
					}
				}
				if w.ThinkSpin > 0 {
					sink = think(w.ThinkSpin, sink)
				}
			}
			_ = sink
			perW[id] = c
		}(i)
	}
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)

	var res Result
	for _, c := range perW {
		res.Pushes += c.pushes
		res.Pops += c.pops
		res.EmptyPops += c.empty
	}
	res.Ops = res.Pushes + res.Pops + res.EmptyPops
	res.Elapsed = elapsed
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Ops) / sec
	}
	return res, nil
}
