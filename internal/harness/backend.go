package harness

import (
	"stack2d/internal/quality"
	"stack2d/internal/relax"
)

// This file plugs the relax.Backend contract (and hence the engine
// switcher) into the harness: any backend runs under the same phased
// workload engine as the concrete structures, so A/B comparisons and the
// swap-hammer conformance runs reuse one load generator.

type backendInstance struct{ b relax.Backend[uint64] }

func (i backendInstance) NewWorker() Worker { return i.b.NewHandle() }
func (i backendInstance) Len() int          { return i.b.Len() }

// NewBackendFactory wraps an algorithm's default backend configuration
// (relax.NewDefaultBackend) for p expected threads — the factory behind
// cmd/stackbench's backend A/B series. K is the backend's own reported
// budget (-1 when unbounded).
func NewBackendFactory(a relax.Algorithm, p int) Factory {
	probe, err := relax.NewDefaultBackend[uint64](a, p)
	if err != nil {
		panic("harness: " + err.Error())
	}
	return Factory{
		Name: a.String(),
		K:    probe.KBound(),
		New: func() Instance {
			b, err := relax.NewDefaultBackend[uint64](a, p)
			if err != nil {
				panic("harness: " + err.Error())
			}
			return backendInstance{b}
		},
	}
}

// RunPhasedBackend drives a phase-shifting workload against any backend —
// including an engine.Switcher, whose swap schedule the caller owns, the
// same contract as RunPhased's controller ownership. The quality oracle
// follows the backend's ordering discipline (LIFO or FIFO; pool-semantics
// backends run with Quality off or not at all). relax handles satisfy the
// Worker interface directly, and their Flush publishes the counters a
// sampling Selector reads.
func RunPhasedBackend(b relax.Backend[uint64], phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var oracle phasedOracle
	insertFirst := false
	if b.Algorithm().Ordering() == relax.OrderFIFO {
		insertFirst = true // see runPhased: FIFO oracles record at invocation
		if w.Quality {
			oracle = &quality.FIFOOracle{}
		}
	} else if w.Quality {
		oracle = &quality.Oracle{}
	}
	return runPhased(func(id int) (Worker, func()) {
		h := b.NewHandle()
		return h, h.Flush
	}, oracle, insertFirst, phases, w)
}
