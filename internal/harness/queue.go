package harness

import (
	"stack2d/internal/msqueue"
	"stack2d/internal/quality"
	"stack2d/internal/twodqueue"
)

// Queue adapters: the harness drives queues through the same Worker
// interface (Push = Enqueue, Pop = Dequeue), so the extension experiments
// (EXPERIMENTS.md §Extensions) reuse the stack methodology unchanged.

type twoDQueueInstance struct{ q *twodqueue.Queue[uint64] }

func (i twoDQueueInstance) NewWorker() Worker { return queueHandleWorker{i.q.NewHandle()} }
func (i twoDQueueInstance) Len() int          { return i.q.Len() }

type queueHandleWorker struct{ h *twodqueue.Handle[uint64] }

func (w queueHandleWorker) Push(v uint64)       { w.h.Enqueue(v) }
func (w queueHandleWorker) Pop() (uint64, bool) { return w.h.Dequeue() }

// NewTwoDQueueFactory wraps a 2D-Queue configuration for the harness.
func NewTwoDQueueFactory(cfg twodqueue.Config) Factory {
	return Factory{
		Name: "2D-queue",
		K:    cfg.K(),
		New:  func() Instance { return twoDQueueInstance{twodqueue.MustNew[uint64](cfg)} },
	}
}

type msQueueInstance struct{ q *msqueue.Queue[uint64] }

func (i msQueueInstance) NewWorker() Worker { return msQueueWorker{i.q} }
func (i msQueueInstance) Len() int          { return i.q.Len() }

type msQueueWorker struct{ q *msqueue.Queue[uint64] }

func (w msQueueWorker) Push(v uint64)       { w.q.Enqueue(v) }
func (w msQueueWorker) Pop() (uint64, bool) { return w.q.Dequeue() }

// NewMSQueueFactory wraps the strict Michael–Scott baseline (k = 0).
func NewMSQueueFactory() Factory {
	return Factory{
		Name: "ms-queue",
		K:    0,
		New:  func() Instance { return msQueueInstance{msqueue.New[uint64]()} },
	}
}

// RunPhasedQueue drives a phase-shifting workload against a 2D-Queue —
// Push = Enqueue, Pop = Dequeue, and the quality instrument is the FIFO
// error-distance oracle instead of the LIFO one. As with RunPhased, the
// caller owns any controller attached to the queue, so the same function
// serves both the static baseline and the adaptive run in
// cmd/adapttune -queue.
func RunPhasedQueue(q *twodqueue.Queue[uint64], phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var oracle phasedOracle
	if w.Quality {
		oracle = &quality.FIFOOracle{}
	}
	return runPhased(func(id int) (Worker, func()) {
		h := q.NewHandle()
		if id >= 0 {
			// Pin by worker index, as RunPhased does for the stack
			// (fill-socket-0-first); inert without placement.
			h.Pin(q.PlacementSocketFor(id))
		}
		return queueHandleWorker{h}, h.FlushStats
	}, oracle, true, phases, w)
}
