package harness

import (
	"testing"
	"time"

	"stack2d/internal/twodqueue"
)

func TestQueueFactoriesProduceOps(t *testing.T) {
	factories := []Factory{
		NewTwoDQueueFactory(twodqueue.DefaultConfig(2)),
		NewMSQueueFactory(),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f, quickWorkload(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("queue run completed zero operations")
			}
		})
	}
}

func TestQueueFactoryK(t *testing.T) {
	cfg := twodqueue.Config{Width: 3, Depth: 8, Shift: 4, RandomHops: 1}
	if f := NewTwoDQueueFactory(cfg); f.K != cfg.K() {
		t.Fatalf("factory K = %d, want %d", f.K, cfg.K())
	}
	if f := NewMSQueueFactory(); f.K != 0 {
		t.Fatalf("ms-queue K = %d, want 0", f.K)
	}
}

func TestQueueFIFOQualityIsZeroForStrict(t *testing.T) {
	// The quality oracle measures LIFO distance, which is meaningless for
	// queues; this test only checks the harness plumbing runs and counts.
	w := quickWorkload(1)
	w.Duration = 10 * time.Millisecond
	res, err := Run(NewMSQueueFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestSplitRolesWorkload(t *testing.T) {
	w := quickWorkload(4)
	w.SplitRoles = true
	res, err := RunOps(NewTreiberFactory(), w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly half the workers (2 of 4) push, so pushes = 2000.
	if res.Pushes != 2000 {
		t.Fatalf("Pushes = %d, want 2000 under SplitRoles", res.Pushes)
	}
	if res.Pops+res.EmptyPops != 2000 {
		t.Fatalf("pop-side ops = %d, want 2000", res.Pops+res.EmptyPops)
	}
}

func TestSplitRolesOddWorkers(t *testing.T) {
	w := quickWorkload(3)
	w.SplitRoles = true
	res, err := RunOps(NewTreiberFactory(), w, 100)
	if err != nil {
		t.Fatal(err)
	}
	// (3+1)/2 = 2 pushers.
	if res.Pushes != 200 {
		t.Fatalf("Pushes = %d, want 200", res.Pushes)
	}
}

func TestThinkSpinValidation(t *testing.T) {
	w := quickWorkload(1)
	w.ThinkSpin = -1
	if err := w.Validate(); err == nil {
		t.Fatal("negative ThinkSpin accepted")
	}
}

func TestThinkSpinSlowsThroughput(t *testing.T) {
	fast := quickWorkload(2)
	slow := fast
	slow.ThinkSpin = 2000
	fres, err := Run(NewTreiberFactory(), fast)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(NewTreiberFactory(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Throughput >= fres.Throughput {
		t.Fatalf("think time did not reduce throughput: %0.f >= %0.f",
			sres.Throughput, fres.Throughput)
	}
}

// TestRunPhasedQueue drives the queue phased runner end to end: ops in
// every phase, quality measured with the FIFO oracle, and conservation of
// the population implied by the counters.
func TestRunPhasedQueue(t *testing.T) {
	q := twodqueue.MustNew[uint64](twodqueue.Config{Width: 4, Depth: 16, Shift: 16, RandomHops: 1})
	phases := ContentionPhases(4, 25*time.Millisecond)
	res, err := RunPhasedQueue(q, phases, PhasedWorkload{MaxWorkers: 4, Prefill: 2048, Seed: 7, Quality: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 || res.TotalOps == 0 {
		t.Fatalf("unexpected result shape: %d phases, %d ops", len(res.Phases), res.TotalOps)
	}
	for _, p := range res.Phases {
		if p.Ops == 0 {
			t.Fatalf("phase %s completed zero operations", p.Phase.Name)
		}
	}
	if res.Quality.Count == 0 {
		t.Fatal("FIFO oracle measured zero dequeues")
	}
	// The realised distance must stay within the sequential bound plus the
	// documented concurrency slack (one position per in-flight operation,
	// doubled for the invocation-order oracle recording).
	bound := q.Config().K() + 2*4
	if int64(res.Quality.Max) > bound {
		t.Fatalf("realised FIFO distance %d exceeds bound %d", res.Quality.Max, bound)
	}
	snap := q.StatsSnapshot()
	if got, want := q.Len(), int(snap.Pushes)-int(snap.Pops); got != want {
		t.Fatalf("queue holds %d items but counters say %d", got, want)
	}
}

// TestRunPhasedQueueWithReconfiguration runs the phased workload while the
// geometry cycles underneath it, mirroring the adaptive path without a
// controller in the loop.
func TestRunPhasedQueueWithReconfiguration(t *testing.T) {
	q := twodqueue.MustNew[uint64](twodqueue.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		geoms := []twodqueue.Config{
			{Width: 8, Depth: 16, Shift: 16, RandomHops: 2},
			{Width: 2, Depth: 8, Shift: 8, RandomHops: 1},
			{Width: 4, Depth: 64, Shift: 64, RandomHops: 2},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if err := q.Reconfigure(geoms[i%len(geoms)]); err != nil {
					t.Errorf("Reconfigure: %v", err)
					return
				}
			}
		}
	}()
	res, err := RunPhasedQueue(q, ContentionPhases(4, 25*time.Millisecond),
		PhasedWorkload{MaxWorkers: 4, Prefill: 1024, Seed: 3})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed under live reconfiguration")
	}
	snap := q.StatsSnapshot()
	if got, want := q.Len(), int(snap.Pushes)-int(snap.Pops); got != want {
		t.Fatalf("queue holds %d items but counters say %d (reconfiguration lost items)", got, want)
	}
}
