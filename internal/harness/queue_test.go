package harness

import (
	"testing"
	"time"

	"stack2d/internal/twodqueue"
)

func TestQueueFactoriesProduceOps(t *testing.T) {
	factories := []Factory{
		NewTwoDQueueFactory(twodqueue.DefaultConfig(2)),
		NewMSQueueFactory(),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f, quickWorkload(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("queue run completed zero operations")
			}
		})
	}
}

func TestQueueFactoryK(t *testing.T) {
	cfg := twodqueue.Config{Width: 3, Depth: 8, Shift: 4, RandomHops: 1}
	if f := NewTwoDQueueFactory(cfg); f.K != cfg.K() {
		t.Fatalf("factory K = %d, want %d", f.K, cfg.K())
	}
	if f := NewMSQueueFactory(); f.K != 0 {
		t.Fatalf("ms-queue K = %d, want 0", f.K)
	}
}

func TestQueueFIFOQualityIsZeroForStrict(t *testing.T) {
	// The quality oracle measures LIFO distance, which is meaningless for
	// queues; this test only checks the harness plumbing runs and counts.
	w := quickWorkload(1)
	w.Duration = 10 * time.Millisecond
	res, err := Run(NewMSQueueFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestSplitRolesWorkload(t *testing.T) {
	w := quickWorkload(4)
	w.SplitRoles = true
	res, err := RunOps(NewTreiberFactory(), w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly half the workers (2 of 4) push, so pushes = 2000.
	if res.Pushes != 2000 {
		t.Fatalf("Pushes = %d, want 2000 under SplitRoles", res.Pushes)
	}
	if res.Pops+res.EmptyPops != 2000 {
		t.Fatalf("pop-side ops = %d, want 2000", res.Pops+res.EmptyPops)
	}
}

func TestSplitRolesOddWorkers(t *testing.T) {
	w := quickWorkload(3)
	w.SplitRoles = true
	res, err := RunOps(NewTreiberFactory(), w, 100)
	if err != nil {
		t.Fatal(err)
	}
	// (3+1)/2 = 2 pushers.
	if res.Pushes != 200 {
		t.Fatalf("Pushes = %d, want 200", res.Pushes)
	}
}

func TestThinkSpinValidation(t *testing.T) {
	w := quickWorkload(1)
	w.ThinkSpin = -1
	if err := w.Validate(); err == nil {
		t.Fatal("negative ThinkSpin accepted")
	}
}

func TestThinkSpinSlowsThroughput(t *testing.T) {
	fast := quickWorkload(2)
	slow := fast
	slow.ThinkSpin = 2000
	fres, err := Run(NewTreiberFactory(), fast)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(NewTreiberFactory(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Throughput >= fres.Throughput {
		t.Fatalf("think time did not reduce throughput: %0.f >= %0.f",
			sres.Throughput, fres.Throughput)
	}
}
