package harness

import (
	"testing"
	"time"

	"stack2d/internal/twodqueue"
)

func TestLatencySampling(t *testing.T) {
	w := quickWorkload(2)
	w.Duration = 50 * time.Millisecond
	res, err := Run(NewTreiberFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 {
		t.Fatalf("LatencyP50 = %v, want > 0 (sampling broken)", res.LatencyP50)
	}
	if res.LatencyP99 < res.LatencyP50 {
		t.Fatalf("P99 (%v) < P50 (%v)", res.LatencyP99, res.LatencyP50)
	}
}

func TestRunQueueQualityStrictFIFOZero(t *testing.T) {
	w := quickWorkload(1)
	w.Duration = 15 * time.Millisecond
	res, err := RunQueueQuality(NewMSQueueFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Count == 0 {
		t.Fatal("no dequeues measured")
	}
	if res.Quality.Mean() != 0 {
		t.Fatalf("ms-queue FIFO mean error = %g, want 0", res.Quality.Mean())
	}
}

func TestRunQueueQualityRelaxedNonZero(t *testing.T) {
	w := quickWorkload(1)
	w.Duration = 20 * time.Millisecond
	cfg := twodqueue.Config{Width: 16, Depth: 16, Shift: 16, RandomHops: 2}
	res, err := RunQueueQuality(NewTwoDQueueFactory(cfg), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Count == 0 {
		t.Fatal("no dequeues measured")
	}
	if res.Quality.Mean() == 0 {
		t.Fatal("relaxed 2D-queue scored exact FIFO; oracle wiring suspect")
	}
	if int64(res.Quality.Max) > cfg.K()+64 {
		t.Fatalf("FIFO error %d far exceeds bound %d", res.Quality.Max, cfg.K())
	}
}
