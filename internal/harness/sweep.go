package harness

import (
	"fmt"
	"io"

	"stack2d/internal/relax"
	"stack2d/internal/stats"
)

// Point is one (x, series) measurement of a figure: throughput averaged
// over repeats plus the quality metric from a dedicated quality run.
type Point struct {
	Algorithm relax.Algorithm
	X         int64 // k for Figure 1, P for Figure 2
	K         int64 // configured relaxation bound (-1 if unbounded)

	Throughput stats.Summary // ops/s over repeats
	MeanError  float64       // mean error distance (quality run)
	MaxError   int           // max observed error distance (quality run)
	EmptyPops  uint64        // from the throughput runs (summed)
}

// SweepConfig controls a figure regeneration.
type SweepConfig struct {
	Workload Workload // Workers is overridden per point in Figure 2
	Repeats  int      // the paper averages 5 repeats
	// Quality enables the oracle run per point (adds one extra run).
	Quality bool
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
}

// measure runs Repeats throughput runs plus an optional quality run for one
// factory/workload pair.
func measure(f Factory, w Workload, sc SweepConfig) (Point, error) {
	pt := Point{K: f.K}
	xs := make([]float64, 0, sc.Repeats)
	for r := 0; r < sc.Repeats; r++ {
		wr := w
		wr.Seed = w.Seed + uint64(r)*7919
		res, err := Run(f, wr)
		if err != nil {
			return pt, err
		}
		xs = append(xs, res.Throughput)
		pt.EmptyPops += res.EmptyPops
	}
	pt.Throughput = stats.Summarize(xs)
	if sc.Quality {
		res, err := RunQuality(f, w)
		if err != nil {
			return pt, err
		}
		pt.MeanError = res.Quality.Mean()
		pt.MaxError = res.Quality.Max
	}
	return pt, nil
}

// Figure1Ks is the default relaxation sweep (the paper plots k on a log
// axis from single digits to tens of thousands).
func Figure1Ks() []int64 {
	return []int64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
}

// Figure1Sweep regenerates the paper's Figure 1: throughput and accuracy of
// the k-bounded algorithms as the relaxation bound k increases, at fixed
// thread count sc.Workload.Workers.
func Figure1Sweep(ks []int64, sc SweepConfig) ([]Point, error) {
	if len(ks) == 0 {
		ks = Figure1Ks()
	}
	p := sc.Workload.Workers
	var out []Point
	for _, alg := range relax.Figure1Algorithms() {
		for _, k := range ks {
			f := Figure1Factory(alg, k, p)
			pt, err := measure(f, sc.Workload, sc)
			if err != nil {
				return nil, fmt.Errorf("figure1 %v k=%d: %w", alg, k, err)
			}
			pt.Algorithm = alg
			pt.X = k
			out = append(out, pt)
			progress(sc, "figure1 %-10s k=%-6d thr=%s err=%.2f\n",
				alg, k, stats.HumanOps(pt.Throughput.Mean), pt.MeanError)
		}
	}
	return out, nil
}

// Figure2Ps is the paper's thread sweep: 1–8 intra-socket, 9–16 inter.
func Figure2Ps() []int {
	return []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
}

// Figure2Sweep regenerates the paper's Figure 2: throughput and accuracy of
// all algorithms as concurrency increases.
func Figure2Sweep(ps []int, sc SweepConfig) ([]Point, error) {
	if len(ps) == 0 {
		ps = Figure2Ps()
	}
	var out []Point
	for _, alg := range relax.Figure2Algorithms() {
		for _, p := range ps {
			f := Figure2Factory(alg, p)
			w := sc.Workload
			w.Workers = p
			pt, err := measure(f, w, sc)
			if err != nil {
				return nil, fmt.Errorf("figure2 %v p=%d: %w", alg, p, err)
			}
			pt.Algorithm = alg
			pt.X = int64(p)
			out = append(out, pt)
			progress(sc, "figure2 %-11s P=%-3d thr=%s err=%.2f\n",
				alg, p, stats.HumanOps(pt.Throughput.Mean), pt.MeanError)
		}
	}
	return out, nil
}

func progress(sc SweepConfig, format string, args ...any) {
	if sc.Progress != nil {
		fmt.Fprintf(sc.Progress, format, args...)
	}
}

// RenderPoints formats sweep results as the textual equivalent of a figure:
// one row per (algorithm, x), with throughput and error columns.
func RenderPoints(points []Point, xName string) string {
	tb := stats.NewTable("algorithm", xName, "k", "thr(ops/s)", "thr(min)", "thr(max)", "mean-err", "max-err", "empty-pops")
	for _, pt := range points {
		k := "-"
		if pt.K >= 0 {
			k = fmt.Sprintf("%d", pt.K)
		}
		tb.AddRow(
			pt.Algorithm.String(),
			fmt.Sprintf("%d", pt.X),
			k,
			fmt.Sprintf("%.0f", pt.Throughput.Mean),
			fmt.Sprintf("%.0f", pt.Throughput.Min),
			fmt.Sprintf("%.0f", pt.Throughput.Max),
			fmt.Sprintf("%.2f", pt.MeanError),
			fmt.Sprintf("%d", pt.MaxError),
			fmt.Sprintf("%d", pt.EmptyPops),
		)
	}
	return tb.String()
}
