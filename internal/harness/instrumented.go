package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/xrand"
)

// InstrumentedResult extends Result with the aggregated per-handle work
// counters of a 2D-Stack run — the empirical step-complexity data the full
// paper analyses (probes per operation, CAS failure rate, window moves).
type InstrumentedResult struct {
	Result
	Stats core.OpStats
}

// RunInstrumented drives the paper workload against a 2D-Stack
// configuration directly (not through a Factory, because it needs access
// to the concrete handles' counters) and returns throughput plus the
// summed OpStats of every worker.
func RunInstrumented(cfg core.Config, w Workload) (InstrumentedResult, error) {
	var out InstrumentedResult
	if err := w.Validate(); err != nil {
		return out, err
	}
	if err := cfg.Validate(); err != nil {
		return out, err
	}
	s, err := core.New[uint64](cfg)
	if err != nil {
		return out, err
	}
	pre := s.NewHandle()
	for i := 0; i < w.Prefill; i++ {
		pre.Push(uint64(i) + 1)
	}
	out.Stats.Add(pre.Stats())

	perW := make([]core.OpStats, w.Workers)
	var stop atomic.Bool
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := s.NewHandle()
			rng := xrand.New(w.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			label := uint64(id+1)<<40 | uint64(w.Prefill)
			<-start
			for !stop.Load() {
				if rng.Float64() < w.PushRatio {
					label++
					h.Push(label)
				} else {
					h.Pop()
				}
			}
			perW[id] = h.Stats()
		}(i)
	}
	began := time.Now()
	close(start)
	time.Sleep(w.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(began)

	for _, st := range perW {
		out.Stats.Add(st)
	}
	// Subtract the prefill contribution from the op accounting but keep it
	// in Stats (it is real work; callers can remove it via the snapshot
	// taken above if needed).
	out.Pushes = out.Stats.Pushes - uint64(w.Prefill)
	out.Pops = out.Stats.Pops
	out.EmptyPops = out.Stats.EmptyPops
	out.Ops = out.Pushes + out.Pops + out.EmptyPops
	out.Elapsed = elapsed
	out.Throughput = float64(out.Ops) / elapsed.Seconds()
	return out, nil
}
