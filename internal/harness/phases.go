package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/quality"
	"stack2d/internal/seqspec"
	"stack2d/internal/xrand"
)

// Phase is one segment of a phase-shifting workload: for Duration, Workers
// goroutines (of the run's worker pool) issue operations with the given
// push ratio and think time. Varying Workers and ThinkSpin across phases
// moves the offered contention up and down — the traffic shape static
// window tuning cannot serve and internal/adapt's controller is built for.
type Phase struct {
	Name      string
	Duration  time.Duration
	Workers   int     // active workers this phase; must be <= PhasedWorkload.MaxWorkers
	PushRatio float64 // probability an operation is a Push
	ThinkSpin int     // ALU spin iterations between operations (dilutes contention)
}

// PhasedWorkload configures a phase-shifting run.
type PhasedWorkload struct {
	// MaxWorkers is the worker pool size; phases activate a prefix of it.
	MaxWorkers int
	// Prefill is the initial population, as in Workload.
	Prefill int
	// Seed makes runs reproducible.
	Seed uint64
	// Quality attaches the LIFO error-distance oracle. The oracle's mutex
	// dampens contention (as in RunQuality), so compare quality runs only
	// with other quality runs.
	Quality bool
	// Record collects the run's full interval history (every operation
	// timestamped on a shared logical clock at invocation and response)
	// into PhasedResult.History, the input of seqspec's k-distance and
	// sanity checkers. Recording costs two atomic clock ticks and one
	// append per operation — cheaper than the Quality oracle, but like it,
	// compare recorded runs only with other recorded runs.
	Record bool
}

// Validate reports whether the workload and phase list are runnable.
func (w PhasedWorkload) Validate(phases []Phase) error {
	if w.MaxWorkers < 1 {
		return fmt.Errorf("harness: MaxWorkers must be >= 1, got %d", w.MaxWorkers)
	}
	if w.Prefill < 0 {
		return fmt.Errorf("harness: Prefill must be >= 0, got %d", w.Prefill)
	}
	if len(phases) == 0 {
		return fmt.Errorf("harness: no phases")
	}
	for i, p := range phases {
		switch {
		case p.Duration <= 0:
			return fmt.Errorf("harness: phase %d (%s) Duration must be positive", i, p.Name)
		case p.Workers < 1 || p.Workers > w.MaxWorkers:
			return fmt.Errorf("harness: phase %d (%s) Workers %d outside [1, %d]", i, p.Name, p.Workers, w.MaxWorkers)
		case p.PushRatio < 0 || p.PushRatio > 1:
			return fmt.Errorf("harness: phase %d (%s) PushRatio %g outside [0,1]", i, p.Name, p.PushRatio)
		case p.ThinkSpin < 0:
			return fmt.Errorf("harness: phase %d (%s) ThinkSpin must be >= 0", i, p.Name)
		}
	}
	return nil
}

// PhaseResult summarises one phase of a phased run.
type PhaseResult struct {
	Phase      Phase
	Ops        uint64
	Pushes     uint64
	Pops       uint64
	EmptyPops  uint64
	Elapsed    time.Duration
	Throughput float64 // ops/second over the phase

	// MeanDistance is the mean LIFO error distance of pops measured during
	// this phase; MaxDistanceSoFar is the cumulative maximum at phase end
	// (the oracle's max is monotone). Zero unless Quality was enabled.
	MeanDistance     float64
	MaxDistanceSoFar int
}

// PhasedResult is the outcome of a whole phased run.
type PhasedResult struct {
	Phases   []PhaseResult
	TotalOps uint64
	// Quality is the whole-run error-distance distribution (zero unless
	// measured); Quality.Max is the run's realised worst-case distance,
	// the number to compare against a configured k ceiling.
	Quality quality.Stats
	// History is the recorded interval history (nil unless
	// PhasedWorkload.Record was set): prefill pushes plus every worker
	// operation, in per-worker shards. Feed it to seqspec.KStackChecker /
	// seqspec.KFIFOChecker (or CheckIntervalSanity) to distance-check the
	// run — including runs spanning live reconfigurations, where the
	// structure's ShrinkDisplacementBound is the documented allowance.
	History []seqspec.IntervalOp
}

// phaseCtl is the coordinator→worker broadcast for the current phase; a
// negative index tells workers to exit.
type phaseCtl struct {
	idx       int
	workers   int
	pushRatio float64
	think     int
}

// phasedOracle is the error-distance instrument of a phased run: the LIFO
// oracle for stacks, the FIFO oracle for queues (both in internal/quality).
type phasedOracle interface {
	Insert(label uint64)
	Remove(label uint64) int
	Snapshot() quality.Stats
}

// RunPhased drives a phase-shifting workload against a 2D-Stack. The
// caller owns any controller attached to the stack (start it before, stop
// it after); RunPhased itself only generates load and measures, so the
// same function serves both the static baseline and the adaptive run in
// cmd/adapttune.
func RunPhased(s *core.Stack[uint64], phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var oracle phasedOracle
	if w.Quality {
		oracle = &quality.Oracle{}
	}
	return runPhased(func(id int) (Worker, func()) {
		h := s.NewHandle()
		if id >= 0 {
			// Pin each worker's handle by its index, mirroring the
			// simulated machine's fill-socket-0-first core assignment
			// (DESIGN.md §7); inert while the stack has no placement.
			h.Pin(s.PlacementSocketFor(id))
		}
		return h, h.FlushStats
	}, oracle, false, phases, w)
}

// runPhased is the shared engine behind RunPhased and RunPhasedQueue:
// mkWorker builds one per-goroutine worker plus its end-of-run stats flush
// (so a sampling controller sees final totals), oracle is nil when quality
// measurement is off.
//
// insertFirst selects when a push is recorded in the oracle. The stack
// records after the push completes (the paper's §4 methodology; the LIFO
// oracle inserts at the head, so a late insert can only shrink a distance).
// The queue must record at invocation: the FIFO oracle inserts at the tail,
// and a pusher preempted between the structure operation and a late insert
// lets its item be dequeued first, after which the spin-waiting Remove
// scores it against the entire resident population — a measurement artifact
// of queue length magnitude, not a property of the structure. Recording at
// invocation keeps the oracle order a valid linearisation candidate (no
// dequeue of v can precede v's record) at the cost of at most one position
// of slack per in-flight operation — the same convention as the seqspec
// trace tests.
func runPhased(mkWorker func(id int) (Worker, func()), oracle phasedOracle, insertFirst bool, phases []Phase, w PhasedWorkload) (PhasedResult, error) {
	var out PhasedResult
	if err := w.Validate(phases); err != nil {
		return out, err
	}

	var rec *seqspec.Recorder
	if w.Record {
		// Shard layout: one per worker, the extra shard (index MaxWorkers)
		// for the prefill prologue.
		rec = seqspec.NewRecorder(w.MaxWorkers)
	}

	pre, preFlush := mkWorker(-1) // prefill worker: no pinned identity
	for i := 0; i < w.Prefill; i++ {
		label := uint64(i) + 1
		if rec != nil {
			rec.PushLabeled(w.MaxWorkers, label, func() { pre.Push(label) })
		} else {
			pre.Push(label)
		}
		if oracle != nil {
			oracle.Insert(label)
		}
	}
	preFlush()

	type counters struct {
		pushes, pops, empty uint64
	}
	// perW[worker][phase]
	perW := make([][]counters, w.MaxWorkers)
	for i := range perW {
		perW[i] = make([]counters, len(phases))
	}

	var ctl atomic.Pointer[phaseCtl]
	ctl.Store(&phaseCtl{idx: 0, workers: phases[0].Workers, pushRatio: phases[0].PushRatio, think: phases[0].ThinkSpin})
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w.MaxWorkers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker, flush := mkWorker(id)
			rng := xrand.New(w.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1)
			label := uint64(id+1)<<40 | uint64(w.Prefill)
			var sink uint64
			<-start
			for {
				p := ctl.Load()
				if p.idx < 0 {
					break
				}
				if id >= p.workers {
					// Benched this phase; stay parked until the shape changes.
					time.Sleep(50 * time.Microsecond)
					continue
				}
				c := &perW[id][p.idx]
				if rng.Float64() < p.pushRatio {
					label++
					if oracle != nil && insertFirst {
						oracle.Insert(label)
					}
					if rec != nil {
						l := label
						rec.PushLabeled(id, l, func() { worker.Push(l) })
					} else {
						worker.Push(label)
					}
					if oracle != nil && !insertFirst {
						oracle.Insert(label)
					}
					c.pushes++
				} else {
					var v uint64
					var ok bool
					if rec != nil {
						v, ok = rec.Pop(id, worker.Pop)
					} else {
						v, ok = worker.Pop()
					}
					if ok {
						if oracle != nil {
							oracle.Remove(v)
						}
						c.pops++
					} else {
						c.empty++
					}
				}
				if p.think > 0 {
					sink = think(p.think, sink)
				}
			}
			_ = sink
			flush()
		}(i)
	}

	type boundary struct {
		elapsed time.Duration
		q       quality.Stats
	}
	marks := make([]boundary, 0, len(phases))
	close(start)
	for i, p := range phases {
		if i > 0 {
			ctl.Store(&phaseCtl{idx: i, workers: p.Workers, pushRatio: p.PushRatio, think: p.ThinkSpin})
		}
		began := time.Now()
		time.Sleep(p.Duration)
		var q quality.Stats
		if oracle != nil {
			q = oracle.Snapshot()
		}
		marks = append(marks, boundary{elapsed: time.Since(began), q: q})
	}
	ctl.Store(&phaseCtl{idx: -1})
	wg.Wait()

	var prevQ quality.Stats
	for i, p := range phases {
		res := PhaseResult{Phase: p, Elapsed: marks[i].elapsed}
		for wi := range perW {
			c := perW[wi][i]
			res.Pushes += c.pushes
			res.Pops += c.pops
			res.EmptyPops += c.empty
		}
		res.Ops = res.Pushes + res.Pops + res.EmptyPops
		if sec := res.Elapsed.Seconds(); sec > 0 {
			res.Throughput = float64(res.Ops) / sec
		}
		if oracle != nil {
			q := marks[i].q
			if dc := q.Count - prevQ.Count; dc > 0 {
				res.MeanDistance = (q.Sum - prevQ.Sum) / float64(dc)
			}
			res.MaxDistanceSoFar = q.Max
			prevQ = q
		}
		out.TotalOps += res.Ops
		out.Phases = append(out.Phases, res)
	}
	if oracle != nil {
		out.Quality = oracle.Snapshot()
	}
	if rec != nil {
		out.History = rec.History()
	}
	return out, nil
}

// ContentionPhases builds the canonical low→high→low shape used by
// cmd/adapttune and the adaptation experiments: a lightly loaded phase (a
// quarter of the workers, think time diluting contention), a saturating
// phase (all workers, no think time), then light load again. maxWorkers
// must be >= 1; each phase lasts d.
func ContentionPhases(maxWorkers int, d time.Duration) []Phase {
	low := maxWorkers / 4
	if low < 1 {
		low = 1
	}
	return []Phase{
		{Name: "low-1", Duration: d, Workers: low, PushRatio: 0.5, ThinkSpin: 256},
		{Name: "high", Duration: d, Workers: maxWorkers, PushRatio: 0.5, ThinkSpin: 0},
		{Name: "low-2", Duration: d, Workers: low, PushRatio: 0.5, ThinkSpin: 256},
	}
}
