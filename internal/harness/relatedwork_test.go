package harness

import (
	"testing"

	"stack2d/internal/eltree"
)

func TestRelatedWorkFactoriesProduceOps(t *testing.T) {
	factories := []Factory{
		NewFlatCombiningFactory(),
		NewElimTreeFactory(eltree.DefaultConfig(2)),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := Run(f, quickWorkload(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("run completed zero operations")
			}
		})
	}
}

func TestFlatCombiningQualityIsStrict(t *testing.T) {
	w := quickWorkload(1)
	res, err := RunQuality(NewFlatCombiningFactory(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Count == 0 {
		t.Fatal("no pops measured")
	}
	if res.Quality.Mean() != 0 {
		t.Fatalf("flat combining mean error = %g, want 0 (strict LIFO)", res.Quality.Mean())
	}
}

func TestElimTreeQualityIsUnordered(t *testing.T) {
	// The pool gives no order guarantee; with one worker and a deep tree
	// the toggles still pair pushes and pops deterministically, so just
	// verify the plumbing runs and conserves counts.
	w := quickWorkload(2)
	res, err := Run(NewElimTreeFactory(eltree.DefaultConfig(2)), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != res.Pushes+res.Pops+res.EmptyPops {
		t.Fatalf("op accounting inconsistent: %+v", res)
	}
}
