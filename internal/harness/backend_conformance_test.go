package harness

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/engine"
	"stack2d/internal/relax"
	"stack2d/internal/seqspec"
)

// TestConformanceBackendSwapHammer is the engine's half of the
// conformance subsystem: concurrent traffic runs while the active backend
// hot-swaps across the zoo (2D → elimination → treiber → 2D → …), the
// full interval history is recorded, and the recording is replayed
// through KStackChecker with exactly the documented budget — the largest
// bound of any backend that was active, plus the switcher's tracked swap
// displacement, plus the 2D backend's shrink displacement (zero here; the
// term is in the accounting so the budget formula is the one DESIGN.md §9
// states, not a lucky subset).
func TestConformanceBackendSwapHammer(t *testing.T) {
	twod, err := relax.NewTwoDBackend[uint64](relax.TwoDConfigForK(200, 8))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := engine.New[uint64](twod)
	if err != nil {
		t.Fatal(err)
	}
	elim, err := relax.NewDefaultBackend[uint64](relax.EliminationStack, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Register(elim); err != nil {
		t.Fatal(err)
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		t.Fatal(err)
	}

	// The swap schedule cycles every registered backend back to the start,
	// mid-phase, while the phased load runs.
	targets := []string{"elimination", "treiber", "2D-stack", "elimination", "2D-stack"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, name := range targets {
			time.Sleep(15 * time.Millisecond)
			if _, err := sw.Swap(name, "hammer"); err != nil {
				t.Errorf("Swap(%s): %v", name, err)
				return
			}
		}
	}()

	res, err := RunPhasedBackend(sw, reconfigPhases(8, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: 8, Prefill: 512, Seed: 17, Record: true,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("Record produced no history")
	}
	if got := len(sw.Swaps()); got != len(targets) {
		t.Fatalf("completed %d swaps, want %d", got, len(targets))
	}

	// The budget formula of DESIGN.md §9, term by term.
	maxK := sw.KBound() // largest bound of any backend ever active
	allowance := sw.SwapDisplacementBound()
	if sr, ok := any(twod).(interface{ ShrinkDisplacementBound() int64 }); ok {
		allowance += sr.ShrinkDisplacementBound()
	}

	checker := seqspec.KStackChecker{K: maxK, Allowance: allowance}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d, %d swaps): %v",
			checker.K, checker.Allowance, len(sw.Swaps()), err)
	}
	t.Logf("backend swap hammer: %d ops, %d pops, %d swaps, maxDist=%d maxStrain=%d (k=%d allowance=%d)",
		len(res.History), rep.Pops, len(sw.Swaps()), rep.MaxDistance, rep.MaxStrain,
		checker.K, checker.Allowance)
}

// TestConformanceSelectorDrivenSwap runs the full control stack end to
// end: a Selector watching the switcher's live counters drops its
// semantics budget to zero mid-run, which must deterministically evict
// the relaxed backend for a strict one — and the recorded history must
// still verify under the swap-aware budget.
func TestConformanceSelectorDrivenSwap(t *testing.T) {
	twod, err := relax.NewTwoDBackend[uint64](relax.TwoDConfigForK(200, 8))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := engine.New[uint64](twod)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		t.Fatal(err)
	}

	sel, err := adapt.NewSelector(sw, adapt.SelectorPolicy{Tick: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the budget to zero a third of the way in; the next tick must
	// swap to the strict backend whatever the load looks like.
	timer := time.AfterFunc(40*time.Millisecond, func() { sel.SetKBudget(0) })
	defer timer.Stop()

	sel.Start()
	res, runErr := RunPhasedBackend(sw, reconfigPhases(8, 60*time.Millisecond), PhasedWorkload{
		MaxWorkers: 8, Prefill: 512, Seed: 23, Record: true,
	})
	sel.Stop()
	if runErr != nil {
		t.Fatal(runErr)
	}

	swaps := sw.Swaps()
	var sawBudgetSwap bool
	for _, rec := range swaps {
		if rec.Reason == "k-budget-zero" && rec.To == "treiber" {
			sawBudgetSwap = true
		}
	}
	if !sawBudgetSwap {
		t.Fatalf("no k-budget-zero swap to treiber recorded; swaps: %+v", swaps)
	}
	if got := sw.ActiveBackend(); got != "treiber" {
		t.Fatalf("active backend after budget collapse = %q", got)
	}

	checker := seqspec.KStackChecker{
		K:         sw.KBound(),
		Allowance: sw.SwapDisplacementBound() + twodShrinkBound(twod),
	}
	rep, err := checker.Check(res.History)
	if err != nil {
		t.Fatalf("k-distance check failed (k=%d allowance=%d): %v", checker.K, checker.Allowance, err)
	}
	t.Logf("selector-driven run: %d ops, %d swaps, maxDist=%d (k=%d allowance=%d)",
		len(res.History), len(swaps), rep.MaxDistance, checker.K, checker.Allowance)
}

func twodShrinkBound(b relax.Backend[uint64]) int64 {
	if sr, ok := any(b).(interface{ ShrinkDisplacementBound() int64 }); ok {
		return sr.ShrinkDisplacementBound()
	}
	return 0
}
