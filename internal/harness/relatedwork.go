package harness

import (
	"stack2d/internal/eltree"
	"stack2d/internal/flatcombining"
)

// Related-work baselines beyond the paper's evaluation set (Section 2 of
// the paper cites both lineages): flat combining for software combining
// (combining funnels' modern descendant) and the elimination-diffraction
// tree pool. They let the RelatedWork bench place the 2D-Stack in the full
// contention-management design space.

type fcInstance struct{ s *flatcombining.Stack[uint64] }

func (i fcInstance) NewWorker() Worker { return i.s.NewHandle() }
func (i fcInstance) Len() int          { return i.s.Len() }

// NewFlatCombiningFactory wraps the flat-combining stack (strict, k = 0,
// blocking).
func NewFlatCombiningFactory() Factory {
	return Factory{
		Name: "flat-combining",
		K:    0,
		New:  func() Instance { return fcInstance{flatcombining.New[uint64]()} },
	}
}

type eltreeInstance struct{ p *eltree.Pool[uint64] }

func (i eltreeInstance) NewWorker() Worker { return i.p.NewHandle() }
func (i eltreeInstance) Len() int          { return i.p.Len() }

// NewElimTreeFactory wraps the elimination-diffraction tree pool
// (unordered, so K = -1).
func NewElimTreeFactory(cfg eltree.Config) Factory {
	return Factory{
		Name: "elim-tree",
		K:    -1,
		New:  func() Instance { return eltreeInstance{eltree.MustNew[uint64](cfg)} },
	}
}
