// Package stats provides the small statistics toolbox used by the benchmark
// harness: summary statistics over repeat runs (the paper averages five
// repeats per point) and fixed-width table rendering for figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs and leaves it unsorted.
// An empty sample returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInts averages a slice of integers (error distances, hop counts).
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// HumanOps renders an operations-per-second figure compactly, e.g. "12.3M".
func HumanOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e9:
		return fmt.Sprintf("%.2fG", opsPerSec/1e9)
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.2fk", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f", opsPerSec)
	}
}
