package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of figure data and renders them with aligned
// columns, the textual equivalent of the paper's plotted series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells beyond the header width are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends one row, formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(t.header))
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
