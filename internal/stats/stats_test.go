package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Stddev != 0 || s.Min != 5 || s.Max != 5 || s.Median != 5 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean, 5) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.Stddev, want) {
		t.Errorf("Stddev = %g, want %g", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %g, want 1", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("P100 = %g, want 3", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("P50 = %g, want 2", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(nil) = %g, want 0", got)
	}
	// Input must stay unsorted (Percentile copies).
	if xs[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 25); !almostEqual(got, 12.5) {
		t.Errorf("P25 = %g, want 12.5", got)
	}
}

func TestMeanInts(t *testing.T) {
	if got := MeanInts(nil); got != 0 {
		t.Errorf("MeanInts(nil) = %g", got)
	}
	if got := MeanInts([]int{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Errorf("MeanInts = %g, want 2.5", got)
	}
}

func TestHumanOps(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500"},
		{1500, "1.50k"},
		{2.5e6, "2.50M"},
		{3.25e9, "3.25G"},
	}
	for _, c := range cases {
		if got := HumanOps(c.in); got != c.want {
			t.Errorf("HumanOps(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("alg", "ops/s")
	tb.AddRow("treiber", "1.2M")
	tb.AddRowf("2d-stack", 3.4567)
	out := tb.String()
	if !strings.Contains(out, "alg") || !strings.Contains(out, "treiber") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("second line is not a rule: %q", lines[1])
	}
}

func TestTableExtraAndMissingCells(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2", "3") // extra dropped
	tb.AddRow("only")        // missing rendered empty
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Fatalf("extra cell leaked into output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

// Property: mean lies within [min, max], stddev >= 0, median within range.
func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Stddev >= 0 && s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
