package core

import "stack2d/internal/xrand"

// Handle carries the per-thread state of the 2D-Stack algorithm: the index
// of the sub-stack where the owner last succeeded (the locality anchor), a
// private RNG for hop selection, and work counters (see OpStats). Obtain
// one per goroutine with NewHandle.
//
// A Handle is NOT safe for concurrent use; the Stack is, across handles.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	last  int // sub-stack index of the most recent success
	stats OpStats
}

// NewHandle returns an operation handle anchored at a random sub-stack.
func (s *Stack[T]) NewHandle() *Handle[T] {
	seed := s.seed.V.Add(0x9e3779b97f4a7c15)
	rng := xrand.New(seed)
	return &Handle[T]{s: s, rng: rng, last: rng.Intn(s.cfg.Width)}
}

// Push adds v to the stack. It is lock-free: it retries until its CAS
// succeeds, which can only be delayed by other operations succeeding.
//
// Search structure (paper §3): start from the last successful sub-stack;
// hop randomly up to RandomHops times, then probe round-robin. Only the
// round-robin probes count toward the "failed on all sub-stacks" verdict —
// a full round of `width` consecutive invalid probes guarantees every
// sub-stack was inspected at the current Global before the window is
// raised. A failed CAS (contention) triggers a random hop and restarts the
// count; any observed Global change restarts the search outright.
func (h *Handle[T]) Push(v T) {
	s := h.s
	width := s.cfg.Width
	n := &node[T]{value: v}
	for {
		global := s.global.V.Load()
		idx := h.last
		probes := 0 // consecutive round-robin validation failures
		randLeft := s.cfg.RandomHops
		for probes < width {
			// Track Global on every hop; restart the search on any change.
			if g := s.global.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = s.cfg.RandomHops
				h.stats.Restarts++
			}
			d := s.subs[idx].load()
			h.stats.Probes++
			if d.count < global {
				// Valid for push: attempt the descriptor swap.
				n.next = d.top
				if s.subs[idx].cas(d, &descriptor[T]{top: n, count: d.count + 1}) {
					h.last = idx
					h.stats.Pushes++
					return
				}
				// Contention: the colliding operation made progress; hop to
				// a random sub-stack and restart the coverage count.
				h.stats.CASFailures++
				idx = h.rng.Intn(width)
				probes = 0
				randLeft = 0 // stay in round-robin from the new anchor
				continue
			}
			// Invalid (at the window ceiling): hop on.
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = h.rng.Intn(width)
				continue // exploratory hop; does not count toward coverage
			}
			probes++
			idx++
			if idx == width {
				idx = 0
			}
		}
		// A full round-robin pass found every sub-stack at the ceiling:
		// raise the window. Whether our CAS or a competitor's wins, Global
		// has changed; re-read and retry with a fresh search count.
		if s.global.V.CompareAndSwap(global, global+s.cfg.Shift) {
			h.stats.WindowRaises++
		}
	}
}

// Pop removes and returns a value within the relaxation window. ok is false
// only when the stack is empty: the window is at its floor (validity
// threshold zero) and a full round-robin pass saw every sub-stack at count
// zero.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	width := s.cfg.Width
	depth := s.cfg.Depth
	for {
		global := s.global.V.Load()
		floor := global - depth // >= 0 by the global >= depth invariant
		idx := h.last
		probes := 0
		randLeft := s.cfg.RandomHops
		for probes < width {
			if g := s.global.V.Load(); g != global {
				global = g
				floor = global - depth
				probes = 0
				randLeft = s.cfg.RandomHops
				h.stats.Restarts++
			}
			d := s.subs[idx].load()
			h.stats.Probes++
			if d.count > floor {
				// Valid for pop. count > floor >= 0 implies top != nil.
				if s.subs[idx].cas(d, &descriptor[T]{top: d.top.next, count: d.count - 1}) {
					h.last = idx
					h.stats.Pops++
					return d.top.value, true
				}
				h.stats.CASFailures++
				idx = h.rng.Intn(width)
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = h.rng.Intn(width)
				continue
			}
			probes++
			idx++
			if idx == width {
				idx = 0
			}
		}
		if global == depth {
			// Window at its floor: the coverage pass proved every
			// sub-stack held zero items at this Global. Report empty.
			h.stats.EmptyPops++
			var zero T
			return zero, false
		}
		// Lower the window (floored at depth so the validity threshold
		// never goes negative) and retry with a fresh search count.
		next := global - s.cfg.Shift
		if next < depth {
			next = depth
		}
		if s.global.V.CompareAndSwap(global, next) {
			h.stats.WindowLowers++
		}
	}
}

// TryPop performs a single search pass without moving the window. It exists
// for latency-sensitive callers (examples/taskpool) that prefer an immediate
// miss over window maintenance; ok=false means "nothing in the current
// window", not necessarily that the stack is empty.
func (h *Handle[T]) TryPop() (v T, ok bool) {
	s := h.s
	width := s.cfg.Width
	global := s.global.V.Load()
	floor := global - s.cfg.Depth
	idx := h.last
	for probes := 0; probes < width; probes++ {
		d := s.subs[idx].load()
		h.stats.Probes++
		if d.count > floor {
			if s.subs[idx].cas(d, &descriptor[T]{top: d.top.next, count: d.count - 1}) {
				h.last = idx
				h.stats.Pops++
				return d.top.value, true
			}
			h.stats.CASFailures++
		}
		idx++
		if idx == width {
			idx = 0
		}
	}
	var zero T
	return zero, false
}
