package core

import (
	"sync/atomic"
	"time"
	"weak"

	"stack2d/internal/xrand"
	"stack2d/internal/yield"
)

// Handle carries the per-thread state of the 2D-Stack algorithm: the index
// of the sub-stack where the owner last succeeded (the locality anchor), a
// private RNG for hop selection, and work counters (see OpStats). Obtain
// one per goroutine with NewHandle.
//
// A Handle is NOT safe for concurrent use; the Stack is, across handles.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	last  int // sub-stack index of the most recent success
	stats OpStats

	// socket is the placement hint: the socket the owning goroutine is
	// believed to run on, defaulted by the creation-order heuristic and
	// overridden by Pin. Under a local-probe placement policy searches
	// visit slots homed on this socket first; CAS failures are attributed
	// to it in OpStats.SocketCAS. Always in [0, MaxPlacementSockets).
	socket int

	// planGeo/planSocket key the cached probe plan below: the local-first
	// permutation this handle walks (BuildProbePlan over the geometry's
	// slot homes, with a handle-private rotation of the remote section),
	// rebuilt lazily when the geometry or the pinned socket changes.
	// Owner-goroutine only, like all search state.
	planGeo    *geometry[T]
	planSocket int
	planOrd    []int
	planPos    []int
	planLocalN int

	// sinceFlush counts operations since stats were last published to
	// shared (see maybeFlush in stats.go).
	sinceFlush int

	// latCountdown counts operations down to the next latency sample: one
	// operation in latencySampleInterval is timed end to end
	// (latSampling/latStart carry the in-flight sample between pin and
	// unpin). A decrement-and-test countdown instead of the former
	// counter-and-modulo keeps the uncontended fast path to one predicted-
	// untaken branch and defers the clock read until after the sample
	// decision. Owner-goroutine only.
	latCountdown int
	latSampling  bool
	latStart     time.Time

	// Op-buffer state (see buffer.go; inert until SetOpBuffer arms it).
	// bufCap is the combined-publication threshold; pending holds buffered,
	// not-yet-published pushes oldest-first; prefetch[prefStart:] holds
	// structurally popped but not-yet-delivered values, topmost-first;
	// bufEpoch is the geometry epoch the buffers were last reconciled with.
	// All owner-goroutine only, except bufCount: the atomically readable
	// total of both buffers, summed by Stack.Len through the handle
	// registry so buffered items are never phantom-invisible to sizing.
	bufCap    int
	pending   []T
	prefetch  []T
	prefStart int
	bufEpoch  uint64
	bufCount  atomic.Int64

	// epoch is the geometry epoch the handle is currently operating under,
	// or 0 when idle. Written only by the owner, read by reconfigurers to
	// detect quiescence of a superseded geometry.
	epoch atomic.Uint64

	// shared is the periodically flushed, atomically readable copy of
	// stats, consumed by Stack.StatsSnapshot. It is a separate allocation,
	// held strongly by the handle registry, so the final published
	// counters outlive the handle itself.
	shared *SharedCounters
}

// handleEntry is one registry slot: the weak handle for liveness/epoch
// checks plus a strong reference to its atomic counter mirror, so pruning
// can fold every dead entry's counters into retired unconditionally.
type handleEntry[T any] struct {
	wp     weak.Pointer[Handle[T]]
	shared *SharedCounters
}

// NewHandle returns an operation handle anchored at a random sub-stack and
// registers it with the stack for reconfiguration quiescence tracking and
// stats aggregation. The handle itself is held weakly: one the caller
// drops becomes collectable, its registry entry is pruned on a later
// registration (folding its last published counters into the retired
// total), so the convenience API's handle pool does not grow the registry
// without bound. (Counters not yet flushed when a handle is abandoned — at
// most statsFlushInterval operations — are lost; call FlushStats before
// dropping a handle if they matter.) One handle per goroutine is still the
// intended pattern.
func (s *Stack[T]) NewHandle() *Handle[T] {
	seed := s.seed.V.Add(0x9e3779b97f4a7c15)
	rng := xrand.New(seed)
	order := int(s.handleSeq.Add(1) - 1)
	h := &Handle[T]{
		s:            s,
		rng:          rng,
		last:         rng.Intn(s.geo.Load().width),
		socket:       HeuristicSocket(order, s.geo.Load().nsockets),
		latCountdown: latencySampleInterval,
		shared:       &SharedCounters{},
	}
	s.hMu.Lock()
	live := s.handles[:0]
	for _, old := range s.handles {
		if old.wp.Value() != nil {
			live = append(live, old)
		} else {
			s.retired.Add(old.shared.Load())
		}
	}
	s.handles = append(live, handleEntry[T]{wp: weak.Make(h), shared: h.shared})
	s.hMu.Unlock()
	return h
}

// Pin declares the socket the owning goroutine runs on, overriding the
// creation-order heuristic NewHandle applied. Under a local-probe
// placement policy (see Stack.SetPlacement and DESIGN.md §7) subsequent
// operations visit slots homed on this socket before remote ones, and the
// handle's CAS failures are attributed to it in StatsSnapshot — the signal
// the adaptive controller uses to home new slots near the contention.
// Negative ids are treated as 0 and ids are folded modulo
// MaxPlacementSockets; at operation time a hint beyond the configured
// socket count is further folded modulo that count (see sockIdx), so the
// socket a handle probes as always matches the socket its contention is
// attributed to. Pinning never affects window semantics, only probe
// order. Owner-goroutine only, like every Handle method.
func (h *Handle[T]) Pin(socket int) {
	if socket < 0 {
		socket = 0
	}
	h.socket = socket % MaxPlacementSockets
}

// Socket returns the handle's current placement hint.
func (h *Handle[T]) Socket() int { return h.socket }

// sockIdx reduces the handle's socket hint to the geometry's socket count
// — the same reduction probe() applies when building the walk — so the
// socket a handle contends AS is the socket its CAS pressure is
// attributed TO. Without this, a handle pinned beyond the configured
// socket count would probe as socket (hint mod nsockets) but report
// pressure on the raw hint, and LocalFirst would discard the requester.
func (h *Handle[T]) sockIdx(geo *geometry[T]) int {
	if geo.nsockets > 1 {
		return h.socket % geo.nsockets
	}
	return h.socket
}

// probe returns the handle's probe plan for the pinned geometry: the slot
// permutation to walk (same-socket slots first, remote spill section
// privately rotated), its slot→position inverse, and the local-slot
// count. All nil/0 for placement-blind geometries, selecting the plain
// index-order search. The plan is cached per (geometry, socket), so the
// steady-state cost is two pointer compares.
func (h *Handle[T]) probe(geo *geometry[T]) (ord, pos []int, localN int) {
	if !geo.localProbe {
		return nil, nil, 0
	}
	if h.planGeo != geo || h.planSocket != h.socket {
		s := h.socket % geo.nsockets
		h.planOrd, h.planPos, h.planLocalN = BuildProbePlan(geo.homes, s, h.rng.Intn(geo.width))
		h.planGeo, h.planSocket = geo, h.socket
	}
	return h.planOrd, h.planPos, h.planLocalN
}

// armLatSample opens a latency sample: reset the countdown, mark the
// sample in flight, read the clock. Deliberately noinline: it runs once per
// latencySampleInterval operations, and keeping its body (the time.Now
// call above all) out of pin's inlined code leaves the uncontended fast
// path with only the countdown decrement-and-test — the clock is read
// strictly after the sample decision.
//
//go:noinline
func (h *Handle[T]) armLatSample() {
	h.latCountdown = latencySampleInterval
	h.latSampling = true
	h.latStart = time.Now()
}

// closeLatSample records the in-flight sample's bucket; noinline for the
// same reason as armLatSample — unpin's inlined body keeps only the
// predicted-untaken latSampling test.
//
//go:noinline
func (h *Handle[T]) closeLatSample() {
	h.latSampling = false
	h.stats.Latency[LatencyBucket(time.Since(h.latStart))]++
}

// pinGeo publishes the handle as active on the current geometry and
// returns it. The re-check after the epoch store closes the race with a
// concurrent geometry swap: once pinGeo returns, any reconfigurer that
// superseded geo will wait for this handle's unpin before touching
// stranded sub-stacks.
func (h *Handle[T]) pinGeo() *geometry[T] {
	for {
		geo := h.s.geo.Load()
		h.epoch.Store(geo.epoch)
		if h.s.geo.Load() == geo {
			if h.last >= geo.width {
				// The anchor can dangle after a width shrink; re-anchor.
				h.last = h.rng.Intn(geo.width)
			}
			return geo
		}
	}
}

// pin is pinGeo plus the 1-in-N latency sample decision: a sampled
// operation is timed from here to the matching unpin, so the estimate
// covers the whole search including window maintenance and restarts.
func (h *Handle[T]) pin() *geometry[T] {
	h.latCountdown--
	if h.latCountdown <= 0 {
		h.armLatSample()
	}
	return h.pinGeo()
}

// pinBatch is pin without the sampling countdown. A batch is many
// operations under one pin: its end-to-end time is not a per-operation
// latency, so it must not open a sample — and it must not consume a
// countdown tick either. (Batches used to run the full pin and cancel the
// sample afterwards, which silently ate the tick whenever one landed on
// the sample point: a batch-heavy phase skewed the stride and could starve
// post-batch sampling entirely. TestLatencySampleStridePinned pins the
// corrected behaviour.)
func (h *Handle[T]) pinBatch() *geometry[T] {
	return h.pinGeo()
}

// unpin marks the handle idle, closes an in-flight latency sample, and
// periodically publishes its counters.
func (h *Handle[T]) unpin() {
	h.epoch.Store(0)
	if h.latSampling {
		h.closeLatSample()
	}
	h.maybeFlush()
}

// Push adds v to the stack. It is lock-free: it retries until its CAS
// succeeds, which can only be delayed by other operations succeeding.
//
// Search structure (paper §3): start from the last successful sub-stack;
// hop randomly up to RandomHops times, then probe round-robin. Only the
// round-robin probes count toward the "failed on all sub-stacks" verdict —
// a full round of `width` consecutive invalid probes guarantees every
// sub-stack was inspected at the current Global before the window is
// raised. A failed CAS (contention) triggers a random hop and restarts the
// count; any observed Global change restarts the search outright.
func (h *Handle[T]) Push(v T) {
	geo := h.pin()
	s := h.s
	width := geo.width
	// Under a local-probe placement policy the search walks a per-socket
	// permutation (same-socket slots first) instead of plain index order;
	// ord is nil otherwise and the pre-placement path runs unchanged. Both
	// walks cover all width slots, so the coverage discipline — and with
	// it the Theorem 1 bound — is identical (DESIGN.md §7).
	ord, pos, localN := h.probe(geo)
	sockIdx := h.sockIdx(geo)
	n := &node[T]{value: v}
	for {
		global := s.global.V.Load()
		idx := h.last
		at := 0 // position of idx in ord (local-probe walks only)
		if ord != nil {
			at = pos[idx]
		}
		probes := 0 // consecutive round-robin validation failures
		randLeft := geo.hops
		for probes < width {
			// Track Global on every hop; restart the search on any change.
			if g := s.global.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			d := geo.subs[idx].load()
			h.stats.Probes++
			if d.count < global {
				// Valid for push: attempt the descriptor swap.
				n.next = d.top
				if geo.subs[idx].cas(d, &descriptor[T]{top: n, count: d.count + 1}) {
					h.last = idx
					h.stats.Pushes++
					h.unpin()
					return
				}
				// Contention: the colliding operation made progress; hop to
				// a random sub-stack and restart the coverage count.
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0 // stay in round-robin from the new anchor
				continue
			}
			// Invalid (at the window ceiling): hop on.
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue // exploratory hop; does not count toward coverage
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		// A full round-robin pass found every sub-stack at the ceiling:
		// raise the window. Whether our CAS or a competitor's wins, Global
		// has changed; re-read and retry with a fresh search count.
		gate(yield.PointWindowMove)
		if s.global.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowRaises++
		}
	}
}

// Pop removes and returns a value within the relaxation window. ok is false
// only when the stack is empty: the window is at its floor (validity
// threshold zero) and a full round-robin pass saw every sub-stack at count
// zero.
func (h *Handle[T]) Pop() (v T, ok bool) {
	geo := h.pin()
	s := h.s
	width := geo.width
	depth := geo.depth
	ord, pos, localN := h.probe(geo) // see Push
	sockIdx := h.sockIdx(geo)
	for {
		global := s.global.V.Load()
		// Steady state guarantees global >= depth; a racing depth change
		// can briefly violate it, so clamp the floor at zero (count > 0
		// then still implies top != nil).
		floor := global - depth
		if floor < 0 {
			floor = 0
		}
		idx := h.last
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		for probes < width {
			if g := s.global.V.Load(); g != global {
				global = g
				floor = global - depth
				if floor < 0 {
					floor = 0
				}
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			d := geo.subs[idx].load()
			h.stats.Probes++
			if d.count > floor {
				// Valid for pop. count > floor >= 0 implies top != nil.
				if geo.subs[idx].cas(d, &descriptor[T]{top: d.top.next, count: d.count - 1}) {
					h.last = idx
					h.stats.Pops++
					h.unpin()
					return d.top.value, true
				}
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if global <= depth {
			// Window at its floor: the coverage pass proved every
			// sub-stack held zero items at this Global. Report empty.
			h.stats.EmptyPops++
			h.unpin()
			var zero T
			return zero, false
		}
		// Lower the window (floored at depth so the validity threshold
		// never goes negative) and retry with a fresh search count.
		gate(yield.PointWindowMove)
		next := global - geo.shift
		if next < depth {
			next = depth
		}
		if s.global.V.CompareAndSwap(global, next) {
			h.stats.WindowLowers++
		}
	}
}

// TryPop performs a single search pass without moving the window. It exists
// for latency-sensitive callers (examples/taskpool) that prefer an immediate
// miss over window maintenance; ok=false means "nothing in the current
// window", not necessarily that the stack is empty.
func (h *Handle[T]) TryPop() (v T, ok bool) {
	geo := h.pin()
	s := h.s
	width := geo.width
	ord, pos, _ := h.probe(geo) // single pass, same-socket slots first
	sockIdx := h.sockIdx(geo)
	global := s.global.V.Load()
	floor := global - geo.depth
	if floor < 0 {
		floor = 0
	}
	idx := h.last
	at := 0
	if ord != nil {
		at = pos[idx]
	}
	for probes := 0; probes < width; probes++ {
		d := geo.subs[idx].load()
		h.stats.Probes++
		if d.count > floor {
			if geo.subs[idx].cas(d, &descriptor[T]{top: d.top.next, count: d.count - 1}) {
				h.last = idx
				h.stats.Pops++
				h.unpin()
				return d.top.value, true
			}
			h.stats.CASFailures++
			h.stats.SocketCAS[sockIdx]++
			gate(yield.PointCASFail)
		}
		if ord == nil {
			idx++
			if idx == width {
				idx = 0
			}
		} else {
			at++
			if at == width {
				at = 0
			}
			idx = ord[at]
		}
	}
	h.unpin()
	var zero T
	return zero, false
}
