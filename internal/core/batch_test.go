package core

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestPushBatchEquivalentToLoop(t *testing.T) {
	cfg := Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}
	sBatch := MustNew[uint64](cfg)
	vs := make([]uint64, 100)
	for i := range vs {
		vs[i] = uint64(i + 1)
	}
	hb := sBatch.NewHandle()
	hb.PushBatch(vs)
	if got := sBatch.Len(); got != len(vs) {
		t.Fatalf("Len = %d after PushBatch, want %d", got, len(vs))
	}
	// Conservation and bound: drain and check the trace.
	var ops []seqspec.Op
	for _, v := range vs {
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: v})
	}
	for {
		v, ok := hb.Pop()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}
	if _, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K())); err != nil {
		t.Fatalf("batched pushes broke the k bound: %v", err)
	}
}

func TestPushBatchRespectsWindowCeiling(t *testing.T) {
	cfg := Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	h.PushBatch(make([]int, 100))
	g := s.Global()
	for i, c := range s.SubCounts() {
		if c > g {
			t.Fatalf("sub-stack %d count %d exceeds Global %d after batch", i, c, g)
		}
	}
}

func TestPopBatchTopFirst(t *testing.T) {
	cfg := Config{Width: 1, Depth: 64, Shift: 64} // strict: exact order observable
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 1; i <= 10; i++ {
		h.Push(i)
	}
	got := h.PopBatch(3)
	want := []int{10, 9, 8}
	if len(got) != 3 {
		t.Fatalf("PopBatch(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopBatch = %v, want %v", got, want)
		}
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d after batch pop, want 7", s.Len())
	}
}

func TestPopBatchShortOnEmpty(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 2, Shift: 2})
	h := s.NewHandle()
	h.Push(1)
	h.Push(2)
	got := h.PopBatch(10)
	if len(got) != 2 {
		t.Fatalf("PopBatch(10) returned %d items, want 2", len(got))
	}
	if more := h.PopBatch(5); len(more) != 0 {
		t.Fatalf("PopBatch on empty returned %v", more)
	}
	if h.PopBatch(0) != nil {
		t.Fatal("PopBatch(0) should return nil")
	}
	if h.PopBatch(-1) != nil {
		t.Fatal("PopBatch(-1) should return nil")
	}
}

func TestBatchRoundTripConservation(t *testing.T) {
	s := MustNew[uint64](Config{Width: 5, Depth: 7, Shift: 3, RandomHops: 2})
	h := s.NewHandle()
	const n = 5000
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = uint64(i)
	}
	h.PushBatch(vs)
	seen := make(map[uint64]bool, n)
	for {
		batch := h.PopBatch(37)
		if len(batch) == 0 {
			break
		}
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("value %d recovered twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("recovered %d values, want %d", len(seen), n)
	}
}

func TestBatchConcurrentConservation(t *testing.T) {
	const workers = 8
	s := MustNew[uint64](DefaultConfig(workers))
	var wg sync.WaitGroup
	recovered := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			base := uint64(w) << 32
			for round := 0; round < 200; round++ {
				vs := make([]uint64, 13)
				for i := range vs {
					vs[i] = base | uint64(round*13+i)
				}
				h.PushBatch(vs)
				recovered[w] = append(recovered[w], h.PopBatch(11)...)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range recovered {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	want := workers * 200 * 13
	if len(seen) != want {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), want)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// Property: batch and singleton interleavings conserve values and respect
// the bound sequentially.
func TestPropertyBatchKBound(t *testing.T) {
	f := func(widthRaw, depthRaw uint8, sizes []uint8) bool {
		width := int(widthRaw%5) + 1
		depth := int64(depthRaw%6) + 1
		cfg := Config{Width: width, Depth: depth, Shift: depth, RandomHops: 1}
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for i, raw := range sizes {
			m := int(raw%7) + 1
			if i%2 == 0 {
				vs := make([]uint64, m)
				for j := range vs {
					vs[j] = next
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
					next++
				}
				h.PushBatch(vs)
			} else {
				for _, v := range h.PopBatch(m) {
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v})
				}
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		_, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
