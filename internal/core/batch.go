package core

import "stack2d/internal/yield"

// Batched operations. A batch applies several pushes (or pops) to one
// sub-stack with a single descriptor CAS, amortising the search and the
// coherence traffic. The window discipline is preserved exactly: a batch
// of m pushes is accepted only while count+m <= Global, i.e. it is
// indistinguishable (for the Theorem 1 bound) from m consecutive singleton
// pushes that all landed on that sub-stack — something the window already
// permits. Likewise a pop batch never takes a sub-stack below the window
// floor.

// PushBatch pushes all values; vs[len-1] ends up topmost, matching a
// sequential loop of Push calls. Values may be split across sub-stacks
// when window headroom is short. Under a local-probe placement policy the
// search honours the handle's probe plan exactly as Push does (same-socket
// slots first, DESIGN.md §7).
func (h *Handle[T]) PushBatch(vs []T) {
	// pinBatch: a batch neither opens a latency sample nor consumes a
	// countdown tick (a batch duration is not a per-op latency).
	geo := h.pinBatch()
	s := h.s
	width := geo.width
	sockIdx := h.sockIdx(geo)
	ord, pos, localN := h.probe(geo)
	remaining := vs
	for len(remaining) > 0 {
		global := s.global.V.Load()
		idx := h.last
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		for probes < width && len(remaining) > 0 {
			if g := s.global.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			d := geo.subs[idx].load()
			h.stats.Probes++
			if headroom := global - d.count; headroom > 0 {
				m := int64(len(remaining))
				if m > headroom {
					m = headroom
				}
				// Chain the first m values so remaining[m-1] is topmost. The
				// nodes come from one slab allocation and are linked in
				// place, so a combined publish costs one allocation per CAS
				// group instead of one per value (the slab stays reachable
				// until every node carved from it is popped and dropped —
				// the lifetime of a batch's top node, which batched
				// producer/consumer traffic turns over promptly).
				slab := make([]node[T], m)
				top := d.top
				for i := int64(0); i < m; i++ {
					slab[i] = node[T]{value: remaining[i], next: top}
					top = &slab[i]
				}
				if geo.subs[idx].cas(d, &descriptor[T]{top: top, count: d.count + m}) {
					h.last = idx
					h.stats.Pushes += uint64(m)
					remaining = remaining[m:]
					continue
				}
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if len(remaining) == 0 {
			break
		}
		gate(yield.PointWindowMove)
		if s.global.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowRaises++
		}
	}
	h.unpin()
}

// PopBatch removes up to max values, returned topmost-first. It returns a
// short (possibly empty) slice when the stack runs out of items within the
// window discipline, exactly as max consecutive Pop calls would.
func (h *Handle[T]) PopBatch(max int) []T {
	if max <= 0 {
		return nil
	}
	return h.popBatchInto(make([]T, 0, max), max)
}

// popBatchInto is PopBatch appending into a caller-owned slice: the op
// buffer's prefetch refill (buffer.go) passes its standing buffer so a
// steady-state refill allocates nothing but the replacement descriptors.
// len(out) must be 0 relative to the max budget (callers pass out[:0]).
func (h *Handle[T]) popBatchInto(out []T, max int) []T {
	geo := h.pinBatch() // see PushBatch: no sample, no countdown tick
	s := h.s
	width := geo.width
	depth := geo.depth
	sockIdx := h.sockIdx(geo)
	ord, pos, localN := h.probe(geo)
	for len(out) < max {
		global := s.global.V.Load()
		floor := global - depth
		if floor < 0 {
			floor = 0
		}
		idx := h.last
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		for probes < width && len(out) < max {
			if g := s.global.V.Load(); g != global {
				global = g
				floor = global - depth
				if floor < 0 {
					floor = 0
				}
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			d := geo.subs[idx].load()
			h.stats.Probes++
			if avail := d.count - floor; avail > 0 {
				m := int64(max - len(out))
				if m > avail {
					m = avail
				}
				// Walk m nodes off the top to find the new top, CAS, and
				// only then collect the values: the detached chain is still
				// reachable from d.top, so the collection needs no staging
				// buffer (the old per-attempt `taken` slice was PopBatch's
				// last per-group allocation besides the descriptor).
				top := d.top
				for i := int64(0); i < m; i++ {
					top = top.next
				}
				if geo.subs[idx].cas(d, &descriptor[T]{top: top, count: d.count - m}) {
					h.last = idx
					h.stats.Pops += uint64(m)
					for n, i := d.top, int64(0); i < m; i++ {
						out = append(out, n.value)
						n = n.next
					}
					continue
				}
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if len(out) >= max {
			break
		}
		if global <= depth {
			// Window at its floor and full coverage found nothing: the
			// stack is out of items (within the empty-detection slack).
			break
		}
		next := global - geo.shift
		if next < depth {
			next = depth
		}
		gate(yield.PointWindowMove)
		if s.global.V.CompareAndSwap(global, next) {
			h.stats.WindowLowers++
		}
	}
	h.unpin()
	return out
}
