package core

import "stack2d/internal/yield"

// Gate is the deterministic schedule director's yield hook (DESIGN.md §10).
// It is nil in production — every call site pays one predicted-untaken nil
// check, and every call site is already off the uncontended fast path (a
// failed CAS, a pre-window-move coverage failure, a reconfiguration, a
// quiescence wait) — and is installed by internal/director for the duration
// of one directed run. Install and clear only while no operations are in
// flight; the director's task spawning provides the happens-before edge.
var Gate func(yield.Point)

// gate fires the director hook, if installed. Kept tiny so the nil fast
// path inlines to a single load-and-branch.
func gate(p yield.Point) {
	if g := Gate; g != nil {
		g(p)
	}
}

// SetAnchor forces the handle's next search to start at sub-stack idx,
// overriding the locality anchor of the most recent success. With
// RandomHops = 0 and no concurrent operations the next Push or Pop then
// lands on idx whenever idx is window-valid — the property the
// deterministic director's exact trace replay relies on to drive the real
// stack through a seqspec explorer trace (sub-stack choices included).
// Out-of-range indices are re-anchored randomly by the next pin, exactly
// like a dangling anchor after a width shrink. Owner-goroutine only, like
// every Handle method; diagnostics and directed replay, not a tuning knob.
func (h *Handle[T]) SetAnchor(idx int) {
	if idx < 0 {
		idx = 0
	}
	h.last = idx
}
