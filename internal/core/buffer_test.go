package core

import (
	"testing"
	"unsafe"

	"stack2d/internal/pad"
)

// TestLatencySampleStridePinned pins the 1-in-64 sampling stride against
// batch interference: batch operations (and buffered combined publishes,
// which ride on them) must neither open a sample nor consume a countdown
// tick, so interleaving any number of batches between singletons leaves
// the stride exactly latencySampleInterval singleton operations. The old
// cancel-after-pin behaviour failed this: a batch landing on the sample
// point ate the tick, deferring the next sample by a full stride.
func TestLatencySampleStridePinned(t *testing.T) {
	cfg := Config{Width: 2, Depth: 64, Shift: 64, RandomHops: 0}
	t.Run("stack-batches", func(t *testing.T) {
		h := MustNew[uint64](cfg).NewHandle()
		for i := 0; i < latencySampleInterval-1; i++ {
			h.Push(uint64(i))
			h.PushBatch([]uint64{1, 2, 3})
			if got := h.PopBatch(3); len(got) != 3 {
				t.Fatalf("PopBatch returned %d values, want 3", len(got))
			}
		}
		if n := h.Stats().LatencySamples(); n != 0 {
			t.Fatalf("%d samples after %d singletons with interleaved batches, want 0",
				n, latencySampleInterval-1)
		}
		h.Push(0) // singleton number latencySampleInterval
		if n := h.Stats().LatencySamples(); n != 1 {
			t.Fatalf("%d samples after %d singletons, want exactly 1", n, latencySampleInterval)
		}
	})
	t.Run("buffered-ops-do-not-sample", func(t *testing.T) {
		// Buffered operations publish through the batch paths; a full
		// buffered cycle must leave the singleton stride untouched too.
		h := MustNew[uint64](cfg).NewHandle()
		h.SetOpBuffer(4)
		for i := 0; i < 8*latencySampleInterval; i++ {
			h.BufferedPush(uint64(i))
			if _, ok := h.BufferedPop(); !ok {
				t.Fatal("BufferedPop missed directly after BufferedPush")
			}
		}
		h.FlushOps()
		if n := h.Stats().LatencySamples(); n != 0 {
			t.Fatalf("%d samples from buffered-only traffic, want 0", n)
		}
	})
}

// TestSharedCountersPadded pins the mirror's false-sharing defence: the
// struct must occupy a whole number of cache lines, so back-to-back mirror
// allocations (one per handle in the registries) never share a line and a
// handle's 64-op flush cannot invalidate a neighbour's.
func TestSharedCountersPadded(t *testing.T) {
	if sz := unsafe.Sizeof(SharedCounters{}); sz%pad.CacheLineSize != 0 {
		t.Fatalf("SharedCounters is %d bytes, not a multiple of the %d-byte cache line",
			sz, pad.CacheLineSize)
	}
}

// TestSharedCountersSeqlockConsistency drives a single-writer flush loop
// maintaining the invariant Pushes == 2·Pops against a concurrent reader:
// every Load must return a cross-field-consistent snapshot. Without the
// seqlock generation the per-field atomics still tear across fields
// (a fresh Pushes paired with a stale Pops) and this fails within a few
// thousand iterations.
func TestSharedCountersSeqlockConsistency(t *testing.T) {
	var c SharedCounters
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var st OpStats
		for i := uint64(1); ; i++ {
			st.Pushes, st.Pops = 2*i, i
			c.Store(st)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for i := 0; i < 200000; i++ {
		out := c.Load()
		if out.Pushes != 2*out.Pops {
			close(stop)
			<-done
			t.Fatalf("torn snapshot: Pushes=%d Pops=%d (want Pushes == 2*Pops)", out.Pushes, out.Pops)
		}
	}
	close(stop)
	<-done
}

// TestOpBufferSemantics covers the buffer's contract: LIFO elision of
// pending pushes, prefetch delivery order, Len counting private residents,
// the empty verdict, and flush-on-reconfiguration.
func TestOpBufferSemantics(t *testing.T) {
	cfg := Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 0}

	t.Run("pending-lifo-and-len", func(t *testing.T) {
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		h.SetOpBuffer(8)
		for i := uint64(1); i <= 5; i++ {
			h.BufferedPush(i)
		}
		if p, u := h.BufferedCounts(); p != 5 || u != 0 {
			t.Fatalf("BufferedCounts = (%d,%d), want (5,0)", p, u)
		}
		if got := s.Len(); got != 5 {
			t.Fatalf("Len = %d with 5 pending pushes, want 5", got)
		}
		// Newest pending first: 5, 4, 3.
		for want := uint64(5); want >= 3; want-- {
			v, ok := h.BufferedPop()
			if !ok || v != want {
				t.Fatalf("BufferedPop = (%d,%t), want (%d,true)", v, ok, want)
			}
		}
		h.FlushOps()
		if p, _ := h.BufferedCounts(); p != 0 {
			t.Fatalf("%d pending after FlushOps, want 0", p)
		}
		if got := s.Len(); got != 2 {
			t.Fatalf("Len = %d after flush of the 2 survivors, want 2", got)
		}
		if got := s.Drain(); len(got) != 2 {
			t.Fatalf("Drain returned %d values, want 2", len(got))
		}
	})

	t.Run("size-triggered-publish", func(t *testing.T) {
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		h.SetOpBuffer(4)
		for i := uint64(1); i <= 3; i++ {
			h.BufferedPush(i)
		}
		if structural := s.Len() - 3; structural != 0 {
			t.Fatalf("published before the threshold: %d structural items", structural)
		}
		h.BufferedPush(4) // hits bufCap: combined publish
		if p, _ := h.BufferedCounts(); p != 0 {
			t.Fatalf("%d pending after threshold publish, want 0", p)
		}
		if got := len(s.Drain()); got != 4 {
			t.Fatalf("Drain returned %d values after publish, want 4", got)
		}
	})

	t.Run("prefetch-and-empty-verdict", func(t *testing.T) {
		s := MustNew[uint64](cfg)
		seedH := s.NewHandle()
		seedH.PushBatch([]uint64{1, 2, 3})
		h := s.NewHandle()
		h.SetOpBuffer(8)
		// First BufferedPop refills the prefetch with one combined batch
		// (all 3 values, topmost-first) and delivers the first.
		if v, ok := h.BufferedPop(); !ok || v != 3 {
			t.Fatalf("first BufferedPop = (%d,%t), want (3,true)", v, ok)
		}
		if _, u := h.BufferedCounts(); u != 2 {
			t.Fatalf("%d undelivered after refill, want 2", u)
		}
		if got := s.Len(); got != 2 {
			t.Fatalf("Len = %d with 2 undelivered prefetched values, want 2", got)
		}
		for want := uint64(2); want >= 1; want-- {
			if v, ok := h.BufferedPop(); !ok || v != want {
				t.Fatalf("BufferedPop = (%d,%t), want (%d,true)", v, ok, want)
			}
		}
		if _, ok := h.BufferedPop(); ok {
			t.Fatal("BufferedPop reported a value from an empty stack")
		}
		if got := s.Len(); got != 0 {
			t.Fatalf("Len = %d after full delivery, want 0", got)
		}
	})

	t.Run("reconfig-flushes-pending", func(t *testing.T) {
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		h.SetOpBuffer(16)
		h.BufferedPush(1)
		h.BufferedPush(2)
		if err := s.Reconfigure(Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 0}); err != nil {
			t.Fatal(err)
		}
		// The next buffered op reconciles with the new epoch and publishes
		// the stale pending batch before buffering anything new.
		h.BufferedPush(3)
		if p, _ := h.BufferedCounts(); p != 1 {
			t.Fatalf("%d pending after epoch flush, want 1 (just the post-reconfig push)", p)
		}
		if structural := s.Len() - 1; structural != 2 {
			t.Fatalf("epoch flush published %d items, want 2", structural)
		}
	})

	t.Run("disarm-returns-residents", func(t *testing.T) {
		s := MustNew[uint64](cfg)
		seedH := s.NewHandle()
		seedH.PushBatch([]uint64{1, 2, 3, 4})
		h := s.NewHandle()
		h.SetOpBuffer(4)
		if v, ok := h.BufferedPop(); !ok || v != 4 {
			t.Fatalf("BufferedPop = (%d,%t), want (4,true)", v, ok)
		}
		h.BufferedPush(9)
		h.SetOpBuffer(0) // disarm: pending published, prefetch handed back
		if got := s.Len(); got != 4 {
			t.Fatalf("Len = %d after disarm, want 4", got)
		}
		if h.OpBuffer() != 0 {
			t.Fatal("OpBuffer still armed after disarm")
		}
		// The returned prefetch must surface in its original relative
		// order: 3 was next in delivery order, so it pops before 2 and 1.
		want := map[uint64]bool{1: true, 2: true, 3: true, 9: true}
		got := s.Drain()
		if len(got) != 4 {
			t.Fatalf("Drain returned %d values, want 4", len(got))
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("Drain returned unexpected value %d", v)
			}
			delete(want, v)
		}
	})
}
