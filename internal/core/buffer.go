package core

// Per-handle operation buffering: the raw-speed campaign's combined-
// publication fast path (DESIGN.md §11). An armed handle batches its
// pushes locally and publishes them through PushBatch when the buffer
// fills, and refills a local pop prefetch through PopBatch — so the
// uncontended steady state touches shared cache lines once per bufCap
// operations instead of once per operation. Buffering is opt-in per handle
// (SetOpBuffer) and invisible to the singleton Push/Pop paths, which stay
// exactly as fast as before.
//
// Semantics: a buffered operation takes effect (linearizes) at its publish
// or serve point, not at its API call. The displacement this adds to the
// realised k-out-of-order distance is budgeted by the checkers'
// BufferAllowance term (seqspec; DESIGN.md §11 gives the accounting
// argument and its fairness premise). Buffered-but-unpublished items are
// counted by Stack.Len via the handle registry, so sizing never sees
// phantom emptiness; Drain and teardown require the owner to FlushOps
// first, since only the owning goroutine may touch a handle's buffers.

// SetOpBuffer arms (n >= 1) or disarms (n <= 0) operation buffering on the
// handle with a combined-publication threshold of n operations.
// Disarming — and re-arming with a different threshold — first flushes
// pending pushes and hands undelivered prefetched values back to the
// structure. Owner-goroutine only, like every Handle method.
func (h *Handle[T]) SetOpBuffer(n int) {
	if h.bufCap > 0 {
		h.FlushOps()
		h.returnPrefetch()
	}
	if n <= 0 {
		h.bufCap = 0
		h.pending = nil
		h.prefetch = nil
		return
	}
	h.bufCap = n
	h.pending = make([]T, 0, n)
	h.prefetch = make([]T, 0, n)
	h.prefStart = 0
	h.bufEpoch = h.s.geo.Load().epoch
}

// OpBuffer returns the armed combined-publication threshold (0 when
// buffering is off).
func (h *Handle[T]) OpBuffer() int { return h.bufCap }

// BufferedCounts reports the handle's private residents: pending pushes
// not yet published, and prefetched values not yet delivered.
// Owner-goroutine only; foreign readers get the sum via Stack.Len.
func (h *Handle[T]) BufferedCounts() (pending, undelivered int) {
	return len(h.pending), len(h.prefetch) - h.prefStart
}

// syncBufCount republishes the atomically readable buffered total after
// any buffer mutation; one uncontended store to the handle's own line.
func (h *Handle[T]) syncBufCount() {
	h.bufCount.Store(int64(len(h.pending) + len(h.prefetch) - h.prefStart))
}

// maybeEpochFlush reconciles the buffers with a geometry change: pending
// pushes buffered under a superseded geometry are published into the new
// one before the next buffered operation proceeds, so a reconfiguration is
// never followed by an arbitrarily stale combined publish. Prefetched
// values were already popped from the structure (under the old windows)
// and are unaffected by the swap; they keep serving.
func (h *Handle[T]) maybeEpochFlush() {
	if e := h.s.geo.Load().epoch; e != h.bufEpoch {
		h.bufEpoch = e
		if len(h.pending) > 0 {
			h.flushPending()
		}
	}
}

// flushPending publishes the pending pushes as one combined batch.
func (h *Handle[T]) flushPending() {
	h.PushBatch(h.pending)
	clear(h.pending)
	h.pending = h.pending[:0]
	h.syncBufCount()
}

// returnPrefetch hands undelivered prefetched values back to the
// structure, newest-delivery-first so the re-push restores their relative
// order. Used when buffering is disarmed; delivery normally drains the
// prefetch through BufferedPop instead.
func (h *Handle[T]) returnPrefetch() {
	if n := len(h.prefetch) - h.prefStart; n > 0 {
		// prefetch[prefStart:] is topmost-first; push back in reverse so
		// the former topmost is pushed last and surfaces first again.
		for i := len(h.prefetch) - 1; i >= h.prefStart; i-- {
			h.Push(h.prefetch[i])
		}
	}
	clear(h.prefetch)
	h.prefetch = h.prefetch[:0]
	h.prefStart = 0
	h.syncBufCount()
}

// FlushOps publishes all pending buffered pushes immediately. It does not
// disturb the pop prefetch: prefetched values were already removed from
// the structure and remain deliverable through BufferedPop. Call before
// quiescing, draining the stack, or abandoning the handle (an abandoned
// handle's buffered values are lost, exactly like any popped-but-
// unprocessed value held by its goroutine). No-op when nothing is pending.
func (h *Handle[T]) FlushOps() {
	if len(h.pending) > 0 {
		h.flushPending()
	}
}

// BufferedPush adds v through the operation buffer: the value is retained
// locally and published — together with every pending neighbour — as one
// combined PushBatch once bufCap values are pending. With buffering
// disarmed it is exactly Push.
func (h *Handle[T]) BufferedPush(v T) {
	if h.bufCap <= 0 {
		h.Push(v)
		return
	}
	h.maybeEpochFlush()
	h.pending = append(h.pending, v)
	if len(h.pending) >= h.bufCap {
		h.flushPending()
		return
	}
	h.syncBufCount()
}

// BufferedPop removes a value through the operation buffer. The newest
// pending push is served first (the push/pop pair linearizes back to
// back), then the prefetch; an empty prefetch is refilled with one
// combined PopBatch of up to bufCap values. ok is false only when the
// refill itself came back empty — the same observation Pop's empty verdict
// rests on, since by then no pending push exists either. With buffering
// disarmed it is exactly Pop.
func (h *Handle[T]) BufferedPop() (v T, ok bool) {
	if h.bufCap <= 0 {
		return h.Pop()
	}
	h.maybeEpochFlush()
	if n := len(h.pending); n > 0 {
		v = h.pending[n-1]
		var zero T
		h.pending[n-1] = zero
		h.pending = h.pending[:n-1]
		h.syncBufCount()
		return v, true
	}
	if h.prefStart >= len(h.prefetch) {
		h.prefetch = h.popBatchInto(h.prefetch[:0], h.bufCap)
		h.prefStart = 0
		if len(h.prefetch) == 0 {
			h.syncBufCount()
			var zero T
			return zero, false
		}
	}
	v = h.prefetch[h.prefStart]
	var zero T
	h.prefetch[h.prefStart] = zero
	h.prefStart++
	h.syncBufCount()
	return v, true
}
