package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReconfigureValidation(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	if err := s.Reconfigure(Config{Width: 0, Depth: 8, Shift: 8}); err == nil {
		t.Fatal("Reconfigure accepted Width 0")
	}
	if err := s.Reconfigure(Config{Width: 4, Depth: 8, Shift: 16}); err == nil {
		t.Fatal("Reconfigure accepted Shift > Depth")
	}
	if got := s.Config(); got != (Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}) {
		t.Fatalf("failed Reconfigure mutated config: %+v", got)
	}
}

// TestShrinkWarmHandoffSplice pins the warm-handoff mechanics in a
// quiescent shrink: stranded chains are spliced onto the least-loaded
// surviving sub-stacks (reproducing the argmin choice from the pre-shrink
// counts), the Global window advances exactly once in a batch — restoring
// push headroom; the retired funnel-migration re-pushed items through the
// window search, raising Global once per exhausted band (the k-spike),
// while a splice without the batched raise would defer those raises onto
// stalled client pushes — and the displacement accounting opens a non-zero
// budget.
func TestShrinkWarmHandoffSplice(t *testing.T) {
	s := MustNew[uint64](Config{Width: 4, Depth: 16, Shift: 16, RandomHops: 0})
	h := s.NewHandle()
	for i := uint64(0); i < 400; i++ {
		h.Push(i)
	}
	before := s.SubCounts()
	if err := s.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 400 {
		t.Fatalf("Len = %d after shrink, want 400 (migration lost items)", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after shrink: %v", err)
	}
	// Replay the argmin policy on the recorded counts: dropped slots are
	// spliced in index order, each onto the currently least-loaded
	// survivor.
	want := []int64{before[0], before[1]}
	for _, stranded := range before[2:] {
		j := 0
		if want[1] < want[0] {
			j = 1
		}
		want[j] += stranded
	}
	after := s.SubCounts()
	if after[0] != want[0] || after[1] != want[1] {
		t.Fatalf("post-shrink loads %v, want %v (least-loaded splice of %v)", after, want, before)
	}
	if s.ShrinkDisplacementBound() <= 0 {
		t.Fatal("shrink migrated items but ShrinkDisplacementBound is zero")
	}
	// Push headroom was restored in one batched Global advance: the next
	// push needs zero window raises, and a pop still succeeds.
	raisesBefore := h.Stats().WindowRaises
	h.Push(1 << 40)
	if raises := h.Stats().WindowRaises - raisesBefore; raises != 0 {
		t.Fatalf("first post-shrink push needed %d window raises (push outage)", raises)
	}
	if _, ok := h.Pop(); !ok {
		t.Fatal("post-shrink pop failed")
	}
}

func TestReconfigureQuiescent(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0})
	h := s.NewHandle()
	const n = 1000
	for i := 0; i < n; i++ {
		h.Push(i)
	}
	steps := []Config{
		{Width: 16, Depth: 4, Shift: 4, RandomHops: 2},   // grow width
		{Width: 16, Depth: 64, Shift: 32, RandomHops: 2}, // deepen window
		{Width: 3, Depth: 64, Shift: 32, RandomHops: 2},  // shrink width (migration)
		{Width: 1, Depth: 8, Shift: 8, RandomHops: 0},    // degenerate to strict
		{Width: 8, Depth: 16, Shift: 16, RandomHops: 1},  // grow again
	}
	epoch := s.Epoch()
	for _, cfg := range steps {
		if err := s.Reconfigure(cfg); err != nil {
			t.Fatalf("Reconfigure(%+v): %v", cfg, err)
		}
		if got := s.Config(); got != cfg {
			t.Fatalf("Config() = %+v after Reconfigure(%+v)", got, cfg)
		}
		if got := s.Epoch(); got != epoch+1 {
			t.Fatalf("Epoch = %d, want %d", got, epoch+1)
		}
		epoch++
		if got := s.Len(); got != n {
			t.Fatalf("Len = %d after Reconfigure(%+v), want %d", got, cfg, n)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants after Reconfigure(%+v): %v", cfg, err)
		}
	}
	// Reconfiguring to the current config is a no-op (same epoch).
	cur := s.Config()
	if err := s.Reconfigure(cur); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != epoch {
		t.Fatalf("no-op Reconfigure bumped epoch %d -> %d", epoch, got)
	}
	seen := make(map[int]bool, n)
	for _, v := range s.Drain() {
		if seen[v] {
			t.Fatalf("duplicate item %d after reconfigurations", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct items, want %d", len(seen), n)
	}
}

// TestReconfigureStress hammers the stack from many goroutines while a
// dedicated goroutine cycles the geometry through grows, shrinks and
// depth/shift changes. Afterwards every pushed item must be accounted for
// exactly once across {popped} ∪ {remaining} — live reconfiguration may
// reorder items but can never lose or duplicate one.
func TestReconfigureStress(t *testing.T) {
	s := MustNew[uint64](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})

	const workers = 8
	duration := 200 * time.Millisecond
	if testing.Short() {
		duration = 50 * time.Millisecond
	}

	geometries := []Config{
		{Width: 2, Depth: 4, Shift: 4, RandomHops: 1},
		{Width: 32, Depth: 4, Shift: 2, RandomHops: 2},
		{Width: 32, Depth: 128, Shift: 128, RandomHops: 2},
		{Width: 3, Depth: 16, Shift: 8, RandomHops: 0},
		{Width: 1, Depth: 64, Shift: 64, RandomHops: 0},
		{Width: 12, Depth: 32, Shift: 16, RandomHops: 2},
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	popped := make([]map[uint64]int, workers)
	pushedCount := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		popped[i] = make(map[uint64]int)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := s.NewHandle()
			// Unique labels: worker id in the high bits.
			label := uint64(id+1) << 40
			for !stop.Load() {
				label++
				h.Push(label)
				pushedCount[id]++
				if v, ok := h.Pop(); ok {
					popped[id][v]++
				}
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			if err := s.Reconfigure(geometries[i%len(geometries)]); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stress: %v", err)
	}

	var total uint64
	for _, n := range pushedCount {
		total += n
	}
	seen := make(map[uint64]int, total)
	var poppedN uint64
	for _, m := range popped {
		for v, n := range m {
			seen[v] += n
			poppedN += uint64(n)
		}
	}
	remaining := s.Drain()
	for _, v := range remaining {
		seen[v]++
	}
	if got := poppedN + uint64(len(remaining)); got != total {
		t.Fatalf("pushed %d items but popped %d + remaining %d = %d", total, poppedN, len(remaining), got)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d seen %d times (lost or duplicated)", v, n)
		}
	}
	// The final geometry must be one of the cycled ones and self-consistent.
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if snap := s.StatsSnapshot(); snap.Ops() == 0 {
		t.Fatal("StatsSnapshot reported zero operations after a stress run")
	}
}

// TestStatsSnapshotTracksHandles verifies the central registry aggregates
// published handle counters without requiring owner-goroutine access.
func TestStatsSnapshotTracksHandles(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	h1 := s.NewHandle()
	h2 := s.NewHandle()
	for i := 0; i < 10; i++ {
		h1.Push(i)
	}
	for i := 0; i < 4; i++ {
		h2.Pop()
	}
	// Below the flush interval nothing is published yet; force it.
	h1.FlushStats()
	h2.FlushStats()
	snap := s.StatsSnapshot()
	if snap.Pushes != 10 || snap.Pops != 4 {
		t.Fatalf("snapshot = %+v, want 10 pushes / 4 pops", snap)
	}
	// Deltas between snapshots saturate rather than underflow on reset.
	h1.ResetStats()
	if d := s.StatsSnapshot().Sub(snap); d.Pushes != 0 {
		t.Fatalf("delta after reset = %+v, want saturated zero pushes", d)
	}
}

// TestHandleRegistryPrunesAndRetiresStats guards the convenience-API path
// (sync.Pool of handles): abandoned handles must not grow the registry
// without bound, and their published counters must survive collection in
// the retired total.
func TestHandleRegistryPrunesAndRetiresStats(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1})
	for i := 0; i < 8; i++ {
		h := s.NewHandle()
		for j := 0; j < 10; j++ {
			h.Push(j)
		}
		h.FlushStats()
	}
	// All 8 handles are now unreferenced. Registration prunes collected
	// entries and GC cleanups fold their counters into the retired total;
	// both are asynchronous, so poll with a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		s.NewHandle() // registering prunes dead entries
		s.hMu.Lock()
		entries := len(s.handles)
		s.hMu.Unlock()
		snap := s.StatsSnapshot()
		if entries <= 3 && snap.Pushes == 80 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d entries, snapshot %+v (want <= 3 entries, 80 pushes)", entries, snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
