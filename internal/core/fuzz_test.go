package core

import (
	"testing"

	"stack2d/internal/seqspec"
)

// FuzzSequentialKOutOfOrder feeds arbitrary op scripts and configurations
// to a 2D-Stack and checks the resulting history against Theorem 1's exact
// (corrected) bound — through both the sequential replay checker and, with
// synthesized non-overlapping intervals, the concurrent-history
// KStackChecker, which must agree with zero slack. Run the seed corpus
// with `go test` (testdata/fuzz holds the checked-in cases, including the
// width-2/depth-4/shift-1 history that refuted the paper's transcribed
// constant); explore with `go test -fuzz=FuzzSequentialKOutOfOrder
// ./internal/core`.
func FuzzSequentialKOutOfOrder(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(1), uint8(1), []byte{0xff, 0x0f, 0xf0})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), []byte{0x00})
	f.Add(uint8(6), uint8(2), uint8(2), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55})
	f.Add(uint8(4), uint8(8), uint8(4), uint8(3), []byte{})
	// The Theorem-1 counterexample geometry and script (14 pushes, then
	// drain): realises distance 7 > 6 = the retired constant, within the
	// corrected K() = 9. Kept as a live seed so a regression of the
	// constant fails the corpus run, not just the fuzzer.
	f.Add(uint8(1), uint8(3), uint8(0), uint8(0), []byte{0xff, 0x3f})
	f.Fuzz(func(t *testing.T, widthRaw, depthRaw, shiftRaw, hopsRaw uint8, script []byte) {
		width := int(widthRaw%8) + 1
		depth := int64(depthRaw%8) + 1
		shift := int64(shiftRaw)%depth + 1
		hops := int(hopsRaw % 4)
		cfg := Config{Width: width, Depth: depth, Shift: shift, RandomHops: hops}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("derived config invalid: %v", err)
		}
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for _, b := range script {
			for bit := 0; bit < 8; bit++ {
				if b&(1<<bit) != 0 {
					h.Push(next)
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
					next++
				} else {
					v, ok := h.Pop()
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
				}
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		maxDist, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !s.Empty() {
			t.Fatal("stack not empty after full drain")
		}
		// The concurrent-history checker over the same history with
		// synthesized sequential intervals must agree exactly: same
		// maximum distance, no measurement slack.
		if err := seqspec.CrossCheckKDistance(ops, cfg.K(), maxDist); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	})
}
