package core

import (
	"testing"

	"stack2d/internal/seqspec"
)

// FuzzSequentialKOutOfOrder feeds arbitrary op scripts and configurations
// to a 2D-Stack and checks the resulting history against Theorem 1's exact
// bound. Run the seed corpus with `go test`; explore with
// `go test -fuzz=FuzzSequentialKOutOfOrder ./internal/core`.
func FuzzSequentialKOutOfOrder(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(1), uint8(1), []byte{0xff, 0x0f, 0xf0})
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), []byte{0x00})
	f.Add(uint8(6), uint8(2), uint8(2), uint8(2), []byte{0xaa, 0x55, 0xaa, 0x55})
	f.Add(uint8(4), uint8(8), uint8(4), uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, widthRaw, depthRaw, shiftRaw, hopsRaw uint8, script []byte) {
		width := int(widthRaw%8) + 1
		depth := int64(depthRaw%8) + 1
		shift := int64(shiftRaw)%depth + 1
		hops := int(hopsRaw % 4)
		cfg := Config{Width: width, Depth: depth, Shift: shift, RandomHops: hops}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("derived config invalid: %v", err)
		}
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for _, b := range script {
			for bit := 0; bit < 8; bit++ {
				if b&(1<<bit) != 0 {
					h.Push(next)
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
					next++
				} else {
					v, ok := h.Pop()
					ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
				}
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		if _, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K())); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !s.Empty() {
			t.Fatal("stack not empty after full drain")
		}
	})
}
