package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/seqspec"
)

// TestConcurrentConservation: under mixed concurrent push/pop, the multiset
// of values recovered (pops + final drain) equals the multiset pushed.
// Run with -race to catch synchronisation bugs.
func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		perW    = 3000
	)
	s := MustNew[uint64](DefaultConfig(workers))
	var wg sync.WaitGroup
	popped := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[w] = append(popped[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]int, workers*perW)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("distinct values recovered = %d, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// TestConcurrentDrainExactlyOnce: concurrent pure poppers never duplicate or
// lose an item from a prefilled stack, and all report empty at the end.
func TestConcurrentDrainExactlyOnce(t *testing.T) {
	const n = 20000
	s := MustNew[uint64](Config{Width: 16, Depth: 8, Shift: 8, RandomHops: 2})
	h := s.NewHandle()
	for v := uint64(0); v < n; v++ {
		h.Push(v)
	}
	const workers = 8
	var wg sync.WaitGroup
	results := make(chan uint64, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := s.NewHandle()
			for {
				v, ok := h.Pop()
				if !ok {
					return
				}
				results <- v
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool, n)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("popped %d values, want %d", len(seen), n)
	}
}

// TestConcurrentEmptyNeverFalseWhileFull: with a large standing population
// and balanced churn, Pop must never report empty (the stack always holds
// far more than k items).
func TestConcurrentEmptyNeverFalseWhileFull(t *testing.T) {
	cfg := Config{Width: 8, Depth: 4, Shift: 4, RandomHops: 2}
	s := MustNew[uint64](cfg)
	seed := s.NewHandle()
	const standing = 50000 // >> k = (2*4+4)*7 = 84
	for v := uint64(0); v < standing; v++ {
		seed.Push(v)
	}
	const workers = 8
	var wg sync.WaitGroup
	var emptyReturns atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < 2000; i++ {
				// Pop then push back: population stays near `standing`.
				v, ok := h.Pop()
				if !ok {
					emptyReturns.Add(1)
					continue
				}
				h.Push(v)
			}
		}(w)
	}
	wg.Wait()
	if n := emptyReturns.Load(); n != 0 {
		t.Fatalf("Pop reported empty %d times with ~%d items standing", n, standing)
	}
}

// TestConcurrentHistoryIsKLegalWithSlack records a completion-ordered
// history under concurrency and checks it against a slackened bound.
//
// Note on methodology: completion order is not linearization order, so the
// theorem's exact k cannot be asserted on this trace; concurrency adds up to
// one in-flight operation per worker of reordering. We assert the bound
// k + workers * 2, which catches gross violations (e.g. a broken window)
// while tolerating trace skew; the exact bound is asserted in the
// sequential tests and the relaxation tests in internal/relax.
func TestConcurrentHistoryIsKLegalWithSlack(t *testing.T) {
	cfg := Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2}
	s := MustNew[uint64](cfg)
	const workers = 4
	const opsPerW = 4000

	type stamped struct {
		seq int64
		op  seqspec.Op
	}
	var stamp atomic.Int64
	perW := make([][]stamped, workers)
	var wg sync.WaitGroup
	var label atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			buf := make([]stamped, 0, opsPerW)
			for i := 0; i < opsPerW; i++ {
				if i%2 == 0 {
					// Stamp the push at invocation so no pop of v can be
					// stamped before it (completion-stamped pushes make
					// the merged trace claim values pop before they
					// exist under unlucky preemption).
					v := label.Add(1)
					buf = append(buf, stamped{stamp.Add(1), seqspec.Op{Kind: seqspec.OpPush, Value: v}})
					h.Push(v)
				} else {
					v, ok := h.Pop()
					buf = append(buf, stamped{stamp.Add(1), seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok}})
				}
			}
			perW[w] = buf
		}(w)
	}
	wg.Wait()

	// Merge by stamp. Stamps are unique and dense enough to bucket-sort.
	total := 0
	for _, b := range perW {
		total += len(b)
	}
	merged := make([]seqspec.Op, total)
	filled := make([]bool, total+1)
	for _, b := range perW {
		for _, st := range b {
			merged[st.seq-1] = st.op
			filled[st.seq-1] = true
		}
	}
	for i := 0; i < total; i++ {
		if !filled[i] {
			t.Fatalf("stamp %d missing from trace", i+1)
		}
	}
	// Drain sequentially to complete the history.
	h := s.NewHandle()
	for {
		v, ok := h.Pop()
		merged = append(merged, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}
	slack := int(cfg.K()) + workers*2
	if _, err := seqspec.CheckKOutOfOrder(merged, slack); err != nil {
		t.Fatalf("concurrent history exceeds slackened bound %d: %v", slack, err)
	}
	dists, err := seqspec.MeasureDistances(merged)
	if err != nil {
		t.Fatalf("trace is not even multiset-consistent: %v", err)
	}
	var max int
	for _, d := range dists {
		if d > max {
			max = d
		}
	}
	t.Logf("k=%d slack=%d maxObservedDist=%d over %d pops", cfg.K(), slack, max, len(dists))
}

// TestConcurrentWidthOne: the degenerate strict stack under concurrency
// still conserves values (it is a plain descriptor-based Treiber stack).
func TestConcurrentWidthOne(t *testing.T) {
	s := MustNew[uint64](Config{Width: 1, Depth: 64, Shift: 64})
	const workers = 4
	const perW = 2000
	var wg sync.WaitGroup
	var recovered atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if _, ok := h.Pop(); ok {
					recovered.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rest := len(s.Drain())
	if got := int(recovered.Load()) + rest; got != workers*perW {
		t.Fatalf("recovered %d values, want %d", got, workers*perW)
	}
}

// TestHandleIndependence: handles must not corrupt each other's anchors.
func TestHandleIndependence(t *testing.T) {
	s := MustNew[int](DefaultConfig(2))
	h1, h2 := s.NewHandle(), s.NewHandle()
	h1.Push(1)
	h2.Push(2)
	got := map[int]bool{}
	if v, ok := h2.Pop(); ok {
		got[v] = true
	}
	if v, ok := h1.Pop(); ok {
		got[v] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("handles lost values: %v", got)
	}
}

// TestManyHandles: handle creation is itself concurrent-safe.
func TestManyHandles(t *testing.T) {
	s := MustNew[int](DefaultConfig(4))
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			h.Push(w)
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 32 {
		t.Fatalf("Len = %d, want 32", got)
	}
}
