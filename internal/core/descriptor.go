package core

import "stack2d/internal/pad"

// node is one cell of a sub-stack's singly linked list.
type node[T any] struct {
	value T
	next  *node[T]
}

// descriptor is the immutable per-sub-stack snapshot the paper updates with
// a 16-byte compare-and-exchange: the topmost node pointer and the item
// counter, changed together in one atomic step.
//
// Substitution note (see DESIGN.md §3): instead of cmpxchg16b we allocate a
// fresh descriptor per successful operation and swing a single
// atomic.Pointer. The {top, count} pair still changes atomically, the
// algorithm remains lock-free, and the garbage collector rules out ABA on
// descriptor addresses because a descriptor cannot be freed (hence reused)
// while a CAS still references it.
type descriptor[T any] struct {
	top   *node[T]
	count int64 // exact length of the list hanging off top
}

// subStack is a single sub-stack slot in the stack-array. Each slot is
// padded to a cache line so CAS traffic on one sub-stack does not invalidate
// its neighbours (the disjoint-access-parallelism dimension of the design).
type subStack[T any] struct {
	desc pad.PointerLine[descriptor[T]]
}

// load returns the current descriptor. Sub-stacks are initialised eagerly,
// so the result is never nil.
func (ss *subStack[T]) load() *descriptor[T] { return ss.desc.P.Load() }

// cas attempts to replace old with next in one atomic step.
func (ss *subStack[T]) cas(old, next *descriptor[T]) bool {
	return ss.desc.P.CompareAndSwap(old, next)
}
