package core

import (
	"reflect"
	"sync"
	"testing"
)

func TestHeuristicSocket(t *testing.T) {
	// Fill-socket-0-first over 8 cores per socket, wrapping.
	cases := []struct{ order, sockets, want int }{
		{0, 2, 0}, {7, 2, 0}, {8, 2, 1}, {15, 2, 1}, {16, 2, 0},
		{5, 1, 0}, {23, 2, 0}, {8, 4, 1}, {31, 4, 3}, {-1, 2, 0},
	}
	for _, c := range cases {
		if got := HeuristicSocket(c.order, c.sockets); got != c.want {
			t.Errorf("HeuristicSocket(%d, %d) = %d, want %d", c.order, c.sockets, got, c.want)
		}
	}
}

func TestPlaceSlotsBalancedWithoutRequester(t *testing.T) {
	// LocalFirst with no attribution degenerates to a balanced interleave.
	if got, want := PlaceSlots(LocalFirst(), nil, 4, -1, 2), []int{0, 1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LocalFirst unattributed: got %v, want %v", got, want)
	}
	if got, want := PlaceSlots(RoundRobin(), nil, 4, -1, 2), []int{0, 1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RoundRobin: got %v, want %v", got, want)
	}
}

func TestPlaceSlotsRequesterFirstThenSpill(t *testing.T) {
	// Growing 4 → 8 at the request of socket 1: the new slots fill socket
	// 1 up to its fair share (4 of 8), then spill to socket 0.
	homes := PlaceSlots(LocalFirst(), []int{0, 1, 0, 1}, 8, 1, 2)
	want := []int{0, 1, 0, 1, 1, 1, 0, 0}
	if !reflect.DeepEqual(homes, want) {
		t.Fatalf("grow for socket 1: got %v, want %v", homes, want)
	}
	// Existing homes are never rewritten.
	if !reflect.DeepEqual(homes[:4], []int{0, 1, 0, 1}) {
		t.Fatalf("existing homes rewritten: %v", homes)
	}
}

func TestShrinkSurvivorsPrefersDroppingRemote(t *testing.T) {
	homes := []int{0, 1, 0, 1, 1, 1, 0, 0}
	// Shrinking 8 → 4 for socket 0 drops socket-1 slots first (from the
	// tail): 5, 4, 3, 1 go; survivors keep their relative order.
	if got, want := ShrinkSurvivors(LocalFirst(), homes, 4, 0), []int{0, 2, 6, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("shrink for socket 0: got %v, want %v", got, want)
	}
	// Not enough remote slots: local ones go too, tail-first.
	if got, want := ShrinkSurvivors(LocalFirst(), homes, 2, 1), []int{1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("deep shrink for socket 1: got %v, want %v", got, want)
	}
	// Blind policy or no attribution: the pre-placement trailing drop.
	if got, want := ShrinkSurvivors(RoundRobin(), homes, 4, 0), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("blind shrink: got %v, want %v", got, want)
	}
	if got, want := ShrinkSurvivors(LocalFirst(), homes, 4, -1), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unattributed shrink: got %v, want %v", got, want)
	}
}

func TestBuildProbePlanIsPermutation(t *testing.T) {
	homes := []int{0, 1, 0, 1, 1, 0, 0, 1}
	for socket := 0; socket < 2; socket++ {
		for rot := 0; rot < 6; rot++ {
			ord, pos, localN := BuildProbePlan(homes, socket, rot)
			if localN != 4 {
				t.Fatalf("socket %d: localN = %d, want 4", socket, localN)
			}
			seen := make([]bool, len(homes))
			for at, slot := range ord {
				if seen[slot] {
					t.Fatalf("socket %d rot %d: slot %d appears twice in %v", socket, rot, slot, ord)
				}
				seen[slot] = true
				if pos[slot] != at {
					t.Fatalf("pos inverse broken at slot %d", slot)
				}
				if at < localN && homes[slot] != socket {
					t.Fatalf("socket %d: remote slot %d inside local section of %v", socket, slot, ord)
				}
			}
		}
	}
}

// TestStackPlacementRoundTrip drives a placed stack through pinned pushes,
// an attributed grow and an attributed shrink, checking homes at each step
// and that no item is lost.
func TestStackPlacementRoundTrip(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	s.SetPlacement(LocalFirst(), 2)
	if got, want := s.Placement(), []int{0, 1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("initial homes: got %v, want %v", got, want)
	}

	h0, h1 := s.NewHandle(), s.NewHandle()
	h0.Pin(0)
	h1.Pin(1)
	const n = 200
	batch := make([]int, 0, n)
	for i := 0; i < n; i++ {
		h0.Push(i)
		batch = append(batch, n+i)
	}
	h1.PushBatch(batch) // batches walk the same probe plan as Push
	got := h1.PopBatch(10)
	if len(got) != 10 {
		t.Fatalf("PopBatch returned %d items, want 10", len(got))
	}
	h1.PushBatch(got)

	// Grow at socket 1's request: the four new slots fill socket 1 first.
	if err := s.ReconfigureOnSocket(Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Placement(), []int{0, 1, 0, 1, 1, 1, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("homes after grow: got %v, want %v", got, want)
	}
	for i := 0; i < n; i++ {
		h0.Push(2*n + i)
	}

	// Shrink at socket 0's request: socket-1 slots are dropped first.
	if err := s.ReconfigureOnSocket(Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Placement(), []int{0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("homes after shrink: got %v, want %v", got, want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	seen := make(map[int]bool)
	for _, v := range s.Drain() {
		if seen[v] {
			t.Fatalf("duplicated item %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3*n {
		t.Fatalf("drained %d items, want %d", len(seen), 3*n)
	}
}

// TestPlacementSocketCASAttribution: a pinned handle's contention lands in
// its socket's bucket, and the buckets sum to CASFailures.
func TestPlacementSocketCASAttribution(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0})
	s.SetPlacement(LocalFirst(), 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			h.Pin(w % 2)
			for i := 0; i < 5000; i++ {
				h.Push(i)
				h.Pop()
			}
			h.FlushStats()
		}(w)
	}
	wg.Wait()
	st := s.StatsSnapshot()
	var sum uint64
	for _, c := range st.SocketCAS {
		sum += c
	}
	if sum != st.CASFailures {
		t.Fatalf("SocketCAS sums to %d, CASFailures %d", sum, st.CASFailures)
	}
	if got := st.PressureSocket(); st.CASFailures > 0 && (got != 0 && got != 1) {
		t.Fatalf("PressureSocket = %d with failures on sockets 0/1 only", got)
	}
}

// TestPinBeyondSocketCountAttributesReduced: a handle pinned past the
// configured socket count probes as (hint mod nsockets) and must report
// its pressure on that same socket — otherwise LocalFirst would discard
// the requester every time.
func TestPinBeyondSocketCountAttributesReduced(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0})
	s.SetPlacement(LocalFirst(), 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			h.Pin(3) // 4-socket hint on a 2-socket placement: probes as socket 1
			for i := 0; i < 5000; i++ {
				h.Push(i)
				h.Pop()
			}
			h.FlushStats()
		}(w)
	}
	wg.Wait()
	st := s.StatsSnapshot()
	if st.CASFailures == 0 {
		t.Skip("no contention arose on this run")
	}
	if st.SocketCAS[3] != 0 {
		t.Fatalf("pressure attributed to raw hint 3 (%d failures) instead of reduced socket 1", st.SocketCAS[3])
	}
	if st.SocketCAS[1] != st.CASFailures {
		t.Fatalf("SocketCAS[1] = %d, want all %d failures", st.SocketCAS[1], st.CASFailures)
	}
}

// TestPlacementUnderConcurrentReconfig hammers a placed stack with pinned
// workers while the geometry and the placement itself change; run with
// -race in CI. Conservation is checked at the end.
func TestPlacementUnderConcurrentReconfig(t *testing.T) {
	s := MustNew[uint64](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2})
	s.SetPlacement(LocalFirst(), 2)
	const workers = 4
	const perWorker = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			h.Pin(HeuristicSocket(w, 2))
			for i := 0; i < perWorker; i++ {
				h.Push(uint64(w)<<32 | uint64(i))
				if i%3 == 0 {
					h.Pop()
				}
			}
		}(w)
	}
	widths := []int{8, 2, 6, 3, 4}
	for i, width := range widths {
		if err := s.ReconfigureOnSocket(Config{Width: width, Depth: 8, Shift: 8, RandomHops: 2}, i%2); err != nil {
			t.Fatal(err)
		}
		if homes := s.Placement(); len(homes) != width {
			t.Fatalf("placement has %d homes at width %d", len(homes), width)
		}
	}
	s.SetPlacement(RoundRobin(), 2) // live policy swap
	s.SetPlacement(LocalFirst(), 2)
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, v := range s.Drain() {
		if seen[v] {
			t.Fatalf("duplicated item %#x", v)
		}
		seen[v] = true
	}
}
