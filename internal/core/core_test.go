package core

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(4), true},
		{"minimal", Config{Width: 1, Depth: 1, Shift: 1}, true},
		{"zero width", Config{Width: 0, Depth: 1, Shift: 1}, false},
		{"zero depth", Config{Width: 1, Depth: 0, Shift: 1}, false},
		{"zero shift", Config{Width: 1, Depth: 4, Shift: 0}, false},
		{"shift beyond depth", Config{Width: 1, Depth: 4, Shift: 5}, false},
		{"negative hops", Config{Width: 1, Depth: 1, Shift: 1, RandomHops: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
			if _, err := New[int](c.cfg); (err == nil) != c.ok {
				t.Fatalf("New() error = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestDefaultConfigClampsP(t *testing.T) {
	cfg := DefaultConfig(0)
	if cfg.Width != 4 {
		t.Fatalf("DefaultConfig(0).Width = %d, want 4 (p clamped to 1)", cfg.Width)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig(0) invalid: %v", err)
	}
}

func TestTheorem1Bound(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int64
	}{
		{Config{Width: 1, Depth: 8, Shift: 8}, 0},  // strict
		{Config{Width: 2, Depth: 8, Shift: 8}, 24}, // (16+8)*1
		{Config{Width: 4, Depth: 64, Shift: 64}, (128 + 64) * 3},
		{Config{Width: 32, Depth: 1, Shift: 1}, 3 * 31},
		// shift < depth: the corrected constant weighs depth double, not
		// shift (DESIGN.md §2).
		{Config{Width: 2, Depth: 4, Shift: 1}, 9},  // (8+1)*1
		{Config{Width: 3, Depth: 4, Shift: 2}, 20}, // (8+2)*2
	}
	for _, c := range cases {
		if got := c.cfg.K(); got != c.want {
			t.Errorf("K(%+v) = %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid config did not panic")
		}
	}()
	MustNew[int](Config{})
}

func TestEmptyPop(t *testing.T) {
	s := MustNew[int](DefaultConfig(2))
	h := s.NewHandle()
	if v, ok := h.Pop(); ok {
		t.Fatalf("Pop on empty = (%d, true)", v)
	}
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("fresh stack not empty: Len=%d", s.Len())
	}
}

func TestPushPopSingle(t *testing.T) {
	s := MustNew[string](DefaultConfig(1))
	h := s.NewHandle()
	h.Push("x")
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if v, ok := h.Pop(); !ok || v != "x" {
		t.Fatalf("Pop = (%q, %v), want (x, true)", v, ok)
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("second Pop returned ok on empty stack")
	}
}

// TestWidthOneIsStrictLIFO: the degenerate 2D-Stack (width 1) must be an
// exact stack (k = 0 by Theorem 1).
func TestWidthOneIsStrictLIFO(t *testing.T) {
	cfg := Config{Width: 1, Depth: 4, Shift: 4, RandomHops: 2}
	s := MustNew[uint64](cfg)
	h := s.NewHandle()
	var m seqspec.Model
	for v := uint64(0); v < 500; v++ {
		h.Push(v)
		m.Push(v)
		if v%3 == 0 {
			got, gok := h.Pop()
			want, wok := m.Pop()
			if gok != wok || got != want {
				t.Fatalf("v=%d: Pop = (%d,%v), want (%d,%v)", v, got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Pop()
		got, gok := h.Pop()
		if gok != wok {
			t.Fatalf("emptiness diverged: model=%v stack=%v", wok, gok)
		}
		if !wok {
			return
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

// TestSingleThreadedKBound: driven sequentially, every pop distance must be
// within Theorem 1's k (sequential executions are a subset of concurrent
// ones, so this is a necessary condition).
func TestSingleThreadedKBound(t *testing.T) {
	cfgs := []Config{
		{Width: 2, Depth: 2, Shift: 1, RandomHops: 1},
		{Width: 4, Depth: 8, Shift: 8, RandomHops: 2},
		{Width: 8, Depth: 4, Shift: 2, RandomHops: 0},
	}
	for _, cfg := range cfgs {
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		// Mixed phases: fill, churn, drain.
		for i := 0; i < 300; i++ {
			h.Push(next)
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
			next++
		}
		for i := 0; i < 600; i++ {
			if i%2 == 0 {
				h.Push(next)
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
				next++
			} else {
				v, ok := h.Pop()
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			}
		}
		for {
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		maxDist, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
		if err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
			continue
		}
		t.Logf("cfg %+v: k=%d maxObservedDist=%d", cfg, cfg.K(), maxDist)
	}
}

// TestValueConservationSequential: everything pushed comes back exactly once.
func TestValueConservationSequential(t *testing.T) {
	s := MustNew[uint64](Config{Width: 6, Depth: 5, Shift: 3, RandomHops: 2})
	h := s.NewHandle()
	const n = 5000
	for v := uint64(0); v < n; v++ {
		h.Push(v)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	seen := make(map[uint64]bool, n)
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d values, want %d", len(seen), n)
	}
	if !s.Empty() {
		t.Fatal("stack not empty after drain")
	}
}

func TestGlobalNeverBelowDepth(t *testing.T) {
	cfg := Config{Width: 3, Depth: 7, Shift: 7, RandomHops: 1}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 200; i++ {
		h.Push(i)
	}
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
		if g := s.Global(); g < cfg.Depth {
			t.Fatalf("Global = %d fell below depth %d", g, cfg.Depth)
		}
	}
	if g := s.Global(); g != cfg.Depth {
		t.Fatalf("Global = %d after drain, want floor %d", g, cfg.Depth)
	}
}

func TestSubCountsMatchLen(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Depth: 4, Shift: 4, RandomHops: 2})
	h := s.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	var sum int64
	for _, c := range s.SubCounts() {
		if c < 0 {
			t.Fatalf("negative sub-stack count: %v", s.SubCounts())
		}
		sum += c
	}
	if int(sum) != s.Len() || sum != 100 {
		t.Fatalf("SubCounts sum=%d Len=%d want 100", sum, s.Len())
	}
}

// TestWindowDisciplineSequential: with a single thread, no sub-stack's count
// may ever exceed Global (the window ceiling) after a push, nor drop below
// Global-depth while others are being popped... the enforceable invariant is
// count <= Global at the instant of a successful push, which sequentially
// means count <= Global always.
func TestWindowDisciplineSequential(t *testing.T) {
	cfg := Config{Width: 4, Depth: 3, Shift: 2, RandomHops: 1}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 400; i++ {
		h.Push(i)
		g := s.Global()
		for j, c := range s.SubCounts() {
			if c > g {
				t.Fatalf("after push %d: sub-stack %d count %d exceeds Global %d", i, j, c, g)
			}
		}
	}
}

func TestDrain(t *testing.T) {
	s := MustNew[int](DefaultConfig(2))
	h := s.NewHandle()
	for i := 0; i < 50; i++ {
		h.Push(i)
	}
	got := s.Drain()
	if len(got) != 50 {
		t.Fatalf("Drain returned %d items, want 50", len(got))
	}
	if !s.Empty() {
		t.Fatal("stack not empty after Drain")
	}
}

func TestTryPop(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0})
	h := s.NewHandle()
	if _, ok := h.TryPop(); ok {
		t.Fatal("TryPop on empty succeeded")
	}
	h.Push(1)
	if v, ok := h.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = (%d,%v), want (1,true)", v, ok)
	}
}

// Property: for arbitrary small configs and op scripts, the 2D-Stack is a
// legal k-out-of-order stack against the exact Theorem 1 constant
// K() = (2·depth + shift)·(width − 1) — every shift, no extra slack.
// (While the constant audit was open this test deflaked shift < depth
// against a looser interim bound; the audit is settled — DESIGN.md §2 —
// and the
// pinned counterexample that forced the deflake lives on in
// TestPropertySequentialKOutOfOrderPinnedCounterexample.)
func TestPropertySequentialKOutOfOrder(t *testing.T) {
	f := func(widthRaw, depthRaw, shiftRaw, hopsRaw uint8, script []bool) bool {
		width := int(widthRaw%6) + 1
		depth := int64(depthRaw%6) + 1
		shift := int64(shiftRaw)%depth + 1
		hops := int(hopsRaw % 3)
		cfg := Config{Width: width, Depth: depth, Shift: shift, RandomHops: hops}
		bound := cfg.K()
		s := MustNew[uint64](cfg)
		h := s.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for _, isPush := range script {
			if isPush {
				h.Push(next)
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
				next++
			} else {
				v, ok := h.Pop()
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			}
		}
		for { // drain so conservation is also checked
			v, ok := h.Pop()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		_, err := seqspec.CheckKOutOfOrder(ops, int(bound))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySequentialKOutOfOrderPinnedCounterexample pins the history
// that refuted the paper's transcribed Theorem-1 constant and forced the
// constant audit (ROADMAP item, settled by DESIGN.md §2): at width 2,
// depth 4, shift 1, fourteen pushes followed by a drain realise distance 7
// — beyond the retired shift-weighted transcription's 6, within the
// corrected K() = (2·depth + shift)(width − 1) = 9. The script must keep
// realising the excess (proving the pin is live, i.e. the corrected
// constant is not vacuously large here) and must pass the exact corrected
// bound. With RandomHops = 0 the sequential search is deterministic, so
// the realised distance is stable.
func TestPropertySequentialKOutOfOrderPinnedCounterexample(t *testing.T) {
	cfg := Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	const retiredK = 6
	if cfg.K() != 9 {
		t.Fatalf("K() = %d, want 9", cfg.K())
	}
	s := MustNew[uint64](cfg)
	h := s.NewHandle()
	var ops []seqspec.Op
	for v := uint64(1); v <= 14; v++ {
		h.Push(v)
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: v})
	}
	for {
		v, ok := h.Pop()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}
	maxDist, err := seqspec.CheckKOutOfOrder(ops, int(cfg.K()))
	if err != nil {
		t.Fatalf("corrected bound violated: %v", err)
	}
	if maxDist != 7 {
		t.Fatalf("pinned script realised max distance %d, want 7 (> retired k=%d)", maxDist, retiredK)
	}
}

func TestCheckInvariantsHoldsThroughLifecycle(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Depth: 4, Shift: 2, RandomHops: 1})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("fresh stack: %v", err)
	}
	h := s.NewHandle()
	for i := 0; i < 500; i++ {
		h.Push(i)
		if i%50 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d pushes: %v", i+1, err)
			}
		}
	}
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestCheckInvariantsAfterConcurrency(t *testing.T) {
	s := MustNew[uint64](DefaultConfig(4))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < 2000; i++ {
				h.Push(uint64(w*2000 + i))
				if i%3 == 0 {
					h.Pop()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
