package core

import "testing"

func TestStatsCountOps(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 1})
	h := s.NewHandle()
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	for i := 0; i < 10; i++ {
		if _, ok := h.Pop(); !ok {
			t.Fatal("premature empty")
		}
	}
	h.Pop() // empty
	st := h.Stats()
	if st.Pushes != 10 || st.Pops != 10 || st.EmptyPops != 1 {
		t.Fatalf("op counts = %+v", st)
	}
	if st.Ops() != 21 {
		t.Fatalf("Ops = %d, want 21", st.Ops())
	}
	if st.Probes < st.Ops() {
		t.Fatalf("Probes = %d < ops %d: every op validates at least one sub-stack", st.Probes, st.Ops())
	}
	if st.ProbesPerOp() < 1 {
		t.Fatalf("ProbesPerOp = %g, want >= 1", st.ProbesPerOp())
	}
}

func TestStatsWindowMovement(t *testing.T) {
	// Push-only workload on a small structure must raise the window;
	// pop-only must lower it back.
	cfg := Config{Width: 2, Depth: 2, Shift: 2, RandomHops: 0}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	st := h.Stats()
	if st.WindowRaises == 0 {
		t.Fatalf("100 pushes into width 2 depth 2 raised the window 0 times: %+v", st)
	}
	h.ResetStats()
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
	}
	st = h.Stats()
	if st.WindowLowers == 0 {
		t.Fatalf("draining did not lower the window: %+v", st)
	}
	if g := s.Global(); g != cfg.Depth {
		t.Fatalf("Global = %d after drain, want %d", g, cfg.Depth)
	}
}

func TestStatsRandomHops(t *testing.T) {
	// With RandomHops > 0 and a structure that forces invalid probes
	// (width 4, tiny depth, push-only), exploratory hops must be counted.
	s := MustNew[int](Config{Width: 4, Depth: 1, Shift: 1, RandomHops: 3})
	h := s.NewHandle()
	for i := 0; i < 200; i++ {
		h.Push(i)
	}
	if st := h.Stats(); st.RandomHops == 0 {
		t.Fatalf("no random hops recorded: %+v", st)
	}
}

func TestStatsReset(t *testing.T) {
	s := MustNew[int](DefaultConfig(1))
	h := s.NewHandle()
	h.Push(1)
	h.ResetStats()
	if st := h.Stats(); st != (OpStats{}) {
		t.Fatalf("ResetStats left %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := OpStats{Pushes: 1, Pops: 2, EmptyPops: 3, Probes: 4, RandomHops: 5,
		CASFailures: 6, WindowRaises: 7, WindowLowers: 8, Restarts: 9}
	b := a
	b.Add(a)
	want := OpStats{Pushes: 2, Pops: 4, EmptyPops: 6, Probes: 8, RandomHops: 10,
		CASFailures: 12, WindowRaises: 14, WindowLowers: 16, Restarts: 18}
	if b != want {
		t.Fatalf("Add = %+v, want %+v", b, want)
	}
}

func TestProbesPerOpEmpty(t *testing.T) {
	var st OpStats
	if st.ProbesPerOp() != 0 {
		t.Fatal("ProbesPerOp on zero stats not 0")
	}
}

// TestStepComplexityBoundedSequential: the paper claims tight step
// complexity; sequentially an operation should need at most
// RandomHops + width probes per window epoch, and window epochs per op are
// amortised O(1/shift). Assert a generous constant to catch regressions
// into quadratic searching.
func TestStepComplexityBoundedSequential(t *testing.T) {
	cfg := Config{Width: 8, Depth: 16, Shift: 16, RandomHops: 2}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	const ops = 20000
	for i := 0; i < ops; i++ {
		if i%3 == 2 {
			h.Pop()
		} else {
			h.Push(i)
		}
	}
	st := h.Stats()
	if ppo := st.ProbesPerOp(); ppo > 4 {
		t.Fatalf("ProbesPerOp = %.2f; sequential search should be near 1", ppo)
	}
}
