package core

import (
	"testing"
	"time"
)

func TestStatsCountOps(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 1})
	h := s.NewHandle()
	for i := 0; i < 10; i++ {
		h.Push(i)
	}
	for i := 0; i < 10; i++ {
		if _, ok := h.Pop(); !ok {
			t.Fatal("premature empty")
		}
	}
	h.Pop() // empty
	st := h.Stats()
	if st.Pushes != 10 || st.Pops != 10 || st.EmptyPops != 1 {
		t.Fatalf("op counts = %+v", st)
	}
	if st.Ops() != 21 {
		t.Fatalf("Ops = %d, want 21", st.Ops())
	}
	if st.Probes < st.Ops() {
		t.Fatalf("Probes = %d < ops %d: every op validates at least one sub-stack", st.Probes, st.Ops())
	}
	if st.ProbesPerOp() < 1 {
		t.Fatalf("ProbesPerOp = %g, want >= 1", st.ProbesPerOp())
	}
}

func TestStatsWindowMovement(t *testing.T) {
	// Push-only workload on a small structure must raise the window;
	// pop-only must lower it back.
	cfg := Config{Width: 2, Depth: 2, Shift: 2, RandomHops: 0}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	st := h.Stats()
	if st.WindowRaises == 0 {
		t.Fatalf("100 pushes into width 2 depth 2 raised the window 0 times: %+v", st)
	}
	h.ResetStats()
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
	}
	st = h.Stats()
	if st.WindowLowers == 0 {
		t.Fatalf("draining did not lower the window: %+v", st)
	}
	if g := s.Global(); g != cfg.Depth {
		t.Fatalf("Global = %d after drain, want %d", g, cfg.Depth)
	}
}

func TestStatsRandomHops(t *testing.T) {
	// With RandomHops > 0 and a structure that forces invalid probes
	// (width 4, tiny depth, push-only), exploratory hops must be counted.
	s := MustNew[int](Config{Width: 4, Depth: 1, Shift: 1, RandomHops: 3})
	h := s.NewHandle()
	for i := 0; i < 200; i++ {
		h.Push(i)
	}
	if st := h.Stats(); st.RandomHops == 0 {
		t.Fatalf("no random hops recorded: %+v", st)
	}
}

func TestStatsReset(t *testing.T) {
	s := MustNew[int](DefaultConfig(1))
	h := s.NewHandle()
	h.Push(1)
	h.ResetStats()
	if st := h.Stats(); st != (OpStats{}) {
		t.Fatalf("ResetStats left %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := OpStats{Pushes: 1, Pops: 2, EmptyPops: 3, Probes: 4, RandomHops: 5,
		CASFailures: 6, WindowRaises: 7, WindowLowers: 8, Restarts: 9}
	b := a
	b.Add(a)
	want := OpStats{Pushes: 2, Pops: 4, EmptyPops: 6, Probes: 8, RandomHops: 10,
		CASFailures: 12, WindowRaises: 14, WindowLowers: 16, Restarts: 18}
	if b != want {
		t.Fatalf("Add = %+v, want %+v", b, want)
	}
}

func TestProbesPerOpEmpty(t *testing.T) {
	var st OpStats
	if st.ProbesPerOp() != 0 {
		t.Fatal("ProbesPerOp on zero stats not 0")
	}
}

func TestLatencyBucketLayout(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {-time.Second, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{255, 8}, {256, 9}, {time.Duration(1) << 40, NumLatencyBuckets - 1},
	}
	for _, c := range cases {
		if got := LatencyBucket(c.d); got != c.want {
			t.Fatalf("LatencyBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLatencyPercentileEstimate(t *testing.T) {
	var st OpStats
	if got := st.LatencyPercentile(99); got != NoLatencySample {
		t.Fatalf("percentile of empty histogram = %v, want NoLatencySample", got)
	}
	// 99 samples in [256,512) ns, 1 sample in [65536,131072) ns: P50 must
	// fall in the low bucket, P99.5 (past the low bucket's mass) in the
	// high one.
	st.Latency[LatencyBucket(300)] = 99
	st.Latency[LatencyBucket(100000)] = 1
	if st.LatencySamples() != 100 {
		t.Fatalf("LatencySamples = %d, want 100", st.LatencySamples())
	}
	if p := st.LatencyPercentile(50); p < 256 || p >= 512 {
		t.Fatalf("P50 = %v outside the dominant bucket [256ns,512ns)", p)
	}
	if p := st.LatencyPercentile(99.5); p < 65536 || p >= 131072 {
		t.Fatalf("P99.5 = %v outside the tail bucket [65.5µs,131µs)", p)
	}
	// Percentiles are monotone in p.
	if st.LatencyPercentile(10) > st.LatencyPercentile(90) {
		t.Fatal("percentile not monotone")
	}
}

// TestLatencyPercentileSentinel pins the empty-histogram contract: every
// percentile of an all-zero histogram is the NoLatencySample sentinel, which
// is negative so no interpolated estimate can collide with it.
func TestLatencyPercentileSentinel(t *testing.T) {
	var st OpStats
	for _, p := range []float64{0, 50, 99, 100} {
		if got := st.LatencyPercentile(p); got != NoLatencySample {
			t.Fatalf("LatencyPercentile(%v) on empty histogram = %v, want NoLatencySample", p, got)
		}
	}
	if NoLatencySample >= 0 {
		t.Fatal("NoLatencySample must be negative to stay out of the estimate range")
	}
	// One sample flips every percentile to a real (non-negative) estimate.
	st.Latency[LatencyBucket(300)] = 1
	if got := st.LatencyPercentile(50); got == NoLatencySample || got < 0 {
		t.Fatalf("LatencyPercentile(50) with one sample = %v, want a real estimate", got)
	}
}

// TestLatencyPercentileSingleBucket: with all mass in one bucket, every
// percentile interpolates within that bucket's bounds.
func TestLatencyPercentileSingleBucket(t *testing.T) {
	var st OpStats
	b := LatencyBucket(1000) // [512ns, 1024ns)
	st.Latency[b] = 1000
	for _, p := range []float64{0, 1, 50, 99, 100} {
		got := st.LatencyPercentile(p)
		if got < 512 || got > 1024 {
			t.Fatalf("LatencyPercentile(%v) = %v outside single bucket [512ns,1024ns]", p, got)
		}
	}
	// Out-of-range p clamps rather than escaping the histogram.
	if got := st.LatencyPercentile(-5); got < 512 || got > 1024 {
		t.Fatalf("LatencyPercentile(-5) = %v, want clamp into bucket", got)
	}
	if got := st.LatencyPercentile(150); got < 512 || got > 1024 {
		t.Fatalf("LatencyPercentile(150) = %v, want clamp into bucket", got)
	}
}

// TestLatencyPercentileSaturated: mass in the last (overflow) bucket must
// not push the estimate past the bucket's upper bound, even at P100.
func TestLatencyPercentileSaturated(t *testing.T) {
	var st OpStats
	st.Latency[NumLatencyBuckets-1] = 42
	_, hi := latencyBucketBounds(NumLatencyBuckets - 1)
	for _, p := range []float64{0, 50, 100} {
		got := st.LatencyPercentile(p)
		if got <= 0 || got > hi {
			t.Fatalf("LatencyPercentile(%v) on saturated histogram = %v, want (0, %v]", p, got, hi)
		}
	}
	// Every bucket populated: P100 still lands at the histogram ceiling.
	for i := range st.Latency {
		st.Latency[i] = 1
	}
	if got := st.LatencyPercentile(100); got > hi {
		t.Fatalf("LatencyPercentile(100) fully populated = %v, exceeds ceiling %v", got, hi)
	}
}

func TestLatencyHistogramAddSub(t *testing.T) {
	var a, b OpStats
	a.Latency[3] = 10
	b.Latency[3] = 4
	b.Latency[5] = 1
	a.Add(b)
	if a.Latency[3] != 14 || a.Latency[5] != 1 {
		t.Fatalf("Add merged wrong: %v", a.Latency[:8])
	}
	d := a.Sub(b)
	if d.Latency[3] != 10 || d.Latency[5] != 0 {
		t.Fatalf("Sub gave %v", d.Latency[:8])
	}
	// Saturating, like every counter.
	if d2 := b.Sub(a); d2.Latency[3] != 0 {
		t.Fatalf("Sub did not saturate: %v", d2.Latency[:8])
	}
}

// TestLatencySamplerRecords drives more operations than the sampling
// stride and verifies samples land in the handle's stats and flow through
// FlushStats into StatsSnapshot.
func TestLatencySamplerRecords(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1})
	h := s.NewHandle()
	const ops = 1024 // 16 strides of 64
	for i := 0; i < ops; i++ {
		h.Push(i)
	}
	st := h.Stats()
	if n := st.LatencySamples(); n < ops/128 || n > ops/32 {
		t.Fatalf("LatencySamples = %d after %d ops, want about %d", n, ops, ops/64)
	}
	if st.LatencyPercentile(50) <= 0 {
		t.Fatal("sampled P50 is zero")
	}
	h.FlushStats()
	if got := s.StatsSnapshot().LatencySamples(); got != st.LatencySamples() {
		t.Fatalf("snapshot lost latency samples: %d != %d", got, st.LatencySamples())
	}
}

// TestLatencySamplerSkipsBatches: a batch is many operations under one
// pin; recording its end-to-end time as one op latency would skew the P99
// signal by the batch size, so batch entry points cancel the sample.
func TestLatencySamplerSkipsBatches(t *testing.T) {
	s := MustNew[int](Config{Width: 2, Depth: 64, Shift: 64, RandomHops: 0})
	h := s.NewHandle()
	for i := 0; i < 256; i++ {
		h.PushBatch([]int{1, 2, 3})
		h.PopBatch(3)
	}
	if n := h.Stats().LatencySamples(); n != 0 {
		t.Fatalf("batch calls recorded %d latency samples, want 0", n)
	}
}

// TestStepComplexityBoundedSequential: the paper claims tight step
// complexity; sequentially an operation should need at most
// RandomHops + width probes per window epoch, and window epochs per op are
// amortised O(1/shift). Assert a generous constant to catch regressions
// into quadratic searching.
func TestStepComplexityBoundedSequential(t *testing.T) {
	cfg := Config{Width: 8, Depth: 16, Shift: 16, RandomHops: 2}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	const ops = 20000
	for i := 0; i < ops; i++ {
		if i%3 == 2 {
			h.Pop()
		} else {
			h.Push(i)
		}
	}
	st := h.Stats()
	if ppo := st.ProbesPerOp(); ppo > 4 {
		t.Fatalf("ProbesPerOp = %.2f; sequential search should be near 1", ppo)
	}
}
