package core

import (
	"sync"
	"testing"
)

// TestDepthOneWindow: depth=shift=1 is the tightest window — each sub-stack
// accepts exactly one item per window epoch. The structure must still
// conserve values and bound relaxation at 3(width−1).
func TestDepthOneWindow(t *testing.T) {
	cfg := Config{Width: 4, Depth: 1, Shift: 1, RandomHops: 1}
	s := MustNew[int](cfg)
	if got := cfg.K(); got != 9 {
		t.Fatalf("K = %d, want 9", got)
	}
	h := s.NewHandle()
	for i := 0; i < 1000; i++ {
		h.Push(i)
	}
	seen := make(map[int]bool)
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("recovered %d values", len(seen))
	}
}

// TestHugeWidth: widths far beyond the thread count must work (they only
// cost memory and search length).
func TestHugeWidth(t *testing.T) {
	s := MustNew[int](Config{Width: 1024, Depth: 4, Shift: 4, RandomHops: 2})
	h := s.NewHandle()
	for i := 0; i < 500; i++ {
		h.Push(i)
	}
	if got := s.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	for i := 0; i < 500; i++ {
		if _, ok := h.Pop(); !ok {
			t.Fatalf("premature empty at %d", i)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop after drain returned ok")
	}
}

// TestPushOnlyThenGlobalReflectsLoad: after n pushes, Global must have
// risen to roughly n/width (within one shift), because the window tracks
// the per-sub-stack population.
func TestPushOnlyThenGlobalReflectsLoad(t *testing.T) {
	cfg := Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 0}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	const n = 4000
	for i := 0; i < n; i++ {
		h.Push(i)
	}
	g := s.Global()
	perSub := int64(n / cfg.Width)
	if g < perSub-cfg.Shift || g > perSub+2*cfg.Shift {
		t.Fatalf("Global = %d after %d pushes over %d sub-stacks; want near %d",
			g, n, cfg.Width, perSub)
	}
}

// TestAlternatingChurnKeepsWindowStill: balanced push/pop at a standing
// population should rarely move the window (locality: operations stay
// inside the band).
func TestAlternatingChurnKeepsWindowStill(t *testing.T) {
	cfg := Config{Width: 4, Depth: 32, Shift: 32, RandomHops: 1}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 200; i++ {
		h.Push(i)
	}
	h.ResetStats()
	for i := 0; i < 10000; i++ {
		h.Push(i)
		h.Pop()
	}
	st := h.Stats()
	moves := st.WindowRaises + st.WindowLowers
	if moves > 20 {
		t.Fatalf("window moved %d times during balanced churn; locality broken", moves)
	}
}

// TestTryPopDoesNotMoveWindow: TryPop must never change Global.
func TestTryPopDoesNotMoveWindow(t *testing.T) {
	cfg := Config{Width: 2, Depth: 2, Shift: 2, RandomHops: 0}
	s := MustNew[int](cfg)
	h := s.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	gBefore := s.Global()
	for i := 0; i < 50; i++ {
		h.TryPop()
	}
	if got := s.Global(); got != gBefore {
		t.Fatalf("TryPop moved Global from %d to %d", gBefore, got)
	}
}

// TestInterleavedHandlesShareWindow: two handles on one stack observe each
// other's window movements (Global is shared state).
func TestInterleavedHandlesShareWindow(t *testing.T) {
	cfg := Config{Width: 2, Depth: 2, Shift: 2, RandomHops: 0}
	s := MustNew[int](cfg)
	h1, h2 := s.NewHandle(), s.NewHandle()
	for i := 0; i < 100; i++ {
		h1.Push(i)
	}
	raised := s.Global()
	if raised == cfg.Depth {
		t.Fatal("pushes did not raise the window; test premise broken")
	}
	// h2 pops: the same Global governs it.
	for {
		if _, ok := h2.Pop(); !ok {
			break
		}
	}
	if got := s.Global(); got != cfg.Depth {
		t.Fatalf("Global = %d after h2 drained, want floor %d", got, cfg.Depth)
	}
}

// TestConcurrentPushersOnly: pure producers; population and Len must match
// the push count afterwards.
func TestConcurrentPushersOnly(t *testing.T) {
	s := MustNew[uint64](Config{Width: 8, Depth: 4, Shift: 4, RandomHops: 2})
	const workers, perW = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != workers*perW {
		t.Fatalf("Len = %d, want %d", got, workers*perW)
	}
	counts := s.SubCounts()
	var min, max int64 = counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// The window keeps sub-stacks within roughly depth+shift of each other.
	if spread := max - min; spread > 3*(s.Config().Depth+s.Config().Shift) {
		t.Fatalf("sub-stack spread %d far exceeds window discipline (counts %v)", spread, counts)
	}
}
