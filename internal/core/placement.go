package core

import "stack2d/internal/xrand"

// NUMA-aware width placement (DESIGN.md §7). The paper's Figure-2 cliff at
// P > 8 is an inter-socket coherence effect: once threads span sockets,
// every descriptor CAS can force a cross-socket cache-line transfer. The
// placement subsystem attacks it from both sides — *homing* (each sub-stack
// slot is assigned a socket, and width growth places new slots on the
// socket whose contention asked for them) and *probe order* (a handle that
// knows its socket visits same-socket slots before remote ones, within the
// unchanged window discipline). Homing and probe order never touch window
// validity, so the Theorem 1 relaxation bound is preserved; only the
// order in which candidate slots are inspected changes.
//
// On the native container (one hardware thread) the socket model is purely
// logical; internal/sim prices it on the paper's 2-socket machine, which is
// where cmd/adapttune's local-vs-round-robin A/B gate demonstrates the win
// deterministically.

// MaxPlacementSockets caps the socket ids the placement subsystem (and the
// per-socket CAS attribution in OpStats) reasons about. Larger ids are
// folded modulo this bound.
const MaxPlacementSockets = 8

// heuristicCoresPerSocket is the logical cores-per-socket the handle
// creation-order heuristic assumes, mirroring the simulated machine
// (sim.DefaultMachine: 2×8 cores) and the harness's fill-socket-0-first
// worker pinning.
const heuristicCoresPerSocket = 8

// HeuristicSocket maps a creation-order index to a socket the way the
// harness pins workers to cores: cores fill socket 0 first, 8 logical
// cores per socket, wrapping across the configured socket count (indices
// 0..7 → socket 0, 8..15 → socket 1 on a 2-socket machine, then around).
// NewHandle uses it to give each handle a default socket hint;
// Handle.Pin overrides it with ground truth when the caller has any.
func HeuristicSocket(order, sockets int) int {
	if sockets <= 1 || order < 0 {
		return 0
	}
	return (order / heuristicCoresPerSocket) % sockets
}

// PlacementPolicy decides which socket each sub-structure slot is homed on
// when the geometry widens, and whether operations should exploit the homes
// by probing same-socket slots first. Implementations must be pure
// functions of their arguments (they are consulted under the
// reconfiguration lock and from the simulation targets). The two provided
// policies are LocalFirst (the default when placement is enabled) and
// RoundRobin (the pre-placement behaviour, kept for A/B runs).
type PlacementPolicy interface {
	// Name labels the policy in diagnostics ("local-first", "round-robin").
	Name() string
	// Home picks the socket for one new slot: idx is the slot's index in a
	// geometry widening to width slots, counts[s] is how many slots are
	// already homed on socket s (slots placed earlier in the same widening
	// included), and requester is the socket whose contention asked for
	// the growth, or -1 when unknown. The result must be in
	// [0, len(counts)); out-of-range results are clamped to socket 0.
	Home(idx, width int, counts []int, requester int) int
	// LocalProbeOrder reports whether handles should visit slots homed on
	// their own socket before remote ones (see Handle.Pin).
	LocalProbeOrder() bool
}

// RoundRobin returns the placement policy that interleaves slot homes
// across sockets by index and leaves the probe order socket-blind — the
// structure behaves exactly as it did before placement existed, which is
// what makes it the A/B baseline for LocalFirst.
func RoundRobin() PlacementPolicy { return roundRobin{} }

type roundRobin struct{}

func (roundRobin) Name() string { return "round-robin" }
func (roundRobin) Home(idx, width int, counts []int, requester int) int {
	return idx % len(counts)
}
func (roundRobin) LocalProbeOrder() bool { return false }

// LocalFirst returns the default placement policy: a new slot is homed on
// the requesting socket until that socket holds its fair share
// (⌈width/sockets⌉ slots), then spills to the least-loaded socket (lowest
// id on ties); with no requester attribution it degenerates to a balanced
// interleave. Handles probe same-socket slots first, so the window's hot
// slots stay intra-socket while the window discipline is untouched.
func LocalFirst() PlacementPolicy { return localFirst{} }

type localFirst struct{}

func (localFirst) Name() string { return "local-first" }
func (localFirst) Home(idx, width int, counts []int, requester int) int {
	sockets := len(counts)
	if requester >= 0 && requester < sockets {
		quota := (width + sockets - 1) / sockets
		if counts[requester] < quota {
			return requester
		}
	}
	best := 0
	for s := 1; s < sockets; s++ {
		if counts[s] < counts[best] {
			best = s
		}
	}
	return best
}
func (localFirst) LocalProbeOrder() bool { return true }

// PlaceSlots extends a slot→socket home map to width slots using policy on
// a machine with the given socket count: existing homes (clamped into
// range) are preserved, new slots are assigned one by one through
// policy.Home with the requester attribution. It is the single home-
// assignment routine shared by the stack, the queue and the simulation
// targets, so the same policy produces the same layout everywhere. The
// returned slice is freshly allocated; homes may be nil.
func PlaceSlots(policy PlacementPolicy, homes []int, width, requester, sockets int) []int {
	if sockets < 1 {
		sockets = 1
	}
	if policy == nil {
		policy = RoundRobin()
	}
	out := make([]int, width)
	counts := make([]int, sockets)
	n := len(homes)
	if n > width {
		n = width
	}
	for i := 0; i < n; i++ {
		s := homes[i]
		if s < 0 || s >= sockets {
			s = 0
		}
		out[i] = s
		counts[s]++
	}
	for i := n; i < width; i++ {
		s := policy.Home(i, width, counts, requester)
		if s < 0 || s >= sockets {
			s = 0
		}
		out[i] = s
		counts[s]++
	}
	return out
}

// ShrinkSurvivors picks which keep slots of a width-shrinking geometry
// survive, returning their indices in ascending order. Socket-blind
// policies (and shrinks with no requester attribution) keep the leading
// slots — the pre-placement behaviour. Under a local-probe policy with a
// known requester the shrink prefers dropping *remote* slots (homes other
// than the requester's socket, scanning from the tail), so the capacity
// that remains is the capacity the pressured socket can reach cheaply;
// only when every remote slot is gone does it drop local ones.
func ShrinkSurvivors(policy PlacementPolicy, homes []int, keep, requester int) []int {
	width := len(homes)
	if keep > width {
		keep = width
	}
	out := make([]int, 0, keep)
	if policy == nil || !policy.LocalProbeOrder() || requester < 0 {
		for i := 0; i < keep; i++ {
			out = append(out, i)
		}
		return out
	}
	drop := make([]bool, width)
	need := width - keep
	for i := width - 1; i >= 0 && need > 0; i-- {
		if homes[i] != requester {
			drop[i] = true
			need--
		}
	}
	for i := width - 1; i >= 0 && need > 0; i-- {
		if !drop[i] {
			drop[i] = true
			need--
		}
	}
	for i, d := range drop {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// ShrinkPlan bundles ShrinkSurvivors with the homes the surviving slots
// keep: surv[i] is the i-th surviving slot's index in the old geometry and
// survHomes[i] its socket. The stack, the queue and cmd/adapttune's sim
// targets all shrink through this one helper, so a change to survivor
// selection cannot make them diverge.
func ShrinkPlan(policy PlacementPolicy, homes []int, keep, requester int) (surv, survHomes []int) {
	surv = ShrinkSurvivors(policy, homes, keep, requester)
	survHomes = make([]int, 0, len(surv))
	for _, i := range surv {
		survHomes = append(survHomes, homes[i])
	}
	return surv, survHomes
}

// BuildProbePlan constructs one handle's probe permutation over a homed
// slot array: the handle's same-socket slots first in index order
// (decorrelated across handles by their anchors), then the remote slots
// rotated by rot — the rotation keeps same-socket handles that exhaust
// their local slots from all entering the spill section at the same slot
// and convoying on one line. It returns the permutation, its slot →
// position inverse (so a search can resume coverage from its locality
// anchor), and the local-slot count. Shared by the native handles (which
// cache one plan per geometry) and the simulated thread bodies.
func BuildProbePlan(homes []int, socket, rot int) (ord, pos []int, localN int) {
	width := len(homes)
	ord = make([]int, 0, width)
	for i, h := range homes {
		if h == socket {
			ord = append(ord, i)
		}
	}
	localN = len(ord)
	if m := width - localN; m > 0 {
		remote := make([]int, 0, m)
		for i, h := range homes {
			if h != socket {
				remote = append(remote, i)
			}
		}
		rot %= m
		if rot < 0 {
			rot += m
		}
		ord = append(ord, remote[rot:]...)
		ord = append(ord, remote[:rot]...)
	}
	pos = make([]int, width)
	for at, slot := range ord {
		pos[slot] = at
	}
	return ord, pos, localN
}

// HopIdx picks a random slot for an exploratory or contention hop:
// uniform over all slots when placement-blind (ord == nil), uniform over
// the handle's same-socket slots under local probe order (falling back to
// any slot for a socket that homes none).
func HopIdx(rng *xrand.State, width int, ord []int, localN int) int {
	if ord == nil || localN == 0 {
		return rng.Intn(width)
	}
	return ord[rng.Intn(localN)]
}

// PressureSocket returns the socket with the most attributed CAS failures
// in this stats sample, or -1 when none were recorded — the widening
// requester the adaptive controller reports to ReconfigureOnSocket.
func (s OpStats) PressureSocket() int {
	best, bestN := -1, uint64(0)
	for i, n := range s.SocketCAS {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}
