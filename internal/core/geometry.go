package core

import (
	"runtime"

	"stack2d/internal/yield"
)

// geometry is one immutable snapshot of the stack's structure: the window
// parameters plus the sub-stack array they govern. The Stack publishes the
// active geometry through an atomic pointer; operations pin the pointer for
// their whole duration (see Handle.pin), so a reconfiguration never changes
// the rules under a running search — in-flight operations finish on the
// geometry they started with.
//
// Geometries are linked by a monotonically increasing epoch. Width changes
// build a new sub-stack slice that *shares* the surviving slots with the
// old geometry (slot pointers, not copies), which is what makes growth free
// of migration: items stay where they are and simply become visible to the
// wider geometry. Only a shrink strands items, in the dropped slots; those
// are migrated after the old epoch quiesces (see Stack.reconfigureLocked).
type geometry[T any] struct {
	epoch uint64
	width int
	depth int64
	shift int64
	hops  int
	subs  []*subStack[T]

	// Placement (DESIGN.md §7): homes maps each slot to its socket
	// (len == width; all zeros while placement is off), nsockets is the
	// socket count the homes were computed for, and localProbe selects the
	// socket-aware search (false keeps the pre-placement hot path
	// unchanged). Handles derive their probe permutations from homes
	// lazily (Handle.probe), each with a private rotation of the remote
	// section, so same-socket handles don't convoy when they spill.
	homes      []int
	nsockets   int
	localProbe bool
}

// config re-packages the geometry's parameters as a Config.
func (g *geometry[T]) config() Config {
	return Config{Width: g.width, Depth: g.depth, Shift: g.shift, RandomHops: g.hops}
}

// freshGeometry allocates a geometry with all-new empty sub-stacks.
func freshGeometry[T any](cfg Config, epoch uint64) *geometry[T] {
	g := &geometry[T]{
		epoch: epoch,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
		subs:  make([]*subStack[T], cfg.Width),
	}
	empty := &descriptor[T]{}
	for i := range g.subs {
		ss := new(subStack[T])
		ss.desc.P.Store(empty)
		g.subs[i] = ss
	}
	g.homes = make([]int, cfg.Width)
	g.nsockets = 1
	return g
}

// stampPlacement writes the slot-home map and the probe mode onto a
// geometry being built. Caller holds reMu, so placePolicy/placeSockets are
// stable.
func (s *Stack[T]) stampPlacement(g *geometry[T], homes []int) {
	g.homes = homes
	g.nsockets = s.placeSockets
	g.localProbe = s.placePolicy != nil && s.placePolicy.LocalProbeOrder() && s.placeSockets > 1
}

// SetPlacement installs the stack's socket-placement model (DESIGN.md §7):
// policy decides the home socket of every sub-stack slot — the current
// slots are re-homed immediately from scratch, and every future width
// growth places its new slots through the policy with the requesting
// socket's attribution (see ReconfigureOnSocket) — and sockets is the
// machine's socket count, clamped to [1, MaxPlacementSockets]. Under a
// local-probe policy (LocalFirst) operation searches visit slots homed on
// the handle's socket (Handle.Pin, or the creation-order heuristic) before
// remote ones. Placement never changes the window validity rules — only
// slot homes and visit order — so the Theorem 1 relaxation bound is
// unaffected. Pass sockets <= 1, or the RoundRobin policy, to restore the
// placement-blind behaviour. Re-homing swaps the geometry wholesale (no
// item moves), so SetPlacement is safe concurrently with operations,
// though handles created before it keep the heuristic socket computed for
// the old socket count until they are re-pinned.
func (s *Stack[T]) SetPlacement(policy PlacementPolicy, sockets int) {
	s.reMu.Lock()
	defer s.reMu.Unlock()
	if sockets < 1 {
		sockets = 1
	}
	if sockets > MaxPlacementSockets {
		sockets = MaxPlacementSockets
	}
	s.placePolicy, s.placeSockets = policy, sockets
	old := s.geo.Load()
	next := &geometry[T]{
		epoch: old.epoch + 1,
		width: old.width,
		depth: old.depth,
		shift: old.shift,
		hops:  old.hops,
		subs:  old.subs,
	}
	s.stampPlacement(next, PlaceSlots(policy, nil, old.width, -1, sockets))
	s.geo.Store(next)
	s.emitStruct(StructEvent{
		Kind: StructPlacement, Epoch: next.epoch,
		OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
		Requester: -1, Sockets: sockets,
	})
}

// Placement returns a copy of the current slot→socket home map (all zeros
// while placement is off). Diagnostics, tests and cmd/adapttune reporting.
func (s *Stack[T]) Placement() []int {
	g := s.geo.Load()
	out := make([]int, len(g.homes))
	copy(out, g.homes)
	return out
}

// PlacementSocketFor returns the socket the creation-order heuristic
// assigns the i-th handle (HeuristicSocket over the configured socket
// count): the harness pins worker i's handle with it so the native
// structures see the same fill-socket-0-first layout the simulated
// machine uses.
func (s *Stack[T]) PlacementSocketFor(i int) int {
	return HeuristicSocket(i, s.geo.Load().nsockets)
}

// Reconfigure atomically replaces the stack's geometry with cfg. It is safe
// to call concurrently with operations (and with other Reconfigure calls,
// which serialise). Items are never lost or duplicated:
//
//   - Depth/shift/hops changes swap only the parameters; the sub-stack
//     array is shared between the old and new geometry.
//   - Width growth appends fresh empty sub-stacks; existing slots are
//     shared, so no item moves.
//   - Width shrink drops the trailing slots from the new geometry, waits
//     for every operation pinned to the old geometry to finish (epoch
//     quiescence), then splices each stranded chain onto the least-loaded
//     surviving sub-stack in one descriptor CAS (the warm handoff; see
//     spliceStranded), preserving the chain's relative LIFO order; the
//     Global window advances once, batched, instead of once per exhausted
//     band as under the retired funnel migration.
//
// Semantics during a transition: operations still in flight on the old
// geometry follow its window rules, so for the duration of the handover the
// effective relaxation bound is max(K_old, K_new) plus (for a shrink) the
// spliced chain's length plus its target's population — the quantity
// tracked by ShrinkDisplacementBound. A shrink additionally makes the stranded items
// invisible to new-geometry operations until the migration completes
// (Reconfigure returns only after it has): a concurrent Pop inside that
// window may report empty even though stranded items exist. Callers that
// treat empty as terminal — drain loops, shutdown paths — should therefore
// not shrink width concurrently with consumers racing the stack to empty.
// Once the migration finishes the active geometry's Theorem 1 bound
// applies again. See DESIGN.md §4.
//
// Reconfigure must not be called from inside an operation on the same
// stack (there is no way to do so through the public API).
func (s *Stack[T]) Reconfigure(cfg Config) error {
	return s.ReconfigureOnSocket(cfg, -1)
}

// ReconfigureOnSocket is Reconfigure with placement attribution: requester
// is the socket whose contention asked for the change (-1 when unknown —
// plain Reconfigure). Width growth hands the requester to the placement
// policy, so LocalFirst fills the asking socket's slots first; width
// shrink prefers dropping slots remote to the requester (ShrinkSurvivors),
// keeping the surviving capacity on the pressured socket. With placement
// off (or no attribution) it behaves exactly like Reconfigure. This is the
// entry point internal/adapt's controller uses when the target advertises
// placement (adapt.SocketAware).
func (s *Stack[T]) ReconfigureOnSocket(cfg Config, requester int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.reMu.Lock()
	defer s.reMu.Unlock()
	return s.reconfigureLocked(cfg, requester)
}

// SetWindow adjusts depth and shift, keeping width and hops. This is the
// cheap reconfiguration path: no migration, no quiescence wait.
func (s *Stack[T]) SetWindow(depth, shift int64) error {
	s.reMu.Lock()
	defer s.reMu.Unlock()
	cfg := s.geo.Load().config()
	cfg.Depth, cfg.Shift = depth, shift
	return s.reconfigureLocked(cfg, -1)
}

// SetWidth adjusts the sub-stack count, keeping the window parameters.
func (s *Stack[T]) SetWidth(width int) error {
	s.reMu.Lock()
	defer s.reMu.Unlock()
	cfg := s.geo.Load().config()
	cfg.Width = width
	return s.reconfigureLocked(cfg, -1)
}

func (s *Stack[T]) reconfigureLocked(cfg Config, requester int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := s.geo.Load()
	if old.config() == cfg {
		return nil
	}
	next := &geometry[T]{
		epoch: old.epoch + 1,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
	}
	var dropped []*subStack[T]
	switch {
	case cfg.Width == old.width:
		next.subs = old.subs
		s.stampPlacement(next, old.homes)
	case cfg.Width > old.width:
		next.subs = make([]*subStack[T], cfg.Width)
		copy(next.subs, old.subs)
		empty := &descriptor[T]{}
		for i := old.width; i < cfg.Width; i++ {
			ss := new(subStack[T])
			ss.desc.P.Store(empty)
			next.subs[i] = ss
		}
		// New slots are homed by the placement policy, requester first
		// under LocalFirst (a no-op map of zeros while placement is off).
		s.stampPlacement(next, PlaceSlots(s.placePolicy, old.homes, cfg.Width, requester, s.placeSockets))
	default:
		// Shrink: keep the survivors ShrinkPlan picks (the leading slots
		// when placement-blind; preferring to drop slots remote to the
		// requester otherwise), strand the rest for migration.
		surv, homes := ShrinkPlan(s.placePolicy, old.homes, cfg.Width, requester)
		keep := make(map[int]bool, len(surv))
		next.subs = make([]*subStack[T], 0, cfg.Width)
		for _, i := range surv {
			keep[i] = true
			next.subs = append(next.subs, old.subs[i])
		}
		for i, ss := range old.subs {
			if !keep[i] {
				dropped = append(dropped, ss)
			}
		}
		s.stampPlacement(next, homes)
	}
	// Director yield point: the instant before the new window rules become
	// visible to fresh pins — a suspended schedule here interleaves
	// old-geometry operations against the fully built successor.
	gate(yield.PointGeometryPublish)
	s.geo.Store(next)

	// Re-establish global >= depth so Pop's floor arithmetic starts sane on
	// the new geometry. (Stale-geometry pops may pull it below again for a
	// moment; the operations clamp the floor at zero, so this is a
	// performance nicety, not a safety requirement.)
	for {
		g := s.global.V.Load()
		if g >= cfg.Depth || s.global.V.CompareAndSwap(g, cfg.Depth) {
			break
		}
	}

	// The reconfiguration event marks the publish point: it precedes any
	// handoff event of the same shrink, so a drained trace reads causally
	// (reconfig, then its migration, then the controller tick that reported
	// both).
	s.emitStruct(StructEvent{
		Kind: StructReconfig, Epoch: next.epoch,
		OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
		Requester: requester, Stranded: len(dropped),
	})

	if len(dropped) > 0 {
		// Items in the dropped slots are invisible to the new geometry.
		// Wait until no operation can touch them through the old one, then
		// move them into the live window. After quiescence the slots are
		// exclusively ours (new-geometry searches never index past width).
		s.waitQuiesce(old.epoch)
		disp := s.spliceStranded(next, dropped)
		s.emitStruct(StructEvent{
			Kind: StructShrinkHandoff, Epoch: next.epoch,
			OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
			Requester: requester, Stranded: len(dropped), Displacement: disp,
		})
	}
	return nil
}

// spliceStranded is the warm shrink handoff: each dropped sub-stack's whole
// chain is spliced, in one descriptor CAS, on top of the surviving sub-stack
// currently holding the fewest items (read from the live descriptor
// counters), followed by one batched Global raise that restores push
// headroom. Compared with the earlier approach — re-pushing every stranded
// item through one internal handle's normal Push path, which forced a
// window raise each time the re-pushes exhausted the band (the transient
// k-spike of DESIGN.md §4 invariant 2) — this advances the window once
// instead of once per exhausted band, touches each target once per dropped
// slot instead of once per item, and spreads the load by the live counters
// instead of piling it wherever one handle's search happened to land. The
// stranded chain keeps its internal order; the descriptor count stays equal
// to the real list length, so window validity and emptiness detection are
// unaffected.
//
// Safety: after old-epoch quiescence the dropped slots and their nodes are
// exclusively ours, so writing the chain bottom's next pointer is race-free
// until the CAS publishes it; a CAS loss to a concurrent operation on the
// target just re-picks the least-loaded target and retries.
//
// The returned value is this migration's addition to the displacement
// bound (also accumulated into shrinkDisp), which the caller forwards to
// the shrink-handoff observer event.
func (s *Stack[T]) spliceStranded(next *geometry[T], dropped []*subStack[T]) int64 {
	var disp int64
	for _, ss := range dropped {
		d := ss.load()
		ss.desc.P.Store(&descriptor[T]{})
		if d.count == 0 {
			continue
		}
		bottom := d.top
		for bottom.next != nil {
			bottom = bottom.next
		}
		for {
			tgt, td := next.subs[0], next.subs[0].load()
			for _, cand := range next.subs[1:] {
				if cd := cand.load(); cd.count < td.count {
					tgt, td = cand, cd
				}
			}
			bottom.next = td.top
			if tgt.cas(td, &descriptor[T]{top: d.top, count: td.count + d.count}) {
				disp += td.count + d.count
				break
			}
		}
	}
	// Each migrated item lands above at most its target's population and
	// below nothing it displaced; the sum of (stranded + target) populations
	// over the splices is therefore an upper bound on the extra LIFO
	// displacement this shrink can have caused.
	s.shrinkDisp.Add(disp)

	// Restore push headroom. On a large shrink every survivor receives a
	// chain, so all counts can sit at or above the untouched Global at
	// once and the next Push would stall through repeated full-coverage
	// passes, each raising Global by only shift and restarting every
	// concurrent search — the funnel's spike in client clothing. One
	// batched raise to shift headroom above the least-loaded survivor is
	// the advance the window would have made had the migrated items been
	// pushed normally; counts stay within the usual band, and pops at
	// worst lower the window one extra round. (Global is not monotone —
	// concurrent pops may lower it — but one successful raise-if-below
	// CAS is all this needs.)
	if disp > 0 {
		minCount := next.subs[0].load().count
		for _, ss := range next.subs[1:] {
			if c := ss.load().count; c < minCount {
				minCount = c
			}
		}
		for target := minCount + next.shift; ; {
			cur := s.global.V.Load()
			if cur >= target || s.global.V.CompareAndSwap(cur, target) {
				break
			}
		}
	}
	return disp
}

// waitQuiesce blocks until no handle is pinned to an epoch <= oldEpoch.
// Operations are lock-free and finite, so this terminates; new operations
// pin the already-published new geometry and do not delay it. A collected
// handle (weak pointer gone nil) is idle by definition: a goroutine still
// running an operation keeps its handle reachable.
func (s *Stack[T]) waitQuiesce(oldEpoch uint64) {
	for {
		busy := false
		s.hMu.Lock()
		for _, entry := range s.handles {
			h := entry.wp.Value()
			if h == nil {
				continue
			}
			if e := h.epoch.Load(); e != 0 && e <= oldEpoch {
				busy = true
				break
			}
		}
		s.hMu.Unlock()
		if !busy {
			return
		}
		// Director yield point: a directed reconfiguration parks here so
		// the scheduler can run the pinned operations to completion instead
		// of spinning the wait loop forever (yield.PointWait semantics).
		gate(yield.PointWait)
		runtime.Gosched()
	}
}
