package core

// StructEventKind enumerates the structural transitions a core.Observer is
// told about. The twodqueue package reuses this vocabulary (and the
// Observer interface) so one consumer — internal/obs's tracer — serves
// both structures.
type StructEventKind uint8

const (
	// StructReconfig: a new geometry was published (Reconfigure, SetWindow,
	// SetWidth, or the adaptive controller). Emitted at the publish point,
	// before any shrink migration runs, so a reconfiguration's event always
	// precedes its handoff's.
	StructReconfig StructEventKind = iota + 1
	// StructShrinkHandoff: a width shrink's warm migration completed;
	// Displacement carries the bound the splice added (the increment of
	// ShrinkDisplacementBound).
	StructShrinkHandoff
	// StructPlacement: SetPlacement rebuilt the slot→socket home map.
	StructPlacement
)

// StructEvent describes one structural transition. Width/Depth/Shift (and
// Epoch) are the geometry now active; OldWidth is the superseded width,
// Requester the socket attribution the change carried (-1 when none),
// Stranded the number of slots the change dropped,
// Displacement the migration's addition to the displacement bound, and
// Sockets the configured socket count (placement events). Stranded counts
// dropped slots, whether or not they held items.
type StructEvent struct {
	Kind         StructEventKind
	Epoch        uint64
	OldWidth     int
	Width        int
	Depth        int64
	Shift        int64
	Requester    int
	Stranded     int
	Displacement int64
	Sockets      int
}

// Observer receives structural transition events. Implementations must be
// fast and must not call back into the emitting structure: they run on the
// reconfiguring goroutine with the reconfiguration lock held. internal/obs
// provides the ring-buffer implementation (obs.StructTracer).
type Observer interface {
	ObserveStruct(StructEvent)
}

// SetObserver installs (or, with nil, removes) the stack's structural
// observer. Emission sites all run under the reconfiguration lock, which
// SetObserver also takes, so installation is race-free against concurrent
// reconfigurations. The operation hot path never reads the observer —
// events exist only on reconfiguration paths — so an uninstrumented stack
// pays literally nothing and an instrumented one pays nothing per
// operation (DESIGN.md §8).
func (s *Stack[T]) SetObserver(o Observer) {
	s.reMu.Lock()
	s.obsv = o
	s.reMu.Unlock()
}

// emitStruct reports ev to the installed observer, if any; reMu held.
func (s *Stack[T]) emitStruct(ev StructEvent) {
	if s.obsv != nil {
		s.obsv.ObserveStruct(ev)
	}
}
