package core

import (
	"testing"

	"stack2d/internal/yield"
)

// TestOpAllocsPinned pins the steady-state allocation cost of the hot path,
// sampling branch included (AllocsPerRun's iteration count crosses many
// 1-in-64 sampling strides): Push allocates exactly its node and the
// replacement descriptor, Pop only the replacement descriptor. The latency
// sampler must add nothing — the countdown is a plain field decrement and
// time.Now does not allocate — and neither must an installed structural
// observer, which is never read on the operation path.
func TestOpAllocsPinned(t *testing.T) {
	run := func(t *testing.T, s *Stack[uint64]) {
		h := s.NewHandle()
		var i uint64
		if got := testing.AllocsPerRun(10000, func() { h.Push(i); i++ }); got != 2 {
			t.Fatalf("Push allocates %v per op, pinned at 2 (node + descriptor)", got)
		}
		if got := testing.AllocsPerRun(5000, func() { h.Pop() }); got != 1 {
			t.Fatalf("Pop allocates %v per op, pinned at 1 (descriptor)", got)
		}
	}
	t.Run("no-observer", func(t *testing.T) {
		run(t, MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2}))
	})
	t.Run("observer-installed", func(t *testing.T) {
		s := MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2})
		s.SetObserver(countingObserver{})
		run(t, s)
	})
	// The director's yield gates must not change the pinned costs either
	// way: nil (production) is the baseline above; an armed no-op hook may
	// add indirect calls on the slow paths but never an allocation.
	t.Run("gate-armed-noop", func(t *testing.T) {
		Gate = func(yield.Point) {}
		defer func() { Gate = nil }()
		// Depth 1 churns the window so the window-move gate site actually
		// executes inside the measured loop.
		s := MustNew[uint64](Config{Width: 1, Depth: 1, Shift: 1, RandomHops: 0})
		h := s.NewHandle()
		var i uint64
		if got := testing.AllocsPerRun(10000, func() { h.Push(i); i++; h.Pop() }); got != 3 {
			t.Fatalf("armed-gate Push+Pop allocates %v per pair, pinned at 3 (node + 2 descriptors)", got)
		}
	})
}

// TestBufferedAllocsAmortised pins the combined-publication payoff: with an
// op buffer of cap 16, a buffered push/pop pair amortises to strictly less
// than one allocation per operation. A publish costs one node slab plus one
// descriptor per CAS group and a refill one descriptor per group, so the
// steady state is about 3/cap allocations per pair — against 3 for the
// unbuffered pair pinned above.
func TestBufferedAllocsAmortised(t *testing.T) {
	s := MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2})
	h := s.NewHandle()
	h.SetOpBuffer(16)
	// Drive push-heavy then pop-heavy windows so both the publish and the
	// refill paths run inside the measured loop (a strict pair would elide
	// every pop against its pending push and never touch the structure).
	var i uint64
	got := testing.AllocsPerRun(5000, func() {
		for j := 0; j < 16; j++ {
			h.BufferedPush(i)
			i++
		}
		for j := 0; j < 16; j++ {
			if _, ok := h.BufferedPop(); !ok {
				t.Fatal("BufferedPop missed with items available")
			}
		}
	})
	// 32 ops per run; < 32 allocs/run means < 1 alloc/op. The measured
	// steady state is ~3 (slab + 2 descriptors); leave slack for an extra
	// CAS-split group without letting a per-op regression slip through.
	if got >= 16 {
		t.Fatalf("buffered cycle allocates %v per 32 ops — amortisation lost (want < 16, ~3 expected)", got)
	}
}

type countingObserver struct{}

func (countingObserver) ObserveStruct(StructEvent) {}
