package core

import "testing"

// TestOpAllocsPinned pins the steady-state allocation cost of the hot path,
// sampling branch included (AllocsPerRun's iteration count crosses many
// 1-in-64 sampling strides): Push allocates exactly its node and the
// replacement descriptor, Pop only the replacement descriptor. The latency
// sampler must add nothing — the countdown is a plain field decrement and
// time.Now does not allocate — and neither must an installed structural
// observer, which is never read on the operation path.
func TestOpAllocsPinned(t *testing.T) {
	run := func(t *testing.T, s *Stack[uint64]) {
		h := s.NewHandle()
		var i uint64
		if got := testing.AllocsPerRun(10000, func() { h.Push(i); i++ }); got != 2 {
			t.Fatalf("Push allocates %v per op, pinned at 2 (node + descriptor)", got)
		}
		if got := testing.AllocsPerRun(5000, func() { h.Pop() }); got != 1 {
			t.Fatalf("Pop allocates %v per op, pinned at 1 (descriptor)", got)
		}
	}
	t.Run("no-observer", func(t *testing.T) {
		run(t, MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2}))
	})
	t.Run("observer-installed", func(t *testing.T) {
		s := MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2})
		s.SetObserver(countingObserver{})
		run(t, s)
	})
}

type countingObserver struct{}

func (countingObserver) ObserveStruct(StructEvent) {}
