package core

import "sync/atomic"

// OpStats counts the work a Handle performed, supporting the step-
// complexity analysis the paper's full version develops: how many
// sub-stacks an operation inspects, how often CAS fails (contention), and
// how often the window has to move. Counters are handle-local and updated
// without atomics; read them from the owning goroutine only (or after it
// has quiesced). For cross-goroutine sampling use Stack.StatsSnapshot,
// which reads the periodically flushed atomic copies instead.
type OpStats struct {
	Pushes    uint64 // completed Push operations
	Pops      uint64 // Pop operations returning a value
	EmptyPops uint64 // Pop operations reporting empty

	Probes       uint64 // sub-stack validations performed (all phases)
	RandomHops   uint64 // exploratory random hops taken
	CASFailures  uint64 // descriptor CAS failures (contention events)
	WindowRaises uint64 // successful Global += shift CASes by this handle
	WindowLowers uint64 // successful Global -= shift CASes by this handle
	Restarts     uint64 // searches restarted due to an observed Global change
}

// Ops returns the total completed operations.
func (s OpStats) Ops() uint64 { return s.Pushes + s.Pops + s.EmptyPops }

// ProbesPerOp returns the mean number of sub-stack validations per
// operation — the empirical step count.
func (s OpStats) ProbesPerOp() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.Probes) / float64(ops)
}

// CASFailuresPerOp returns the mean number of failed descriptor CASes per
// operation — the contention signal the adaptive controller steers on.
func (s OpStats) CASFailuresPerOp() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.CASFailures) / float64(ops)
}

// Add accumulates other into s (for aggregating per-worker stats).
func (s *OpStats) Add(other OpStats) {
	s.Pushes += other.Pushes
	s.Pops += other.Pops
	s.EmptyPops += other.EmptyPops
	s.Probes += other.Probes
	s.RandomHops += other.RandomHops
	s.CASFailures += other.CASFailures
	s.WindowRaises += other.WindowRaises
	s.WindowLowers += other.WindowLowers
	s.Restarts += other.Restarts
}

// Sub returns s - other field-wise, saturating at zero, for computing
// per-interval deltas between two snapshots (saturation guards against a
// handle resetting its counters between samples).
func (s OpStats) Sub(other OpStats) OpStats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return OpStats{
		Pushes:       sat(s.Pushes, other.Pushes),
		Pops:         sat(s.Pops, other.Pops),
		EmptyPops:    sat(s.EmptyPops, other.EmptyPops),
		Probes:       sat(s.Probes, other.Probes),
		RandomHops:   sat(s.RandomHops, other.RandomHops),
		CASFailures:  sat(s.CASFailures, other.CASFailures),
		WindowRaises: sat(s.WindowRaises, other.WindowRaises),
		WindowLowers: sat(s.WindowLowers, other.WindowLowers),
		Restarts:     sat(s.Restarts, other.Restarts),
	}
}

// Stats returns a copy of the handle's counters. Owner-goroutine only.
func (h *Handle[T]) Stats() OpStats { return h.stats }

// ResetStats zeroes the handle's counters (and their published copy).
// Owner-goroutine only. Samplers holding a previous StatsSnapshot baseline
// will see this as a shrinking total; OpStats.Sub saturates, so the
// affected interval reads as zero rather than garbage.
func (h *Handle[T]) ResetStats() {
	h.stats = OpStats{}
	h.FlushStats()
}

// statsFlushInterval is how many operations a handle completes between
// publications of its counters to the shared (atomic) copy. Snapshots are
// therefore at most this many operations per handle stale — far below the
// noise floor of any control interval — while the hot path pays only a
// local counter increment per operation.
const statsFlushInterval = 64

// SharedCounters is the atomically readable mirror of a handle's OpStats.
// Single writer (the owning goroutine, via flush); any reader.
type SharedCounters struct {
	pushes, pops, emptyPops              atomic.Uint64
	probes, randomHops, casFailures      atomic.Uint64
	windowRaises, windowLowers, restarts atomic.Uint64
}

func (c *SharedCounters) Store(st OpStats) {
	c.pushes.Store(st.Pushes)
	c.pops.Store(st.Pops)
	c.emptyPops.Store(st.EmptyPops)
	c.probes.Store(st.Probes)
	c.randomHops.Store(st.RandomHops)
	c.casFailures.Store(st.CASFailures)
	c.windowRaises.Store(st.WindowRaises)
	c.windowLowers.Store(st.WindowLowers)
	c.restarts.Store(st.Restarts)
}

func (c *SharedCounters) Load() OpStats {
	return OpStats{
		Pushes:       c.pushes.Load(),
		Pops:         c.pops.Load(),
		EmptyPops:    c.emptyPops.Load(),
		Probes:       c.probes.Load(),
		RandomHops:   c.randomHops.Load(),
		CASFailures:  c.casFailures.Load(),
		WindowRaises: c.windowRaises.Load(),
		WindowLowers: c.windowLowers.Load(),
		Restarts:     c.restarts.Load(),
	}
}

// maybeFlush publishes the handle's counters every statsFlushInterval
// completed operations; called from unpin on the owner goroutine.
func (h *Handle[T]) maybeFlush() {
	h.sinceFlush++
	if h.sinceFlush >= statsFlushInterval {
		h.FlushStats()
	}
}

// FlushStats immediately publishes the handle's counters to the shared
// copy read by Stack.StatsSnapshot. Owner-goroutine only. Useful when a
// worker quiesces and a sampler should see its final totals at once.
func (h *Handle[T]) FlushStats() {
	h.sinceFlush = 0
	h.shared.Store(h.stats)
}

// StatsSnapshot aggregates the published counters of every registered
// handle plus the retired totals of pruned ones. It is safe to call from
// any goroutine and does not perturb the operation hot path: handles
// publish their counters every statsFlushInterval operations, so the
// snapshot trails the truth by at most that many operations per active
// handle (and by the same amount, permanently, per abandoned handle).
// Because the registry holds each handle's counter mirror strongly, a
// collected-but-not-yet-pruned handle's work is still read here — the
// snapshot never transiently loses completed operations. Internal
// migration handles are excluded, so reconfiguration traffic does not
// read as client operations. This is the feed for internal/adapt's
// controller.
func (s *Stack[T]) StatsSnapshot() OpStats {
	s.hMu.Lock()
	out := s.retired
	for _, e := range s.handles {
		if h := e.wp.Value(); h != nil && h.hidden {
			continue
		}
		out.Add(e.shared.Load())
	}
	s.hMu.Unlock()
	return out
}
