package core

// OpStats counts the work a Handle performed, supporting the step-
// complexity analysis the paper's full version develops: how many
// sub-stacks an operation inspects, how often CAS fails (contention), and
// how often the window has to move. Counters are handle-local and updated
// without atomics; read them from the owning goroutine only (or after it
// has quiesced).
type OpStats struct {
	Pushes    uint64 // completed Push operations
	Pops      uint64 // Pop operations returning a value
	EmptyPops uint64 // Pop operations reporting empty

	Probes       uint64 // sub-stack validations performed (all phases)
	RandomHops   uint64 // exploratory random hops taken
	CASFailures  uint64 // descriptor CAS failures (contention events)
	WindowRaises uint64 // successful Global += shift CASes by this handle
	WindowLowers uint64 // successful Global -= shift CASes by this handle
	Restarts     uint64 // searches restarted due to an observed Global change
}

// Ops returns the total completed operations.
func (s OpStats) Ops() uint64 { return s.Pushes + s.Pops + s.EmptyPops }

// ProbesPerOp returns the mean number of sub-stack validations per
// operation — the empirical step count.
func (s OpStats) ProbesPerOp() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.Probes) / float64(ops)
}

// Add accumulates other into s (for aggregating per-worker stats).
func (s *OpStats) Add(other OpStats) {
	s.Pushes += other.Pushes
	s.Pops += other.Pops
	s.EmptyPops += other.EmptyPops
	s.Probes += other.Probes
	s.RandomHops += other.RandomHops
	s.CASFailures += other.CASFailures
	s.WindowRaises += other.WindowRaises
	s.WindowLowers += other.WindowLowers
	s.Restarts += other.Restarts
}

// Stats returns a copy of the handle's counters. Owner-goroutine only.
func (h *Handle[T]) Stats() OpStats { return h.stats }

// ResetStats zeroes the handle's counters. Owner-goroutine only.
func (h *Handle[T]) ResetStats() { h.stats = OpStats{} }
