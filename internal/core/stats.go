package core

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Latency sampling. One operation in latencySampleInterval is timed
// end-to-end (pin to unpin) and recorded into a log2-bucketed histogram in
// the handle's OpStats. The buckets are monotone counters like every other
// field, so they flush through the same SharedCounters mirror, aggregate
// through the same prune-retired registry, and subtract cleanly between
// StatsSnapshots — which is what lets internal/adapt compute interval P50/
// P99 estimates at runtime without the harness's offline sampler.
const (
	// latencySampleInterval is the sampling stride: 1 operation in this many
	// is timed. A power of two so the hot-path check is a mask test. At this
	// stride the amortised cost of the two clock reads is well under a
	// nanosecond per operation.
	latencySampleInterval = 64

	// NumLatencyBuckets is the histogram size. Bucket i holds samples whose
	// duration in nanoseconds has bit-length i, i.e. [2^(i-1), 2^i) ns;
	// bucket 0 holds sub-nanosecond readings and the last bucket absorbs
	// everything from ~67 ms up (scheduler stalls included).
	NumLatencyBuckets = 28
)

// LatencyBucket maps a sampled duration to its histogram bucket.
func LatencyBucket(d time.Duration) int {
	ns := int64(d)
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumLatencyBuckets {
		b = NumLatencyBuckets - 1
	}
	return b
}

// latencyBucketBounds returns the duration range bucket i covers, used for
// within-bucket interpolation when estimating percentiles.
func latencyBucketBounds(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, 1
	}
	return time.Duration(int64(1) << (i - 1)), time.Duration(int64(1) << i)
}

// OpStats counts the work a Handle performed, supporting the step-
// complexity analysis the paper's full version develops: how many
// sub-stacks an operation inspects, how often CAS fails (contention), and
// how often the window has to move. Counters are handle-local and updated
// without atomics; read them from the owning goroutine only (or after it
// has quiesced). For cross-goroutine sampling use Stack.StatsSnapshot,
// which reads the periodically flushed atomic copies instead.
type OpStats struct {
	Pushes    uint64 // completed Push operations
	Pops      uint64 // Pop operations returning a value
	EmptyPops uint64 // Pop operations reporting empty

	Probes       uint64 // sub-stack validations performed (all phases)
	RandomHops   uint64 // exploratory random hops taken
	CASFailures  uint64 // descriptor CAS failures (contention events)
	WindowRaises uint64 // successful Global += shift CASes by this handle
	WindowLowers uint64 // successful Global -= shift CASes by this handle
	Restarts     uint64 // searches restarted due to an observed Global change

	// SocketCAS attributes the CAS failures to the socket the failing
	// handle was pinned to (Handle.Pin, or the creation-order heuristic) —
	// the per-socket contention-pressure signal the adaptive controller
	// uses to tell the placement policy which socket asked for a widening
	// (see PressureSocket and DESIGN.md §7). The entries sum to
	// CASFailures.
	SocketCAS [MaxPlacementSockets]uint64

	// Latency is the log2-bucketed histogram of sampled operation
	// latencies (1 operation in latencySampleInterval is timed; see
	// LatencyBucket for the bucket layout). Estimate percentiles with
	// LatencyPercentile.
	Latency [NumLatencyBuckets]uint64
}

// LatencySamples returns how many operations were latency-sampled.
func (s OpStats) LatencySamples() uint64 {
	var n uint64
	for _, b := range s.Latency {
		n += b
	}
	return n
}

// NoLatencySample is the sentinel LatencyPercentile returns for an empty
// (all-zero) histogram. It is negative — no real sample can produce it —
// so consumers can distinguish "no data this interval" from a genuinely
// sub-nanosecond estimate, which the former zero return conflated with a
// bucket-0 reading. Gauges exported through internal/obs surface it as -1.
const NoLatencySample time.Duration = -1

// LatencyPercentile estimates the p-th percentile (0..100) of the sampled
// operation latency from the histogram, interpolating linearly within the
// winning bucket. It returns NoLatencySample when no samples were
// recorded; callers that gate on LatencySamples() > 0 (as the adaptive
// controller does) never see the sentinel. Log2 buckets bound the
// estimation error by a factor of two of the true sample value, which is
// far finer than the order-of-magnitude swings the latency-goal controller
// steers on.
func (s OpStats) LatencyPercentile(p float64) time.Duration {
	total := s.LatencySamples()
	if total == 0 {
		return NoLatencySample
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(total)
	var cum float64
	for i, b := range s.Latency {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if rank <= next {
			lo, hi := latencyBucketBounds(i)
			frac := (rank - cum) / float64(b)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	_, hi := latencyBucketBounds(NumLatencyBuckets - 1)
	return hi
}

// Ops returns the total completed operations.
func (s OpStats) Ops() uint64 { return s.Pushes + s.Pops + s.EmptyPops }

// ProbesPerOp returns the mean number of sub-stack validations per
// operation — the empirical step count.
func (s OpStats) ProbesPerOp() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.Probes) / float64(ops)
}

// CASFailuresPerOp returns the mean number of failed descriptor CASes per
// operation — the contention signal the adaptive controller steers on.
func (s OpStats) CASFailuresPerOp() float64 {
	ops := s.Ops()
	if ops == 0 {
		return 0
	}
	return float64(s.CASFailures) / float64(ops)
}

// Add accumulates other into s (for aggregating per-worker stats).
func (s *OpStats) Add(other OpStats) {
	s.Pushes += other.Pushes
	s.Pops += other.Pops
	s.EmptyPops += other.EmptyPops
	s.Probes += other.Probes
	s.RandomHops += other.RandomHops
	s.CASFailures += other.CASFailures
	s.WindowRaises += other.WindowRaises
	s.WindowLowers += other.WindowLowers
	s.Restarts += other.Restarts
	for i := range s.SocketCAS {
		s.SocketCAS[i] += other.SocketCAS[i]
	}
	for i := range s.Latency {
		s.Latency[i] += other.Latency[i]
	}
}

// Sub returns s - other field-wise, saturating at zero, for computing
// per-interval deltas between two snapshots (saturation guards against a
// handle resetting its counters between samples).
func (s OpStats) Sub(other OpStats) OpStats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	out := OpStats{
		Pushes:       sat(s.Pushes, other.Pushes),
		Pops:         sat(s.Pops, other.Pops),
		EmptyPops:    sat(s.EmptyPops, other.EmptyPops),
		Probes:       sat(s.Probes, other.Probes),
		RandomHops:   sat(s.RandomHops, other.RandomHops),
		CASFailures:  sat(s.CASFailures, other.CASFailures),
		WindowRaises: sat(s.WindowRaises, other.WindowRaises),
		WindowLowers: sat(s.WindowLowers, other.WindowLowers),
		Restarts:     sat(s.Restarts, other.Restarts),
	}
	for i := range out.SocketCAS {
		out.SocketCAS[i] = sat(s.SocketCAS[i], other.SocketCAS[i])
	}
	for i := range out.Latency {
		out.Latency[i] = sat(s.Latency[i], other.Latency[i])
	}
	return out
}

// Stats returns a copy of the handle's counters. Owner-goroutine only.
func (h *Handle[T]) Stats() OpStats { return h.stats }

// ResetStats zeroes the handle's counters (and their published copy).
// Owner-goroutine only. Samplers holding a previous StatsSnapshot baseline
// will see this as a shrinking total; OpStats.Sub saturates, so the
// affected interval reads as zero rather than garbage.
func (h *Handle[T]) ResetStats() {
	h.stats = OpStats{}
	h.FlushStats()
}

// statsFlushInterval is how many operations a handle completes between
// publications of its counters to the shared (atomic) copy. Snapshots are
// therefore at most this many operations per handle stale — far below the
// noise floor of any control interval — while the hot path pays only a
// local counter increment per operation.
const statsFlushInterval = 64

// SharedCounters is the atomically readable mirror of a handle's OpStats.
// Single writer (the owning goroutine, via flush); any reader.
//
// Two memory disciplines protect the mirror. A seqlock generation (gen,
// incremented to odd before a flush writes the fields and back to even
// after) lets Load return a cross-field-consistent snapshot: every field is
// individually atomic, but without the generation a reader interleaving a
// flush could combine a new Pushes with an old Pops — a torn snapshot that
// trips ratio consumers (CASFailuresPerOp, latency percentiles) even though
// no data race exists. And the struct's size is padded up to a multiple of
// the cache line: mirrors are allocated back to back by the handle
// registries (one per handle, the flush target every statsFlushInterval
// ops), so a size that is not line-aligned would let two handles' flush
// lines overlap and turn every 64-op flush into cross-core invalidation
// traffic — false sharing on exactly the slots the audit exists to keep
// private. TestSharedCountersPadded pins the size.
type SharedCounters struct {
	gen                                  atomic.Uint64
	pushes, pops, emptyPops              atomic.Uint64
	probes, randomHops, casFailures      atomic.Uint64
	windowRaises, windowLowers, restarts atomic.Uint64
	socketCAS                            [MaxPlacementSockets]atomic.Uint64
	latency                              [NumLatencyBuckets]atomic.Uint64
	_                                    [16]byte // pad to a cache-line multiple (384 B)
}

func (c *SharedCounters) Store(st OpStats) {
	c.gen.Add(1) // odd: flush in progress
	c.pushes.Store(st.Pushes)
	c.pops.Store(st.Pops)
	c.emptyPops.Store(st.EmptyPops)
	c.probes.Store(st.Probes)
	c.randomHops.Store(st.RandomHops)
	c.casFailures.Store(st.CASFailures)
	c.windowRaises.Store(st.WindowRaises)
	c.windowLowers.Store(st.WindowLowers)
	c.restarts.Store(st.Restarts)
	for i := range c.socketCAS {
		c.socketCAS[i].Store(st.SocketCAS[i])
	}
	for i := range c.latency {
		c.latency[i].Store(st.Latency[i])
	}
	c.gen.Add(1) // even: consistent
}

func (c *SharedCounters) Load() OpStats {
	for {
		g := c.gen.Load()
		if g&1 != 0 {
			// A flush is mid-write; it is a handful of plain stores, so
			// spinning to its end is cheaper than yielding.
			continue
		}
		out := OpStats{
			Pushes:       c.pushes.Load(),
			Pops:         c.pops.Load(),
			EmptyPops:    c.emptyPops.Load(),
			Probes:       c.probes.Load(),
			RandomHops:   c.randomHops.Load(),
			CASFailures:  c.casFailures.Load(),
			WindowRaises: c.windowRaises.Load(),
			WindowLowers: c.windowLowers.Load(),
			Restarts:     c.restarts.Load(),
		}
		for i := range out.SocketCAS {
			out.SocketCAS[i] = c.socketCAS[i].Load()
		}
		for i := range out.Latency {
			out.Latency[i] = c.latency[i].Load()
		}
		if c.gen.Load() == g {
			return out
		}
	}
}

// maybeFlush publishes the handle's counters every statsFlushInterval
// completed operations; called from unpin on the owner goroutine.
func (h *Handle[T]) maybeFlush() {
	h.sinceFlush++
	if h.sinceFlush >= statsFlushInterval {
		h.FlushStats()
	}
}

// FlushStats immediately publishes the handle's counters to the shared
// copy read by Stack.StatsSnapshot. Owner-goroutine only. Useful when a
// worker quiesces and a sampler should see its final totals at once.
func (h *Handle[T]) FlushStats() {
	h.sinceFlush = 0
	h.shared.Store(h.stats)
}

// StatsSnapshot aggregates the published counters of every registered
// handle plus the retired totals of pruned ones. It is safe to call from
// any goroutine and does not perturb the operation hot path: handles
// publish their counters every statsFlushInterval operations, so the
// snapshot trails the truth by at most that many operations per active
// handle (and by the same amount, permanently, per abandoned handle).
// Because the registry holds each handle's counter mirror strongly, a
// collected-but-not-yet-pruned handle's work is still read here — the
// snapshot never transiently loses completed operations. Reconfiguration
// traffic does not read as client operations: the warm shrink handoff
// splices stranded items directly at the descriptor level, without a
// handle. This is the feed for internal/adapt's controller.
func (s *Stack[T]) StatsSnapshot() OpStats {
	s.hMu.Lock()
	out := s.retired
	for _, e := range s.handles {
		out.Add(e.shared.Load())
	}
	s.hMu.Unlock()
	return out
}
