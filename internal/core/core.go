// Package core implements the 2D-Stack of Rukundo, Atalar and Tsigas
// (PODC'18): a lock-free stack that relaxes LIFO semantics within a tunable
// two-dimensional window to gain throughput.
//
// # Structure
//
// The stack is an array of `width` Treiber-style sub-stacks, each described
// by an immutable {top, count} descriptor replaced atomically on every
// successful operation. A shared Global counter together with the `depth`
// parameter defines the *window*: a sub-stack is a valid target for
//
//   - Push when count < Global
//   - Pop  when count > Global − depth
//
// When no sub-stack is valid the window itself is moved: Push raises Global
// by `shift`, Pop lowers it (never below depth). All items therefore live
// within a band of height `depth` across the sub-stacks, which yields the
// Theorem 1 bound: the stack is linearizable with respect to k-out-of-order
// stack semantics with
//
//	k = (2·depth + shift) · (width − 1)
//
// (The paper's transcription weighs shift double instead of depth; that
// form is violated for shift < depth — a count-lagging sub-stack's
// stale top stays poppable across several slow window raises — and the two
// coincide at shift = depth. The constant above is the corrected one,
// certified for small geometries by internal/seqspec's exhaustive explorer;
// see DESIGN.md §2 for the resolution.)
//
// # Operation scheduling
//
// Each operation starts from the sub-stack where the calling handle last
// succeeded (locality — the vertical dimension), tries a configurable number
// of random hops, then falls back to round-robin probing. A failed CAS
// (contention) triggers a random hop instead of a retry on the same
// sub-stack. Any observed change of Global restarts the search, keeping the
// window tight.
//
// # Handles
//
// The algorithm keeps per-thread state (last successful sub-stack, RNG).
// Go has no cheap goroutine-local storage, so that state lives in an
// explicit Handle; each goroutine should own one. Handle operations are not
// safe for concurrent use of the *same* handle; the Stack itself is fully
// concurrent across handles.
//
// # Live reconfiguration
//
// The window geometry is not fixed at construction: Reconfigure (and the
// SetWindow/SetWidth shorthands) swap in a new geometry while operations
// are running. Every operation pins the active geometry for its duration
// via a per-handle epoch, so a width shrink can wait for the old epoch to
// quiesce before migrating the items stranded in dropped sub-stacks; depth,
// shift and width-growth changes are wait-free parameter swaps. This is the
// mechanism behind internal/adapt's feedback controller, which retunes the
// window continuously from the handles' contention counters. See DESIGN.md
// §4 for the invariants.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stack2d/internal/pad"
)

// Config carries the tuning parameters of a 2D-Stack. The zero value is not
// valid; use DefaultConfig or fill all fields and call Validate.
type Config struct {
	// Width is the number of sub-stacks (the horizontal, disjoint-access
	// dimension). The paper's evaluation selects width = 4P for P threads.
	Width int
	// Depth is the window height: the maximum spread of items a single
	// sub-stack may hold relative to the window floor (the vertical,
	// locality dimension).
	Depth int64
	// Shift is how far Global moves when a whole window is exhausted.
	// Must satisfy 1 <= Shift <= Depth. The paper uses shift = depth for
	// maximum locality; smaller shifts tighten relaxation at the cost of
	// more frequent Global updates.
	Shift int64
	// RandomHops is the number of random probes an operation makes before
	// switching to round-robin search. The paper prescribes "a given
	// number of random hops, then round robin".
	RandomHops int
}

// DefaultConfig returns the configuration the paper identifies as the
// high-throughput operating point for p expected threads: width 4p,
// depth = shift = 64, two random hops.
func DefaultConfig(p int) Config {
	if p < 1 {
		p = 1
	}
	return Config{Width: 4 * p, Depth: 64, Shift: 64, RandomHops: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Width < 1:
		return fmt.Errorf("core: Width must be >= 1, got %d", c.Width)
	case c.Depth < 1:
		return fmt.Errorf("core: Depth must be >= 1, got %d", c.Depth)
	case c.Shift < 1 || c.Shift > c.Depth:
		return fmt.Errorf("core: Shift must be in [1, Depth=%d], got %d", c.Depth, c.Shift)
	case c.RandomHops < 0:
		return fmt.Errorf("core: RandomHops must be >= 0, got %d", c.RandomHops)
	}
	return nil
}

// K returns the Theorem 1 relaxation bound for this configuration:
// k = (2·depth + shift)(width − 1). A width-1 stack is strict (k = 0).
// The constant is exact for every legal shift: sequential executions
// realise distances at most k (certified exhaustively for small geometries
// by seqspec.ExploreStack, property-tested for larger ones), and
// concurrent executions add at most one position of measurement slack per
// in-flight operation. It corrects the paper's transcription (shift
// weighted double instead of depth), which sequential counterexamples
// refute for shift < depth and which coincides with K at shift = depth —
// see DESIGN.md §2 for the resolution.
func (c Config) K() int64 {
	return (2*c.Depth + c.Shift) * int64(c.Width-1)
}

// Stack is a lock-free 2D-Stack. Create with New; use per-goroutine Handles
// for operations. A Stack must not be copied.
type Stack[T any] struct {
	// geo is the active geometry (window parameters + sub-stack array),
	// replaced wholesale by Reconfigure. Padded away from global so window
	// movement does not invalidate the read-mostly geometry pointer.
	geo atomic.Pointer[geometry[T]]
	_   pad.CacheLinePad
	// global is the paper's Global counter: the per-sub-stack item ceiling
	// of the current window. Steady-state invariant: global >= depth, so
	// the window floor (global - depth) is non-negative; reconfiguration
	// can break it transiently, which operations tolerate by clamping the
	// floor at zero.
	global pad.Int64Line
	// seed feeds handle RNGs; purely to give each handle an independent
	// deterministic stream.
	seed pad.Uint64Line

	// reMu serialises reconfigurations. It also guards the placement
	// settings below, which every geometry build reads, and the structural
	// observer (obsv), whose events are emitted only under it.
	reMu sync.Mutex
	// obsv receives structural transition events (reconfigurations, shrink
	// handoffs, placement re-homes); nil — the default — costs nothing.
	// See SetObserver and DESIGN.md §8.
	obsv Observer
	// placePolicy/placeSockets are the socket-placement model installed by
	// SetPlacement (nil policy / 1 socket = placement off, the default):
	// the policy homes new slots on width growth and picks shrink
	// survivors; the active geometry carries the resulting slot→socket
	// map. See DESIGN.md §7.
	placePolicy  PlacementPolicy
	placeSockets int
	// handleSeq counts NewHandle calls; the creation-order heuristic
	// derives each handle's default socket hint from it (HeuristicSocket).
	handleSeq atomic.Int64
	// shrinkDisp accumulates, over all width shrinks, the stranded-plus-
	// target populations of the warm handoff's splices — an upper bound on
	// the extra LIFO displacement the migrations can have caused (see
	// spliceStranded and ShrinkDisplacementBound).
	shrinkDisp atomic.Int64

	// hMu guards the handle registry, which powers both epoch quiescence
	// detection and StatsSnapshot. Each entry holds its handle weakly — so
	// an abandoned handle (e.g. one dropped from the convenience API's
	// sync.Pool on a GC cycle) is collectable — but the handle's published
	// counters strongly: a collected handle's final counters stay readable
	// until a later registration prunes the entry and folds them into
	// retired. StatsSnapshot is therefore exact with no dependence on
	// GC-cleanup timing (the same scheme as internal/twodqueue's).
	hMu     sync.Mutex
	handles []handleEntry[T]
	// retired accumulates the last published counters of pruned handles,
	// so StatsSnapshot never loses completed work.
	retired OpStats
}

// New returns an empty 2D-Stack with the given configuration.
func New[T any](cfg Config) (*Stack[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stack[T]{placeSockets: 1}
	s.geo.Store(freshGeometry[T](cfg, 1))
	s.global.V.Store(cfg.Depth)
	return s, nil
}

// MustNew is New for configurations known valid at compile time; it panics
// on error. Used by tests and examples.
func MustNew[T any](cfg Config) *Stack[T] {
	s, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the stack's active configuration. Under live
// reconfiguration the value is the geometry current at the call, which a
// concurrent Reconfigure may immediately supersede.
func (s *Stack[T]) Config() Config { return s.geo.Load().config() }

// Width returns the current number of sub-stacks.
func (s *Stack[T]) Width() int { return s.geo.Load().width }

// Epoch returns the active geometry's epoch; it increases by one per
// successful reconfiguration. Diagnostics only.
func (s *Stack[T]) Epoch() uint64 { return s.geo.Load().epoch }

// Global exposes the current window ceiling; diagnostics only.
func (s *Stack[T]) Global() int64 { return s.global.V.Load() }

// ShrinkDisplacementBound returns the cumulative upper bound on LIFO
// displacement attributable to width-shrink migrations: the sum over all
// warm-handoff splices of the stranded chain's length plus its target's
// population. Zero while no shrink has migrated anything. Diagnostics —
// cmd/adapttune uses it to budget its realised-distance check.
func (s *Stack[T]) ShrinkDisplacementBound() int64 { return s.shrinkDisp.Load() }

// Len returns the total number of items the stack is responsible for: the
// residents of every sub-stack plus, for handles with an armed op buffer
// (SetOpBuffer), their pending-but-unpublished pushes and prefetched-but-
// undelivered pops — so combined publication never makes items phantom-
// invisible to sizing. It is exact when quiescent and approximate under
// concurrency (each addend is an atomic snapshot, but the sum is not).
func (s *Stack[T]) Len() int {
	g := s.geo.Load()
	var n int64
	for i := range g.subs {
		n += g.subs[i].load().count
	}
	s.hMu.Lock()
	for _, e := range s.handles {
		if h := e.wp.Value(); h != nil {
			n += h.bufCount.Load()
		}
	}
	s.hMu.Unlock()
	return int(n)
}

// Empty reports whether every sub-stack was observed empty. Like Len, the
// answer is exact only in quiescent states.
func (s *Stack[T]) Empty() bool {
	g := s.geo.Load()
	for i := range g.subs {
		if g.subs[i].load().count != 0 {
			return false
		}
	}
	return true
}

// SubCounts returns a snapshot of each sub-stack's item count, used by
// diagnostics, tests and the relaxtune CLI.
func (s *Stack[T]) SubCounts() []int64 {
	g := s.geo.Load()
	out := make([]int64, len(g.subs))
	for i := range g.subs {
		out[i] = g.subs[i].load().count
	}
	return out
}

// Drain removes all items (via a private handle) and returns them; intended
// for teardown and tests, not for concurrent use. Handles with an armed op
// buffer must FlushOps (and deliver or disarm their prefetch) before the
// drain — only the owning goroutine may touch a handle's private buffers,
// so Drain cannot reach values still held in them.
func (s *Stack[T]) Drain() []T {
	h := s.NewHandle()
	var out []T
	for {
		v, ok := h.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// CheckInvariants walks every sub-stack and verifies the structural
// invariants that the descriptor scheme maintains: each descriptor's count
// equals the actual length of its list, counts are non-negative, and
// Global is positive (in quiescent states with no reconfiguration in
// flight it additionally satisfies Global >= Depth, but a pop racing a
// depth change may legitimately leave it between 1 and the new depth). It
// is intended for quiescent states (tests, debugging); under concurrency a
// descriptor read is atomic but the whole walk is not.
func (s *Stack[T]) CheckInvariants() error {
	if g := s.global.V.Load(); g < 1 {
		return fmt.Errorf("core: Global %d must be positive", g)
	}
	geo := s.geo.Load()
	if len(geo.subs) != geo.width {
		return fmt.Errorf("core: geometry width %d but %d sub-stacks", geo.width, len(geo.subs))
	}
	for i := range geo.subs {
		d := geo.subs[i].load()
		if d.count < 0 {
			return fmt.Errorf("core: sub-stack %d has negative count %d", i, d.count)
		}
		var n int64
		for node := d.top; node != nil; node = node.next {
			n++
			if n > d.count {
				break
			}
		}
		if n != d.count {
			return fmt.Errorf("core: sub-stack %d descriptor count %d but list length >= %d", i, d.count, n)
		}
	}
	return nil
}
