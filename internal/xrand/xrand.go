// Package xrand provides small, allocation-free pseudo-random number
// generators suitable for per-goroutine use on hot paths.
//
// The 2D-Stack search loop performs a random hop on every CAS failure;
// math/rand's global generator takes a lock and would itself become the
// contention point the hop is trying to escape. Each harness worker and each
// stack operation context therefore owns an xrand.State seeded independently
// via SplitMix64.
package xrand

// State is a xoshiro256** generator. The zero value is NOT valid; construct
// with New or Seed. xoshiro256** passes BigCrush and is among the fastest
// generators with a 2^256-1 period, more than enough for hop selection and
// workload coin flips.
type State struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// only for seeding, as recommended by the xoshiro authors, because it
// diffuses low-entropy seeds (0, 1, 2, ...) into well-distributed states.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give independent
// streams; seed 0 is fine.
func New(seed uint64) *State {
	var s State
	s.Seed(seed)
	return &s
}

// Seed resets the generator deterministically from seed.
func (s *State) Seed(seed uint64) {
	x := seed
	s.s[0] = splitmix64(&x)
	s.s[1] = splitmix64(&x)
	s.s[2] = splitmix64(&x)
	s.s[3] = splitmix64(&x)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (s *State) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (s *State) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift reduction, which avoids the modulo
// instruction on the hot path; the slight non-uniformity (< 2^-32 bias for
// the sub-stack counts used here) is irrelevant for hop selection.
func (s *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int((uint64(s.Uint32()) * uint64(n)) >> 32)
}

// Float64 returns a uniform value in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *State) Bool() bool { return s.Uint64()&1 == 1 }
