package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	s := New(0)
	// SplitMix64 seeding must not leave the all-zero xoshiro state, which
	// would emit zeros forever.
	allZero := true
	for i := 0; i < 64; i++ {
		if s.Uint64() != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	const n, draws = 8, 80000
	s := New(99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: count %d deviates >10%% from %g", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestBoolIsFair(t *testing.T) {
	s := New(5)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < draws*45/100 || trues > draws*55/100 {
		t.Fatalf("Bool() returned true %d/%d times; expected ~50%%", trues, draws)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(11)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(11)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, step %d: %d != %d", i, got, first[i])
		}
	}
}

// TestIntnPropertyInRange is a quick-check property: every output of Intn is
// within range for arbitrary seeds and bounds.
func TestIntnPropertyInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1024) + 1
		s := New(seed)
		for i := 0; i < 32; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
