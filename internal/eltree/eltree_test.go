package eltree

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{},
		{Depth: 0, PrismSlots: 1, Spins: 1},
		{Depth: 21, PrismSlots: 1, Spins: 1},
		{Depth: 1, PrismSlots: 0, Spins: 1},
		{Depth: 1, PrismSlots: 1, Spins: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDefaultConfigLeafCount(t *testing.T) {
	cases := []struct{ p, wantDepth int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {9, 4}, {16, 4},
	}
	for _, c := range cases {
		if got := DefaultConfig(c.p).Depth; got != c.wantDepth {
			t.Errorf("DefaultConfig(%d).Depth = %d, want %d", c.p, got, c.wantDepth)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(zero Config) did not panic")
		}
	}()
	MustNew[int](Config{})
}

func TestPushPopRoundTrip(t *testing.T) {
	p := MustNew[int](Config{Depth: 2, PrismSlots: 2, Spins: 2})
	h := p.NewHandle()
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty pool returned ok")
	}
	h.Push(7)
	if v, ok := h.Pop(); !ok || v != 7 {
		t.Fatalf("Pop = (%d,%v), want (7,true)", v, ok)
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop after drain returned ok")
	}
}

func TestPoolConservationSequential(t *testing.T) {
	p := MustNew[uint64](Config{Depth: 3, PrismSlots: 2, Spins: 2})
	h := p.NewHandle()
	const n = 3000
	for v := uint64(0); v < n; v++ {
		h.Push(v)
	}
	if got := p.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	seen := make(map[uint64]bool, n)
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d values, want %d", len(seen), n)
	}
}

func TestDiffractionSpreadsLeaves(t *testing.T) {
	// Pure pushes toggle through the balancers; leaves must share the load
	// roughly evenly (the toggle stream is deterministic round-robin).
	p := MustNew[int](Config{Depth: 2, PrismSlots: 1, Spins: 1})
	h := p.NewHandle()
	const n = 400
	for i := 0; i < n; i++ {
		h.Push(i)
	}
	for i := range p.leaves {
		if got := p.leaves[i].Len(); got != n/4 {
			t.Fatalf("leaf %d holds %d items, want %d", i, got, n/4)
		}
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2000
	p := MustNew[uint64](DefaultConfig(workers))
	popped := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[w] = append(popped[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range p.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// Property: pool conservation for arbitrary scripts.
func TestPropertyConservation(t *testing.T) {
	f := func(depthRaw uint8, script []bool) bool {
		depth := int(depthRaw%3) + 1
		p := MustNew[uint64](Config{Depth: depth, PrismSlots: 2, Spins: 1})
		h := p.NewHandle()
		pushed := 0
		seen := make(map[uint64]bool)
		next := uint64(1)
		for _, isPush := range script {
			if isPush {
				h.Push(next)
				next++
				pushed++
			} else if v, ok := h.Pop(); ok {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
