// Package eltree implements an elimination-diffraction tree pool in the
// style of Shavit & Touitou (SPAA 1995) and Afek, Korland, Natanzon &
// Shavit (Euro-Par 2010) — the "elimination trees" lineage of the paper's
// related-work section.
//
// Structure: a complete binary tree of *balancers* routes operations to
// 2^depth leaf Treiber stacks. Each balancer is an atomic toggle: pushes
// and pops read opposite directions from the same toggle stream, so a push
// and the next pop diffract to the same subtree and meet at a leaf.
// Before toggling, an operation advertises in the balancer's small *prism*
// array; an opposite operation arriving concurrently eliminates with it on
// the spot and neither descends further.
//
// Semantics: a pool (unordered). Like the relaxed stacks it trades order
// for parallelism, but with no deterministic k bound — which is precisely
// why the paper's window-based design supersedes it; this package exists
// so the comparison is runnable (see bench RelatedWork).
package eltree

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"stack2d/internal/core"
	"stack2d/internal/pad"
	"stack2d/internal/treiber"
	"stack2d/internal/xrand"
)

// prism slot states: 0 empty; otherwise a parked *offer.

// offer is an advertised push travelling through a balancer.
type offer[T any] struct {
	value T
	state atomic.Int32 // 0 waiting, 1 taken, 2 withdrawn
}

// balancer is one toggle node with its elimination prism.
type balancer[T any] struct {
	toggle pad.Int64Line
	prism  []pad.PointerLine[offer[T]]
}

// Config tunes the tree.
type Config struct {
	// Depth is the balancer tree depth; the pool has 2^Depth leaf stacks.
	Depth int
	// PrismSlots is the elimination array size per balancer.
	PrismSlots int
	// Spins is how long a parked push waits for a partner at a balancer.
	Spins int
}

// DefaultConfig sizes the tree for p expected threads: enough leaves to
// spread p threads (2^ceil(log2 p)) and a small prism per balancer.
func DefaultConfig(p int) Config {
	if p < 1 {
		p = 1
	}
	depth := 0
	for 1<<depth < p {
		depth++
	}
	if depth == 0 {
		depth = 1
	}
	return Config{Depth: depth, PrismSlots: 2, Spins: 16}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Depth < 1 || c.Depth > 20:
		return fmt.Errorf("eltree: Depth must be in [1,20], got %d", c.Depth)
	case c.PrismSlots < 1:
		return fmt.Errorf("eltree: PrismSlots must be >= 1, got %d", c.PrismSlots)
	case c.Spins < 1:
		return fmt.Errorf("eltree: Spins must be >= 1, got %d", c.Spins)
	}
	return nil
}

// Pool is an elimination-diffraction tree pool. Create with New; obtain
// one Handle per goroutine.
type Pool[T any] struct {
	cfg    Config
	nodes  []balancer[T] // heap layout: node i has children 2i+1, 2i+2
	leaves []treiber.Stack[T]
	seed   pad.Uint64Line
}

// New returns an empty pool.
func New[T any](cfg Config) (*Pool[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner := 1<<cfg.Depth - 1
	p := &Pool[T]{
		cfg:    cfg,
		nodes:  make([]balancer[T], inner),
		leaves: make([]treiber.Stack[T], 1<<cfg.Depth),
	}
	for i := range p.nodes {
		p.nodes[i].prism = make([]pad.PointerLine[offer[T]], cfg.PrismSlots)
	}
	return p, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Pool[T] {
	p, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Len sums leaf populations; approximate under concurrency.
func (p *Pool[T]) Len() int {
	n := 0
	for i := range p.leaves {
		n += p.leaves[i].Len()
	}
	return n
}

// Drain empties every leaf; teardown/testing helper.
func (p *Pool[T]) Drain() []T {
	var out []T
	for i := range p.leaves {
		out = append(out, p.leaves[i].Drain()...)
	}
	return out
}

// Handle is the per-goroutine operation context.
type Handle[T any] struct {
	p     *Pool[T]
	rng   *xrand.State
	stats *core.OpStats
}

// NewHandle returns an operation handle.
func (p *Pool[T]) NewHandle() *Handle[T] {
	return &Handle[T]{p: p, rng: xrand.New(p.seed.V.Add(0x9e3779b97f4a7c15))}
}

// SetStats points the handle's internal-signal counters at st (nil
// disables, the default): balancer visits, prism attempts and leaf-sweep
// visits count as Probes, failed leaf CASes as CASFailures. Operation
// outcomes are counted by the backend adapter in internal/relax, not
// here. Owner-goroutine only.
func (h *Handle[T]) SetStats(st *core.OpStats) { h.stats = st }

// pushLeaf and popLeaf mirror multistack's instrumented sub-stack access.
func (h *Handle[T]) pushLeaf(i int, v T) {
	st := &h.p.leaves[i]
	if h.stats == nil {
		st.Push(v)
		return
	}
	for !st.TryPush(v) {
		h.stats.CASFailures++
	}
}

func (h *Handle[T]) popLeaf(i int) (v T, ok bool) {
	st := &h.p.leaves[i]
	if h.stats == nil {
		return st.Pop()
	}
	h.stats.Probes++
	for {
		v, ok, contended := st.TryPop()
		if ok {
			return v, true
		}
		if !contended {
			var zero T
			return zero, false
		}
		h.stats.CASFailures++
	}
}

// Push inserts v into the pool.
func (h *Handle[T]) Push(v T) {
	p := h.p
	node := 0
	for level := 0; level < p.cfg.Depth; level++ {
		b := &p.nodes[node]
		if h.stats != nil {
			h.stats.Probes++ // balancer visit (prism attempt included)
		}
		// Try to eliminate with a concurrent pop at this balancer.
		if h.tryParkPush(b, v) {
			return
		}
		// Diffract: pushes take direction bit 0 of the toggle stream.
		dir := b.toggle.V.Add(1) & 1
		node = 2*node + 1 + int(dir)
	}
	h.pushLeaf(node-len(p.nodes), v)
}

// Pop removes a value from the pool; ok is false when the leaf reached
// (and, as a fallback, every other leaf) was observed empty.
func (h *Handle[T]) Pop() (v T, ok bool) {
	p := h.p
	node := 0
	for level := 0; level < p.cfg.Depth; level++ {
		b := &p.nodes[node]
		if h.stats != nil {
			h.stats.Probes++
		}
		if v, ok := h.tryConsumePush(b); ok {
			return v, true
		}
		// Pops take the complementary direction so that a push/pop pair
		// toggling consecutively lands on the same subtree.
		dir := (b.toggle.V.Add(1) + 1) & 1
		node = 2*node + 1 + int(dir)
	}
	leaf := node - len(p.nodes)
	if v, ok := h.popLeaf(leaf); ok {
		return v, true
	}
	// Routed to an empty leaf: sweep the others before reporting empty
	// (pool semantics allow taking any element).
	for probe := 1; probe < len(p.leaves); probe++ {
		i := leaf + probe
		if i >= len(p.leaves) {
			i -= len(p.leaves)
		}
		if v, ok := h.popLeaf(i); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// tryParkPush advertises v in the balancer's prism and waits briefly for a
// popper; it reports whether the value was taken.
func (h *Handle[T]) tryParkPush(b *balancer[T], v T) bool {
	slot := &b.prism[h.rng.Intn(len(b.prism))]
	of := &offer[T]{value: v}
	if !slot.P.CompareAndSwap(nil, of) {
		return false
	}
	for spin := 0; spin < h.p.cfg.Spins; spin++ {
		if of.state.Load() == 1 {
			slot.P.CompareAndSwap(of, nil)
			return true
		}
		runtime.Gosched()
	}
	if of.state.CompareAndSwap(0, 2) {
		slot.P.CompareAndSwap(of, nil)
		return false
	}
	slot.P.CompareAndSwap(of, nil)
	return true // lost the withdraw race: a popper took it
}

// tryConsumePush claims a parked push from the balancer's prism.
func (h *Handle[T]) tryConsumePush(b *balancer[T]) (v T, ok bool) {
	slot := &b.prism[h.rng.Intn(len(b.prism))]
	of := slot.P.Load()
	if of == nil {
		var zero T
		return zero, false
	}
	if of.state.CompareAndSwap(0, 1) {
		slot.P.CompareAndSwap(of, nil)
		return of.value, true
	}
	var zero T
	return zero, false
}
