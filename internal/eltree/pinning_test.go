package eltree

import (
	"runtime"
	"testing"
	"time"
)

// Value-pinning audit (the msqueue dummy-node bug class): the two places a
// popped value could stay reachable are the leaf Treiber stacks — whose
// winning CAS unlinks the node entirely, nothing to clear — and the prism
// offers, which become unreachable as soon as the slot CAS removes them
// (the offer object retains the value, but only for the offer's own brief
// lifetime). These tests pin that audit down for both paths.

func collectableWithin(t *testing.T, collected <-chan struct{}, site string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatalf("popped value still reachable: %s pinned it", site)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestPoppedValueIsCollectable pushes a finalizer-tracked value through
// the tree into a leaf and pops it back out.
func TestPoppedValueIsCollectable(t *testing.T) {
	p := MustNew[*[]byte](Config{Depth: 2, PrismSlots: 1, Spins: 1})
	h := p.NewHandle()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	h.Push(big)
	got, ok := h.Pop()
	if !ok || got != big {
		t.Fatalf("Pop = (%p,%v), want the pushed pointer", got, ok)
	}
	got, big = nil, nil
	collectableWithin(t, collected, "a leaf stack node")
	runtime.KeepAlive(h)
	runtime.KeepAlive(p)
}

// TestEliminatedValueIsCollectable forces a prism elimination: a parked
// push (large spin budget) is consumed by a popper at the same balancer,
// and the exchanged value must be collectable after both sides return.
func TestEliminatedValueIsCollectable(t *testing.T) {
	p := MustNew[*[]byte](Config{Depth: 1, PrismSlots: 1, Spins: 1 << 20})
	h1, h2 := p.NewHandle(), p.NewHandle()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })

	parked := make(chan bool)
	go func() { parked <- h1.tryParkPush(&p.nodes[0], big) }()
	var got *[]byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := h2.tryConsumePush(&p.nodes[0]); ok {
			got = v
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("popper never found the parked offer")
		}
		runtime.Gosched()
	}
	if !<-parked {
		t.Fatal("parked push reported withdrawn after its value was taken")
	}
	if got != big {
		t.Fatalf("eliminated value = %p, want %p", got, big)
	}
	got, big = nil, nil
	collectableWithin(t, collected, "a prism offer")
	runtime.KeepAlive(h1)
	runtime.KeepAlive(h2)
	runtime.KeepAlive(p)
}
