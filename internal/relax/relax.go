// Package relax centralises the relaxation-semantics algebra of the
// reproduction: the k-out-of-order bounds of each algorithm, the mapping
// from a target relaxation level k to concrete per-algorithm configurations
// (the x-axis of the paper's Figure 1), and trace checking against those
// bounds.
//
// # Semantics
//
// A stack is k-out-of-order relaxed (Henzinger et al., POPL'13) when every
// Pop returns one of the k+1 topmost items of some linearization, and may
// report empty only when at most k items are present. k = 0 is the strict
// sequential stack.
//
// # Per-algorithm bounds
//
//   - 2D-Stack: k = (2·depth + shift)·(width − 1)   (Theorem 1, constant
//     corrected per DESIGN.md §2; equal to the paper's transcription at
//     shift = depth, which every configuration derived here uses)
//   - k-segment: k = s − 1 for segment size s (sequential bound; all items
//     of the top segment are interchangeable, and items below the top
//     segment are strictly older).
//   - k-robin: a handle distributes consecutive operations round-robin over
//     w sub-stacks, so an item can sink at most w−1 positions per
//     traversal in each direction; with P concurrent handles the paper
//     keeps the bound by shrinking w as P grows. We use the estimate
//     k ≈ 2·P·(w−1) and invert it for configuration.
//   - random / random-c2: no deterministic bound (a sufficiently unlucky
//     schedule displaces an item arbitrarily far); they appear only in the
//     concurrency sweep (Figure 2), as in the paper.
package relax

import (
	"fmt"

	"stack2d/internal/core"
	"stack2d/internal/ksegment"
	"stack2d/internal/multistack"
)

// Algorithm enumerates every stack design in the evaluation.
type Algorithm int

// The algorithms of the paper's Figures 1 and 2, by their paper names,
// followed by the related-work structures the repository carries beyond
// the figures (elimination-diffraction tree, flat combining, the
// Michael–Scott queue baseline). New entries append — the numeric values
// are stable.
const (
	TwoDStack Algorithm = iota
	KSegment
	KRobin
	RandomStack
	RandomC2Stack
	EliminationStack
	TreiberStack
	ElTreePool
	FlatCombiningStack
	MSQueue
)

func (a Algorithm) String() string {
	switch a {
	case TwoDStack:
		return "2D-stack"
	case KSegment:
		return "k-segment"
	case KRobin:
		return "k-robin"
	case RandomStack:
		return "random"
	case RandomC2Stack:
		return "random-c2"
	case EliminationStack:
		return "elimination"
	case TreiberStack:
		return "treiber"
	case ElTreePool:
		return "eltree"
	case FlatCombiningStack:
		return "flat-combining"
	case MSQueue:
		return "ms-queue"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm inverts String; it accepts exactly the catalogue
// spellings (the round trip is pinned by TestCatalogueAudit).
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range AllAlgorithms() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("relax: unknown algorithm %q", s)
}

// AllAlgorithms returns the complete catalogue in declaration order.
func AllAlgorithms() []Algorithm {
	return []Algorithm{
		TwoDStack, KSegment, KRobin, RandomStack, RandomC2Stack,
		EliminationStack, TreiberStack, ElTreePool, FlatCombiningStack,
		MSQueue,
	}
}

// KBounded reports whether the algorithm has a deterministic k-out-of-order
// bound. The strict structures (treiber, elimination, flat-combining,
// ms-queue) are bounded with k = 0; the random policies and the
// elimination-diffraction pool have no deterministic bound.
func (a Algorithm) KBounded() bool {
	switch a {
	case TwoDStack, KSegment, KRobin, TreiberStack,
		EliminationStack, FlatCombiningStack, MSQueue:
		return true
	default:
		return false
	}
}

// Ordering is the sequential discipline an algorithm relaxes: most of the
// catalogue is stack-shaped (k-out-of-order against LIFO), the
// Michael–Scott baseline is queue-shaped, and the elimination-diffraction
// tree and the random policies promise no deterministic order at all.
// engine.Switcher only swaps between backends of the same ordering — a
// swap must preserve which checker (seqspec.KStackChecker vs KFIFOChecker)
// the run's history is replayed through.
type Ordering int

// The orderings; OrderNone marks pool semantics (no deterministic bound).
const (
	OrderLIFO Ordering = iota
	OrderFIFO
	OrderNone
)

func (o Ordering) String() string {
	switch o {
	case OrderLIFO:
		return "lifo"
	case OrderFIFO:
		return "fifo"
	case OrderNone:
		return "none"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Ordering returns the algorithm's sequential discipline. The random
// multistack policies are OrderNone for the same reason KBounded is false
// for them: an adversarial schedule displaces items arbitrarily far.
func (a Algorithm) Ordering() Ordering {
	switch a {
	case MSQueue:
		return OrderFIFO
	case RandomStack, RandomC2Stack, ElTreePool:
		return OrderNone
	default:
		return OrderLIFO
	}
}

// Figure1Algorithms returns the k-bounded relaxed designs compared in
// Figure 1, in the paper's order.
func Figure1Algorithms() []Algorithm {
	return []Algorithm{TwoDStack, KRobin, KSegment}
}

// KConfigurable reports whether the algorithm's structure can be derived
// from a target relaxation budget k (the x-axis of Figure 1): these are
// the algorithms harness.Figure1Factory accepts. The strict baselines are
// k-bounded (k = 0) but not configurable — there is no knob to derive.
func (a Algorithm) KConfigurable() bool {
	switch a {
	case TwoDStack, KSegment, KRobin:
		return true
	default:
		return false
	}
}

// Figure2Algorithms returns all designs compared in Figure 2.
func Figure2Algorithms() []Algorithm {
	return []Algorithm{
		TwoDStack, KRobin, KSegment, RandomStack, RandomC2Stack,
		EliminationStack, TreiberStack,
	}
}

// TwoDConfigForK maps a target relaxation k and thread count p to a 2D-Stack
// configuration following the paper's tuning narrative: grow width
// (horizontal, disjoint access) until the optimum width 4P, then grow depth
// (vertical, locality) with shift = depth. The returned configuration's
// exact bound Config.K() is <= k (never exceeds the budget) and > 0 for
// k >= 3.
func TwoDConfigForK(k int64, p int) core.Config {
	if p < 1 {
		p = 1
	}
	if k < 3 {
		// No relaxation budget: a strict (width 1) stack.
		return core.Config{Width: 1, Depth: 64, Shift: 64, RandomHops: 2}
	}
	maxWidth := 4 * p
	// Horizontal phase: depth = shift = 1 gives k = 3(w-1).
	w := int(k/3) + 1
	if w <= maxWidth {
		return core.Config{Width: w, Depth: 1, Shift: 1, RandomHops: 2}
	}
	// Vertical phase: width pinned at 4P, k = 3d(w-1) with shift = depth.
	d := k / (3 * int64(maxWidth-1))
	if d < 1 {
		d = 1
	}
	return core.Config{Width: maxWidth, Depth: d, Shift: d, RandomHops: 2}
}

// KSegmentConfigForK maps a target k to a segment size (s = k+1).
func KSegmentConfigForK(k int64) ksegment.Config {
	if k < 0 {
		k = 0
	}
	return ksegment.Config{SegmentSize: int(k) + 1}
}

// KRobinConfigForK maps a target k and thread count p to a round-robin
// width via the estimate k = 2·P·(w−1); the paper notes k-robin shrinks its
// width as P grows to hold the bound.
func KRobinConfigForK(k int64, p int) multistack.Config {
	if p < 1 {
		p = 1
	}
	w := int(k/(2*int64(p))) + 1
	if w < 1 {
		w = 1
	}
	return multistack.Config{Width: w, Policy: multistack.RoundRobin}
}

// KRobinBound is the k estimate for a k-robin configuration at p threads
// (the inverse of KRobinConfigForK).
//
// This is a central estimate, not a guarantee: round-robin scheduling has
// no tight deterministic bound, because a Pop that lands on a drained
// sub-stack sweeps forward to the next non-empty one, desynchronising the
// push and pop cursors. Differential fuzzing (cmd/stackfuzz) observes
// single-threaded distances up to ≈4.5·(width−1) on adversarial scripts —
// still Θ(width), so the estimate is the right shape for configuring the
// Figure 1 sweep, but only the 2D-Stack's window mechanism turns the shape
// into the hard bound of Theorem 1. That contrast is one of the paper's
// selling points.
func KRobinBound(width, p int) int64 {
	if p < 1 {
		p = 1
	}
	return 2 * int64(p) * int64(width-1)
}
