// Package relax centralises the relaxation-semantics algebra of the
// reproduction: the k-out-of-order bounds of each algorithm, the mapping
// from a target relaxation level k to concrete per-algorithm configurations
// (the x-axis of the paper's Figure 1), and trace checking against those
// bounds.
//
// # Semantics
//
// A stack is k-out-of-order relaxed (Henzinger et al., POPL'13) when every
// Pop returns one of the k+1 topmost items of some linearization, and may
// report empty only when at most k items are present. k = 0 is the strict
// sequential stack.
//
// # Per-algorithm bounds
//
//   - 2D-Stack: k = (2·depth + shift)·(width − 1)   (Theorem 1, constant
//     corrected per DESIGN.md §2; equal to the paper's transcription at
//     shift = depth, which every configuration derived here uses)
//   - k-segment: k = s − 1 for segment size s (sequential bound; all items
//     of the top segment are interchangeable, and items below the top
//     segment are strictly older).
//   - k-robin: a handle distributes consecutive operations round-robin over
//     w sub-stacks, so an item can sink at most w−1 positions per
//     traversal in each direction; with P concurrent handles the paper
//     keeps the bound by shrinking w as P grows. We use the estimate
//     k ≈ 2·P·(w−1) and invert it for configuration.
//   - random / random-c2: no deterministic bound (a sufficiently unlucky
//     schedule displaces an item arbitrarily far); they appear only in the
//     concurrency sweep (Figure 2), as in the paper.
package relax

import (
	"fmt"

	"stack2d/internal/core"
	"stack2d/internal/ksegment"
	"stack2d/internal/multistack"
)

// Algorithm enumerates every stack design in the evaluation.
type Algorithm int

// The algorithms of the paper's Figures 1 and 2, by their paper names.
const (
	TwoDStack Algorithm = iota
	KSegment
	KRobin
	RandomStack
	RandomC2Stack
	EliminationStack
	TreiberStack
)

func (a Algorithm) String() string {
	switch a {
	case TwoDStack:
		return "2D-stack"
	case KSegment:
		return "k-segment"
	case KRobin:
		return "k-robin"
	case RandomStack:
		return "random"
	case RandomC2Stack:
		return "random-c2"
	case EliminationStack:
		return "elimination"
	case TreiberStack:
		return "treiber"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// KBounded reports whether the algorithm has a deterministic k-out-of-order
// bound (and therefore appears in Figure 1).
func (a Algorithm) KBounded() bool {
	switch a {
	case TwoDStack, KSegment, KRobin, TreiberStack:
		return true
	default:
		return false
	}
}

// Figure1Algorithms returns the k-bounded relaxed designs compared in
// Figure 1, in the paper's order.
func Figure1Algorithms() []Algorithm {
	return []Algorithm{TwoDStack, KRobin, KSegment}
}

// Figure2Algorithms returns all designs compared in Figure 2.
func Figure2Algorithms() []Algorithm {
	return []Algorithm{
		TwoDStack, KRobin, KSegment, RandomStack, RandomC2Stack,
		EliminationStack, TreiberStack,
	}
}

// TwoDConfigForK maps a target relaxation k and thread count p to a 2D-Stack
// configuration following the paper's tuning narrative: grow width
// (horizontal, disjoint access) until the optimum width 4P, then grow depth
// (vertical, locality) with shift = depth. The returned configuration's
// exact bound Config.K() is <= k (never exceeds the budget) and > 0 for
// k >= 3.
func TwoDConfigForK(k int64, p int) core.Config {
	if p < 1 {
		p = 1
	}
	if k < 3 {
		// No relaxation budget: a strict (width 1) stack.
		return core.Config{Width: 1, Depth: 64, Shift: 64, RandomHops: 2}
	}
	maxWidth := 4 * p
	// Horizontal phase: depth = shift = 1 gives k = 3(w-1).
	w := int(k/3) + 1
	if w <= maxWidth {
		return core.Config{Width: w, Depth: 1, Shift: 1, RandomHops: 2}
	}
	// Vertical phase: width pinned at 4P, k = 3d(w-1) with shift = depth.
	d := k / (3 * int64(maxWidth-1))
	if d < 1 {
		d = 1
	}
	return core.Config{Width: maxWidth, Depth: d, Shift: d, RandomHops: 2}
}

// KSegmentConfigForK maps a target k to a segment size (s = k+1).
func KSegmentConfigForK(k int64) ksegment.Config {
	if k < 0 {
		k = 0
	}
	return ksegment.Config{SegmentSize: int(k) + 1}
}

// KRobinConfigForK maps a target k and thread count p to a round-robin
// width via the estimate k = 2·P·(w−1); the paper notes k-robin shrinks its
// width as P grows to hold the bound.
func KRobinConfigForK(k int64, p int) multistack.Config {
	if p < 1 {
		p = 1
	}
	w := int(k/(2*int64(p))) + 1
	if w < 1 {
		w = 1
	}
	return multistack.Config{Width: w, Policy: multistack.RoundRobin}
}

// KRobinBound is the k estimate for a k-robin configuration at p threads
// (the inverse of KRobinConfigForK).
//
// This is a central estimate, not a guarantee: round-robin scheduling has
// no tight deterministic bound, because a Pop that lands on a drained
// sub-stack sweeps forward to the next non-empty one, desynchronising the
// push and pop cursors. Differential fuzzing (cmd/stackfuzz) observes
// single-threaded distances up to ≈4.5·(width−1) on adversarial scripts —
// still Θ(width), so the estimate is the right shape for configuring the
// Figure 1 sweep, but only the 2D-Stack's window mechanism turns the shape
// into the hard bound of Theorem 1. That contrast is one of the paper's
// selling points.
func KRobinBound(width, p int) int64 {
	if p < 1 {
		p = 1
	}
	return 2 * int64(p) * int64(width-1)
}
