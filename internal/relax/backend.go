package relax

import (
	"sync"

	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/eltree"
	"stack2d/internal/flatcombining"
	"stack2d/internal/ksegment"
	"stack2d/internal/msqueue"
	"stack2d/internal/multistack"
	"stack2d/internal/treiber"
)

// The backend contract: one control-plane surface over every structure in
// the catalogue. PRs 1–6 built the Reconfigurable/StatsSnapshot/checker
// machinery for the 2D structures only; Backend is the interface that
// lets the controller, the conformance harness and the observability
// plane see the whole zoo. engine.Switcher composes Backends into a
// hot-swappable structure, and internal/adapt's Selector picks among them
// by semantics budget and observed signals.

// Handle is the per-goroutine operation context of a Backend. Handles are
// not safe for concurrent use; the Backend is, across handles. Flush
// publishes the handle's pending counters to the backend's registry (the
// statsFlushInterval scheme of core): call it when a worker quiesces so a
// sampler sees final totals.
type Handle[T any] interface {
	Push(v T)
	Pop() (v T, ok bool)
	Flush()
}

// Backend is the uniform contract the relaxation zoo is adapted behind.
//
// KBound is the backend's semantics budget: the k-out-of-order bound its
// discipline guarantees (0 for the strict structures, the configured
// bound for the relaxed ones, the k-robin estimate for round-robin), or
// -1 when no deterministic bound exists (random policies, the
// elimination-diffraction pool). The budget is what the adapt layer
// compares against the caller's k ceiling and what folds into checker
// budgets across a swap.
//
// Backends whose geometry is tunable additionally implement
// adapt.Reconfigurable (the 2D backend does); callers discover that with
// a type assertion, exactly as adapt.Controller discovers SocketAware.
//
// Drain empties the backend and returns the items in pop order (for
// OrderLIFO: top-first). It is quiescent-only — engine.Switcher calls it
// after pinned operations have drained.
type Backend[T any] interface {
	Algorithm() Algorithm
	KBound() int64
	NewHandle() Handle[T]
	Len() int
	Drain() []T
	StatsSnapshot() core.OpStats
}

// backendFlushInterval mirrors core's statsFlushInterval: adapter handles
// publish their counters to the registry every this many operations, so
// snapshots trail the truth by at most that much per handle.
const backendFlushInterval = 64

// statsRegistry is the race-safe counter registry shared by the adapters,
// the same scheme core.Stack uses for its handles: each handle owns a
// plain OpStats (single-writer, no atomics) and periodically publishes it
// to a SharedCounters mirror; snapshots aggregate the mirrors.
type statsRegistry struct {
	mu      sync.Mutex
	entries []*core.SharedCounters
}

func (r *statsRegistry) register() *core.SharedCounters {
	c := &core.SharedCounters{}
	r.mu.Lock()
	r.entries = append(r.entries, c)
	r.mu.Unlock()
	return c
}

func (r *statsRegistry) snapshot() core.OpStats {
	var out core.OpStats
	r.mu.Lock()
	for _, e := range r.entries {
		out.Add(e.Load())
	}
	r.mu.Unlock()
	return out
}

// counted is the embeddable flush state of an adapter handle.
type counted struct {
	stats      core.OpStats
	shared     *core.SharedCounters
	sinceFlush int
}

func (c *counted) done() {
	c.sinceFlush++
	if c.sinceFlush >= backendFlushInterval {
		c.Flush()
	}
}

// Flush publishes the handle's counters to the backend's registry.
func (c *counted) Flush() {
	c.sinceFlush = 0
	c.shared.Store(c.stats)
}

// --- 2D-Stack ---------------------------------------------------------------

// twoDBackend adapts core.Stack. It passes adapt.Reconfigurable and
// SocketAware straight through, so the geometry controller steers it like
// it always has; StatsSnapshot uses the stack's own registry rather than
// a parallel one.
type twoDBackend[T any] struct{ s *core.Stack[T] }

// NewTwoDBackend wraps a 2D-Stack configuration as a Backend. The
// returned backend additionally implements adapt.Reconfigurable,
// adapt.SocketAware and ShrinkDisplacementBound() int64 (the migration
// allowance engine.Switcher folds into checker budgets).
func NewTwoDBackend[T any](cfg core.Config) (Backend[T], error) {
	s, err := core.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &twoDBackend[T]{s: s}, nil
}

func (b *twoDBackend[T]) Algorithm() Algorithm          { return TwoDStack }
func (b *twoDBackend[T]) KBound() int64                 { return b.s.Config().K() }
func (b *twoDBackend[T]) Len() int                      { return b.s.Len() }
func (b *twoDBackend[T]) Drain() []T                    { return b.s.Drain() }
func (b *twoDBackend[T]) StatsSnapshot() core.OpStats   { return b.s.StatsSnapshot() }
func (b *twoDBackend[T]) Config() core.Config           { return b.s.Config() }
func (b *twoDBackend[T]) Reconfigure(c core.Config) error { return b.s.Reconfigure(c) }
func (b *twoDBackend[T]) ReconfigureOnSocket(c core.Config, req int) error {
	return b.s.ReconfigureOnSocket(c, req)
}
func (b *twoDBackend[T]) ShrinkDisplacementBound() int64 { return b.s.ShrinkDisplacementBound() }

type twoDHandle[T any] struct{ h *core.Handle[T] }

func (b *twoDBackend[T]) NewHandle() Handle[T] { return twoDHandle[T]{h: b.s.NewHandle()} }

func (h twoDHandle[T]) Push(v T)           { h.h.Push(v) }
func (h twoDHandle[T]) Pop() (v T, ok bool) { return h.h.Pop() }
func (h twoDHandle[T]) Flush()             { h.h.FlushStats() }

// --- self-counting baselines (treiber, ms-queue) ----------------------------

// The strict list-based baselines count their own operation outcomes and
// CAS failures (treiber.PushStats/msqueue.EnqueueStats), so their adapter
// handles add only the registry flush.

type treiberBackend[T any] struct {
	s   *treiber.Stack[T]
	reg statsRegistry
}

// NewTreiberBackend wraps the strict Treiber baseline (k = 0).
func NewTreiberBackend[T any]() Backend[T] {
	return &treiberBackend[T]{s: treiber.New[T]()}
}

func (b *treiberBackend[T]) Algorithm() Algorithm        { return TreiberStack }
func (b *treiberBackend[T]) KBound() int64               { return 0 }
func (b *treiberBackend[T]) Len() int                    { return b.s.Len() }
func (b *treiberBackend[T]) Drain() []T                  { return b.s.Drain() }
func (b *treiberBackend[T]) StatsSnapshot() core.OpStats { return b.reg.snapshot() }
func (b *treiberBackend[T]) NewHandle() Handle[T] {
	h := &treiberHandle[T]{s: b.s}
	h.shared = b.reg.register()
	return h
}

type treiberHandle[T any] struct {
	counted
	s *treiber.Stack[T]
}

func (h *treiberHandle[T]) Push(v T) {
	h.s.PushStats(v, &h.stats)
	h.done()
}

func (h *treiberHandle[T]) Pop() (v T, ok bool) {
	v, ok = h.s.PopStats(&h.stats)
	h.done()
	return v, ok
}

type msqueueBackend[T any] struct {
	q   *msqueue.Queue[T]
	reg statsRegistry
}

// NewMSQueueBackend wraps the strict Michael–Scott baseline (k = 0,
// OrderFIFO: Push enqueues, Pop dequeues).
func NewMSQueueBackend[T any]() Backend[T] {
	return &msqueueBackend[T]{q: msqueue.New[T]()}
}

func (b *msqueueBackend[T]) Algorithm() Algorithm        { return MSQueue }
func (b *msqueueBackend[T]) KBound() int64               { return 0 }
func (b *msqueueBackend[T]) Len() int                    { return b.q.Len() }
func (b *msqueueBackend[T]) Drain() []T                  { return b.q.Drain() }
func (b *msqueueBackend[T]) StatsSnapshot() core.OpStats { return b.reg.snapshot() }
func (b *msqueueBackend[T]) NewHandle() Handle[T] {
	h := &msqueueHandle[T]{q: b.q}
	h.shared = b.reg.register()
	return h
}

type msqueueHandle[T any] struct {
	counted
	q *msqueue.Queue[T]
}

func (h *msqueueHandle[T]) Push(v T) {
	h.q.EnqueueStats(v, &h.stats)
	h.done()
}

func (h *msqueueHandle[T]) Pop() (v T, ok bool) {
	v, ok = h.q.DequeueStats(&h.stats)
	h.done()
	return v, ok
}

// --- handle-based zoo structures --------------------------------------------

// zooHandle is the operation surface shared by the handle-based zoo
// packages (elimination, ksegment, multistack, eltree, flatcombining).
type zooHandle[T any] interface {
	Push(v T)
	Pop() (v T, ok bool)
}

// zooBackend adapts any handle-based zoo structure: the inner handle is
// built with its SetStats pointed at the adapter's counters (so internal
// signals — probes, CAS failures — land there), and the adapter counts
// the operation outcomes itself. One type, five structures.
type zooBackend[T any] struct {
	alg    Algorithm
	k      int64
	reg    statsRegistry
	mkH    func(st *core.OpStats) zooHandle[T]
	lenF   func() int
	drainF func() []T
}

func (b *zooBackend[T]) Algorithm() Algorithm        { return b.alg }
func (b *zooBackend[T]) KBound() int64               { return b.k }
func (b *zooBackend[T]) Len() int                    { return b.lenF() }
func (b *zooBackend[T]) Drain() []T                  { return b.drainF() }
func (b *zooBackend[T]) StatsSnapshot() core.OpStats { return b.reg.snapshot() }
func (b *zooBackend[T]) NewHandle() Handle[T] {
	h := &zooCountedHandle[T]{}
	h.shared = b.reg.register()
	h.inner = b.mkH(&h.stats)
	return h
}

type zooCountedHandle[T any] struct {
	counted
	inner zooHandle[T]
}

func (h *zooCountedHandle[T]) Push(v T) {
	h.inner.Push(v)
	h.stats.Pushes++
	h.done()
}

func (h *zooCountedHandle[T]) Pop() (v T, ok bool) {
	v, ok = h.inner.Pop()
	if ok {
		h.stats.Pops++
	} else {
		h.stats.EmptyPops++
	}
	h.done()
	return v, ok
}

// NewEliminationBackend wraps the elimination back-off stack (strict
// LIFO, k = 0).
func NewEliminationBackend[T any](cfg elimination.Config) (Backend[T], error) {
	s, err := elimination.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &zooBackend[T]{
		alg: EliminationStack, k: 0,
		mkH: func(st *core.OpStats) zooHandle[T] {
			h := s.NewHandle()
			h.SetStats(st)
			return h
		},
		lenF: s.Len, drainF: s.Drain,
	}, nil
}

// NewKSegmentBackend wraps a k-segment configuration (k = SegmentSize−1).
func NewKSegmentBackend[T any](cfg ksegment.Config) (Backend[T], error) {
	s, err := ksegment.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &zooBackend[T]{
		alg: KSegment, k: cfg.K(),
		mkH: func(st *core.OpStats) zooHandle[T] {
			h := s.NewHandle()
			h.SetStats(st)
			return h
		},
		lenF: s.Len, drainF: s.Drain,
	}, nil
}

// NewMultiBackend wraps a distributed multi-stack. The algorithm and
// bound follow the policy: RoundRobin is k-robin with the KRobinBound
// estimate at p threads; the random policies are unbounded (KBound -1).
func NewMultiBackend[T any](cfg multistack.Config, p int) (Backend[T], error) {
	s, err := multistack.New[T](cfg)
	if err != nil {
		return nil, err
	}
	alg, k := RandomStack, int64(-1)
	switch cfg.Policy {
	case multistack.RoundRobin:
		alg, k = KRobin, KRobinBound(cfg.Width, p)
	case multistack.RandomC2:
		alg = RandomC2Stack
	}
	return &zooBackend[T]{
		alg: alg, k: k,
		mkH: func(st *core.OpStats) zooHandle[T] {
			h := s.NewHandle()
			h.SetStats(st)
			return h
		},
		lenF: s.Len, drainF: s.Drain,
	}, nil
}

// NewElTreeBackend wraps the elimination-diffraction tree pool (no
// deterministic bound: KBound -1).
func NewElTreeBackend[T any](cfg eltree.Config) (Backend[T], error) {
	p, err := eltree.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &zooBackend[T]{
		alg: ElTreePool, k: -1,
		mkH: func(st *core.OpStats) zooHandle[T] {
			h := p.NewHandle()
			h.SetStats(st)
			return h
		},
		lenF: p.Len, drainF: p.Drain,
	}, nil
}

// NewFlatCombiningBackend wraps the flat-combining stack (strict LIFO,
// k = 0).
func NewFlatCombiningBackend[T any]() Backend[T] {
	s := flatcombining.New[T]()
	return &zooBackend[T]{
		alg: FlatCombiningStack, k: 0,
		mkH: func(st *core.OpStats) zooHandle[T] {
			h := s.NewHandle()
			h.SetStats(st)
			return h
		},
		lenF: s.Len, drainF: s.Drain,
	}
}

// NewDefaultBackend builds the algorithm's default configuration for p
// expected threads — the Figure 2 setups for the figure algorithms,
// DefaultConfig-style sizing for the rest. It is the constructor the
// catalogue audit and the benchmark series use; pass a target k through
// the specific constructors when the default is not what you want.
func NewDefaultBackend[T any](a Algorithm, p int) (Backend[T], error) {
	if p < 1 {
		p = 1
	}
	switch a {
	case TwoDStack:
		return NewTwoDBackend[T](core.DefaultConfig(p))
	case KSegment:
		return NewKSegmentBackend[T](KSegmentConfigForK(int64(Figure2K)))
	case KRobin:
		return NewMultiBackend[T](KRobinConfigForK(Figure2K, p), p)
	case RandomStack:
		return NewMultiBackend[T](multistack.Config{Width: 4 * p, Policy: multistack.Random}, p)
	case RandomC2Stack:
		return NewMultiBackend[T](multistack.Config{Width: 4 * p, Policy: multistack.RandomC2}, p)
	case EliminationStack:
		return NewEliminationBackend[T](elimination.DefaultConfig(p))
	case TreiberStack:
		return NewTreiberBackend[T](), nil
	case ElTreePool:
		return NewElTreeBackend[T](eltree.DefaultConfig(p))
	case FlatCombiningStack:
		return NewFlatCombiningBackend[T](), nil
	case MSQueue:
		return NewMSQueueBackend[T](), nil
	default:
		return nil, errUnknownAlgorithm(a)
	}
}

func errUnknownAlgorithm(a Algorithm) error {
	return &unknownAlgorithmError{a}
}

type unknownAlgorithmError struct{ a Algorithm }

func (e *unknownAlgorithmError) Error() string {
	return "relax: no backend for algorithm " + e.a.String()
}

// Figure2K is re-declared here so NewDefaultBackend does not depend on
// the harness; it matches harness.Figure2K (pinned by TestCatalogueAudit
// indirectly — both trace to EXPERIMENTS.md).
const Figure2K = 1024
