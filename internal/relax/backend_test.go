package relax

import (
	"fmt"
	"sync"
	"testing"

	"stack2d/internal/core"
)

// TestCatalogueAudit is the catalogue's completeness gate: every algorithm
// in AllAlgorithms has a default backend, the backend agrees with the
// catalogue about its identity and its semantics budget, and the String
// spelling round-trips through ParseAlgorithm. Adding an Algorithm
// constant without wiring a backend (or vice versa) fails here.
func TestCatalogueAudit(t *testing.T) {
	if len(AllAlgorithms()) != 10 {
		t.Fatalf("catalogue has %d entries, want 10", len(AllAlgorithms()))
	}
	for _, a := range AllAlgorithms() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			got, err := ParseAlgorithm(a.String())
			if err != nil || got != a {
				t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", a.String(), got, err, a)
			}
			b, err := NewDefaultBackend[int](a, 4)
			if err != nil {
				t.Fatalf("NewDefaultBackend: %v", err)
			}
			if b.Algorithm() != a {
				t.Errorf("backend.Algorithm() = %v", b.Algorithm())
			}
			if bounded := b.KBound() >= 0; bounded != a.KBounded() {
				t.Errorf("KBound() = %d but KBounded() = %v", b.KBound(), a.KBounded())
			}
			if a.KConfigurable() && b.KBound() < 0 {
				t.Errorf("k-configurable algorithm with unbounded backend")
			}
		})
	}
	if _, err := ParseAlgorithm("no-such-structure"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
	if _, err := NewDefaultBackend[int](Algorithm(99), 4); err == nil {
		t.Error("NewDefaultBackend accepted an unknown algorithm")
	}
}

// TestBackendRoundTrip pushes and pops through every default backend and
// checks conservation: nothing lost, nothing invented, Len and Drain agree.
func TestBackendRoundTrip(t *testing.T) {
	const n = 200
	for _, a := range AllAlgorithms() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			b, err := NewDefaultBackend[int](a, 2)
			if err != nil {
				t.Fatal(err)
			}
			h := b.NewHandle()
			for i := 0; i < n; i++ {
				h.Push(i)
			}
			if got := b.Len(); got != n {
				t.Fatalf("Len = %d after %d pushes", got, n)
			}
			seen := make(map[int]bool)
			for i := 0; i < n/2; i++ {
				v, ok := h.Pop()
				if !ok {
					t.Fatalf("pop %d reported empty", i)
				}
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("pop returned %d (dup or out of range)", v)
				}
				seen[v] = true
			}
			for _, v := range b.Drain() {
				if seen[v] {
					t.Fatalf("Drain returned already-popped %d", v)
				}
				seen[v] = true
			}
			if len(seen) != n {
				t.Fatalf("recovered %d of %d items", len(seen), n)
			}
			if b.Len() != 0 {
				t.Fatalf("Len = %d after Drain", b.Len())
			}
			if _, ok := h.Pop(); ok {
				t.Fatal("pop on drained backend succeeded")
			}
		})
	}
}

// TestBackendStatsSnapshot checks the adapter counter plumbing: outcomes
// (pushes, pops, empty pops) land in StatsSnapshot for every backend, both
// mid-stream via the periodic flush and exactly after an explicit Flush.
func TestBackendStatsSnapshot(t *testing.T) {
	const n = 300 // > backendFlushInterval so the periodic path runs too
	for _, a := range AllAlgorithms() {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			b, err := NewDefaultBackend[int](a, 2)
			if err != nil {
				t.Fatal(err)
			}
			h := b.NewHandle()
			for i := 0; i < n; i++ {
				h.Push(i)
			}
			for i := 0; i < n; i++ {
				if _, ok := h.Pop(); !ok {
					t.Fatalf("pop %d reported empty", i)
				}
			}
			h.Pop() // one empty pop
			h.Flush()
			st := b.StatsSnapshot()
			if st.Pushes != n || st.Pops != n || st.EmptyPops != 1 {
				t.Fatalf("snapshot = %+v, want %d/%d/1", st, n, n)
			}
		})
	}
}

// TestBackendStatsSnapshotConcurrent hammers snapshot-while-operating on a
// couple of representative backends; run with -race this pins the registry
// scheme (handle-local counters, atomic mirrors) as data-race-free.
func TestBackendStatsSnapshotConcurrent(t *testing.T) {
	for _, a := range []Algorithm{TwoDStack, EliminationStack, TreiberStack, MSQueue} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			b, err := NewDefaultBackend[int](a, 4)
			if err != nil {
				t.Fatal(err)
			}
			var workers, sampler sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				workers.Add(1)
				go func() {
					defer workers.Done()
					h := b.NewHandle()
					for i := 0; i < 2000; i++ {
						h.Push(i)
						h.Pop()
					}
					h.Flush()
				}()
			}
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for {
					select {
					case <-stop:
						return
					default:
						b.StatsSnapshot()
					}
				}
			}()
			workers.Wait()
			close(stop)
			sampler.Wait()
			st := b.StatsSnapshot()
			if st.Pushes != 4*2000 {
				t.Fatalf("pushes = %d, want %d", st.Pushes, 4*2000)
			}
		})
	}
}

// TestBackendMirrorSnapshotConsistency is the regression for the mirror
// seqlock (core.SharedCounters.Load/Store): every snapshot taken while
// handles flush must be cross-field consistent per mirror. Workers run
// push-then-pop pairs and flush after every operation, so a consistent
// mirror always shows Pops <= Pushes with the gap at most one per handle;
// the old per-field loads could pair a stale Pushes with a fresh Pops
// (Pops > Pushes) or drift by a whole flush interval. Covers both registry
// sides: the 2D backend reads core.Stack's own registry, Treiber the
// adapters' statsRegistry.
func TestBackendMirrorSnapshotConsistency(t *testing.T) {
	for _, a := range []Algorithm{TwoDStack, TreiberStack} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			const nWorkers, pairs = 4, 3000
			b, err := NewDefaultBackend[int](a, nWorkers)
			if err != nil {
				t.Fatal(err)
			}
			var workers sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < nWorkers; w++ {
				workers.Add(1)
				go func() {
					defer workers.Done()
					h := b.NewHandle()
					for i := 0; i < pairs; i++ {
						h.Push(i)
						h.Flush() // mid-pair: mirror shows Pushes == Pops+1
						h.Pop()
						h.Flush()
					}
				}()
			}
			var torn error
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					st := b.StatsSnapshot()
					if st.Pops > st.Pushes || st.Pushes-st.Pops > nWorkers {
						torn = fmt.Errorf("torn snapshot: Pushes=%d Pops=%d (gap must be in [0,%d])",
							st.Pushes, st.Pops, nWorkers)
						return
					}
				}
			}()
			workers.Wait()
			close(stop)
			<-done
			if torn != nil {
				t.Fatal(torn)
			}
			st := b.StatsSnapshot()
			if st.Pushes != nWorkers*pairs || st.Pops != nWorkers*pairs {
				t.Fatalf("final snapshot %d/%d, want %d/%d", st.Pushes, st.Pops, nWorkers*pairs, nWorkers*pairs)
			}
		})
	}
}

// TestTwoDBackendIsReconfigurable pins that the 2D adapter exposes the
// geometry controller's interface rather than hiding it: Config,
// Reconfigure and the displacement bound all pass through.
func TestTwoDBackendIsReconfigurable(t *testing.T) {
	b, err := NewTwoDBackend[int](core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := b.(interface {
		Config() core.Config
		Reconfigure(core.Config) error
		ShrinkDisplacementBound() int64
	})
	if !ok {
		t.Fatal("2D backend does not expose reconfiguration")
	}
	if got := r.Config().Width; got != 4 {
		t.Fatalf("Config().Width = %d", got)
	}
	before := b.KBound()
	if err := r.Reconfigure(core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}); err != nil {
		t.Fatal(err)
	}
	if b.KBound() >= before {
		t.Fatalf("KBound did not shrink with width: %d -> %d", before, b.KBound())
	}
}

// TestBackendKBoundMatchesStructure cross-checks the budget arithmetic the
// adapters report against the structure-level formulas.
func TestBackendKBoundMatchesStructure(t *testing.T) {
	td, err := NewTwoDBackend[int](TwoDConfigForK(300, 4))
	if err != nil {
		t.Fatal(err)
	}
	if want := TwoDConfigForK(300, 4).K(); td.KBound() != want {
		t.Errorf("2D KBound = %d, want %d", td.KBound(), want)
	}
	ks, err := NewKSegmentBackend[int](KSegmentConfigForK(17))
	if err != nil {
		t.Fatal(err)
	}
	if ks.KBound() != 17 {
		t.Errorf("k-segment KBound = %d, want 17", ks.KBound())
	}
	kr, err := NewMultiBackend[int](KRobinConfigForK(256, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Algorithm() != KRobin {
		t.Errorf("k-robin backend algorithm = %v", kr.Algorithm())
	}
	if want := KRobinBound(KRobinConfigForK(256, 4).Width, 4); kr.KBound() != want {
		t.Errorf("k-robin KBound = %d, want %d", kr.KBound(), want)
	}
}

// TestFigure2KMatchesHarness guards the re-declared constant: harness's
// Figure2K cannot be imported here (harness imports relax), so the two are
// pinned to the documented value independently.
func TestFigure2KMatchesHarness(t *testing.T) {
	if Figure2K != 1024 {
		t.Fatalf("Figure2K = %d, want 1024 (keep in sync with harness.Figure2K)", Figure2K)
	}
}

// TestZooSignalCountersFlow checks the SetStats wiring end to end for a
// contended backend: internal signals (probes) reach the snapshot.
func TestZooSignalCountersFlow(t *testing.T) {
	b, err := NewDefaultBackend[int](KRobin, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	for i := 0; i < 100; i++ {
		h.Pop()
	}
	h.Flush()
	if st := b.StatsSnapshot(); st.Probes == 0 {
		t.Fatalf("no probes recorded through the adapter: %+v", st)
	}
}
