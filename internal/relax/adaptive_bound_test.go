package relax

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/quality"
)

// realisedMax runs a fixed sequential push/pop script against the stack's
// *current* geometry through the quality oracle and returns the maximum
// realised error distance. The stack must be empty on entry and is left
// empty. Sequential executions are where Theorem 1 is exact, so the result
// is directly comparable to Config.K().
func realisedMax(t *testing.T, h *core.Handle[uint64], label *uint64) int {
	t.Helper()
	o := &quality.Oracle{}
	push := func(n int) {
		for i := 0; i < n; i++ {
			*label++
			h.Push(*label)
			o.Insert(*label)
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			v, ok := h.Pop()
			if !ok {
				t.Fatal("stack empty mid-script")
			}
			o.Remove(v)
		}
	}
	// Interleaved waves: deep prefill, partial drains, refills — enough
	// churn to walk the window up and down across every sub-stack.
	push(400)
	pop(150)
	push(200)
	pop(300)
	push(100)
	pop(250) // net zero: stack empty again
	if o.Len() != 0 {
		t.Fatalf("oracle still holds %d labels after balanced script", o.Len())
	}
	return o.Snapshot().Max
}

// TestRealisedBoundTracksActiveGeometry is the adaptive-subsystem
// counterpart of the static Theorem 1 tests: as the geometry is retuned
// tick by tick — by an adapt.Controller and by explicit reconfigurations,
// growing, deepening and shrinking — the realised error distance of a
// sequential execution never exceeds the *active* geometry's bound
// k = (2·depth + shift)·(width − 1).
func TestRealisedBoundTracksActiveGeometry(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2})
	ctrl, err := adapt.New(s, adapt.Policy{
		Goal:     adapt.MaxThroughput,
		KCeiling: 4096,
		MinWidth: 1, MaxWidth: 16,
		MinDepth: 8, MaxDepth: 64,
		Cooldown:      1,
		MinOpsPerTick: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Geometry schedule interleaved with controller ticks: every shape of
	// transition the reconfiguration path supports.
	schedule := []core.Config{
		{Width: 8, Depth: 8, Shift: 8, RandomHops: 2},    // grow width
		{Width: 8, Depth: 64, Shift: 64, RandomHops: 2},  // deepen
		{Width: 3, Depth: 64, Shift: 16, RandomHops: 2},  // shrink width, shorten shift
		{Width: 1, Depth: 8, Shift: 8, RandomHops: 0},    // strict (k = 0)
		{Width: 16, Depth: 16, Shift: 16, RandomHops: 2}, // grow both
		{Width: 4, Depth: 32, Shift: 32, RandomHops: 1},  // shrink width, deepen
	}

	h := s.NewHandle()
	var label uint64
	for tick, next := range schedule {
		// A controller decision happens on every tick (it may retune the
		// geometry itself; sequential load gives it window-churn signals).
		ctrl.Step(10 * time.Millisecond)
		if err := s.Reconfigure(next); err != nil {
			t.Fatalf("tick %d: Reconfigure(%+v): %v", tick, next, err)
		}

		active := s.Config()
		wantK := (2*active.Depth + active.Shift) * int64(active.Width-1)
		if got := active.K(); got != wantK {
			t.Fatalf("tick %d: Config.K() = %d, want (2·%d+%d)·(%d−1) = %d",
				tick, got, active.Depth, active.Shift, active.Width, wantK)
		}

		if got := realisedMax(t, h, &label); int64(got) > active.K() {
			t.Fatalf("tick %d: realised distance %d exceeds active geometry's k = %d (%+v)",
				tick, got, active.K(), active)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}

	// Every controller tick must likewise have run under its recorded
	// geometry's bound (the record's K is the active bound by definition;
	// this pins the accounting).
	for _, rec := range ctrl.History() {
		if rec.K != (2*rec.Depth+rec.Shift)*int64(rec.Width-1) {
			t.Fatalf("tick record %d carries inconsistent bound: %+v", rec.Tick, rec)
		}
	}
}

// TestStrictGeometryIsExact pins the degenerate case the controller's
// narrowing path can reach: width 1 must realise distance 0 — the strict
// stack — no matter the depth the window arrived with.
func TestStrictGeometryIsExact(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 1, Depth: 64, Shift: 64, RandomHops: 0})
	h := s.NewHandle()
	var label uint64
	if got := realisedMax(t, h, &label); got != 0 {
		t.Fatalf("width-1 stack realised distance %d, want 0", got)
	}
}
