package relax

import (
	"testing"
	"testing/quick"

	"stack2d/internal/multistack"
)

func TestAlgorithmNamesMatchPaper(t *testing.T) {
	want := map[Algorithm]string{
		TwoDStack:        "2D-stack",
		KSegment:         "k-segment",
		KRobin:           "k-robin",
		RandomStack:      "random",
		RandomC2Stack:    "random-c2",
		EliminationStack: "elimination",
		TreiberStack:     "treiber",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), name)
		}
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Error("unknown algorithm formatting")
	}
}

func TestKBounded(t *testing.T) {
	bounded := []Algorithm{
		TwoDStack, KSegment, KRobin, TreiberStack,
		EliminationStack, FlatCombiningStack, MSQueue,
	}
	for _, a := range bounded {
		if !a.KBounded() {
			t.Errorf("%v should be k-bounded", a)
		}
	}
	for _, a := range []Algorithm{RandomStack, RandomC2Stack, ElTreePool} {
		if a.KBounded() {
			t.Errorf("%v should not be k-bounded", a)
		}
	}
	// Only the k-configurable algorithms take a target k; every one of
	// them must of course be k-bounded.
	for _, a := range AllAlgorithms() {
		if a.KConfigurable() && !a.KBounded() {
			t.Errorf("%v is k-configurable but not k-bounded", a)
		}
	}
}

func TestFigureAlgorithmSets(t *testing.T) {
	f1 := Figure1Algorithms()
	if len(f1) != 3 {
		t.Fatalf("Figure1Algorithms = %v, want 3 algorithms", f1)
	}
	for _, a := range f1 {
		if !a.KBounded() {
			t.Errorf("Figure 1 contains non-k-bounded %v", a)
		}
	}
	if len(Figure2Algorithms()) != 7 {
		t.Fatalf("Figure2Algorithms = %v, want all 7", Figure2Algorithms())
	}
}

func TestTwoDConfigForKStaysWithinBudget(t *testing.T) {
	for _, p := range []int{1, 2, 8, 16} {
		for _, k := range []int64{0, 1, 3, 10, 50, 100, 500, 1000, 10000} {
			cfg := TwoDConfigForK(k, p)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("k=%d p=%d: invalid config %+v: %v", k, p, cfg, err)
			}
			if got := cfg.K(); got > k && k >= 3 {
				t.Errorf("k=%d p=%d: configured bound %d exceeds budget", k, p, got)
			}
			if cfg.Width > 4*p {
				t.Errorf("k=%d p=%d: width %d exceeds 4P", k, p, cfg.Width)
			}
		}
	}
}

func TestTwoDConfigForKPhases(t *testing.T) {
	// Small k: horizontal growth (depth 1).
	cfg := TwoDConfigForK(30, 8)
	if cfg.Depth != 1 || cfg.Width != 11 {
		t.Fatalf("horizontal phase: got %+v, want width 11 depth 1", cfg)
	}
	// Large k: width pinned at 4P, depth grows.
	cfg = TwoDConfigForK(100000, 8)
	if cfg.Width != 32 {
		t.Fatalf("vertical phase: width = %d, want 32", cfg.Width)
	}
	if cfg.Depth <= 1 {
		t.Fatalf("vertical phase: depth = %d, want > 1", cfg.Depth)
	}
	// Zero budget: strict stack.
	cfg = TwoDConfigForK(0, 8)
	if cfg.Width != 1 {
		t.Fatalf("strict phase: width = %d, want 1", cfg.Width)
	}
	if cfg.K() != 0 {
		t.Fatalf("strict phase: K = %d, want 0", cfg.K())
	}
}

func TestTwoDConfigForKClampsP(t *testing.T) {
	cfg := TwoDConfigForK(100, 0)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("p=0 produced invalid config: %v", err)
	}
	if cfg.Width > 4 {
		t.Fatalf("p=0 (clamped to 1): width = %d, want <= 4", cfg.Width)
	}
}

func TestKSegmentConfigForK(t *testing.T) {
	for _, k := range []int64{0, 1, 7, 100} {
		cfg := KSegmentConfigForK(k)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := cfg.K(); got != k {
			t.Errorf("k=%d: configured bound %d", k, got)
		}
	}
	if cfg := KSegmentConfigForK(-5); cfg.SegmentSize != 1 {
		t.Errorf("negative k not clamped: %+v", cfg)
	}
}

func TestKRobinConfigRoundTrips(t *testing.T) {
	for _, p := range []int{1, 4, 8, 16} {
		for _, k := range []int64{0, 16, 64, 256, 1024} {
			cfg := KRobinConfigForK(k, p)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("k=%d p=%d: %v", k, p, err)
			}
			if cfg.Policy != multistack.RoundRobin {
				t.Fatalf("k=%d p=%d: policy %v", k, p, cfg.Policy)
			}
			if got := KRobinBound(cfg.Width, p); got > k {
				t.Errorf("k=%d p=%d: bound %d exceeds budget (width %d)", k, p, got, cfg.Width)
			}
		}
	}
}

func TestKRobinWidthShrinksWithP(t *testing.T) {
	// The paper: "k-robin reduces number of sub-stacks with the increase in
	// number of threads to keep the quality bound."
	const k = 512
	w8 := KRobinConfigForK(k, 8).Width
	w16 := KRobinConfigForK(k, 16).Width
	if w16 >= w8 {
		t.Fatalf("width did not shrink with P: w8=%d w16=%d", w8, w16)
	}
}

// Property: every mapping yields a valid config whose claimed bound never
// exceeds the budget (for k large enough to afford any relaxation).
func TestPropertyMappingsRespectBudget(t *testing.T) {
	f := func(kRaw uint16, pRaw uint8) bool {
		k := int64(kRaw)
		p := int(pRaw%16) + 1
		td := TwoDConfigForK(k, p)
		if td.Validate() != nil {
			return false
		}
		if k >= 3 && td.K() > k {
			return false
		}
		ks := KSegmentConfigForK(k)
		if ks.Validate() != nil || ks.K() != k {
			return false
		}
		kr := KRobinConfigForK(k, p)
		if kr.Validate() != nil {
			return false
		}
		return KRobinBound(kr.Width, p) <= k || kr.Width == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
