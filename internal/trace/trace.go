// Package trace records completion-ordered operation histories of
// concurrent stack runs for offline analysis: k-out-of-order checking
// against internal/seqspec and error-distance measurement without the
// online oracle's probe effect.
//
// Each worker records into a private buffer; a global atomic stamp imposes
// a total order on operation completions. The order is completion order,
// not linearization order — concurrent analyses must allow the per-worker
// skew documented in Recorder.Merge.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stack2d/internal/seqspec"
)

// stamped is one recorded operation with its completion stamp.
type stamped struct {
	seq int64
	op  seqspec.Op
}

// Recorder coordinates trace collection across workers.
type Recorder struct {
	stamp atomic.Int64

	mu      sync.Mutex
	workers []*Worker
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewWorker registers and returns a worker-local trace buffer. Safe for
// concurrent use; each returned Worker must be used by one goroutine.
func (r *Recorder) NewWorker() *Worker {
	w := &Worker{r: r}
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// Worker is a single goroutine's trace buffer.
type Worker struct {
	r   *Recorder
	buf []stamped
}

// Push records a push of v. Call it BEFORE invoking the stack operation:
// stamping at invocation guarantees that any pop of v (stamped at
// completion) appears after v's push in the merged trace, so the checkers
// never see a value pop before it exists. The resulting trace is
// "invocation order for pushes, completion order for pops", and bound
// checks must allow the per-worker skew documented on Merge.
func (w *Worker) Push(v uint64) {
	w.buf = append(w.buf, stamped{w.r.stamp.Add(1), seqspec.Op{Kind: seqspec.OpPush, Value: v}})
}

// Pop records a pop; ok=false records an empty return. Call it AFTER the
// stack operation completes (see Push for the ordering contract).
func (w *Worker) Pop(v uint64, ok bool) {
	w.buf = append(w.buf, stamped{w.r.stamp.Add(1), seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok}})
}

// Len reports how many operations this worker has recorded.
func (w *Worker) Len() int { return len(w.buf) }

// Merge produces the completion-ordered history of all workers. It must be
// called after every recording goroutine has finished (quiescence), or the
// trace would be incomplete; a missing stamp is reported as an error.
//
// Interpretation caveat: completion order can differ from linearization
// order by up to one in-flight operation per worker in each direction.
// Checks of an exact bound k on a W-worker trace should therefore allow
// k + 2·W slack (see CheckKWithSlack).
func (r *Recorder) Merge() ([]seqspec.Op, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, w := range r.workers {
		total += len(w.buf)
	}
	if int64(total) != r.stamp.Load() {
		return nil, fmt.Errorf("trace: %d ops recorded but stamp is %d (merge before quiescence?)", total, r.stamp.Load())
	}
	merged := make([]seqspec.Op, total)
	filled := make([]bool, total)
	for _, w := range r.workers {
		for _, st := range w.buf {
			i := int(st.seq - 1)
			if i < 0 || i >= total || filled[i] {
				return nil, fmt.Errorf("trace: duplicate or out-of-range stamp %d", st.seq)
			}
			merged[i] = st.op
			filled[i] = true
		}
	}
	return merged, nil
}

// Workers returns how many workers have registered.
func (r *Recorder) Workers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// CheckKWithSlack merges the trace and checks it against the k-out-of-order
// specification with the completion-order slack for the recorded number of
// workers: allowed = k + 2·workers. It returns the maximum observed
// distance.
func (r *Recorder) CheckKWithSlack(k int64) (maxDist int, err error) {
	ops, err := r.Merge()
	if err != nil {
		return 0, err
	}
	allowed := int(k) + 2*r.Workers()
	return seqspec.CheckKOutOfOrder(ops, allowed)
}

// Distances merges the trace and returns every pop's error distance in
// completion order.
func (r *Recorder) Distances() ([]int, error) {
	ops, err := r.Merge()
	if err != nil {
		return nil, err
	}
	return seqspec.MeasureDistances(ops)
}
