package trace

import (
	"sync"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
)

func TestSingleWorkerMerge(t *testing.T) {
	r := NewRecorder()
	w := r.NewWorker()
	w.Push(1)
	w.Push(2)
	w.Pop(2, true)
	w.Pop(0, false)
	ops, err := r.Merge()
	if err != nil {
		t.Fatal(err)
	}
	want := []seqspec.Op{
		{Kind: seqspec.OpPush, Value: 1},
		{Kind: seqspec.OpPush, Value: 2},
		{Kind: seqspec.OpPop, Value: 2},
		{Kind: seqspec.OpPop, Empty: true},
	}
	if len(ops) != len(want) {
		t.Fatalf("merged %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
	if w.Len() != 4 {
		t.Fatalf("worker Len = %d, want 4", w.Len())
	}
}

func TestMultiWorkerStampsAreTotal(t *testing.T) {
	r := NewRecorder()
	const workers = 8
	const perW = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := r.NewWorker()
			for j := 0; j < perW; j++ {
				w.Push(uint64(i*perW + j))
			}
		}(i)
	}
	wg.Wait()
	ops, err := r.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != workers*perW {
		t.Fatalf("merged %d ops, want %d", len(ops), workers*perW)
	}
	if r.Workers() != workers {
		t.Fatalf("Workers = %d, want %d", r.Workers(), workers)
	}
	seen := make(map[uint64]bool)
	for _, op := range ops {
		if op.Kind != seqspec.OpPush || seen[op.Value] {
			t.Fatalf("bad merged op %+v", op)
		}
		seen[op.Value] = true
	}
}

func TestDistancesOnStrictSequence(t *testing.T) {
	r := NewRecorder()
	w := r.NewWorker()
	w.Push(1)
	w.Push(2)
	w.Pop(1, true) // distance 1
	dists, err := r.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 1 || dists[0] != 1 {
		t.Fatalf("Distances = %v, want [1]", dists)
	}
}

// TestCheckKWithSlackOn2DStack is the integration test Theorem 1 deserves:
// record a concurrent 2D-Stack run and verify the merged trace respects
// k + 2W.
func TestCheckKWithSlackOn2DStack(t *testing.T) {
	cfg := core.Config{Width: 4, Depth: 4, Shift: 2, RandomHops: 1}
	s := core.MustNew[uint64](cfg)
	r := NewRecorder()
	const workers = 4
	var wg sync.WaitGroup
	var label struct {
		mu sync.Mutex
		n  uint64
	}
	nextLabel := func() uint64 {
		label.mu.Lock()
		defer label.mu.Unlock()
		label.n++
		return label.n
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := s.NewHandle()
			w := r.NewWorker()
			for j := 0; j < 3000; j++ {
				if j%2 == 0 {
					v := nextLabel()
					w.Push(v) // record at invocation (see trace.Worker.Push)
					h.Push(v)
				} else {
					v, ok := h.Pop()
					w.Pop(v, ok)
				}
			}
		}()
	}
	wg.Wait()
	// Drain to complete the history.
	h := s.NewHandle()
	w := r.NewWorker()
	for {
		v, ok := h.Pop()
		w.Pop(v, ok)
		if !ok {
			break
		}
	}
	maxDist, err := r.CheckKWithSlack(cfg.K())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("k=%d workers=%d maxObservedDist=%d", cfg.K(), workers, maxDist)
}

func TestMergeBeforeQuiescenceDetected(t *testing.T) {
	r := NewRecorder()
	w := r.NewWorker()
	w.Push(1)
	// Simulate an in-flight op from an unmerged worker by bumping the
	// stamp directly through another worker that we then discard... the
	// public route: a second worker records into a buffer that we ignore
	// by merging from a racing goroutine is unreliable; instead bump the
	// recorder's stamp without a matching buffer entry.
	r.stamp.Add(1)
	if _, err := r.Merge(); err == nil {
		t.Fatal("Merge with missing stamp succeeded")
	}
}
