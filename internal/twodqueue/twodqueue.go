// Package twodqueue generalises the 2D window technique to a FIFO queue —
// the direction the paper's conclusion announces as future work ("we are
// working towards generalizing our design to work for other concurrent data
// structures").
//
// The structure mirrors the 2D-Stack: `width` Michael–Scott sub-queues with
// two windows, one per end. Each sub-queue carries two monotonic counters,
// enqueues and dequeues completed. An Enqueue may use a sub-queue only while
// its enqueue count is below the shared GlobalEnq ceiling; a Dequeue only
// while its dequeue count is below GlobalDeq. When a full round-robin pass
// finds every sub-queue at its ceiling, the corresponding window is raised
// by `shift`. The search (locality anchor, random hops, round-robin
// fallback, hop-on-contention) is the stack's search verbatim.
//
// Relaxation: within one window epoch each sub-queue completes at most
// `depth` dequeues, so items dequeue at most (2·shift + depth)·(width − 1)
// positions out of FIFO order in sequential executions — the direct
// analogue of the stack's Theorem 1. Under concurrency the monotonic
// counters are incremented after the sub-queue operation completes, adding
// up to one position of slack per in-flight operation (at most the number
// of concurrent handles); see K and the tests in twodqueue_test.go.
package twodqueue

import (
	"fmt"

	"stack2d/internal/msqueue"
	"stack2d/internal/pad"
	"stack2d/internal/xrand"
)

// Config carries the tuning parameters; they have the same roles as the
// 2D-Stack's (see internal/core.Config).
type Config struct {
	// Width is the number of sub-queues.
	Width int
	// Depth is the window height (operations per sub-queue per window).
	Depth int64
	// Shift is the window step, 1 <= Shift <= Depth.
	Shift int64
	// RandomHops is the number of random probes before round-robin search.
	RandomHops int
}

// DefaultConfig mirrors the stack's high-throughput configuration for p
// expected threads.
func DefaultConfig(p int) Config {
	if p < 1 {
		p = 1
	}
	return Config{Width: 4 * p, Depth: 64, Shift: 64, RandomHops: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Width < 1:
		return fmt.Errorf("twodqueue: Width must be >= 1, got %d", c.Width)
	case c.Depth < 1:
		return fmt.Errorf("twodqueue: Depth must be >= 1, got %d", c.Depth)
	case c.Shift < 1 || c.Shift > c.Depth:
		return fmt.Errorf("twodqueue: Shift must be in [1, Depth=%d], got %d", c.Depth, c.Shift)
	case c.RandomHops < 0:
		return fmt.Errorf("twodqueue: RandomHops must be >= 0, got %d", c.RandomHops)
	}
	return nil
}

// K returns the sequential k-out-of-order bound of this configuration,
// (2·shift + depth)(width − 1); concurrent executions add at most one
// position per in-flight operation on top.
func (c Config) K() int64 {
	return (2*c.Shift + c.Depth) * int64(c.Width-1)
}

// subQueue is one sub-structure: the Michael–Scott queue plus its two
// monotonic window counters, all padded onto private cache lines.
type subQueue[T any] struct {
	q    *msqueue.Queue[T]
	_    pad.CacheLinePad
	enqs pad.Int64Line // completed enqueues
	deqs pad.Int64Line // completed dequeues
}

// Queue is a lock-free 2D relaxed FIFO queue. Create with New; obtain one
// Handle per goroutine.
type Queue[T any] struct {
	cfg       Config
	subs      []subQueue[T]
	globalEnq pad.Int64Line
	globalDeq pad.Int64Line
	seed      pad.Uint64Line
}

// New returns an empty 2D-Queue.
func New[T any](cfg Config) (*Queue[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &Queue[T]{cfg: cfg, subs: make([]subQueue[T], cfg.Width)}
	for i := range q.subs {
		q.subs[i].q = msqueue.New[T]()
	}
	q.globalEnq.V.Store(cfg.Depth)
	q.globalDeq.V.Store(cfg.Depth)
	return q, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Queue[T] {
	q, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Config returns the queue's configuration.
func (q *Queue[T]) Config() Config { return q.cfg }

// Len sums sub-queue populations; approximate under concurrency.
func (q *Queue[T]) Len() int {
	n := 0
	for i := range q.subs {
		n += q.subs[i].q.Len()
	}
	return n
}

// GlobalEnq exposes the enqueue window ceiling; diagnostics only.
func (q *Queue[T]) GlobalEnq() int64 { return q.globalEnq.V.Load() }

// GlobalDeq exposes the dequeue window ceiling; diagnostics only.
func (q *Queue[T]) GlobalDeq() int64 { return q.globalDeq.V.Load() }

// Drain removes all items; teardown/testing helper.
func (q *Queue[T]) Drain() []T {
	h := q.NewHandle()
	var out []T
	for {
		v, ok := h.Dequeue()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Handle is the per-goroutine operation context (locality anchors and
// RNG). Not safe for concurrent use of the same handle.
type Handle[T any] struct {
	q       *Queue[T]
	rng     *xrand.State
	lastEnq int
	lastDeq int
}

// NewHandle returns an operation handle anchored at random sub-queues.
func (q *Queue[T]) NewHandle() *Handle[T] {
	rng := xrand.New(q.seed.V.Add(0x9e3779b97f4a7c15))
	return &Handle[T]{q: q, rng: rng, lastEnq: rng.Intn(q.cfg.Width), lastDeq: rng.Intn(q.cfg.Width)}
}

// Enqueue adds v at the (relaxed) back of the queue.
func (h *Handle[T]) Enqueue(v T) {
	q := h.q
	width := q.cfg.Width
	for {
		global := q.globalEnq.V.Load()
		idx := h.lastEnq
		probes := 0
		randLeft := q.cfg.RandomHops
		for probes < width {
			if g := q.globalEnq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = q.cfg.RandomHops
			}
			sub := &q.subs[idx]
			if sub.enqs.V.Load() < global {
				// Valid: the M&S enqueue always succeeds (it is lock-free
				// internally); count it and return.
				sub.q.Enqueue(v)
				sub.enqs.V.Add(1)
				h.lastEnq = idx
				return
			}
			if randLeft > 0 {
				randLeft--
				idx = h.rng.Intn(width)
				continue
			}
			probes++
			idx++
			if idx == width {
				idx = 0
			}
		}
		q.globalEnq.V.CompareAndSwap(global, global+q.cfg.Shift)
	}
}

// Dequeue removes and returns a value within the relaxation window; ok is
// false when every sub-queue was observed empty in one full pass.
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	q := h.q
	width := q.cfg.Width
	for {
		global := q.globalDeq.V.Load()
		idx := h.lastDeq
		probes := 0
		randLeft := q.cfg.RandomHops
		sawInvalidNonEmpty := false
		for probes < width {
			if g := q.globalDeq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = q.cfg.RandomHops
				sawInvalidNonEmpty = false
			}
			sub := &q.subs[idx]
			if sub.deqs.V.Load() < global {
				if v, ok, contended := sub.q.TryDequeue(); ok {
					sub.deqs.V.Add(1)
					h.lastDeq = idx
					return v, true
				} else if contended {
					// Another dequeuer beat us here: hop away, fresh pass.
					idx = h.rng.Intn(width)
					probes = 0
					randLeft = 0
					continue
				}
				// Valid but empty: treat as a coverage probe.
			} else if !sub.q.Empty() {
				sawInvalidNonEmpty = true
			}
			if randLeft > 0 {
				randLeft--
				idx = h.rng.Intn(width)
				continue
			}
			probes++
			idx++
			if idx == width {
				idx = 0
			}
		}
		if !sawInvalidNonEmpty {
			// Full coverage saw only empty sub-queues (any non-empty one
			// was dequeue-valid and yielded nothing): report empty.
			var zero T
			return zero, false
		}
		// Items exist beyond the current window: raise it and retry.
		q.globalDeq.V.CompareAndSwap(global, global+q.cfg.Shift)
	}
}
