// Package twodqueue generalises the 2D window technique to a FIFO queue —
// the direction the paper's conclusion announces as future work ("we are
// working towards generalizing our design to work for other concurrent data
// structures").
//
// The structure mirrors the 2D-Stack: `width` Michael–Scott sub-queues with
// two windows, one per end. Each sub-queue carries two monotonic counters,
// enqueues and dequeues completed. An Enqueue may use a sub-queue only while
// its enqueue count is below the shared GlobalEnq ceiling; a Dequeue only
// while its dequeue count is below GlobalDeq. When a full round-robin pass
// finds every sub-queue at its ceiling, the corresponding window is raised
// by `shift`. The search (locality anchor, random hops, round-robin
// fallback, hop-on-contention) is the stack's search verbatim.
//
// Relaxation: within one window epoch each sub-queue completes at most
// `depth` dequeues, so items dequeue at most (2·depth + shift)·(width − 1)
// positions out of FIFO order in sequential executions — the direct
// analogue of the stack's (corrected) Theorem 1 constant, shared so that
// one formula serves both structures (exhaustive small-geometry
// exploration realises queue distances only up to depth·(width − 1), the
// monotone ceilings never re-expose a stale front; see
// seqspec.ExploreQueue and DESIGN.md §2). Under concurrency the monotonic
// counters are incremented after the sub-queue operation completes, adding
// up to one position of slack per in-flight operation (at most the number
// of concurrent handles); see K and the tests in twodqueue_test.go.
//
// # Live reconfiguration
//
// Like the stack (internal/core), the queue's geometry is not frozen at
// construction: the window parameters and the sub-queue array live behind an
// atomic pointer, every operation pins the active geometry through a
// per-handle epoch, and Reconfigure swaps in a new geometry while operations
// run. Depth/shift changes and width growth are wait-free parameter swaps;
// a width shrink waits for the superseded epoch to quiesce, then migrates
// the items stranded in dropped sub-queues back into the live window. Each
// handle also keeps the same operation counters as the stack's handles
// (probes, CAS failures, window moves), aggregated race-safely by
// Queue.StatsSnapshot — the input signals of internal/adapt's feedback
// controller, which steers the queue through the Steerable adapter.
package twodqueue

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"stack2d/internal/core"
	"stack2d/internal/msqueue"
	"stack2d/internal/pad"
	"stack2d/internal/xrand"
	"stack2d/internal/yield"
)

// Config carries the tuning parameters; they have the same roles as the
// 2D-Stack's (see internal/core.Config).
type Config struct {
	// Width is the number of sub-queues.
	Width int
	// Depth is the window height (operations per sub-queue per window).
	Depth int64
	// Shift is the window step, 1 <= Shift <= Depth.
	Shift int64
	// RandomHops is the number of random probes before round-robin search.
	RandomHops int
}

// DefaultConfig mirrors the stack's high-throughput configuration for p
// expected threads.
func DefaultConfig(p int) Config {
	if p < 1 {
		p = 1
	}
	return Config{Width: 4 * p, Depth: 64, Shift: 64, RandomHops: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Width < 1:
		return fmt.Errorf("twodqueue: Width must be >= 1, got %d", c.Width)
	case c.Depth < 1:
		return fmt.Errorf("twodqueue: Depth must be >= 1, got %d", c.Depth)
	case c.Shift < 1 || c.Shift > c.Depth:
		return fmt.Errorf("twodqueue: Shift must be in [1, Depth=%d], got %d", c.Depth, c.Shift)
	case c.RandomHops < 0:
		return fmt.Errorf("twodqueue: RandomHops must be >= 0, got %d", c.RandomHops)
	}
	return nil
}

// K returns the sequential k-out-of-order bound of this configuration,
// (2·depth + shift)(width − 1) — the corrected Theorem-1 constant shared
// with the stack (DESIGN.md §2; exhaustive small-geometry exploration
// realises queue distances only up to depth·(width − 1), so the shared
// constant is comfortably safe here). Concurrent executions add at most
// one position per in-flight operation on top.
func (c Config) K() int64 {
	return (2*c.Depth + c.Shift) * int64(c.Width-1)
}

// Core converts to the structurally identical stack configuration, the
// currency of internal/adapt's controller.
func (c Config) Core() core.Config {
	return core.Config{Width: c.Width, Depth: c.Depth, Shift: c.Shift, RandomHops: c.RandomHops}
}

// FromCore converts a stack configuration back; see Config.Core.
func FromCore(c core.Config) Config {
	return Config{Width: c.Width, Depth: c.Depth, Shift: c.Shift, RandomHops: c.RandomHops}
}

// subQueue is one sub-structure: the Michael–Scott queue plus its two
// monotonic window counters, all padded onto private cache lines. Slots are
// held by pointer so successive geometries can share surviving sub-queues
// without moving an item.
type subQueue[T any] struct {
	q    *msqueue.Queue[T]
	_    pad.CacheLinePad
	enqs pad.Int64Line // completed enqueues (plus the join floor, see newSubQueue)
	deqs pad.Int64Line // completed dequeues (plus the join floor)
}

// newSubQueue allocates an empty sub-queue joining the structure at the
// given counter floors. A sub-queue added by a width growth must not start
// its counters at zero: the windows have typically advanced far past zero,
// and a zero-count newcomer would be enqueue-valid for the whole distance —
// an unbounded relaxation hole. Starting at the current window floor lets it
// absorb at most `depth` operations per window, like every other sub-queue.
func newSubQueue[T any](enqFloor, deqFloor int64) *subQueue[T] {
	sq := &subQueue[T]{q: msqueue.New[T]()}
	sq.enqs.V.Store(enqFloor)
	sq.deqs.V.Store(deqFloor)
	return sq
}

// Queue is a lock-free 2D relaxed FIFO queue. Create with New; obtain one
// Handle per goroutine. A Queue must not be copied.
type Queue[T any] struct {
	// geo is the active geometry (window parameters + sub-queue array),
	// replaced wholesale by Reconfigure; padded away from the globals so
	// window movement does not invalidate the read-mostly pointer.
	geo atomic.Pointer[geometry[T]]
	_   pad.CacheLinePad
	// globalEnq/globalDeq are the per-end window ceilings. Unlike the
	// stack's Global they are monotone non-decreasing: both ends only ever
	// advance.
	globalEnq pad.Int64Line
	globalDeq pad.Int64Line
	seed      pad.Uint64Line

	// reMu serialises reconfigurations. It also guards the placement
	// settings below, which every geometry build reads, and the structural
	// observer (obsv), whose events are emitted only under it.
	reMu sync.Mutex
	// obsv receives structural transition events (reconfigurations, shrink
	// handoffs, placement re-homes); nil — the default — costs nothing.
	// The queue reuses core's event vocabulary so one consumer serves both
	// structures. See SetObserver and DESIGN.md §8.
	obsv core.Observer
	// placePolicy/placeSockets are the socket-placement model installed by
	// SetPlacement (nil policy / 1 socket = placement off, the default);
	// see core.Stack's identically named fields and DESIGN.md §7.
	placePolicy  core.PlacementPolicy
	placeSockets int
	// handleSeq counts NewHandle calls for the creation-order socket
	// heuristic (core.HeuristicSocket).
	handleSeq atomic.Int64
	// shrinkDisp accumulates, over all width shrinks, the resident
	// population at each migration plus the client enqueues that landed in
	// the survivors while the drain ran — an upper bound (to in-flight
	// slack) on the extra FIFO displacement the migrations can have caused;
	// see handoffStranded and ShrinkDisplacementBound.
	shrinkDisp atomic.Int64

	// hMu guards the handle registry, which powers both epoch-quiescence
	// detection and StatsSnapshot. Each entry holds the handle weakly (so
	// abandoned handles are collectable) but its published counters
	// strongly: a collected handle's final counters stay readable until a
	// later registration prunes the entry and folds them into retired.
	// This makes StatsSnapshot exact with no dependence on GC-cleanup
	// timing — the same scheme as core.Stack's registry.
	hMu     sync.Mutex
	handles []handleEntry[T]
	retired core.OpStats
}

// handleEntry is one registry slot: the weak handle for liveness/epoch
// checks plus a strong reference to its atomic counter mirror, so pruning
// can fold every dead entry's counters into retired unconditionally.
type handleEntry[T any] struct {
	wp     weak.Pointer[Handle[T]]
	shared *core.SharedCounters
}

// New returns an empty 2D-Queue.
func New[T any](cfg Config) (*Queue[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &Queue[T]{placeSockets: 1}
	q.geo.Store(freshGeometry[T](cfg, 1))
	q.globalEnq.V.Store(cfg.Depth)
	q.globalDeq.V.Store(cfg.Depth)
	return q, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Queue[T] {
	q, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Config returns the queue's active configuration. Under live
// reconfiguration the value is the geometry current at the call.
func (q *Queue[T]) Config() Config { return q.geo.Load().config() }

// Width returns the current number of sub-queues.
func (q *Queue[T]) Width() int { return q.geo.Load().width }

// Epoch returns the active geometry's epoch; it increases by one per
// successful reconfiguration. Diagnostics only.
func (q *Queue[T]) Epoch() uint64 { return q.geo.Load().epoch }

// Len sums sub-queue populations plus every live handle's buffered
// residents (pending enqueues and prefetched-but-undelivered values), so
// op-buffered items are never phantom-invisible to sizing; approximate
// under concurrency.
func (q *Queue[T]) Len() int {
	g := q.geo.Load()
	n := 0
	for i := range g.subs {
		n += g.subs[i].q.Len()
	}
	q.hMu.Lock()
	for _, e := range q.handles {
		if h := e.wp.Value(); h != nil {
			n += int(h.bufCount.Load())
		}
	}
	q.hMu.Unlock()
	return n
}

// GlobalEnq exposes the enqueue window ceiling; diagnostics only.
func (q *Queue[T]) GlobalEnq() int64 { return q.globalEnq.V.Load() }

// GlobalDeq exposes the dequeue window ceiling; diagnostics only.
func (q *Queue[T]) GlobalDeq() int64 { return q.globalDeq.V.Load() }

// ShrinkDisplacementBound returns the cumulative upper bound on FIFO
// displacement attributable to width-shrink migrations: the sum over all
// shrinks of the population resident when the stranded items were handed
// off, plus the concurrent client enqueues the survivors absorbed during
// each drain (read from their enqueue counters). Exact up to one position
// per in-flight operation. Zero while no shrink has migrated anything.
// Diagnostics — cmd/adapttune uses it to budget its realised-distance
// check.
func (q *Queue[T]) ShrinkDisplacementBound() int64 { return q.shrinkDisp.Load() }

// SubLens returns a snapshot of each sub-queue's population; diagnostics
// and tests.
func (q *Queue[T]) SubLens() []int {
	g := q.geo.Load()
	out := make([]int, len(g.subs))
	for i := range g.subs {
		out[i] = g.subs[i].q.Len()
	}
	return out
}

// Drain removes all items; teardown/testing helper. Handles with armed op
// buffers must FlushOps first — Drain only sees published items (buffered
// residents belong to their owning goroutines).
func (q *Queue[T]) Drain() []T {
	h := q.NewHandle()
	var out []T
	for {
		v, ok := h.Dequeue()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Handle is the per-goroutine operation context (locality anchors, RNG and
// work counters). Not safe for concurrent use of the same handle; the Queue
// is fully concurrent across handles.
type Handle[T any] struct {
	q       *Queue[T]
	rng     *xrand.State
	lastEnq int // sub-queue index of the most recent enqueue success
	lastDeq int
	stats   core.OpStats

	// socket is the placement hint (creation-order heuristic, overridden
	// by Pin), mirroring core.Handle.socket: local-probe searches visit
	// slots homed on it first and CAS failures are attributed to it.
	// Always in [0, core.MaxPlacementSockets).
	socket int

	// planGeo/planSocket key the cached probe plan (core.BuildProbePlan
	// over the geometry's homes, remote section privately rotated),
	// rebuilt lazily when the geometry or pinned socket changes; see
	// core.Handle's identically named fields. Owner-goroutine only.
	planGeo    *geometry[T]
	planSocket int
	planOrd    []int
	planPos    []int
	planLocalN int

	// sinceFlush counts operations since stats were last published (see
	// maybeFlush in stats.go).
	sinceFlush int

	// latCountdown counts operations down to the next latency sample: one
	// operation in latencySampleInterval is timed end to end, exactly as in
	// core.Handle — a decrement-and-test countdown so the uncontended fast
	// path pays one predicted-untaken branch and the clock is read only
	// after the sample decision. Owner-goroutine only.
	latCountdown int
	latSampling  bool
	latStart     time.Time

	// epoch is the geometry epoch the handle is currently operating under,
	// or 0 when idle. Written only by the owner, read by reconfigurers to
	// detect quiescence of a superseded geometry.
	epoch atomic.Uint64

	// Operation-buffer state (buffer.go); all owner-goroutine only except
	// bufCount, the atomically readable resident total that Queue.Len sums
	// through the registry.
	bufCap    int
	pending   []T
	prefetch  []T
	prefStart int
	bufEpoch  uint64
	bufCount  atomic.Int64

	// shared is the periodically flushed, atomically readable copy of
	// stats, consumed by Queue.StatsSnapshot; a separate allocation so the
	// GC cleanup can read the final counters without keeping the handle
	// alive.
	shared *core.SharedCounters
}

// NewHandle returns an operation handle anchored at random sub-queues and
// registers it for quiescence tracking and stats aggregation. Registration
// is weak for the handle itself, so an abandoned handle is collectable; its
// last published counters live on in the registry entry until the next
// registration prunes it into the retired total.
func (q *Queue[T]) NewHandle() *Handle[T] {
	seed := q.seed.V.Add(0x9e3779b97f4a7c15)
	rng := xrand.New(seed)
	geo := q.geo.Load()
	order := int(q.handleSeq.Add(1) - 1)
	h := &Handle[T]{
		q:            q,
		rng:          rng,
		lastEnq:      rng.Intn(geo.width),
		lastDeq:      rng.Intn(geo.width),
		socket:       core.HeuristicSocket(order, geo.nsockets),
		latCountdown: latencySampleInterval,
		shared:       &core.SharedCounters{},
	}
	q.hMu.Lock()
	live := q.handles[:0]
	for _, old := range q.handles {
		if old.wp.Value() != nil {
			live = append(live, old)
		} else {
			q.retired.Add(old.shared.Load())
		}
	}
	q.handles = append(live, handleEntry[T]{wp: weak.Make(h), shared: h.shared})
	q.hMu.Unlock()
	return h
}

// Pin declares the socket the owning goroutine runs on, overriding the
// creation-order heuristic; see core.Handle.Pin — same semantics, same
// modulo folding, same use by the local-probe placement policy.
// Owner-goroutine only.
func (h *Handle[T]) Pin(socket int) {
	if socket < 0 {
		socket = 0
	}
	h.socket = socket % core.MaxPlacementSockets
}

// Socket returns the handle's current placement hint.
func (h *Handle[T]) Socket() int { return h.socket }

// sockIdx reduces the socket hint to the geometry's socket count, keeping
// attribution consistent with the probe walk; see core.Handle.sockIdx.
func (h *Handle[T]) sockIdx(geo *geometry[T]) int {
	if geo.nsockets > 1 {
		return h.socket % geo.nsockets
	}
	return h.socket
}

// probe returns the handle's probe plan for the pinned geometry (see
// core.Handle.probe): the slot permutation to walk, its slot→position
// inverse, and the local-slot count; all nil/0 for placement-blind
// geometries. Cached per (geometry, socket).
func (h *Handle[T]) probe(geo *geometry[T]) (ord, pos []int, localN int) {
	if !geo.localProbe {
		return nil, nil, 0
	}
	if h.planGeo != geo || h.planSocket != h.socket {
		s := h.socket % geo.nsockets
		h.planOrd, h.planPos, h.planLocalN = core.BuildProbePlan(geo.homes, s, h.rng.Intn(geo.width))
		h.planGeo, h.planSocket = geo, h.socket
	}
	return h.planOrd, h.planPos, h.planLocalN
}

// armLatSample opens a latency sample: reset the countdown, mark sampling,
// read the clock. Noinline keeps the arm body (and the time.Now call) out
// of pin's inlined fast path — the countdown test is the only sampling
// instruction an unsampled operation executes, exactly as in core.Handle.
//
//go:noinline
func (h *Handle[T]) armLatSample() {
	h.latCountdown = latencySampleInterval
	h.latSampling = true
	h.latStart = time.Now()
}

// closeLatSample records the in-flight sample's bucket; noinline for the
// same reason as armLatSample.
//
//go:noinline
func (h *Handle[T]) closeLatSample() {
	h.latSampling = false
	h.stats.Latency[core.LatencyBucket(time.Since(h.latStart))]++
}

// pinGeo publishes the handle as active on the current geometry and returns
// it; the re-check after the epoch store closes the race with a concurrent
// geometry swap (see core.Handle.pinGeo).
func (h *Handle[T]) pinGeo() *geometry[T] {
	for {
		geo := h.q.geo.Load()
		h.epoch.Store(geo.epoch)
		if h.q.geo.Load() == geo {
			if h.lastEnq >= geo.width {
				h.lastEnq = h.rng.Intn(geo.width)
			}
			if h.lastDeq >= geo.width {
				h.lastDeq = h.rng.Intn(geo.width)
			}
			return geo
		}
	}
}

// pin is pinGeo plus the 1-in-N latency sample decision closed by unpin,
// mirroring the stack's sampler.
func (h *Handle[T]) pin() *geometry[T] {
	h.latCountdown--
	if h.latCountdown <= 0 {
		h.armLatSample()
	}
	return h.pinGeo()
}

// pinBatch is pin without the sampling countdown: a batch is many
// operations under one pin, so it must neither open a sample nor consume a
// countdown tick (see core.Handle.pinBatch for the stride bug this fixes;
// TestQueueLatencySampleStridePinned pins the queue side).
func (h *Handle[T]) pinBatch() *geometry[T] {
	return h.pinGeo()
}

// unpin marks the handle idle, closes an in-flight latency sample, and
// periodically publishes its counters.
func (h *Handle[T]) unpin() {
	h.epoch.Store(0)
	if h.latSampling {
		h.closeLatSample()
	}
	h.maybeFlush()
}

// Enqueue adds v at the (relaxed) back of the queue. The search mirrors the
// stack's Push: locality anchor, random hops, round-robin coverage, a hop on
// contention (a failed single-round sub-enqueue), restart on any observed
// window move.
func (h *Handle[T]) Enqueue(v T) {
	geo := h.pin()
	q := h.q
	width := geo.width
	// Under a local-probe placement policy the search walks a per-socket
	// permutation (same-socket slots first); ord is nil otherwise and the
	// pre-placement path runs unchanged. Both walks cover all width slots,
	// so the coverage discipline is identical (DESIGN.md §7).
	ord, pos, localN := h.probe(geo)
	sockIdx := h.sockIdx(geo)
	for {
		global := q.globalEnq.V.Load()
		idx := h.lastEnq
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		for probes < width {
			if g := q.globalEnq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			sub := geo.subs[idx]
			h.stats.Probes++
			if sub.enqs.V.Load() < global {
				if sub.q.TryEnqueue(v) {
					sub.enqs.V.Add(1)
					h.lastEnq = idx
					h.stats.Pushes++
					h.unpin()
					return
				}
				// Contention: another enqueuer made progress here; hop to a
				// random sub-queue and restart the coverage count.
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		gate(yield.PointWindowMove)
		if q.globalEnq.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowRaises++
		}
	}
}

// Dequeue removes and returns a value within the relaxation window; ok is
// false when every sub-queue was observed empty in one full pass. Dequeue-
// end window moves are counted as WindowLowers — the front-end analogue of
// the stack's downward moves — so the controller's churn signal sums both
// ends.
func (h *Handle[T]) Dequeue() (v T, ok bool) {
	geo := h.pin()
	q := h.q
	width := geo.width
	ord, pos, localN := h.probe(geo) // see Enqueue
	sockIdx := h.sockIdx(geo)
	for {
		global := q.globalDeq.V.Load()
		idx := h.lastDeq
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		sawInvalidNonEmpty := false
		for probes < width {
			if g := q.globalDeq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				sawInvalidNonEmpty = false
				h.stats.Restarts++
			}
			sub := geo.subs[idx]
			h.stats.Probes++
			if sub.deqs.V.Load() < global {
				if val, got, contended := sub.q.TryDequeue(); got {
					sub.deqs.V.Add(1)
					h.lastDeq = idx
					h.stats.Pops++
					h.unpin()
					return val, true
				} else if contended {
					// Another dequeuer beat us here: hop away, fresh pass.
					h.stats.CASFailures++
					h.stats.SocketCAS[sockIdx]++
					gate(yield.PointCASFail)
					idx = core.HopIdx(h.rng, width, ord, localN)
					if ord != nil {
						at = pos[idx]
					}
					probes = 0
					randLeft = 0
					continue
				}
				// Valid but empty: treat as a coverage probe.
			} else if !sub.q.Empty() {
				sawInvalidNonEmpty = true
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if !sawInvalidNonEmpty {
			// Full coverage saw only empty sub-queues (any non-empty one
			// was dequeue-valid and yielded nothing): report empty.
			h.stats.EmptyPops++
			h.unpin()
			var zero T
			return zero, false
		}
		// Items exist beyond the current window: raise it and retry.
		gate(yield.PointWindowMove)
		if q.globalDeq.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowLowers++
		}
	}
}
