package twodqueue

import (
	"testing"

	"stack2d/internal/core"
)

// TestOpAllocsPinned pins the queue hot path's allocation cost, sampling
// branch included: Enqueue allocates exactly its Michael–Scott node,
// Dequeue allocates nothing. The 1-in-64 latency sampler and an installed
// structural observer (never read on the operation path) must both add
// zero.
func TestOpAllocsPinned(t *testing.T) {
	run := func(t *testing.T, q *Queue[uint64]) {
		h := q.NewHandle()
		var i uint64
		if got := testing.AllocsPerRun(10000, func() { h.Enqueue(i); i++ }); got != 1 {
			t.Fatalf("Enqueue allocates %v per op, pinned at 1 (node)", got)
		}
		if got := testing.AllocsPerRun(5000, func() { h.Dequeue() }); got != 0 {
			t.Fatalf("Dequeue allocates %v per op, pinned at 0", got)
		}
	}
	t.Run("no-observer", func(t *testing.T) {
		run(t, MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2}))
	})
	t.Run("observer-installed", func(t *testing.T) {
		q := MustNew[uint64](Config{Width: 4, Depth: 64, Shift: 64, RandomHops: 2})
		q.SetObserver(nopObserver{})
		run(t, q)
	})
}

type nopObserver struct{}

func (nopObserver) ObserveStruct(core.StructEvent) {}
