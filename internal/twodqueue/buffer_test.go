package twodqueue

import "testing"

// TestQueueLatencySampleStridePinned is the queue twin of core's stride
// pin: batch operations must neither open a latency sample nor consume a
// countdown tick, so the 1-in-64 stride counts singleton operations only.
func TestQueueLatencySampleStridePinned(t *testing.T) {
	cfg := Config{Width: 2, Depth: 64, Shift: 64, RandomHops: 0}
	t.Run("queue-batches", func(t *testing.T) {
		h := MustNew[uint64](cfg).NewHandle()
		for i := 0; i < latencySampleInterval-1; i++ {
			h.Enqueue(uint64(i))
			h.EnqueueBatch([]uint64{1, 2, 3})
			if got := h.DequeueBatch(4); len(got) != 4 {
				t.Fatalf("DequeueBatch returned %d values, want 4", len(got))
			}
		}
		if n := h.Stats().LatencySamples(); n != 0 {
			t.Fatalf("%d samples after %d singletons with interleaved batches, want 0",
				n, latencySampleInterval-1)
		}
		h.Enqueue(0) // singleton number latencySampleInterval
		if n := h.Stats().LatencySamples(); n != 1 {
			t.Fatalf("%d samples after %d singletons, want exactly 1", n, latencySampleInterval)
		}
	})
	t.Run("buffered-ops-do-not-sample", func(t *testing.T) {
		h := MustNew[uint64](cfg).NewHandle()
		h.SetOpBuffer(4)
		for i := 0; i < 8*latencySampleInterval; i++ {
			h.BufferedEnqueue(uint64(i))
			if _, ok := h.BufferedDequeue(); !ok {
				t.Fatal("BufferedDequeue missed with the handle's own enqueues pending")
			}
		}
		h.FlushOps()
		if n := h.Stats().LatencySamples(); n != 0 {
			t.Fatalf("%d samples from buffered-only traffic, want 0", n)
		}
	})
}

// TestQueueBatchOps pins the batch primitives' contract: order, the
// single-counter-bump accounting, and the empty verdict.
func TestQueueBatchOps(t *testing.T) {
	cfg := Config{Width: 1, Depth: 4, Shift: 4, RandomHops: 0}
	q := MustNew[uint64](cfg)
	h := q.NewHandle()
	// 10 items through a depth-4 window: forces window raises mid-batch.
	vs := make([]uint64, 10)
	for i := range vs {
		vs[i] = uint64(i + 1)
	}
	h.EnqueueBatch(vs)
	if got := q.Len(); got != 10 {
		t.Fatalf("Len = %d after EnqueueBatch of 10, want 10", got)
	}
	// Width 1: strict FIFO, so the batch must come back in order.
	got := h.DequeueBatch(10)
	if len(got) != 10 {
		t.Fatalf("DequeueBatch returned %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("DequeueBatch[%d] = %d, want %d (FIFO order lost)", i, v, i+1)
		}
	}
	if extra := h.DequeueBatch(4); len(extra) != 0 {
		t.Fatalf("DequeueBatch returned %d values from an empty queue", len(extra))
	}
	st := h.Stats()
	if st.Pushes != 10 || st.Pops != 10 {
		t.Fatalf("stats Pushes=%d Pops=%d, want 10/10", st.Pushes, st.Pops)
	}
	if st.EmptyPops != 1 {
		t.Fatalf("EmptyPops = %d after one empty DequeueBatch, want 1", st.EmptyPops)
	}
}

// TestQueueOpBufferSemantics covers the FIFO buffer contract: pending
// never served directly, the pop-miss flush, Len counting residents, and
// the disarm path.
func TestQueueOpBufferSemantics(t *testing.T) {
	cfg := Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 0}

	t.Run("pop-miss-flush-preserves-fifo", func(t *testing.T) {
		q := MustNew[uint64](cfg)
		h := q.NewHandle()
		h.SetOpBuffer(8)
		for i := uint64(1); i <= 3; i++ {
			h.BufferedEnqueue(i)
		}
		if p, u := h.BufferedCounts(); p != 3 || u != 0 {
			t.Fatalf("BufferedCounts = (%d,%d), want (3,0)", p, u)
		}
		if got := q.Len(); got != 3 {
			t.Fatalf("Len = %d with 3 pending enqueues, want 3", got)
		}
		// The structure is empty, so this dequeue must flush the pending
		// batch and serve 1 first — NOT the newest pending value.
		for want := uint64(1); want <= 3; want++ {
			v, ok := h.BufferedDequeue()
			if !ok || v != want {
				t.Fatalf("BufferedDequeue = (%d,%t), want (%d,true)", v, ok, want)
			}
		}
		if _, ok := h.BufferedDequeue(); ok {
			t.Fatal("BufferedDequeue reported a value from an empty queue")
		}
		if got := q.Len(); got != 0 {
			t.Fatalf("Len = %d after full delivery, want 0", got)
		}
	})

	t.Run("size-triggered-publish", func(t *testing.T) {
		q := MustNew[uint64](cfg)
		h := q.NewHandle()
		h.SetOpBuffer(4)
		for i := uint64(1); i <= 3; i++ {
			h.BufferedEnqueue(i)
		}
		if structural := len(q.Drain()); structural != 0 {
			t.Fatalf("published before the threshold: %d structural items", structural)
		}
		h.BufferedEnqueue(4) // hits bufCap: combined publish
		if p, _ := h.BufferedCounts(); p != 0 {
			t.Fatalf("%d pending after threshold publish, want 0", p)
		}
		if got := len(q.Drain()); got != 4 {
			t.Fatalf("Drain returned %d values after publish, want 4", got)
		}
	})

	t.Run("prefetch-fifo-and-disarm", func(t *testing.T) {
		q := MustNew[uint64](cfg)
		seedH := q.NewHandle()
		seedH.EnqueueBatch([]uint64{1, 2, 3, 4})
		h := q.NewHandle()
		h.SetOpBuffer(8)
		if v, ok := h.BufferedDequeue(); !ok || v != 1 {
			t.Fatalf("BufferedDequeue = (%d,%t), want (1,true)", v, ok)
		}
		if _, u := h.BufferedCounts(); u != 3 {
			t.Fatalf("%d undelivered after refill, want 3", u)
		}
		if got := q.Len(); got != 3 {
			t.Fatalf("Len = %d with 3 undelivered prefetched values, want 3", got)
		}
		h.SetOpBuffer(0) // disarm: prefetch re-enqueued at the back
		if h.OpBuffer() != 0 {
			t.Fatal("OpBuffer still armed after disarm")
		}
		got := q.Drain()
		if len(got) != 3 {
			t.Fatalf("Drain returned %d values after disarm, want 3", len(got))
		}
		// Nothing else was in the queue, so the returned values keep their
		// relative delivery order even at the back.
		for i, want := range []uint64{2, 3, 4} {
			if got[i] != want {
				t.Fatalf("Drain[%d] = %d, want %d", i, got[i], want)
			}
		}
	})

	t.Run("reconfig-flushes-pending", func(t *testing.T) {
		q := MustNew[uint64](cfg)
		h := q.NewHandle()
		h.SetOpBuffer(16)
		h.BufferedEnqueue(1)
		h.BufferedEnqueue(2)
		if err := q.Reconfigure(Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 0}); err != nil {
			t.Fatal(err)
		}
		h.BufferedEnqueue(3)
		if p, _ := h.BufferedCounts(); p != 1 {
			t.Fatalf("%d pending after epoch flush, want 1 (just the post-reconfig enqueue)", p)
		}
		if structural := len(q.Drain()); structural != 2 {
			t.Fatalf("epoch flush published %d items, want 2", structural)
		}
	})
}
