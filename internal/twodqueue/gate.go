package twodqueue

import "stack2d/internal/yield"

// Gate is the deterministic schedule director's yield hook for the 2D-Queue
// (DESIGN.md §10). Nil in production; every call site is off the uncontended
// fast path and pays a single predicted-untaken nil check. Install and clear
// only while no operations are in flight.
var Gate func(yield.Point)

func gate(p yield.Point) {
	if g := Gate; g != nil {
		g(p)
	}
}

// SetAnchor forces both of the handle's locality anchors (enqueue and
// dequeue side) to start the next search at sub-queue idx. With
// RandomHops = 0 and no concurrent operations the next Enqueue or Dequeue
// then lands on idx whenever idx is window-valid — the property exact trace
// replay (internal/director) relies on to drive the real queue through a
// seqspec explorer trace. Out-of-range indices are re-anchored randomly by
// the next pin. Owner-goroutine only; diagnostics and directed replay, not
// a tuning knob.
func (h *Handle[T]) SetAnchor(idx int) {
	if idx < 0 {
		idx = 0
	}
	h.lastEnq = idx
	h.lastDeq = idx
}
