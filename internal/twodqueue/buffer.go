package twodqueue

// Per-handle operation buffering, the FIFO twin of internal/core's
// buffer.go (DESIGN.md §11). An armed handle batches its enqueues locally
// and publishes them through EnqueueBatch when the buffer fills, and
// refills a local dequeue prefetch through DequeueBatch. Two FIFO-specific
// differences from the stack side:
//
//   - BufferedDequeue never serves pending enqueues. On a stack the newest
//     pending item is exactly what Pop would return; on a queue it is the
//     farthest item from the front, so eliding would realise the worst
//     possible displacement. Instead, a dequeue that finds the structure
//     empty while pushes are pending flushes them and retries the refill
//     once — the pop-miss flush — so a producer/consumer pair on one
//     handle can never deadlock against its own buffer.
//
//   - Disarming with undelivered prefetched values re-enqueues them at the
//     back: they were already dequeued from the front, and a queue has no
//     order-restoring return path. The one-time displacement is bounded by
//     the queue length at the disarm; deliver the prefetch through
//     BufferedDequeue first when order matters.

// SetOpBuffer arms (n >= 1) or disarms (n <= 0) operation buffering on the
// handle with a combined-publication threshold of n operations. Disarming —
// and re-arming with a different threshold — first flushes pending
// enqueues and re-enqueues undelivered prefetched values (see the package
// note above on the displacement this costs). Owner-goroutine only.
func (h *Handle[T]) SetOpBuffer(n int) {
	if h.bufCap > 0 {
		h.FlushOps()
		h.returnPrefetch()
	}
	if n <= 0 {
		h.bufCap = 0
		h.pending = nil
		h.prefetch = nil
		return
	}
	h.bufCap = n
	h.pending = make([]T, 0, n)
	h.prefetch = make([]T, 0, n)
	h.prefStart = 0
	h.bufEpoch = h.q.geo.Load().epoch
}

// OpBuffer returns the armed combined-publication threshold (0 when
// buffering is off).
func (h *Handle[T]) OpBuffer() int { return h.bufCap }

// BufferedCounts reports the handle's private residents: pending enqueues
// not yet published, and prefetched values not yet delivered.
// Owner-goroutine only; foreign readers get the sum via Queue.Len.
func (h *Handle[T]) BufferedCounts() (pending, undelivered int) {
	return len(h.pending), len(h.prefetch) - h.prefStart
}

// syncBufCount republishes the atomically readable buffered total after
// any buffer mutation; one uncontended store to the handle's own line.
func (h *Handle[T]) syncBufCount() {
	h.bufCount.Store(int64(len(h.pending) + len(h.prefetch) - h.prefStart))
}

// maybeEpochFlush reconciles the buffers with a geometry change, exactly
// as core's: pending enqueues buffered under a superseded geometry are
// published into the new one before the next buffered operation proceeds.
// Prefetched values were already dequeued and keep serving.
func (h *Handle[T]) maybeEpochFlush() {
	if e := h.q.geo.Load().epoch; e != h.bufEpoch {
		h.bufEpoch = e
		if len(h.pending) > 0 {
			h.flushPending()
		}
	}
}

// flushPending publishes the pending enqueues as one combined batch.
func (h *Handle[T]) flushPending() {
	h.EnqueueBatch(h.pending)
	clear(h.pending)
	h.pending = h.pending[:0]
	h.syncBufCount()
}

// returnPrefetch re-enqueues undelivered prefetched values at the back, in
// their delivery order; disarm-only (see the package note).
func (h *Handle[T]) returnPrefetch() {
	if h.prefStart < len(h.prefetch) {
		h.EnqueueBatch(h.prefetch[h.prefStart:])
	}
	clear(h.prefetch)
	h.prefetch = h.prefetch[:0]
	h.prefStart = 0
	h.syncBufCount()
}

// FlushOps publishes all pending buffered enqueues immediately. It does
// not disturb the dequeue prefetch: prefetched values were already removed
// from the structure and remain deliverable through BufferedDequeue. Call
// before quiescing, draining the queue, or abandoning the handle. No-op
// when nothing is pending.
func (h *Handle[T]) FlushOps() {
	if len(h.pending) > 0 {
		h.flushPending()
	}
}

// BufferedEnqueue adds v through the operation buffer: the value is
// retained locally and published — together with every pending neighbour —
// as one combined EnqueueBatch once bufCap values are pending. With
// buffering disarmed it is exactly Enqueue.
func (h *Handle[T]) BufferedEnqueue(v T) {
	if h.bufCap <= 0 {
		h.Enqueue(v)
		return
	}
	h.maybeEpochFlush()
	h.pending = append(h.pending, v)
	if len(h.pending) >= h.bufCap {
		h.flushPending()
		return
	}
	h.syncBufCount()
}

// BufferedDequeue removes a value through the operation buffer: the
// prefetch serves front-first; an exhausted prefetch is refilled with one
// combined DequeueBatch of up to bufCap values. Pending enqueues are never
// served directly (see the package note) — but an empty refill with
// enqueues pending flushes them and refills once more, so ok is false only
// when the structure and the handle's own buffer are both out of items.
// With buffering disarmed it is exactly Dequeue.
func (h *Handle[T]) BufferedDequeue() (v T, ok bool) {
	if h.bufCap <= 0 {
		return h.Dequeue()
	}
	h.maybeEpochFlush()
	if h.prefStart >= len(h.prefetch) {
		h.prefetch = h.dequeueBatchInto(h.prefetch[:0], h.bufCap)
		h.prefStart = 0
		if len(h.prefetch) == 0 && len(h.pending) > 0 {
			h.flushPending() // pop-miss flush: our own enqueues are the supply
			h.prefetch = h.dequeueBatchInto(h.prefetch[:0], h.bufCap)
		}
		if len(h.prefetch) == 0 {
			h.syncBufCount()
			var zero T
			return zero, false
		}
	}
	v = h.prefetch[h.prefStart]
	var zero T
	h.prefetch[h.prefStart] = zero
	h.prefStart++
	h.syncBufCount()
	return v, true
}
