package twodqueue

import (
	"reflect"
	"sync"
	"testing"

	"stack2d/internal/core"
)

// TestQueuePlacementRoundTrip mirrors the stack's placement round-trip:
// pinned enqueues, an attributed grow, an attributed shrink, conservation.
func TestQueuePlacementRoundTrip(t *testing.T) {
	q := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	q.SetPlacement(core.LocalFirst(), 2)
	if got, want := q.Placement(), []int{0, 1, 0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("initial homes: got %v, want %v", got, want)
	}

	h0, h1 := q.NewHandle(), q.NewHandle()
	h0.Pin(0)
	h1.Pin(1)
	const n = 200
	for i := 0; i < n; i++ {
		h0.Enqueue(i)
		h1.Enqueue(n + i)
	}

	if err := q.ReconfigureOnSocket(Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Placement(), []int{0, 1, 0, 1, 1, 1, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("homes after grow: got %v, want %v", got, want)
	}
	for i := 0; i < n; i++ {
		h1.Enqueue(2*n + i)
	}

	if err := q.ReconfigureOnSocket(Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Placement(), []int{0, 0, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("homes after shrink: got %v, want %v", got, want)
	}

	seen := make(map[int]bool)
	for _, v := range q.Drain() {
		if seen[v] {
			t.Fatalf("duplicated item %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3*n {
		t.Fatalf("drained %d items, want %d", len(seen), 3*n)
	}
}

// TestQueuePlacementUnderConcurrentReconfig is the queue twin of the
// stack's race test: pinned workers vs live geometry and placement
// changes; run with -race in CI.
func TestQueuePlacementUnderConcurrentReconfig(t *testing.T) {
	q := MustNew[uint64](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2})
	q.SetPlacement(core.LocalFirst(), 2)
	const workers = 4
	const perWorker = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			h.Pin(core.HeuristicSocket(w, 2))
			for i := 0; i < perWorker; i++ {
				h.Enqueue(uint64(w)<<32 | uint64(i))
				if i%3 == 0 {
					h.Dequeue()
				}
			}
		}(w)
	}
	widths := []int{8, 2, 6, 3, 4}
	for i, width := range widths {
		if err := q.ReconfigureOnSocket(Config{Width: width, Depth: 8, Shift: 8, RandomHops: 2}, i%2); err != nil {
			t.Fatal(err)
		}
		if homes := q.Placement(); len(homes) != width {
			t.Fatalf("placement has %d homes at width %d", len(homes), width)
		}
	}
	q.SetPlacement(core.RoundRobin(), 2)
	q.SetPlacement(core.LocalFirst(), 2)
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, v := range q.Drain() {
		if seen[v] {
			t.Fatalf("duplicated item %#x", v)
		}
		seen[v] = true
	}
}

// TestSteerableForwardsSocket: the adapter passes the requester through to
// the queue's placement machinery.
func TestSteerableForwardsSocket(t *testing.T) {
	q := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	q.SetPlacement(core.LocalFirst(), 2)
	st := Steer(q)
	if err := st.ReconfigureOnSocket(core.Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Placement(), []int{0, 1, 0, 1, 1, 1, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("homes after steered grow: got %v, want %v", got, want)
	}
}
