package twodqueue

import (
	"runtime"

	"stack2d/internal/core"
	"stack2d/internal/pad"
	"stack2d/internal/yield"
)

// geometry is one immutable snapshot of the queue's structure: the window
// parameters plus the sub-queue array they govern. The Queue publishes the
// active geometry through an atomic pointer; operations pin the pointer for
// their whole duration (Handle.pin), so a reconfiguration never changes the
// rules under a running search. Geometries are linked by a monotonically
// increasing epoch; width changes share the surviving sub-queue slots with
// the previous geometry (pointers, not copies), so growth moves no item and
// only a shrink strands items for migration.
type geometry[T any] struct {
	epoch uint64
	width int
	depth int64
	shift int64
	hops  int
	subs  []*subQueue[T]

	// Placement (DESIGN.md §7), mirroring core.geometry: homes maps each
	// slot to its socket, nsockets is the socket count it was computed
	// for, and localProbe selects the socket-aware search (false keeps
	// the pre-placement hot path unchanged). Handles derive their probe
	// permutations from homes lazily (Handle.probe), each with a private
	// rotation of the remote section.
	homes      []int
	nsockets   int
	localProbe bool
}

// config re-packages the geometry's parameters as a Config.
func (g *geometry[T]) config() Config {
	return Config{Width: g.width, Depth: g.depth, Shift: g.shift, RandomHops: g.hops}
}

// freshGeometry allocates a geometry with all-new empty sub-queues (counters
// at zero — construction time, before the windows have moved).
func freshGeometry[T any](cfg Config, epoch uint64) *geometry[T] {
	g := &geometry[T]{
		epoch: epoch,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
		subs:  make([]*subQueue[T], cfg.Width),
	}
	for i := range g.subs {
		g.subs[i] = newSubQueue[T](0, 0)
	}
	g.homes = make([]int, cfg.Width)
	g.nsockets = 1
	return g
}

// stampPlacement writes the slot-home map and the probe mode onto a
// geometry being built. Caller holds reMu, so placePolicy/placeSockets
// are stable.
func (q *Queue[T]) stampPlacement(g *geometry[T], homes []int) {
	g.homes = homes
	g.nsockets = q.placeSockets
	g.localProbe = q.placePolicy != nil && q.placePolicy.LocalProbeOrder() && q.placeSockets > 1
}

// SetPlacement installs the queue's socket-placement model, exactly as
// core.Stack.SetPlacement does for the stack: policy homes every sub-queue
// slot (current slots re-homed immediately, future width growth placed
// with the requester's attribution), sockets is the machine's socket count
// clamped to [1, core.MaxPlacementSockets]. Under a local-probe policy
// operation searches visit slots homed on the handle's socket first;
// window validity is untouched, so the relaxation bound is unaffected
// (DESIGN.md §7).
func (q *Queue[T]) SetPlacement(policy core.PlacementPolicy, sockets int) {
	q.reMu.Lock()
	defer q.reMu.Unlock()
	if sockets < 1 {
		sockets = 1
	}
	if sockets > core.MaxPlacementSockets {
		sockets = core.MaxPlacementSockets
	}
	q.placePolicy, q.placeSockets = policy, sockets
	old := q.geo.Load()
	next := &geometry[T]{
		epoch: old.epoch + 1,
		width: old.width,
		depth: old.depth,
		shift: old.shift,
		hops:  old.hops,
		subs:  old.subs,
	}
	q.stampPlacement(next, core.PlaceSlots(policy, nil, old.width, -1, sockets))
	q.geo.Store(next)
	q.emitStruct(core.StructEvent{
		Kind: core.StructPlacement, Epoch: next.epoch,
		OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
		Requester: -1, Sockets: sockets,
	})
}

// Placement returns a copy of the current slot→socket home map (all zeros
// while placement is off). Diagnostics, tests and cmd/adapttune reporting.
func (q *Queue[T]) Placement() []int {
	g := q.geo.Load()
	out := make([]int, len(g.homes))
	copy(out, g.homes)
	return out
}

// PlacementSocketFor returns the socket the creation-order heuristic
// assigns the i-th handle; see core.Stack.PlacementSocketFor.
func (q *Queue[T]) PlacementSocketFor(i int) int {
	return core.HeuristicSocket(i, q.geo.Load().nsockets)
}

// Reconfigure atomically replaces the queue's geometry with cfg. It is safe
// to call concurrently with operations (and with other Reconfigure calls,
// which serialise). Items are never lost or duplicated:
//
//   - Depth/shift/hops changes swap only the parameters; the sub-queue
//     array is shared between the old and new geometry.
//   - Width growth appends fresh empty sub-queues whose window counters
//     start at the current window floors (see newSubQueue), so they absorb
//     at most `depth` operations per window like every surviving slot.
//   - Width shrink drops the trailing slots, waits for every operation
//     pinned to the old geometry to finish (epoch quiescence), then drains
//     them round-robin into the least-loaded surviving sub-queues (the warm
//     handoff; see handoffStranded), approximately preserving the stranded
//     items' global FIFO order; the dequeue window never moves and the
//     enqueue window advances once, batched.
//
// Semantics during a transition mirror the stack's (core.Stack.Reconfigure):
// in-flight operations follow the window rules of the geometry they pinned.
// Because items placed under the old windows are still being dequeued under
// the new ones, the two regimes' displacements can add — the effective
// bound during the handover is K_old + K_new, settling back to the active
// geometry's K once the pre-transition items have drained; a shrink
// additionally hides the stranded items until its migration completes
// (Reconfigure returns only after it has), and the migrated items re-enter
// at the back of the live window — the transient reordering recorded in
// DESIGN.md §5. Callers that treat an empty Dequeue as terminal should not
// shrink width concurrently with consumers racing the queue to empty.
func (q *Queue[T]) Reconfigure(cfg Config) error {
	return q.ReconfigureOnSocket(cfg, -1)
}

// ReconfigureOnSocket is Reconfigure with placement attribution: requester
// is the socket whose contention asked for the change (-1 when unknown).
// Width growth hands the requester to the placement policy, so LocalFirst
// fills the asking socket's slots first; width shrink prefers dropping
// slots remote to the requester (core.ShrinkSurvivors). Identical to
// Reconfigure while placement is off. See core.Stack.ReconfigureOnSocket.
func (q *Queue[T]) ReconfigureOnSocket(cfg Config, requester int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	q.reMu.Lock()
	defer q.reMu.Unlock()
	return q.reconfigureLocked(cfg, requester)
}

// SetWindow adjusts depth and shift, keeping width and hops — the cheap
// reconfiguration path: no migration, no quiescence wait.
func (q *Queue[T]) SetWindow(depth, shift int64) error {
	q.reMu.Lock()
	defer q.reMu.Unlock()
	cfg := q.geo.Load().config()
	cfg.Depth, cfg.Shift = depth, shift
	return q.reconfigureLocked(cfg, -1)
}

// SetWidth adjusts the sub-queue count, keeping the window parameters.
func (q *Queue[T]) SetWidth(width int) error {
	q.reMu.Lock()
	defer q.reMu.Unlock()
	cfg := q.geo.Load().config()
	cfg.Width = width
	return q.reconfigureLocked(cfg, -1)
}

func (q *Queue[T]) reconfigureLocked(cfg Config, requester int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := q.geo.Load()
	if old.config() == cfg {
		return nil
	}
	next := &geometry[T]{
		epoch: old.epoch + 1,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
	}
	var dropped []*subQueue[T]
	switch {
	case cfg.Width == old.width:
		next.subs = old.subs
		q.stampPlacement(next, old.homes)
	case cfg.Width > old.width:
		next.subs = make([]*subQueue[T], cfg.Width)
		copy(next.subs, old.subs)
		enqFloor := q.globalEnq.V.Load() - cfg.Depth
		if enqFloor < 0 {
			enqFloor = 0
		}
		deqFloor := q.globalDeq.V.Load() - cfg.Depth
		if deqFloor < 0 {
			deqFloor = 0
		}
		for i := old.width; i < cfg.Width; i++ {
			next.subs[i] = newSubQueue[T](enqFloor, deqFloor)
		}
		// New slots are homed by the placement policy, requester first
		// under LocalFirst (a no-op map of zeros while placement is off).
		q.stampPlacement(next, core.PlaceSlots(q.placePolicy, old.homes, cfg.Width, requester, q.placeSockets))
	default:
		// Shrink: keep the survivors core.ShrinkPlan picks (the leading
		// slots when placement-blind; preferring to drop slots remote to
		// the requester otherwise), strand the rest.
		surv, homes := core.ShrinkPlan(q.placePolicy, old.homes, cfg.Width, requester)
		keep := make(map[int]bool, len(surv))
		next.subs = make([]*subQueue[T], 0, cfg.Width)
		for _, i := range surv {
			keep[i] = true
			next.subs = append(next.subs, old.subs[i])
		}
		for i, sq := range old.subs {
			if !keep[i] {
				dropped = append(dropped, sq)
			}
		}
		q.stampPlacement(next, homes)
	}
	// Director yield point: the instant before the new window rules become
	// visible to fresh pins (see internal/core's reconfigureLocked twin).
	gate(yield.PointGeometryPublish)
	q.geo.Store(next)

	// Keep both ceilings at or above the new depth so the windows start
	// sane on the new geometry (the globals are monotone, so a simple
	// raise-if-below CAS loop suffices).
	for _, g := range [...]*pad.Int64Line{&q.globalEnq, &q.globalDeq} {
		for {
			cur := g.V.Load()
			if cur >= cfg.Depth || g.V.CompareAndSwap(cur, cfg.Depth) {
				break
			}
		}
	}

	// The reconfiguration event marks the publish point: it precedes any
	// handoff event of the same shrink, so a drained trace reads causally
	// (reconfig, then its migration, then the controller tick that reported
	// both) — the same ordering core's stack guarantees.
	q.emitStruct(core.StructEvent{
		Kind: core.StructReconfig, Epoch: next.epoch,
		OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
		Requester: requester, Stranded: len(dropped),
	})

	if len(dropped) > 0 {
		// Items in the dropped slots are invisible to the new geometry.
		// Wait until no operation can touch them through the old one, then
		// hand them to the live window directly (see handoffStranded).
		q.waitQuiesce(old.epoch)
		disp := q.handoffStranded(next, dropped)
		q.emitStruct(core.StructEvent{
			Kind: core.StructShrinkHandoff, Epoch: next.epoch,
			OldWidth: old.width, Width: next.width, Depth: next.depth, Shift: next.shift,
			Requester: requester, Stranded: len(dropped), Displacement: disp,
		})
	}
	return nil
}

// handoffStranded is the warm shrink handoff: the dropped sub-queues are
// drained round-robin — one item per slot per round, which approximately
// reconstructs the stranded items' global FIFO order, since enqueues were
// themselves spread across the slots — and each item is appended directly
// to the surviving sub-queue currently holding the fewest items, bumping
// its enqueue window counter so the counter keeps meaning "completed
// enqueues". Compared with the earlier approach — re-enqueueing every item
// through one internal handle's normal window search — this never touches
// the dequeue ceiling, advances the enqueue ceiling exactly once in a
// batch after the drain (the old funnel raised it once per exhausted
// window, the transient spike of DESIGN.md §5), burns no probes, and
// spreads the migrated population by the live counters instead of piling
// it wherever one handle's search landed.
//
// The load table is seeded from the live populations and updated locally as
// items are placed; concurrent client operations keep mutating the real
// lengths, so the balance is approximate — the displacement bound below
// does not depend on it being exact. The return value is this migration's
// addition to ShrinkDisplacementBound, which the caller forwards into the
// handoff's structural event.
func (q *Queue[T]) handoffStranded(next *geometry[T], dropped []*subQueue[T]) int64 {
	loads := make([]int64, len(next.subs))
	var live, enqStart int64
	for i, sq := range next.subs {
		loads[i] = int64(sq.q.Len())
		live += loads[i]
		enqStart += sq.enqs.V.Load()
	}
	stranded := int64(0)
	for _, sq := range dropped {
		stranded += int64(sq.q.Len())
	}
	if stranded == 0 {
		// Nothing to migrate: no displacement happened and no counter was
		// bumped, so neither the accounting nor the window raise below has
		// anything to justify it (mirroring the stack's disp > 0 guard).
		return 0
	}
	for moved := true; moved; {
		moved = false
		for _, sq := range dropped {
			v, ok := sq.q.Dequeue()
			if !ok {
				continue
			}
			moved = true
			j := 0
			for i := 1; i < len(loads); i++ {
				if loads[i] < loads[j] {
					j = i
				}
			}
			next.subs[j].q.Enqueue(v)
			next.subs[j].enqs.V.Add(1)
			loads[j]++
		}
	}
	// A migrated item re-enters behind at most the live population, the
	// stranded items ahead of it, and whatever client enqueues landed in
	// the survivors while the drain ran. The latter is read exactly (up to
	// in-flight slack) from the survivors' own atomic enqueue counters:
	// the delta over the drain minus our own bumps is the concurrent
	// client traffic placed ahead of later-migrated items.
	var enqEnd, minEnqs int64
	for i, sq := range next.subs {
		e := sq.enqs.V.Load()
		enqEnd += e
		if i == 0 || e < minEnqs {
			minEnqs = e
		}
	}
	concurrent := enqEnd - enqStart - stranded
	if concurrent < 0 {
		concurrent = 0
	}
	disp := live + stranded + concurrent
	q.shrinkDisp.Add(disp)

	// Reopen the enqueue window. The bumps above push every survivor's
	// counter toward (or past) the untouched GlobalEnq ceiling, and with
	// all survivors enqueue-invalid at once, every client enqueue would
	// stall through ~migrated/(shift·width) consecutive coverage-and-raise
	// rounds — a structure-wide enqueue outage. One batched raise to
	// shift headroom above the least-loaded survivor is exactly the
	// advance the window would have made had the migrated items arrived
	// as ordinary enqueues: the counters stay inside the usual
	// [ceiling − depth, ceiling] band, so the Theorem 1 accounting is
	// unchanged, and unlike the retired funnel it happens once, not once
	// per exhausted band. (The monotone raise-if-below CAS loop tolerates
	// concurrent client raises.)
	for target := minEnqs + next.shift; ; {
		cur := q.globalEnq.V.Load()
		if cur >= target || q.globalEnq.V.CompareAndSwap(cur, target) {
			break
		}
	}
	return disp
}

// waitQuiesce blocks until no handle is pinned to an epoch <= oldEpoch.
// Operations are lock-free and finite, so this terminates; new operations
// pin the already-published new geometry and do not delay it. A collected
// handle (weak pointer gone nil) is idle by definition: a goroutine still
// running an operation keeps its handle reachable.
func (q *Queue[T]) waitQuiesce(oldEpoch uint64) {
	for {
		busy := false
		q.hMu.Lock()
		for _, entry := range q.handles {
			h := entry.wp.Value()
			if h == nil {
				continue
			}
			if e := h.epoch.Load(); e != 0 && e <= oldEpoch {
				busy = true
				break
			}
		}
		q.hMu.Unlock()
		if !busy {
			return
		}
		// Park under the director instead of spinning a directed schedule.
		gate(yield.PointWait)
		runtime.Gosched()
	}
}
