package twodqueue

import (
	"runtime"

	"stack2d/internal/pad"
)

// geometry is one immutable snapshot of the queue's structure: the window
// parameters plus the sub-queue array they govern. The Queue publishes the
// active geometry through an atomic pointer; operations pin the pointer for
// their whole duration (Handle.pin), so a reconfiguration never changes the
// rules under a running search. Geometries are linked by a monotonically
// increasing epoch; width changes share the surviving sub-queue slots with
// the previous geometry (pointers, not copies), so growth moves no item and
// only a shrink strands items for migration.
type geometry[T any] struct {
	epoch uint64
	width int
	depth int64
	shift int64
	hops  int
	subs  []*subQueue[T]
}

// config re-packages the geometry's parameters as a Config.
func (g *geometry[T]) config() Config {
	return Config{Width: g.width, Depth: g.depth, Shift: g.shift, RandomHops: g.hops}
}

// freshGeometry allocates a geometry with all-new empty sub-queues (counters
// at zero — construction time, before the windows have moved).
func freshGeometry[T any](cfg Config, epoch uint64) *geometry[T] {
	g := &geometry[T]{
		epoch: epoch,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
		subs:  make([]*subQueue[T], cfg.Width),
	}
	for i := range g.subs {
		g.subs[i] = newSubQueue[T](0, 0)
	}
	return g
}

// Reconfigure atomically replaces the queue's geometry with cfg. It is safe
// to call concurrently with operations (and with other Reconfigure calls,
// which serialise). Items are never lost or duplicated:
//
//   - Depth/shift/hops changes swap only the parameters; the sub-queue
//     array is shared between the old and new geometry.
//   - Width growth appends fresh empty sub-queues whose window counters
//     start at the current window floors (see newSubQueue), so they absorb
//     at most `depth` operations per window like every surviving slot.
//   - Width shrink drops the trailing slots, waits for every operation
//     pinned to the old geometry to finish (epoch quiescence), then
//     re-enqueues the stranded items front-first so their relative FIFO
//     order is preserved.
//
// Semantics during a transition mirror the stack's (core.Stack.Reconfigure):
// in-flight operations follow the window rules of the geometry they pinned.
// Because items placed under the old windows are still being dequeued under
// the new ones, the two regimes' displacements can add — the effective
// bound during the handover is K_old + K_new, settling back to the active
// geometry's K once the pre-transition items have drained; a shrink
// additionally hides the stranded items until its migration completes
// (Reconfigure returns only after it has), and the migrated items re-enter
// at the back of the live window — the transient reordering recorded in
// DESIGN.md §5. Callers that treat an empty Dequeue as terminal should not
// shrink width concurrently with consumers racing the queue to empty.
func (q *Queue[T]) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	q.reMu.Lock()
	defer q.reMu.Unlock()
	return q.reconfigureLocked(cfg)
}

// SetWindow adjusts depth and shift, keeping width and hops — the cheap
// reconfiguration path: no migration, no quiescence wait.
func (q *Queue[T]) SetWindow(depth, shift int64) error {
	q.reMu.Lock()
	defer q.reMu.Unlock()
	cfg := q.geo.Load().config()
	cfg.Depth, cfg.Shift = depth, shift
	return q.reconfigureLocked(cfg)
}

// SetWidth adjusts the sub-queue count, keeping the window parameters.
func (q *Queue[T]) SetWidth(width int) error {
	q.reMu.Lock()
	defer q.reMu.Unlock()
	cfg := q.geo.Load().config()
	cfg.Width = width
	return q.reconfigureLocked(cfg)
}

func (q *Queue[T]) reconfigureLocked(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := q.geo.Load()
	if old.config() == cfg {
		return nil
	}
	next := &geometry[T]{
		epoch: old.epoch + 1,
		width: cfg.Width,
		depth: cfg.Depth,
		shift: cfg.Shift,
		hops:  cfg.RandomHops,
	}
	var dropped []*subQueue[T]
	switch {
	case cfg.Width == old.width:
		next.subs = old.subs
	case cfg.Width > old.width:
		next.subs = make([]*subQueue[T], cfg.Width)
		copy(next.subs, old.subs)
		enqFloor := q.globalEnq.V.Load() - cfg.Depth
		if enqFloor < 0 {
			enqFloor = 0
		}
		deqFloor := q.globalDeq.V.Load() - cfg.Depth
		if deqFloor < 0 {
			deqFloor = 0
		}
		for i := old.width; i < cfg.Width; i++ {
			next.subs[i] = newSubQueue[T](enqFloor, deqFloor)
		}
	default: // shrink: keep a prefix, strand the tail for migration
		next.subs = old.subs[:cfg.Width:cfg.Width]
		dropped = old.subs[cfg.Width:]
	}
	q.geo.Store(next)

	// Keep both ceilings at or above the new depth so the windows start
	// sane on the new geometry (the globals are monotone, so a simple
	// raise-if-below CAS loop suffices).
	for _, g := range [...]*pad.Int64Line{&q.globalEnq, &q.globalDeq} {
		for {
			cur := g.V.Load()
			if cur >= cfg.Depth || g.V.CompareAndSwap(cur, cfg.Depth) {
				break
			}
		}
	}

	if len(dropped) > 0 {
		// Items in the dropped slots are invisible to the new geometry.
		// Wait until no operation can touch them through the old one, then
		// re-enqueue them into the live window, front-first so their
		// relative FIFO order survives.
		q.waitQuiesce(old.epoch)
		if q.migrator == nil {
			q.migrator = q.NewHandle()
			q.migrator.hidden = true
		}
		// A migrated item re-enters behind everything resident: the live
		// population plus the other stranded items.
		stranded := 0
		for _, sq := range dropped {
			stranded += sq.q.Len()
		}
		q.shrinkDisp.Add(int64(q.Len() + stranded))
		for _, sq := range dropped {
			for {
				v, ok := sq.q.Dequeue()
				if !ok {
					break
				}
				q.migrator.Enqueue(v)
			}
		}
		q.migrator.FlushStats()
	}
	return nil
}

// waitQuiesce blocks until no handle is pinned to an epoch <= oldEpoch.
// Operations are lock-free and finite, so this terminates; new operations
// pin the already-published new geometry and do not delay it. A collected
// handle (weak pointer gone nil) is idle by definition: a goroutine still
// running an operation keeps its handle reachable.
func (q *Queue[T]) waitQuiesce(oldEpoch uint64) {
	for {
		busy := false
		q.hMu.Lock()
		for _, entry := range q.handles {
			h := entry.wp.Value()
			if h == nil {
				continue
			}
			if e := h.epoch.Load(); e != 0 && e <= oldEpoch {
				busy = true
				break
			}
		}
		q.hMu.Unlock()
		if !busy {
			return
		}
		runtime.Gosched()
	}
}
