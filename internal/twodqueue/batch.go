package twodqueue

import (
	"stack2d/internal/core"
	"stack2d/internal/yield"
)

// Batched operations, the queue twin of internal/core's batch.go. A batch
// applies a run of sub-queue operations under one geometry pin and — the
// combined-publication payoff — bumps the sub-queue's monotonic window
// counter ONCE per successful run instead of once per operation, so a run
// of m enqueues costs one contended Add instead of m. The window
// discipline is preserved by an upfront headroom check: a run of m is
// attempted only while counter+m <= Global, indistinguishable (for the
// relaxation bound) from m consecutive singletons that all landed there.
//
// The deferred counter bump widens the in-flight slack: a mid-run
// sub-queue holds up to m completed-but-uncounted operations, versus one
// for a singleton. Each batch is still one in-flight operation, so the
// concurrent checkers budget this with the same per-handle allowance
// scaled by the batch cap — see seqspec.BufferAllowance and DESIGN.md §11.

// EnqueueBatch enqueues all values in order; vs[0] is the frontmost of the
// batch. Values may be split across sub-queues when window headroom is
// short, exactly as a loop of Enqueue calls could be.
func (h *Handle[T]) EnqueueBatch(vs []T) {
	geo := h.pinBatch() // no sample, no countdown tick (see pinBatch)
	q := h.q
	width := geo.width
	ord, pos, localN := h.probe(geo)
	sockIdx := h.sockIdx(geo)
	remaining := vs
	for len(remaining) > 0 {
		global := q.globalEnq.V.Load()
		idx := h.lastEnq
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		for probes < width && len(remaining) > 0 {
			if g := q.globalEnq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				h.stats.Restarts++
			}
			sub := geo.subs[idx]
			h.stats.Probes++
			if headroom := global - sub.enqs.V.Load(); headroom > 0 {
				m := int64(len(remaining))
				if m > headroom {
					m = headroom
				}
				done := int64(0)
				for done < m && sub.q.TryEnqueue(remaining[done]) {
					done++
				}
				if done > 0 {
					// One counter bump for the whole run — the combined
					// publication that amortises the coherence traffic.
					sub.enqs.V.Add(done)
					h.lastEnq = idx
					h.stats.Pushes += uint64(done)
					remaining = remaining[done:]
					continue
				}
				// Contention with zero progress: hop away, fresh pass.
				h.stats.CASFailures++
				h.stats.SocketCAS[sockIdx]++
				gate(yield.PointCASFail)
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				probes = 0
				randLeft = 0
				continue
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if len(remaining) == 0 {
			break
		}
		gate(yield.PointWindowMove)
		if q.globalEnq.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowRaises++
		}
	}
	h.unpin()
}

// DequeueBatch removes up to max values, returned front-first. It returns
// a short (possibly empty) slice when every sub-queue is observed empty
// within the window discipline, exactly as max consecutive Dequeue calls
// would.
func (h *Handle[T]) DequeueBatch(max int) []T {
	if max <= 0 {
		return nil
	}
	return h.dequeueBatchInto(make([]T, 0, max), max)
}

// dequeueBatchInto is DequeueBatch appending into a caller-owned slice:
// the op buffer's prefetch refill (buffer.go) passes its standing buffer
// so a steady-state refill allocates nothing beyond the sub-queue's own
// node recycling. Callers pass out[:0] relative to the max budget.
func (h *Handle[T]) dequeueBatchInto(out []T, max int) []T {
	geo := h.pinBatch() // see EnqueueBatch
	q := h.q
	width := geo.width
	ord, pos, localN := h.probe(geo)
	sockIdx := h.sockIdx(geo)
	for len(out) < max {
		global := q.globalDeq.V.Load()
		idx := h.lastDeq
		at := 0
		if ord != nil {
			at = pos[idx]
		}
		probes := 0
		randLeft := geo.hops
		sawInvalidNonEmpty := false
		for probes < width && len(out) < max {
			if g := q.globalDeq.V.Load(); g != global {
				global = g
				probes = 0
				randLeft = geo.hops
				sawInvalidNonEmpty = false
				h.stats.Restarts++
			}
			sub := geo.subs[idx]
			h.stats.Probes++
			if avail := global - sub.deqs.V.Load(); avail > 0 {
				m := int64(max - len(out))
				if m > avail {
					m = avail
				}
				done := int64(0)
				contended := false
				for done < m {
					val, got, cont := sub.q.TryDequeue()
					if !got {
						contended = cont
						break
					}
					out = append(out, val)
					done++
				}
				if done > 0 {
					sub.deqs.V.Add(done) // one bump per run, as in EnqueueBatch
					h.lastDeq = idx
					h.stats.Pops += uint64(done)
					continue
				}
				if contended {
					// Another dequeuer beat us with zero progress: hop away.
					h.stats.CASFailures++
					h.stats.SocketCAS[sockIdx]++
					gate(yield.PointCASFail)
					idx = core.HopIdx(h.rng, width, ord, localN)
					if ord != nil {
						at = pos[idx]
					}
					probes = 0
					randLeft = 0
					continue
				}
				// Valid but empty: treat as a coverage probe.
			} else if !sub.q.Empty() {
				sawInvalidNonEmpty = true
			}
			if randLeft > 0 {
				randLeft--
				h.stats.RandomHops++
				idx = core.HopIdx(h.rng, width, ord, localN)
				if ord != nil {
					at = pos[idx]
				}
				continue
			}
			probes++
			if ord == nil {
				idx++
				if idx == width {
					idx = 0
				}
			} else {
				at++
				if at == width {
					at = 0
				}
				idx = ord[at]
			}
		}
		if len(out) >= max {
			break
		}
		if !sawInvalidNonEmpty {
			// Full coverage saw only empty sub-queues (any non-empty one was
			// dequeue-valid and yielded nothing): the queue is out of items.
			if len(out) == 0 {
				h.stats.EmptyPops++
			}
			break
		}
		// Items exist beyond the current window: raise it and retry.
		gate(yield.PointWindowMove)
		if q.globalDeq.V.CompareAndSwap(global, global+geo.shift) {
			h.stats.WindowLowers++
		}
	}
	h.unpin()
	return out
}
