package twodqueue

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(4), true},
		{"minimal", Config{Width: 1, Depth: 1, Shift: 1}, true},
		{"zero width", Config{Width: 0, Depth: 1, Shift: 1}, false},
		{"zero depth", Config{Width: 1, Depth: 0, Shift: 1}, false},
		{"shift beyond depth", Config{Width: 1, Depth: 2, Shift: 3}, false},
		{"negative hops", Config{Width: 1, Depth: 1, Shift: 1, RandomHops: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
	if DefaultConfig(0).Width != 4 {
		t.Fatal("DefaultConfig(0) did not clamp p")
	}
}

func TestKFormula(t *testing.T) {
	cfg := Config{Width: 3, Depth: 8, Shift: 4}
	if got := cfg.K(); got != (2*8+4)*2 {
		t.Fatalf("K = %d, want 40", got)
	}
	if (Config{Width: 1, Depth: 8, Shift: 8}).K() != 0 {
		t.Fatal("width-1 queue should be strict (k=0)")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(zero Config) did not panic")
		}
	}()
	MustNew[uint64](Config{})
}

func TestEmptyDequeue(t *testing.T) {
	q := MustNew[uint64](DefaultConfig(2))
	h := q.NewHandle()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestWidthOneIsStrictFIFO(t *testing.T) {
	q := MustNew[uint64](Config{Width: 1, Depth: 4, Shift: 4, RandomHops: 1})
	h := q.NewHandle()
	var m seqspec.FIFOModel
	for v := uint64(0); v < 300; v++ {
		h.Enqueue(v)
		m.Enqueue(v)
		if v%3 == 0 {
			got, gok := h.Dequeue()
			want, wok := m.Dequeue()
			if gok != wok || got != want {
				t.Fatalf("Dequeue = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Dequeue()
		got, gok := h.Dequeue()
		if gok != wok {
			t.Fatal("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Dequeue = %d, want %d", got, want)
		}
	}
}

func TestSequentialKBound(t *testing.T) {
	cfgs := []Config{
		{Width: 2, Depth: 2, Shift: 1, RandomHops: 1},
		{Width: 4, Depth: 8, Shift: 8, RandomHops: 2},
		{Width: 8, Depth: 4, Shift: 2, RandomHops: 0},
	}
	for _, cfg := range cfgs {
		q := MustNew[uint64](cfg)
		h := q.NewHandle()
		var ops []seqspec.Op
		next := uint64(1)
		for i := 0; i < 300; i++ {
			h.Enqueue(next)
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
			next++
		}
		for i := 0; i < 600; i++ {
			if i%2 == 0 {
				h.Enqueue(next)
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
				next++
			} else {
				v, ok := h.Dequeue()
				ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			}
		}
		for {
			v, ok := h.Dequeue()
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
			if !ok {
				break
			}
		}
		maxDist, err := seqspec.CheckKOutOfOrderFIFO(ops, int(cfg.K()))
		if err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
			continue
		}
		t.Logf("cfg %+v: k=%d maxObservedDist=%d", cfg, cfg.K(), maxDist)
	}
}

func TestValueConservationSequential(t *testing.T) {
	q := MustNew[uint64](Config{Width: 6, Depth: 5, Shift: 3, RandomHops: 2})
	h := q.NewHandle()
	const n = 5000
	for v := uint64(0); v < n; v++ {
		h.Enqueue(v)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	seen := make(map[uint64]bool, n)
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d values, want %d", len(seen), n)
	}
}

func TestWindowsAdvance(t *testing.T) {
	cfg := Config{Width: 2, Depth: 2, Shift: 2, RandomHops: 0}
	q := MustNew[uint64](cfg)
	h := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Enqueue(i)
	}
	if q.GlobalEnq() <= cfg.Depth {
		t.Fatalf("GlobalEnq = %d, want > depth after 100 enqueues into width 2", q.GlobalEnq())
	}
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
	}
	if q.GlobalDeq() <= cfg.Depth {
		t.Fatalf("GlobalDeq = %d, want > depth after draining", q.GlobalDeq())
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2500
	q := MustNew[uint64](DefaultConfig(workers))
	var wg sync.WaitGroup
	got := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < perW; i++ {
				h.Enqueue(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Dequeue(); ok {
						got[w] = append(got[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// TestConcurrentKWithSlack: concurrent runs respect the bound plus the
// in-flight slack documented on K (completion-order trace, so allow
// k + 2 slots per worker for trace skew plus one per worker for counter
// lag).
func TestConcurrentKWithSlack(t *testing.T) {
	cfg := Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2}
	q := MustNew[uint64](cfg)
	const workers = 4
	type stamped struct {
		seq int
		op  seqspec.Op
	}
	var mu sync.Mutex
	var ops []seqspec.Op
	record := func(op seqspec.Op) {
		mu.Lock()
		ops = append(ops, op)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	var label sync.Mutex
	next := uint64(0)
	nextLabel := func() uint64 {
		label.Lock()
		defer label.Unlock()
		next++
		return next
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < 2000; i++ {
				if i%2 == 0 {
					v := nextLabel()
					// Record the enqueue at invocation so no dequeue of v
					// can precede it in the trace; the slack absorbs the
					// resulting distance skew.
					record(seqspec.Op{Kind: seqspec.OpPush, Value: v})
					h.Enqueue(v)
				} else {
					v, ok := h.Dequeue()
					record(seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
				}
			}
		}()
	}
	wg.Wait()
	h := q.NewHandle()
	for {
		v, ok := h.Dequeue()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}
	slack := int(cfg.K()) + 3*workers
	if _, err := seqspec.CheckKOutOfOrderFIFO(ops, slack); err != nil {
		t.Fatalf("trace exceeds slackened bound %d: %v", slack, err)
	}
}

// Property: sequential conservation for arbitrary scripts and small
// configurations.
func TestPropertySequentialConservation(t *testing.T) {
	f := func(widthRaw, depthRaw uint8, script []bool) bool {
		width := int(widthRaw%5) + 1
		depth := int64(depthRaw%5) + 1
		q := MustNew[uint64](Config{Width: width, Depth: depth, Shift: depth, RandomHops: 1})
		h := q.NewHandle()
		enqueued := 0
		seen := make(map[uint64]bool)
		next := uint64(1)
		for _, isEnq := range script {
			if isEnq {
				h.Enqueue(next)
				next++
				enqueued++
			} else if v, ok := h.Dequeue(); ok {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for {
			v, ok := h.Dequeue()
			if !ok {
				break
			}
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == enqueued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
