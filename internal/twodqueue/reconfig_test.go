package twodqueue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
)

func TestReconfigureValidation(t *testing.T) {
	q := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	if err := q.Reconfigure(Config{Width: 0, Depth: 8, Shift: 8}); err == nil {
		t.Fatal("Reconfigure accepted Width 0")
	}
	if err := q.Reconfigure(Config{Width: 4, Depth: 8, Shift: 16}); err == nil {
		t.Fatal("Reconfigure accepted Shift > Depth")
	}
	if got := q.Config(); got != (Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}) {
		t.Fatalf("failed Reconfigure mutated config: %+v", got)
	}
}

func TestReconfigureQuiescent(t *testing.T) {
	q := MustNew[int](Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 0})
	h := q.NewHandle()
	const n = 1000
	for i := 0; i < n; i++ {
		h.Enqueue(i)
	}
	steps := []Config{
		{Width: 16, Depth: 4, Shift: 4, RandomHops: 2},   // grow width
		{Width: 16, Depth: 64, Shift: 32, RandomHops: 2}, // deepen window
		{Width: 3, Depth: 64, Shift: 32, RandomHops: 2},  // shrink width (migration)
		{Width: 1, Depth: 8, Shift: 8, RandomHops: 0},    // degenerate to strict
		{Width: 8, Depth: 16, Shift: 16, RandomHops: 1},  // grow again
	}
	epoch := q.Epoch()
	for _, cfg := range steps {
		if err := q.Reconfigure(cfg); err != nil {
			t.Fatalf("Reconfigure(%+v): %v", cfg, err)
		}
		if got := q.Config(); got != cfg {
			t.Fatalf("Config() = %+v after Reconfigure(%+v)", got, cfg)
		}
		if got := q.Epoch(); got != epoch+1 {
			t.Fatalf("Epoch = %d, want %d", got, epoch+1)
		}
		epoch++
		if got := q.Len(); got != n {
			t.Fatalf("Len = %d after Reconfigure(%+v), want %d", got, cfg, n)
		}
	}
	// Reconfiguring to the current config is a no-op (same epoch).
	cur := q.Config()
	if err := q.Reconfigure(cur); err != nil {
		t.Fatal(err)
	}
	if got := q.Epoch(); got != epoch {
		t.Fatalf("no-op Reconfigure bumped epoch %d -> %d", epoch, got)
	}
	seen := make(map[int]bool, n)
	for _, v := range q.Drain() {
		if seen[v] {
			t.Fatalf("duplicate item %d after reconfigurations", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct items, want %d", len(seen), n)
	}
}

func TestSetWindowAndSetWidth(t *testing.T) {
	q := MustNew[int](Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1})
	if err := q.SetWindow(32, 16); err != nil {
		t.Fatal(err)
	}
	if cfg := q.Config(); cfg.Depth != 32 || cfg.Shift != 16 || cfg.Width != 2 {
		t.Fatalf("SetWindow gave %+v", cfg)
	}
	if err := q.SetWidth(6); err != nil {
		t.Fatal(err)
	}
	if cfg := q.Config(); cfg.Width != 6 || cfg.Depth != 32 {
		t.Fatalf("SetWidth gave %+v", cfg)
	}
}

// TestGrownSubQueueJoinsAtWindowFloor guards the counter-initialisation
// rule: after the windows have advanced far from zero, a sub-queue added by
// width growth must not be enqueue-valid for the whole distance back to
// zero — it joins at the window floor and absorbs at most ~depth enqueues
// before the window must move like everywhere else.
func TestGrownSubQueueJoinsAtWindowFloor(t *testing.T) {
	cfg := Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 0}
	q := MustNew[uint64](cfg)
	h := q.NewHandle()
	for v := uint64(0); v < 4000; v++ {
		h.Enqueue(v)
	}
	if q.GlobalEnq() < 1000 {
		t.Fatalf("enqueue window did not advance: %d", q.GlobalEnq())
	}
	before := q.GlobalEnq()
	if err := q.SetWidth(3); err != nil {
		t.Fatal(err)
	}
	// The fresh sub-queue may absorb at most the open window headroom
	// before forcing a window raise; enqueue that many plus one and verify
	// the ceiling moved (a zero-initialised counter would swallow all of
	// them without any window movement).
	for v := uint64(0); v < uint64(cfg.Depth)+1; v++ {
		h.Enqueue(1 << 40 & v)
	}
	grew := q.GlobalEnq() > before
	third := q.SubLens()[2]
	if !grew && third > int(cfg.Depth) {
		t.Fatalf("fresh sub-queue absorbed %d items without a window move (joined below the floor)", third)
	}
}

// TestReconfigureStress hammers the queue from many goroutines while a
// dedicated goroutine cycles the geometry through grows, shrinks and
// depth/shift changes. Afterwards every enqueued item must be accounted for
// exactly once across {dequeued} ∪ {remaining} — live reconfiguration may
// reorder items but can never lose or duplicate one.
func TestReconfigureStress(t *testing.T) {
	q := MustNew[uint64](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})

	const workers = 8
	duration := 200 * time.Millisecond
	if testing.Short() {
		duration = 50 * time.Millisecond
	}

	geometries := []Config{
		{Width: 2, Depth: 4, Shift: 4, RandomHops: 1},
		{Width: 32, Depth: 4, Shift: 2, RandomHops: 2},
		{Width: 32, Depth: 128, Shift: 128, RandomHops: 2},
		{Width: 3, Depth: 16, Shift: 8, RandomHops: 0},
		{Width: 1, Depth: 64, Shift: 64, RandomHops: 0},
		{Width: 12, Depth: 32, Shift: 16, RandomHops: 2},
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	dequeued := make([]map[uint64]int, workers)
	enqueuedCount := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		dequeued[i] = make(map[uint64]int)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			// Unique labels: worker id in the high bits.
			label := uint64(id+1) << 40
			for !stop.Load() {
				label++
				h.Enqueue(label)
				enqueuedCount[id]++
				if v, ok := h.Dequeue(); ok {
					dequeued[id][v]++
				}
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for !stop.Load() {
			if err := q.Reconfigure(geometries[i%len(geometries)]); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	var total uint64
	for _, n := range enqueuedCount {
		total += n
	}
	seen := make(map[uint64]int, total)
	var deqN uint64
	for _, m := range dequeued {
		for v, n := range m {
			seen[v] += n
			deqN += uint64(n)
		}
	}
	remaining := q.Drain()
	for _, v := range remaining {
		seen[v]++
	}
	if got := deqN + uint64(len(remaining)); got != total {
		t.Fatalf("enqueued %d items but dequeued %d + remaining %d = %d", total, deqN, len(remaining), got)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d seen %d times (lost or duplicated)", v, n)
		}
	}
	if snap := q.StatsSnapshot(); snap.Ops() == 0 {
		t.Fatal("StatsSnapshot reported zero operations after a stress run")
	}
}

// TestFIFOBoundAcrossReconfig is the seqspec bound check under live
// geometry changes: a sequential interleaving of enqueues, dequeues and
// non-migrating reconfigurations (depth/shift swaps, width growth) must
// never dequeue an item more than 2·max-K-over-geometries out of FIFO
// order — during a handover items placed under the old windows drain under
// the new ones, so the regimes' displacements add to at most K_old + K_new
// (see Reconfigure), which 2·maxK covers for every step.
func TestFIFOBoundAcrossReconfig(t *testing.T) {
	start := Config{Width: 2, Depth: 4, Shift: 4, RandomHops: 1}
	steps := []Config{
		{Width: 4, Depth: 4, Shift: 2, RandomHops: 1},   // grow width
		{Width: 4, Depth: 16, Shift: 16, RandomHops: 2}, // deepen
		{Width: 8, Depth: 16, Shift: 16, RandomHops: 2}, // grow width again
		{Width: 8, Depth: 8, Shift: 8, RandomHops: 0},   // shallower window
	}
	maxK := start.K()
	for _, c := range steps {
		if k := c.K(); k > maxK {
			maxK = k
		}
	}
	maxK *= 2

	q := MustNew[uint64](start)
	h := q.NewHandle()
	var ops []seqspec.Op
	next := uint64(1)
	enq := func() {
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
		h.Enqueue(next)
		next++
	}
	deq := func() {
		v, ok := h.Dequeue()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
	}

	for i := 0; i < 200; i++ {
		enq()
	}
	for si, cfg := range steps {
		for i := 0; i < 300; i++ {
			if i%3 == 0 {
				deq()
			} else {
				enq()
			}
		}
		if err := q.Reconfigure(cfg); err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
	}
	for {
		v, ok := h.Dequeue()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}

	maxDist, err := seqspec.CheckKOutOfOrderFIFO(ops, int(maxK))
	if err != nil {
		t.Fatalf("FIFO bound violated across reconfigurations: %v", err)
	}
	t.Logf("maxK=%d maxObservedDist=%d", maxK, maxDist)
}

// TestShrinkMigrationBound covers the one reconfiguration that legitimately
// exceeds the steady-state bound: a width shrink re-enqueues the stranded
// items at the back of the live window, displacing each by at most the
// population resident at the shrink. The distances must stay within
// max-K + that population, and every item must survive exactly once.
func TestShrinkMigrationBound(t *testing.T) {
	start := Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 1}
	narrow := Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1}
	maxK := start.K()

	q := MustNew[uint64](start)
	h := q.NewHandle()
	var ops []seqspec.Op
	next := uint64(1)
	for i := 0; i < 500; i++ {
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
		h.Enqueue(next)
		next++
	}
	popAtShrink := q.Len()
	if err := q.Reconfigure(narrow); err != nil {
		t.Fatal(err)
	}
	if got := q.Len(); got != popAtShrink {
		t.Fatalf("Len = %d after shrink, want %d (migration lost items)", got, popAtShrink)
	}
	for {
		v, ok := h.Dequeue()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}

	dists, err := seqspec.MeasureDistancesFIFO(ops)
	if err != nil {
		t.Fatalf("trace invalid (item lost or duplicated): %v", err)
	}
	bound := int(maxK) + popAtShrink
	for _, d := range dists {
		if d > bound {
			t.Fatalf("dequeue distance %d exceeds shrink bound %d (maxK %d + population %d)",
				d, bound, maxK, popAtShrink)
		}
	}
}

// TestShrinkWarmHandoffKillsSpike pins what the warm handoff buys over the
// retired funnel migration (which re-enqueued every stranded item through
// one handle's window search): the migration never moves the dequeue
// ceiling and advances the enqueue ceiling exactly once, batched — the
// funnel raised GlobalEnq once per exhausted band, the k-spike of
// DESIGN.md §5 — the migrated population is spread evenly over the
// survivors, client enqueues are immediately admissible afterwards, and
// the realised post-shrink FIFO distances stay decisively under the
// pre-handoff tolerance of maxK + whole population. The run is fully
// deterministic (sequential, seeded RNG), so the margins are stable.
func TestShrinkWarmHandoffKillsSpike(t *testing.T) {
	start := Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 1}
	narrow := Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1}
	maxK := start.K()

	q := MustNew[uint64](start)
	h := q.NewHandle()
	var ops []seqspec.Op
	next := uint64(1)
	for i := 0; i < 500; i++ {
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
		h.Enqueue(next)
		next++
	}
	resident := q.Len()
	deqBefore := q.GlobalDeq()
	if err := q.Reconfigure(narrow); err != nil {
		t.Fatal(err)
	}
	if q.GlobalDeq() != deqBefore {
		t.Fatalf("warm handoff moved the dequeue window %d->%d (the funnel's spike mechanism)",
			deqBefore, q.GlobalDeq())
	}
	if got := q.Len(); got != resident {
		t.Fatalf("Len = %d after shrink, want %d (migration lost items)", got, resident)
	}
	lens := q.SubLens()
	if diff := lens[0] - lens[1]; diff < -1 || diff > 1 {
		t.Fatalf("least-loaded placement left unbalanced survivors: %v", lens)
	}
	// The enqueue window must have been reopened in one batched advance:
	// an immediate client enqueue completes with zero coverage-and-raise
	// rounds (the funnel, and a handoff that bumps counters without the
	// advance, would stall it through ~migrated/(shift·width) raises).
	raisesBefore := h.Stats().WindowRaises
	ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: next})
	h.Enqueue(next)
	next++
	if raises := h.Stats().WindowRaises - raisesBefore; raises != 0 {
		t.Fatalf("first post-shrink enqueue needed %d window raises (enqueue outage)", raises)
	}

	for {
		v, ok := h.Dequeue()
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v, Empty: !ok})
		if !ok {
			break
		}
	}
	dists, err := seqspec.MeasureDistancesFIFO(ops)
	if err != nil {
		t.Fatalf("trace invalid (item lost or duplicated): %v", err)
	}
	maxDist := 0
	for _, d := range dists {
		if d > maxDist {
			maxDist = d
		}
	}
	// Invariant 2's tolerance before the handoff: maxK + the whole resident
	// population. The handoff must realise well under it — the remaining
	// displacement is the unavoidable one-time cost of appending the
	// stranded backlog behind the live items (no append-based migration can
	// beat the resident population), not window skew piled on top.
	oldTolerance := int(maxK) + resident
	if maxDist > resident {
		t.Fatalf("max distance %d exceeds the resident population %d", maxDist, resident)
	}
	if 10*maxDist > 7*oldTolerance {
		t.Fatalf("max distance %d not decisively under the pre-handoff tolerance %d", maxDist, oldTolerance)
	}
	t.Logf("maxK=%d resident=%d maxDist=%d (pre-handoff tolerance %d)", maxK, resident, maxDist, oldTolerance)
}

// TestStatsSnapshotTracksHandles verifies the central registry aggregates
// published handle counters without requiring owner-goroutine access.
func TestStatsSnapshotTracksHandles(t *testing.T) {
	q := MustNew[int](Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	h1 := q.NewHandle()
	h2 := q.NewHandle()
	for i := 0; i < 10; i++ {
		h1.Enqueue(i)
	}
	for i := 0; i < 4; i++ {
		h2.Dequeue()
	}
	// Below the flush interval nothing is published yet; force it.
	h1.FlushStats()
	h2.FlushStats()
	snap := q.StatsSnapshot()
	if snap.Pushes != 10 || snap.Pops != 4 {
		t.Fatalf("snapshot = %+v, want 10 pushes / 4 pops", snap)
	}
	// Deltas between snapshots saturate rather than underflow on reset.
	h1.ResetStats()
	if d := q.StatsSnapshot().Sub(snap); d.Pushes != 0 {
		t.Fatalf("delta after reset = %+v, want saturated zero pushes", d)
	}
}

// TestMigrationTrafficHiddenFromStats: the shrink path's internal handle
// must not leak its re-enqueues into the controller's signals.
func TestMigrationTrafficHiddenFromStats(t *testing.T) {
	q := MustNew[int](Config{Width: 8, Depth: 4, Shift: 4, RandomHops: 0})
	h := q.NewHandle()
	for i := 0; i < 200; i++ {
		h.Enqueue(i)
	}
	h.FlushStats()
	before := q.StatsSnapshot()
	if err := q.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	after := q.StatsSnapshot()
	if d := after.Sub(before); d.Pushes != 0 {
		t.Fatalf("shrink migration leaked %d pushes into StatsSnapshot", d.Pushes)
	}
	if got := q.Len(); got != 200 {
		t.Fatalf("Len = %d after shrink, want 200", got)
	}
}

// TestHandleRegistryPrunesAndRetiresStats mirrors the core test: abandoned
// handles must not grow the registry without bound, and their published
// counters must survive collection in the retired total.
func TestHandleRegistryPrunesAndRetiresStats(t *testing.T) {
	q := MustNew[int](Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 1})
	for i := 0; i < 8; i++ {
		h := q.NewHandle()
		for j := 0; j < 10; j++ {
			h.Enqueue(j)
		}
		h.FlushStats()
	}
	// All 8 handles are now unreferenced; pruning and retirement are both
	// asynchronous, so poll with a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		q.NewHandle() // registering prunes dead entries
		q.hMu.Lock()
		entries := len(q.handles)
		q.hMu.Unlock()
		snap := q.StatsSnapshot()
		if entries <= 3 && snap.Pushes == 80 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d entries, snapshot %+v (want <= 3 entries, 80 pushes)", entries, snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSteerableRoundTrip checks the adapter the controller drives the queue
// through: core.Config conversions preserve every field, Reconfigure
// reaches the queue, and stats flow back.
func TestSteerableRoundTrip(t *testing.T) {
	start := Config{Width: 3, Depth: 16, Shift: 8, RandomHops: 2}
	q := MustNew[int](start)
	s := Steer(q)
	if got := s.Config(); got != start.Core() {
		t.Fatalf("Steerable.Config = %+v, want %+v", got, start.Core())
	}
	if FromCore(start.Core()) != start {
		t.Fatalf("Core/FromCore round trip lost fields: %+v", FromCore(start.Core()))
	}
	next := core.Config{Width: 6, Depth: 32, Shift: 32, RandomHops: 1}
	if err := s.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if got := q.Config(); got != FromCore(next) {
		t.Fatalf("queue config after Steerable.Reconfigure = %+v", got)
	}
	if err := s.Reconfigure(core.Config{Width: 0}); err == nil {
		t.Fatal("invalid geometry accepted through the adapter")
	}
	h := q.NewHandle()
	h.Enqueue(1)
	h.FlushStats()
	if s.StatsSnapshot().Pushes != 1 {
		t.Fatal("stats did not flow through the adapter")
	}
}
