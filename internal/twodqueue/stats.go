package twodqueue

import (
	"stack2d/internal/core"
)

// The queue reuses the stack's counter vocabulary (core.OpStats) so one
// controller reads both structures through identical signals:
//
//	Pushes/Pops/EmptyPops   — enqueues, non-empty dequeues, empty dequeues
//	Probes, RandomHops      — sub-queue validations / exploratory hops
//	CASFailures             — contended sub-queue CAS rounds (either end)
//	WindowRaises            — enqueue-end window moves
//	WindowLowers            — dequeue-end window moves
//	Restarts                — searches restarted by an observed window move
//
// Counters are handle-local on the hot path and published to an atomic
// mirror every statsFlushInterval operations, exactly as in internal/core.
// One operation in latencySampleInterval is additionally timed end to end
// into the OpStats latency histogram (core.LatencyBucket layout), feeding
// the controller's P50/P99 estimates.
const (
	statsFlushInterval    = 64
	latencySampleInterval = 64
)

// Stats returns a copy of the handle's counters. Owner-goroutine only.
func (h *Handle[T]) Stats() core.OpStats { return h.stats }

// ResetStats zeroes the handle's counters (and their published copy).
// Owner-goroutine only; samplers see a saturated-zero interval, as with the
// stack (core.OpStats.Sub).
func (h *Handle[T]) ResetStats() {
	h.stats = core.OpStats{}
	h.FlushStats()
}

// maybeFlush publishes the handle's counters every statsFlushInterval
// completed operations; called from unpin on the owner goroutine.
func (h *Handle[T]) maybeFlush() {
	h.sinceFlush++
	if h.sinceFlush >= statsFlushInterval {
		h.FlushStats()
	}
}

// FlushStats immediately publishes the handle's counters to the shared copy
// read by Queue.StatsSnapshot. Owner-goroutine only.
func (h *Handle[T]) FlushStats() {
	h.sinceFlush = 0
	h.shared.Store(h.stats)
}

// StatsSnapshot aggregates the published counters of every registered
// handle plus the retired totals of pruned ones; safe from any goroutine,
// trailing the truth by at most statsFlushInterval operations per active
// handle. Because the registry keeps each handle's counter mirror strongly
// (see handleEntry), a collected-but-not-yet-pruned handle's work is still
// read here — the snapshot never transiently loses completed operations.
// Reconfiguration traffic does not read as client operations: the warm
// shrink handoff places stranded items directly into the surviving
// sub-queues, without a handle. This is the feed for internal/adapt's
// controller.
func (q *Queue[T]) StatsSnapshot() core.OpStats {
	q.hMu.Lock()
	out := q.retired
	for _, e := range q.handles {
		out.Add(e.shared.Load())
	}
	q.hMu.Unlock()
	return out
}

// Steerable adapts the queue to internal/adapt's Reconfigurable interface
// (which speaks core.Config), so the same controller implementation drives
// stack and queue: adapt.New(twodqueue.Steer(q), policy).
type Steerable[T any] struct{ Q *Queue[T] }

// Steer wraps q for the adaptive controller.
func Steer[T any](q *Queue[T]) Steerable[T] { return Steerable[T]{Q: q} }

// Config returns the active geometry in the controller's currency.
func (s Steerable[T]) Config() core.Config { return s.Q.Config().Core() }

// Reconfigure applies a controller-chosen geometry to the queue.
func (s Steerable[T]) Reconfigure(cfg core.Config) error {
	return s.Q.Reconfigure(FromCore(cfg))
}

// ReconfigureOnSocket applies a controller-chosen geometry with the
// requesting socket's attribution (adapt.SocketAware), so the queue's
// placement policy can home new slots on — and shrink away from — the
// pressured socket.
func (s Steerable[T]) ReconfigureOnSocket(cfg core.Config, requester int) error {
	return s.Q.ReconfigureOnSocket(FromCore(cfg), requester)
}

// StatsSnapshot exposes the queue's aggregated counters to the controller.
func (s Steerable[T]) StatsSnapshot() core.OpStats { return s.Q.StatsSnapshot() }

// ShrinkDisplacementBound exposes the queue's cumulative shrink-migration
// displacement bound, so internal/obs can export the same gauge for either
// structure through one interface (obs.ShrinkReporter).
func (s Steerable[T]) ShrinkDisplacementBound() int64 { return s.Q.ShrinkDisplacementBound() }
