package twodqueue

import "stack2d/internal/core"

// SetObserver installs (or, with nil, removes) the queue's structural
// observer. The queue reuses core.Observer and core.StructEvent — the event
// vocabulary is identical (reconfiguration, warm shrink handoff, placement
// re-home), so internal/obs's ring tracer serves both structures unchanged.
// Emission sites all run under the reconfiguration lock, which SetObserver
// also takes, so installation is race-free against concurrent
// reconfigurations. The operation hot path never reads the observer —
// events exist only on reconfiguration paths — so an uninstrumented queue
// pays literally nothing per operation (DESIGN.md §8).
func (q *Queue[T]) SetObserver(o core.Observer) {
	q.reMu.Lock()
	q.obsv = o
	q.reMu.Unlock()
}

// emitStruct reports ev to the installed observer, if any; reMu held.
func (q *Queue[T]) emitStruct(ev core.StructEvent) {
	if q.obsv != nil {
		q.obsv.ObserveStruct(ev)
	}
}
