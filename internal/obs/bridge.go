package obs

import (
	"fmt"
	"sync"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/engine"
)

// Source is what a structure must expose to be bridged into a Registry:
// the aggregated operation counters and the active geometry. *core.Stack
// and twodqueue.Steerable both satisfy it — the same pair of methods the
// adaptive controller's Reconfigurable already requires, so anything the
// controller can steer, the metrics plane can export.
type Source interface {
	StatsSnapshot() core.OpStats
	Config() core.Config
}

// ShrinkReporter is the optional extension a Source may implement to also
// export its cumulative shrink-migration displacement bound (both 2D
// structures do).
type ShrinkReporter interface {
	ShrinkDisplacementBound() int64
}

// minRefresh is how long a structView serves the cached snapshot before
// re-aggregating. A scrape storm therefore costs at most one StatsSnapshot
// per structure per window — the same aggregation the controller already
// runs per tick — and the interval gauges (throughput, P50/P99) are deltas
// over at least this long, keeping them out of the shot-noise regime.
const minRefresh = 250 * time.Millisecond

// structView caches a Source's snapshot pair (current and previous) so
// every metric of one structure reads one consistent snapshot, and rate
// gauges have a well-defined interval. prev starts equal to cur, so the
// first interval reads as empty (zero rates, no samples) rather than as a
// division-hazard or an all-history average.
type structView struct {
	src Source
	now func() time.Time

	mu           sync.Mutex
	cur, prev    core.OpStats
	curT, prev2T time.Time
	delta        core.OpStats
	interval     time.Duration
}

func newStructView(src Source, now func() time.Time) *structView {
	if now == nil {
		now = time.Now
	}
	v := &structView{src: src, now: now}
	t := now()
	v.cur = src.StatsSnapshot()
	v.prev = v.cur
	v.curT, v.prev2T = t, t
	return v
}

// refreshLocked rolls the snapshot window forward when the cache is stale;
// v.mu held.
func (v *structView) refreshLocked() {
	t := v.now()
	if t.Sub(v.curT) < minRefresh {
		return
	}
	v.prev, v.prev2T = v.cur, v.curT
	v.cur, v.curT = v.src.StatsSnapshot(), t
	v.delta = v.cur.Sub(v.prev)
	v.interval = v.curT.Sub(v.prev2T)
}

// total reads a monotone counter off the current snapshot.
func (v *structView) total(f func(core.OpStats) float64) func() float64 {
	return func() float64 {
		v.mu.Lock()
		defer v.mu.Unlock()
		v.refreshLocked()
		return f(v.cur)
	}
}

// rate reads an interval gauge off the last completed snapshot delta.
func (v *structView) rate(f func(d core.OpStats, interval time.Duration) float64) func() float64 {
	return func() float64 {
		v.mu.Lock()
		defer v.mu.Unlock()
		v.refreshLocked()
		return f(v.delta, v.interval)
	}
}

// RegisterStructure exports a structure's full metric vocabulary (names.go)
// under the given structure label — counters and the latency histogram from
// its aggregated OpStats, interval gauges from consecutive snapshot deltas,
// geometry gauges (including the realised Theorem-1 k) from its live
// Config, and the shrink displacement bound when src reports one. now is
// the clock used for staleness and rate intervals; nil means time.Now
// (tests inject a fake to step the cache deterministically).
func RegisterStructure(reg *Registry, structure string, src Source, now func() time.Time) {
	v := newStructView(src, now)
	name := func(suffix string) string { return MetricName(structure, suffix) }

	reg.Counter(name(MPushesTotal), "Completed push/enqueue operations.",
		v.total(func(s core.OpStats) float64 { return float64(s.Pushes) }))
	reg.Counter(name(MPopsTotal), "Pop/dequeue operations that returned a value.",
		v.total(func(s core.OpStats) float64 { return float64(s.Pops) }))
	reg.Counter(name(MEmptyPopsTotal), "Pop/dequeue operations that reported empty.",
		v.total(func(s core.OpStats) float64 { return float64(s.EmptyPops) }))
	reg.Counter(name(MProbesTotal), "Sub-structure validations performed (step-count signal).",
		v.total(func(s core.OpStats) float64 { return float64(s.Probes) }))
	reg.Counter(name(MRandomHopsTotal), "Exploratory random hops taken.",
		v.total(func(s core.OpStats) float64 { return float64(s.RandomHops) }))
	reg.Counter(name(MCASFailuresTotal), "Descriptor CAS failures (contention events).",
		v.total(func(s core.OpStats) float64 { return float64(s.CASFailures) }))
	reg.Counter(name(MWindowRaisesTotal), "Successful window raises (Global += shift).",
		v.total(func(s core.OpStats) float64 { return float64(s.WindowRaises) }))
	reg.Counter(name(MWindowLowersTotal), "Successful window lowers (Global -= shift).",
		v.total(func(s core.OpStats) float64 { return float64(s.WindowLowers) }))
	reg.Counter(name(MRestartsTotal), "Searches restarted by an observed window move.",
		v.total(func(s core.OpStats) float64 { return float64(s.Restarts) }))
	for i := 0; i < core.MaxPlacementSockets; i++ {
		i := i
		reg.LabeledCounter(name(MSocketCASTotal), fmt.Sprintf(`socket="%d"`, i),
			"CAS failures attributed to the handle's pinned socket.",
			v.total(func(s core.OpStats) float64 { return float64(s.SocketCAS[i]) }))
	}

	reg.Histogram(name(MLatencyNs), "Sampled operation latency, log2 ns buckets (1-in-64 sampling).",
		func() []uint64 {
			v.mu.Lock()
			defer v.mu.Unlock()
			v.refreshLocked()
			out := make([]uint64, core.NumLatencyBuckets)
			copy(out, v.cur.Latency[:])
			return out
		})

	reg.Gauge(name(MThroughputOps), "Operations per second over the last snapshot interval.",
		v.rate(func(d core.OpStats, iv time.Duration) float64 {
			if iv <= 0 {
				return 0
			}
			return float64(d.Ops()) / iv.Seconds()
		}))
	reg.Gauge(name(MCASPerOp), "CAS failures per operation over the last interval (contention).",
		v.rate(func(d core.OpStats, _ time.Duration) float64 { return d.CASFailuresPerOp() }))
	reg.Gauge(name(MEnergyPerOp), "Window moves plus probes per operation over the last interval.",
		v.rate(func(d core.OpStats, _ time.Duration) float64 {
			ops := d.Ops()
			if ops == 0 {
				return 0
			}
			return float64(d.WindowRaises+d.WindowLowers+d.Probes) / float64(ops)
		}))
	percentile := func(p float64) func() float64 {
		return v.rate(func(d core.OpStats, _ time.Duration) float64 {
			est := d.LatencyPercentile(p)
			if est == core.NoLatencySample {
				return -1
			}
			return float64(est)
		})
	}
	reg.Gauge(name(MLatencyP50Ns), "Sampled P50 latency (ns) over the last interval; -1 when unsampled.",
		percentile(50))
	reg.Gauge(name(MLatencyP99Ns), "Sampled P99 latency (ns) over the last interval; -1 when unsampled.",
		percentile(99))

	reg.Gauge(name(MGeometryWidth), "Active geometry: sub-structure count.",
		func() float64 { return float64(src.Config().Width) })
	reg.Gauge(name(MGeometryDepth), "Active geometry: window height.",
		func() float64 { return float64(src.Config().Depth) })
	reg.Gauge(name(MGeometryShift), "Active geometry: window step.",
		func() float64 { return float64(src.Config().Shift) })
	reg.Gauge(name(MRealisedK), "Theorem-1 relaxation bound of the active geometry.",
		func() float64 { return float64(src.Config().K()) })
	if sr, ok := src.(ShrinkReporter); ok {
		reg.Gauge(name(MShrinkDispBound), "Cumulative displacement bound of shrink migrations.",
			func() float64 { return float64(sr.ShrinkDisplacementBound()) })
	}
}

// RegisterRing exports the tracer's own meta-metrics (events emitted and
// overwritten) under the fixed "obs" structure label.
func RegisterRing(reg *Registry, ring *Ring) {
	reg.Counter(MetricName("obs", MEventsEmittedTotal), "Events emitted into the tracer ring.",
		func() float64 { return float64(ring.Emitted()) })
	reg.Counter(MetricName("obs", MEventsDroppedTotal), "Events overwritten before a drain saw them.",
		func() float64 { return float64(ring.Dropped()) })
}

// StructTracer adapts a Ring to core.Observer: structural transition events
// from a stack or queue (both speak core.StructEvent) are translated into
// ring Events under the given structure label. It runs on the reconfiguring
// goroutine with the structure's reconfiguration lock held, so it only
// copies fields and stores a pointer — no locks, no I/O.
type StructTracer struct {
	Structure string
	Ring      *Ring
}

// ObserveStruct implements core.Observer.
func (t StructTracer) ObserveStruct(ev core.StructEvent) {
	kind := KindReconfig
	switch ev.Kind {
	case core.StructShrinkHandoff:
		kind = KindShrinkHandoff
	case core.StructPlacement:
		kind = KindPlacement
	}
	t.Ring.Emit(Event{
		Kind:      kind,
		Structure: t.Structure,
		Width:     ev.Width,
		Depth:     ev.Depth,
		Shift:     ev.Shift,
		K:         (2*ev.Depth + ev.Shift) * int64(ev.Width-1),
		Epoch:     ev.Epoch,

		OldWidth:     ev.OldWidth,
		Requester:    ev.Requester,
		Stranded:     ev.Stranded,
		Displacement: ev.Displacement,
		Sockets:      ev.Sockets,
	})
}

// SwapTracer adapts a Ring to engine.Switcher's swap hook: one completed
// backend exchange becomes one KindBackendSwap event. Install with
// sw.SetOnSwap(tracer.ObserveSwap); it runs under the switcher's swap
// lock — same contract as the other tracers.
type SwapTracer struct {
	Structure string
	Ring      *Ring
}

// ObserveSwap records one completed backend swap.
func (t SwapTracer) ObserveSwap(rec engine.SwapRecord) {
	t.Ring.Emit(Event{
		Kind:      KindBackendSwap,
		Structure: t.Structure,
		K:         rec.ToK,

		FromBackend:  rec.From,
		ToBackend:    rec.To,
		Reason:       rec.Reason,
		Migrated:     rec.Migrated,
		Displacement: rec.Displacement,
	})
}

// SwapReporter is the switcher surface the metrics plane exports —
// satisfied by *engine.Switcher for any element type.
type SwapReporter interface {
	SwapCount() int
	SwapDisplacementBound() int64
}

// RegisterSwitcher exports an engine switcher's swap counters under the
// given structure label, alongside the structure metrics its
// StatsSnapshot already feeds through RegisterStructure.
func RegisterSwitcher(reg *Registry, structure string, sr SwapReporter) {
	reg.Counter(MetricName(structure, MBackendSwapsTotal),
		"Completed backend swaps on the engine switcher.",
		func() float64 { return float64(sr.SwapCount()) })
	reg.Gauge(MetricName(structure, MSwapDispBound),
		"Cumulative checker-allowance displacement added by swap migrations.",
		func() float64 { return float64(sr.SwapDisplacementBound()) })
}

// TickTracer adapts a Ring to adapt.Observer: one controller decision
// becomes one KindTick event carrying the TickRecord verbatim. It runs on
// the controller goroutine with the controller lock held — same contract
// as StructTracer.
type TickTracer struct {
	Structure string
	Ring      *Ring
}

// ObserveTick implements adapt.Observer.
func (t TickTracer) ObserveTick(goal adapt.Goal, rec adapt.TickRecord) {
	t.Ring.Emit(Event{
		Kind:      KindTick,
		Structure: t.Structure,
		Width:     rec.Width,
		Depth:     rec.Depth,
		Shift:     rec.Shift,
		K:         rec.K,

		Tick:           rec.Tick,
		Goal:           goal.String(),
		Action:         rec.Action,
		Ops:            rec.Ops,
		Throughput:     rec.Throughput,
		CASPerOp:       rec.CASPerOp,
		MovesPerOp:     rec.MovesPerOp,
		ProbesPerOp:    rec.ProbesPerOp,
		EnergyPerOp:    rec.EnergyPerOp,
		LatencySamples: rec.LatencySamples,
		P50Ns:          int64(rec.P50),
		P99Ns:          int64(rec.P99),
		PressureSocket: rec.PressureSocket,
	})
}
