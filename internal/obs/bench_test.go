package obs

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
)

// benchMixedOps drives a 50/50 push/pop mix from every benchmark worker,
// each with its own handle — the high-contention shape of the harness's
// "high" phase.
func benchMixedOps(b *testing.B, s *core.Stack[uint64]) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		h := s.NewHandle()
		var i uint64
		for pb.Next() {
			if i&1 == 0 {
				h.Push(i)
			} else {
				h.Pop()
			}
			i++
		}
	})
}

// BenchmarkObserverOverhead pins the disabled-path claim of DESIGN.md §8:
// fully instrumenting a structure (structural observer + live controller
// with a tick tracer + a registered metrics bridge) must not change the
// operation hot path, because no hook is read per operation. Compare the
// off/on ns/op in one run — cmd/stackbench's -json mode records the same
// pair, and CI's ratchet gates their ratio.
func BenchmarkObserverOverhead(b *testing.B) {
	cfg := core.Config{Width: 16, Depth: 64, Shift: 64, RandomHops: 2}
	b.Run("off", func(b *testing.B) {
		benchMixedOps(b, core.MustNew[uint64](cfg))
	})
	b.Run("on", func(b *testing.B) {
		s := core.MustNew[uint64](cfg)
		ring := NewRing(1024)
		s.SetObserver(StructTracer{Structure: "stack", Ring: ring})
		ctrl, err := adapt.New(s, adapt.Policy{Tick: 10 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		ctrl.SetObserver(TickTracer{Structure: "stack", Ring: ring})
		reg := NewRegistry()
		RegisterStructure(reg, "stack", s, nil)
		RegisterRing(reg, ring)
		ctrl.Start()
		defer ctrl.Stop()
		benchMixedOps(b, s)
	})
}
