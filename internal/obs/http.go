package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewMux wires the observability surfaces onto one http.ServeMux:
//
//	/metrics      — reg in Prometheus text exposition format
//	/debug/vars   — the process's expvar JSON (includes the registry
//	                snapshot once PublishExpvar has been called)
//	/debug/pprof  — the standard runtime profiles
//
// The pprof handlers are mounted explicitly rather than through
// net/http/pprof's DefaultServeMux side effect, so serving this mux never
// exposes profiles on a mux the caller did not ask for.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
