// Package obs is the observability plane of the 2D structures: it bridges
// the stats the structures already keep (core.OpStats aggregated by
// StatsSnapshot, adapt.TickRecord time series, shrink displacement, socket
// CAS pressure) into three operator-facing surfaces, none of which touch
// the operation hot path:
//
//   - a named metrics model (Registry): pull-based counters, gauges and
//     log2 histograms reusing OpStats' 28-bucket latency layout, rendered
//     as Prometheus text exposition (WriteProm/Handler) and as an expvar
//     JSON snapshot (ExpvarSnapshot) — see names.go for the exported
//     vocabulary;
//
//   - a structured event tracer (Ring): a bounded lock-free ring of typed
//     events — controller ticks with their goal/decision/TickRecord fields,
//     geometry reconfigurations, warm shrink handoffs with their tracked
//     displacement, placement re-homes — fed by the structures' observer
//     hook points (core.Observer, adapt.Observer) through the StructTracer
//     and TickTracer adapters, drainable as JSONL (WriteJSONL) for offline
//     correlation;
//
//   - HTTP wiring (NewMux): /metrics, /debug/vars and /debug/pprof on one
//     mux, served by cmd/adapttune -http during a run.
//
// Overhead model (DESIGN.md §8): the producers' hooks are nil-checked
// interface fields read only on reconfiguration paths and controller
// ticks — never inside Push/Pop/Enqueue/Dequeue — so an uninstrumented
// structure pays nothing and an instrumented one pays one small allocation
// per *event* (tick/reconfig rate, not operation rate). The metrics side is
// entirely pull: a scrape calls StatsSnapshot, the same aggregation the
// adaptive controller already performs per tick.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind types the events the tracer ring carries.
type Kind uint8

const (
	// KindTick is one adapt.Controller decision: the interval's signals and
	// the action taken (adapt.TickRecord verbatim).
	KindTick Kind = iota + 1
	// KindReconfig is a geometry swap: a new geometry (width/depth/shift)
	// published by Reconfigure, SetWindow/SetWidth or the controller.
	KindReconfig
	// KindShrinkHandoff is the warm migration that follows a width shrink:
	// stranded chains spliced into the survivors, with the displacement
	// bound the migration added (ShrinkDisplacementBound's increment).
	KindShrinkHandoff
	// KindPlacement is a SetPlacement re-home: the slot→socket map was
	// rebuilt for a new policy/socket count.
	KindPlacement
	// KindBackendSwap is an engine.Switcher backend exchange: the active
	// structure changed identity mid-run, residual items migrated, and the
	// checker allowance grew by the recorded displacement.
	KindBackendSwap
)

// String returns the JSONL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindTick:
		return "tick"
	case KindReconfig:
		return "reconfig"
	case KindShrinkHandoff:
		return "shrink-handoff"
	case KindPlacement:
		return "placement"
	case KindBackendSwap:
		return "backend-swap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MarshalJSON spells the kind as its string form in drained JSONL.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one typed entry of the tracer ring. It is a flat union: the
// geometry block is filled for every kind, the transition block for the
// structural kinds, the controller block only for KindTick. Flat (rather
// than nested per kind) so one JSONL schema serves every event and offline
// consumers can join ticks against the reconfigurations they caused on the
// shared geometry columns.
type Event struct {
	Seq       uint64    `json:"seq"`  // ring-assigned, strictly increasing
	Time      time.Time `json:"time"` // stamped at Emit
	Kind      Kind      `json:"kind"`
	Structure string    `json:"structure,omitempty"` // "stack", "queue", ...

	// Geometry current after the event (for KindTick: after the decision),
	// and its Theorem-1 bound.
	Width int    `json:"width,omitempty"`
	Depth int64  `json:"depth,omitempty"`
	Shift int64  `json:"shift,omitempty"`
	K     int64  `json:"k,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`

	// Structural-transition block (KindReconfig/KindShrinkHandoff/
	// KindPlacement).
	OldWidth     int   `json:"old_width,omitempty"`
	Requester    int   `json:"requester,omitempty"` // socket attribution, -1 unknown
	Stranded     int   `json:"stranded,omitempty"`  // dropped slots carrying items
	Displacement int64 `json:"displacement,omitempty"`
	Sockets      int   `json:"sockets,omitempty"`

	// Backend-swap block (KindBackendSwap); Displacement above carries the
	// allowance increment the migration added, K the incoming backend's
	// bound.
	FromBackend string `json:"from_backend,omitempty"`
	ToBackend   string `json:"to_backend,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Migrated    int    `json:"migrated,omitempty"`

	// Controller block (KindTick).
	Tick           int     `json:"tick,omitempty"`
	Goal           string  `json:"goal,omitempty"`
	Action         string  `json:"action,omitempty"`
	Ops            uint64  `json:"ops,omitempty"`
	Throughput     float64 `json:"throughput,omitempty"`
	CASPerOp       float64 `json:"cas_per_op,omitempty"`
	MovesPerOp     float64 `json:"moves_per_op,omitempty"`
	ProbesPerOp    float64 `json:"probes_per_op,omitempty"`
	EnergyPerOp    float64 `json:"energy_per_op,omitempty"`
	LatencySamples uint64  `json:"latency_samples,omitempty"`
	P50Ns          int64   `json:"p50_ns,omitempty"`
	P99Ns          int64   `json:"p99_ns,omitempty"`
	PressureSocket int     `json:"pressure_socket,omitempty"`
}
