package obs

import (
	"testing"
	"time"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/harness"
	"stack2d/internal/twodqueue"
)

// TestEventCausalOrder drives a real phased workload over an instrumented
// adaptive stack and asserts the trace reads causally: every warm shrink
// handoff is preceded (in ring sequence) by the reconfiguration that
// stranded its slots, at the same epoch, and the controller tick that
// reported a decision follows any structural events that decision caused.
func TestEventCausalOrder(t *testing.T) {
	ring := NewRing(512)
	s := core.MustNew[uint64](core.Config{Width: 8, Depth: 16, Shift: 16, RandomHops: 2})
	s.SetObserver(StructTracer{Structure: "stack", Ring: ring})

	ctrl, err := adapt.New(s, adapt.Policy{Tick: 5 * time.Millisecond, MinOpsPerTick: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetObserver(TickTracer{Structure: "stack", Ring: ring})

	// A contention-phased harness run with the background controller live —
	// the same arrangement cmd/adapttune's demo uses. Whether the controller
	// reconfigures during it is workload- and machine-dependent; the causal
	// assertions below hold either way.
	ctrl.Start()
	_, err = harness.RunPhased(s, harness.ContentionPhases(4, 50*time.Millisecond),
		harness.PhasedWorkload{MaxWorkers: 4, Prefill: 1024, Seed: 42})
	ctrl.Stop()
	if err != nil {
		t.Fatal(err)
	}

	// Now force the full structural vocabulary deterministically: populate,
	// shrink (reconfig + handoff), and take one more controller step so a
	// tick provably follows the structural pair it reported.
	h := s.NewHandle()
	for i := uint64(0); i < 512; i++ {
		h.Push(i)
	}
	preShrink := ring.Emitted()
	if err := s.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	ctrl.Step(50 * time.Millisecond)

	events := ring.Snapshot()
	if len(events) == 0 {
		t.Fatal("instrumented run emitted no events")
	}
	var ticks, reconfigs, handoffs int
	reconfigBySeq := map[uint64]Event{}
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("snapshot not strictly Seq-ordered at %d", i)
		}
		switch ev.Kind {
		case KindTick:
			ticks++
		case KindReconfig:
			reconfigs++
			reconfigBySeq[ev.Seq] = ev
		case KindShrinkHandoff:
			handoffs++
			// Causality: the publishing reconfig precedes its handoff, at
			// the same epoch and geometry.
			found := false
			for seq, rc := range reconfigBySeq {
				if seq < ev.Seq && rc.Epoch == ev.Epoch && rc.Width == ev.Width {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("shrink-handoff seq=%d epoch=%d has no preceding reconfig event", ev.Seq, ev.Epoch)
			}
			if ev.Displacement <= 0 {
				t.Fatalf("handoff of a populated shrink carried displacement %d", ev.Displacement)
			}
		}
	}
	if ticks == 0 {
		t.Fatal("no controller tick events recorded")
	}
	if handoffs == 0 {
		t.Fatal("forced width shrink emitted no shrink-handoff event")
	}

	// The tick stepped after the forced shrink must order after both the
	// shrink's events; it is the last event emitted.
	last := events[len(events)-1]
	if last.Kind != KindTick {
		t.Fatalf("last event is %v, want the post-shrink tick", last.Kind)
	}
	if last.Seq < preShrink {
		t.Fatal("post-shrink tick ordered before the shrink's structural events")
	}
	if last.Goal != adapt.MaxThroughput.String() {
		t.Fatalf("tick goal = %q, want %q", last.Goal, adapt.MaxThroughput)
	}
	if last.Width != 2 {
		t.Fatalf("post-shrink tick reports width %d, want 2", last.Width)
	}
	if s.ShrinkDisplacementBound() <= 0 {
		t.Fatal("shrink left no displacement bound")
	}
}

// TestQueueStructEvents mirrors the structural assertions for the 2D-Queue,
// which reuses core's observer vocabulary through its own hook points.
func TestQueueStructEvents(t *testing.T) {
	ring := NewRing(64)
	q := twodqueue.MustNew[uint64](twodqueue.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1})
	q.SetObserver(StructTracer{Structure: "queue", Ring: ring})

	h := q.NewHandle()
	for i := uint64(0); i < 256; i++ {
		h.Enqueue(i)
	}
	if err := q.SetWidth(2); err != nil {
		t.Fatal(err)
	}
	events := ring.Snapshot()
	if len(events) != 2 {
		t.Fatalf("got %d events from a populated shrink, want reconfig+handoff", len(events))
	}
	rc, sh := events[0], events[1]
	if rc.Kind != KindReconfig || sh.Kind != KindShrinkHandoff {
		t.Fatalf("event kinds = %v, %v; want reconfig then shrink-handoff", rc.Kind, sh.Kind)
	}
	if rc.Structure != "queue" || sh.Structure != "queue" {
		t.Fatal("events not labelled with the queue structure")
	}
	if rc.Epoch != sh.Epoch || rc.OldWidth != 4 || rc.Width != 2 {
		t.Fatalf("reconfig/handoff geometry mismatch: %+v vs %+v", rc, sh)
	}
	if sh.Displacement <= 0 || sh.Displacement != q.ShrinkDisplacementBound() {
		t.Fatalf("handoff displacement %d does not match the queue's bound %d",
			sh.Displacement, q.ShrinkDisplacementBound())
	}

	// Placement re-home emits its own kind with the socket count.
	q.SetPlacement(core.LocalFirst(), 2)
	events = ring.Snapshot()
	last := events[len(events)-1]
	if last.Kind != KindPlacement || last.Sockets != 2 {
		t.Fatalf("SetPlacement emitted %+v, want a placement event with 2 sockets", last)
	}
}

// TestRegisterStructureLive exercises the bridge over the real structures
// end to end: a live stack's exported counters must agree with its own
// StatsSnapshot, through the same Source interface the Steerable queue
// satisfies.
func TestRegisterStructureLive(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 4, Depth: 16, Shift: 16, RandomHops: 1})
	q := twodqueue.MustNew[uint64](twodqueue.Config{Width: 4, Depth: 16, Shift: 16, RandomHops: 1})

	now := time.Unix(0, 0)
	reg := NewRegistry()
	RegisterStructure(reg, "stack", s, func() time.Time { return now })
	RegisterStructure(reg, "queue", twodqueue.Steer(q), func() time.Time { return now })

	hs, hq := s.NewHandle(), q.NewHandle()
	for i := uint64(0); i < 1000; i++ {
		hs.Push(i)
		hq.Enqueue(i)
	}
	hs.FlushStats()
	hq.FlushStats()
	now = now.Add(time.Second)

	snap, _ := reg.ExpvarSnapshot().(map[string]any)
	if v := snap["stack2d_stack_pushes_total"]; v != float64(1000) {
		t.Fatalf("stack pushes exported %v, want 1000", v)
	}
	if v := snap["stack2d_queue_pushes_total"]; v != float64(1000) {
		t.Fatalf("queue enqueues exported %v, want 1000", v)
	}
	wantK := float64(s.Config().K())
	if v := snap["stack2d_stack_realised_k"]; v != wantK {
		t.Fatalf("stack realised_k exported %v, want %v", v, wantK)
	}
	if v := snap["stack2d_queue_shrink_displacement_bound"]; v != float64(0) {
		t.Fatalf("queue shrink bound exported %v before any shrink", v)
	}
}
