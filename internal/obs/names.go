package obs

// MetricPrefix namespaces every exported metric; a per-structure metric's
// full name is MetricPrefix + "_" + structure + "_" + suffix (for example
// stack2d_stack_pushes_total, stack2d_queue_realised_k), the tracer's own
// meta-metrics use the fixed "obs" structure. CI greps the suffix
// constants below against DESIGN.md §8, so every exported name stays
// documented: add a metric here and the build fails until the section's
// vocabulary table mentions it.
const MetricPrefix = "stack2d"

// Per-structure counter suffixes (monotone totals from core.OpStats).
const (
	MPushesTotal       = "pushes_total"
	MPopsTotal         = "pops_total"
	MEmptyPopsTotal    = "empty_pops_total"
	MProbesTotal       = "probes_total"
	MRandomHopsTotal   = "random_hops_total"
	MCASFailuresTotal  = "cas_failures_total"
	MWindowRaisesTotal = "window_raises_total"
	MWindowLowersTotal = "window_lowers_total"
	MRestartsTotal     = "restarts_total"
	MSocketCASTotal    = "socket_cas_total" // labelled {socket="i"}
)

// Per-structure histogram suffixes.
const (
	MLatencyNs = "latency_ns" // 28-bucket log2 layout, see core.LatencyBucket
)

// Per-structure gauge suffixes (interval rates and current geometry).
const (
	MThroughputOps   = "throughput_ops"
	MCASPerOp        = "cas_per_op"
	MEnergyPerOp     = "energy_per_op"
	MLatencyP50Ns    = "latency_p50_ns" // -1 when the interval sampled nothing
	MLatencyP99Ns    = "latency_p99_ns" // (core.NoLatencySample sentinel)
	MGeometryWidth   = "geometry_width"
	MGeometryDepth   = "geometry_depth"
	MGeometryShift   = "geometry_shift"
	MRealisedK       = "realised_k"
	MShrinkDispBound = "shrink_displacement_bound"
	MSwapDispBound   = "swap_displacement_bound"
)

// Engine-switcher suffixes (see RegisterSwitcher).
const (
	MBackendSwapsTotal = "backend_swaps_total"
)

// Tracer meta-metric suffixes (structure "obs").
const (
	MEventsEmittedTotal = "events_emitted_total"
	MEventsDroppedTotal = "events_dropped_total"
)

// MetricName joins prefix, structure and suffix into a full exported name.
func MetricName(structure, suffix string) string {
	return MetricPrefix + "_" + structure + "_" + suffix
}
