package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a pull-based metrics collection: every metric is a closure
// evaluated at render time (a Prometheus scrape or an expvar read), so
// registration costs nothing on any hot path and the registry holds no
// state to keep coherent — the closures read the structures' own atomic
// snapshots. Rendering is deterministic (sorted by name, then labels),
// which is what the golden-file test pins.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

type metric struct {
	name   string // full metric name, e.g. stack2d_stack_pushes_total
	labels string // rendered label block without braces, e.g. `socket="3"`, or ""
	help   string
	typ    string // "counter", "gauge" or "histogram"
	read   func() float64
	// readHist returns cumulative-ready raw bucket counts in the log2-ns
	// layout: bucket i counts samples of bit-length i ns (upper bound 2^i),
	// the final bucket absorbs the rest (+Inf). Histogram metrics only.
	readHist func() []uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// Counter registers a monotone total read by the closure.
func (r *Registry) Counter(name, help string, read func() float64) {
	r.add(&metric{name: name, help: help, typ: "counter", read: read})
}

// LabeledCounter registers one labelled series of a counter family; labels
// is the rendered pair list, e.g. `socket="0"`. Series sharing a name form
// one family with a single HELP/TYPE header.
func (r *Registry) LabeledCounter(name, labels, help string, read func() float64) {
	r.add(&metric{name: name, labels: labels, help: help, typ: "counter", read: read})
}

// Gauge registers an instantaneous value read by the closure.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.add(&metric{name: name, help: help, typ: "gauge", read: read})
}

// Histogram registers a log2-nanosecond histogram: read returns raw bucket
// counts where bucket i holds samples whose duration has bit-length i ns
// (core.LatencyBucket's layout); the last bucket is rendered as +Inf.
func (r *Registry) Histogram(name, help string, read func() []uint64) {
	r.add(&metric{name: name, help: help, typ: "histogram", readHist: read})
}

// snapshot returns the metrics sorted by (name, labels); families stay
// adjacent so headers render once.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE once per family, series sorted by labels,
// histograms as cumulative le-bucketed series with the documented log2-ns
// bounds. The _sum series is estimated from bucket midpoints (the log2
// layout keeps no exact sum); _count is exact.
func (r *Registry) WriteProm(w *strings.Builder) {
	var lastHeader string
	for _, m := range r.snapshot() {
		if m.name != lastHeader {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
			lastHeader = m.name
		}
		switch m.typ {
		case "histogram":
			buckets := m.readHist()
			var cum, count uint64
			var sum float64
			for i, b := range buckets {
				cum += b
				count += b
				sum += float64(b) * bucketMidpointNs(i, len(buckets))
				if i == len(buckets)-1 {
					fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
				} else {
					fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m.name, uint64(1)<<i, cum)
				}
			}
			fmt.Fprintf(w, "%s_sum %s\n", m.name, formatValue(sum))
			fmt.Fprintf(w, "%s_count %d\n", m.name, count)
		default:
			if m.labels != "" {
				fmt.Fprintf(w, "%s{%s} %s\n", m.name, m.labels, formatValue(m.read()))
			} else {
				fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.read()))
			}
		}
	}
}

// bucketMidpointNs estimates the representative value of log2 bucket i:
// bucket 0 covers (0,1] ns, bucket i covers (2^(i-1), 2^i] ns, the last
// bucket is open-ended and represented by 1.5x its lower bound.
func bucketMidpointNs(i, n int) float64 {
	switch {
	case i == 0:
		return 0.5
	case i == n-1:
		return 1.5 * float64(uint64(1)<<(i-1))
	default:
		return 0.75 * float64(uint64(1)<<i)
	}
}

// Render returns the Prometheus text rendering as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteProm(&b)
	return b.String()
}

// Handler serves the Prometheus text rendering over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Render())
	})
}

// ExpvarSnapshot returns the registry as one JSON-ready map — counters and
// gauges as numbers keyed by name{labels}, histograms as raw bucket count
// slices — suitable for expvar.Func.
func (r *Registry) ExpvarSnapshot() any {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		key := m.name
		if m.labels != "" {
			key += "{" + m.labels + "}"
		}
		if m.typ == "histogram" {
			out[key] = m.readHist()
		} else {
			out[key] = m.read()
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name on the
// process-global /debug/vars page. Like expvar.Publish it must be called
// at most once per name per process (it panics on duplicates), so it
// belongs in main(), not in libraries or tests — tests read
// ExpvarSnapshot directly.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.ExpvarSnapshot() }))
}
