package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stack2d/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeSource is a deterministic Source/ShrinkReporter for rendering tests.
type fakeSource struct {
	stats core.OpStats
	cfg   core.Config
	disp  int64
}

func (f *fakeSource) StatsSnapshot() core.OpStats { return f.stats }
func (f *fakeSource) Config() core.Config         { return f.cfg }
func (f *fakeSource) ShrinkDisplacementBound() int64 {
	return f.disp
}

// fixtureRegistry builds a registry over a fake structure with known
// counters, stepping an injected clock past the cache window so the rate
// gauges read a deterministic 1-second interval.
func fixtureRegistry() *Registry {
	src := &fakeSource{cfg: core.Config{Width: 8, Depth: 64, Shift: 64, RandomHops: 2}, disp: 17}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }

	reg := NewRegistry()
	RegisterStructure(reg, "stack", src, clock)

	// One second of synthetic work after registration: rates become
	// totals-per-second exactly.
	src.stats = core.OpStats{
		Pushes: 60000, Pops: 30000, EmptyPops: 10000,
		Probes: 150000, RandomHops: 40000, CASFailures: 20000,
		WindowRaises: 500, WindowLowers: 100, Restarts: 900,
	}
	src.stats.SocketCAS[0] = 15000
	src.stats.SocketCAS[1] = 5000
	src.stats.Latency[core.LatencyBucket(300)] = 99 // [256,512) ns
	src.stats.Latency[core.LatencyBucket(100000)] = 1
	now = now.Add(time.Second)

	ring := NewRing(16)
	for i := 0; i < 20; i++ {
		ring.Emit(Event{Kind: KindTick, Time: now, Tick: i})
	}
	RegisterRing(reg, ring)
	return reg
}

// TestPromGolden pins the full Prometheus text rendering — family headers,
// sort order, label spelling, histogram le bounds, value formatting —
// against testdata/metrics.golden. Regenerate with `go test -run
// TestPromGolden -update ./internal/obs/`.
func TestPromGolden(t *testing.T) {
	got := fixtureRegistry().Render()
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Prometheus rendering drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPromRenderingProperties checks the exposition-format invariants that
// must hold for any registry, independent of the golden fixture.
func TestPromRenderingProperties(t *testing.T) {
	out := fixtureRegistry().Render()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	seenHelp := map[string]bool{}
	var lastName string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# HELP ") {
			name := strings.Fields(ln)[2]
			if seenHelp[name] {
				t.Fatalf("family %s rendered HELP twice", name)
			}
			seenHelp[name] = true
			if name < lastName {
				t.Fatalf("families out of order: %s after %s", name, lastName)
			}
			lastName = name
		}
	}
	// Histogram invariants: cumulative buckets, +Inf matches _count.
	if !strings.Contains(out, `stack2d_stack_latency_ns_bucket{le="+Inf"} 100`) {
		t.Fatalf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, "stack2d_stack_latency_ns_count 100") {
		t.Fatal("histogram _count missing or wrong")
	}
	// The interval gauges computed from the synthetic 1-second delta.
	if !strings.Contains(out, "stack2d_stack_throughput_ops 100000") {
		t.Fatalf("throughput gauge missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "stack2d_stack_cas_per_op 0.2") {
		t.Fatal("cas_per_op gauge missing or wrong")
	}
	if !strings.Contains(out, "stack2d_stack_realised_k 1344") {
		t.Fatal("realised_k gauge missing or wrong (want (2*64+64)*(8-1))")
	}
	if !strings.Contains(out, "stack2d_stack_shrink_displacement_bound 17") {
		t.Fatal("shrink displacement gauge missing")
	}
	if !strings.Contains(out, "stack2d_obs_events_emitted_total 20") ||
		!strings.Contains(out, "stack2d_obs_events_dropped_total 4") {
		t.Fatal("tracer meta-metrics missing or wrong")
	}
}

// TestSentinelSurfacesAsMinusOne: an interval with no latency samples
// exports P50/P99 as -1, never as a fake sub-nanosecond estimate.
func TestSentinelSurfacesAsMinusOne(t *testing.T) {
	src := &fakeSource{cfg: core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 1}}
	now := time.Unix(0, 0)
	reg := NewRegistry()
	RegisterStructure(reg, "queue", src, func() time.Time { return now })
	src.stats.Pushes = 1000 // work, but no latency samples
	now = now.Add(time.Second)
	out := reg.Render()
	if !strings.Contains(out, "stack2d_queue_latency_p50_ns -1") ||
		!strings.Contains(out, "stack2d_queue_latency_p99_ns -1") {
		t.Fatalf("unsampled interval did not surface the -1 sentinel:\n%s", out)
	}
}

// TestExpvarSnapshot checks the expvar surface renders the same values
// under name{labels} keys without going through expvar.Publish (which is
// process-global and once-per-name).
func TestExpvarSnapshot(t *testing.T) {
	snap, ok := fixtureRegistry().ExpvarSnapshot().(map[string]any)
	if !ok {
		t.Fatal("ExpvarSnapshot is not a map")
	}
	if v := snap["stack2d_stack_pushes_total"]; v != float64(60000) {
		t.Fatalf("pushes_total = %v, want 60000", v)
	}
	if v := snap[`stack2d_stack_socket_cas_total{socket="1"}`]; v != float64(5000) {
		t.Fatalf("labelled socket counter = %v, want 5000", v)
	}
	hist, ok := snap["stack2d_stack_latency_ns"].([]uint64)
	if !ok || len(hist) != core.NumLatencyBuckets {
		t.Fatalf("histogram snapshot missing or wrong length: %v", snap["stack2d_stack_latency_ns"])
	}
}
