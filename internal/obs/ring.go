package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Ring is a bounded, lock-free, multi-producer event buffer: Emit claims
// the next sequence number with one atomic add and publishes the event
// into slot seq&mask with one atomic pointer store, overwriting the entry
// `capacity` sequence numbers older. Writers never block and never spin;
// an overflowing ring silently drops the oldest events (counted by
// Dropped), which is the right failure mode for a diagnostic stream.
//
// Each slot holds an immutable *Event — published wholesale, never written
// in place — so concurrent Snapshot/WriteJSONL readers are race-free by
// construction (an in-place seqlock payload would be faster by one small
// allocation per event, but events arrive at tick/reconfiguration rate,
// not operation rate, and pointer publication is what keeps the ring clean
// under the race detector).
type Ring struct {
	mask  uint64
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// NewRing returns a ring holding the most recent `capacity` events;
// capacity is rounded up to a power of two, minimum 16.
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Emit stamps the event with the next sequence number (and the current
// time, unless the producer already stamped one) and publishes it. Safe
// for any number of concurrent producers.
func (r *Ring) Emit(e Event) {
	e.Seq = r.next.Add(1) - 1
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	ev := new(Event)
	*ev = e
	r.slots[e.Seq&r.mask].Store(ev)
}

// Emitted returns how many events have been emitted over the ring's
// lifetime (retained or not).
func (r *Ring) Emitted() uint64 { return r.next.Load() }

// Dropped returns how many events have been overwritten before they could
// be drained — emitted minus capacity, once the ring has wrapped.
func (r *Ring) Dropped() uint64 {
	if n := r.next.Load(); n > uint64(len(r.slots)) {
		return n - uint64(len(r.slots))
	}
	return 0
}

// Snapshot returns the retained events in sequence order. Concurrent with
// emitters: a slot overwritten mid-snapshot yields the newer event, so the
// result is always a set of genuinely emitted events sorted by Seq, though
// under churn it may have gaps where overwrites raced the read.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL drains a snapshot as one JSON object per line — the offline
// format cmd/adapttune -trace writes, joinable against the -csv time
// series on the tick/geometry columns.
func (r *Ring) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
