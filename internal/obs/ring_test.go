package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128}, {1024, 1024},
	} {
		if got := NewRing(c.ask).Cap(); got != c.want {
			t.Fatalf("NewRing(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestRingOverwrite pins the bounded-buffer semantics: after emitting more
// events than the ring holds, exactly the newest Cap() events are retained,
// in sequence order, and Dropped accounts for the overwritten prefix.
func TestRingOverwrite(t *testing.T) {
	r := NewRing(16)
	const emitted = 40
	for i := 0; i < emitted; i++ {
		r.Emit(Event{Kind: KindTick, Tick: i})
	}
	if got := r.Emitted(); got != emitted {
		t.Fatalf("Emitted = %d, want %d", got, emitted)
	}
	if got := r.Dropped(); got != emitted-16 {
		t.Fatalf("Dropped = %d, want %d", got, emitted-16)
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(snap))
	}
	for i, ev := range snap {
		wantSeq := uint64(emitted - 16 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest survivors overwritten first)", i, ev.Seq, wantSeq)
		}
		if ev.Tick != int(wantSeq) {
			t.Fatalf("snapshot[%d] payload %d does not match its Seq %d", i, ev.Tick, wantSeq)
		}
	}
}

// TestRingConcurrentEmit hammers the ring from many producers while a
// reader snapshots continuously; run under -race this pins the lock-free
// publication scheme (immutable events behind atomic pointers). Every
// snapshot must be strictly Seq-sorted and contain only genuinely emitted
// payloads.
func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(64)
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Error("snapshot not strictly Seq-sorted")
					return
				}
			}
			for _, ev := range snap {
				if ev.Kind != KindReconfig || ev.Width < 0 || ev.Width >= producers {
					t.Errorf("snapshot surfaced a torn event: %+v", ev)
					return
				}
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Emit(Event{Kind: KindReconfig, Structure: "stack", Width: p})
			}
		}(p)
	}
	// Stop the reader once every producer's emission has landed.
	for r.Emitted() < producers*perProducer {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := r.Emitted(); got != producers*perProducer {
		t.Fatalf("Emitted = %d, want %d", got, producers*perProducer)
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(16)
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r.Emit(Event{Kind: KindReconfig, Structure: "stack", Time: when, Width: 8, Depth: 64, Shift: 64, K: 1344, Epoch: 2})
	r.Emit(Event{Kind: KindShrinkHandoff, Structure: "stack", Time: when, Width: 4, OldWidth: 8, Displacement: 17, Epoch: 3})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", len(lines), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "reconfig" || lines[1]["kind"] != "shrink-handoff" {
		t.Fatalf("kinds = %v, %v", lines[0]["kind"], lines[1]["kind"])
	}
	if lines[1]["displacement"] != float64(17) {
		t.Fatalf("displacement = %v, want 17", lines[1]["displacement"])
	}
	if _, ok := lines[0]["tick"]; ok {
		t.Fatal("structural event leaked a zero controller field through omitempty")
	}
}
