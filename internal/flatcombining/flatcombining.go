// Package flatcombining implements a flat-combining stack (Hendler, Incze,
// Shavit, Tzafrir, SPAA 2010) — the modern representative of the software
// combining lineage the paper's related-work section cites via combining
// funnels (Shavit & Zemach, JPDC 2000).
//
// Instead of contending on the data structure, threads publish their
// operation in a per-thread record; whoever acquires the combiner lock
// applies *all* pending operations to a sequential stack in one pass and
// posts the results. Under contention, one cache-line-friendly sweep
// replaces N CAS battles. The structure is strictly LIFO (k = 0) and
// blocking (a stalled combiner delays others) — it trades the paper's
// lock-freedom for combining throughput, which is exactly the contrast the
// 2D-Stack's evaluation context calls for.
package flatcombining

import (
	"runtime"
	"sync"
	"sync/atomic"

	"stack2d/internal/core"
	"stack2d/internal/pad"
)

// Pending operation codes in a publication record.
const (
	opNone int32 = iota
	opPush
	opPop
)

// request is one thread's publication record. The combiner reads op with
// acquire semantics, so value/popOK written before the op store (by the
// owner) or before the op clear (by the combiner) are safely published.
type request[T any] struct {
	op    atomic.Int32
	value T
	popOK bool
	_     pad.CacheLinePad
}

// Stack is a flat-combining LIFO stack. Create with New; obtain one Handle
// per goroutine. The zero value is not usable.
type Stack[T any] struct {
	lock atomic.Bool
	recs atomic.Pointer[[]*request[T]]

	mu  sync.Mutex // guards registration (rare path)
	seq []T        // the sequential stack; touched only under lock
}

// New returns an empty flat-combining stack.
func New[T any]() *Stack[T] {
	s := &Stack[T]{}
	empty := make([]*request[T], 0)
	s.recs.Store(&empty)
	return s
}

// Len returns the stack population. It acquires the combiner lock briefly.
func (s *Stack[T]) Len() int {
	for !s.lock.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
	n := len(s.seq)
	s.lock.Store(false)
	return n
}

// Drain removes all items top-first; teardown/testing helper.
func (s *Stack[T]) Drain() []T {
	h := s.NewHandle()
	var out []T
	for {
		v, ok := h.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Handle is a per-goroutine publication record. Not safe for concurrent
// use of the same handle.
type Handle[T any] struct {
	s     *Stack[T]
	rec   *request[T]
	stats *core.OpStats
}

// NewHandle registers and returns an operation handle.
func (s *Stack[T]) NewHandle() *Handle[T] {
	rec := &request[T]{}
	s.mu.Lock()
	old := *s.recs.Load()
	next := make([]*request[T], len(old)+1)
	copy(next, old)
	next[len(old)] = rec
	s.recs.Store(&next)
	s.mu.Unlock()
	return &Handle[T]{s: s, rec: rec}
}

// SetStats points the handle's internal-signal counters at st (nil
// disables, the default): failed combiner-lock acquisitions while an
// operation is pending count as CASFailures — the structure's one
// contention point — and each combining pass this handle performed for
// others counts as a Probe. Operation outcomes are counted by the backend
// adapter in internal/relax, not here. Owner-goroutine only.
func (h *Handle[T]) SetStats(st *core.OpStats) { h.stats = st }

// Push adds v to the top of the stack.
func (h *Handle[T]) Push(v T) {
	h.rec.value = v
	h.rec.op.Store(opPush)
	h.await()
}

// Pop removes and returns the top value; ok is false on empty.
func (h *Handle[T]) Pop() (v T, ok bool) {
	h.rec.op.Store(opPop)
	h.await()
	// Move the result out of the publication record rather than leaving a
	// copy behind: a record lives as long as its handle, so a retained
	// value would stay reachable until this handle's next operation — the
	// same GC-pinning class as the msqueue dummy node. Safe: op is opNone,
	// so no combiner touches the record until we publish a new op.
	v, ok = h.rec.value, h.rec.popOK
	var zero T
	h.rec.value = zero
	return v, ok
}

// await spins until the handle's pending operation has been applied,
// becoming the combiner whenever the lock is free.
func (h *Handle[T]) await() {
	s := h.s
	for h.rec.op.Load() != opNone {
		if s.lock.CompareAndSwap(false, true) {
			if h.stats != nil {
				h.stats.Probes++
			}
			s.combine()
			s.lock.Store(false)
			continue // re-check own record (the combiner serves itself too)
		}
		if h.stats != nil {
			h.stats.CASFailures++
		}
		runtime.Gosched()
	}
}

// combine applies every pending published operation to the sequential
// stack. Called only while holding the combiner lock.
func (s *Stack[T]) combine() {
	var zero T
	for _, r := range *s.recs.Load() {
		switch r.op.Load() {
		case opPush:
			s.seq = append(s.seq, r.value)
			// Clear the applied value from the record: the pusher never
			// reads it back, and leaving it would pin the pushed value to
			// the record's lifetime even after the item is popped.
			r.value = zero
			r.op.Store(opNone)
		case opPop:
			if n := len(s.seq); n > 0 {
				r.value = s.seq[n-1]
				r.popOK = true
				// Zero the vacated slot before truncating: the backing
				// array survives the reslice, so an unzeroed slot would pin
				// the popped value until a later push overwrites it.
				s.seq[n-1] = zero
				s.seq = s.seq[:n-1]
			} else {
				r.value = zero
				r.popOK = false
			}
			r.op.Store(opNone)
		}
	}
}
