package flatcombining

import (
	"runtime"
	"testing"
	"time"
)

// The publication-record scheme keeps one record alive per handle for the
// handle's whole lifetime, which makes records (and the sequential slice's
// backing array) prime spots for the GC-pinning bug class fixed in the
// msqueue dummy node: a value that logically left the structure staying
// reachable through leftover copies. These tests push a finalizer-tracked
// value through each copy site and require it to become collectable while
// the handles (and hence the records) stay alive.

// collectableWithin asserts the finalizer fires after refs were dropped.
func collectableWithin(t *testing.T, collected <-chan struct{}, site string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatalf("popped value still reachable: %s pinned it", site)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestPoppedValueIsCollectable runs the minimal push-then-pop flow with
// no further operations, so every copy site stays live and unmasked: h1's
// record (the applied push must be cleared by the combiner), the seq
// backing array (the vacated slot must be zeroed before the truncating
// reslice — the backing array survives it), and h2's record (the pop
// result must be moved out, not copied out).
func TestPoppedValueIsCollectable(t *testing.T) {
	s := New[*[]byte]()
	h1, h2 := s.NewHandle(), s.NewHandle()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	h1.Push(big)
	got, ok := h2.Pop()
	if !ok || got != big {
		t.Fatalf("Pop = (%p,%v), want the pushed pointer", got, ok)
	}
	got, big = nil, nil
	collectableWithin(t, collected, "a publication record or the seq slice")
	runtime.KeepAlive(h1)
	runtime.KeepAlive(h2)
	runtime.KeepAlive(s)
}

// TestPopRecordDoesNotPinValue covers the popper's own record: after Pop
// returns, the record must not keep a copy of the returned value until the
// handle's next operation (which may never come).
func TestPopRecordDoesNotPinValue(t *testing.T) {
	s := New[*[]byte]()
	h := s.NewHandle()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	h.Push(big)
	got, ok := h.Pop()
	if !ok || got != big {
		t.Fatalf("Pop = (%p,%v), want the pushed pointer", got, ok)
	}
	got, big = nil, nil
	// No further operations on h: the record must already be clean.
	collectableWithin(t, collected, "the pop publication record")
	runtime.KeepAlive(h)
	runtime.KeepAlive(s)
}
