package flatcombining

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestSequentialLIFO(t *testing.T) {
	s := New[uint64]()
	h := s.NewHandle()
	var m seqspec.Model
	for v := uint64(0); v < 300; v++ {
		h.Push(v)
		m.Push(v)
		if v%3 == 1 {
			got, gok := h.Pop()
			want, wok := m.Pop()
			if gok != wok || got != want {
				t.Fatalf("Pop = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Pop()
		got, gok := h.Pop()
		if gok != wok {
			t.Fatal("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	s := New[int]()
	h := s.NewHandle()
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	h.Push(1)
	if v, ok := h.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = (%d,%v), want (1,true)", v, ok)
	}
}

func TestLen(t *testing.T) {
	s := New[int]()
	h := s.NewHandle()
	for i := 0; i < 5; i++ {
		h.Push(i)
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2000
	s := New[uint64]()
	popped := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Pop(); ok {
						popped[w] = append(popped[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// TestIntervalSanityConcurrent: flat combining is strict; its interval
// histories must pass the zero-slack checks.
func TestIntervalSanityConcurrent(t *testing.T) {
	s := New[uint64]()
	var clockSrc, labelSrc struct{ v uint64 }
	var mu sync.Mutex
	tick := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		clockSrc.v++
		return int64(clockSrc.v)
	}
	nextLabel := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		labelSrc.v++
		return labelSrc.v
	}
	const workers, opsPerW = 4, 1000
	histories := make([][]seqspec.IntervalOp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			hist := make([]seqspec.IntervalOp, 0, opsPerW)
			for i := 0; i < opsPerW; i++ {
				begin := tick()
				if i%2 == 0 {
					v := nextLabel()
					h.Push(v)
					hist = append(hist, seqspec.IntervalOp{Kind: seqspec.OpPush, Value: v, Begin: begin, End: tick()})
				} else {
					v, ok := h.Pop()
					hist = append(hist, seqspec.IntervalOp{Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: tick()})
				}
			}
			histories[w] = hist
		}(w)
	}
	wg.Wait()
	var all []seqspec.IntervalOp
	for _, h := range histories {
		all = append(all, h...)
	}
	h := s.NewHandle()
	for {
		begin := tick()
		v, ok := h.Pop()
		all = append(all, seqspec.IntervalOp{Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: tick()})
		if !ok {
			break
		}
	}
	if err := seqspec.CheckIntervalSanity(all, 0); err != nil {
		t.Fatal(err)
	}
}

// Property: push-all then drain reverses the input.
func TestPropertyDrainReverses(t *testing.T) {
	f := func(vals []uint64) bool {
		s := New[uint64]()
		h := s.NewHandle()
		for _, v := range vals {
			h.Push(v)
		}
		out := s.Drain()
		if len(out) != len(vals) {
			return false
		}
		for i := range out {
			if out[i] != vals[len(vals)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
