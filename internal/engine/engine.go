// Package engine composes the relaxation catalogue's backends
// (relax.Backend) into one hot-swappable structure: a Switcher holds a
// registry of backends sharing a sequential discipline, exactly one of
// which is active, and swaps the active one mid-run without stopping the
// callers.
//
// The swap protocol reuses the epoch-pinning idea of the 2D structures'
// live reconfiguration (DESIGN.md §4), one level up: every operation pins
// the active slot for its duration, a swap marks the outgoing slot
// draining and quiesces it (new operations bounce to the published slot;
// pinned ones finish), then the residual items migrate to the incoming
// backend in pop order and the new slot publishes atomically. Callers
// observe at most a brief stall, never an error and never a lost item.
//
// # Semantics accounting
//
// A swap freezes at most the outgoing backend's k-bound of misordering
// into the migrated prefix (each drained item sits within k places of its
// strict position, and the migration preserves drain order), so the
// checker budget for a history spanning swaps is
//
//	max KBound over the backends that were active
//	  + SwapDisplacementBound()            (swap migrations)
//	  + per-backend shrink displacement    (2D warm handoffs, if any)
//
// which is exactly the accounting the conformance swap hammer pins.
// Backends without a deterministic bound (KBound < 0) are rejected at
// Register: a switcher's history is always checkable.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"stack2d/internal/core"
	"stack2d/internal/relax"
	"stack2d/internal/yield"
)

// SwapRecord describes one completed backend swap.
type SwapRecord struct {
	Seq      int    // 0-based swap index on this switcher
	From, To string // catalogue names (relax.Algorithm.String)
	Reason   string // the caller's stated trigger, e.g. "k-budget-zero"
	Migrated int    // residual items moved from the old backend
	// Displacement is the checker-allowance increment this swap added:
	// min(outgoing KBound, Migrated−1), the misordering the drain could
	// have frozen into the migrated prefix.
	Displacement int64
	FromK, ToK   int64
}

// slot is one registered backend plus its epoch-pinning state.
type slot[T any] struct {
	b        relax.Backend[T]
	pins     atomic.Int64
	draining atomic.Bool
}

// Switcher is a relax.Backend whose implementation can be exchanged
// mid-run. Create with New, add alternatives with Register, change the
// active one with Swap. All methods are safe for concurrent use; handles
// follow the usual one-goroutine-per-handle rule.
type Switcher[T any] struct {
	ordering relax.Ordering

	mu     sync.Mutex
	names  []string // registration order
	byName map[string]*slot[T]
	swaps  []SwapRecord
	onSwap func(SwapRecord)

	active atomic.Pointer[slot[T]]
	disp   atomic.Int64
	maxK   atomic.Int64
}

// New builds a switcher with initial as the active backend. The initial
// backend fixes the switcher's ordering (LIFO or FIFO); like every
// registered backend it must have a deterministic bound (KBound >= 0).
func New[T any](initial relax.Backend[T]) (*Switcher[T], error) {
	ord := initial.Algorithm().Ordering()
	if ord == relax.OrderNone {
		return nil, fmt.Errorf("engine: %v has pool semantics; a switcher needs an ordering to preserve", initial.Algorithm())
	}
	if initial.KBound() < 0 {
		return nil, fmt.Errorf("engine: %v has no deterministic bound", initial.Algorithm())
	}
	sw := &Switcher[T]{ordering: ord, byName: map[string]*slot[T]{}}
	sl := &slot[T]{b: initial}
	name := initial.Algorithm().String()
	sw.byName[name] = sl
	sw.names = append(sw.names, name)
	sw.maxK.Store(initial.KBound())
	sw.active.Store(sl)
	return sw, nil
}

// Register adds an inactive alternative the switcher may later swap to.
// The backend must share the switcher's ordering, carry a deterministic
// bound, and use a catalogue name not already registered.
func (s *Switcher[T]) Register(b relax.Backend[T]) error {
	name := b.Algorithm().String()
	if got := b.Algorithm().Ordering(); got != s.ordering {
		return fmt.Errorf("engine: %s is %v-ordered; this switcher is %v", name, got, s.ordering)
	}
	if b.KBound() < 0 {
		return fmt.Errorf("engine: %s has no deterministic bound", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("engine: %s already registered", name)
	}
	s.byName[name] = &slot[T]{b: b}
	s.names = append(s.names, name)
	return nil
}

// Backends returns the registered catalogue names in registration order.
func (s *Switcher[T]) Backends() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// ActiveBackend returns the catalogue name of the active backend.
func (s *Switcher[T]) ActiveBackend() string {
	return s.active.Load().b.Algorithm().String()
}

// BackendKBound returns the registered backend's semantics budget, or
// false if no backend of that name is registered.
func (s *Switcher[T]) BackendKBound(name string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	return sl.b.KBound(), true
}

// SetOnSwap installs (or with nil removes) a callback invoked after every
// completed swap, under the switcher's swap lock — keep it fast and do
// not call back into the switcher. internal/obs provides the ring-buffer
// adapter (obs.SwapTracer).
func (s *Switcher[T]) SetOnSwap(fn func(SwapRecord)) {
	s.mu.Lock()
	s.onSwap = fn
	s.mu.Unlock()
}

// Swaps returns a copy of the completed swap records, in order.
func (s *Switcher[T]) Swaps() []SwapRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SwapRecord, len(s.swaps))
	copy(out, s.swaps)
	return out
}

// SwapCount returns how many effective swaps have completed (the metrics
// plane's counter; cheaper than len(Swaps())).
func (s *Switcher[T]) SwapCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.swaps)
}

// SwapBackend is Swap with the record dropped — the form the adapt
// layer's Selector calls through its BackendTarget interface.
func (s *Switcher[T]) SwapBackend(name, reason string) error {
	_, err := s.Swap(name, reason)
	return err
}

// Swap makes the named registered backend active: quiesce the outgoing
// backend (pinned operations finish; new ones stall briefly), drain it,
// migrate the residual items into the incoming backend preserving pop
// order, publish, and record the swap. Swapping to the already-active
// backend is a no-op that emits no record. reason is carried verbatim
// into the SwapRecord (and the observability event stream) so a trace
// explains why the engine moved.
func (s *Switcher[T]) Swap(name, reason string) (SwapRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	to, ok := s.byName[name]
	if !ok {
		return SwapRecord{}, fmt.Errorf("engine: no backend %q registered", name)
	}
	from := s.active.Load()
	if from == to {
		return SwapRecord{From: name, To: name, Reason: reason, Seq: len(s.swaps)}, nil
	}

	// Quiesce: stop admitting operations into the outgoing slot, then wait
	// for the pinned ones to finish. New operations spin on the active
	// pointer and proceed the moment the incoming slot publishes.
	from.draining.Store(true)
	// Director yield point: drain entry — the outgoing slot just stopped
	// admitting operations, pinned ones are still in flight.
	gate(yield.PointSwapDrain)
	for from.pins.Load() != 0 {
		gate(yield.PointWait)
		runtime.Gosched()
	}

	items := from.b.Drain()
	migrated := len(items)
	if migrated > 0 {
		mh := to.b.NewHandle()
		if s.ordering == relax.OrderLIFO {
			// Drain order is pop order (top first); re-push bottom-up so the
			// former top is on top again.
			for i := migrated - 1; i >= 0; i-- {
				mh.Push(items[i])
			}
		} else {
			// FIFO: re-enqueue in dequeue order; the former front stays front.
			for _, v := range items {
				mh.Push(v)
			}
		}
		mh.Flush()
	}

	var dispInc int64
	if migrated > 0 {
		dispInc = from.b.KBound()
		if max := int64(migrated - 1); dispInc > max {
			dispInc = max
		}
		s.disp.Add(dispInc)
	}
	if k := to.b.KBound(); k > s.maxK.Load() {
		s.maxK.Store(k)
	}

	to.draining.Store(false) // re-activation after an earlier retirement
	s.active.Store(to)

	rec := SwapRecord{
		Seq:          len(s.swaps),
		From:         from.b.Algorithm().String(),
		To:           name,
		Reason:       reason,
		Migrated:     migrated,
		Displacement: dispInc,
		FromK:        from.b.KBound(),
		ToK:          to.b.KBound(),
	}
	s.swaps = append(s.swaps, rec)
	if s.onSwap != nil {
		s.onSwap(rec)
	}
	return rec, nil
}

// SwapDisplacementBound returns the cumulative checker-allowance the
// completed swaps added (the sum of the per-swap Displacement fields) —
// the switcher-level analogue of core.Stack.ShrinkDisplacementBound.
func (s *Switcher[T]) SwapDisplacementBound() int64 { return s.disp.Load() }

// --- relax.Backend ----------------------------------------------------------

// Algorithm returns the active backend's catalogue identity; it changes
// across swaps.
func (s *Switcher[T]) Algorithm() relax.Algorithm {
	return s.active.Load().b.Algorithm()
}

// KBound returns the largest semantics budget of any backend that has
// been active — the bound a whole-run history is checked against (plus
// the displacement allowances; see the package comment).
func (s *Switcher[T]) KBound() int64 { return s.maxK.Load() }

// Len returns the active backend's population.
func (s *Switcher[T]) Len() int { return s.active.Load().b.Len() }

// Drain empties the active backend (teardown helper; quiescent callers
// only, like every Drain in the repository).
func (s *Switcher[T]) Drain() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active.Load().b.Drain()
}

// StatsSnapshot aggregates over every registered backend — active and
// retired — so totals survive swaps and late handle flushes are never
// lost. Migration re-pushes flow through ordinary adapter handles and
// therefore count; per-swap magnitudes are in Swaps() for callers that
// need to separate them.
func (s *Switcher[T]) StatsSnapshot() core.OpStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out core.OpStats
	for _, name := range s.names {
		out.Add(s.byName[name].b.StatsSnapshot())
	}
	return out
}

// NewHandle returns an operation handle. Handles survive swaps: on the
// first operation after a swap the handle flushes its counters and opens
// a fresh inner handle on the new backend.
func (s *Switcher[T]) NewHandle() relax.Handle[T] { return &Handle[T]{sw: s} }

// NewBufferedHandle returns a handle armed with an operation buffer of
// combined-publication threshold n (see Handle.SetOpBuffer) — the concrete
// type, since relax.Handle does not speak buffering.
func (s *Switcher[T]) NewBufferedHandle(n int) *Handle[T] {
	h := &Handle[T]{sw: s}
	h.SetOpBuffer(n)
	return h
}

// Handle is the switcher's per-goroutine operation context. Not safe for
// concurrent use of the same handle.
type Handle[T any] struct {
	sw    *Switcher[T]
	cur   *slot[T]
	inner relax.Handle[T]

	// bufCap/pending implement engine-level operation buffering
	// (SetOpBuffer; see opbuffer.go). Pending values belong to the handle,
	// not to any backend, which is what makes buffering swap-safe.
	bufCap  int
	pending []T
}

// pin acquires the active slot for one operation: pin first, then check
// draining (the swap's store/load order makes the race safe — either the
// swapper sees our pin, or we see its draining flag and retry on the
// newly published slot).
func (h *Handle[T]) pin() *slot[T] {
	for {
		s := h.sw.active.Load()
		s.pins.Add(1)
		if !s.draining.Load() {
			return s
		}
		s.pins.Add(-1)
		// Draining slot: park under the director until the swap publishes.
		gate(yield.PointWait)
		runtime.Gosched()
	}
}

func (h *Handle[T]) use(s *slot[T]) relax.Handle[T] {
	if h.cur != s {
		if h.inner != nil {
			h.inner.Flush()
		}
		h.inner = s.b.NewHandle()
		h.cur = s
	}
	return h.inner
}

// Push adds v to the active backend.
func (h *Handle[T]) Push(v T) {
	s := h.pin()
	h.use(s).Push(v)
	s.pins.Add(-1)
}

// Pop removes a value from the active backend; ok is false if it was
// observed empty.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.pin()
	v, ok = h.use(s).Pop()
	s.pins.Add(-1)
	return v, ok
}

// Flush publishes the handle's pending counters.
func (h *Handle[T]) Flush() {
	if h.inner != nil {
		h.inner.Flush()
	}
}
