package engine

import (
	"testing"

	"stack2d/internal/relax"
)

// TestBufferedHandleElidesAndPublishes pins the engine buffer's local
// semantics: pending pushes are invisible to the backend until flush, a
// buffered pop elides against the newest pending push, and the cap
// triggers a combined publish.
func TestBufferedHandleElidesAndPublishes(t *testing.T) {
	sw := newSwitcher(t, relax.TreiberStack)
	h := sw.NewBufferedHandle(4)
	if got := h.OpBuffer(); got != 4 {
		t.Fatalf("OpBuffer = %d, want 4", got)
	}

	h.BufferedPush(1)
	h.BufferedPush(2)
	h.BufferedPush(3)
	if got := sw.Len(); got != 0 {
		t.Fatalf("backend Len = %d with 3 pending pushes, want 0", got)
	}
	if got := h.BufferedCounts(); got != 3 {
		t.Fatalf("BufferedCounts = %d, want 3", got)
	}
	// Elision: the newest pending push is served locally, no publication.
	if v, ok := h.BufferedPop(); !ok || v != 3 {
		t.Fatalf("BufferedPop = (%d,%t), want (3,true)", v, ok)
	}
	if got := sw.Len(); got != 0 {
		t.Fatalf("backend Len = %d after elided pop, want 0", got)
	}

	// The fourth pending value reaches the cap and publishes all four.
	h.BufferedPush(4)
	h.BufferedPush(5)
	if got, want := sw.Len(), 4; got != want {
		t.Fatalf("backend Len = %d after cap publish, want %d", got, want)
	}
	if got := h.BufferedCounts(); got != 0 {
		t.Fatalf("BufferedCounts = %d after cap publish, want 0", got)
	}

	// Disarming (or re-arming) flushes whatever is pending.
	h.BufferedPush(6)
	h.SetOpBuffer(0)
	if got, want := sw.Len(), 5; got != want {
		t.Fatalf("backend Len = %d after disarm, want %d", got, want)
	}
	// Disarmed handles behave exactly like plain ones.
	h.BufferedPush(7)
	if got, want := sw.Len(), 6; got != want {
		t.Fatalf("disarmed BufferedPush did not publish immediately: Len = %d, want %d", got, want)
	}
}

// TestBufferedHandleSurvivesSwap pins the swap-safety property the package
// comment claims: values pending at swap time are neither stranded in the
// retired backend nor migrated twice — they publish into whichever backend
// is active at flush time, and a full drain sees every value exactly once.
func TestBufferedHandleSurvivesSwap(t *testing.T) {
	sw := newSwitcher(t, relax.TwoDStack, relax.TreiberStack)
	h := sw.NewBufferedHandle(8)

	// Two published values (via the plain path) and three pending ones.
	h.Push(1)
	h.Push(2)
	h.BufferedPush(10)
	h.BufferedPush(11)
	h.BufferedPush(12)

	if _, err := sw.Swap("treiber", "buffered swap test"); err != nil {
		t.Fatal(err)
	}
	// The swap migrated only the published values.
	if recs := sw.Swaps(); len(recs) != 1 || recs[0].Migrated != 2 {
		t.Fatalf("swap records %+v, want one swap with Migrated=2", recs)
	}

	h.FlushOps()
	if got, want := sw.Len(), 5; got != want {
		t.Fatalf("Len = %d after post-swap flush, want %d", got, want)
	}
	seen := map[uint64]int{}
	for _, v := range sw.Drain() {
		seen[v]++
	}
	for _, v := range []uint64{1, 2, 10, 11, 12} {
		if seen[v] != 1 {
			t.Fatalf("drain saw value %d %d times, want exactly once (all: %v)", v, seen[v], seen)
		}
	}
}
