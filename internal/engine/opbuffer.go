package engine

// Engine-level operation buffering: the switcher's slice of the combined-
// publication fast path (DESIGN.md §11). An armed handle retains its pushes
// locally and publishes the whole batch under ONE slot pin — one active-
// pointer load, one draining check and one inner-handle lookup amortised
// over bufCap operations — instead of paying the swap-safety protocol per
// push.
//
// The buffer is swap-safe by construction: pending values live with the
// handle, not with any backend, so a hot swap can neither strand them in a
// retired backend nor double-migrate them — they publish into whichever
// backend is active at flush time. This is also why the engine buffer has
// no pop prefetch: batch-popping values out of a backend would park them
// outside the swap protocol's drain, and relax.Handle has no batch pop to
// amortise the refill with anyway. Pops serve the newest pending push
// (LIFO elision, as in core) and otherwise go straight through.
//
// Semantics: buffered pushes linearize at publish, so histories recorded
// through buffered engine handles carry the checkers' BufferAllowance term
// on top of KBound + SwapDisplacementBound. With only pending residency
// and delivery staleness to cover (no prefetch), seqspec.BufferAllowance's
// three-term budget over-covers the engine buffer. Switcher.Len does not
// see pending values (unlike core.Stack.Len); flush before sizing, and —
// as everywhere — FlushOps before quiescing, draining, or abandoning the
// handle.

// SetOpBuffer arms (n >= 1) or disarms (n <= 0) operation buffering on the
// handle with a combined-publication threshold of n pushes. Any pending
// values are published first. Owner-goroutine only, like every Handle
// method.
func (h *Handle[T]) SetOpBuffer(n int) {
	h.FlushOps()
	if n <= 0 {
		h.bufCap = 0
		h.pending = nil
		return
	}
	h.bufCap = n
	h.pending = make([]T, 0, n)
}

// OpBuffer returns the armed combined-publication threshold (0 when
// buffering is off).
func (h *Handle[T]) OpBuffer() int { return h.bufCap }

// BufferedCounts reports the handle's private pending pushes (the engine
// buffer holds no undelivered pops). Owner-goroutine only.
func (h *Handle[T]) BufferedCounts() (pending int) { return len(h.pending) }

// FlushOps publishes all pending buffered pushes immediately, under one
// slot pin. No-op when nothing is pending.
func (h *Handle[T]) FlushOps() {
	if len(h.pending) == 0 {
		return
	}
	s := h.pin()
	inner := h.use(s)
	for _, v := range h.pending {
		inner.Push(v)
	}
	s.pins.Add(-1)
	clear(h.pending)
	h.pending = h.pending[:0]
}

// BufferedPush adds v through the operation buffer: retained locally,
// published with every pending neighbour once bufCap values are pending.
// With buffering disarmed it is exactly Push.
func (h *Handle[T]) BufferedPush(v T) {
	if h.bufCap <= 0 {
		h.Push(v)
		return
	}
	h.pending = append(h.pending, v)
	if len(h.pending) >= h.bufCap {
		h.FlushOps()
	}
}

// BufferedPop removes a value through the operation buffer: the newest
// pending push is served first (the pair linearizes back to back, saving
// both publications); otherwise the pop goes to the active backend. With
// buffering disarmed it is exactly Pop.
func (h *Handle[T]) BufferedPop() (v T, ok bool) {
	if h.bufCap <= 0 {
		return h.Pop()
	}
	if n := len(h.pending); n > 0 {
		v = h.pending[n-1]
		var zero T
		h.pending[n-1] = zero
		h.pending = h.pending[:n-1]
		return v, true
	}
	return h.Pop()
}
