package engine

import (
	"sync"
	"testing"

	"stack2d/internal/adapt"
	"stack2d/internal/relax"
)

// The switcher is both a backend (stackable behind the same contract it
// multiplexes) and the adapt layer's selection target.
var (
	_ relax.Backend[uint64] = (*Switcher[uint64])(nil)
	_ adapt.BackendTarget   = (*Switcher[uint64])(nil)
)

func mustBackend(t *testing.T, a relax.Algorithm) relax.Backend[uint64] {
	t.Helper()
	b, err := relax.NewDefaultBackend[uint64](a, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newSwitcher(t *testing.T, algs ...relax.Algorithm) *Switcher[uint64] {
	t.Helper()
	sw, err := New(mustBackend(t, algs[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algs[1:] {
		if err := sw.Register(mustBackend(t, a)); err != nil {
			t.Fatal(err)
		}
	}
	return sw
}

func TestSwitcherRejectsUncheckableBackends(t *testing.T) {
	if _, err := New(mustBackend(t, relax.ElTreePool)); err == nil {
		t.Error("accepted a pool-semantics initial backend")
	}
	sw := newSwitcher(t, relax.TreiberStack)
	if err := sw.Register(mustBackend(t, relax.RandomStack)); err == nil {
		t.Error("registered an unbounded backend")
	}
	if err := sw.Register(mustBackend(t, relax.MSQueue)); err == nil {
		t.Error("registered a FIFO backend on a LIFO switcher")
	}
	if err := sw.Register(mustBackend(t, relax.TreiberStack)); err == nil {
		t.Error("registered a duplicate name")
	}
	if _, err := sw.Swap("elimination", "test"); err == nil {
		t.Error("swapped to an unregistered backend")
	}
}

// TestSwapMigratesInOrder pins the migration discipline: a sequential
// LIFO history must survive a swap exactly — drain order re-pushed so the
// former top pops first on the new backend.
func TestSwapMigratesInOrder(t *testing.T) {
	sw := newSwitcher(t, relax.TreiberStack, relax.FlatCombiningStack)
	h := sw.NewHandle()
	for i := uint64(1); i <= 100; i++ {
		h.Push(i)
	}
	rec, err := sw.Swap("flat-combining", "test")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Migrated != 100 || rec.From != "treiber" || rec.To != "flat-combining" {
		t.Fatalf("swap record %+v", rec)
	}
	if rec.Displacement != 0 {
		t.Fatalf("strict backend migration claimed displacement %d", rec.Displacement)
	}
	if got := sw.ActiveBackend(); got != "flat-combining" {
		t.Fatalf("active = %q", got)
	}
	for want := uint64(100); want >= 1; want-- {
		v, ok := h.Pop()
		if !ok || v != want {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, want)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop after full drain succeeded")
	}
}

// TestSwapFIFOOrdering is the queue counterpart: a switcher seeded with
// the MS-queue keeps FIFO order across a self-swap chain.
func TestSwapFIFOOrdering(t *testing.T) {
	sw, err := New(mustBackend(t, relax.MSQueue))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Algorithm().Ordering() != relax.OrderFIFO {
		t.Fatal("switcher did not adopt FIFO ordering")
	}
	if err := sw.Register(mustBackend(t, relax.TreiberStack)); err == nil {
		t.Fatal("LIFO backend accepted on FIFO switcher")
	}
	h := sw.NewHandle()
	for i := uint64(1); i <= 50; i++ {
		h.Push(i)
	}
	// Only one FIFO backend exists in the catalogue; a no-op swap must not
	// disturb anything.
	if _, err := sw.Swap("ms-queue", "noop"); err != nil {
		t.Fatal(err)
	}
	if len(sw.Swaps()) != 0 {
		t.Fatalf("no-op swap recorded: %+v", sw.Swaps())
	}
	for want := uint64(1); want <= 50; want++ {
		if v, ok := h.Pop(); !ok || v != want {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, want)
		}
	}
}

// TestSwapDisplacementAccounting checks the allowance arithmetic: a
// relaxed outgoing backend contributes min(its k, migrated−1) per swap,
// cumulatively.
func TestSwapDisplacementAccounting(t *testing.T) {
	ks, err := relax.NewKSegmentBackend[uint64](relax.KSegmentConfigForK(7))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New[uint64](ks)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Register(mustBackend(t, relax.TreiberStack)); err != nil {
		t.Fatal(err)
	}
	h := sw.NewHandle()
	for i := uint64(0); i < 3; i++ {
		h.Push(i)
	}
	rec, err := sw.Swap("treiber", "small-residue")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Displacement != 2 { // min(k=7, migrated-1=2)
		t.Fatalf("displacement = %d, want 2", rec.Displacement)
	}
	for i := uint64(0); i < 100; i++ {
		h.Push(i)
	}
	rec, err = sw.Swap("k-segment", "large-residue")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Displacement != 0 { // strict outgoing backend
		t.Fatalf("strict migration displacement = %d", rec.Displacement)
	}
	if got := sw.SwapDisplacementBound(); got != 2 {
		t.Fatalf("cumulative bound = %d, want 2", got)
	}
	if sw.KBound() != 7 { // max over backends ever active
		t.Fatalf("KBound = %d, want 7", sw.KBound())
	}
}

// TestSwapUnderLoad hammers the switcher with concurrent workers while
// the main goroutine cycles the active backend; conservation (every push
// popped or drained, no duplicates) must hold across every migration.
// Run with -race this also pins the pin/drain protocol.
func TestSwapUnderLoad(t *testing.T) {
	sw := newSwitcher(t, relax.TwoDStack, relax.EliminationStack, relax.TreiberStack)
	const workers = 4
	const perWorker = 5000
	var popped sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := sw.NewHandle()
			for i := 0; i < perWorker; i++ {
				label := uint64(id)<<32 | uint64(i)
				h.Push(label)
				if v, ok := h.Pop(); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("duplicate pop %#x", v)
						return
					}
				}
			}
			h.Flush()
		}(w)
	}
	targets := []string{"elimination", "treiber", "2D-stack"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if _, err := sw.Swap(targets[i%len(targets)], "hammer"); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	n := 0
	popped.Range(func(k, v any) bool { n++; return true })
	for _, v := range sw.Drain() {
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("drained already-popped %#x", v)
		}
		n++
	}
	if n != workers*perWorker {
		t.Fatalf("recovered %d of %d items", n, workers*perWorker)
	}
	if got := len(sw.Swaps()); got != 30 {
		t.Fatalf("swap count = %d, want 30", got)
	}
	// Migration re-pushes flow through ordinary adapter handles, so they
	// count: totals are worker pushes plus the recorded migrations.
	var migrated uint64
	for _, rec := range sw.Swaps() {
		migrated += uint64(rec.Migrated)
	}
	st := sw.StatsSnapshot()
	if st.Pushes != workers*perWorker+migrated {
		t.Fatalf("pushes = %d, want %d+%d (stats lost across swaps)",
			st.Pushes, workers*perWorker, migrated)
	}
}

// TestOnSwapCallback checks the observability hook: one callback per
// effective swap, in order, with the reason preserved.
func TestOnSwapCallback(t *testing.T) {
	sw := newSwitcher(t, relax.TreiberStack, relax.EliminationStack)
	var got []SwapRecord
	sw.SetOnSwap(func(r SwapRecord) { got = append(got, r) })
	if _, err := sw.Swap("elimination", "because"); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Swap("elimination", "again"); err != nil { // no-op
		t.Fatal(err)
	}
	if _, err := sw.Swap("treiber", "back"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Reason != "because" || got[1].Reason != "back" {
		t.Fatalf("callback records %+v", got)
	}
	if got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("sequence numbers %d,%d", got[0].Seq, got[1].Seq)
	}
}
