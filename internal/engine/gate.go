package engine

import "stack2d/internal/yield"

// Gate is the deterministic schedule director's yield hook for the backend
// engine (DESIGN.md §10). Nil in production; the swap path and the
// draining-slot retry are the only call sites, both far off the uncontended
// fast path. Install and clear only while no operations are in flight.
var Gate func(yield.Point)

func gate(p yield.Point) {
	if g := Gate; g != nil {
		g(p)
	}
}
