package treiber

import "stack2d/internal/core"

// Instrumented operation variants. The plain Push/Pop stay counter-free —
// the strict baseline must not pay for bookkeeping it does not use (the
// allocation pins in stats_test.go hold both variants to the same per-op
// allocation profile: one node per push, zero per pop). The *Stats
// variants are what the backend adapters in internal/relax call: they add
// handle-local counter increments (no atomics; st is owned by the calling
// goroutine) so the adaptive controller's contention signal works for the
// Treiber backend too.

// PushStats is Push with operation accounting: st.Pushes counts the
// completed operation and st.CASFailures every failed head CAS (the
// contention events). st must not be shared across goroutines.
func (s *Stack[T]) PushStats(v T, st *core.OpStats) {
	n := &node[T]{value: v}
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			s.length.Add(1)
			st.Pushes++
			return
		}
		st.CASFailures++
	}
}

// PopStats is Pop with operation accounting: st.Pops or st.EmptyPops
// counts the outcome, st.CASFailures every failed head CAS. st must not be
// shared across goroutines.
func (s *Stack[T]) PopStats(st *core.OpStats) (v T, ok bool) {
	for {
		old := s.top.Load()
		if old == nil {
			st.EmptyPops++
			var zero T
			return zero, false
		}
		if s.top.CompareAndSwap(old, old.next) {
			s.length.Add(-1)
			st.Pops++
			return old.value, true
		}
		st.CASFailures++
	}
}
