// Package treiber implements the classic lock-free Treiber stack
// (R. K. Treiber, "Systems Programming: Coping with Parallelism", IBM 1986).
//
// It serves two roles in this repository: it is the strict-LIFO baseline
// ("treiber" in the paper's Figures 1–2) and the building block for the
// horizontally distributed baselines in internal/multistack.
//
// The implementation is a singly linked list whose head is swung by
// compare-and-swap. ABA is a non-issue under the Go garbage collector: a
// node cannot be recycled while any thread still holds a reference to it,
// which is strictly stronger than the counted-pointer scheme the original
// relies on.
package treiber

import "sync/atomic"

type node[T any] struct {
	value T
	next  *node[T]
}

// Stack is a lock-free LIFO stack. The zero value is an empty stack ready
// for use. A Stack must not be copied after first use.
type Stack[T any] struct {
	top    atomic.Pointer[node[T]]
	length atomic.Int64
}

// New returns an empty stack. Provided for symmetry with the other
// implementations; &Stack[T]{} is equivalent.
func New[T any]() *Stack[T] { return &Stack[T]{} }

// Push adds v to the top of the stack. It never fails; under contention it
// retries the CAS until it succeeds (lock-free: some push always succeeds).
func (s *Stack[T]) Push(v T) {
	n := &node[T]{value: v}
	for {
		old := s.top.Load()
		n.next = old
		if s.top.CompareAndSwap(old, n) {
			s.length.Add(1)
			return
		}
	}
}

// Pop removes and returns the top value. ok is false if the stack was
// observed empty.
//
// Unlike the Michael–Scott queue's dummy-node scheme (see
// msqueue.Queue.Dequeue), the winning CAS unlinks the popped node from the
// structure entirely, so the stack retains no reference to the popped value
// — there is no GC-pinning analogue to clear here (regression-guarded by
// TestPoppedValueIsCollectable).
func (s *Stack[T]) Pop() (v T, ok bool) {
	for {
		old := s.top.Load()
		if old == nil {
			var zero T
			return zero, false
		}
		if s.top.CompareAndSwap(old, old.next) {
			s.length.Add(-1)
			return old.value, true
		}
	}
}

// TryPush attempts a single CAS to add v. It reports whether it succeeded;
// callers that own back-off or elimination policies (the elimination stack,
// the 2D-Stack hop loop) use this to detect contention rather than spin.
func (s *Stack[T]) TryPush(v T) bool {
	n := &node[T]{value: v, next: s.top.Load()}
	if s.top.CompareAndSwap(n.next, n) {
		s.length.Add(1)
		return true
	}
	return false
}

// TryPop attempts a single CAS to remove the top value. contended reports
// whether the failure was due to interference (true) as opposed to an empty
// stack (false, with ok also false).
func (s *Stack[T]) TryPop() (v T, ok bool, contended bool) {
	old := s.top.Load()
	if old == nil {
		var zero T
		return zero, false, false
	}
	if s.top.CompareAndSwap(old, old.next) {
		s.length.Add(-1)
		return old.value, true, false
	}
	var zero T
	return zero, false, true
}

// Peek returns the current top value without removing it. The value may be
// stale by the time the caller uses it; it exists for diagnostics and for
// schedulers (random-c2) that sample sub-stack state.
func (s *Stack[T]) Peek() (v T, ok bool) {
	if n := s.top.Load(); n != nil {
		return n.value, true
	}
	var zero T
	return zero, false
}

// Len returns the approximate number of items. The counter is maintained
// with relaxed ordering relative to the list itself, so concurrent readers
// may observe values off by the number of in-flight operations; it is exact
// in quiescent states.
func (s *Stack[T]) Len() int { return int(s.length.Load()) }

// Empty reports whether the stack was observed empty.
func (s *Stack[T]) Empty() bool { return s.top.Load() == nil }

// Drain removes all items, returning them top-first. It is not atomic with
// respect to concurrent pushes; intended for teardown and tests.
func (s *Stack[T]) Drain() []T {
	var out []T
	for {
		v, ok := s.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
