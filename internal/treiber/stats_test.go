package treiber

import (
	"testing"

	"stack2d/internal/core"
)

// TestStatsVariantsMatchPlain checks the instrumented operations preserve
// LIFO behaviour and count exactly what they did.
func TestStatsVariantsMatchPlain(t *testing.T) {
	s := New[int]()
	var st core.OpStats
	const n = 100
	for i := 0; i < n; i++ {
		s.PushStats(i, &st)
	}
	if st.Pushes != n {
		t.Fatalf("Pushes = %d, want %d", st.Pushes, n)
	}
	for i := n - 1; i >= 0; i-- {
		v, ok := s.PopStats(&st)
		if !ok || v != i {
			t.Fatalf("PopStats = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := s.PopStats(&st); ok {
		t.Fatal("PopStats on empty stack returned ok")
	}
	if st.Pops != n || st.EmptyPops != 1 {
		t.Fatalf("Pops = %d EmptyPops = %d, want %d and 1", st.Pops, st.EmptyPops, n)
	}
	// Sequential runs never lose a CAS.
	if st.CASFailures != 0 {
		t.Fatalf("CASFailures = %d in a sequential run", st.CASFailures)
	}
}

// TestOpAllocs pins the per-operation allocation profile of both variants:
// one node per push, zero per pop. The instrumented variants must stay
// allocation-identical to the plain ones — the whole point of handle-local
// counters is that instrumentation costs increments, not allocations.
func TestOpAllocs(t *testing.T) {
	s := New[uint64]()
	var st core.OpStats

	if got := testing.AllocsPerRun(200, func() { s.Push(1) }); got != 1 {
		t.Errorf("Push allocs/op = %g, want 1", got)
	}
	if got := testing.AllocsPerRun(200, func() { s.Pop() }); got != 0 {
		t.Errorf("Pop allocs/op = %g, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { s.PushStats(1, &st) }); got != 1 {
		t.Errorf("PushStats allocs/op = %g, want 1", got)
	}
	if got := testing.AllocsPerRun(200, func() { s.PopStats(&st) }); got != 0 {
		t.Errorf("PopStats allocs/op = %g, want 0", got)
	}
}

// Overhead benchmarks: compare the plain and instrumented variants
// directly (benchstat Push vs PushStats). Single-goroutine, so the delta
// is pure bookkeeping, not contention noise.

func BenchmarkPush(b *testing.B) {
	s := New[uint64]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(uint64(i))
	}
}

func BenchmarkPushStats(b *testing.B) {
	s := New[uint64]()
	var st core.OpStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PushStats(uint64(i), &st)
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New[uint64]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(uint64(i))
		s.Pop()
	}
}

func BenchmarkPushPopStats(b *testing.B) {
	s := New[uint64]()
	var st core.OpStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PushStats(uint64(i), &st)
		s.PopStats(&st)
	}
}
