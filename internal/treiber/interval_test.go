package treiber

import (
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/seqspec"
	"stack2d/internal/xrand"
)

// TestIntervalSanityConcurrent records a concurrent history with real-time
// intervals and checks the strict-stack necessary conditions: conservation,
// causality and zero-slack empty sanity.
func TestIntervalSanityConcurrent(t *testing.T) {
	s := New[uint64]()
	var clock atomic.Int64
	var label atomic.Uint64
	const workers = 8
	const opsPerW = 2500
	histories := make([][]seqspec.IntervalOp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			h := make([]seqspec.IntervalOp, 0, opsPerW)
			for i := 0; i < opsPerW; i++ {
				begin := clock.Add(1)
				if rng.Bool() {
					v := label.Add(1)
					s.Push(v)
					h = append(h, seqspec.IntervalOp{
						Kind: seqspec.OpPush, Value: v, Begin: begin, End: clock.Add(1),
					})
				} else {
					v, ok := s.Pop()
					h = append(h, seqspec.IntervalOp{
						Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
					})
				}
			}
			histories[w] = h
		}(w)
	}
	wg.Wait()

	var all []seqspec.IntervalOp
	for _, h := range histories {
		all = append(all, h...)
	}
	// Finish the history: drain so conservation sees every value.
	for {
		begin := clock.Add(1)
		v, ok := s.Pop()
		all = append(all, seqspec.IntervalOp{
			Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
		})
		if !ok {
			break
		}
	}
	if err := seqspec.CheckIntervalSanity(all, 0); err != nil {
		t.Fatal(err)
	}
}
