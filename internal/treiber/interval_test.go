package treiber

import (
	"testing"

	"stack2d/internal/seqspec"
)

// TestIntervalSanityConcurrent records a concurrent history with real-time
// intervals (shared seqspec scaffolding) and checks the strict-stack
// necessary conditions: conservation, causality and zero-slack empty
// sanity. The same recording is additionally run through the k-distance
// checker at k = 0: for a strict stack every measured displacement must be
// explained by operation overlap alone.
func TestIntervalSanityConcurrent(t *testing.T) {
	s := New[uint64]()
	const workers = 8
	const opsPerW = 2500
	all := seqspec.CollectRandomHistory(workers, opsPerW, func(int) seqspec.WorkerFuncs {
		return seqspec.WorkerFuncs{Push: s.Push, Pop: s.Pop}
	})
	if err := seqspec.CheckIntervalSanity(all, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := (seqspec.KStackChecker{K: 0}).Check(all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxStrain > 0 {
		t.Fatalf("strict stack shows distance beyond overlap slack: %+v", rep)
	}
}
