package treiber

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"stack2d/internal/seqspec"
)

func TestZeroValueUsable(t *testing.T) {
	var s Stack[int]
	if _, ok := s.Pop(); ok {
		t.Fatal("zero-value stack popped a value")
	}
	s.Push(1)
	if v, ok := s.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d,%v want 1,true", v, ok)
	}
}

func TestSequentialLIFO(t *testing.T) {
	s := New[uint64]()
	var m seqspec.Model
	for v := uint64(0); v < 100; v++ {
		s.Push(v)
		m.Push(v)
	}
	for {
		want, wok := m.Pop()
		got, gok := s.Pop()
		if wok != gok {
			t.Fatalf("emptiness diverged: model %v stack %v", wok, gok)
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestInterleavedAgainstModel(t *testing.T) {
	// Deterministic interleaving of pushes and pops must match the model.
	s := New[uint64]()
	var m seqspec.Model
	ops := []struct {
		push bool
		v    uint64
	}{
		{true, 1}, {true, 2}, {false, 0}, {true, 3}, {false, 0},
		{false, 0}, {false, 0}, {true, 4}, {false, 0}, {false, 0},
	}
	for i, op := range ops {
		if op.push {
			s.Push(op.v)
			m.Push(op.v)
			continue
		}
		got, gok := s.Pop()
		want, wok := m.Pop()
		if gok != wok || got != want {
			t.Fatalf("step %d: Pop = (%d,%v), want (%d,%v)", i, got, gok, want, wok)
		}
	}
}

func TestPeek(t *testing.T) {
	s := New[string]()
	if _, ok := s.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	s.Push("a")
	s.Push("b")
	if v, ok := s.Peek(); !ok || v != "b" {
		t.Fatalf("Peek = %q,%v want b,true", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Peek changed Len: %d", s.Len())
	}
}

func TestTryPushTryPopSequential(t *testing.T) {
	s := New[int]()
	if !s.TryPush(7) {
		t.Fatal("uncontended TryPush failed")
	}
	v, ok, contended := s.TryPop()
	if !ok || contended || v != 7 {
		t.Fatalf("TryPop = (%d,%v,%v), want (7,true,false)", v, ok, contended)
	}
	_, ok, contended = s.TryPop()
	if ok || contended {
		t.Fatalf("TryPop on empty = (_, %v, %v), want (false,false)", ok, contended)
	}
}

func TestLenQuiescent(t *testing.T) {
	s := New[int]()
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		s.Pop()
	}
	if got := s.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if s.Empty() {
		t.Fatal("Empty true with 6 items")
	}
}

func TestDrain(t *testing.T) {
	s := New[int]()
	for i := 1; i <= 3; i++ {
		s.Push(i)
	}
	got := s.Drain()
	want := []int{3, 2, 1}
	if len(got) != 3 {
		t.Fatalf("Drain = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v", got, want)
		}
	}
	if !s.Empty() {
		t.Fatal("stack not empty after Drain")
	}
}

// TestConcurrentConservation checks that under heavy concurrent push/pop no
// value is lost or duplicated (run with -race for full effect).
func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		perW    = 2000
	)
	s := New[uint64]()
	var wg sync.WaitGroup
	popped := make([][]uint64, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Push(uint64(w*perW + i))
				if v, ok := s.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]int, workers*perW)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("conservation violated: %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d observed %d times", v, n)
		}
	}
}

// TestConcurrentPoppersDrainExactly spawns pure poppers against a prefilled
// stack and checks each item is returned exactly once.
func TestConcurrentPoppersDrainExactly(t *testing.T) {
	const n = 10000
	s := New[uint64]()
	for v := uint64(0); v < n; v++ {
		s.Push(v)
	}
	const workers = 8
	results := make(chan uint64, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := s.Pop()
				if !ok {
					return
				}
				results <- v
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool, n)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("popped %d distinct values, want %d", len(seen), n)
	}
}

// Property: pushing any sequence then draining returns its reverse.
func TestPushDrainPropertyReverses(t *testing.T) {
	f := func(vals []uint64) bool {
		s := New[uint64]()
		for _, v := range vals {
			s.Push(v)
		}
		out := s.Drain()
		if len(out) != len(vals) {
			return false
		}
		for i, v := range out {
			if v != vals[len(vals)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPoppedValueIsCollectable documents the audit for the msqueue
// dummy-node pinning bug: the Treiber pop unlinks the popped node wholesale,
// so the stack must retain no reference to a popped value. A finalizer on
// the popped allocation proves it.
func TestPoppedValueIsCollectable(t *testing.T) {
	s := New[*[]byte]()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	s.Push(new([]byte))
	s.Push(big) // top, so the popped node's next still points into the list
	got, ok := s.Pop()
	if !ok || got != big {
		t.Fatalf("Pop = (%p,%v), want the pushed pointer", got, ok)
	}
	got, big = nil, nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("popped value still reachable from the stack")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
