package treiber

import (
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/seqspec"
)

// TestMicroHistoriesLinearizable: exhaustive linearizability checking of
// small concurrent Treiber histories.
func TestMicroHistoriesLinearizable(t *testing.T) {
	const (
		rounds  = 100
		workers = 3
		opsPerW = 4
	)
	for round := 0; round < rounds; round++ {
		s := New[uint64]()
		var clock atomic.Int64
		var label atomic.Uint64
		hist := make([][]seqspec.IntervalOp, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerW; i++ {
					begin := clock.Add(1)
					if (w+i)%2 == 0 {
						v := label.Add(1)
						s.Push(v)
						hist[w] = append(hist[w], seqspec.IntervalOp{
							Kind: seqspec.OpPush, Value: v, Begin: begin, End: clock.Add(1),
						})
					} else {
						v, ok := s.Pop()
						hist[w] = append(hist[w], seqspec.IntervalOp{
							Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
						})
					}
				}
			}(w)
		}
		wg.Wait()
		var all []seqspec.IntervalOp
		for _, h := range hist {
			all = append(all, h...)
		}
		for {
			begin := clock.Add(1)
			v, ok := s.Pop()
			all = append(all, seqspec.IntervalOp{
				Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
			})
			if !ok {
				break
			}
		}
		if err := seqspec.CheckLinearizableLIFO(all); err != nil {
			t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
		}
	}
}
