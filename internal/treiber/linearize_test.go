package treiber

import (
	"testing"

	"stack2d/internal/seqspec"
)

// TestMicroHistoriesLinearizable: exhaustive linearizability checking of
// small concurrent Treiber histories, via the shared seqspec recording
// scaffolding.
func TestMicroHistoriesLinearizable(t *testing.T) {
	const (
		rounds  = 100
		workers = 3
		opsPerW = 4
	)
	for round := 0; round < rounds; round++ {
		s := New[uint64]()
		all := seqspec.CollectMicroHistory(workers, opsPerW, func(int) seqspec.WorkerFuncs {
			return seqspec.WorkerFuncs{Push: s.Push, Pop: s.Pop}
		})
		if err := seqspec.CheckLinearizableLIFO(all); err != nil {
			t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
		}
	}
}
