package director

import (
	"stack2d/internal/xrand"
	"stack2d/internal/yield"
)

// Strategy picks which runnable task the director grants next. Next
// receives the runnable task ids in ascending order, the current step
// number and the previous choice, and returns an index into runnable.
// Implementations must be deterministic functions of their construction
// parameters (seed) and the observed call sequence — that is what makes a
// directed run replayable.
type Strategy interface {
	Name() string
	Next(runnable []int, step int, last Choice) int
}

// StateAware is the optional richer face of a Strategy: the director hands
// it each runnable task's pending yield point (points[i] is where
// runnable[i] will resume from) plus the abstract pre-step structure state
// from the coverage probe. Because coverage is noted at grant time from
// exactly these inputs, a StateAware strategy can predict — not guess —
// whether a grant contributes fresh coverage. The same determinism
// contract as Next applies.
type StateAware interface {
	NextState(runnable []int, points []yield.Point, step int, last Choice, state uint64) int
}

// --- seeded random -----------------------------------------------------------

// SeededRandom grants a uniformly random runnable task at every step, from
// a fixed xrand stream. The workhorse strategy: unbiased schedule sampling
// with perfect reproducibility.
type SeededRandom struct {
	rng *xrand.State
}

// NewSeededRandom builds the strategy from a seed.
func NewSeededRandom(seed uint64) *SeededRandom {
	return &SeededRandom{rng: xrand.New(seed)}
}

func (s *SeededRandom) Name() string { return "seeded-random" }

func (s *SeededRandom) Next(runnable []int, step int, last Choice) int {
	return s.rng.Intn(len(runnable))
}

// --- PCT-style priorities ----------------------------------------------------

// PCT is a probabilistic concurrency testing strategy in the style of
// Burckhardt et al. (ASPLOS'10): each task gets a random distinct priority,
// the highest-priority runnable task always runs, and at d−1 random change
// points the currently running task's priority drops below everyone else's.
// With a schedule horizon n and bug depth d this finds any depth-d ordering
// bug with probability ≥ 1/(n·k^(d−1)) — in practice it drives long
// uninterrupted runs punctuated by adversarial preemptions at a handful of
// random instants, a very different (and often nastier) schedule
// distribution than uniform sampling.
type PCT struct {
	rng      *xrand.State
	prio     map[int]int // task id -> priority; higher runs first
	nextPrio int         // grows upward for initial assignment
	minPrio  int         // grows downward for demotions
	changeAt map[int]bool
}

// NewPCT builds the strategy. depth is the bug depth d (number of ordered
// scheduling constraints to search for, ≥ 1); horizon an estimate of the
// schedule length used to place the d−1 change points.
func NewPCT(seed uint64, depth, horizon int) *PCT {
	if depth < 1 {
		depth = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	p := &PCT{
		rng:      xrand.New(seed),
		prio:     map[int]int{},
		changeAt: map[int]bool{},
	}
	for i := 0; i < depth-1; i++ {
		p.changeAt[p.rng.Intn(horizon)] = true
	}
	return p
}

func (p *PCT) Name() string { return "pct" }

func (p *PCT) Next(runnable []int, step int, last Choice) int {
	// Assign priorities lazily in a random order as tasks first appear.
	for _, id := range runnable {
		if _, ok := p.prio[id]; !ok {
			// Random insertion among existing priorities via a random
			// offset keeps assignment order from dictating priority order.
			p.nextPrio++
			p.prio[id] = p.nextPrio*16 + p.rng.Intn(16)
		}
	}
	if p.changeAt[step] {
		p.minPrio--
		p.prio[last.Task] = p.minPrio
	}
	best := 0
	for i, id := range runnable {
		if p.prio[id] > p.prio[runnable[best]] {
			best = i
		}
	}
	return best
}

// --- schedule following ------------------------------------------------------

// Follow replays a recorded (or mutated) schedule: at step i it grants
// proposal[i].Task whenever that task is runnable, and delegates to the
// fallback strategy otherwise — when the proposed task has finished or is
// parked, when the proposal entry carries the explicit FallbackTask
// directive (the shrinker's per-choice simplification), and for every step
// past the proposal's end. Step indices line up with the recorded schedule
// exactly (one Choice per grant, including forced grants the strategy is
// never consulted about), so replaying a run's complete recorded schedule
// through Follow reproduces that run bit for bit. Follow is deterministic
// whenever its fallback is; the shrinker pairs it with RoundRobin, the
// guided search with SeededRandom.
type Follow struct {
	proposal []Choice
	fallback Strategy
}

// FallbackTask in a proposal entry means "let the fallback strategy pick
// this grant" — the simplified form a schedule choice shrinks toward.
const FallbackTask = -1

// NewFollow builds the strategy. The proposal is not copied; callers that
// mutate candidates must pass fresh slices.
func NewFollow(proposal []Choice, fallback Strategy) *Follow {
	return &Follow{proposal: proposal, fallback: fallback}
}

func (f *Follow) Name() string { return "follow+" + f.fallback.Name() }

func (f *Follow) Next(runnable []int, step int, last Choice) int {
	if step < len(f.proposal) {
		if want := f.proposal[step].Task; want >= 0 {
			for i, id := range runnable {
				if id == want {
					return i
				}
			}
		}
	}
	return f.fallback.Next(runnable, step, last)
}

// --- coverage-guided ---------------------------------------------------------

// Guided is the strategy face of the coverage-guided search (coverage.go).
// It layers three deciders, strongest first: a corpus-derived proposal (the
// frontier-dive/splice/perturb mutation of schedules that previously
// reached new coverage) replays exactly; past the proposal, an attached
// Coverage accumulator lets it greedily prefer grants that would
// contribute a fresh state tuple or transition edge — exact, because
// coverage is noted at grant time from the same inputs NextState sees —
// and only when no candidate is novel does it fall back to seeded-random
// divergence. One Guided value drives one run; the GuidedSearch mints a
// fresh one (new proposal, derived seed) per run and attaches its shared
// accumulator.
type Guided struct {
	Follow
	cov *Coverage
	rng *xrand.State
}

// NewGuided builds the strategy from a divergence seed and a proposal
// (nil proposal = pure exploration, the corpus bootstrap). Without an
// attached Coverage it behaves as Follow over seeded-random.
func NewGuided(seed uint64, proposal []Choice) *Guided {
	return &Guided{
		Follow: Follow{proposal: proposal, fallback: NewSeededRandom(seed)},
		rng:    xrand.New(seed ^ 0xc0ffee_5eed),
	}
}

// AttachCoverage turns novelty steering on: NextState consults the
// accumulator for candidate freshness. The GuidedSearch attaches its
// search-wide accumulator so novelty is judged against everything every
// prior run has seen.
func (g *Guided) AttachCoverage(c *Coverage) { g.cov = c }

func (g *Guided) Name() string { return "guided" }

// NextState implements StateAware: proposal first (corpus dives must
// replay their prefix exactly), then sticky divergence — keep granting the
// last task with high probability, switching uniformly otherwise. Streaks
// drive the abstract state along straight lines (sustained pushes raise
// the window, sustained pops drain it), reaching the extreme states a
// uniform per-step coin flip almost never assembles; the coverage
// accumulator breaks switching ties toward fresh tuples when one is
// available at equal standing.
func (g *Guided) NextState(runnable []int, points []yield.Point, step int, last Choice, state uint64) int {
	if step < len(g.proposal) {
		if want := g.proposal[step].Task; want >= 0 {
			for i, id := range runnable {
				if id == want {
					return i
				}
			}
		}
	}
	// Sticky: 3-in-4 stay on the current streak.
	if g.rng.Intn(4) > 0 {
		for i, id := range runnable {
			if id == last.Task {
				return i
			}
		}
	}
	// Switching: prefer a fresh tuple when the accumulator knows one.
	if g.cov != nil {
		novel := make([]int, 0, len(runnable))
		for i, id := range runnable {
			if g.cov.WouldBeFresh(id, points[i], state) {
				novel = append(novel, i)
			}
		}
		if len(novel) > 0 && len(novel) < len(runnable) {
			return novel[g.rng.Intn(len(novel))]
		}
	}
	return g.fallback.Next(runnable, step, last)
}

// --- round robin -------------------------------------------------------------

// RoundRobin cycles through the runnable tasks — the maximally fair, fully
// deterministic baseline (useful for smoke tests and as the degenerate
// strategy whose schedules a new gate site must survive).
type RoundRobin struct {
	lastID int
}

// NewRoundRobin builds the strategy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{lastID: -1} }

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Next(runnable []int, step int, last Choice) int {
	for i, id := range runnable {
		if id > r.lastID {
			r.lastID = id
			return i
		}
	}
	r.lastID = runnable[0]
	return 0
}
