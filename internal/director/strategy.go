package director

import "stack2d/internal/xrand"

// Strategy picks which runnable task the director grants next. Next
// receives the runnable task ids in ascending order, the current step
// number and the previous choice, and returns an index into runnable.
// Implementations must be deterministic functions of their construction
// parameters (seed) and the observed call sequence — that is what makes a
// directed run replayable.
type Strategy interface {
	Name() string
	Next(runnable []int, step int, last Choice) int
}

// --- seeded random -----------------------------------------------------------

// SeededRandom grants a uniformly random runnable task at every step, from
// a fixed xrand stream. The workhorse strategy: unbiased schedule sampling
// with perfect reproducibility.
type SeededRandom struct {
	rng *xrand.State
}

// NewSeededRandom builds the strategy from a seed.
func NewSeededRandom(seed uint64) *SeededRandom {
	return &SeededRandom{rng: xrand.New(seed)}
}

func (s *SeededRandom) Name() string { return "seeded-random" }

func (s *SeededRandom) Next(runnable []int, step int, last Choice) int {
	return s.rng.Intn(len(runnable))
}

// --- PCT-style priorities ----------------------------------------------------

// PCT is a probabilistic concurrency testing strategy in the style of
// Burckhardt et al. (ASPLOS'10): each task gets a random distinct priority,
// the highest-priority runnable task always runs, and at d−1 random change
// points the currently running task's priority drops below everyone else's.
// With a schedule horizon n and bug depth d this finds any depth-d ordering
// bug with probability ≥ 1/(n·k^(d−1)) — in practice it drives long
// uninterrupted runs punctuated by adversarial preemptions at a handful of
// random instants, a very different (and often nastier) schedule
// distribution than uniform sampling.
type PCT struct {
	rng      *xrand.State
	prio     map[int]int // task id -> priority; higher runs first
	nextPrio int         // grows upward for initial assignment
	minPrio  int         // grows downward for demotions
	changeAt map[int]bool
}

// NewPCT builds the strategy. depth is the bug depth d (number of ordered
// scheduling constraints to search for, ≥ 1); horizon an estimate of the
// schedule length used to place the d−1 change points.
func NewPCT(seed uint64, depth, horizon int) *PCT {
	if depth < 1 {
		depth = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	p := &PCT{
		rng:      xrand.New(seed),
		prio:     map[int]int{},
		changeAt: map[int]bool{},
	}
	for i := 0; i < depth-1; i++ {
		p.changeAt[p.rng.Intn(horizon)] = true
	}
	return p
}

func (p *PCT) Name() string { return "pct" }

func (p *PCT) Next(runnable []int, step int, last Choice) int {
	// Assign priorities lazily in a random order as tasks first appear.
	for _, id := range runnable {
		if _, ok := p.prio[id]; !ok {
			// Random insertion among existing priorities via a random
			// offset keeps assignment order from dictating priority order.
			p.nextPrio++
			p.prio[id] = p.nextPrio*16 + p.rng.Intn(16)
		}
	}
	if p.changeAt[step] {
		p.minPrio--
		p.prio[last.Task] = p.minPrio
	}
	best := 0
	for i, id := range runnable {
		if p.prio[id] > p.prio[runnable[best]] {
			best = i
		}
	}
	return best
}

// --- round robin -------------------------------------------------------------

// RoundRobin cycles through the runnable tasks — the maximally fair, fully
// deterministic baseline (useful for smoke tests and as the degenerate
// strategy whose schedules a new gate site must survive).
type RoundRobin struct {
	lastID int
}

// NewRoundRobin builds the strategy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{lastID: -1} }

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Next(runnable []int, step int, last Choice) int {
	for i, id := range runnable {
		if id > r.lastID {
			r.lastID = id
			return i
		}
	}
	r.lastID = runnable[0]
	return 0
}
