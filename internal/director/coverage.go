package director

import (
	"stack2d/internal/xrand"
	"stack2d/internal/yield"
)

// This file is the coverage-guided half of the director's search tooling
// (DESIGN.md §10 "The coverage signal"): a coverage accumulator abstracting
// every grant of a directed run to a hashed (task, yield point, structure
// state) tuple — noted before the granted task runs, so novelty is exactly
// predictable one step ahead — a corpus of schedules that reached coverage
// no earlier schedule reached, and a mutator that dives, splices and
// perturbs corpus schedules to chase the frontier. The feedback loop turns the blind
// strategies (seeded-random, PCT) into a search: a schedule is worth
// keeping exactly when it visited something new, and new schedules are
// grown from the prefixes that got there.

// Coverage accumulates the abstract states a set of directed runs visits.
// Each grant contributes its state tuple and, within one run, the
// transition edge from the previous tuple — edge coverage distinguishes
// "visited A and B" from "visited B from A", which is what schedule search
// needs. The zero value is not ready; build with NewCoverage.
type Coverage struct {
	seen    map[uint64]struct{}
	prev    uint64
	chained bool

	// notes counts grants in the current run; lastFresh is the note
	// index (1-based) of the run's most recent fresh contribution — the
	// coverage frontier the guided mutator diverges at.
	notes     int
	lastFresh int
}

// NewCoverage builds an empty accumulator.
func NewCoverage() *Coverage { return &Coverage{seen: make(map[uint64]struct{})} }

// covMix is the SplitMix64 finalizer — a cheap 64-bit avalanche for
// combining the tuple fields into one key.
func covMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Begin resets the transition chain and the per-run frontier marker. The
// director calls it at the start of every run, so edges never span run
// boundaries.
func (c *Coverage) Begin() {
	c.chained = false
	c.notes = 0
	c.lastFresh = 0
}

// Note records one suspension and reports whether it contributed new
// coverage — a state tuple or a transition edge seen for the first time.
func (c *Coverage) Note(task int, p yield.Point, state uint64) bool {
	c.notes++
	key := covMix(state ^ covMix(uint64(task)<<8|uint64(p)))
	fresh := c.add(key)
	if c.chained && c.add(covMix(c.prev^key*0x9e3779b97f4a7c15)) {
		fresh = true
	}
	c.prev = key
	c.chained = true
	if fresh {
		c.lastFresh = c.notes
	}
	return fresh
}

// LastFresh returns the note index (1-based, 0 = none) of the current
// run's most recent fresh contribution — where the run last pushed the
// coverage frontier. Suspension notes track grant steps closely (only
// task-completion grants do not suspend), so the guided mutator uses it as
// the divergence point for frontier dives.
func (c *Coverage) LastFresh() int { return c.lastFresh }

func (c *Coverage) add(k uint64) bool {
	if _, ok := c.seen[k]; ok {
		return false
	}
	c.seen[k] = struct{}{}
	return true
}

// Distinct returns the number of distinct coverage states (tuples + edges)
// accumulated so far.
func (c *Coverage) Distinct() int { return len(c.seen) }

// WouldBeFresh reports — without recording anything — whether noting
// (task, p, state) now would contribute new coverage: an unseen tuple, or
// an unseen edge from the current chain position. Because the director
// notes coverage at grant time from exactly these inputs, this is an exact
// one-step novelty oracle for the Guided strategy.
func (c *Coverage) WouldBeFresh(task int, p yield.Point, state uint64) bool {
	key := covMix(state ^ covMix(uint64(task)<<8|uint64(p)))
	if _, ok := c.seen[key]; !ok {
		return true
	}
	if c.chained {
		if _, ok := c.seen[covMix(c.prev^key*0x9e3779b97f4a7c15)]; !ok {
			return true
		}
	}
	return false
}

// Builder constructs one fresh directed run for a search: register tasks on
// d against freshly built structures and return the state probe feeding the
// coverage signal (nil for pure control coverage) plus a finish hook the
// search calls after Run returns — typically the sequential verification
// drain and the k-distance check. A non-nil finish error is a found
// violation: the search stops and surfaces the failing schedule for the
// shrinker. finish may be nil.
type Builder func(d *Director) (probe func() uint64, finish func(*Director) error)

// SearchResult summarises one schedule search.
type SearchResult struct {
	// Runs is the number of directed runs executed; Steps the total grants
	// across them — the budget guided-vs-random comparisons equalise.
	Runs  int
	Steps int
	// Distinct is the coverage accumulated (states + edges); Corpus the
	// number of schedules admitted for reaching new coverage.
	Distinct int
	Corpus   int
	// Failing is the recorded schedule of the run whose finish hook
	// reported a violation (nil when the search completed clean). Replaying
	// it with NewFollow reproduces the violation; the shrinker minimises it.
	Failing []Choice
}

// GuidedSearch owns the corpus and mutation stream of one coverage-guided
// search. Build with NewGuidedSearch; the whole search is a deterministic
// function of the seed and the builder.
type GuidedSearch struct {
	rng    *xrand.State
	cov    *Coverage
	corpus []corpusEntry
}

// corpusEntry is one admitted schedule plus the frontier index where its
// run last contributed fresh coverage — the natural divergence point for
// mutations.
type corpusEntry struct {
	sched    []Choice
	frontier int
}

// NewGuidedSearch builds a search from a seed.
func NewGuidedSearch(seed uint64) *GuidedSearch {
	return &GuidedSearch{rng: xrand.New(seed), cov: NewCoverage()}
}

// Coverage exposes the accumulator (shared across Explore calls, so a
// search can be resumed with a larger budget without forgetting).
func (g *GuidedSearch) Coverage() *Coverage { return g.cov }

// Corpus returns the admitted schedules, oldest first.
func (g *GuidedSearch) Corpus() [][]Choice {
	out := make([][]Choice, len(g.corpus))
	for i, e := range g.corpus {
		out[i] = e.sched
	}
	return out
}

// Explore runs directed runs until at least stepBudget total grants have
// been spent: each run follows a corpus mutation (or explores pure
// seeded-random while the corpus is empty), and its schedule is admitted to
// the corpus when the run reached new coverage. A finish-hook violation
// stops the search immediately — the result carries the failing schedule
// and Explore returns the violation error. A director error (step-cap
// abort, task panic) is returned as-is.
func (g *GuidedSearch) Explore(build Builder, stepBudget int) (SearchResult, error) {
	var res SearchResult
	for res.Steps < stepBudget {
		strat := NewGuided(g.rng.Uint64(), g.propose())
		strat.AttachCoverage(g.cov)
		before := g.cov.Distinct()
		sched, steps, failErr, runErr := searchRun(build, strat, g.cov)
		res.Runs++
		res.Steps += steps
		if runErr != nil {
			g.finish(&res)
			return res, runErr
		}
		if g.cov.Distinct() > before {
			g.corpus = append(g.corpus, corpusEntry{sched: sched, frontier: g.cov.LastFresh()})
		}
		if failErr != nil {
			res.Failing = sched
			g.finish(&res)
			return res, failErr
		}
	}
	g.finish(&res)
	return res, nil
}

func (g *GuidedSearch) finish(res *SearchResult) {
	res.Distinct = g.cov.Distinct()
	res.Corpus = len(g.corpus)
}

// propose mutates the corpus into the next run's proposal: nil (pure
// exploration) a quarter of the time and whenever the corpus is empty,
// otherwise a frontier dive, a splice of two corpus schedules, or a
// perturbation flipping a fraction of the grants to random tasks. A
// frontier dive replays an admitted schedule exactly up to (just past) the
// step where its run last produced fresh coverage and diverges there —
// replay determinism reproduces the frontier state, then the fallback
// explores outward from it, which is the move a feedback-free random
// search cannot make. The corpus pick is biased toward recent entries
// (larger of two uniform draws): later admissions carry the deeper
// frontier.
func (g *GuidedSearch) propose() []Choice {
	if len(g.corpus) == 0 || g.rng.Intn(3) > 0 {
		return nil
	}
	idx := g.rng.Intn(len(g.corpus))
	if j := g.rng.Intn(len(g.corpus)); j > idx {
		idx = j
	}
	e := g.corpus[idx]
	if len(e.sched) == 0 {
		return nil
	}
	switch g.rng.Intn(3) {
	case 0: // frontier dive: replay a prefix reaching toward the fresh zone
		lim := e.frontier
		if cap := 3 * len(e.sched) / 4; lim > cap {
			lim = cap // always leave room to diverge before the run ends
		}
		if lim < 1 {
			lim = 1
		}
		return cloneSchedule(e.sched[:1+g.rng.Intn(lim)])
	case 1: // prefix of one corpus schedule, suffix of another
		other := g.corpus[g.rng.Intn(len(g.corpus))].sched
		if len(other) == 0 {
			return cloneSchedule(e.sched)
		}
		cand := cloneSchedule(e.sched[:g.rng.Intn(len(e.sched))])
		return append(cand, cloneSchedule(other[g.rng.Intn(len(other)):])...)
	default: // flip ~1/8 of the grants to random task ids
		cand := cloneSchedule(e.sched)
		maxTask := 0
		for _, ch := range e.sched {
			if ch.Task > maxTask {
				maxTask = ch.Task
			}
		}
		for i := range cand {
			if g.rng.Intn(8) == 0 {
				cand[i].Task = g.rng.Intn(maxTask + 1)
			}
		}
		return cand
	}
}

// RandomSearch is the guided search's control arm: the same run loop and
// accounting, but every run is a fresh SeededRandom schedule with no
// feedback. The pinned domination test holds Guided to strictly more
// distinct coverage than this baseline at an equal step budget.
func RandomSearch(seed uint64, build Builder, stepBudget int) (SearchResult, error) {
	rng := xrand.New(seed)
	cov := NewCoverage()
	var res SearchResult
	for res.Steps < stepBudget {
		sched, steps, failErr, runErr := searchRun(build, NewSeededRandom(rng.Uint64()), cov)
		res.Runs++
		res.Steps += steps
		res.Distinct = cov.Distinct()
		if runErr != nil {
			return res, runErr
		}
		if failErr != nil {
			res.Failing = sched
			return res, failErr
		}
	}
	return res, nil
}

// searchRun executes one directed run for a search: fresh director, the
// builder's fresh structures, coverage noted into cov.
func searchRun(build Builder, strat Strategy, cov *Coverage) (sched []Choice, steps int, failErr, runErr error) {
	d := New(strat)
	d.SetCoverage(cov)
	probe, finishRun := build(d)
	d.SetStateProbe(probe)
	if runErr = d.Run(); runErr != nil {
		return d.Schedule(), d.Steps(), nil, runErr
	}
	if finishRun != nil {
		failErr = finishRun(d)
	}
	return d.Schedule(), d.Steps(), failErr, nil
}

func cloneSchedule(s []Choice) []Choice {
	out := make([]Choice, len(s))
	copy(out, s)
	return out
}
