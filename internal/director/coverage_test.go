package director

import (
	"errors"
	"reflect"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
	"stack2d/internal/yield"
)

func TestCoverageNotesStatesAndEdges(t *testing.T) {
	c := NewCoverage()
	c.Begin()
	if !c.Note(0, yield.PointOpBegin, 1) {
		t.Fatal("first tuple must be fresh")
	}
	if got := c.Distinct(); got != 1 {
		t.Fatalf("one note, %d distinct (first note has no edge)", got)
	}
	// Same tuple again: the state is stale but the self-edge is new.
	if !c.Note(0, yield.PointOpBegin, 1) {
		t.Fatal("the first self-edge is new coverage")
	}
	if !c.Note(1, yield.PointCASFail, 1) {
		t.Fatal("a distinct tuple must be fresh")
	}
	n := c.Distinct()
	// Replaying the exact same run contributes nothing.
	c.Begin()
	c.Note(0, yield.PointOpBegin, 1)
	c.Note(0, yield.PointOpBegin, 1)
	c.Note(1, yield.PointCASFail, 1)
	if c.Distinct() != n {
		t.Fatalf("replaying a covered run grew coverage %d -> %d", n, c.Distinct())
	}
	// Same suspensions, different abstract structure state: new coverage.
	c.Begin()
	if !c.Note(0, yield.PointOpBegin, 2) {
		t.Fatal("a new structure state must be fresh coverage")
	}
}

func TestCoverageEdgesDoNotSpanRuns(t *testing.T) {
	a, b := NewCoverage(), NewCoverage()
	// One run visiting X then Y...
	a.Begin()
	a.Note(0, yield.PointOpBegin, 7)
	a.Note(1, yield.PointOpBegin, 8)
	// ...versus two runs visiting X and Y separately: the edge X->Y must
	// only exist in the first accumulator.
	b.Begin()
	b.Note(0, yield.PointOpBegin, 7)
	b.Begin()
	b.Note(1, yield.PointOpBegin, 8)
	if a.Distinct() != b.Distinct()+1 {
		t.Fatalf("edge accounting across runs: chained %d, unchained %d (want +1)", a.Distinct(), b.Distinct())
	}
}

// smallBuilder adapts the driveSmall workload to the search interface,
// with a real state probe over the stack.
func smallBuilder(fail func(d *Director) error) Builder {
	return func(d *Director) (func() uint64, func(*Director) error) {
		cfg := core.Config{Width: 2, Depth: 2, Shift: 1, RandomHops: 0}
		st, err := core.New[uint64](cfg)
		if err != nil {
			return nil, func(*Director) error { return err }
		}
		for w := 0; w < 2; w++ {
			d.Go("pusher", func(tc *Task) {
				h := st.NewHandle()
				for i := 0; i < 6; i++ {
					label := tc.Label()
					tc.Op(seqspec.OpPush, func() (uint64, bool) {
						h.Push(label)
						return label, true
					})
				}
			})
		}
		d.Go("popper", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 6; i++ {
				tc.Op(seqspec.OpPop, func() (uint64, bool) { return h.Pop() })
			}
		})
		probe := func() uint64 { return uint64(st.Global())<<16 ^ uint64(st.Len()) }
		return probe, fail
	}
}

func TestGuidedSearchIsDeterministic(t *testing.T) {
	run := func() (SearchResult, [][]Choice) {
		g := NewGuidedSearch(99)
		res, err := g.Explore(smallBuilder(nil), 600)
		if err != nil {
			t.Fatalf("Explore: %v", err)
		}
		return res, g.Corpus()
	}
	res1, corpus1 := run()
	res2, corpus2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("same seed, different search results:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(corpus1, corpus2) {
		t.Fatal("same seed, different corpora")
	}
	if res1.Runs == 0 || res1.Steps < 600 || res1.Distinct == 0 {
		t.Fatalf("search did no work: %+v", res1)
	}
	if res1.Corpus == 0 {
		t.Fatal("no schedule ever reached new coverage (signal is dead)")
	}
}

func TestGuidedSearchSurfacesFailingSchedule(t *testing.T) {
	// A finish hook that rejects every run: the search must stop after the
	// first run and surface that run's schedule for the shrinker.
	g := NewGuidedSearch(7)
	res, err := g.Explore(smallBuilder(func(d *Director) error {
		return errPlanted
	}), 10_000)
	if err == nil {
		t.Fatal("a finish-hook violation must fail the search")
	}
	if res.Runs != 1 {
		t.Fatalf("search ran %d runs past a first-run violation", res.Runs)
	}
	if len(res.Failing) == 0 {
		t.Fatal("violation surfaced without its failing schedule")
	}
	if res.Failing[0].Point != yield.PointSpawn {
		t.Fatalf("recorded schedule must start at the spawn point, got %s", res.Failing[0].Point)
	}
}

var errPlanted = errors.New("planted violation")

func TestRandomSearchMatchesBudgetAccounting(t *testing.T) {
	res, err := RandomSearch(99, smallBuilder(nil), 600)
	if err != nil {
		t.Fatalf("RandomSearch: %v", err)
	}
	if res.Steps < 600 || res.Runs == 0 || res.Distinct == 0 {
		t.Fatalf("control arm did no work: %+v", res)
	}
	if res.Corpus != 0 {
		t.Fatalf("control arm admitted %d corpus schedules; it must not keep feedback", res.Corpus)
	}
}
