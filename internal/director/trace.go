package director

import (
	"fmt"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// Exact trace replay: drive the real structure through a seqspec explorer
// trace (counterexample or witness), operation by operation, and record the
// interval history the trace realises.
//
// Replay is sequential — one handle, no director concurrency — because the
// explorer's traces are sequential histories: the k-out-of-order bound of
// Theorem 1 is already violated (or realised) by single-threaded schedules
// that steer sub-structure choice, which is exactly what the explorer
// searches over. What the explorer cannot do is run the real compiled
// data path; replay closes that gap. Steering works through
// Handle.SetAnchor: with RandomHops = 0 and no concurrency, an operation
// lands on its anchor whenever the anchor is window-valid, and the
// explorer's model moves its windows by the same deterministic rules as the
// real structure, so every step's Sub is window-valid when its turn comes.
// The replay verifies this rather than assuming it: each pop must return
// exactly the label the trace promises.

// ReplayStackTrace drives a fresh core.Stack with the given geometry
// through steps and returns the realised interval history (zero-slack,
// non-overlapping intervals). The geometry must match the exploration that
// produced the trace; RandomHops must be 0 for steering to be exact. An
// error reports the first step whose outcome diverges from the trace.
func ReplayStackTrace(cfg core.Config, steps []seqspec.ExploreStep) ([]seqspec.IntervalOp, error) {
	if cfg.RandomHops != 0 {
		return nil, fmt.Errorf("director: trace replay needs RandomHops=0, got %d", cfg.RandomHops)
	}
	s, err := core.New[uint64](cfg)
	if err != nil {
		return nil, err
	}
	h := s.NewHandle()
	ops := make([]seqspec.Op, 0, len(steps))
	for i, st := range steps {
		h.SetAnchor(st.Sub)
		if st.Push {
			h.Push(uint64(st.Value))
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: uint64(st.Value)})
			continue
		}
		v, ok := h.Pop()
		if !ok {
			return nil, fmt.Errorf("director: step %d (%v): real stack empty, trace expects label %d", i, st, st.Value)
		}
		if v != uint64(st.Value) {
			return nil, fmt.Errorf("director: step %d (%v): real stack popped %d, trace expects %d", i, st, v, st.Value)
		}
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v})
	}
	return seqspec.SequentialIntervals(ops), nil
}

// ReplayQueueTrace is ReplayStackTrace's 2D-Queue counterpart (OpPush =
// enqueue, OpPop = dequeue, as in seqspec.ExploreQueue traces).
func ReplayQueueTrace(cfg twodqueue.Config, steps []seqspec.ExploreStep) ([]seqspec.IntervalOp, error) {
	if cfg.RandomHops != 0 {
		return nil, fmt.Errorf("director: trace replay needs RandomHops=0, got %d", cfg.RandomHops)
	}
	q, err := twodqueue.New[uint64](cfg)
	if err != nil {
		return nil, err
	}
	h := q.NewHandle()
	ops := make([]seqspec.Op, 0, len(steps))
	for i, st := range steps {
		h.SetAnchor(st.Sub)
		if st.Push {
			h.Enqueue(uint64(st.Value))
			ops = append(ops, seqspec.Op{Kind: seqspec.OpPush, Value: uint64(st.Value)})
			continue
		}
		v, ok := h.Dequeue()
		if !ok {
			return nil, fmt.Errorf("director: step %d (%v): real queue empty, trace expects label %d", i, st, st.Value)
		}
		if v != uint64(st.Value) {
			return nil, fmt.Errorf("director: step %d (%v): real queue dequeued %d, trace expects %d", i, st, v, st.Value)
		}
		ops = append(ops, seqspec.Op{Kind: seqspec.OpPop, Value: v})
	}
	return seqspec.SequentialIntervals(ops), nil
}
