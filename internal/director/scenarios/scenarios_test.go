package scenarios

import (
	"reflect"
	"strings"
	"testing"
)

// PinnedSeed is the seed CI runs the pack with; EXPERIMENTS.md quotes it in
// the repro commands.
const PinnedSeed = 0x2d5ac

func TestScenarioPackPasses(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			// RunWithAutoShrink: a failure here arrives pre-minimized, with
			// the shrink narration in the error and (under CI's
			// DIRECTOR_ARTIFACT_DIR) a replayable artifact on disk.
			out, err := RunWithAutoShrink(sc, PinnedSeed)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			if out.Name != sc.Name {
				t.Fatalf("outcome name %q != scenario name %q", out.Name, sc.Name)
			}
			if out.Report.Pops == 0 {
				t.Fatalf("%s: no value-returning pops measured", sc.Name)
			}
			if out.Quality.Count == 0 {
				t.Fatalf("%s: quality oracle measured nothing", sc.Name)
			}
		})
	}
}

func TestTheoremOneScenarioRealisesDistanceSeven(t *testing.T) {
	out, err := All()[0].Run(PinnedSeed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != NameTheoremOneReplay {
		t.Fatalf("pack order drifted: first scenario is %s", out.Name)
	}
	if out.Report.MaxDistance != 7 || out.K != 9 {
		t.Fatalf("replay realised distance %d against k=%d, want 7 against 9", out.Report.MaxDistance, out.K)
	}
	// The realised rank error agrees with the checker's distance: the
	// oracle measures the same §4 metric at removal time.
	if out.Quality.Max != 7 {
		t.Fatalf("oracle max error %d, want 7", out.Quality.Max)
	}
}

// Satellite: same seed + same strategy twice must record byte-identical
// histories and schedules, for every scenario in the pack.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := sc.Run(PinnedSeed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Run(PinnedSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.History, b.History) {
				t.Fatalf("%s: same seed produced different histories", sc.Name)
			}
			if !reflect.DeepEqual(a.Schedule, b.Schedule) {
				t.Fatalf("%s: same seed produced different schedules", sc.Name)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("%s: fingerprints diverge", sc.Name)
			}
		})
	}
}

func TestSeedsExploreDifferentSchedules(t *testing.T) {
	// The directed (non-replay) scenarios must actually respond to the
	// seed; a strategy that ignores it would silently gut the sweep.
	sc := All()[2]
	a, err := sc.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("%s: seeds 1 and 2 produced identical runs", sc.Name)
	}
}

func TestSweepAndErrorTable(t *testing.T) {
	outs, err := Sweep(PinnedSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(All()) {
		t.Fatalf("sweep returned %d outcomes for %d scenarios", len(outs), len(All()))
	}
	table := FormatErrorTable(outs)
	for _, sc := range All() {
		if !strings.Contains(table, sc.Name) {
			t.Fatalf("error table missing scenario %s:\n%s", sc.Name, table)
		}
	}
}
