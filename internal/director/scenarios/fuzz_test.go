package scenarios

import (
	"testing"

	"stack2d/internal/director"
)

// FuzzGuidedSchedule drives arbitrary schedule proposals — one task-id
// byte per grant, the corpus form EncodeScheduleTasks produces — through
// the frontier workload at the Theorem-1 counterexample geometry and
// checks every resulting history against the corrected k-distance budget.
// The checked-in seed corpus includes the shrunk planted-violation
// schedule (the three-grant churn prefix the shrinker isolates at the
// pinned seed), so mutation starts from a schedule already known to sit on
// the interesting boundary. Any input that makes the checker reject is a
// real bound violation of the structure, not a harness artifact: the
// replay is deterministic and the drain makes conservation fully
// checkable.
func FuzzGuidedSchedule(f *testing.F) {
	// The shrunk planted-violation schedule (see
	// TestPlantedViolationShrinksToQuarter): three consecutive grants to
	// churn task 1.
	f.Add([]byte{1, 1, 1})
	// A popper-starves-then-storms shape and a pure round-robin ribbon.
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 256 {
			b = b[:256]
		}
		prop := director.DecodeScheduleTasks(b, 3)
		out, err := FrontierDirected(FrontierConfig(), PinnedSeed, director.NewFollow(prop, ReplayFallback()))
		if err != nil {
			t.Fatalf("proposal of %d grants drove the structure past the corrected budget: %v\nschedule:\n%s",
				len(prop), err, director.FormatSchedule(out.Schedule, out.TaskNames))
		}
		if out.Report.Pops == 0 {
			t.Fatal("directed run measured no pops; the workload died under fuzzing")
		}
	})
}
