package scenarios

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"stack2d/internal/director"
)

// ArtifactDirEnv names the environment variable CI sets to collect
// minimized-schedule artifacts: when a directed scenario fails, the test
// harness shrinks the failing schedule and writes the result here as a
// replayable JSON document. Unset means "don't write files" — the shrink
// narration still lands in the test log.
const ArtifactDirEnv = "DIRECTOR_ARTIFACT_DIR"

// MinimizedArtifact is the on-disk form of a shrunk failing schedule. It
// carries everything needed to replay the failure by hand: the scenario
// name and seed (the workload), the minimized directive schedule (feed it
// to director.NewFollow over the scenario's Directed entry point with a
// round-robin fallback), and the narration a human reads first.
type MinimizedArtifact struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Error is the failure the schedule reproduces.
	Error string `json:"error"`
	// OriginalLen and MinimizedLen count choices before and after
	// shrinking; Probes is the number of candidate replays spent.
	OriginalLen  int `json:"original_len"`
	MinimizedLen int `json:"minimized_len"`
	Probes       int `json:"probes"`
	// Fingerprint is director.ScheduleFingerprint of Minimized, printed in
	// hex — the determinism regression pins it across shrinks.
	Fingerprint string `json:"fingerprint"`
	// Minimized is the directive schedule itself: task -1 means "any
	// deterministic fallback move works here".
	Minimized []director.Choice `json:"minimized"`
	// Narration is director.FormatSchedule over Minimized with the run's
	// task names.
	Narration string `json:"narration"`
}

// ReplayFallback is the deterministic fallback every shrink replay uses:
// round robin completes any run the directive prefix leaves unfinished,
// the same way every time.
func ReplayFallback() director.Strategy { return director.NewRoundRobin() }

// ShrinkFailing minimises the failing schedule of a directed scenario run.
// The predicate is the scenario's own verdict: a candidate fails iff
// replaying it through sc.Directed (wrapped in NewFollow over the
// deterministic fallback) returns an error. Returns the shrink result and
// the task names of the final replay (for narration).
func ShrinkFailing(sc Scenario, seed uint64, failing []director.Choice) (*director.ShrinkResult, []string, error) {
	if sc.Directed == nil {
		return nil, nil, fmt.Errorf("scenario %s has no Directed entry point to replay through", sc.Name)
	}
	var names []string
	sh := director.Shrinker{Replay: func(cand []director.Choice) ([]director.Choice, bool) {
		out, err := sc.Directed(seed, director.NewFollow(cand, ReplayFallback()))
		if out == nil {
			// Infrastructure failure before a schedule was recorded: treat
			// as failing with an empty recording so shrinking never
			// "fixes" a broken replay vehicle silently.
			return nil, err != nil
		}
		names = out.TaskNames
		return out.Schedule, err != nil
	}}
	res, err := sh.Shrink(failing)
	if err != nil {
		return nil, nil, err
	}
	return res, names, nil
}

// WriteMinimized serialises one shrink result into dir (created if needed)
// as <scenario>-seed-<seed>.minimized.json and returns the path. An empty
// dir consults ArtifactDirEnv; if that is unset too, nothing is written
// and the returned path is empty (not an error — local runs narrate to the
// log only).
func WriteMinimized(dir string, sc Scenario, seed uint64, runErr error, res *director.ShrinkResult, names []string) (string, error) {
	if dir == "" {
		dir = os.Getenv(ArtifactDirEnv)
	}
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	art := MinimizedArtifact{
		Scenario:     sc.Name,
		Seed:         seed,
		Error:        runErr.Error(),
		OriginalLen:  len(res.Original),
		MinimizedLen: len(res.Minimized),
		Probes:       res.Probes,
		Fingerprint:  fmt.Sprintf("%016x", director.ScheduleFingerprint(res.Minimized)),
		Minimized:    res.Minimized,
		Narration:    director.FormatSchedule(res.Minimized, names),
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed-%d.minimized.json", sc.Name, seed))
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// RunWithAutoShrink runs one scenario and, if it fails with a recorded
// schedule, shrinks the failure and (when ArtifactDirEnv is set) writes
// the minimized artifact. The returned error is the original failure
// annotated with the shrink narration and artifact path — what a CI log
// should show a human first.
func RunWithAutoShrink(sc Scenario, seed uint64) (*Outcome, error) {
	out, err := sc.Run(seed)
	if err == nil {
		return out, nil
	}
	if out == nil || len(out.Schedule) == 0 || sc.Directed == nil {
		return out, err
	}
	res, names, serr := ShrinkFailing(sc, seed, out.Schedule)
	if serr != nil {
		return out, fmt.Errorf("%w\n(auto-shrink failed: %v)", err, serr)
	}
	path, werr := WriteMinimized("", sc, seed, err, res, names)
	note := ""
	if werr != nil {
		note = fmt.Sprintf("\n(artifact write failed: %v)", werr)
	} else if path != "" {
		note = fmt.Sprintf("\nminimized artifact: %s", path)
	}
	return out, fmt.Errorf("%w\nminimized from %d to %d choices (%d probes):\n%s%s",
		err, len(res.Original), len(res.Minimized), res.Probes,
		director.FormatSchedule(res.Minimized, names), note)
}
