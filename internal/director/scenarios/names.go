// Package scenarios is the adversarial scenario pack of the conformance
// plane: named, seeded, deterministic directed runs (internal/director)
// against the real structures, each feeding its recorded history through
// the seqspec checker budget AND the internal/quality rank-error oracle.
// EXPERIMENTS.md ("The adversarial scenario pack") documents what each
// scenario targets and how to reproduce it; CI greps the names below
// against that table, so renaming a scenario here without updating the
// docs fails the build.
package scenarios

// Scenario names. One name per line, quoted, so the CI docs-drift grep can
// extract them mechanically.
const (
	// NameTheoremOneReplay replays the sequential explorer's minimal
	// Theorem-1 counterexample (16 ops, distance 7 at width 2, depth 4,
	// shift 1) against the real core.Stack: the retired transcribed
	// constant must be refuted, the corrected bound must hold exactly.
	NameTheoremOneReplay = "replay-theorem1-counterexample"
	// NameQueueWitnessReplay replays the queue explorer's maximum-distance
	// witness at the same geometry against the real twodqueue.Queue.
	NameQueueWitnessReplay = "replay-queue-witness"
	// NameShrinkDuringDrain shrinks the stack's width while directed
	// poppers drain it — the schedule family that realises shrink
	// displacement on top of the window bound.
	NameShrinkDuringDrain = "shrink-during-drain"
	// NameSwapDuringStorm hot-swaps the engine's active backend (2D-stack
	// to treiber and back) in the middle of a directed push/pop storm,
	// exercising the §9 swap-displacement budget.
	NameSwapDuringStorm = "backend-swap-during-storm"
	// NameBufferedShrinkDuringDrain reruns the shrink-during-drain storm
	// with every worker handle armed with an op buffer (DESIGN.md §11):
	// pending pushes and pop prefetches cross the geometry epoch, probing
	// the maybeEpochFlush handoff; the history is checked under the
	// composed budget K + shrink displacement + seqspec.BufferAllowance.
	NameBufferedShrinkDuringDrain = "buffered-shrink-during-drain"
	// NameBufferedSwapDuringStorm reruns the backend-swap storm through
	// engine-level buffered handles: values pending in a handle while the
	// hot swap drains and migrates must be neither stranded nor duplicated
	// (the engine buffer's swap-safety claim), budgeted with the swap
	// displacement plus the §11 buffer allowance.
	NameBufferedSwapDuringStorm = "buffered-swap-during-storm"
	// NameSocketSkew pins every handle to one socket of a two-socket
	// local-first placement and schedules with PCT priorities, driving the
	// worst contention skew the placement layer permits.
	NameSocketSkew = "socket-skewed-contention"
	// NameGuidedFrontier runs a whole coverage-guided schedule search over
	// the frontier workload at the Theorem-1 counterexample geometry: every
	// directed run the search proposes is drained and checked against the
	// corrected budget, so the scenario is a standing schedule *hunt*, not
	// a single replay.
	NameGuidedFrontier = "guided-frontier-search"
)
