package scenarios

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"stack2d/internal/director"
	"stack2d/internal/seqspec"
)

// plantedScenario is a test-only scenario over the frontier workload whose
// budget is deliberately planted below a realisable strain: the run that
// realises it fails, and the shrinker has a real violation to minimise.
func plantedScenario(budget int64) Scenario {
	directed := func(seed uint64, strat director.Strategy) (*Outcome, error) {
		out, err := FrontierDirected(FrontierConfig(), seed, strat)
		if err != nil || out == nil {
			return out, err
		}
		if _, cerr := (seqspec.KStackChecker{K: budget}).Check(out.History); cerr != nil {
			return out, fmt.Errorf("planted budget k=%d: %w", budget, cerr)
		}
		return out, nil
	}
	return Scenario{
		Name:  "planted-frontier",
		About: "frontier workload checked at a budget one below a realised strain",
		Run: func(seed uint64) (*Outcome, error) {
			return directed(seed, director.NewSeededRandom(seed))
		},
		Directed: directed,
	}
}

// plantBudget measures the strain a passing frontier run actually realises
// at the pinned seed and returns one below it — the planted "known
// violation" of the acceptance test. Requiring strain >= 1 keeps the plant
// honest: if the workload stopped exercising the window bound, the test
// fails loudly instead of shrinking nothing.
func plantBudget(t *testing.T, seed uint64) int64 {
	t.Helper()
	base, err := FrontierDirected(FrontierConfig(), seed, director.NewSeededRandom(seed))
	if err != nil {
		t.Fatalf("baseline frontier run must pass at the corrected budget: %v", err)
	}
	if base.Report.MaxStrain < 1 {
		t.Fatalf("baseline run realised strain %d; the planted-violation tests need >= 1 (retune the workload or seed)",
			base.Report.MaxStrain)
	}
	return int64(base.Report.MaxStrain) - 1
}

// The tentpole acceptance test: plant a known violation (budget one below
// the realised strain of a passing run), shrink the failing schedule, and
// demand a minimisation to at most 25% of the original length that still
// fails on replay.
func TestPlantedViolationShrinksToQuarter(t *testing.T) {
	seed := uint64(PinnedSeed)
	sc := plantedScenario(plantBudget(t, seed))
	out, err := sc.Run(seed)
	if err == nil {
		t.Fatal("the planted budget did not fail the run that defined it")
	}
	if out == nil || len(out.Schedule) == 0 {
		t.Fatal("failing run returned no schedule to shrink")
	}
	res, names, serr := ShrinkFailing(sc, seed, out.Schedule)
	if serr != nil {
		t.Fatalf("ShrinkFailing: %v", serr)
	}
	if 4*len(res.Minimized) > len(res.Original) {
		t.Fatalf("shrinker kept %d of %d choices (> 25%%) after %d probes:\n%s",
			len(res.Minimized), len(res.Original), res.Probes,
			director.FormatSchedule(res.Minimized, names))
	}
	// The minimized schedule must reproduce the violation on its own.
	if _, rerr := sc.Directed(seed, director.NewFollow(res.Minimized, ReplayFallback())); rerr == nil {
		t.Fatal("minimized schedule no longer fails on replay")
	}
	// And the narration must be readable: every line names a task or the
	// fallback.
	narration := director.FormatSchedule(res.Minimized, names)
	for _, line := range strings.Split(strings.TrimSpace(narration), "\n") {
		if line != "" && !strings.Contains(line, "task") && !strings.Contains(line, "fallback") {
			t.Fatalf("unreadable narration line %q in:\n%s", line, narration)
		}
	}
	t.Logf("shrunk %d -> %d choices (%d probes, %d kept):\n%s",
		len(res.Original), len(res.Minimized), res.Probes, res.Kept, narration)
}

// Satellite regression: shrinking the same failing schedule twice with the
// same seed must produce byte-identical minimized schedules and equal
// fingerprints.
func TestShrinkDeterminism(t *testing.T) {
	seed := uint64(PinnedSeed)
	sc := plantedScenario(plantBudget(t, seed))
	out, err := sc.Run(seed)
	if err == nil {
		t.Fatal("planted budget did not fail")
	}
	a, _, err1 := ShrinkFailing(sc, seed, out.Schedule)
	b, _, err2 := ShrinkFailing(sc, seed, out.Schedule)
	if err1 != nil || err2 != nil {
		t.Fatalf("shrink errors: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(a.Minimized, b.Minimized) {
		t.Fatalf("same input, different minimized schedules:\n%v\n%v", a.Minimized, b.Minimized)
	}
	if director.ScheduleFingerprint(a.Minimized) != director.ScheduleFingerprint(b.Minimized) {
		t.Fatal("fingerprints diverge on identical minimized schedules")
	}
	if a.Probes != b.Probes || a.Kept != b.Kept {
		t.Fatalf("probe accounting diverged: %d/%d vs %d/%d", a.Probes, a.Kept, b.Probes, b.Kept)
	}
}

// A failing scenario run through the auto-shrink wrapper must write the
// minimized replayable artifact CI uploads, and the artifact must be
// self-consistent.
func TestRunWithAutoShrinkWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(ArtifactDirEnv, dir)
	seed := uint64(PinnedSeed)
	sc := plantedScenario(plantBudget(t, seed))
	_, err := RunWithAutoShrink(sc, seed)
	if err == nil {
		t.Fatal("planted scenario passed under the auto-shrink wrapper")
	}
	if !strings.Contains(err.Error(), "minimized from") {
		t.Fatalf("wrapper error lacks the shrink narration:\n%v", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed-%d.minimized.json", sc.Name, seed))
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("minimized artifact not written: %v", rerr)
	}
	var art MinimizedArtifact
	if jerr := json.Unmarshal(raw, &art); jerr != nil {
		t.Fatalf("artifact is not valid JSON: %v", jerr)
	}
	if art.Scenario != sc.Name || art.Seed != seed {
		t.Fatalf("artifact misattributed: %+v", art)
	}
	if art.MinimizedLen != len(art.Minimized) || art.MinimizedLen == 0 || art.MinimizedLen > art.OriginalLen {
		t.Fatalf("artifact lengths inconsistent: %d declared, %d present, %d original",
			art.MinimizedLen, len(art.Minimized), art.OriginalLen)
	}
	if want := fmt.Sprintf("%016x", director.ScheduleFingerprint(art.Minimized)); art.Fingerprint != want {
		t.Fatalf("artifact fingerprint %s does not match its schedule (%s)", art.Fingerprint, want)
	}
	if art.Narration == "" {
		t.Fatal("artifact narration is empty")
	}
	// The artifact round-trips: its schedule still reproduces the failure.
	if _, rerr := sc.Directed(seed, director.NewFollow(art.Minimized, ReplayFallback())); rerr == nil {
		t.Fatal("artifact schedule no longer fails on replay")
	}
}

// The acceptance test of the guided search: at an equal step budget and
// the pinned seed, coverage guidance must reach strictly more distinct
// coverage states than the seeded-random control arm.
func TestGuidedDominatesSeededRandom(t *testing.T) {
	seed := uint64(PinnedSeed)
	var sinkG, sinkR *Outcome
	g := director.NewGuidedSearch(seed)
	gres, gerr := g.Explore(FrontierBuilder(FrontierConfig(), seed, &sinkG), FrontierStepBudget)
	if gerr != nil {
		t.Fatalf("guided search found a real violation (investigate before retuning): %v", gerr)
	}
	rres, rerr := director.RandomSearch(seed, FrontierBuilder(FrontierConfig(), seed, &sinkR), FrontierStepBudget)
	if rerr != nil {
		t.Fatalf("random control arm found a real violation: %v", rerr)
	}
	if gres.Distinct <= rres.Distinct {
		t.Fatalf("guided search reached %d distinct coverage states, control arm %d (guided must strictly dominate at %d steps)",
			gres.Distinct, rres.Distinct, FrontierStepBudget)
	}
	if gres.Corpus == 0 {
		t.Fatal("guided search admitted no corpus schedules; the feedback loop is dead")
	}
	t.Logf("guided: %d runs, %d steps, %d distinct, corpus %d; random: %d runs, %d steps, %d distinct",
		gres.Runs, gres.Steps, gres.Distinct, gres.Corpus, rres.Runs, rres.Steps, rres.Distinct)
}
