package scenarios

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/director"
	"stack2d/internal/engine"
	"stack2d/internal/quality"
	"stack2d/internal/relax"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// oraclePatience bounds the quality oracles' insert wait inside directed
// runs. Under the director the oracle calls run inside op closures, between
// gates, so a Remove can never actually race its Insert — a miss here is a
// real conservation bug and should fail fast.
const oraclePatience = 2 * time.Second

// Outcome is the complete, deterministic result of one scenario run: the
// recorded interval history and schedule (byte-identical across same-seed
// runs — the determinism regression test pins this), the checker verdict
// against the scenario's semantics budget, and the realised rank-error
// distribution from the quality oracle.
type Outcome struct {
	Name     string
	Strategy string
	Seed     uint64
	Steps    int

	// K and Allowance are the budget the history was checked against;
	// FIFO selects which checker family measured it.
	K         int64
	Allowance int64
	FIFO      bool
	Report    seqspec.KDistanceReport

	History  []seqspec.IntervalOp
	Schedule []director.Choice
	// TaskNames maps schedule task ids to registration names, for the
	// shrinker's narration (director.FormatSchedule).
	TaskNames []string

	// Quality is the realised error-distance distribution (paper §4
	// metric: distance from the strict order at removal time).
	Quality quality.Stats

	// Coverage is the number of distinct coverage states the run (or, for
	// the guided-frontier scenario, the whole search) visited; zero for
	// scenarios that don't measure coverage.
	Coverage int
}

// Fingerprint hashes the recorded history and schedule; two runs with the
// same fingerprint made byte-identical recordings.
func (o *Outcome) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, op := range o.History {
		fmt.Fprintf(h, "%d,%d,%t,%d,%d;", op.Kind, op.Value, op.Empty, op.Begin, op.End)
	}
	for _, c := range o.Schedule {
		fmt.Fprintf(h, "%d@%d;", c.Task, c.Point)
	}
	return h.Sum64()
}

// Scenario is one named adversarial run. Run must be a deterministic
// function of seed. On a checker failure the directed scenarios return the
// recorded Outcome ALONGSIDE the error, so the failing schedule is
// available for shrinking.
type Scenario struct {
	Name  string
	About string
	Run   func(seed uint64) (*Outcome, error)
	// Directed replays the scenario's workload under an explicit strategy
	// — the shrinker's replay vehicle (director.NewFollow over a candidate
	// schedule) and the guided search's per-run body. Nil for the
	// sequential trace-replay scenarios, which have no directed schedule.
	Directed func(seed uint64, strat director.Strategy) (*Outcome, error)
}

// All returns the scenario pack in its canonical order.
func All() []Scenario {
	return []Scenario{
		{
			Name:  NameTheoremOneReplay,
			About: "explorer's minimal Theorem-1 counterexample on the real stack",
			Run:   runTheoremOneReplay,
		},
		{
			Name:  NameQueueWitnessReplay,
			About: "queue explorer's max-distance witness on the real queue",
			Run:   runQueueWitnessReplay,
		},
		{
			Name:     NameShrinkDuringDrain,
			About:    "width shrink racing directed poppers",
			Run:      runShrinkDuringDrain,
			Directed: directedShrinkDuringDrain,
		},
		{
			Name:     NameSwapDuringStorm,
			About:    "backend hot-swap inside a directed push/pop storm",
			Run:      runSwapDuringStorm,
			Directed: directedSwapDuringStorm,
		},
		{
			Name:     NameSocketSkew,
			About:    "all handles pinned to one socket of a local-first placement, PCT schedule",
			Run:      runSocketSkew,
			Directed: directedSocketSkew,
		},
		{
			Name:     NameGuidedFrontier,
			About:    "coverage-guided schedule search over the frontier workload, checked every run",
			Run:      runGuidedFrontier,
			Directed: directedFrontier,
		},
		{
			Name:     NameBufferedShrinkDuringDrain,
			About:    "shrink-during-drain with op-buffered handles: pending batches cross the geometry epoch",
			Run:      runBufferedShrinkDuringDrain,
			Directed: directedBufferedShrinkDuringDrain,
		},
		{
			Name:     NameBufferedSwapDuringStorm,
			About:    "backend hot-swap with engine-buffered handles: pending pushes cross the swap",
			Run:      runBufferedSwapDuringStorm,
			Directed: directedBufferedSwapDuringStorm,
		},
	}
}

// Sweep runs the full pack with the given base seed and returns the
// outcomes in pack order. Each scenario gets a distinct derived seed so the
// pack explores unrelated schedules while staying a pure function of seed.
func Sweep(seed uint64) ([]*Outcome, error) {
	var outs []*Outcome
	for i, sc := range All() {
		o, err := sc.Run(seed + uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// FormatErrorTable renders the outcomes as the markdown realised-error
// table EXPERIMENTS.md documents: per scenario, the checked budget and the
// realised distance distribution.
func FormatErrorTable(outs []*Outcome) string {
	var b strings.Builder
	b.WriteString("| scenario | strategy | seed | pops | k | allowance | max strain | realised max | mean error |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, o := range outs {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %d | %d | %.3f |\n",
			o.Name, o.Strategy, o.Seed, o.Report.Pops, o.K, o.Allowance,
			o.Report.MaxStrain, o.Quality.Max, o.Quality.Mean())
	}
	return b.String()
}

// --- trace replays -----------------------------------------------------------

// sequentialQuality replays a zero-slack sequential history through the
// rank-error oracle of the right ordering.
func sequentialQuality(hist []seqspec.IntervalOp, fifo bool) (quality.Stats, error) {
	var lifo quality.Oracle
	var fq quality.FIFOOracle
	for _, op := range hist {
		switch {
		case op.Kind == seqspec.OpPush && fifo:
			fq.Insert(op.Value)
		case op.Kind == seqspec.OpPush:
			lifo.Insert(op.Value)
		case op.Empty:
		case fifo:
			if _, err := fq.RemoveWithin(op.Value, oraclePatience); err != nil {
				return quality.Stats{}, err
			}
		default:
			if _, err := lifo.RemoveWithin(op.Value, oraclePatience); err != nil {
				return quality.Stats{}, err
			}
		}
	}
	if fifo {
		return fq.Snapshot(), nil
	}
	return lifo.Snapshot(), nil
}

func runTheoremOneReplay(seed uint64) (*Outcome, error) {
	res, err := seqspec.ExploreStack(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 18, Bound: 6,
	})
	if err != nil {
		return nil, err
	}
	if res.Counterexample == nil {
		return nil, fmt.Errorf("explorer no longer finds the Theorem-1 counterexample")
	}
	cfg := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	hist, err := director.ReplayStackTrace(cfg, res.Counterexample)
	if err != nil {
		return nil, err
	}
	// The point of the scenario: the retired transcribed constant is
	// refuted by the real structure, the corrected bound holds exactly.
	if _, err := (seqspec.KStackChecker{K: 6}).Check(hist); err == nil {
		return nil, fmt.Errorf("real stack respects the retired k=6; counterexample no longer bites")
	}
	rep, err := (seqspec.KStackChecker{K: cfg.K()}).Check(hist)
	if err != nil {
		return nil, fmt.Errorf("corrected bound k=%d violated: %w", cfg.K(), err)
	}
	if rep.MaxDistance != res.MaxDistance {
		return nil, fmt.Errorf("real stack realised distance %d, model promised %d", rep.MaxDistance, res.MaxDistance)
	}
	q, err := sequentialQuality(hist, false)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name: NameTheoremOneReplay, Strategy: "trace-replay", Seed: seed,
		K: cfg.K(), Report: rep, History: hist, Quality: q,
	}, nil
}

func runQueueWitnessReplay(seed uint64) (*Outcome, error) {
	res, err := seqspec.ExploreQueue(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 14, Bound: -1,
	})
	if err != nil {
		return nil, err
	}
	if res.Witness == nil {
		return nil, fmt.Errorf("queue exploration produced no witness")
	}
	cfg := twodqueue.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	hist, err := director.ReplayQueueTrace(cfg, res.Witness)
	if err != nil {
		return nil, err
	}
	rep, err := (seqspec.KFIFOChecker{K: int64(res.MaxDistance)}).Check(hist)
	if err != nil {
		return nil, fmt.Errorf("explored maximum %d violated: %w", res.MaxDistance, err)
	}
	if rep.MaxDistance != res.MaxDistance {
		return nil, fmt.Errorf("real queue realised distance %d, model promised %d", rep.MaxDistance, res.MaxDistance)
	}
	q, err := sequentialQuality(hist, true)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name: NameQueueWitnessReplay, Strategy: "trace-replay", Seed: seed,
		K: int64(res.MaxDistance), FIFO: true, Report: rep, History: hist, Quality: q,
	}, nil
}

// --- directed concurrent scenarios ------------------------------------------

// pushOp and popOp wrap one operation with its oracle bookkeeping. The
// oracle calls run between gates, so they are atomic under the director and
// the Remove wait can only trip on a genuine conservation bug.
func pushOp(tc *director.Task, push func(uint64), o *quality.Oracle, errs *[]error) {
	label := tc.Label()
	tc.Op(seqspec.OpPush, func() (uint64, bool) {
		push(label)
		o.Insert(label)
		return label, true
	})
}

func popOp(tc *director.Task, pop func() (uint64, bool), o *quality.Oracle, errs *[]error) {
	tc.Op(seqspec.OpPop, func() (uint64, bool) {
		v, ok := pop()
		if ok {
			if _, err := o.RemoveWithin(v, oraclePatience); err != nil {
				*errs = append(*errs, err)
			}
		}
		return v, ok
	})
}

// drainInto appends the post-run sequential drain to the history (fresh
// ticks strictly after the directed phase), keeping conservation checkable.
func drainInto(d *director.Director, pop func() (uint64, bool), o *quality.Oracle, errs *[]error) {
	for {
		v, ok := pop()
		if !ok {
			return
		}
		if _, err := o.RemoveWithin(v, oraclePatience); err != nil {
			*errs = append(*errs, err)
		}
		d.AppendOp(seqspec.OpPop, v, false)
	}
}

// finishStackOutcome builds the outcome of a completed directed run and
// checks it against the budget: k + allowance + bufAllowance, the last
// being seqspec.BufferAllowance for scenarios that drive op-buffered
// handles (zero elsewhere). The outcome's Allowance field carries the
// composed slack, so the error table shows the full budget. On any failure
// the (partial) outcome is returned ALONGSIDE the error — its History and
// Schedule are what the shrinker needs to minimise the failure.
func finishStackOutcome(name, strategy string, seed uint64, d *director.Director, k, allowance, bufAllowance int64, errs []error) (*Outcome, error) {
	hist := d.History()
	out := &Outcome{
		Name: name, Strategy: strategy, Seed: seed, Steps: d.Steps(),
		K: k, Allowance: allowance + bufAllowance,
		History: hist, Schedule: d.Schedule(), TaskNames: d.TaskNames(),
	}
	if len(errs) > 0 {
		return out, errs[0]
	}
	if err := seqspec.CheckIntervalSanity(hist, int(k+allowance+bufAllowance)); err != nil {
		return out, fmt.Errorf("interval sanity: %w", err)
	}
	rep, err := (seqspec.KStackChecker{K: k, Allowance: allowance, BufferAllowance: bufAllowance}).Check(hist)
	out.Report = rep
	if err != nil {
		return out, fmt.Errorf("k-budget: %w", err)
	}
	return out, nil
}

func runShrinkDuringDrain(seed uint64) (*Outcome, error) {
	return directedShrinkDuringDrain(seed, director.NewSeededRandom(seed))
}

func directedShrinkDuringDrain(seed uint64, strat director.Strategy) (*Outcome, error) {
	cfgWide := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	cfgNarrow := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfgWide)
	if err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	for w := 0; w < 2; w++ {
		d.Go("filler", func(tc *director.Task) {
			h := st.NewHandle()
			for i := 0; i < 10; i++ {
				pushOp(tc, h.Push, &o, &errs)
			}
		})
	}
	for w := 0; w < 2; w++ {
		d.Go("drainer", func(tc *director.Task) {
			h := st.NewHandle()
			for i := 0; i < 10; i++ {
				popOp(tc, h.Pop, &o, &errs)
			}
		})
	}
	d.Go("shrink", func(tc *director.Task) {
		// Let the storm develop a little before shrinking.
		for i := 0; i < 6; i++ {
			tc.Yield()
		}
		if err := st.Reconfigure(cfgNarrow); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	k := cfgWide.K()
	if n := cfgNarrow.K(); n > k {
		k = n
	}
	out, err := finishStackOutcome(NameShrinkDuringDrain, strat.Name(), seed, d, k, st.ShrinkDisplacementBound(), 0, errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	return out, err
}

func runSwapDuringStorm(seed uint64) (*Outcome, error) {
	return directedSwapDuringStorm(seed, director.NewSeededRandom(seed))
}

func directedSwapDuringStorm(seed uint64, strat director.Strategy) (*Outcome, error) {
	twod, err := relax.NewTwoDBackend[uint64](core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0})
	if err != nil {
		return nil, err
	}
	sw, err := engine.New(twod)
	if err != nil {
		return nil, err
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	for w := 0; w < 3; w++ {
		d.Go("storm", func(tc *director.Task) {
			h := sw.NewHandle()
			for i := 0; i < 6; i++ {
				pushOp(tc, h.Push, &o, &errs)
				if i%2 == 1 {
					popOp(tc, h.Pop, &o, &errs)
				}
			}
		})
	}
	d.Go("swapper", func(tc *director.Task) {
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("treiber", "directed storm"); err != nil {
			errs = append(errs, err)
		}
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("2D-stack", "directed storm return"); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := sw.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameSwapDuringStorm, strat.Name(), seed, d, sw.KBound(), sw.SwapDisplacementBound(), 0, errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	if err != nil {
		return out, err
	}
	if sw.SwapCount() != 2 {
		return out, fmt.Errorf("expected 2 swaps, got %d", sw.SwapCount())
	}
	return out, nil
}

// --- buffered variants (DESIGN.md §11) ---------------------------------------
//
// The buffered scenarios rerun the two reconfiguration storms with every
// worker handle armed with an op buffer, so the adversarial schedules probe
// the combined-publication fast path exactly where it is weakest: pending
// pushes crossing a geometry epoch (the maybeEpochFlush handoff) and
// pending pushes crossing a backend swap (the engine buffer's swap-safety
// claim). Worker-end protocol: FlushOps publishes the pending pushes (their
// history ops were recorded at BufferedPush time — that deferral is what
// the BufferAllowance budget pays for), then the undelivered prefetched
// values are delivered through recorded pops, so the drained history stays
// conservation-complete and the fairness premise of the §11 bound (no
// parking with non-empty buffers) holds at every task exit.

// bufferedScenarioCap is the op-buffer threshold the buffered scenarios
// arm. Small on purpose: the workloads are tens of ops per worker, and the
// interesting schedules interleave partial buffers with reconfiguration,
// not full-batch steady state.
const bufferedScenarioCap = 4

func runBufferedShrinkDuringDrain(seed uint64) (*Outcome, error) {
	return directedBufferedShrinkDuringDrain(seed, director.NewSeededRandom(seed))
}

func directedBufferedShrinkDuringDrain(seed uint64, strat director.Strategy) (*Outcome, error) {
	cfgWide := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	cfgNarrow := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfgWide)
	if err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	for w := 0; w < 2; w++ {
		d.Go("filler", func(tc *director.Task) {
			h := st.NewHandle()
			h.SetOpBuffer(bufferedScenarioCap)
			for i := 0; i < 10; i++ {
				pushOp(tc, h.BufferedPush, &o, &errs)
			}
			h.FlushOps()
		})
	}
	for w := 0; w < 2; w++ {
		d.Go("drainer", func(tc *director.Task) {
			h := st.NewHandle()
			h.SetOpBuffer(bufferedScenarioCap)
			for i := 0; i < 10; i++ {
				popOp(tc, h.BufferedPop, &o, &errs)
			}
			// Deliver what the last refill prefetched but did not serve —
			// each of these pops is satisfied from the prefetch, so the
			// count is exact.
			_, undelivered := h.BufferedCounts()
			for i := 0; i < undelivered; i++ {
				popOp(tc, h.BufferedPop, &o, &errs)
			}
		})
	}
	d.Go("shrink", func(tc *director.Task) {
		for i := 0; i < 6; i++ {
			tc.Yield()
		}
		if err := st.Reconfigure(cfgNarrow); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	k := cfgWide.K()
	if n := cfgNarrow.K(); n > k {
		k = n
	}
	out, err := finishStackOutcome(NameBufferedShrinkDuringDrain, strat.Name(), seed, d,
		k, st.ShrinkDisplacementBound(), seqspec.BufferAllowance(4, bufferedScenarioCap), errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	return out, err
}

func runBufferedSwapDuringStorm(seed uint64) (*Outcome, error) {
	return directedBufferedSwapDuringStorm(seed, director.NewSeededRandom(seed))
}

func directedBufferedSwapDuringStorm(seed uint64, strat director.Strategy) (*Outcome, error) {
	twod, err := relax.NewTwoDBackend[uint64](core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0})
	if err != nil {
		return nil, err
	}
	sw, err := engine.New(twod)
	if err != nil {
		return nil, err
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	for w := 0; w < 3; w++ {
		d.Go("storm", func(tc *director.Task) {
			h := sw.NewBufferedHandle(bufferedScenarioCap)
			for i := 0; i < 6; i++ {
				pushOp(tc, h.BufferedPush, &o, &errs)
				if i%2 == 1 {
					popOp(tc, h.BufferedPop, &o, &errs)
				}
			}
			h.FlushOps() // the engine buffer holds no prefetch to deliver
		})
	}
	d.Go("swapper", func(tc *director.Task) {
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("treiber", "buffered directed storm"); err != nil {
			errs = append(errs, err)
		}
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("2D-stack", "buffered directed storm return"); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := sw.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameBufferedSwapDuringStorm, strat.Name(), seed, d,
		sw.KBound(), sw.SwapDisplacementBound(), seqspec.BufferAllowance(3, bufferedScenarioCap), errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	if err != nil {
		return out, err
	}
	if sw.SwapCount() != 2 {
		return out, fmt.Errorf("expected 2 swaps, got %d", sw.SwapCount())
	}
	return out, nil
}

func runSocketSkew(seed uint64) (*Outcome, error) {
	return directedSocketSkew(seed, director.NewPCT(seed, 4, 400))
}

func directedSocketSkew(seed uint64, strat director.Strategy) (*Outcome, error) {
	cfg := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		return nil, err
	}
	st.SetPlacement(core.LocalFirst(), 2)
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	for w := 0; w < 4; w++ {
		d.Go("skewed", func(tc *director.Task) {
			h := st.NewHandle()
			h.Pin(0) // every worker claims socket 0: maximal placement skew
			for i := 0; i < 8; i++ {
				pushOp(tc, h.Push, &o, &errs)
				if i%2 == 1 {
					popOp(tc, h.Pop, &o, &errs)
				}
			}
		})
	}
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameSocketSkew, strat.Name(), seed, d, cfg.K(), 0, 0, errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	return out, err
}

// --- coverage-guided frontier search -----------------------------------------

// FrontierStepBudget is the grant budget the guided-frontier scenario (and
// the CI smoke gate) spends per search — a few dozen directed runs of the
// frontier workload.
const FrontierStepBudget = 2500

// FrontierConfig is the canonical guided-search geometry: the Theorem-1
// counterexample geometry (width 2, depth 4, shift 1 — K() = 9), where the
// sequential explorer proved the interesting schedules live.
func FrontierConfig() core.Config {
	return core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
}

// frontierTasks registers the frontier workload: two churn tasks and a
// dedicated popper hammering one small stack — enough push/pop phase
// structure that window positions, populations and interleavings form a
// real state frontier for the coverage signal to chase.
func frontierTasks(d *director.Director, st *core.Stack[uint64], o *quality.Oracle, errs *[]error) {
	for w := 0; w < 2; w++ {
		d.Go("churn", func(tc *director.Task) {
			h := st.NewHandle()
			for i := 0; i < 10; i++ {
				pushOp(tc, h.Push, o, errs)
				if i%3 == 2 {
					popOp(tc, h.Pop, o, errs)
				}
			}
		})
	}
	d.Go("popper", func(tc *director.Task) {
		h := st.NewHandle()
		for i := 0; i < 8; i++ {
			popOp(tc, h.Pop, o, errs)
		}
	})
}

// frontierProbe abstracts the stack state for the coverage signal: window
// ceiling position, population, geometry epoch, and the run's population
// high-water mark. The watermark is the frontier axis proper: record
// depths are exponentially rare under independent random restarts (a
// balanced workload's population is a mean-reverting walk), but a guided
// dive resumes a corpus run at its record instead of re-earning it, so
// every post-divergence state is scored in territory the control arm
// almost never sees.
func frontierProbe(st *core.Stack[uint64]) func() uint64 {
	high := 0
	return func() uint64 {
		if n := st.Len(); n > high {
			high = n
		}
		return uint64(high)<<40 ^ uint64(st.Global())<<20 ^ uint64(st.Len())<<4 ^ st.Epoch()&0xf
	}
}

// FrontierDirected runs one directed frontier run on cfg under strat,
// checked at cfg.K(): the guided search's run body, the shrinker's replay
// vehicle (pass director.NewFollow over a candidate schedule), and
// cmd/schedhunt's probe. On a budget violation the recorded Outcome is
// returned alongside the error.
func FrontierDirected(cfg core.Config, seed uint64, strat director.Strategy) (*Outcome, error) {
	st, err := core.New[uint64](cfg)
	if err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	d := director.New(strat)
	frontierTasks(d, st, &o, &errs)
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameGuidedFrontier, strat.Name(), seed, d, cfg.K(), 0, 0, errs)
	if out != nil {
		out.Quality = o.Snapshot()
	}
	return out, err
}

func directedFrontier(seed uint64, strat director.Strategy) (*Outcome, error) {
	return FrontierDirected(FrontierConfig(), seed, strat)
}

// FrontierBuilder adapts the frontier workload to the guided search: every
// run gets a fresh stack and oracle, the coverage probe above, and a finish
// hook that drains, checks the run at cfg.K() and deposits the run's
// Outcome into sink (so the search's caller can report the last — or the
// failing — run).
func FrontierBuilder(cfg core.Config, seed uint64, sink **Outcome) director.Builder {
	return func(d *director.Director) (func() uint64, func(*director.Director) error) {
		st, err := core.New[uint64](cfg)
		if err != nil {
			return nil, func(*director.Director) error { return err }
		}
		var o quality.Oracle
		var errs []error
		frontierTasks(d, st, &o, &errs)
		finish := func(d *director.Director) error {
			h := st.NewHandle()
			drainInto(d, h.Pop, &o, &errs)
			out, ferr := finishStackOutcome(NameGuidedFrontier, "guided", seed, d, cfg.K(), 0, 0, errs)
			if out != nil {
				out.Quality = o.Snapshot()
				*sink = out
			}
			return ferr
		}
		return frontierProbe(st), finish
	}
}

// runGuidedFrontier is the pack scenario: a whole coverage-guided search
// over the frontier workload, every run drained and checked at the
// corrected Theorem-1 budget. A violation found by the search fails the
// scenario (and hands CI the failing schedule to shrink); the outcome of a
// clean search is its last run, annotated with the search totals.
func runGuidedFrontier(seed uint64) (*Outcome, error) {
	g := director.NewGuidedSearch(seed)
	var last *Outcome
	res, err := g.Explore(FrontierBuilder(FrontierConfig(), seed, &last), FrontierStepBudget)
	if err != nil {
		return last, fmt.Errorf("guided search (run %d, %d steps): %w", res.Runs, res.Steps, err)
	}
	if last == nil {
		return nil, fmt.Errorf("guided search executed no runs")
	}
	last.Steps = res.Steps
	last.Coverage = res.Distinct
	return last, nil
}
