package scenarios

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/director"
	"stack2d/internal/engine"
	"stack2d/internal/quality"
	"stack2d/internal/relax"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// oraclePatience bounds the quality oracles' insert wait inside directed
// runs. Under the director the oracle calls run inside op closures, between
// gates, so a Remove can never actually race its Insert — a miss here is a
// real conservation bug and should fail fast.
const oraclePatience = 2 * time.Second

// Outcome is the complete, deterministic result of one scenario run: the
// recorded interval history and schedule (byte-identical across same-seed
// runs — the determinism regression test pins this), the checker verdict
// against the scenario's semantics budget, and the realised rank-error
// distribution from the quality oracle.
type Outcome struct {
	Name     string
	Strategy string
	Seed     uint64
	Steps    int

	// K and Allowance are the budget the history was checked against;
	// FIFO selects which checker family measured it.
	K         int64
	Allowance int64
	FIFO      bool
	Report    seqspec.KDistanceReport

	History  []seqspec.IntervalOp
	Schedule []director.Choice

	// Quality is the realised error-distance distribution (paper §4
	// metric: distance from the strict order at removal time).
	Quality quality.Stats
}

// Fingerprint hashes the recorded history and schedule; two runs with the
// same fingerprint made byte-identical recordings.
func (o *Outcome) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, op := range o.History {
		fmt.Fprintf(h, "%d,%d,%t,%d,%d;", op.Kind, op.Value, op.Empty, op.Begin, op.End)
	}
	for _, c := range o.Schedule {
		fmt.Fprintf(h, "%d@%d;", c.Task, c.Point)
	}
	return h.Sum64()
}

// Scenario is one named adversarial run. Run must be a deterministic
// function of seed.
type Scenario struct {
	Name  string
	About string
	Run   func(seed uint64) (*Outcome, error)
}

// All returns the scenario pack in its canonical order.
func All() []Scenario {
	return []Scenario{
		{
			Name:  NameTheoremOneReplay,
			About: "explorer's minimal Theorem-1 counterexample on the real stack",
			Run:   runTheoremOneReplay,
		},
		{
			Name:  NameQueueWitnessReplay,
			About: "queue explorer's max-distance witness on the real queue",
			Run:   runQueueWitnessReplay,
		},
		{
			Name:  NameShrinkDuringDrain,
			About: "width shrink racing directed poppers",
			Run:   runShrinkDuringDrain,
		},
		{
			Name:  NameSwapDuringStorm,
			About: "backend hot-swap inside a directed push/pop storm",
			Run:   runSwapDuringStorm,
		},
		{
			Name:  NameSocketSkew,
			About: "all handles pinned to one socket of a local-first placement, PCT schedule",
			Run:   runSocketSkew,
		},
	}
}

// Sweep runs the full pack with the given base seed and returns the
// outcomes in pack order. Each scenario gets a distinct derived seed so the
// pack explores unrelated schedules while staying a pure function of seed.
func Sweep(seed uint64) ([]*Outcome, error) {
	var outs []*Outcome
	for i, sc := range All() {
		o, err := sc.Run(seed + uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// FormatErrorTable renders the outcomes as the markdown realised-error
// table EXPERIMENTS.md documents: per scenario, the checked budget and the
// realised distance distribution.
func FormatErrorTable(outs []*Outcome) string {
	var b strings.Builder
	b.WriteString("| scenario | strategy | seed | pops | k | allowance | max strain | realised max | mean error |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, o := range outs {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %d | %d | %.3f |\n",
			o.Name, o.Strategy, o.Seed, o.Report.Pops, o.K, o.Allowance,
			o.Report.MaxStrain, o.Quality.Max, o.Quality.Mean())
	}
	return b.String()
}

// --- trace replays -----------------------------------------------------------

// sequentialQuality replays a zero-slack sequential history through the
// rank-error oracle of the right ordering.
func sequentialQuality(hist []seqspec.IntervalOp, fifo bool) (quality.Stats, error) {
	var lifo quality.Oracle
	var fq quality.FIFOOracle
	for _, op := range hist {
		switch {
		case op.Kind == seqspec.OpPush && fifo:
			fq.Insert(op.Value)
		case op.Kind == seqspec.OpPush:
			lifo.Insert(op.Value)
		case op.Empty:
		case fifo:
			if _, err := fq.RemoveWithin(op.Value, oraclePatience); err != nil {
				return quality.Stats{}, err
			}
		default:
			if _, err := lifo.RemoveWithin(op.Value, oraclePatience); err != nil {
				return quality.Stats{}, err
			}
		}
	}
	if fifo {
		return fq.Snapshot(), nil
	}
	return lifo.Snapshot(), nil
}

func runTheoremOneReplay(seed uint64) (*Outcome, error) {
	res, err := seqspec.ExploreStack(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 18, Bound: 6,
	})
	if err != nil {
		return nil, err
	}
	if res.Counterexample == nil {
		return nil, fmt.Errorf("explorer no longer finds the Theorem-1 counterexample")
	}
	cfg := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	hist, err := director.ReplayStackTrace(cfg, res.Counterexample)
	if err != nil {
		return nil, err
	}
	// The point of the scenario: the retired transcribed constant is
	// refuted by the real structure, the corrected bound holds exactly.
	if _, err := (seqspec.KStackChecker{K: 6}).Check(hist); err == nil {
		return nil, fmt.Errorf("real stack respects the retired k=6; counterexample no longer bites")
	}
	rep, err := (seqspec.KStackChecker{K: cfg.K()}).Check(hist)
	if err != nil {
		return nil, fmt.Errorf("corrected bound k=%d violated: %w", cfg.K(), err)
	}
	if rep.MaxDistance != res.MaxDistance {
		return nil, fmt.Errorf("real stack realised distance %d, model promised %d", rep.MaxDistance, res.MaxDistance)
	}
	q, err := sequentialQuality(hist, false)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name: NameTheoremOneReplay, Strategy: "trace-replay", Seed: seed,
		K: cfg.K(), Report: rep, History: hist, Quality: q,
	}, nil
}

func runQueueWitnessReplay(seed uint64) (*Outcome, error) {
	res, err := seqspec.ExploreQueue(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 14, Bound: -1,
	})
	if err != nil {
		return nil, err
	}
	if res.Witness == nil {
		return nil, fmt.Errorf("queue exploration produced no witness")
	}
	cfg := twodqueue.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	hist, err := director.ReplayQueueTrace(cfg, res.Witness)
	if err != nil {
		return nil, err
	}
	rep, err := (seqspec.KFIFOChecker{K: int64(res.MaxDistance)}).Check(hist)
	if err != nil {
		return nil, fmt.Errorf("explored maximum %d violated: %w", res.MaxDistance, err)
	}
	if rep.MaxDistance != res.MaxDistance {
		return nil, fmt.Errorf("real queue realised distance %d, model promised %d", rep.MaxDistance, res.MaxDistance)
	}
	q, err := sequentialQuality(hist, true)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name: NameQueueWitnessReplay, Strategy: "trace-replay", Seed: seed,
		K: int64(res.MaxDistance), FIFO: true, Report: rep, History: hist, Quality: q,
	}, nil
}

// --- directed concurrent scenarios ------------------------------------------

// pushOp and popOp wrap one operation with its oracle bookkeeping. The
// oracle calls run between gates, so they are atomic under the director and
// the Remove wait can only trip on a genuine conservation bug.
func pushOp(tc *director.Task, push func(uint64), o *quality.Oracle, errs *[]error) {
	label := tc.Label()
	tc.Op(seqspec.OpPush, func() (uint64, bool) {
		push(label)
		o.Insert(label)
		return label, true
	})
}

func popOp(tc *director.Task, pop func() (uint64, bool), o *quality.Oracle, errs *[]error) {
	tc.Op(seqspec.OpPop, func() (uint64, bool) {
		v, ok := pop()
		if ok {
			if _, err := o.RemoveWithin(v, oraclePatience); err != nil {
				*errs = append(*errs, err)
			}
		}
		return v, ok
	})
}

// drainInto appends the post-run sequential drain to the history (fresh
// ticks strictly after the directed phase), keeping conservation checkable.
func drainInto(d *director.Director, pop func() (uint64, bool), o *quality.Oracle, errs *[]error) {
	for {
		v, ok := pop()
		if !ok {
			return
		}
		if _, err := o.RemoveWithin(v, oraclePatience); err != nil {
			*errs = append(*errs, err)
		}
		d.AppendOp(seqspec.OpPop, v, false)
	}
}

func finishStackOutcome(name, strategy string, seed uint64, d *director.Director, k, allowance int64, errs []error) (*Outcome, error) {
	if len(errs) > 0 {
		return nil, errs[0]
	}
	hist := d.History()
	if err := seqspec.CheckIntervalSanity(hist, int(k+allowance)); err != nil {
		return nil, fmt.Errorf("interval sanity: %w", err)
	}
	rep, err := (seqspec.KStackChecker{K: k, Allowance: allowance}).Check(hist)
	if err != nil {
		return nil, fmt.Errorf("k-budget: %w", err)
	}
	return &Outcome{
		Name: name, Strategy: strategy, Seed: seed, Steps: d.Steps(),
		K: k, Allowance: allowance, Report: rep,
		History: hist, Schedule: d.Schedule(),
	}, nil
}

func runShrinkDuringDrain(seed uint64) (*Outcome, error) {
	cfgWide := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	cfgNarrow := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfgWide)
	if err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	strat := director.NewSeededRandom(seed)
	d := director.New(strat)
	for w := 0; w < 2; w++ {
		d.Go("filler", func(tc *director.Task) {
			h := st.NewHandle()
			for i := 0; i < 10; i++ {
				pushOp(tc, h.Push, &o, &errs)
			}
		})
	}
	for w := 0; w < 2; w++ {
		d.Go("drainer", func(tc *director.Task) {
			h := st.NewHandle()
			for i := 0; i < 10; i++ {
				popOp(tc, h.Pop, &o, &errs)
			}
		})
	}
	d.Go("shrink", func(tc *director.Task) {
		// Let the storm develop a little before shrinking.
		for i := 0; i < 6; i++ {
			tc.Yield()
		}
		if err := st.Reconfigure(cfgNarrow); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	k := cfgWide.K()
	if n := cfgNarrow.K(); n > k {
		k = n
	}
	out, err := finishStackOutcome(NameShrinkDuringDrain, strat.Name(), seed, d, k, st.ShrinkDisplacementBound(), errs)
	if err != nil {
		return nil, err
	}
	out.Quality = o.Snapshot()
	return out, nil
}

func runSwapDuringStorm(seed uint64) (*Outcome, error) {
	twod, err := relax.NewTwoDBackend[uint64](core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0})
	if err != nil {
		return nil, err
	}
	sw, err := engine.New(twod)
	if err != nil {
		return nil, err
	}
	if err := sw.Register(relax.NewTreiberBackend[uint64]()); err != nil {
		return nil, err
	}
	var o quality.Oracle
	var errs []error
	strat := director.NewSeededRandom(seed)
	d := director.New(strat)
	for w := 0; w < 3; w++ {
		d.Go("storm", func(tc *director.Task) {
			h := sw.NewHandle()
			for i := 0; i < 6; i++ {
				pushOp(tc, h.Push, &o, &errs)
				if i%2 == 1 {
					popOp(tc, h.Pop, &o, &errs)
				}
			}
		})
	}
	d.Go("swapper", func(tc *director.Task) {
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("treiber", "directed storm"); err != nil {
			errs = append(errs, err)
		}
		for i := 0; i < 4; i++ {
			tc.Yield()
		}
		if err := sw.SwapBackend("2D-stack", "directed storm return"); err != nil {
			errs = append(errs, err)
		}
	})
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := sw.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameSwapDuringStorm, strat.Name(), seed, d, sw.KBound(), sw.SwapDisplacementBound(), errs)
	if err != nil {
		return nil, err
	}
	if sw.SwapCount() != 2 {
		return nil, fmt.Errorf("expected 2 swaps, got %d", sw.SwapCount())
	}
	out.Quality = o.Snapshot()
	return out, nil
}

func runSocketSkew(seed uint64) (*Outcome, error) {
	cfg := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		return nil, err
	}
	st.SetPlacement(core.LocalFirst(), 2)
	var o quality.Oracle
	var errs []error
	strat := director.NewPCT(seed, 4, 400)
	d := director.New(strat)
	for w := 0; w < 4; w++ {
		d.Go("skewed", func(tc *director.Task) {
			h := st.NewHandle()
			h.Pin(0) // every worker claims socket 0: maximal placement skew
			for i := 0; i < 8; i++ {
				pushOp(tc, h.Push, &o, &errs)
				if i%2 == 1 {
					popOp(tc, h.Pop, &o, &errs)
				}
			}
		})
	}
	if err := d.Run(); err != nil {
		return nil, err
	}
	h := st.NewHandle()
	drainInto(d, h.Pop, &o, &errs)
	out, err := finishStackOutcome(NameSocketSkew, strat.Name(), seed, d, cfg.K(), 0, errs)
	if err != nil {
		return nil, err
	}
	out.Quality = o.Snapshot()
	return out, nil
}
