// Package director is a deterministic cooperative scheduler for the real
// concurrent structures (core.Stack, twodqueue.Queue, engine.Switcher). It
// drives chosen interleavings through the data-path yield gates
// (internal/yield, DESIGN.md §10): tasks run one at a time on their own
// goroutines, every gate hit hands control back to the director, and a
// pluggable Strategy picks which task runs next. The schedule is a pure
// function of (tasks, strategy, seed), so any run — including one that
// realises a worst-case relaxation distance — replays bit-for-bit.
//
// The director is not a model checker: it explores the schedules a strategy
// proposes, against the real compiled code, and records an interval history
// (seqspec.IntervalOp, ticks of the director's virtual clock) that feeds
// straight into seqspec.KStackChecker / KFIFOChecker and the
// internal/quality oracles. Exhaustive small-scope exploration stays with
// seqspec.ExploreStack; the director's trace replay (ReplayStackTrace)
// closes the loop by driving explorer counterexamples through the real
// structure.
//
// Concurrency model: exactly one task goroutine is unblocked at any
// instant. The director grants the chosen task a step by sending on its
// private resume channel and then blocks until the task reports back — by
// hitting a gate (suspend) or by finishing. Those channel handshakes carry
// all the happens-before edges, so tasks may freely read the director's
// clock and the director may read task shards without atomics, and the
// whole arrangement is clean under -race.
package director

import (
	"fmt"
	"runtime/debug"
	"strings"

	"stack2d/internal/core"
	"stack2d/internal/engine"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
	"stack2d/internal/yield"
)

// Choice is one entry of the recorded schedule: at this step the director
// granted task Task, which was suspended at Point (PointSpawn before its
// first step).
type Choice struct {
	Task  int
	Point yield.Point
}

// DefaultMaxSteps bounds a directed run. A step is one grant; the cap only
// exists to turn a schedule-induced livelock (or a strategy bug) into a
// diagnosable error instead of a hung test.
const DefaultMaxSteps = 1 << 20

// abortSentinel unwinds a task goroutine when the director aborts the run;
// the task wrapper recovers it and reports a clean completion.
type abortSentinel struct{}

type event struct {
	task  int
	point yield.Point
	done  bool
}

type task struct {
	id         int
	name       string
	body       func(*Task)
	resume     chan struct{}
	done       bool
	parked     bool
	last       yield.Point
	ops        []seqspec.IntervalOp
	panicVal   any
	panicStack []byte
}

// Director owns the virtual clock, the task set and the recorded schedule
// of one directed run. Build with New, add tasks with Go, then Run once.
type Director struct {
	strategy Strategy
	maxSteps int

	clock    int64
	steps    int
	label    uint64
	tasks    []*task
	current  *task
	events   chan event
	schedule []Choice
	aborted  bool
	ran      bool
	panicked *task

	coverage *Coverage
	probe    func() uint64
}

// New builds a director that schedules with the given strategy.
func New(s Strategy) *Director {
	return &Director{strategy: s, maxSteps: DefaultMaxSteps, events: make(chan event)}
}

// SetMaxSteps overrides DefaultMaxSteps (testing the abort path, or very
// long storms).
func (d *Director) SetMaxSteps(n int) { d.maxSteps = n }

// SetCoverage attaches a coverage accumulator: every suspension of the run
// is Noted as a (task, point, abstract state) tuple. The accumulator
// outlives the director — the guided search shares one across all its runs.
// Must be called before Run.
func (d *Director) SetCoverage(c *Coverage) { d.coverage = c }

// SetStateProbe installs the structure-state abstraction the coverage
// signal hashes alongside each suspension (window position, population,
// geometry epoch — whatever the workload exposes). The probe runs on the
// director's goroutine while every task is suspended, so it may read the
// structures without synchronisation. Nil (the default) abstracts the
// structure state to 0, leaving pure control coverage.
func (d *Director) SetStateProbe(f func() uint64) { d.probe = f }

// Go registers a task. Tasks are identified by registration order (the id
// strategies see); name is for diagnostics only. Must be called before Run.
func (d *Director) Go(name string, body func(*Task)) {
	t := &task{id: len(d.tasks), name: name, body: body, resume: make(chan struct{}), last: yield.PointSpawn}
	d.tasks = append(d.tasks, t)
}

// Task is the in-task view of the director, passed to each task body. All
// methods must be called from the task's own goroutine while it holds the
// grant (which it always does while its body runs outside a gate).
type Task struct {
	d *Director
	t *task
}

// Label returns the next unique value label for this run (1, 2, 3, ...).
// Single-writer under the director's one-task-at-a-time discipline.
func (tc *Task) Label() uint64 {
	tc.d.label++
	return tc.d.label
}

// Yield offers the director an explicit switch point, exactly as a data-path
// gate would.
func (tc *Task) Yield() { tc.d.gateYield(yield.PointOpBegin) }

// Op records one operation of the task's history. It yields at the op
// boundary (PointOpBegin), stamps Begin from the virtual clock, runs do —
// any gates do() hits inside the data path yield as usual, advancing the
// clock — and stamps End when do returns. For OpPush, do returns the label
// pushed; for OpPop it returns the value popped and whether the structure
// yielded one (ok=false records an empty pop).
func (tc *Task) Op(kind seqspec.OpKind, do func() (uint64, bool)) {
	tc.d.gateYield(yield.PointOpBegin)
	begin := tc.d.clock
	v, ok := do()
	op := seqspec.IntervalOp{Kind: kind, Value: v, Begin: begin, End: tc.d.clock}
	if kind == seqspec.OpPop && !ok {
		op.Value = 0
		op.Empty = true
	}
	tc.t.ops = append(tc.t.ops, op)
}

// gateYield is installed into the data-path gates for the duration of Run.
// It runs on the granted task's goroutine: report the suspension, wait for
// the next grant.
func (d *Director) gateYield(p yield.Point) {
	t := d.current
	if t == nil {
		return
	}
	d.events <- event{task: t.id, point: p}
	<-t.resume
	if d.aborted {
		panic(abortSentinel{})
	}
}

// Run executes the registered tasks to completion under the strategy and
// returns an error if the run aborted (step cap) instead of finishing. The
// data-path gates are installed on entry and restored on return; nothing
// else in the process may run gated operations concurrently with a directed
// run (tests are sequential, so in practice this means: don't).
func (d *Director) Run() error {
	if d.ran {
		return fmt.Errorf("director: Run called twice")
	}
	d.ran = true
	if len(d.tasks) == 0 {
		return nil
	}

	prevCore, prevQueue, prevEngine := core.Gate, twodqueue.Gate, engine.Gate
	core.Gate, twodqueue.Gate, engine.Gate = d.gateYield, d.gateYield, d.gateYield
	defer func() {
		core.Gate, twodqueue.Gate, engine.Gate = prevCore, prevQueue, prevEngine
	}()

	if d.coverage != nil {
		d.coverage.Begin()
	}
	for _, t := range d.tasks {
		go func(t *task) {
			defer func() {
				// A panic out of the task body (typically escaping Task.Op's
				// closure, i.e. the structure under test) is captured and
				// surfaced as Run's error with the task's stack — the
				// director aborts the remaining tasks instead of crashing
				// the process, so a directed run that provokes a panic is a
				// diagnosable, shrinkable failure.
				if r := recover(); r != nil {
					if _, abort := r.(abortSentinel); !abort {
						t.panicVal = r
						t.panicStack = debug.Stack()
					}
				}
				d.events <- event{task: t.id, done: true}
			}()
			<-t.resume
			if d.aborted {
				panic(abortSentinel{})
			}
			t.body(&Task{d: d, t: t})
		}(t)
	}

	live := len(d.tasks)
	var lastChoice Choice
	for live > 0 {
		var state uint64
		if d.coverage != nil && d.probe != nil {
			// Safe: every task is suspended on its resume channel right now,
			// so the probe is the only code touching the structures.
			state = d.probe()
		}
		t := d.tasks[d.pick(lastChoice, state)]
		lastChoice = Choice{Task: t.id, Point: t.last}
		d.schedule = append(d.schedule, lastChoice)
		d.clock++
		d.steps++
		if d.steps > d.maxSteps {
			d.aborted = true
		}
		if d.coverage != nil {
			// Coverage is noted at grant time — (granted task, the point it
			// resumes from, abstract pre-step state) are all known before the
			// grant, which is what lets a StateAware strategy predict novelty
			// exactly. The note index equals the schedule index plus one.
			d.coverage.Note(t.id, t.last, state)
		}
		d.current = t
		t.resume <- struct{}{}
		ev := <-d.events
		d.current = nil
		if ev.done {
			t.done = true
			live--
			if t.panicVal != nil && d.panicked == nil {
				d.panicked = t
				d.aborted = true
			}
			d.unparkAll()
			continue
		}
		t.last = ev.point
		if ev.point == yield.PointWait {
			// A wait-loop iteration is not progress; park the task so the
			// strategy prefers tasks that can move the run forward.
			t.parked = true
		} else {
			d.unparkAll()
		}
	}
	if d.panicked != nil {
		return fmt.Errorf("director: task %d (%s) panicked after %d steps: %v\n%s\n%s",
			d.panicked.id, d.panicked.name, d.steps, d.panicked.panicVal, d.taskStates(), d.panicked.panicStack)
	}
	if d.aborted {
		return fmt.Errorf("director: run aborted after %d steps (max %d); schedule livelock or cap too low\n%s",
			d.steps, d.maxSteps, d.taskStates())
	}
	return nil
}

// taskStates renders one diagnostic line per task — where each one last
// suspended, or that it finished — for the abort and panic errors.
func (d *Director) taskStates() string {
	var b strings.Builder
	b.WriteString("task states at abort:")
	for _, t := range d.tasks {
		switch {
		case t.panicVal != nil:
			fmt.Fprintf(&b, "\n  task %d (%s): panicked: %v", t.id, t.name, t.panicVal)
		case t.done:
			fmt.Fprintf(&b, "\n  task %d (%s): done", t.id, t.name)
		case t.parked:
			fmt.Fprintf(&b, "\n  task %d (%s): parked at %s", t.id, t.name, t.last)
		default:
			fmt.Fprintf(&b, "\n  task %d (%s): suspended at %s", t.id, t.name, t.last)
		}
	}
	return b.String()
}

// pick asks the strategy to choose among the runnable tasks. Parked tasks
// (suspended at PointWait) are offered only when every runnable task is
// parked — then one of them must be granted to re-check its wait condition.
// StateAware strategies additionally see each candidate's pending yield
// point and the abstract pre-step structure state.
func (d *Director) pick(last Choice, state uint64) int {
	runnable := make([]int, 0, len(d.tasks))
	for _, t := range d.tasks {
		if !t.done && !t.parked {
			runnable = append(runnable, t.id)
		}
	}
	if len(runnable) == 0 {
		for _, t := range d.tasks {
			if !t.done {
				runnable = append(runnable, t.id)
			}
		}
	}
	if len(runnable) == 1 {
		return runnable[0]
	}
	var idx int
	if sa, ok := d.strategy.(StateAware); ok {
		points := make([]yield.Point, len(runnable))
		for i, id := range runnable {
			points[i] = d.tasks[id].last
		}
		idx = sa.NextState(runnable, points, d.steps, last, state)
	} else {
		idx = d.strategy.Next(runnable, d.steps, last)
	}
	if idx < 0 || idx >= len(runnable) {
		idx = 0
	}
	return runnable[idx]
}

func (d *Director) unparkAll() {
	for _, t := range d.tasks {
		t.parked = false
	}
}

// Clock returns the virtual clock (ticks = grants so far). After Run it is
// the run's final time; AppendOp continues from it.
func (d *Director) Clock() int64 { return d.clock }

// Steps returns the number of grants issued.
func (d *Director) Steps() int { return d.steps }

// Schedule returns the recorded choice sequence — a complete, replayable
// description of the interleaving (granting tasks in this exact order
// reproduces the run; NewFollow does exactly that).
func (d *Director) Schedule() []Choice { return d.schedule }

// TaskNames returns the registered task names in id order, for schedule
// narration and diagnostics.
func (d *Director) TaskNames() []string {
	names := make([]string, len(d.tasks))
	for i, t := range d.tasks {
		names[i] = t.name
	}
	return names
}

// History merges the per-task shards in task order. Intervals carry virtual
// clock ticks; the checkers' stable sort on Begin reconstructs grant order
// (every op's Begin is a distinct tick). Call after Run.
func (d *Director) History() []seqspec.IntervalOp {
	var out []seqspec.IntervalOp
	for _, t := range d.tasks {
		out = append(out, t.ops...)
	}
	return out
}

// AppendOp records one sequential post-run operation (e.g. the verification
// drain after the directed phase) with a fresh tick strictly after every
// directed interval, keeping the merged history a valid interval history.
// Only meaningful after Run has returned.
func (d *Director) AppendOp(kind seqspec.OpKind, value uint64, empty bool) {
	d.clock++
	op := seqspec.IntervalOp{Kind: kind, Value: value, Empty: empty, Begin: d.clock, End: d.clock}
	if len(d.tasks) > 0 {
		t := d.tasks[len(d.tasks)-1]
		t.ops = append(t.ops, op)
	}
}
