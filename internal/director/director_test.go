package director

import (
	"reflect"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
	"stack2d/internal/twodqueue"
)

// The acceptance test of the whole layer: the sequential explorer's minimal
// Theorem-1 counterexample (PR 5: 16 ops, distance 7 at width 2, depth 4,
// shift 1) must replay against the real compiled core.Stack — refuting the
// paper's transcribed constant (k = 6 at this geometry) and respecting the
// corrected one (k = 9) with the exact distance the model predicted.
func TestReplayTheoremOneCounterexample(t *testing.T) {
	res, err := seqspec.ExploreStack(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 18, Bound: 6,
	})
	if err != nil {
		t.Fatalf("ExploreStack: %v", err)
	}
	if res.Counterexample == nil {
		t.Fatal("explorer no longer finds the Theorem-1 counterexample")
	}
	if len(res.Counterexample) != 16 || res.MaxDistance != 7 {
		t.Fatalf("counterexample drifted: %d ops, distance %d (want 16 ops, distance 7)",
			len(res.Counterexample), res.MaxDistance)
	}

	cfg := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	hist, err := ReplayStackTrace(cfg, res.Counterexample)
	if err != nil {
		t.Fatalf("replay diverged from the real stack: %v", err)
	}
	if err := seqspec.CheckIntervalSanity(hist, int(cfg.K())); err != nil {
		t.Fatalf("replayed history fails sanity: %v", err)
	}

	// The retired transcribed constant must be refuted by the real run...
	if _, err := (seqspec.KStackChecker{K: 6}).Check(hist); err == nil {
		t.Fatal("real stack run respects k=6; the counterexample no longer bites")
	}
	// ...and the corrected bound must hold, at exactly the model's distance.
	rep, err := (seqspec.KStackChecker{K: cfg.K()}).Check(hist)
	if err != nil {
		t.Fatalf("real stack run violates the corrected bound k=%d: %v", cfg.K(), err)
	}
	if rep.MaxDistance != 7 {
		t.Fatalf("real stack realised distance %d, model promised 7", rep.MaxDistance)
	}
	if rep.MaxSlack != 0 {
		t.Fatalf("sequential replay must have zero slack, got %d", rep.MaxSlack)
	}
}

func TestReplayQueueWitness(t *testing.T) {
	res, err := seqspec.ExploreQueue(seqspec.ExploreConfig{
		Width: 2, Depth: 4, Shift: 1, MaxOps: 14, Bound: -1,
	})
	if err != nil {
		t.Fatalf("ExploreQueue: %v", err)
	}
	if res.Witness == nil {
		t.Fatal("queue exploration produced no witness")
	}
	hist, err := ReplayQueueTrace(twodqueueConfig(), res.Witness)
	if err != nil {
		t.Fatalf("replay diverged from the real queue: %v", err)
	}
	rep, err := (seqspec.KFIFOChecker{K: int64(res.MaxDistance)}).Check(hist)
	if err != nil {
		t.Fatalf("real queue run violates the explored maximum %d: %v", res.MaxDistance, err)
	}
	if rep.MaxDistance != res.MaxDistance {
		t.Fatalf("real queue realised distance %d, model promised %d", rep.MaxDistance, res.MaxDistance)
	}
}

// driveSmall is a minimal directed workload: pushers and poppers hammering
// one small stack under the given strategy.
func driveSmall(t *testing.T, s Strategy) ([]Choice, []seqspec.IntervalOp) {
	t.Helper()
	cfg := core.Config{Width: 2, Depth: 2, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(s)
	for w := 0; w < 2; w++ {
		d.Go("pusher", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 6; i++ {
				label := tc.Label()
				tc.Op(seqspec.OpPush, func() (uint64, bool) {
					h.Push(label)
					return label, true
				})
			}
		})
	}
	for w := 0; w < 2; w++ {
		d.Go("popper", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 6; i++ {
				tc.Op(seqspec.OpPop, func() (uint64, bool) { return h.Pop() })
			}
		})
	}
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Drain sequentially so conservation is fully checkable.
	h := st.NewHandle()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		d.AppendOp(seqspec.OpPop, v, false)
	}
	return d.Schedule(), d.History()
}

func TestDirectedRunPassesCheckers(t *testing.T) {
	_, hist := driveSmall(t, NewSeededRandom(42))
	cfg := core.Config{Width: 2, Depth: 2, Shift: 1}
	if err := seqspec.CheckIntervalSanity(hist, int(cfg.K())); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	if _, err := (seqspec.KStackChecker{K: cfg.K()}).Check(hist); err != nil {
		t.Fatalf("k-bound: %v", err)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	for _, mk := range []func() Strategy{
		func() Strategy { return NewSeededRandom(7) },
		func() Strategy { return NewPCT(7, 3, 64) },
		func() Strategy { return NewRoundRobin() },
	} {
		sched1, hist1 := driveSmall(t, mk())
		sched2, hist2 := driveSmall(t, mk())
		if !reflect.DeepEqual(sched1, sched2) {
			t.Fatalf("%s: same seed produced different schedules", mk().Name())
		}
		if !reflect.DeepEqual(hist1, hist2) {
			t.Fatalf("%s: same seed produced different histories", mk().Name())
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	sched1, _ := driveSmall(t, NewSeededRandom(1))
	sched2, _ := driveSmall(t, NewSeededRandom(2))
	if reflect.DeepEqual(sched1, sched2) {
		t.Fatal("distinct seeds produced identical schedules (suspicious)")
	}
}

// A reconfiguration mid-run must park on the quiescence wait instead of
// livelocking the director, and the run must still satisfy the widened
// checker budget (max active K + shrink displacement).
func TestReconfigureUnderDirection(t *testing.T) {
	cfgWide := core.Config{Width: 4, Depth: 4, Shift: 1, RandomHops: 0}
	cfgNarrow := core.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfgWide)
	if err != nil {
		t.Fatal(err)
	}
	d := New(NewSeededRandom(1234))
	for w := 0; w < 2; w++ {
		d.Go("mixed", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 8; i++ {
				label := tc.Label()
				tc.Op(seqspec.OpPush, func() (uint64, bool) {
					h.Push(label)
					return label, true
				})
			}
			for i := 0; i < 4; i++ {
				tc.Op(seqspec.OpPop, func() (uint64, bool) { return h.Pop() })
			}
		})
	}
	d.Go("shrink", func(tc *Task) {
		tc.Yield()
		if err := st.Reconfigure(cfgNarrow); err != nil {
			t.Errorf("Reconfigure: %v", err)
		}
	})
	if err := d.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := st.NewHandle()
	for {
		v, ok := h.Pop()
		if !ok {
			break
		}
		d.AppendOp(seqspec.OpPop, v, false)
	}
	hist := d.History()
	k := cfgWide.K()
	if n := cfgNarrow.K(); n > k {
		k = n
	}
	chk := seqspec.KStackChecker{K: k, Allowance: st.ShrinkDisplacementBound()}
	if _, err := chk.Check(hist); err != nil {
		t.Fatalf("directed shrink run violates the §9 budget: %v", err)
	}
}

func TestAbortOnStepCap(t *testing.T) {
	cfg := core.Config{Width: 2, Depth: 2, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(NewRoundRobin())
	d.SetMaxSteps(5)
	for w := 0; w < 2; w++ {
		d.Go("pusher", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 100; i++ {
				label := tc.Label()
				tc.Op(seqspec.OpPush, func() (uint64, bool) {
					h.Push(label)
					return label, true
				})
			}
		})
	}
	if err := d.Run(); err == nil {
		t.Fatal("run exceeding the step cap must return an error")
	}
}

func twodqueueConfig() twodqueue.Config {
	return twodqueue.Config{Width: 2, Depth: 4, Shift: 1, RandomHops: 0}
}
