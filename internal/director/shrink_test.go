package director

import (
	"reflect"
	"strings"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/seqspec"
)

// modelReplay is a synthetic replay for exercising the shrinker without a
// real structure: a "run" is exactly runLen grants over nTasks tasks,
// grant i following the candidate directive when present and valid, and
// round robin (i mod nTasks) otherwise — the same directive-prefix
// semantics NewFollow gives real replays.
func modelReplay(runLen, nTasks int, fails func(grants []int) bool) ShrinkReplay {
	return func(cand []Choice) ([]Choice, bool) {
		grants := make([]int, runLen)
		rec := make([]Choice, runLen)
		for i := 0; i < runLen; i++ {
			g := i % nTasks
			if i < len(cand) && cand[i].Task >= 0 && cand[i].Task < nTasks {
				g = cand[i].Task
			}
			grants[i] = g
			rec[i] = Choice{Task: g}
		}
		return rec, fails(grants)
	}
}

// The shrinker must isolate the single load-bearing directive: the model
// fails iff grant 7 goes to task 2 (round robin would give task 1) and
// grant 19 goes to task 1 (which round robin gives for free). The minimal
// failing directive prefix is therefore 8 entries ending in the task-2
// override.
func TestShrinkIsolatesLoadBearingChoice(t *testing.T) {
	fails := func(g []int) bool { return g[7] == 2 && g[19] == 1 }
	// The original failing schedule spells out all 40 grants explicitly.
	orig := make([]Choice, 40)
	for i := range orig {
		orig[i] = Choice{Task: i % 3}
	}
	orig[7] = Choice{Task: 2}
	orig[19] = Choice{Task: 1}

	s := &Shrinker{Replay: modelReplay(40, 3, fails)}
	res, err := s.Shrink(orig)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if len(res.Minimized) != 8 {
		t.Fatalf("minimized to %d choices, want 8 (prefix through the grant-7 override):\n%s",
			len(res.Minimized), FormatSchedule(res.Minimized, nil))
	}
	if res.Minimized[7].Task != 2 {
		t.Fatalf("load-bearing choice lost: grant 7 is task %d, want 2", res.Minimized[7].Task)
	}
	if _, failing := s.Replay(res.Minimized); !failing {
		t.Fatal("minimized schedule does not fail on replay")
	}
	if res.Probes > DefaultShrinkProbes {
		t.Fatalf("probe accounting overran the default budget: %d", res.Probes)
	}
}

func TestShrinkRejectsNonFailingInput(t *testing.T) {
	s := &Shrinker{Replay: modelReplay(10, 2, func([]int) bool { return false })}
	if _, err := s.Shrink(make([]Choice, 10)); err == nil {
		t.Fatal("shrinking a passing schedule must error, not return an empty result")
	}
}

// An exhausted probe budget freezes the current (still failing) schedule —
// best effort, never a wrong answer.
func TestShrinkBudgetFreezesFailingSchedule(t *testing.T) {
	fails := func(g []int) bool { return g[3] == 1 }
	orig := make([]Choice, 12)
	for i := range orig {
		orig[i] = Choice{Task: i % 2}
	}
	s := &Shrinker{Replay: modelReplay(12, 2, fails), MaxProbes: 1}
	res, err := s.Shrink(orig)
	if err != nil {
		t.Fatalf("Shrink under exhausted budget: %v", err)
	}
	if len(res.Minimized) != len(orig) {
		t.Fatalf("budget of 1 probe still shrank %d -> %d", len(orig), len(res.Minimized))
	}
	if _, failing := s.Replay(res.Minimized); !failing {
		t.Fatal("frozen schedule must still fail")
	}
}

// Replaying a full recorded schedule through NewFollow must reproduce the
// recording run bit for bit — the property every shrink probe rests on.
func TestFollowReplaysRecordedScheduleExactly(t *testing.T) {
	sched1, hist1 := driveSmall(t, NewSeededRandom(42))
	sched2, hist2 := driveSmall(t, NewFollow(sched1, NewRoundRobin()))
	if !reflect.DeepEqual(sched1, sched2) {
		t.Fatal("follow replay recorded a different schedule")
	}
	if !reflect.DeepEqual(hist1, hist2) {
		t.Fatal("follow replay recorded a different history")
	}
}

func TestScheduleFingerprintDistinguishes(t *testing.T) {
	a := []Choice{{Task: 0}, {Task: 1}}
	b := []Choice{{Task: 0}, {Task: 2}}
	if ScheduleFingerprint(a) == ScheduleFingerprint(b) {
		t.Fatal("distinct schedules share a fingerprint")
	}
	if ScheduleFingerprint(a) != ScheduleFingerprint([]Choice{{Task: 0}, {Task: 1}}) {
		t.Fatal("identical schedules disagree on fingerprint")
	}
}

func TestEncodeDecodeScheduleTasks(t *testing.T) {
	sched := []Choice{{Task: 2}, {Task: 0}, {Task: FallbackTask}, {Task: 1}}
	b := EncodeScheduleTasks(sched)
	if len(b) != len(sched) {
		t.Fatalf("encoded %d bytes for %d choices", len(b), len(sched))
	}
	dec := DecodeScheduleTasks(b, 3)
	want := []int{2, 0, 0, 1} // FallbackTask encodes as 0: "let the scheduler pick"
	for i, c := range dec {
		if c.Task != want[i] {
			t.Fatalf("decode[%d] = task %d, want %d", i, c.Task, want[i])
		}
	}
	if DecodeScheduleTasks([]byte{251}, 3)[0].Task != int(251)%3 {
		t.Fatal("out-of-range bytes must reduce modulo the task count")
	}
	if DecodeScheduleTasks([]byte{1, 2}, 0) != nil {
		t.Fatal("zero tasks must decode to nil")
	}
}

func TestFormatScheduleNarration(t *testing.T) {
	sched := []Choice{{Task: 0}, {Task: 0}, {Task: 1}, {Task: FallbackTask}}
	s := FormatSchedule(sched, []string{"pusher", "popper"})
	for _, want := range []string{"task 0 (pusher)", "task 1 (popper)", "fallback", "step    0-1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("narration missing %q:\n%s", want, s)
		}
	}
}

// --- failure paths -----------------------------------------------------------

// A panic escaping a task body (typically the structure under test, inside
// Task.Op's closure) must surface as Run's error — with the task's name and
// stack — instead of crashing the process, and the remaining tasks must be
// wound down cleanly.
func TestTaskPanicPropagatesAsRunError(t *testing.T) {
	cfg := core.Config{Width: 2, Depth: 2, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(NewRoundRobin())
	d.Go("pusher", func(tc *Task) {
		h := st.NewHandle()
		for i := 0; i < 20; i++ {
			label := tc.Label()
			tc.Op(seqspec.OpPush, func() (uint64, bool) {
				h.Push(label)
				return label, true
			})
		}
	})
	d.Go("boomer", func(tc *Task) {
		tc.Yield()
		tc.Op(seqspec.OpPop, func() (uint64, bool) { panic("planted structure bug") })
	})
	err = d.Run()
	if err == nil {
		t.Fatal("a panicking task must fail the run")
	}
	for _, want := range []string{"panicked", "boomer", "planted structure bug", "task states at abort"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("panic diagnostic missing %q:\n%v", want, err)
		}
	}
	if !strings.Contains(err.Error(), "shrink_test.go") {
		t.Fatalf("panic diagnostic must carry the panicking stack:\n%v", err)
	}
}

func TestRunCalledTwiceErrors(t *testing.T) {
	d := New(NewRoundRobin())
	d.Go("noop", func(tc *Task) { tc.Yield() })
	if err := d.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	err := d.Run()
	if err == nil || !strings.Contains(err.Error(), "Run called twice") {
		t.Fatalf("second Run must error, got: %v", err)
	}
}

// The step-cap abort must name every task and where it last suspended —
// the diagnostic a human debugs a livelocked schedule from.
func TestAbortDiagnosticsNameTaskStates(t *testing.T) {
	cfg := core.Config{Width: 2, Depth: 2, Shift: 1, RandomHops: 0}
	st, err := core.New[uint64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := New(NewRoundRobin())
	d.SetMaxSteps(5)
	for w := 0; w < 2; w++ {
		d.Go("pusher", func(tc *Task) {
			h := st.NewHandle()
			for i := 0; i < 100; i++ {
				label := tc.Label()
				tc.Op(seqspec.OpPush, func() (uint64, bool) {
					h.Push(label)
					return label, true
				})
			}
		})
	}
	err = d.Run()
	if err == nil {
		t.Fatal("run exceeding the step cap must return an error")
	}
	for _, want := range []string{"aborted after", "task states at abort", "task 0 (pusher)", "task 1 (pusher)"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("abort diagnostic missing %q:\n%v", want, err)
		}
	}
}
