package director

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// This file is the automatic schedule minimiser (DESIGN.md §10
// "Shrinking"): given a failing schedule and a predicate over replays,
// delta-debug the Choice sequence — chunk removal, per-choice
// simplification toward the deterministic fallback, prefix truncation —
// replaying every candidate deterministically through the real structures
// and keeping only candidates that still fail. The output is a minimal
// failing schedule a human can actually read (FormatSchedule narrates it
// step by step) and CI can check in as a replayable artifact.
//
// Replay semantics make truncation sound: a candidate is a *directive
// prefix* — NewFollow grants its entries step for step and hands every
// later (or unsatisfiable) step to a deterministic fallback, so the run
// always completes and the predicate always gets a full history. Because
// replay is exact, any candidate sharing a prefix with the failing
// schedule reproduces the failing run's state at the end of that prefix
// bit for bit; once the violating event has happened, the tail is
// irrelevant, which is why prefix truncation alone usually removes most of
// a schedule.

// ShrinkReplay deterministically replays one candidate schedule through
// freshly built structures (same seed, same workload as the failing run,
// NewFollow(candidate, <deterministic fallback>) as the strategy) and
// reports the recorded schedule of the completed run plus whether the run
// still fails the predicate. The recorded schedule concretises the
// candidate: entry i of the recording is the grant candidate entry i
// produced, with the real yield point.
type ShrinkReplay func(candidate []Choice) (recorded []Choice, failing bool)

// DefaultShrinkProbes bounds the number of candidate replays a shrink may
// spend. Delta debugging is quadratic in the worst case; the cap turns a
// pathological predicate into a best-effort result instead of a hung test.
const DefaultShrinkProbes = 4096

// Shrinker minimises failing schedules through a replay function.
type Shrinker struct {
	// Replay replays one candidate; see ShrinkReplay. Required.
	Replay ShrinkReplay
	// MaxProbes caps candidate replays (0 = DefaultShrinkProbes).
	MaxProbes int

	probes int
	kept   int
}

// ShrinkResult is the outcome of one minimisation.
type ShrinkResult struct {
	// Original is the input failing schedule; Minimized the minimal failing
	// directive prefix, concretised from its final replay (every entry
	// carries the task actually granted and the point it suspended at).
	// Replaying Minimized through NewFollow with the same fallback
	// reproduces the failure.
	Original  []Choice
	Minimized []Choice
	// Probes counts candidate replays spent; Kept how many still failed.
	Probes int
	Kept   int
}

// Shrink minimises the failing schedule. It returns an error if the input
// schedule does not fail the predicate on replay (nothing to shrink — the
// failure is not schedule-determined, which is itself a diagnosis: the
// workload is nondeterministic or the predicate disagrees with the run
// that produced the schedule).
func (s *Shrinker) Shrink(failing []Choice) (*ShrinkResult, error) {
	if s.Replay == nil {
		return nil, fmt.Errorf("director: Shrinker.Replay is required")
	}
	s.probes, s.kept = 0, 0
	if _, ok := s.probe(failing); !ok {
		return nil, fmt.Errorf("director: shrink: the input schedule (%d choices) does not fail the predicate on replay", len(failing))
	}
	cur := cloneSchedule(failing)
	cur = s.shrinkPrefix(cur)
	cur = s.ddmin(cur)
	cur = s.simplify(cur)
	cur = s.trimSuffix(cur)

	// Concretise: the final replay's recording gives each surviving
	// directive its real granted task and yield point.
	recorded, ok := s.Replay(cur)
	s.probes++
	s.kept++
	if !ok {
		// Cannot happen for a deterministic replay — every stage only keeps
		// failing candidates — so a disagreement here is a nondeterminism
		// bug worth failing loudly on.
		return nil, fmt.Errorf("director: shrink: minimized schedule stopped failing on re-replay (nondeterministic workload?)")
	}
	if len(recorded) < len(cur) {
		cur = cur[:len(recorded)]
	}
	return &ShrinkResult{
		Original:  cloneSchedule(failing),
		Minimized: cloneSchedule(recorded[:len(cur)]),
		Probes:    s.probes,
		Kept:      s.kept,
	}, nil
}

func (s *Shrinker) budget() int {
	if s.MaxProbes > 0 {
		return s.MaxProbes
	}
	return DefaultShrinkProbes
}

// probe replays one candidate, counting against the budget. Once the
// budget is exhausted every further candidate reports "not failing", which
// freezes the current (still failing) schedule — best effort, never wrong.
func (s *Shrinker) probe(cand []Choice) ([]Choice, bool) {
	if s.probes >= s.budget() {
		return nil, false
	}
	s.probes++
	rec, fail := s.Replay(cand)
	if fail {
		s.kept++
	}
	return rec, fail
}

// shrinkPrefix binary-searches the shortest failing directive prefix. The
// predicate need not be monotone in the prefix length; the search maintains
// the invariant that its upper bound always fails, so a non-monotone
// predicate merely costs optimality, never correctness.
func (s *Shrinker) shrinkPrefix(cur []Choice) []Choice {
	lo, hi := 0, len(cur) // invariant: cur[:hi] fails
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if _, ok := s.probe(cur[:mid]); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return cur[:hi]
}

// ddmin is the classic delta-debugging chunk removal: try deleting each of
// n chunks; on success restart coarse, otherwise refine granularity until
// single choices have been tried.
func (s *Shrinker) ddmin(cur []Choice) []Choice {
	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Choice, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if _, ok := s.probe(cand); ok {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk == 1 {
				break
			}
			n *= 2
		}
	}
	return cur
}

// simplify tries to replace each surviving choice with the FallbackTask
// directive — the per-choice simplification toward the fallback's (round
// robin's) schedule. A simplified entry documents "any deterministic
// scheduler move works here"; only the entries that keep their explicit
// task are load-bearing.
func (s *Shrinker) simplify(cur []Choice) []Choice {
	for i := range cur {
		if cur[i].Task == FallbackTask {
			continue
		}
		cand := cloneSchedule(cur)
		cand[i].Task = FallbackTask
		if _, ok := s.probe(cand); ok {
			cur = cand
		}
	}
	return cur
}

// trimSuffix drops trailing choices one at a time — the cheap cleanup for
// entries ddmin stranded behind the last load-bearing grant.
func (s *Shrinker) trimSuffix(cur []Choice) []Choice {
	for len(cur) > 0 {
		if _, ok := s.probe(cur[:len(cur)-1]); !ok {
			break
		}
		cur = cur[:len(cur)-1]
	}
	return cur
}

// ScheduleFingerprint hashes a schedule; byte-identical schedules (and only
// those) share a fingerprint. The shrink determinism regression pins it.
func ScheduleFingerprint(sched []Choice) uint64 {
	h := fnv.New64a()
	for _, c := range sched {
		fmt.Fprintf(h, "%d@%d;", c.Task, c.Point)
	}
	return h.Sum64()
}

// FormatSchedule renders a schedule as a human-readable step narration:
// consecutive grants to the same task are grouped on one line with the
// yield points the task suspended at. names maps task ids to the
// registration names (Director.TaskNames); out-of-range ids print bare.
func FormatSchedule(sched []Choice, names []string) string {
	name := func(id int) string {
		if id == FallbackTask {
			return "fallback"
		}
		if id >= 0 && id < len(names) {
			return fmt.Sprintf("task %d (%s)", id, names[id])
		}
		return fmt.Sprintf("task %d", id)
	}
	var b strings.Builder
	for i := 0; i < len(sched); {
		j := i
		var points []string
		for j < len(sched) && sched[j].Task == sched[i].Task {
			points = append(points, sched[j].Point.String())
			j++
		}
		if j-i == 1 {
			fmt.Fprintf(&b, "step %4d      %-22s %s\n", i, name(sched[i].Task), points[0])
		} else {
			fmt.Fprintf(&b, "step %4d-%-4d %-22s %s\n", i, j-1, name(sched[i].Task), strings.Join(points, ", "))
		}
		i = j
	}
	return b.String()
}

// EncodeScheduleTasks flattens a schedule to one byte per grant (the task
// id) — the fuzz-corpus form FuzzGuidedSchedule mutates. Points are
// deliberately dropped: they are recordings, not directives, and replay
// re-derives them.
func EncodeScheduleTasks(sched []Choice) []byte {
	out := make([]byte, len(sched))
	for i, c := range sched {
		if c.Task >= 0 {
			out[i] = byte(c.Task)
		}
	}
	return out
}

// DecodeScheduleTasks builds a proposal from one task-id byte per grant,
// reduced modulo nTasks so arbitrary fuzz bytes decode to valid proposals.
func DecodeScheduleTasks(b []byte, nTasks int) []Choice {
	if nTasks <= 0 {
		return nil
	}
	out := make([]Choice, len(b))
	for i, t := range b {
		out[i] = Choice{Task: int(t) % nTasks}
	}
	return out
}
