package seqspec

import (
	"fmt"
	"testing"
)

// stepsToOps converts an explorer trace to a completion-order history, the
// currency of the sequential checkers, so traces can be cross-validated by
// machinery entirely independent of the explorer's own distance
// accounting. Trace Values are already push labels (relabelSteps), so the
// mapping is direct.
func stepsToOps(steps []ExploreStep) []Op {
	ops := make([]Op, 0, len(steps))
	for _, s := range steps {
		kind := OpPop
		if s.Push {
			kind = OpPush
		}
		ops = append(ops, Op{Kind: kind, Value: uint64(s.Value)})
	}
	return ops
}

func TestExploreValidation(t *testing.T) {
	bad := []ExploreConfig{
		{Width: 0, Depth: 1, Shift: 1, MaxOps: 4},
		{Width: 1, Depth: 0, Shift: 1, MaxOps: 4},
		{Width: 1, Depth: 2, Shift: 3, MaxOps: 4},
		{Width: 1, Depth: 2, Shift: 0, MaxOps: 4},
		{Width: 1, Depth: 1, Shift: 1, MaxOps: 0},
		{Width: 1, Depth: 1, Shift: 1, MaxOps: maxExploreOps + 1},
	}
	for _, cfg := range bad {
		if _, err := ExploreStack(cfg); err == nil {
			t.Errorf("ExploreStack(%+v) accepted an invalid config", cfg)
		}
		if _, err := ExploreQueue(cfg); err == nil {
			t.Errorf("ExploreQueue(%+v) accepted an invalid config", cfg)
		}
	}
}

// TestExploreWidthOneIsStrict: the degenerate geometry must certify k = 0
// for both structures — the explorer's analogue of the strict-LIFO tests.
func TestExploreWidthOneIsStrict(t *testing.T) {
	for d := 1; d <= 4; d++ {
		cfg := ExploreConfig{Width: 1, Depth: d, Shift: d, MaxOps: 12, Bound: 0}
		r, err := ExploreStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Certified() || r.MaxDistance != 0 {
			t.Fatalf("stack width 1 depth %d: max %d, counterexample %v", d, r.MaxDistance, r.Counterexample)
		}
		r, err = ExploreQueue(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Certified() || r.MaxDistance != 0 {
			t.Fatalf("queue width 1 depth %d: max %d, counterexample %v", d, r.MaxDistance, r.Counterexample)
		}
	}
}

// TestExploreStackFindsTheoremOneCounterexample pins the discovery that
// settled the Theorem-1 constant audit (DESIGN.md §2): at width 2, depth 4,
// shift 1 the paper's transcribed constant — shift-weighted, value 6 —
// is violated: the explorer produces a minimal history realising distance
// 7 — while the corrected constant (2·depth + shift)(width − 1) = 9 is
// certified over the same horizon. The counterexample trace is additionally
// replayed through the independent sequential checkers.
func TestExploreStackFindsTheoremOneCounterexample(t *testing.T) {
	const retiredK = 6 // (2·1 + 4)·(2−1), the paper constant as transcribed
	const correctedK = 9
	cfg := ExploreConfig{Width: 2, Depth: 4, Shift: 1, MaxOps: 18, Bound: retiredK}
	r, err := ExploreStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Certified() {
		t.Fatalf("retired constant %d not refuted within %d ops (max %d)", retiredK, cfg.MaxOps, r.MaxDistance)
	}
	last := r.Counterexample[len(r.Counterexample)-1]
	if last.Push || last.Dist != 7 {
		t.Fatalf("counterexample ends in %+v, want a pop at distance 7", last)
	}
	// BFS order makes the trace minimal; its length is deterministic.
	if len(r.Counterexample) != 16 {
		t.Errorf("minimal counterexample has %d ops, want 16:\n%v", len(r.Counterexample), r.Counterexample)
	}
	// Cross-validate with the independent history checkers: the replayed
	// trace must exceed the retired bound and respect the corrected one.
	ops := stepsToOps(r.Counterexample)
	if _, err := CheckKOutOfOrder(ops, retiredK); err == nil {
		t.Errorf("replayed counterexample passes the retired bound %d", retiredK)
	}
	if _, err := CheckKOutOfOrder(ops, correctedK); err != nil {
		t.Errorf("replayed counterexample violates the corrected bound %d: %v", correctedK, err)
	}

	// The same geometry certifies against the corrected constant.
	cfg.Bound = correctedK
	r, err = ExploreStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Certified() {
		t.Fatalf("corrected constant %d refuted: %v", correctedK, r.Counterexample)
	}
}

// TestExploreRealizedMaximaPinned pins the exhaustive width-2 maxima at an
// 18-op horizon. These are the numbers behind DESIGN.md §2's resolution
// note: the stack's realised sequential maxima stay within
// (2·depth − 1)(width − 1) — strictly inside the corrected constant — and
// the queue's within depth·(width − 1) (its ceilings are monotone, so the
// stack's stale-top path does not exist). A change in either table means
// the window discipline model changed; update DESIGN.md §2 alongside.
func TestExploreRealizedMaximaPinned(t *testing.T) {
	cases := []struct {
		d, s     int
		stackMax int
		queueMax int
	}{
		{1, 1, 1, 1},
		{2, 1, 3, 2},
		{2, 2, 2, 2},
		{3, 1, 5, 3},
		{3, 2, 5, 3},
		{3, 3, 3, 3},
		{4, 1, 7, 4},
		{4, 2, 6, 4},
		{4, 3, 7, 4},
		{4, 4, 4, 4},
	}
	for _, c := range cases {
		cfg := ExploreConfig{Width: 2, Depth: c.d, Shift: c.s, MaxOps: 18, Bound: -1}
		r, err := ExploreStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxDistance != c.stackMax {
			t.Errorf("stack d=%d s=%d: max %d, want %d", c.d, c.s, r.MaxDistance, c.stackMax)
		}
		r, err = ExploreQueue(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxDistance != c.queueMax {
			t.Errorf("queue d=%d s=%d: max %d, want %d", c.d, c.s, r.MaxDistance, c.queueMax)
		}
	}
}

// TestConformanceExhaustiveExplorer is the certificate behind the corrected
// Theorem-1 constant (DESIGN.md §2): for every geometry with width <= 3,
// depth <= 4 and every legal shift, exhaustive exploration of all push/pop
// interleavings within the horizon realises no distance beyond
// k = (2·depth + shift)·(width − 1), for the stack and the queue alike.
// Horizons shrink with width to keep the state space tractable; the width-2
// horizon is deep enough to contain the retired constant's minimal
// counterexample (16 ops), so this test would catch a regression to it.
//
// Scope, honestly: realising distance D takes at least D+2 operations, so
// a horizon of N ops can only refute bounds up to N−3 — every width-2 run
// is refutable in principle, but the larger-k width-3 geometries are not,
// and for those the exhaustive pass is evidence for the *sharp* secondary
// bounds below rather than for k itself; beyond the horizon, DESIGN.md
// §2's band argument carries the claim. The sharp bounds — the stack's
// (2·depth − 1)·(width − 1) from that band argument, the queue's
// depth·(width − 1) observed regime (monotone ceilings, see the pinned
// maxima table) — are refutable at these horizons for most geometries and
// are asserted on every run. Each certified run's witness trace is
// re-validated through the independent sequential checkers.
func TestConformanceExhaustiveExplorer(t *testing.T) {
	explorers := []struct {
		name    string
		explore func(ExploreConfig) (ExploreResult, error)
		sharp   func(w, d, s int) int
	}{
		{"stack", ExploreStack, func(w, d, _ int) int { return (2*d - 1) * (w - 1) }},
		{"queue", ExploreQueue, func(w, d, _ int) int { return d * (w - 1) }},
	}
	for _, ex := range explorers {
		for w := 1; w <= 3; w++ {
			maxOps := []int{0, 12, 18, 13}[w]
			for d := 1; d <= 4; d++ {
				for s := 1; s <= d; s++ {
					t.Run(fmt.Sprintf("%s/w%dd%ds%d", ex.name, w, d, s), func(t *testing.T) {
						k := (2*d + s) * (w - 1)
						r, err := ex.explore(ExploreConfig{Width: w, Depth: d, Shift: s, MaxOps: maxOps, Bound: k})
						if err != nil {
							t.Fatal(err)
						}
						if !r.Certified() {
							t.Fatalf("k=%d refuted by minimal trace:\n%v", k, r.Counterexample)
						}
						if r.MaxDistance > k {
							t.Fatalf("max distance %d exceeds k=%d without counterexample", r.MaxDistance, k)
						}
						if sharp := ex.sharp(w, d, s); r.MaxDistance > sharp {
							t.Fatalf("max distance %d exceeds the sharp %s bound %d (DESIGN.md §2)", r.MaxDistance, ex.name, sharp)
						}
						if len(r.Witness) > 0 {
							ops := stepsToOps(r.Witness)
							max, err := CheckKOutOfOrder(ops, k)
							if ex.name == "queue" {
								max, err = CheckKOutOfOrderFIFO(ops, k)
							}
							if err != nil {
								t.Fatalf("witness replay: %v", err)
							}
							if max != r.MaxDistance {
								t.Fatalf("witness replay realises %d, explorer reported %d", max, r.MaxDistance)
							}
						}
					})
				}
			}
		}
	}
}
