package seqspec

// Predicate adapters for the schedule shrinker (internal/director): the
// shrinker minimises a failing schedule against "does the replayed history
// still fail?", and the natural failure notions in this repository are the
// k-distance checkers. These constructors bind a checker budget into a
// plain func so the director side never needs to know checker types —
// compose them with quality-side or custom predicates by plain boolean
// logic over the replayed outcome.

// FailsKStack returns a predicate over interval histories that holds when
// KStackChecker rejects the history at the given budget — a conservation,
// causality or distance violation. This is the planted-violation predicate:
// budget one below a run's realised strain makes that run's schedule fail,
// and the shrinker then minimises toward the choices realising the strain.
func FailsKStack(k, allowance int64) func([]IntervalOp) bool {
	return func(ops []IntervalOp) bool {
		_, err := (KStackChecker{K: k, Allowance: allowance}).Check(ops)
		return err != nil
	}
}

// FailsKFIFO is FailsKStack's queue counterpart.
func FailsKFIFO(k, allowance int64) func([]IntervalOp) bool {
	return func(ops []IntervalOp) bool {
		_, err := (KFIFOChecker{K: k, Allowance: allowance}).Check(ops)
		return err != nil
	}
}
