package seqspec

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxLinearizableOps bounds CheckLinearizableLIFO's input size; the search
// is worst-case exponential (linearizability checking is NP-hard), so it
// is a unit-test tool for small concurrent histories, complementing the
// necessary-condition checkers that scale to millions of operations.
const MaxLinearizableOps = 24

// CheckLinearizableLIFO decides whether the interval history has a
// linearization that is a legal strict-stack (LIFO) sequential history: a
// total order of the operations that respects real-time precedence
// (op a before op b whenever a.End < b.Begin) and replays correctly on the
// sequential stack model, with pops returning exactly the model top and
// empty pops occurring only on an empty model.
//
// It performs a memoized depth-first search over linearization prefixes.
// Histories longer than MaxLinearizableOps are rejected with an error.
func CheckLinearizableLIFO(ops []IntervalOp) error {
	n := len(ops)
	if n == 0 {
		return nil
	}
	if n > MaxLinearizableOps {
		return fmt.Errorf("seqspec: history of %d ops exceeds the exhaustive-check limit %d", n, MaxLinearizableOps)
	}
	for i, op := range ops {
		if op.Begin > op.End {
			return fmt.Errorf("seqspec: op %d malformed interval", i)
		}
	}

	// visited memoizes failed states: key = chosen-set mask + stack content.
	visited := make(map[string]bool)
	stateKey := func(mask uint32, stack []uint64) string {
		var sb strings.Builder
		sb.WriteString(strconv.FormatUint(uint64(mask), 16))
		sb.WriteByte(':')
		for _, v := range stack {
			sb.WriteString(strconv.FormatUint(v, 36))
			sb.WriteByte(',')
		}
		return sb.String()
	}

	var dfs func(mask uint32, stack []uint64) bool
	dfs = func(mask uint32, stack []uint64) bool {
		if mask == uint32(1<<n)-1 {
			return true
		}
		key := stateKey(mask, stack)
		if visited[key] {
			return false
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			// Real-time: i may linearize next only if no other pending op
			// finished strictly before i began.
			eligible := true
			for j := 0; j < n; j++ {
				if j == i || mask&(1<<j) != 0 {
					continue
				}
				if ops[j].End < ops[i].Begin {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			op := ops[i]
			switch {
			case op.Kind == OpPush:
				// Copy: sibling branches must not share backing arrays.
				next := make([]uint64, len(stack)+1)
				copy(next, stack)
				next[len(stack)] = op.Value
				if dfs(mask|1<<i, next) {
					return true
				}
			case op.Empty:
				if len(stack) == 0 && dfs(mask|1<<i, stack) {
					return true
				}
			default: // pop of a value
				if len(stack) > 0 && stack[len(stack)-1] == op.Value {
					next := make([]uint64, len(stack)-1)
					copy(next, stack)
					if dfs(mask|1<<i, next) {
						return true
					}
				}
			}
		}
		visited[key] = true
		return false
	}

	if !dfs(0, nil) {
		return fmt.Errorf("seqspec: history of %d ops has no LIFO linearization", n)
	}
	return nil
}

// CheckLinearizableFIFO is CheckLinearizableLIFO's queue counterpart: it
// decides whether the interval history (OpPush = enqueue, OpPop = dequeue)
// has a real-time-respecting linearization that is a legal strict FIFO
// queue history.
func CheckLinearizableFIFO(ops []IntervalOp) error {
	n := len(ops)
	if n == 0 {
		return nil
	}
	if n > MaxLinearizableOps {
		return fmt.Errorf("seqspec: history of %d ops exceeds the exhaustive-check limit %d", n, MaxLinearizableOps)
	}
	for i, op := range ops {
		if op.Begin > op.End {
			return fmt.Errorf("seqspec: op %d malformed interval", i)
		}
	}
	visited := make(map[string]bool)
	stateKey := func(mask uint32, q []uint64) string {
		var sb strings.Builder
		sb.WriteString(strconv.FormatUint(uint64(mask), 16))
		sb.WriteByte(':')
		for _, v := range q {
			sb.WriteString(strconv.FormatUint(v, 36))
			sb.WriteByte(',')
		}
		return sb.String()
	}
	var dfs func(mask uint32, q []uint64) bool
	dfs = func(mask uint32, q []uint64) bool {
		if mask == uint32(1<<n)-1 {
			return true
		}
		key := stateKey(mask, q)
		if visited[key] {
			return false
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			eligible := true
			for j := 0; j < n; j++ {
				if j == i || mask&(1<<j) != 0 {
					continue
				}
				if ops[j].End < ops[i].Begin {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			op := ops[i]
			switch {
			case op.Kind == OpPush:
				next := make([]uint64, len(q)+1)
				copy(next, q)
				next[len(q)] = op.Value
				if dfs(mask|1<<i, next) {
					return true
				}
			case op.Empty:
				if len(q) == 0 && dfs(mask|1<<i, q) {
					return true
				}
			default: // dequeue of a value: must match the front
				if len(q) > 0 && q[0] == op.Value {
					next := make([]uint64, len(q)-1)
					copy(next, q[1:])
					if dfs(mask|1<<i, next) {
						return true
					}
				}
			}
		}
		visited[key] = true
		return false
	}
	if !dfs(0, nil) {
		return fmt.Errorf("seqspec: history of %d ops has no FIFO linearization", n)
	}
	return nil
}
