package seqspec

import "testing"

func TestIntervalSanityAcceptsLegal(t *testing.T) {
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPush, Value: 2, Begin: 2, End: 3},
		{Kind: OpPop, Value: 2, Begin: 4, End: 5},
		{Kind: OpPop, Value: 1, Begin: 6, End: 7},
		{Kind: OpPop, Empty: true, Begin: 8, End: 9},
	}
	if err := CheckIntervalSanity(ops, 0); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

func TestIntervalSanityRejectsMalformed(t *testing.T) {
	ops := []IntervalOp{{Kind: OpPush, Value: 1, Begin: 5, End: 3}}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("Begin > End accepted")
	}
}

func TestIntervalSanityRejectsDuplicatePush(t *testing.T) {
	ops := []IntervalOp{
		{Kind: OpPush, Value: 7, Begin: 0, End: 1},
		{Kind: OpPush, Value: 7, Begin: 2, End: 3},
	}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("duplicate push accepted")
	}
}

func TestIntervalSanityRejectsDoublePop(t *testing.T) {
	ops := []IntervalOp{
		{Kind: OpPush, Value: 7, Begin: 0, End: 1},
		{Kind: OpPop, Value: 7, Begin: 2, End: 3},
		{Kind: OpPop, Value: 7, Begin: 4, End: 5},
	}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("double pop accepted")
	}
}

func TestIntervalSanityRejectsPhantomPop(t *testing.T) {
	ops := []IntervalOp{{Kind: OpPop, Value: 9, Begin: 0, End: 1}}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("phantom pop accepted")
	}
}

func TestIntervalSanityRejectsTimeTravel(t *testing.T) {
	// Pop responds before the push of its value is invoked.
	ops := []IntervalOp{
		{Kind: OpPop, Value: 1, Begin: 0, End: 1},
		{Kind: OpPush, Value: 1, Begin: 5, End: 6},
	}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("time-travelling pop accepted")
	}
}

func TestIntervalSanityAcceptsOverlappingPushPop(t *testing.T) {
	// Pop overlaps the push it observes: legal (elimination does this).
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 10},
		{Kind: OpPop, Value: 1, Begin: 2, End: 5},
	}
	if err := CheckIntervalSanity(ops, 0); err != nil {
		t.Fatalf("overlapping elimination pair rejected: %v", err)
	}
}

func TestIntervalSanityRejectsFalseEmpty(t *testing.T) {
	// Value 1 provably present across the empty pop.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPop, Empty: true, Begin: 5, End: 6},
		{Kind: OpPop, Value: 1, Begin: 8, End: 9},
	}
	if err := CheckIntervalSanity(ops, 0); err == nil {
		t.Fatal("provably false empty accepted")
	}
	// The same history is legal for a k>=1 relaxed structure.
	if err := CheckIntervalSanity(ops, 1); err != nil {
		t.Fatalf("relaxed empty rejected with slack: %v", err)
	}
}

func TestIntervalSanityEmptyDuringConcurrentPush(t *testing.T) {
	// Push overlaps the empty pop: the pop may linearize first; legal.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 10},
		{Kind: OpPop, Empty: true, Begin: 2, End: 5},
		{Kind: OpPop, Value: 1, Begin: 12, End: 13},
	}
	if err := CheckIntervalSanity(ops, 0); err != nil {
		t.Fatalf("empty concurrent with push rejected: %v", err)
	}
}

func TestIntervalSanityEmptyAfterRemoval(t *testing.T) {
	// Value removed before the empty pop began: legal.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPop, Value: 1, Begin: 2, End: 3},
		{Kind: OpPop, Empty: true, Begin: 4, End: 5},
	}
	if err := CheckIntervalSanity(ops, 0); err != nil {
		t.Fatalf("legal empty rejected: %v", err)
	}
}
