package seqspec

import (
	"strings"
	"testing"
)

func TestKStackCheckerSequentialMatchesExactChecker(t *testing.T) {
	// On a history with no overlapping intervals the concurrent checker
	// must agree exactly with the sequential one: same maximum distance,
	// zero slack, same accept/reject verdicts.
	ops := []Op{
		{Kind: OpPush, Value: 1}, {Kind: OpPush, Value: 2}, {Kind: OpPush, Value: 3},
		{Kind: OpPush, Value: 4}, {Kind: OpPush, Value: 5},
		{Kind: OpPop, Value: 3}, // distance 2 (5 and 4 above)
		{Kind: OpPop, Value: 5}, // distance 0
		{Kind: OpPop, Value: 1}, // distance 2 (4 and 2 above)
	}
	wantMax, err := CheckKOutOfOrder(ops, 2)
	if err != nil {
		t.Fatalf("exact checker rejects the fixture: %v", err)
	}
	rep, err := (KStackChecker{K: 2}).Check(SequentialIntervals(ops))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDistance != wantMax || rep.MaxSlack != 0 || rep.MaxStrain != wantMax {
		t.Fatalf("report %+v, want max=%d slack=0 strain=%d", rep, wantMax, wantMax)
	}
	// With no overlap there is no slack: k=1 must now fail, as it does for
	// the exact checker.
	if _, err := (KStackChecker{K: 1}).Check(SequentialIntervals(ops)); err == nil {
		t.Fatal("sequential history at distance 2 passed k=1")
	}
}

func TestKStackCheckerAllowanceBudget(t *testing.T) {
	ops := SequentialIntervals([]Op{
		{Kind: OpPush, Value: 1}, {Kind: OpPush, Value: 2}, {Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 1}, // distance 2
	})
	if _, err := (KStackChecker{K: 0}).Check(ops); err == nil {
		t.Fatal("distance 2 passed k=0 with no allowance")
	}
	if _, err := (KStackChecker{K: 0, Allowance: 2}).Check(ops); err != nil {
		t.Fatalf("allowance 2 did not absorb distance 2: %v", err)
	}
}

func TestKStackCheckerOverlapSlack(t *testing.T) {
	// Three pushes whose intervals all overlap the pop: their placement
	// relative to the pop is ambiguous, so a distance up to the slack is
	// admitted even at k=0.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPush, Value: 2, Begin: 2, End: 10},
		{Kind: OpPush, Value: 3, Begin: 3, End: 10},
		{Kind: OpPop, Value: 1, Begin: 4, End: 10},
	}
	rep, err := (KStackChecker{K: 0}).Check(ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDistance != 2 {
		t.Fatalf("measured distance %d, want 2", rep.MaxDistance)
	}
	if rep.MaxStrain != 0 {
		t.Fatalf("strain %d, want 0 (all displacement explained by overlap)", rep.MaxStrain)
	}
}

func TestKStackCheckerPopOfConcurrentPush(t *testing.T) {
	// The pop's Begin precedes the push's Begin but the intervals overlap:
	// a legal linearization places the push immediately before the pop.
	ops := []IntervalOp{
		{Kind: OpPop, Value: 1, Begin: 0, End: 10},
		{Kind: OpPush, Value: 1, Begin: 5, End: 6},
	}
	if _, err := (KStackChecker{K: 0}).Check(ops); err != nil {
		t.Fatalf("pop of concurrently pushed value rejected: %v", err)
	}
	// Entirely disjoint (push begins after the pop returned): causality
	// violation.
	ops[1].Begin, ops[1].End = 20, 21
	if _, err := (KStackChecker{K: 0}).Check(ops); err == nil {
		t.Fatal("time-travelling pop accepted")
	}
}

func TestKStackCheckerConservation(t *testing.T) {
	dup := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPop, Value: 1, Begin: 2, End: 3},
		{Kind: OpPop, Value: 1, Begin: 4, End: 5},
	}
	if _, err := (KStackChecker{K: 10}).Check(dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate pop not rejected: %v", err)
	}
	phantom := []IntervalOp{
		{Kind: OpPop, Value: 9, Begin: 0, End: 1},
	}
	if _, err := (KStackChecker{K: 10}).Check(phantom); err == nil || !strings.Contains(err.Error(), "never pushed") {
		t.Fatalf("phantom pop not rejected: %v", err)
	}
	twice := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 1},
		{Kind: OpPush, Value: 1, Begin: 2, End: 3},
	}
	if _, err := (KStackChecker{K: 10}).Check(twice); err == nil || !strings.Contains(err.Error(), "pushed twice") {
		t.Fatalf("duplicate push not rejected: %v", err)
	}
}

func TestKStackCheckerEmptyPops(t *testing.T) {
	// Empty report with three items present sequentially: needs k >= 3.
	ops := SequentialIntervals([]Op{
		{Kind: OpPush, Value: 1}, {Kind: OpPush, Value: 2}, {Kind: OpPush, Value: 3},
		{Kind: OpPop, Empty: true},
	})
	if _, err := (KStackChecker{K: 2}).Check(ops); err == nil {
		t.Fatal("false empty accepted at k=2")
	}
	rep, err := (KStackChecker{K: 3}).Check(ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EmptyPops != 1 {
		t.Fatalf("report %+v, want EmptyPops=1", rep)
	}
}

func TestKFIFOCheckerSequential(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1}, {Kind: OpPush, Value: 2}, {Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 3}, // distance 2 from the front
		{Kind: OpPop, Value: 1}, // distance 0
		{Kind: OpPop, Value: 2}, // distance 0
	}
	wantMax, err := CheckKOutOfOrderFIFO(ops, 2)
	if err != nil {
		t.Fatalf("exact checker rejects the fixture: %v", err)
	}
	rep, err := (KFIFOChecker{K: 2}).Check(SequentialIntervals(ops))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDistance != wantMax || rep.MaxStrain != wantMax {
		t.Fatalf("report %+v, want max=strain=%d", rep, wantMax)
	}
	if _, err := (KFIFOChecker{K: 1}).Check(SequentialIntervals(ops)); err == nil {
		t.Fatal("FIFO distance 2 passed k=1")
	}
}

func TestKCheckerRejectsNegativeKAndBadIntervals(t *testing.T) {
	if _, err := (KStackChecker{K: -1}).Check(nil); err == nil {
		t.Fatal("negative k accepted")
	}
	bad := []IntervalOp{{Kind: OpPush, Value: 1, Begin: 5, End: 1}}
	if _, err := (KStackChecker{K: 0}).Check(bad); err == nil {
		t.Fatal("malformed interval accepted")
	}
	if _, err := (KFIFOChecker{K: 0}).Check(bad); err == nil {
		t.Fatal("malformed interval accepted by FIFO checker")
	}
}
