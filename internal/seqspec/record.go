package seqspec

import (
	"sync"
	"sync/atomic"

	"stack2d/internal/xrand"
)

// This file provides the shared recording utilities behind every
// interval-history test in the repository: a Recorder that timestamps
// operations on a shared logical clock into per-worker shards, and the two
// canonical concurrent drivers (deterministic micro-histories for the
// exhaustive linearizability checkers, seeded random histories for the
// statistical checkers). The per-structure test files — treiber, msqueue,
// elimination, and the harness's reconfiguration hammers — used to carry
// copy-pasted versions of this scaffolding; they now share this one.

// Recorder collects a concurrent interval history. Operations are
// timestamped with a shared atomic logical clock (one tick at invocation,
// one at response) and appended to per-worker shards, so recording adds no
// lock contention beyond the clock itself. Obtain one with NewRecorder;
// worker indices must stay within the constructed range, and each worker
// index must be used by one goroutine at a time.
type Recorder struct {
	clock  atomic.Int64
	label  atomic.Uint64
	shards [][]IntervalOp
}

// NewRecorder returns a Recorder with shards for the given number of
// workers (plus one extra shard, index = workers, conventionally used by a
// sequential prologue/epilogue such as a drain).
func NewRecorder(workers int) *Recorder {
	return &Recorder{shards: make([][]IntervalOp, workers+1)}
}

// Label allocates a fresh unique value for a push; labels start at 1.
func (r *Recorder) Label() uint64 { return r.label.Add(1) }

// Push records push(label) with a freshly allocated label on the worker's
// shard and returns the label.
func (r *Recorder) Push(worker int, push func(uint64)) uint64 {
	v := r.Label()
	r.PushLabeled(worker, v, func() { push(v) })
	return v
}

// PushLabeled records a push of a caller-chosen label; do is the operation
// itself. Use when the caller owns the label scheme (e.g. the harness's
// per-worker label partitioning); labels must still be unique across the
// history for the checkers to accept it.
func (r *Recorder) PushLabeled(worker int, label uint64, do func()) {
	begin := r.clock.Add(1)
	do()
	r.shards[worker] = append(r.shards[worker], IntervalOp{
		Kind: OpPush, Value: label, Begin: begin, End: r.clock.Add(1),
	})
}

// Pop records pop() on the worker's shard and returns its result.
func (r *Recorder) Pop(worker int, pop func() (uint64, bool)) (uint64, bool) {
	begin := r.clock.Add(1)
	v, ok := pop()
	r.shards[worker] = append(r.shards[worker], IntervalOp{
		Kind: OpPop, Value: v, Empty: !ok, Begin: begin, End: r.clock.Add(1),
	})
	return v, ok
}

// Drain records pops on the worker's shard until one reports empty,
// completing the history so conservation checks see every value. Call it
// from a single goroutine after the concurrent phase.
func (r *Recorder) Drain(worker int, pop func() (uint64, bool)) {
	for {
		if _, ok := r.Pop(worker, pop); !ok {
			return
		}
	}
}

// History returns the recorded operations, shard by shard. The order is
// NOT a linearization — use the interval fields; per-worker program order
// is preserved within each shard.
func (r *Recorder) History() []IntervalOp {
	var all []IntervalOp
	for _, s := range r.shards {
		all = append(all, s...)
	}
	return all
}

// WorkerFuncs is one worker's operation closures for the concurrent
// drivers below — a per-goroutine handle where the structure needs one, or
// the shared structure's methods where it does not.
type WorkerFuncs struct {
	Push func(uint64)
	Pop  func() (uint64, bool)
}

// CollectMicroHistory runs the canonical micro-history round used by the
// exhaustive linearizability tests: `workers` goroutines each issue
// opsPerW operations in the fixed alternating pattern ((worker+i)%2 == 0
// is a push), then a sequential drain (worker index = workers) completes
// the history. newWorker is called once per goroutine, including the
// drain's. Keep workers·opsPerW small: the exhaustive checkers reject
// histories beyond MaxLinearizableOps.
func CollectMicroHistory(workers, opsPerW int, newWorker func(w int) WorkerFuncs) []IntervalOp {
	r := NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fns := newWorker(w)
			for i := 0; i < opsPerW; i++ {
				if (w+i)%2 == 0 {
					r.Push(w, fns.Push)
				} else {
					r.Pop(w, fns.Pop)
				}
			}
		}(w)
	}
	wg.Wait()
	r.Drain(workers, newWorker(workers).Pop)
	return r.History()
}

// CollectRandomHistory runs the canonical randomized concurrent recording
// used by the interval-sanity and k-distance tests: `workers` goroutines
// each issue opsPerW operations, choosing push or pop by a per-worker
// seeded RNG (P(push) = 1/2, deterministic across runs), then a sequential
// drain (worker index = workers) completes the history.
func CollectRandomHistory(workers, opsPerW int, newWorker func(w int) WorkerFuncs) []IntervalOp {
	r := NewRecorder(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fns := newWorker(w)
			rng := xrand.New(uint64(w) + 1)
			for i := 0; i < opsPerW; i++ {
				if rng.Bool() {
					r.Push(w, fns.Push)
				} else {
					r.Pop(w, fns.Pop)
				}
			}
		}(w)
	}
	wg.Wait()
	r.Drain(workers, newWorker(workers).Pop)
	return r.History()
}
