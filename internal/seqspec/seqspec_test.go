package seqspec

import (
	"testing"
	"testing/quick"
)

func TestModelBasicLIFO(t *testing.T) {
	var m Model
	if _, ok := m.Pop(); ok {
		t.Fatal("pop on empty model returned ok")
	}
	m.Push(1)
	m.Push(2)
	m.Push(3)
	if got := m.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if v, ok := m.Peek(); !ok || v != 3 {
		t.Fatalf("Peek = %d,%v want 3,true", v, ok)
	}
	for _, want := range []uint64{3, 2, 1} {
		v, ok := m.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, want)
		}
	}
	if _, ok := m.Pop(); ok {
		t.Fatal("pop after draining returned ok")
	}
}

func TestModelSnapshotIsCopy(t *testing.T) {
	var m Model
	m.Push(10)
	m.Push(20)
	snap := m.Snapshot()
	snap[0] = 999
	if v, _ := m.Pop(); v != 20 {
		t.Fatalf("mutating snapshot affected model: got %d", v)
	}
	if v, _ := m.Pop(); v != 10 {
		t.Fatalf("mutating snapshot affected model bottom: got %d", v)
	}
}

func TestKModelWindow(t *testing.T) {
	m := KModel{K: 2}
	for v := uint64(1); v <= 5; v++ {
		m.Push(v)
	}
	// Top is 5; window of k=2 allows popping 5, 4, or 3.
	if d, found := m.PopObserved(3); !found || d != 2 {
		t.Fatalf("PopObserved(3) = %d,%v want 2,true", d, found)
	}
	// 2 is now at distance 3 from top (stack: 1 2 4 5) -> outside window.
	if _, found := m.PopObserved(1); found {
		t.Fatal("PopObserved(1) found item outside the k-window")
	}
	if d, found := m.PopObserved(5); !found || d != 0 {
		t.Fatalf("PopObserved(5) = %d,%v want 0,true", d, found)
	}
}

func TestKModelPopAnywhere(t *testing.T) {
	m := KModel{K: 0}
	for v := uint64(1); v <= 4; v++ {
		m.Push(v)
	}
	if d, found := m.PopAnywhere(1); !found || d != 3 {
		t.Fatalf("PopAnywhere(1) = %d,%v want 3,true", d, found)
	}
	if _, found := m.PopAnywhere(99); found {
		t.Fatal("PopAnywhere found a value never pushed")
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d after one removal from 4, want 3", m.Len())
	}
}

func TestCheckLIFOAcceptsLegal(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPop, Value: 2},
		{Kind: OpPop, Value: 1},
		{Kind: OpPop, Empty: true},
	}
	if err := CheckLIFO(ops); err != nil {
		t.Fatalf("legal history rejected: %v", err)
	}
}

func TestCheckLIFORejectsOutOfOrder(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPop, Value: 1}, // violates LIFO
	}
	if err := CheckLIFO(ops); err == nil {
		t.Fatal("out-of-order pop accepted by CheckLIFO")
	}
}

func TestCheckLIFORejectsBogusEmpty(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPop, Empty: true},
	}
	if err := CheckLIFO(ops); err == nil {
		t.Fatal("empty pop with non-empty model accepted")
	}
}

func TestCheckLIFORejectsPopFromEmpty(t *testing.T) {
	ops := []Op{{Kind: OpPop, Value: 7}}
	if err := CheckLIFO(ops); err == nil {
		t.Fatal("pop of a value from empty model accepted")
	}
}

func TestCheckKOutOfOrderAcceptsWithinBound(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 1}, // distance 2
	}
	maxDist, err := CheckKOutOfOrder(ops, 2)
	if err != nil {
		t.Fatalf("within-bound history rejected: %v", err)
	}
	if maxDist != 2 {
		t.Fatalf("maxDist = %d, want 2", maxDist)
	}
}

func TestCheckKOutOfOrderRejectsBeyondBound(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 1}, // distance 2 > k=1
	}
	if _, err := CheckKOutOfOrder(ops, 1); err == nil {
		t.Fatal("beyond-bound pop accepted")
	}
}

func TestCheckKOutOfOrderEmptyRules(t *testing.T) {
	// k=2: empty return legal with <=2 items present.
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPop, Empty: true},
	}
	if _, err := CheckKOutOfOrder(ops, 2); err != nil {
		t.Fatalf("legal relaxed empty rejected: %v", err)
	}
	// but illegal with 3 items present.
	ops = []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Empty: true},
	}
	if _, err := CheckKOutOfOrder(ops, 2); err == nil {
		t.Fatal("empty pop with k+1 items accepted")
	}
}

func TestMeasureDistances(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 2},    // distance 1
		{Kind: OpPop, Value: 3},    // distance 0
		{Kind: OpPop, Empty: true}, // ignored
		{Kind: OpPop, Value: 1},    // distance 0
	}
	dists, err := MeasureDistances(ops)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0}
	if len(dists) != len(want) {
		t.Fatalf("got %v, want %v", dists, want)
	}
	for i := range want {
		if dists[i] != want[i] {
			t.Fatalf("got %v, want %v", dists, want)
		}
	}
}

func TestMeasureDistancesDetectsPhantomPop(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPop, Value: 2},
	}
	if _, err := MeasureDistances(ops); err == nil {
		t.Fatal("phantom pop not detected")
	}
}

// Property: for any push sequence followed by pops in reverse order,
// CheckLIFO accepts.
func TestCheckLIFOPropertyReversedPops(t *testing.T) {
	f := func(vals []uint64) bool {
		ops := make([]Op, 0, 2*len(vals))
		for _, v := range vals {
			ops = append(ops, Op{Kind: OpPush, Value: v})
		}
		for i := len(vals) - 1; i >= 0; i-- {
			ops = append(ops, Op{Kind: OpPop, Value: vals[i]})
		}
		return CheckLIFO(ops) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strict LIFO histories are k-out-of-order legal for every k>=0
// and MeasureDistances reports all-zero distances.
func TestStrictHistoriesAreKLegal(t *testing.T) {
	f := func(vals []uint64, kRaw uint8) bool {
		k := int(kRaw % 8)
		ops := make([]Op, 0, 2*len(vals))
		for _, v := range vals {
			ops = append(ops, Op{Kind: OpPush, Value: v})
		}
		for i := len(vals) - 1; i >= 0; i-- {
			ops = append(ops, Op{Kind: OpPop, Value: vals[i]})
		}
		maxDist, err := CheckKOutOfOrder(ops, k)
		if err != nil || maxDist != 0 {
			return false
		}
		dists, err := MeasureDistances(ops)
		if err != nil {
			return false
		}
		for _, d := range dists {
			if d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindString(t *testing.T) {
	if OpPush.String() != "push" || OpPop.String() != "pop" {
		t.Fatal("OpKind.String mismatch")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatalf("unknown kind formatting: %s", OpKind(9).String())
	}
}
