package seqspec

import "fmt"

// This file implements the exhaustive sequential state-space explorer that
// settles the Theorem-1 constant (DESIGN.md §2): a breadth-first search over
// *every* push/pop interleaving of the 2D-window discipline at a small
// geometry, tracking the realised out-of-order distance of each pop. Because
// the search is exhaustive over all nondeterministic choices (which window-
// valid sub-stack an operation lands on), the result is a machine-checked
// certificate: either no history within the horizon exceeds the claimed
// bound, or a minimal-length counterexample trace is produced (BFS order
// guarantees minimality).
//
// The model is the sequential semantics of internal/core's window
// discipline, restated independently of the implementation so the
// certificate checks the *specification*, not the code that is being
// specified:
//
//   - Push is valid on sub-stack i while count(i) < Global; when no
//     sub-stack is valid (all counts equal Global), Global rises by shift —
//     exactly once, after which every sub-stack is valid again.
//   - Pop is valid on sub-stack i while count(i) > max(0, Global − depth);
//     when no sub-stack is valid the window lowers by shift (floored at
//     depth) until one is, or reports empty at the floor. In the sequential
//     model an empty report is exact (all counts are zero), so empty pops
//     neither change state nor need a legality budget.
//
// Within a sub-stack LIFO order is strict; the distance of a pop is the
// number of strictly younger items resident anywhere in the structure —
// the k-out-of-order measure of Henzinger et al. (POPL'13).

// ExploreConfig parameterises one exhaustive exploration.
type ExploreConfig struct {
	// Width, Depth, Shift are the window geometry under test, with the same
	// validity constraints as core.Config (width >= 1, 1 <= shift <= depth).
	Width int
	Depth int
	Shift int
	// MaxOps is the exploration horizon: every history of at most MaxOps
	// operations is covered. The state space is finite for any horizon and
	// the search memoises canonical states, so the cost grows with the
	// number of distinct reachable states, not the number of histories.
	MaxOps int
	// Bound is the claimed k to certify. Negative means measure only (no
	// counterexample search, full horizon always explored).
	Bound int
}

// ExploreStep is one operation of an explorer trace. Values are push
// labels (the n-th push carries label n), so a printed trace is a directly
// replayable script; internally the search stores items as dense age
// ranks for canonicalisation, and relabelSteps converts a reconstructed
// trace back to labels.
type ExploreStep struct {
	Push  bool
	Sub   int // sub-stack the operation landed on
	Value int // pushed label / popped label (labels count pushes from 1)
	Dist  int // pop only: realised out-of-order distance
}

func (s ExploreStep) String() string {
	if s.Push {
		return fmt.Sprintf("push %d -> sub %d", s.Value, s.Sub)
	}
	return fmt.Sprintf("pop sub %d = %d (dist %d)", s.Sub, s.Value, s.Dist)
}

// ExploreResult is the outcome of an exhaustive exploration.
type ExploreResult struct {
	// MaxDistance is the largest pop distance realised by any explored
	// history; with a non-negative Bound the search stops at the first
	// violation, so MaxDistance is then the violating distance.
	MaxDistance int
	// States is the number of distinct canonical states visited.
	States int
	// Ops is the horizon actually explored (= config MaxOps unless a
	// counterexample cut the search short).
	Ops int
	// Counterexample is a minimal-length history whose final pop exceeds
	// Bound, or nil when every history within the horizon respects it.
	Counterexample []ExploreStep
	// Witness is a history realising MaxDistance (always set when any pop
	// occurred); for a certification run it doubles as evidence of how
	// close the explored histories come to the claimed bound.
	Witness []ExploreStep
}

// Certified reports whether the exploration completed its horizon without
// exceeding the claimed bound.
func (r ExploreResult) Certified() bool { return r.Counterexample == nil }

// maxExploreOps caps the horizon so that item age ranks fit the compact
// one-byte state encoding (ranks < resident items <= pushes <= MaxOps).
// Exhaustive exploration is hopeless long before this limit anyway.
const maxExploreOps = 200

// exploreState is one canonical state of the abstract machine. Sub-stack
// items are age ranks (0 = oldest item currently resident); ranks are
// recomputed after every pop so states reached by different histories with
// the same relative age structure coincide.
type exploreState struct {
	global int
	subs   [][]int16
}

// key serialises the state for memoisation. Ranks are dense (< resident
// item count <= MaxOps) and Global is bounded by depth + shift·pushes, so
// both fit comfortably in a compact byte encoding: two bytes of Global,
// then each sub-stack's ranks terminated by 0xff (ranks are capped well
// below 0xff by the exploration horizon limit enforced in ExploreStack).
func (st *exploreState) key() string {
	n := 3 + len(st.subs)
	for _, sub := range st.subs {
		n += len(sub)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, byte(st.global), byte(st.global>>8))
	for _, sub := range st.subs {
		for _, it := range sub {
			buf = append(buf, byte(it))
		}
		buf = append(buf, 0xff)
	}
	return string(buf)
}

// clone deep-copies the state.
func (st *exploreState) clone() *exploreState {
	n := &exploreState{global: st.global, subs: make([][]int16, len(st.subs))}
	for i, sub := range st.subs {
		n.subs[i] = append([]int16(nil), sub...)
	}
	return n
}

// countItems counts the items resident across sub-structure rank lists;
// shared by the stack and queue explorers.
func countItems(subs [][]int16) int {
	n := 0
	for _, sub := range subs {
		n += len(sub)
	}
	return n
}

// dropRank re-densifies age ranks after the item with rank `removed` was
// popped: ranks are dense 0..n-1 before a pop, so removing one rank shifts
// every larger rank down by one. (Pushes keep density by construction: the
// new item takes rank n.) Shared by the stack and queue explorers.
func dropRank(subs [][]int16, removed int16) {
	for _, sub := range subs {
		for i, it := range sub {
			if it > removed {
				sub[i] = it - 1
			}
		}
	}
}

// traceNode records how a state was first reached, for minimal trace
// reconstruction.
type traceNode struct {
	parent string
	step   ExploreStep
}

// rebuildTrace reconstructs the minimal history that first reached `key`
// by walking the BFS parent links, appends the final step, and rewrites
// rank Values into push labels; shared by the stack and queue explorers.
func rebuildTrace(seen map[string]traceNode, startKey, key string, last ExploreStep) []ExploreStep {
	var steps []ExploreStep
	for key != startKey {
		n := seen[key]
		steps = append(steps, n.step)
		key = n.parent
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return relabelSteps(append(steps, last))
}

// relabelSteps rewrites a reconstructed trace's Values from the search's
// internal age ranks to push labels (n-th push = label n), replaying the
// trace to track which label each rank denotes at every pop. Both
// explorers store a pop's Value as the popped item's rank among residents
// (0 = oldest) and a push's Value as an arbitrary placeholder.
func relabelSteps(steps []ExploreStep) []ExploreStep {
	var resident []int // index = age rank among residents, value = label
	pushes := 0
	for i, s := range steps {
		if s.Push {
			pushes++
			steps[i].Value = pushes
			resident = append(resident, pushes)
		} else {
			steps[i].Value = resident[s.Value]
			resident = append(resident[:s.Value], resident[s.Value+1:]...)
		}
	}
	return steps
}

// ExploreStack exhaustively explores the sequential 2D-Stack model. See the
// file comment for the semantics; the search is breadth-first in history
// length, so a returned counterexample is minimal.
func ExploreStack(cfg ExploreConfig) (ExploreResult, error) {
	var res ExploreResult
	switch {
	case cfg.Width < 1:
		return res, fmt.Errorf("seqspec: explore Width must be >= 1, got %d", cfg.Width)
	case cfg.Depth < 1:
		return res, fmt.Errorf("seqspec: explore Depth must be >= 1, got %d", cfg.Depth)
	case cfg.Shift < 1 || cfg.Shift > cfg.Depth:
		return res, fmt.Errorf("seqspec: explore Shift must be in [1, Depth=%d], got %d", cfg.Depth, cfg.Shift)
	case cfg.MaxOps < 1 || cfg.MaxOps > maxExploreOps:
		return res, fmt.Errorf("seqspec: explore MaxOps must be in [1, %d], got %d", maxExploreOps, cfg.MaxOps)
	}

	start := &exploreState{global: cfg.Depth, subs: make([][]int16, cfg.Width)}
	startKey := start.key()
	seen := map[string]traceNode{startKey: {}}
	frontier := []*exploreState{start}

	var witnessKey string
	var witnessStep ExploreStep

	for depth := 0; depth < cfg.MaxOps && len(frontier) > 0; depth++ {
		var next []*exploreState
		for _, st := range frontier {
			stKey := st.key()

			// Pushes. If every sub-stack is at the ceiling the window
			// rises once (deterministic), then every sub-stack is valid.
			pushGlobal := st.global
			anyValid := false
			for _, sub := range st.subs {
				if len(sub) < pushGlobal {
					anyValid = true
					break
				}
			}
			if !anyValid {
				pushGlobal += cfg.Shift
			}
			newRank := int16(countItems(st.subs)) // denser than any existing rank
			for i, sub := range st.subs {
				if len(sub) >= pushGlobal {
					continue
				}
				ns := st.clone()
				ns.global = pushGlobal
				ns.subs[i] = append(ns.subs[i], newRank)
				// Ranks stay dense after a push (new item = max rank), so no
				// re-densify needed. Value is assigned by relabelSteps when a
				// trace is reconstructed.
				step := ExploreStep{Push: true, Sub: i}
				k := ns.key()
				if _, dup := seen[k]; !dup {
					seen[k] = traceNode{parent: stKey, step: step}
					next = append(next, ns)
				}
			}

			// Pops. Lower the window (deterministically) until some
			// sub-stack is poppable or the floor is reached; an empty
			// report at the floor changes nothing and is exact, so it is
			// not a transition.
			popGlobal := st.global
			for {
				floor := popGlobal - cfg.Depth
				if floor < 0 {
					floor = 0
				}
				anyValid = false
				for _, sub := range st.subs {
					if len(sub) > floor {
						anyValid = true
						break
					}
				}
				if anyValid || popGlobal <= cfg.Depth {
					break
				}
				popGlobal -= cfg.Shift
				if popGlobal < cfg.Depth {
					popGlobal = cfg.Depth
				}
			}
			if anyValid {
				floor := popGlobal - cfg.Depth
				if floor < 0 {
					floor = 0
				}
				for i, sub := range st.subs {
					if len(sub) <= floor {
						continue
					}
					top := sub[len(sub)-1]
					dist := 0
					for _, other := range st.subs {
						for _, it := range other {
							if it > top {
								dist++
							}
						}
					}
					ns := st.clone()
					ns.global = popGlobal
					ns.subs[i] = ns.subs[i][:len(ns.subs[i])-1]
					dropRank(ns.subs, top)
					// Value carries the popped item's age rank until
					// relabelSteps rewrites it into a push label.
					step := ExploreStep{Push: false, Sub: i, Value: int(top), Dist: dist}
					if dist > res.MaxDistance {
						res.MaxDistance = dist
						witnessKey, witnessStep = stKey, step
					}
					if cfg.Bound >= 0 && dist > cfg.Bound {
						res.Counterexample = rebuildTrace(seen, startKey, stKey, step)
						res.Witness = res.Counterexample
						res.States = len(seen)
						res.Ops = depth + 1
						return res, nil
					}
					k := ns.key()
					if _, dup := seen[k]; !dup {
						seen[k] = traceNode{parent: stKey, step: step}
						next = append(next, ns)
					}
				}
			}
		}
		frontier = next
		res.Ops = depth + 1
	}
	res.States = len(seen)
	if witnessKey != "" {
		res.Witness = rebuildTrace(seen, startKey, witnessKey, witnessStep)
	}
	return res, nil
}
