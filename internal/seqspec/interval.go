package seqspec

import "fmt"

// IntervalOp is one operation with its real-time interval, recorded as
// ticks of a shared monotonic counter read at invocation (Begin) and at
// response (End). Interval histories support checks that completion-order
// traces cannot express: real-time causality and provable non-emptiness.
type IntervalOp struct {
	Kind  OpKind
	Value uint64
	Empty bool
	Begin int64
	End   int64
}

// CheckIntervalSanity verifies necessary conditions for linearizability of
// a concurrent stack (or queue) history with intervals:
//
//  1. Well-formedness: Begin <= End for every op.
//  2. Conservation: every popped value was pushed exactly once and popped
//     at most once.
//  3. Causality: no pop responds before the push of the value it returns
//     has been invoked (pop.End < push.Begin is impossible in any legal
//     linearization).
//  4. Empty sanity: a pop reporting empty must not run entirely inside a
//     window where more than `emptySlack` values are provably present —
//     pushed before the pop began and not taken until after it ended. Pass
//     emptySlack = 0 for strict structures and k for k-out-of-order ones.
//
// These are necessary, not sufficient, conditions — a full linearizability
// check is NP-hard in general — but they catch the practical failure
// classes: lost updates, duplicated pops, time-travelling values and false
// empties.
func CheckIntervalSanity(ops []IntervalOp, emptySlack int) error {
	type pushInfo struct {
		idx   int
		begin int64
		end   int64
	}
	pushes := make(map[uint64]pushInfo, len(ops)/2)
	popBegin := make(map[uint64]int64, len(ops)/2)
	popped := make(map[uint64]int, len(ops)/2)

	// Pass 1: well-formedness and push collection. Ops may arrive in any
	// order (per-worker histories concatenated), so pops are validated in a
	// second pass once every push is known.
	for i, op := range ops {
		if op.Begin > op.End {
			return fmt.Errorf("op %d: Begin %d > End %d", i, op.Begin, op.End)
		}
		if op.Kind == OpPush {
			if prev, dup := pushes[op.Value]; dup {
				return fmt.Errorf("op %d: value %d pushed twice (first at op %d)", i, op.Value, prev.idx)
			}
			pushes[op.Value] = pushInfo{idx: i, begin: op.Begin, end: op.End}
		}
	}

	// Pass 2: pop validation.
	for i, op := range ops {
		if op.Kind != OpPop || op.Empty {
			continue
		}
		if prev, dup := popped[op.Value]; dup {
			return fmt.Errorf("op %d: value %d popped twice (first at op %d)", i, op.Value, prev)
		}
		popped[op.Value] = i
		popBegin[op.Value] = op.Begin
		push, ok := pushes[op.Value]
		if !ok {
			return fmt.Errorf("op %d: value %d popped but never pushed", i, op.Value)
		}
		if op.End < push.begin {
			return fmt.Errorf("op %d: pop of %d responded at %d before its push was invoked at %d", i, op.Value, op.End, push.begin)
		}
	}

	// Empty sanity: count values provably present across each empty pop.
	for i, op := range ops {
		if op.Kind != OpPop || !op.Empty {
			continue
		}
		present := 0
		for v, push := range pushes {
			if push.end >= op.Begin {
				continue // push not provably complete before the empty pop
			}
			if pb, taken := popBegin[v]; taken && pb <= op.End {
				continue // may have been removed during/before the window
			}
			present++
		}
		if present > emptySlack {
			return fmt.Errorf("op %d: pop reported empty while %d values were provably present (allowed slack %d)", i, present, emptySlack)
		}
	}
	return nil
}
