package seqspec

import "testing"

func seqOp(kind OpKind, v uint64, empty bool, at *int64) IntervalOp {
	*at += 2
	return IntervalOp{Kind: kind, Value: v, Empty: empty, Begin: *at - 1, End: *at}
}

func TestLinearizableEmptyHistory(t *testing.T) {
	if err := CheckLinearizableLIFO(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizableSequentialLIFO(t *testing.T) {
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPush, 2, false, &clock),
		seqOp(OpPop, 2, false, &clock),
		seqOp(OpPop, 1, false, &clock),
		seqOp(OpPop, 0, true, &clock),
	}
	if err := CheckLinearizableLIFO(ops); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsSequentialFIFOOrder(t *testing.T) {
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPush, 2, false, &clock),
		seqOp(OpPop, 1, false, &clock), // FIFO order: illegal for a stack
	}
	if err := CheckLinearizableLIFO(ops); err == nil {
		t.Fatal("sequential FIFO history accepted as LIFO-linearizable")
	}
}

func TestAcceptsOverlapReordering(t *testing.T) {
	// push(1) and push(2) overlap; a pop after both may return either,
	// because the pushes can linearize in either order.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 10},
		{Kind: OpPush, Value: 2, Begin: 0, End: 10},
		{Kind: OpPop, Value: 1, Begin: 11, End: 12},
		{Kind: OpPop, Value: 2, Begin: 13, End: 14},
	}
	if err := CheckLinearizableLIFO(ops); err != nil {
		t.Fatalf("overlapping pushes reordering rejected: %v", err)
	}
}

func TestRejectsRealTimeViolation(t *testing.T) {
	// push(1) completes, THEN push(2) completes, THEN two pops in
	// sequence return 1 then 2 — impossible for a stack in real time.
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPush, 2, false, &clock),
		seqOp(OpPop, 1, false, &clock),
		seqOp(OpPop, 2, false, &clock),
	}
	if err := CheckLinearizableLIFO(ops); err == nil {
		t.Fatal("real-time LIFO violation accepted")
	}
}

func TestAcceptsEliminationPair(t *testing.T) {
	// A pop overlapping a push may take its value even while older items
	// sit on the stack: push(9) linearizes immediately before pop(9).
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		{Kind: OpPush, Value: 9, Begin: clock + 1, End: clock + 10},
		{Kind: OpPop, Value: 9, Begin: clock + 2, End: clock + 9},
		{Kind: OpPop, Value: 1, Begin: clock + 20, End: clock + 21},
	}
	if err := CheckLinearizableLIFO(ops); err != nil {
		t.Fatalf("elimination pair rejected: %v", err)
	}
}

func TestRejectsFalseEmptyLinearization(t *testing.T) {
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPop, 0, true, &clock), // empty after a completed push: illegal
		seqOp(OpPop, 1, false, &clock),
	}
	if err := CheckLinearizableLIFO(ops); err == nil {
		t.Fatal("false empty accepted")
	}
}

func TestAcceptsEmptyConcurrentWithPush(t *testing.T) {
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 10},
		{Kind: OpPop, Empty: true, Begin: 1, End: 5}, // may linearize first
		{Kind: OpPop, Value: 1, Begin: 11, End: 12},
	}
	if err := CheckLinearizableLIFO(ops); err != nil {
		t.Fatalf("legal concurrent empty rejected: %v", err)
	}
}

func TestRejectsMalformedInterval(t *testing.T) {
	ops := []IntervalOp{{Kind: OpPush, Value: 1, Begin: 5, End: 1}}
	if err := CheckLinearizableLIFO(ops); err == nil {
		t.Fatal("malformed interval accepted")
	}
}

func TestRejectsOversizeHistory(t *testing.T) {
	ops := make([]IntervalOp, MaxLinearizableOps+1)
	for i := range ops {
		ops[i] = IntervalOp{Kind: OpPush, Value: uint64(i), Begin: int64(2 * i), End: int64(2*i + 1)}
	}
	if err := CheckLinearizableLIFO(ops); err == nil {
		t.Fatal("oversize history accepted")
	}
}

func TestDeepInterleavingSolvable(t *testing.T) {
	// All ops mutually overlapping: any order is allowed by real time; the
	// checker must find one of the many valid LIFO linearizations.
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 100},
		{Kind: OpPush, Value: 2, Begin: 0, End: 100},
		{Kind: OpPush, Value: 3, Begin: 0, End: 100},
		{Kind: OpPop, Value: 2, Begin: 0, End: 100},
		{Kind: OpPop, Value: 3, Begin: 0, End: 100},
		{Kind: OpPop, Value: 1, Begin: 0, End: 100},
		{Kind: OpPop, Empty: true, Begin: 0, End: 100},
	}
	if err := CheckLinearizableLIFO(ops); err != nil {
		t.Fatalf("solvable interleaving rejected: %v", err)
	}
}

func TestFIFOLinearizableSequential(t *testing.T) {
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPush, 2, false, &clock),
		seqOp(OpPop, 1, false, &clock),
		seqOp(OpPop, 2, false, &clock),
		seqOp(OpPop, 0, true, &clock),
	}
	if err := CheckLinearizableFIFO(ops); err != nil {
		t.Fatal(err)
	}
}

func TestFIFORejectsLIFOOrder(t *testing.T) {
	var clock int64
	ops := []IntervalOp{
		seqOp(OpPush, 1, false, &clock),
		seqOp(OpPush, 2, false, &clock),
		seqOp(OpPop, 2, false, &clock), // LIFO order: illegal for a queue
	}
	if err := CheckLinearizableFIFO(ops); err == nil {
		t.Fatal("sequential LIFO history accepted as FIFO-linearizable")
	}
}

func TestFIFOAcceptsOverlapReorder(t *testing.T) {
	ops := []IntervalOp{
		{Kind: OpPush, Value: 1, Begin: 0, End: 10},
		{Kind: OpPush, Value: 2, Begin: 0, End: 10},
		{Kind: OpPop, Value: 2, Begin: 11, End: 12},
		{Kind: OpPop, Value: 1, Begin: 13, End: 14},
	}
	if err := CheckLinearizableFIFO(ops); err != nil {
		t.Fatalf("overlapping enqueues reordering rejected: %v", err)
	}
}

func TestFIFORejectsOversize(t *testing.T) {
	ops := make([]IntervalOp, MaxLinearizableOps+1)
	for i := range ops {
		ops[i] = IntervalOp{Kind: OpPush, Value: uint64(i), Begin: int64(2 * i), End: int64(2*i + 1)}
	}
	if err := CheckLinearizableFIFO(ops); err == nil {
		t.Fatal("oversize history accepted")
	}
}

func TestFIFOEmptyHistoryAndMalformed(t *testing.T) {
	if err := CheckLinearizableFIFO(nil); err != nil {
		t.Fatal(err)
	}
	bad := []IntervalOp{{Kind: OpPush, Value: 1, Begin: 9, End: 1}}
	if err := CheckLinearizableFIFO(bad); err == nil {
		t.Fatal("malformed interval accepted")
	}
}
