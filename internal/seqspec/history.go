package seqspec

import "fmt"

// OpKind discriminates the two stack operations in a recorded history.
type OpKind uint8

// Operation kinds.
const (
	OpPush OpKind = iota
	OpPop
)

func (k OpKind) String() string {
	switch k {
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one completed stack operation in linearization order. For OpPop,
// Empty records a Pop that returned no value.
type Op struct {
	Kind  OpKind
	Value uint64
	Empty bool
}

// CheckLIFO replays ops against the strict sequential Model and returns an
// error describing the first divergence, or nil if the history is a legal
// strict-LIFO history.
func CheckLIFO(ops []Op) error {
	var m Model
	for i, op := range ops {
		switch op.Kind {
		case OpPush:
			m.Push(op.Value)
		case OpPop:
			want, ok := m.Pop()
			if op.Empty {
				if ok {
					return fmt.Errorf("op %d: pop reported empty but model holds %d items (top %d)", i, m.Len()+1, want)
				}
				continue
			}
			if !ok {
				return fmt.Errorf("op %d: pop returned %d but model is empty", i, op.Value)
			}
			if want != op.Value {
				return fmt.Errorf("op %d: pop returned %d, strict LIFO requires %d", i, op.Value, want)
			}
		default:
			return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	return nil
}

// CheckKOutOfOrder replays ops against KModel with bound k. It returns the
// maximum observed pop distance and an error if any pop exceeded the bound
// or returned a value not present in the model.
//
// Empty pops are accepted whenever the model holds at most k items: a k-out-
// of-order stack may miss up to k reachable items (they can be "below the
// window"), so an empty return is only illegal when more than k items are
// present.
func CheckKOutOfOrder(ops []Op, k int) (maxDist int, err error) {
	m := KModel{K: k}
	for i, op := range ops {
		switch op.Kind {
		case OpPush:
			m.Push(op.Value)
		case OpPop:
			if op.Empty {
				if m.Len() > k {
					return maxDist, fmt.Errorf("op %d: pop reported empty with %d items present (bound %d)", i, m.Len(), k)
				}
				continue
			}
			dist, found := m.PopObserved(op.Value)
			if !found {
				// Retry without the window to give a better diagnostic.
				if d, anywhere := m.PopAnywhere(op.Value); anywhere {
					return maxDist, fmt.Errorf("op %d: pop of %d at distance %d exceeds k=%d", i, op.Value, d, k)
				}
				return maxDist, fmt.Errorf("op %d: pop returned %d which is not in the stack", i, op.Value)
			}
			if dist > maxDist {
				maxDist = dist
			}
		}
	}
	return maxDist, nil
}

// MeasureDistances replays ops, removing popped values wherever they are,
// and returns every observed pop distance in order. It fails only when a
// popped value does not exist, i.e. on a correctness (not quality) bug.
func MeasureDistances(ops []Op) ([]int, error) {
	m := KModel{K: -1} // K unused by PopAnywhere
	dists := make([]int, 0, len(ops)/2)
	for i, op := range ops {
		switch op.Kind {
		case OpPush:
			m.Push(op.Value)
		case OpPop:
			if op.Empty {
				continue
			}
			d, found := m.PopAnywhere(op.Value)
			if !found {
				return nil, fmt.Errorf("op %d: pop returned %d which was never pushed or already popped", i, op.Value)
			}
			dists = append(dists, d)
		}
	}
	return dists, nil
}
