package seqspec

import "testing"

// Combined Allowance accounting (DESIGN.md §9): a history spanning both a
// width shrink and a backend swap is budgeted K + Allowance where Allowance
// is the SUM of the shrink displacement and the swap displacement — the two
// migrations compose additively. Until now only the hammers exercised the
// composed budget; these tables pin the checker arithmetic exactly at the
// boundary.

// stackDistanceHistory builds a sequential history whose single measured
// pop realises exactly dist: push labels 1..dist+1, then pop label 1 (dist
// younger items resident).
func stackDistanceHistory(dist int) []Op {
	ops := make([]Op, 0, dist+2)
	for v := 1; v <= dist+1; v++ {
		ops = append(ops, Op{Kind: OpPush, Value: uint64(v)})
	}
	return append(ops, Op{Kind: OpPop, Value: 1})
}

// fifoDistanceHistory is the queue counterpart: push labels 1..dist+1, then
// dequeue label dist+1 (dist older items ahead of it).
func fifoDistanceHistory(dist int) []Op {
	ops := make([]Op, 0, dist+2)
	for v := 1; v <= dist+1; v++ {
		ops = append(ops, Op{Kind: OpPush, Value: uint64(v)})
	}
	return append(ops, Op{Kind: OpPop, Value: uint64(dist + 1)})
}

func TestCombinedAllowanceBudget(t *testing.T) {
	cases := []struct {
		name       string
		k          int64
		shrinkDisp int64 // shrink displacement active in the history
		swapDisp   int64 // swap displacement active in the same history
	}{
		{"no-allowance", 9, 0, 0},
		{"shrink-only", 9, 4, 0},
		{"swap-only", 9, 0, 5},
		{"shrink-and-swap", 9, 4, 5},
		{"strict-structure-migrations-only", 0, 3, 2},
		{"large-composed", 27, 12, 9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			allow := tc.shrinkDisp + tc.swapDisp
			budget := int(tc.k + allow)

			// A history realising exactly the composed budget passes...
			hist := SequentialIntervals(stackDistanceHistory(budget))
			rep, err := (KStackChecker{K: tc.k, Allowance: allow}).Check(hist)
			if err != nil {
				t.Fatalf("distance %d must pass k=%d allowance=%d: %v", budget, tc.k, allow, err)
			}
			if rep.MaxDistance != budget || rep.MaxStrain != budget {
				t.Fatalf("report %+v, want distance=strain=%d", rep, budget)
			}

			// ...one more fails...
			over := SequentialIntervals(stackDistanceHistory(budget + 1))
			if _, err := (KStackChecker{K: tc.k, Allowance: allow}).Check(over); err == nil {
				t.Fatalf("distance %d must fail k=%d allowance=%d", budget+1, tc.k, allow)
			}

			// ...and misattributing the composed allowance to K alone is NOT
			// equivalent for the failing case's diagnosis, but the arithmetic
			// boundary must agree: K+allowance and (K+allowance, 0) admit the
			// same histories.
			if _, err := (KStackChecker{K: tc.k + allow}).Check(over); err == nil {
				t.Fatalf("folded budget must reject distance %d too", budget+1)
			}

			// FIFO checker: same composition, same boundary.
			fhist := SequentialIntervals(fifoDistanceHistory(budget))
			frep, err := (KFIFOChecker{K: tc.k, Allowance: allow}).Check(fhist)
			if err != nil {
				t.Fatalf("FIFO distance %d must pass k=%d allowance=%d: %v", budget, tc.k, allow, err)
			}
			if frep.MaxDistance != budget {
				t.Fatalf("FIFO report %+v, want distance %d", frep, budget)
			}
			fover := SequentialIntervals(fifoDistanceHistory(budget + 1))
			if _, err := (KFIFOChecker{K: tc.k, Allowance: allow}).Check(fover); err == nil {
				t.Fatalf("FIFO distance %d must fail k=%d allowance=%d", budget+1, tc.k, allow)
			}
		})
	}
}

// BufferAllowance composes additively with K and Allowance on both
// checkers, and the helper implements the DESIGN.md §11 bound 3·P·cap.
func TestBufferAllowanceBudget(t *testing.T) {
	if got := BufferAllowance(4, 16); got != 192 {
		t.Fatalf("BufferAllowance(4,16) = %d, want 192", got)
	}
	if got := BufferAllowance(0, 16); got != 0 {
		t.Fatalf("BufferAllowance(0,16) = %d, want 0", got)
	}
	if got := BufferAllowance(-1, 16); got != 0 {
		t.Fatalf("BufferAllowance(-1,16) = %d, want 0 (clamped)", got)
	}
	const k, shrink = 5, 3
	buf := BufferAllowance(2, 2) // 12
	budget := int(k + shrink + int64(buf))

	hist := SequentialIntervals(stackDistanceHistory(budget))
	if _, err := (KStackChecker{K: k, Allowance: shrink, BufferAllowance: buf}).Check(hist); err != nil {
		t.Fatalf("distance %d must pass k=%d allowance=%d buffer=%d: %v", budget, k, shrink, buf, err)
	}
	over := SequentialIntervals(stackDistanceHistory(budget + 1))
	if _, err := (KStackChecker{K: k, Allowance: shrink, BufferAllowance: buf}).Check(over); err == nil {
		t.Fatalf("distance %d must fail k=%d allowance=%d buffer=%d", budget+1, k, shrink, buf)
	}

	fhist := SequentialIntervals(fifoDistanceHistory(budget))
	if _, err := (KFIFOChecker{K: k, Allowance: shrink, BufferAllowance: buf}).Check(fhist); err != nil {
		t.Fatalf("FIFO distance %d must pass with composed budget: %v", budget, err)
	}
	fover := SequentialIntervals(fifoDistanceHistory(budget + 1))
	if _, err := (KFIFOChecker{K: k, Allowance: shrink, BufferAllowance: buf}).Check(fover); err == nil {
		t.Fatalf("FIFO distance %d must fail with composed budget", budget+1)
	}
}

// The allowance also widens the empty-report budget: a pop may report empty
// with up to K+Allowance items provably present (displaced items are
// invisible to a window walk mid-migration).
func TestCombinedAllowanceEmptyBudget(t *testing.T) {
	const k, shrink, swap = 2, 2, 1
	build := func(present int) []IntervalOp {
		ops := make([]Op, 0, present+1)
		for v := 1; v <= present; v++ {
			ops = append(ops, Op{Kind: OpPush, Value: uint64(v)})
		}
		ops = append(ops, Op{Kind: OpPop, Empty: true})
		return SequentialIntervals(ops)
	}
	chk := KStackChecker{K: k, Allowance: shrink + swap}
	if _, err := chk.Check(build(k + shrink + swap)); err != nil {
		t.Fatalf("empty report with %d present must pass: %v", k+shrink+swap, err)
	}
	if _, err := chk.Check(build(k + shrink + swap + 1)); err == nil {
		t.Fatalf("empty report with %d present must fail", k+shrink+swap+1)
	}
}
