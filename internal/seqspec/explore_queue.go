package seqspec

import "fmt"

// This file is the queue counterpart of explore.go: an exhaustive
// breadth-first exploration of the sequential 2D-Queue window discipline
// (internal/twodqueue), certifying its k-out-of-order FIFO bound the same
// way ExploreStack certifies the stack's.
//
// The abstract machine, restated independently of the implementation:
// each of `width` sub-queues carries two monotone counters — enqueues and
// dequeues completed — and there is one ceiling per end (GlobalEnq,
// GlobalDeq), both monotone non-decreasing.
//
//   - Enqueue is valid on sub-queue i while enqs(i) < GlobalEnq; when every
//     sub-queue is at the ceiling, GlobalEnq rises by shift (exactly once,
//     re-validating every sub-queue).
//   - Dequeue is productive on sub-queue i while deqs(i) < GlobalDeq and
//     the sub-queue is non-empty. When no sub-queue is productive but a
//     non-empty one sits at the dequeue ceiling, GlobalDeq rises by shift
//     and the search repeats; when every sub-queue is empty the queue
//     reports empty (exact in the sequential model).
//
// Only the gaps ceiling − counter matter to the dynamics, never the
// absolute counts, so states are canonicalised on those gaps — this is
// what keeps the reachable state space independent of how far the
// monotone ceilings have travelled. The distance of a dequeue is the
// number of strictly older items still resident anywhere — the
// k-out-of-order FIFO measure mirrored by KFIFOModel.

// exploreQState is one canonical 2D-Queue state: per sub-queue the gap to
// each ceiling plus the resident items as dense age ranks (front first).
type exploreQState struct {
	enqGap []int16 // GlobalEnq − enqs(i); in [0, max(depth, shift)]
	deqGap []int16 // GlobalDeq − deqs(i)
	subs   [][]int16
}

func (st *exploreQState) key() string {
	n := 1 + 3*len(st.subs)
	for _, sub := range st.subs {
		n += len(sub)
	}
	buf := make([]byte, 0, n)
	for i := range st.subs {
		buf = append(buf, byte(st.enqGap[i]), byte(st.deqGap[i]))
		for _, it := range st.subs[i] {
			buf = append(buf, byte(it))
		}
		buf = append(buf, 0xff)
	}
	return string(buf)
}

func (st *exploreQState) clone() *exploreQState {
	n := &exploreQState{
		enqGap: append([]int16(nil), st.enqGap...),
		deqGap: append([]int16(nil), st.deqGap...),
		subs:   make([][]int16, len(st.subs)),
	}
	for i, sub := range st.subs {
		n.subs[i] = append([]int16(nil), sub...)
	}
	return n
}

// ExploreQueue exhaustively explores the sequential 2D-Queue model
// (OpPush = enqueue, OpPop = dequeue in the returned traces). Semantics in
// the file comment; breadth-first order makes a returned counterexample
// minimal.
func ExploreQueue(cfg ExploreConfig) (ExploreResult, error) {
	var res ExploreResult
	switch {
	case cfg.Width < 1:
		return res, fmt.Errorf("seqspec: explore Width must be >= 1, got %d", cfg.Width)
	case cfg.Depth < 1:
		return res, fmt.Errorf("seqspec: explore Depth must be >= 1, got %d", cfg.Depth)
	case cfg.Shift < 1 || cfg.Shift > cfg.Depth:
		return res, fmt.Errorf("seqspec: explore Shift must be in [1, Depth=%d], got %d", cfg.Depth, cfg.Shift)
	case cfg.MaxOps < 1 || cfg.MaxOps > maxExploreOps:
		return res, fmt.Errorf("seqspec: explore MaxOps must be in [1, %d], got %d", maxExploreOps, cfg.MaxOps)
	}

	start := &exploreQState{
		enqGap: make([]int16, cfg.Width),
		deqGap: make([]int16, cfg.Width),
		subs:   make([][]int16, cfg.Width),
	}
	for i := 0; i < cfg.Width; i++ {
		// Both ceilings start at depth with zero counters.
		start.enqGap[i] = int16(cfg.Depth)
		start.deqGap[i] = int16(cfg.Depth)
	}
	startKey := start.key()
	seen := map[string]traceNode{startKey: {}}
	frontier := []*exploreQState{start}

	var witnessKey string
	var witnessStep ExploreStep

	for depth := 0; depth < cfg.MaxOps && len(frontier) > 0; depth++ {
		var next []*exploreQState
		for _, st := range frontier {
			stKey := st.key()

			// Enqueues: raise the ceiling once if every sub-queue is at it.
			enqBump := int16(0)
			anyValid := false
			for _, gap := range st.enqGap {
				if gap > 0 {
					anyValid = true
					break
				}
			}
			if !anyValid {
				enqBump = int16(cfg.Shift)
			}
			newRank := int16(countItems(st.subs))
			for i := range st.subs {
				if st.enqGap[i]+enqBump <= 0 {
					continue
				}
				ns := st.clone()
				for j := range ns.enqGap {
					ns.enqGap[j] += enqBump
				}
				ns.enqGap[i]--
				ns.subs[i] = append(ns.subs[i], newRank)
				// Value is assigned by relabelSteps at trace reconstruction.
				step := ExploreStep{Push: true, Sub: i}
				k := ns.key()
				if _, dup := seen[k]; !dup {
					seen[k] = traceNode{parent: stKey, step: step}
					next = append(next, ns)
				}
			}

			// Dequeues: raise the dequeue ceiling while no sub-queue is
			// productive but a non-empty one sits at the ceiling; all-empty
			// states report empty exactly (not a transition).
			deqBump := int16(0)
			for {
				productive := false
				blocked := false
				for i := range st.subs {
					if len(st.subs[i]) == 0 {
						continue
					}
					if st.deqGap[i]+deqBump > 0 {
						productive = true
						break
					}
					blocked = true
				}
				if productive || !blocked {
					anyValid = productive
					break
				}
				deqBump += int16(cfg.Shift)
			}
			if anyValid {
				for i := range st.subs {
					if len(st.subs[i]) == 0 || st.deqGap[i]+deqBump <= 0 {
						continue
					}
					front := st.subs[i][0]
					dist := 0
					for _, other := range st.subs {
						for _, it := range other {
							if it < front {
								dist++
							}
						}
					}
					ns := st.clone()
					for j := range ns.deqGap {
						ns.deqGap[j] += deqBump
					}
					ns.deqGap[i]--
					ns.subs[i] = append([]int16(nil), ns.subs[i][1:]...)
					dropRank(ns.subs, front)
					// Value carries the dequeued item's age rank until
					// relabelSteps rewrites it into a push label.
					step := ExploreStep{Push: false, Sub: i, Value: int(front), Dist: dist}
					if dist > res.MaxDistance {
						res.MaxDistance = dist
						witnessKey, witnessStep = stKey, step
					}
					if cfg.Bound >= 0 && dist > cfg.Bound {
						res.Counterexample = rebuildTrace(seen, startKey, stKey, step)
						res.Witness = res.Counterexample
						res.States = len(seen)
						res.Ops = depth + 1
						return res, nil
					}
					k := ns.key()
					if _, dup := seen[k]; !dup {
						seen[k] = traceNode{parent: stKey, step: step}
						next = append(next, ns)
					}
				}
			}
		}
		frontier = next
		res.Ops = depth + 1
	}
	res.States = len(seen)
	if witnessKey != "" {
		res.Witness = rebuildTrace(seen, startKey, witnessKey, witnessStep)
	}
	return res, nil
}
