package seqspec

import "fmt"

// FIFOModel is a plain sequential queue over uint64 labels, the strict
// specification of the 2D-Queue extension (see internal/twodqueue). The
// zero value is an empty queue.
type FIFOModel struct {
	items []uint64
	front int // index of the logical front within items
}

// Enqueue appends v at the back.
func (m *FIFOModel) Enqueue(v uint64) { m.items = append(m.items, v) }

// Dequeue removes and returns the front item; ok is false on empty.
func (m *FIFOModel) Dequeue() (v uint64, ok bool) {
	if m.front == len(m.items) {
		return 0, false
	}
	v = m.items[m.front]
	m.front++
	m.compact()
	return v, true
}

// Len reports the number of stored items.
func (m *FIFOModel) Len() int { return len(m.items) - m.front }

func (m *FIFOModel) compact() {
	if m.front > 1024 && m.front*2 > len(m.items) {
		m.items = append(m.items[:0], m.items[m.front:]...)
		m.front = 0
	}
}

// KFIFOModel is the k-out-of-order queue specification: Dequeue may return
// any of the k+1 frontmost items.
type KFIFOModel struct {
	K     int
	items []uint64
}

// Enqueue appends v at the back.
func (m *KFIFOModel) Enqueue(v uint64) { m.items = append(m.items, v) }

// DequeueObserved removes v, requiring it to be within K of the front, and
// returns its distance from the front (0 = strict FIFO).
func (m *KFIFOModel) DequeueObserved(v uint64) (dist int, found bool) {
	hi := len(m.items)
	if m.K >= 0 && m.K+1 < hi {
		hi = m.K + 1
	}
	for i := 0; i < hi; i++ {
		if m.items[i] == v {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return i, true
		}
	}
	return 0, false
}

// DequeueAnywhere removes v wherever it is, returning its distance from the
// front; used to measure rather than enforce relaxation.
func (m *KFIFOModel) DequeueAnywhere(v uint64) (dist int, found bool) {
	for i := 0; i < len(m.items); i++ {
		if m.items[i] == v {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return i, true
		}
	}
	return 0, false
}

// Len reports the number of stored items.
func (m *KFIFOModel) Len() int { return len(m.items) }

// CheckKOutOfOrderFIFO replays ops (OpPush = enqueue, OpPop = dequeue)
// against the k-out-of-order queue specification, mirroring
// CheckKOutOfOrder for stacks: every dequeue must return an item within k
// of the front, and empty returns are legal only with at most k items
// present.
func CheckKOutOfOrderFIFO(ops []Op, k int) (maxDist int, err error) {
	m := KFIFOModel{K: k}
	for i, op := range ops {
		switch op.Kind {
		case OpPush:
			m.Enqueue(op.Value)
		case OpPop:
			if op.Empty {
				if m.Len() > k {
					return maxDist, fmt.Errorf("op %d: dequeue reported empty with %d items present (bound %d)", i, m.Len(), k)
				}
				continue
			}
			dist, found := m.DequeueObserved(op.Value)
			if !found {
				if d, anywhere := m.DequeueAnywhere(op.Value); anywhere {
					return maxDist, fmt.Errorf("op %d: dequeue of %d at distance %d exceeds k=%d", i, op.Value, d, k)
				}
				return maxDist, fmt.Errorf("op %d: dequeue returned %d which is not in the queue", i, op.Value)
			}
			if dist > maxDist {
				maxDist = dist
			}
		}
	}
	return maxDist, nil
}

// MeasureDistancesFIFO replays ops, removing dequeued values wherever they
// are, and returns every observed dequeue distance from the front.
func MeasureDistancesFIFO(ops []Op) ([]int, error) {
	m := KFIFOModel{K: -1}
	dists := make([]int, 0, len(ops)/2)
	for i, op := range ops {
		switch op.Kind {
		case OpPush:
			m.Enqueue(op.Value)
		case OpPop:
			if op.Empty {
				continue
			}
			d, found := m.DequeueAnywhere(op.Value)
			if !found {
				return nil, fmt.Errorf("op %d: dequeue returned %d which was never enqueued or already dequeued", i, op.Value)
			}
			dists = append(dists, d)
		}
	}
	return dists, nil
}
