package seqspec

import (
	"fmt"
	"sort"
)

// This file provides the relaxation-distance checkers for *concurrent*
// histories: KStackChecker and KFIFOChecker take a recorded interval
// history and verify every pop/dequeue against a claimed k-out-of-order
// bound. They complement the two existing levels of checking — the
// sequential replay checkers (CheckKOutOfOrder and friends, exact but
// single-threaded) and the exhaustive linearizability search
// (CheckLinearizable*, complete but limited to micro-histories) — with a
// distance check that scales to millions of concurrent operations.
//
// A concurrent history does not determine a unique linearization, so the
// realised distance of one pop is not a single number: it depends on where
// the overlapping operations are placed. The checkers therefore replay the
// history in invocation (Begin) order — a valid linearization candidate
// under the recording conventions used throughout this repository — and
// charge each pop a *measurement slack*: operations whose intervals
// overlap the pop (their position relative to the pop is ambiguous) and
// pushes whose intervals overlap the popped value's push (their age
// relative to the popped value is ambiguous) can each displace the
// measured distance by at most one position. A distance within
// k + allowance + slack is therefore consistent with SOME linearization
// respecting the bound; a distance beyond it is not. This makes the check
// a necessary condition with an explicitly accounted error bar, in the
// same spirit as DESIGN.md §2's "one position per in-flight operation"
// slack — not a full linearizability proof, which is NP-hard.
//
// The Allowance field absorbs displacement that is documented and bounded
// but outside the steady-state constant — the warm shrink handoff's
// ShrinkDisplacementBound (DESIGN.md §6) being the intended use.

// KDistanceReport summarises a checker run over one history.
type KDistanceReport struct {
	// Pops is the number of value-returning pops checked; EmptyPops the
	// number of empty reports checked.
	Pops      int
	EmptyPops int
	// MaxDistance is the largest measured out-of-order distance.
	MaxDistance int
	// MaxSlack is the largest per-operation measurement slack that was
	// available; useful for judging how concurrent the recording was.
	MaxSlack int
	// MaxStrain is the largest value of distance − slack over all pops —
	// the distance attributable to the structure itself rather than to
	// measurement ambiguity. A history respects the claimed bound when
	// MaxStrain <= K + Allowance.
	MaxStrain int
}

// KStackChecker verifies concurrent stack histories against a claimed
// k-out-of-order LIFO bound.
type KStackChecker struct {
	// K is the claimed bound — typically Config.K() of the geometry, or
	// the largest K() active during the recording when the geometry was
	// live-reconfigured (plus the transition sum where DESIGN.md §5
	// prescribes it for the queue).
	K int64
	// Allowance is extra displacement budget beyond K, e.g. the
	// structure's ShrinkDisplacementBound after width shrinks. Zero when
	// no reconfiguration displaced items.
	Allowance int64
	// BufferAllowance is the displacement budget for per-handle operation
	// buffering (core.Handle.SetOpBuffer): buffered operations linearize at
	// their publish/serve point, not at their API call, and the Begin-order
	// replay charges that deferral as distance. Set it with the
	// BufferAllowance helper when any recorded handle ran with an armed op
	// buffer; zero otherwise. See DESIGN.md §11 for the accounting argument
	// and its fairness premise.
	BufferAllowance int64
}

// Check replays the history and reports the realised distances. It fails
// on conservation violations (a popped value never pushed, or popped
// twice), on causality violations (a pop returning a value whose push
// began only after the pop returned), and on any pop or empty report whose
// distance exceeds K + Allowance + BufferAllowance + its measurement
// slack.
func (c KStackChecker) Check(ops []IntervalOp) (KDistanceReport, error) {
	return checkKDistance(ops, c.K, c.Allowance+c.BufferAllowance, false)
}

// KFIFOChecker is KStackChecker's queue counterpart: OpPush records an
// enqueue, OpPop a dequeue, and distances are measured from the FIFO
// front.
type KFIFOChecker struct {
	// K is the claimed bound; see KStackChecker.K. For histories spanning
	// a live reconfiguration DESIGN.md §5 prescribes summing the two
	// geometries' bounds (items placed under the old windows drain under
	// the new ones).
	K int64
	// Allowance is extra displacement budget beyond K; see
	// KStackChecker.Allowance.
	Allowance int64
	// BufferAllowance is the op-buffering displacement budget; see
	// KStackChecker.BufferAllowance.
	BufferAllowance int64
}

// Check replays the history and reports the realised distances; semantics
// as in KStackChecker.Check with FIFO distance measurement.
func (c KFIFOChecker) Check(ops []IntervalOp) (KDistanceReport, error) {
	return checkKDistance(ops, c.K, c.Allowance+c.BufferAllowance, true)
}

// BufferAllowance bounds the extra out-of-order distance attributable to
// per-handle operation buffering, for a recording with `handles` buffered
// handles of combined-publication threshold `cap` (DESIGN.md §11). The
// three terms, each at most handles·cap: pending residency (every handle
// may hold up to cap unpublished pushes), prefetch residency (up to cap
// popped-but-undelivered values), and delivery staleness (a served
// prefetched value aged by at most (handles−1)·cap foreign buffered ops
// since its refill, under the fairness premise that every handle publishes
// within its next cap own-operations). The bound also covers the batch
// primitives' deferred counter bump (one run ≤ cap uncounted operations
// per in-flight batch).
func BufferAllowance(handles, cap int) int64 {
	if handles < 0 || cap < 0 {
		return 0
	}
	return 3 * int64(handles) * int64(cap)
}

// SequentialIntervals converts a completion-order history into an
// interval history with pairwise non-overlapping intervals (op i occupies
// [2i, 2i+1]) — the zero-slack input form under which the concurrent
// checkers must agree exactly with the sequential replay checkers. The
// fuzz targets use it to cross-assert both checker families over every
// generated history.
func SequentialIntervals(ops []Op) []IntervalOp {
	out := make([]IntervalOp, len(ops))
	for i, op := range ops {
		out[i] = IntervalOp{
			Kind: op.Kind, Value: op.Value, Empty: op.Empty,
			Begin: int64(2 * i), End: int64(2*i + 1),
		}
	}
	return out
}

// CrossCheckKDistance replays a sequential stack history through
// KStackChecker with synthesized non-overlapping intervals and requires
// exact agreement with the sequential replay checker: a pass, the same
// maximum distance (wantMax, as returned by CheckKOutOfOrder), and zero
// measurement slack. A disagreement is a checker bug, not a structure
// bug.
func CrossCheckKDistance(ops []Op, k int64, wantMax int) error {
	rep, err := (KStackChecker{K: k}).Check(SequentialIntervals(ops))
	if err != nil {
		return fmt.Errorf("seqspec: KStackChecker disagrees with CheckKOutOfOrder: %w", err)
	}
	if rep.MaxDistance != wantMax || rep.MaxSlack != 0 {
		return fmt.Errorf("seqspec: KStackChecker report %+v, sequential checker max %d", rep, wantMax)
	}
	return nil
}

// overlapCounter answers "how many other operations' intervals intersect
// this one" in O(log n) per query, via sorted Begin/End arrays: the ops
// NOT overlapping [b, e] are exactly those with End < b plus those with
// Begin > e.
type overlapCounter struct {
	begins []int64
	ends   []int64
}

func newOverlapCounter(ops []IntervalOp) *overlapCounter {
	oc := &overlapCounter{
		begins: make([]int64, len(ops)),
		ends:   make([]int64, len(ops)),
	}
	for i, op := range ops {
		oc.begins[i] = op.Begin
		oc.ends[i] = op.End
	}
	sort.Slice(oc.begins, func(i, j int) bool { return oc.begins[i] < oc.begins[j] })
	sort.Slice(oc.ends, func(i, j int) bool { return oc.ends[i] < oc.ends[j] })
	return oc
}

// overlapping returns the number of operations other than the queried one
// whose interval intersects [b, e].
func (oc *overlapCounter) overlapping(b, e int64) int {
	endedBefore := sort.Search(len(oc.ends), func(i int) bool { return oc.ends[i] >= b })
	beganAfter := len(oc.begins) - sort.Search(len(oc.begins), func(i int) bool { return oc.begins[i] > e })
	return len(oc.begins) - endedBefore - beganAfter - 1
}

// checkKDistance is the shared engine of both checkers.
func checkKDistance(ops []IntervalOp, k, allowance int64, fifo bool) (KDistanceReport, error) {
	var rep KDistanceReport
	if k < 0 {
		return rep, fmt.Errorf("seqspec: claimed k must be >= 0, got %d", k)
	}
	for i, op := range ops {
		if op.Begin > op.End {
			return rep, fmt.Errorf("seqspec: op %d: Begin %d > End %d", i, op.Begin, op.End)
		}
	}

	// Replay in invocation order: a valid linearization candidate under
	// this repository's recording conventions (stable sort keeps each
	// worker's own operations in program order on Begin ties).
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ops[order[a]].Begin < ops[order[b]].Begin })

	pushAt := make(map[uint64]int, len(ops)/2)
	for i, op := range ops {
		if op.Kind != OpPush {
			continue
		}
		if prev, dup := pushAt[op.Value]; dup {
			return rep, fmt.Errorf("seqspec: value %d pushed twice (ops %d and %d)", op.Value, prev, i)
		}
		pushAt[op.Value] = i
	}

	oc := newOverlapCounter(ops)
	// pushOverlap caches, per value, the number of operations ambiguous
	// against its push — the age-classification half of the slack.
	pushOverlap := func(v uint64) int {
		p := ops[pushAt[v]]
		return oc.overlapping(p.Begin, p.End)
	}

	stack := KModel{K: -1}
	queue := KFIFOModel{K: -1}
	size := func() int {
		if fifo {
			return queue.Len()
		}
		return stack.Len()
	}
	insert := func(v uint64) {
		if fifo {
			queue.Enqueue(v)
		} else {
			stack.Push(v)
		}
	}
	remove := func(v uint64) (int, bool) {
		if fifo {
			return queue.DequeueAnywhere(v)
		}
		return stack.PopAnywhere(v)
	}

	consumed := make(map[int]bool)
	popped := make(map[uint64]int, len(ops)/2)
	for _, i := range order {
		op := ops[i]
		switch {
		case op.Kind == OpPush:
			if !consumed[i] {
				insert(op.Value)
			}
		case op.Empty:
			rep.EmptyPops++
			slack := oc.overlapping(op.Begin, op.End)
			if slack > rep.MaxSlack {
				rep.MaxSlack = slack
			}
			if present := int64(size()) - int64(slack); present > k+allowance {
				return rep, fmt.Errorf("seqspec: op %d: pop reported empty with %d items present (k=%d allowance=%d slack=%d)",
					i, size(), k, allowance, slack)
			}
		default:
			if prev, dup := popped[op.Value]; dup {
				return rep, fmt.Errorf("seqspec: value %d popped twice (ops %d and %d)", op.Value, prev, i)
			}
			popped[op.Value] = i
			pi, pushed := pushAt[op.Value]
			if !pushed {
				return rep, fmt.Errorf("seqspec: op %d: pop returned %d which was never pushed", i, op.Value)
			}
			dist, found := remove(op.Value)
			if !found {
				// The value's push has a later Begin: legal only if the two
				// operations overlap in real time, in which case the pair
				// linearizes back to back (distance 0 in that candidate).
				p := ops[pi]
				if p.Begin > op.End || consumed[pi] {
					return rep, fmt.Errorf("seqspec: op %d: pop returned %d before its push (op %d) was invoked", i, op.Value, pi)
				}
				consumed[pi] = true
				dist = 0
			}
			rep.Pops++
			slack := oc.overlapping(op.Begin, op.End) + pushOverlap(op.Value)
			if dist > rep.MaxDistance {
				rep.MaxDistance = dist
			}
			if slack > rep.MaxSlack {
				rep.MaxSlack = slack
			}
			if strain := dist - slack; strain > rep.MaxStrain {
				rep.MaxStrain = strain
			}
			if int64(dist) > k+allowance+int64(slack) {
				return rep, fmt.Errorf("seqspec: op %d: pop of %d at distance %d exceeds k=%d (allowance %d, slack %d)",
					i, op.Value, dist, k, allowance, slack)
			}
		}
	}
	return rep, nil
}
