package seqspec

import (
	"testing"
	"testing/quick"
)

func TestFIFOModelBasic(t *testing.T) {
	var m FIFOModel
	if _, ok := m.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	for v := uint64(1); v <= 5; v++ {
		m.Enqueue(v)
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d, want 5", m.Len())
	}
	for want := uint64(1); want <= 5; want++ {
		v, ok := m.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := m.Dequeue(); ok {
		t.Fatal("dequeue after drain returned ok")
	}
}

func TestFIFOModelCompaction(t *testing.T) {
	var m FIFOModel
	// Interleave enough enqueue/dequeue churn to trigger compaction.
	next := uint64(1)
	expect := uint64(1)
	for i := 0; i < 5000; i++ {
		m.Enqueue(next)
		next++
		v, ok := m.Dequeue()
		if !ok || v != expect {
			t.Fatalf("step %d: Dequeue = (%d,%v), want (%d,true)", i, v, ok, expect)
		}
		expect++
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after balanced churn", m.Len())
	}
}

func TestKFIFOWindow(t *testing.T) {
	m := KFIFOModel{K: 2}
	for v := uint64(1); v <= 5; v++ {
		m.Enqueue(v)
	}
	// Front is 1; window allows dequeuing 1, 2 or 3.
	if d, found := m.DequeueObserved(3); !found || d != 2 {
		t.Fatalf("DequeueObserved(3) = (%d,%v), want (2,true)", d, found)
	}
	if _, found := m.DequeueObserved(5); found {
		t.Fatal("DequeueObserved(5) found item outside window")
	}
	if d, found := m.DequeueObserved(1); !found || d != 0 {
		t.Fatalf("DequeueObserved(1) = (%d,%v), want (0,true)", d, found)
	}
}

func TestKFIFODequeueAnywhere(t *testing.T) {
	m := KFIFOModel{K: 0}
	for v := uint64(1); v <= 4; v++ {
		m.Enqueue(v)
	}
	if d, found := m.DequeueAnywhere(4); !found || d != 3 {
		t.Fatalf("DequeueAnywhere(4) = (%d,%v), want (3,true)", d, found)
	}
	if _, found := m.DequeueAnywhere(99); found {
		t.Fatal("found a value never enqueued")
	}
}

func TestCheckKOutOfOrderFIFO(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 3}, // distance 2
	}
	maxDist, err := CheckKOutOfOrderFIFO(ops, 2)
	if err != nil || maxDist != 2 {
		t.Fatalf("CheckKOutOfOrderFIFO = (%d, %v), want (2, nil)", maxDist, err)
	}
	if _, err := CheckKOutOfOrderFIFO(ops, 1); err == nil {
		t.Fatal("distance-2 dequeue accepted with k=1")
	}
}

func TestCheckKFIFOEmptyRules(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPop, Empty: true},
	}
	if _, err := CheckKOutOfOrderFIFO(ops, 1); err != nil {
		t.Fatalf("legal relaxed empty rejected: %v", err)
	}
	ops = []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPop, Empty: true},
	}
	if _, err := CheckKOutOfOrderFIFO(ops, 1); err == nil {
		t.Fatal("empty with k+1 items accepted")
	}
}

func TestCheckKFIFOPhantom(t *testing.T) {
	ops := []Op{{Kind: OpPop, Value: 9}}
	if _, err := CheckKOutOfOrderFIFO(ops, 4); err == nil {
		t.Fatal("phantom dequeue accepted")
	}
}

func TestMeasureDistancesFIFO(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1},
		{Kind: OpPush, Value: 2},
		{Kind: OpPush, Value: 3},
		{Kind: OpPop, Value: 2},    // distance 1
		{Kind: OpPop, Value: 1},    // distance 0
		{Kind: OpPop, Empty: true}, // ignored
		{Kind: OpPop, Value: 3},    // distance 0
	}
	dists, err := MeasureDistancesFIFO(ops)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0}
	for i := range want {
		if dists[i] != want[i] {
			t.Fatalf("dists = %v, want %v", dists, want)
		}
	}
	bad := []Op{{Kind: OpPop, Value: 7}}
	if _, err := MeasureDistancesFIFO(bad); err == nil {
		t.Fatal("phantom dequeue not detected")
	}
}

// Property: strict FIFO histories are k-legal for every k and score zero
// distance.
func TestStrictFIFOHistoriesAreKLegal(t *testing.T) {
	f := func(vals []uint64, kRaw uint8) bool {
		k := int(kRaw % 8)
		ops := make([]Op, 0, 2*len(vals))
		for _, v := range vals {
			ops = append(ops, Op{Kind: OpPush, Value: v})
		}
		for _, v := range vals {
			ops = append(ops, Op{Kind: OpPop, Value: v})
		}
		maxDist, err := CheckKOutOfOrderFIFO(ops, k)
		return err == nil && maxDist == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
