// Package seqspec provides the sequential specification of a stack and
// helpers for checking concurrent implementations against it.
//
// Two levels of specification are used by the test suite:
//
//   - Model: strict LIFO. Every implementation in this repository, relaxed
//     or not, must behave exactly like Model when driven by one goroutine.
//   - KModel: k-out-of-order LIFO (Henzinger et al., POPL'13). A Pop may
//     return any of the k+1 topmost items. The relaxed stacks are checked
//     against KModel with the bound from relax.Bound.
package seqspec

// Model is a plain sequential stack over uint64 labels. The zero value is an
// empty, ready-to-use stack.
type Model struct {
	items []uint64
}

// Push appends v to the top.
func (m *Model) Push(v uint64) { m.items = append(m.items, v) }

// Pop removes and returns the top item; ok is false on empty.
func (m *Model) Pop() (v uint64, ok bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	v = m.items[len(m.items)-1]
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// Peek returns the top item without removing it.
func (m *Model) Peek() (v uint64, ok bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	return m.items[len(m.items)-1], true
}

// Len reports the number of stored items.
func (m *Model) Len() int { return len(m.items) }

// Snapshot returns a copy of the contents, bottom first.
func (m *Model) Snapshot() []uint64 {
	out := make([]uint64, len(m.items))
	copy(out, m.items)
	return out
}

// KModel is a sequential k-out-of-order stack specification: Pop removes
// one of the k+1 topmost items (the checker chooses whichever the
// implementation returned, and reports the observed distance). It is used to
// validate traces of relaxed executions.
type KModel struct {
	K     int
	items []uint64
}

// Push appends v to the top.
func (m *KModel) Push(v uint64) { m.items = append(m.items, v) }

// PopObserved removes v from the stack, requiring it to be within K of the
// top. It returns the error distance from the top (0 = strict LIFO) and
// whether v was found within the allowed window. If v is not present within
// the window at all, found is false and the model is unchanged.
func (m *KModel) PopObserved(v uint64) (dist int, found bool) {
	n := len(m.items)
	lo := 0
	if m.K >= 0 && n-1-m.K > 0 {
		lo = n - 1 - m.K
	}
	for i := n - 1; i >= lo; i-- {
		if m.items[i] == v {
			dist = n - 1 - i
			m.items = append(m.items[:i], m.items[i+1:]...)
			return dist, true
		}
	}
	return 0, false
}

// PopAnywhere removes v from the stack wherever it is, returning the error
// distance from the top; used to *measure* rather than *enforce* relaxation.
func (m *KModel) PopAnywhere(v uint64) (dist int, found bool) {
	for i := len(m.items) - 1; i >= 0; i-- {
		if m.items[i] == v {
			dist = len(m.items) - 1 - i
			m.items = append(m.items[:i], m.items[i+1:]...)
			return dist, true
		}
	}
	return 0, false
}

// Len reports the number of stored items.
func (m *KModel) Len() int { return len(m.items) }
